(* Serialization round-trips over knowledge-base-built graphs — the
   artifacts `strategem serve` snapshots and `strategem eval` consumes:
   Strategy.Persist over both DFS and path strategies, Infgraph.Serial
   over graphs and probability models, file round-trips, and malformed
   inputs raising Parse_error rather than crashing. *)

open Helpers
open Infgraph
open Strategy

(* ---------- Strategy.Persist ---------- *)

let persist_dfs_kb_roundtrip () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  List.iter
    (fun d ->
      let d' = Persist.dfs_of_string g (Persist.dfs_to_string d) in
      check_bool "dfs round-trips" true (Spec.equal_dfs d d');
      match Persist.of_string g (Persist.to_string (Spec.Dfs d)) with
      | Spec.Dfs d'' ->
        check_bool "Spec.t dfs round-trips" true (Spec.equal_dfs d d'')
      | Spec.Paths _ -> Alcotest.fail "dfs came back as paths")
    [
      Workload.Gb.theta_abcd result;
      Workload.Gb.theta_abdc result;
      Workload.Gb.theta_acdb result;
    ]

let persist_paths_roundtrip () =
  (* A reversed path order is not expressible as a DFS strategy on G_B
     (the shared R_gs prefix's subtrees interleave), so this exercises
     the genuine paths branch of the format. *)
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  let order = List.rev (Graph.leaf_paths g) in
  let spec = Spec.of_paths g order in
  let spec' = Persist.of_string g (Persist.to_string spec) in
  check_bool "paths round-trip" true (Spec.equal spec spec');
  check_bool "order preserved" true (Spec.to_paths spec' = order)

let persist_malformed () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  let bad ~name s =
    check_bool name true
      (try
         ignore (Persist.of_string g s);
         false
       with Persist.Parse_error _ -> true)
  in
  bad ~name:"empty" "";
  bad ~name:"truncated order line" "strategem-strategy 1 dfs\norder\nend\n";
  bad ~name:"non-integer arc id"
    "strategem-strategy 1 dfs\norder 0 zero\nend\n";
  bad ~name:"unknown path arc" "strategem-strategy 1 paths\npath 0 99\nend\n";
  bad ~name:"missing path" "strategem-strategy 1 paths\npath 0 1\nend\n";
  (* dfs_of_string refuses a paths payload. *)
  let paths_text = Persist.to_string (Spec.Paths { graph = g; order = Graph.leaf_paths g }) in
  check_bool "dfs_of_string on paths text" true
    (try
       ignore (Persist.dfs_of_string g paths_text);
       false
     with Persist.Parse_error _ -> true)

(* ---------- Infgraph.Serial ---------- *)

let serial_file_roundtrip () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let path = Filename.temp_file "strategem" ".graph" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Serial.graph_to_file path g;
      let g' = Serial.graph_of_file path in
      check_int "nodes" (Graph.n_nodes g) (Graph.n_nodes g');
      check_int "arcs" (Graph.n_arcs g) (Graph.n_arcs g');
      check_string "same text" (Serial.graph_to_string g)
        (Serial.graph_to_string g'))

let serial_model_malformed () =
  let ga = make_ga () in
  let bad ~name s =
    check_bool name true
      (try
         ignore (Serial.model_of_string ga.ga_graph s);
         false
       with Serial.Parse_error _ -> true)
  in
  bad ~name:"arc id out of range" "strategem-model 1\nprob 99 0.5\nend\n";
  bad ~name:"probability above 1" "strategem-model 1\nprob 2 1.5\nend\n";
  bad ~name:"garbage" "not a model"

let suite =
  [
    ( "persist",
      [
        case "G_B DFS strategies round-trip" persist_dfs_kb_roundtrip;
        case "non-DFS path order round-trips" persist_paths_roundtrip;
        case "malformed strategies raise Parse_error" persist_malformed;
        case "graph file round-trip" serial_file_roundtrip;
        case "malformed models raise Parse_error" serial_model_malformed;
      ] );
  ]
