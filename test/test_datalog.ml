open Helpers
module D = Datalog

let atom = D.Parser.parse_atom
let clause = D.Parser.parse_clause
let clauses = D.Parser.parse_clauses

(* ---------- Symbol / Term / Atom ---------- *)

let symbol_interning () =
  let a = D.Symbol.intern "foo" and b = D.Symbol.intern "foo" in
  check_bool "same id" true (D.Symbol.equal a b);
  check_int "same" 0 (D.Symbol.compare a b);
  let c = D.Symbol.intern "bar" in
  check_bool "distinct" false (D.Symbol.equal a c);
  check_string "round trip" "foo" (D.Symbol.to_string a)

(* The interned fast path is the per-atom cost every parsed query pays on
   every worker domain: it must not allocate (no Some boxing, no closure)
   so it cannot contend on the minor heap or the symbol mutex. Warm the
   names, then meter a re-intern loop with the GC's own allocation
   counter; the slack absorbs the two boxed floats the meter itself
   allocates. *)
let symbol_fast_path_no_alloc () =
  let names = Array.init 64 (fun i -> Printf.sprintf "alloc_probe_%d" i) in
  Array.iter (fun n -> ignore (D.Symbol.intern n)) names;
  let rounds = 10_000 in
  let before = Gc.minor_words () in
  for i = 0 to rounds - 1 do
    ignore (Sys.opaque_identity (D.Symbol.intern names.(i land 63)))
  done;
  let allocated = Gc.minor_words () -. before in
  check_bool
    (Printf.sprintf "re-interning allocates nothing (%.0f words for %d ops)"
       allocated rounds)
    true
    (allocated < 64.0)

(* Concurrent intern of the same names from several domains must yield
   exactly one symbol per name: every domain agrees on each id, and the
   ids are pairwise distinct. *)
let symbol_concurrent_intern () =
  let n_domains = 4 and n_names = 400 in
  let names =
    List.init n_names (fun i -> Printf.sprintf "ccintern_%d" i)
  in
  let started = Atomic.make 0 in
  let run () =
    Atomic.incr started;
    (* start line: maximize overlap so racing inserts actually race *)
    while Atomic.get started < n_domains do
      Domain.cpu_relax ()
    done;
    List.map (fun n -> D.Symbol.id (D.Symbol.intern n)) names
  in
  let domains = List.init n_domains (fun _ -> Domain.spawn run) in
  let results = List.map Domain.join domains in
  let first = List.hd results in
  List.iteri
    (fun i ids ->
      check_bool (Printf.sprintf "domain %d agrees on every id" (i + 1)) true
        (ids = first))
    (List.tl results);
  check_int "one id per name" n_names
    (List.length (List.sort_uniq Int.compare first));
  check_bool "count covers them all" true
    (D.Symbol.count () > List.fold_left Int.max 0 first);
  List.iter2
    (fun name id ->
      check_int ("re-intern of " ^ name ^ " is stable") id
        (D.Symbol.id (D.Symbol.intern name)))
    names first

let term_compare () =
  let c1 = D.Term.const "a" and c2 = D.Term.const "a" in
  check_bool "const equal" true (D.Term.equal c1 c2);
  check_bool "const vs var" false (D.Term.equal c1 (D.Term.var "A"));
  let v = D.Term.var "X" in
  let v' = D.Term.rename 3 v in
  check_bool "renamed differs" false (D.Term.equal v v');
  check_bool "rename idempotent on consts" true
    (D.Term.equal c1 (D.Term.rename 5 c1))

let atom_basics () =
  let a = atom "edge(a, B)" in
  check_int "arity" 2 (D.Atom.arity a);
  check_bool "not ground" false (D.Atom.is_ground a);
  check_bool "ground" true (D.Atom.is_ground (atom "edge(a, b)"));
  check_int "vars" 1 (List.length (D.Atom.vars a));
  check_string "to_string" "edge(a, B)" (D.Atom.to_string a)

let atom_adornment () =
  let a = atom "q(a, X, b)" in
  Alcotest.(check (list string))
    "adornment" [ "b"; "f"; "b" ]
    (List.map (function `B -> "b" | `F -> "f") (D.Atom.adornment a));
  check_string "query form" "q^(b,f,b)"
    (Format.asprintf "%a" D.Atom.pp_query_form a)

let atom_vars_dedup () =
  let a = atom "p(X, Y, X)" in
  check_int "dedup" 2 (List.length (D.Atom.vars a))

(* ---------- Subst / unification ---------- *)

let unify_basic () =
  let x = D.Term.var "X" and a = D.Term.const "a" in
  match D.Subst.unify x a D.Subst.empty with
  | None -> Alcotest.fail "should unify"
  | Some s -> check_bool "bound" true (D.Term.equal (D.Subst.apply s x) a)

let unify_atoms_cases () =
  let check_unifies expected p q =
    let r = D.Subst.unify_atoms (atom p) (atom q) D.Subst.empty in
    check_bool (p ^ " ~ " ^ q) expected (r <> None)
  in
  check_unifies true "p(X, b)" "p(a, Y)";
  check_unifies false "p(a)" "p(b)";
  check_unifies false "p(a)" "q(a)";
  check_unifies false "p(a)" "p(a, b)";
  check_unifies true "p(X, X)" "p(a, a)";
  check_unifies false "p(X, X)" "p(a, b)"

let unify_apply_equalizes =
  qcheck "unifier equalizes atoms" ~count:300
    (let open QCheck2.Gen in
     let term =
       oneof
         [
           map (fun i -> D.Term.const (Printf.sprintf "c%d" (i mod 3))) small_nat;
           map (fun i -> D.Term.var (Printf.sprintf "V%d" (i mod 3))) small_nat;
         ]
     in
     pair (list_size (int_range 1 3) term) (list_size (int_range 1 3) term))
    (fun (args1, args2) ->
      let a = D.Atom.make "p" args1 and b = D.Atom.make "p" args2 in
      match D.Subst.unify_atoms a b D.Subst.empty with
      | None -> true
      | Some s ->
        D.Atom.equal (D.Subst.apply_atom s a) (D.Subst.apply_atom s b))

let match_one_sided () =
  let pattern = atom "p(X, b)" in
  (match D.Subst.match_atom ~pattern ~ground:(atom "p(a, b)") D.Subst.empty with
  | Some s ->
    check_bool "X=a" true
      (D.Atom.equal (D.Subst.apply_atom s pattern) (atom "p(a, b)"))
  | None -> Alcotest.fail "should match");
  check_bool "mismatch" true
    (D.Subst.match_atom ~pattern ~ground:(atom "p(a, c)") D.Subst.empty = None)

let subst_idempotent () =
  let s =
    D.Subst.empty
    |> D.Subst.bind { D.Term.name = "X"; gen = 0 } (D.Term.var "Y")
    |> D.Subst.bind { D.Term.name = "Y"; gen = 0 } (D.Term.const "a")
  in
  check_bool "X resolves fully" true
    (D.Term.equal (D.Subst.apply s (D.Term.var "X")) (D.Term.const "a"))

let subst_walk_chain () =
  let x = { D.Term.name = "X"; gen = 0 } and y = { D.Term.name = "Y"; gen = 0 } in
  let s = D.Subst.bind x (D.Term.var "Y") D.Subst.empty in
  (* [find] returns the raw stored binding; [walk] resolves the chain. *)
  check_bool "raw binding kept" true (D.Subst.find x s = Some (D.Term.var "Y"));
  let s = D.Subst.bind y (D.Term.const "a") s in
  check_bool "walk resolves through Y" true
    (D.Term.equal (D.Subst.walk s (D.Term.var "X")) (D.Term.const "a"));
  check_bool "to_alist resolves too" true
    (List.for_all
       (fun (_, t) -> D.Term.equal t (D.Term.const "a"))
       (D.Subst.to_alist s));
  (* Rebinding to the same resolved value is a no-op... *)
  check_int "consistent rebind is a no-op" 2
    (D.Subst.size (D.Subst.bind x (D.Term.const "a") s));
  (* ...while a conflicting rebinding is a programming error. *)
  check_bool "conflicting rebind raises" true
    (try
       ignore (D.Subst.bind x (D.Term.const "b") s);
       false
     with Invalid_argument _ -> true)

let subst_apply_atom_no_alloc () =
  let a = atom "p(X, a)" in
  check_bool "empty subst returns the atom itself" true
    (D.Subst.apply_atom D.Subst.empty a == a)

(* ---------- Clause ---------- *)

let clause_safety () =
  check_bool "safe rule" true
    (D.Clause.check_safe (clause "p(X) :- q(X).") = Ok ());
  check_bool "unsafe head var" true
    (match D.Clause.check_safe (clause "p(X, Y) :- q(X).") with
    | Error [ v ] -> v.D.Term.name = "Y"
    | _ -> false);
  check_bool "unsafe negation" true
    (D.Clause.check_safe (clause "p(X) :- q(X), not r(Y).") <> Ok ());
  check_bool "safe negation" true
    (D.Clause.check_safe (clause "p(X) :- q(X), not r(X).") = Ok ())

let clause_accessors () =
  let c = clause "p(X) :- q(X), not r(X), s(X)." in
  check_int "positive" 2 (List.length (D.Clause.positive_body c));
  check_int "negative" 1 (List.length (D.Clause.negative_body c));
  check_bool "not fact" false (D.Clause.is_fact c);
  check_bool "fact" true (D.Clause.is_fact (clause "p(a)."))

(* ---------- Parser ---------- *)

let parser_program () =
  let items =
    D.Parser.parse_program
      "% a comment\n\
       parent(tom, bob).\n\
       ancestor(X, Y) :- parent(X, Y).\n\
       ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).\n\
       ?- ancestor(tom, Who).\n"
  in
  check_int "4 items" 4 (List.length items)

let parser_round_trip =
  qcheck "print/parse round trip" ~count:100
    (let open QCheck2.Gen in
     let name = map (fun i -> Printf.sprintf "p%d" (i mod 5)) small_nat in
     let term =
       oneof
         [
           map (fun i -> D.Term.const (Printf.sprintf "c%d" (i mod 4))) small_nat;
           map (fun i -> D.Term.var (Printf.sprintf "V%d" (i mod 4))) small_nat;
         ]
     in
     let gen_atom = map2 (fun n args -> D.Atom.make n args) name (list_size (int_range 0 3) term) in
     let lit =
       oneof
         [
           map (fun a -> D.Clause.Pos a) gen_atom;
           map (fun a -> D.Clause.Neg a) gen_atom;
         ]
     in
     map2 (fun h b -> D.Clause.make h b) gen_atom (list_size (int_range 0 3) lit))
    (fun c ->
      let printed = D.Clause.to_string c in
      let reparsed = clause printed in
      D.Clause.equal c reparsed)

let parser_errors () =
  check_bool "unterminated" true
    (try
       ignore (D.Parser.parse_clause "p(a");
       false
     with D.Parser.Parse_error _ | D.Lexer.Lex_error _ -> true);
  check_bool "bad token" true
    (try
       ignore (D.Parser.parse_clause "p(a) :- & q(a).");
       false
     with D.Parser.Parse_error _ | D.Lexer.Lex_error _ -> true)

let parser_quoted_and_numbers () =
  let a = atom "likes('Mary Jane', 42)" in
  check_int "arity" 2 (D.Atom.arity a);
  check_bool "ground" true (D.Atom.is_ground a)

let parser_naf_synonym () =
  let c1 = clause "p(X) :- q(X), not r(X)." in
  let c2 = clause "p(X) :- q(X), \\+ r(X)." in
  check_bool "not = \\+" true (D.Clause.equal c1 c2)

let parser_kb () =
  let rules, facts, queries =
    D.Parser.parse_kb "p(a). r(X) :- p(X). ?- r(a)."
  in
  check_int "rules" 1 (List.length rules);
  check_int "facts" 1 (List.length facts);
  check_int "queries" 1 (List.length queries)

(* ---------- Database ---------- *)

let database_basics () =
  let db = D.Database.create () in
  check_bool "add new" true (D.Database.add db (atom "p(a, b)"));
  check_bool "add dup" false (D.Database.add db (atom "p(a, b)"));
  check_bool "mem" true (D.Database.mem db (atom "p(a, b)"));
  check_int "size" 1 (D.Database.size db);
  check_bool "remove" true (D.Database.remove db (atom "p(a, b)"));
  check_bool "remove gone" false (D.Database.remove db (atom "p(a, b)"));
  check_int "size" 0 (D.Database.size db)

let database_matching () =
  let db =
    D.Database.of_list [ atom "e(a, b)"; atom "e(a, c)"; atom "e(b, c)" ]
  in
  check_int "bound first arg" 2 (List.length (D.Database.matching db (atom "e(a, X)")));
  check_int "free" 3 (List.length (D.Database.matching db (atom "e(X, Y)")));
  check_int "bound second" 2 (List.length (D.Database.matching db (atom "e(X, c)")));
  check_int "no match" 0 (List.length (D.Database.matching db (atom "e(c, X)")));
  check_bool "first_match" true (D.Database.first_match db (atom "e(a, X)") <> None);
  check_int "repeated var" 0 (List.length (D.Database.matching db (atom "e(X, X)")))

let database_counts () =
  let db = D.Database.of_list [ atom "p(a)"; atom "p(b)"; atom "q(a)" ] in
  check_int "count p" 2 (D.Database.count_pred db "p");
  check_int "count q" 1 (D.Database.count_pred db "q");
  check_int "count missing" 0 (D.Database.count_pred db "zzz");
  check_int "count p by id" 2
    (D.Database.count_pred_id db (D.Symbol.id (D.Symbol.intern "p")));
  check_int "count missing by id" 0
    (D.Database.count_pred_id db (D.Symbol.id (D.Symbol.intern "zzz")));
  check_int "predicates" 2 (List.length (D.Database.predicates db))

let database_generation_and_token () =
  let db = D.Database.create () and db2 = D.Database.create () in
  check_bool "instances have distinct tokens" true
    (D.Database.token db <> D.Database.token db2);
  let g0 = D.Database.generation db in
  check_bool "add" true (D.Database.add db (atom "p(a)"));
  check_bool "add bumps generation" true (D.Database.generation db > g0);
  let g1 = D.Database.generation db in
  check_bool "duplicate add" false (D.Database.add db (atom "p(a)"));
  check_int "no-op add keeps generation" g1 (D.Database.generation db);
  check_bool "remove absent" false (D.Database.remove db (atom "q(a)"));
  check_int "no-op remove keeps generation" g1 (D.Database.generation db);
  check_bool "remove" true (D.Database.remove db (atom "p(a)"));
  check_bool "remove bumps generation" true (D.Database.generation db > g1);
  check_bool "copy gets a fresh token" true
    (D.Database.token (D.Database.copy db) <> D.Database.token db)

(* Serve-path cache invalidation reads [generation]/[size] from worker
   domains while the owner may be mid-[add]; both are atomics, so a
   racing reader must only ever see monotonic, untorn values. One domain
   adds [n] facts while the other spins on the counters; [size] is
   bumped before [generation], so with reads ordered size-then-
   generation the reader must always observe generation >= size - 1. *)
let database_concurrent_generation () =
  let db = D.Database.create () in
  let n = 2_000 in
  let facts =
    Array.init n (fun i -> atom (Printf.sprintf "cgen(x%d)" i))
  in
  let stop = Atomic.make false in
  let started = Atomic.make false in
  let reader =
    Domain.spawn (fun () ->
        let ok = ref true and last_gen = ref 0 and reads = ref 0 in
        Atomic.set started true;
        while not (Atomic.get stop) do
          let s = D.Database.size db in
          let g = D.Database.generation db in
          incr reads;
          if g < !last_gen then ok := false; (* torn or non-monotonic *)
          if g < 0 || g > n || s < 0 || s > n then ok := false;
          if g < s - 1 then ok := false;
          last_gen := Int.max !last_gen g
        done;
        (!ok, !reads))
  in
  (* Don't start writing until the reader is live, or a slow
     [Domain.spawn] lets the writer finish unobserved. *)
  while not (Atomic.get started) do Domain.cpu_relax () done;
  Array.iter (fun f -> ignore (D.Database.add db f)) facts;
  Atomic.set stop true;
  let ok, reads = Domain.join reader in
  check_bool "reader saw only monotonic, in-range values" true ok;
  check_bool "reader actually raced the writer" true (reads > 0);
  check_int "final generation" n (D.Database.generation db);
  check_int "final size" n (D.Database.size db)

let database_nonground_rejected () =
  let db = D.Database.create () in
  check_bool "raises" true
    (try
       ignore (D.Database.add db (atom "p(X)"));
       false
     with Invalid_argument _ -> true)

let database_index_consistent =
  qcheck "index lookup equals scan" ~count:100
    (let open QCheck2.Gen in
     list_size (int_range 0 30)
       (pair (int_range 0 3) (pair (int_range 0 4) (int_range 0 4))))
    (fun specs ->
      let facts =
        List.map
          (fun (p, (x, y)) ->
            D.Atom.make
              (Printf.sprintf "p%d" p)
              [
                D.Term.const (Printf.sprintf "a%d" x);
                D.Term.const (Printf.sprintf "b%d" y);
              ])
          specs
      in
      let db = D.Database.of_list facts in
      let pattern = atom "p1(a2, Y)" in
      let via_index = List.length (D.Database.matching db pattern) in
      let via_scan =
        List.length
          (List.sort_uniq D.Atom.compare facts
          |> List.filter (fun f ->
                 D.Subst.match_atom ~pattern ~ground:f D.Subst.empty <> None))
      in
      via_index = via_scan)

let database_copy_independent () =
  let db = D.Database.of_list [ atom "p(a)" ] in
  let db2 = D.Database.copy db in
  ignore (D.Database.add db2 (atom "p(b)"));
  ignore (D.Database.remove db2 (atom "p(a)"));
  check_bool "original keeps p(a)" true (D.Database.mem db (atom "p(a)"));
  check_bool "original lacks p(b)" false (D.Database.mem db (atom "p(b)"));
  check_int "sizes diverge" 1 (D.Database.size db)

let database_fold_iter () =
  let db = D.Database.of_list [ atom "p(a)"; atom "q(b)"; atom "p(c)" ] in
  check_int "fold counts" 3 (D.Database.fold (fun _ n -> n + 1) db 0);
  let seen = ref 0 in
  D.Database.iter (fun _ -> incr seen) db;
  check_int "iter counts" 3 !seen;
  check_int "to_list" 3 (List.length (D.Database.to_list db))

let sld_lazy_first_answer () =
  (* solve_first must not enumerate past the first answer: with the first
     rule succeeding, the second branch is never retrieved. *)
  let rb = D.Rulebase.of_list (clauses "p(X) :- a(X). p(X) :- b(X).") in
  let db = D.Database.of_list [ atom "a(k)"; atom "b(k)" ] in
  let cfg = D.Sld.config ~rulebase:rb ~db () in
  let _, stats = D.Sld.solve_first cfg (D.Parser.parse_query "p(k)") in
  check_int "one retrieval only" 1 stats.D.Sld.retrievals;
  check_int "one reduction only" 1 stats.D.Sld.reductions

(* ---------- Rulebase ---------- *)

let rulebase_recursion () =
  let rb = D.Rulebase.of_list (clauses "p(X) :- q(X). q(X) :- r(X).") in
  check_bool "non-recursive" false (D.Rulebase.is_recursive rb);
  let rb2 =
    D.Rulebase.of_list
      (clauses "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).")
  in
  check_bool "recursive" true (D.Rulebase.is_recursive rb2);
  check_bool "pred recursive" true
    (D.Rulebase.pred_recursive rb2 (D.Symbol.intern "anc"));
  let rb3 = D.Rulebase.of_list (clauses "a(X) :- b(X). b(X) :- a(X).") in
  check_bool "mutual recursion" true (D.Rulebase.is_recursive rb3)

let rulebase_stratify () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "reach(X) :- edge(X). reach(X) :- reach(Y), edge2(Y, X).\n\
          unreach(X) :- node(X), not reach(X).")
  in
  (match D.Rulebase.stratify rb with
  | Ok strata ->
    check_int "two strata" 2 (List.length strata);
    let names = List.map (List.map D.Symbol.to_string) strata in
    check_bool "reach below unreach" true
      (names = [ [ "reach" ]; [ "unreach" ] ])
  | Error _ -> Alcotest.fail "should stratify");
  let bad = D.Rulebase.of_list (clauses "win(X) :- move(X, Y), not win(Y).") in
  check_bool "unstratifiable" true
    (match D.Rulebase.stratify bad with Error _ -> true | Ok _ -> false)

let rulebase_edb_idb () =
  let rb = D.Rulebase.of_list (clauses "p(X) :- q(X). p(X) :- r(X). q(X) :- s(X).") in
  check_int "idb" 2 (List.length (D.Rulebase.idb_preds rb));
  check_int "edb" 2 (List.length (D.Rulebase.edb_preds rb));
  check_int "rules for p" 2
    (List.length (D.Rulebase.rules_for rb (D.Symbol.intern "p")))

let rulebase_resolving () =
  let rb = D.Rulebase.of_list (clauses "p(X) :- q(X). p(a) :- r(a).") in
  let both = D.Rulebase.resolving rb ~gen:1 (atom "p(a)") in
  check_int "both apply to p(a)" 2 (List.length both);
  let one = D.Rulebase.resolving rb ~gen:2 (atom "p(b)") in
  check_int "only general applies to p(b)" 1 (List.length one)

(* ---------- SLD ---------- *)

let university_cfg () =
  let rb =
    D.Rulebase.of_list
      (clauses "instructor(X) :- prof(X). instructor(X) :- grad(X).")
  in
  let db = D.Database.of_list [ atom "prof(russ)"; atom "grad(manolis)" ] in
  D.Sld.config ~rulebase:rb ~db ()

let sld_ground_queries () =
  let cfg = university_cfg () in
  check_bool "russ yes" true (D.Sld.provable cfg (D.Parser.parse_query "instructor(russ)"));
  check_bool "manolis yes" true
    (D.Sld.provable cfg (D.Parser.parse_query "instructor(manolis)"));
  check_bool "fred no" false
    (D.Sld.provable cfg (D.Parser.parse_query "instructor(fred)"))

let sld_open_query () =
  let cfg = university_cfg () in
  let answers, _ = D.Sld.solve_all cfg (D.Parser.parse_query "instructor(X)") in
  check_int "two instructors" 2 (List.length answers)

let sld_stats_counted () =
  let cfg = university_cfg () in
  let _, stats = D.Sld.solve_first cfg (D.Parser.parse_query "instructor(fred)") in
  check_int "two reductions" 2 stats.D.Sld.reductions;
  check_int "two retrievals" 2 stats.D.Sld.retrievals;
  check_int "no hits" 0 stats.D.Sld.retrieval_hits;
  let _, stats2 = D.Sld.solve_first cfg (D.Parser.parse_query "instructor(russ)") in
  (* Satisficing: stops after the first success (prof tried first). *)
  check_int "one reduction" 1 stats2.D.Sld.reductions;
  check_int "one retrieval" 1 stats2.D.Sld.retrievals

let sld_rule_order_matters () =
  let rb =
    D.Rulebase.of_list
      (clauses "instructor(X) :- prof(X). instructor(X) :- grad(X).")
  in
  let db = D.Database.of_list [ atom "grad(manolis)" ] in
  let reversed = D.Sld.config ~rule_order:(fun _ rules -> List.rev rules) ~rulebase:rb ~db () in
  let _, stats =
    D.Sld.solve_first reversed (D.Parser.parse_query "instructor(manolis)")
  in
  (* grad tried first: one reduction, one retrieval. *)
  check_int "grad first" 1 stats.D.Sld.reductions

let sld_recursion () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "ancestor(X, Y) :- parent(X, Y).\n\
          ancestor(X, Y) :- parent(X, Z), ancestor(Z, Y).")
  in
  let db =
    D.Database.of_list
      [ atom "parent(a, b)"; atom "parent(b, c)"; atom "parent(c, d)" ]
  in
  let cfg = D.Sld.config ~rulebase:rb ~db () in
  check_bool "transitive" true (D.Sld.provable cfg (D.Parser.parse_query "ancestor(a, d)"));
  check_bool "not backwards" false
    (D.Sld.provable cfg (D.Parser.parse_query "ancestor(d, a)"));
  let answers, _ = D.Sld.solve_all cfg (D.Parser.parse_query "ancestor(a, X)") in
  check_int "three descendants" 3 (List.length answers)

let sld_depth_limit () =
  let rb = D.Rulebase.of_list (clauses "loop(X) :- loop(X).") in
  let db = D.Database.create () in
  let cfg = D.Sld.config ~depth_limit:32 ~rulebase:rb ~db () in
  let result, stats = D.Sld.solve_first cfg (D.Parser.parse_query "loop(a)") in
  check_bool "no answer" true (result = None);
  check_bool "truncated" true stats.D.Sld.truncated

let sld_naf () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "pauper(X) :- person(X), not has_thing(X).\n\
          has_thing(X) :- owns(X, Y).")
  in
  let db =
    D.Database.of_list
      [ atom "person(poe)"; atom "person(rich)"; atom "owns(rich, boat)" ]
  in
  let cfg = D.Sld.config ~rulebase:rb ~db () in
  check_bool "poe pauper" true (D.Sld.provable cfg (D.Parser.parse_query "pauper(poe)"));
  check_bool "rich not" false (D.Sld.provable cfg (D.Parser.parse_query "pauper(rich)"));
  let answers, _ = D.Sld.solve_all cfg (D.Parser.parse_query "pauper(X)") in
  check_int "one pauper" 1 (List.length answers)

let sld_floundering () =
  let rb = D.Rulebase.of_list (clauses "bad(X) :- not p(Y).") in
  let db = D.Database.create () in
  let cfg = D.Sld.config ~rulebase:rb ~db () in
  check_bool "flounders" true
    (try
       ignore (D.Sld.provable cfg (D.Parser.parse_query "bad(a)"));
       false
     with D.Sld.Floundering _ -> true)

let sld_solve_limit () =
  let db = D.Database.of_list [ atom "n(i1)"; atom "n(i2)"; atom "n(i3)" ] in
  let cfg = D.Sld.config ~rulebase:(D.Rulebase.create ()) ~db () in
  let answers, _ = D.Sld.solve_all ~limit:2 cfg (D.Parser.parse_query "n(X)") in
  check_int "limited" 2 (List.length answers)

(* ---------- Semi-naive + cross-check ---------- *)

let seminaive_transitive_closure () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "tc(X, Y) :- edge(X, Y). tc(X, Y) :- tc(X, Z), edge(Z, Y).")
  in
  let db =
    D.Database.of_list
      [ atom "edge(a, b)"; atom "edge(b, c)"; atom "edge(c, a)"; atom "edge(d, d)" ]
  in
  let m = D.Seminaive.model rb db in
  (* Full closure of the 3-cycle: 9 pairs, plus (d,d). *)
  check_int "tc size" 10 (List.length (D.Database.matching m (atom "tc(X, Y)")));
  check_bool "holds" true (D.Seminaive.holds rb db (atom "tc(a, a)"));
  check_bool "not across" false (D.Seminaive.holds rb db (atom "tc(a, d)"))

let seminaive_stratified_negation () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "reach(X) :- start(X). reach(Y) :- reach(X), edge(X, Y).\n\
          blocked(X) :- node(X), not reach(X).")
  in
  let db =
    D.Database.of_list
      [
        atom "start(a)"; atom "edge(a, b)"; atom "node(a)"; atom "node(b)";
        atom "node(c)";
      ]
  in
  let m = D.Seminaive.model rb db in
  check_bool "c blocked" true (D.Database.mem m (atom "blocked(c)"));
  check_bool "b not blocked" false (D.Database.mem m (atom "blocked(b)"))

let seminaive_unstratifiable () =
  let rb = D.Rulebase.of_list (clauses "w(X) :- m(X, Y), not w(Y).") in
  check_bool "raises" true
    (try
       ignore (D.Seminaive.model rb (D.Database.create ()));
       false
     with D.Seminaive.Unstratifiable _ -> true)

(* On random non-recursive programs, SLD and semi-naive must agree on every
   ground query. *)
let sld_vs_seminaive =
  qcheck "SLD agrees with semi-naive" ~count:60
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = rng seed in
      (* random EDB over e0, e1 with constants k0..k4 *)
      let const () = Printf.sprintf "k%d" (Stats.Rng.int r 5) in
      let facts =
        List.init (5 + Stats.Rng.int r 15) (fun _ ->
            D.Atom.make
              (Printf.sprintf "e%d" (Stats.Rng.int r 2))
              [ D.Term.const (const ()) ])
      in
      let db = D.Database.of_list facts in
      (* fixed small rule set: two levels of disjunction *)
      let rb =
        D.Rulebase.of_list
          (clauses
             "mid(X) :- e0(X). mid(X) :- e1(X).\n\
              top(X) :- mid(X). top(X) :- e0(X).")
      in
      let cfg = D.Sld.config ~rulebase:rb ~db () in
      let m = D.Seminaive.model rb db in
      List.for_all
        (fun i ->
          let q = D.Atom.make "top" [ D.Term.const (Printf.sprintf "k%d" i) ] in
          D.Sld.provable cfg [ D.Clause.Pos q ] = D.Database.mem m q)
        [ 0; 1; 2; 3; 4 ])

(* ---------- Adornment + magic sets ---------- *)

let adorn_university () =
  let rb =
    D.Rulebase.of_list
      (clauses "instructor(X) :- prof(X). instructor(X) :- grad(X).")
  in
  let p = D.Adorn.adorn rb ~query_form:(atom "instructor(q)") in
  check_string "query apred" "instructor^b"
    (Format.asprintf "%a" D.Adorn.pp_apred p.D.Adorn.query);
  check_int "two specialized rules" 2 (List.length p.D.Adorn.rules);
  check_int "two edb preds" 2 (List.length p.D.Adorn.edb)

let adorn_ancestor_bf () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).")
  in
  let p = D.Adorn.adorn rb ~query_form:(atom "anc(q, Y)") in
  (* Left-to-right SIP: par(X,Z) binds Z, so the recursive call stays bf:
     exactly one adorned predicate, two rules. *)
  check_int "one adorned pred, two rules" 2 (List.length p.D.Adorn.rules);
  let recursive_rule = snd (List.nth p.D.Adorn.rules 1) in
  let body_preds =
    List.map
      (fun l -> D.Symbol.to_string (D.Clause.lit_atom l).D.Atom.pred)
      recursive_rule.D.Clause.body
  in
  Alcotest.(check (list string)) "recursive body" [ "par"; "anc_bf" ] body_preds

let adorn_free_query () =
  let rb = D.Rulebase.of_list (clauses "p(X) :- e(X).") in
  let p = D.Adorn.adorn rb ~query_form:(atom "p(X)") in
  check_string "ff adornment" "p^f"
    (Format.asprintf "%a" D.Adorn.pp_apred p.D.Adorn.query)

let magic_chain_db n =
  D.Database.of_list
    (List.init n (fun i ->
         D.Atom.make "par"
           [
             D.Term.const (Printf.sprintf "n%d" i);
             D.Term.const (Printf.sprintf "n%d" (i + 1));
           ]))

let magic_ancestor_answers () =
  let rb =
    D.Rulebase.of_list
      (clauses
         "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).")
  in
  let db = magic_chain_db 20 in
  let query = atom "anc(n5, Y)" in
  let via_magic = D.Magic.answers rb db ~query in
  let via_sld =
    let cfg = D.Sld.config ~rulebase:rb ~db () in
    let subs, _ = D.Sld.solve_all cfg [ D.Clause.Pos query ] in
    List.map (fun s -> D.Subst.apply_atom s query) subs
    |> List.sort_uniq D.Atom.compare
  in
  check_int "15 descendants" 15 (List.length via_magic);
  check_bool "magic = SLD" true (List.equal D.Atom.equal via_magic via_sld)

let magic_is_goal_directed () =
  (* On a long chain, a bound query near the end must derive far fewer
     facts under magic than full bottom-up evaluation of the program. *)
  let rb =
    D.Rulebase.of_list
      (clauses
         "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).")
  in
  let db = magic_chain_db 60 in
  let query = atom "anc(n55, Y)" in
  let magic_facts = D.Magic.derived_size rb db ~query in
  let full_model = D.Seminaive.model rb db in
  let full_facts = D.Database.size full_model - D.Database.size db in
  check_bool
    (Printf.sprintf "magic %d << full %d" magic_facts full_facts)
    true
    (magic_facts * 4 < full_facts)

let magic_same_generation () =
  (* The classical magic-sets showcase. *)
  let rb =
    D.Rulebase.of_list
      (clauses
         "sg(X, Y) :- flat(X, Y).\n\
          sg(X, Y) :- up(X, Z), sg(Z, W), down(W, Y).")
  in
  let db =
    D.Database.of_list
      (List.map atom
         [
           "up(a, b)"; "up(b, c)"; "flat(c, c2)"; "flat(b, b2)";
           "down(c2, d)"; "down(d, e)"; "down(b2, f)";
         ])
  in
  let query = atom "sg(a, Y)" in
  let via_magic = D.Magic.answers rb db ~query in
  let via_sld =
    let cfg = D.Sld.config ~rulebase:rb ~db () in
    let subs, _ = D.Sld.solve_all cfg [ D.Clause.Pos query ] in
    List.map (fun s -> D.Subst.apply_atom s query) subs
    |> List.sort_uniq D.Atom.compare
  in
  check_bool "magic = SLD on same-generation" true
    (List.equal D.Atom.equal via_magic via_sld);
  check_bool "nonempty" true (via_magic <> [])

let magic_negative_edb_ok () =
  let rb =
    D.Rulebase.of_list
      (clauses "safe(X) :- node(X), not bad(X).\nok(X) :- safe(X).")
  in
  let db = D.Database.of_list (List.map atom [ "node(a)"; "node(b)"; "bad(b)" ]) in
  let ans = D.Magic.answers rb db ~query:(atom "ok(a)") in
  check_int "a is ok" 1 (List.length ans);
  check_int "b is not" 0 (List.length (D.Magic.answers rb db ~query:(atom "ok(b)")))

let magic_negative_idb_rejected () =
  let rb =
    D.Rulebase.of_list
      (clauses "p(X) :- e(X), not q(X). q(X) :- f(X).")
  in
  check_bool "raises" true
    (try
       ignore (D.Magic.transform rb ~query:(atom "p(a)"));
       false
     with Invalid_argument _ -> true)

let magic_vs_seminaive =
  qcheck "magic answers = plain semi-naive answers" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let const () = Printf.sprintf "k%d" (Stats.Rng.int r 6) in
      let facts =
        List.init
          (8 + Stats.Rng.int r 20)
          (fun _ ->
            D.Atom.make
              (Printf.sprintf "e%d" (Stats.Rng.int r 2))
              [ D.Term.const (const ()); D.Term.const (const ()) ])
      in
      let db = D.Database.of_list facts in
      let rb =
        D.Rulebase.of_list
          (clauses
             "path(X, Y) :- e0(X, Y).\n\
              path(X, Y) :- e1(X, Y).\n\
              path(X, Y) :- e0(X, Z), path(Z, Y).")
      in
      let query = D.Atom.make "path" [ D.Term.const (const ()); D.Term.var "Y" ] in
      let via_magic = D.Magic.answers rb db ~query in
      let via_sn =
        D.Seminaive.query rb db query |> List.sort_uniq D.Atom.compare
      in
      List.equal D.Atom.equal via_magic via_sn)

let suite =
  [
    ( "datalog.syntax",
      [
        case "symbol interning" symbol_interning;
        case "symbol fast path allocates nothing" symbol_fast_path_no_alloc;
        slow_case "symbol concurrent intern across domains"
          symbol_concurrent_intern;
        case "term compare" term_compare;
        case "atom basics" atom_basics;
        case "atom adornment" atom_adornment;
        case "atom vars dedup" atom_vars_dedup;
      ] );
    ( "datalog.subst",
      [
        case "unify basic" unify_basic;
        case "unify atoms" unify_atoms_cases;
        unify_apply_equalizes;
        case "one-sided match" match_one_sided;
        case "idempotent bindings" subst_idempotent;
        case "chained bindings walk" subst_walk_chain;
        case "apply_atom no-alloc on empty" subst_apply_atom_no_alloc;
      ] );
    ( "datalog.clause",
      [ case "safety" clause_safety; case "accessors" clause_accessors ] );
    ( "datalog.parser",
      [
        case "program" parser_program;
        parser_round_trip;
        case "errors" parser_errors;
        case "quoted and numbers" parser_quoted_and_numbers;
        case "naf synonym" parser_naf_synonym;
        case "kb split" parser_kb;
      ] );
    ( "datalog.database",
      [
        case "basics" database_basics;
        case "matching" database_matching;
        case "counts" database_counts;
        case "non-ground rejected" database_nonground_rejected;
        case "generation and token" database_generation_and_token;
        slow_case "concurrent add and generation reads across domains"
          database_concurrent_generation;
        case "copy independence" database_copy_independent;
        case "fold and iter" database_fold_iter;
        database_index_consistent;
      ] );
    ( "datalog.rulebase",
      [
        case "recursion" rulebase_recursion;
        case "stratify" rulebase_stratify;
        case "edb/idb" rulebase_edb_idb;
        case "resolving" rulebase_resolving;
      ] );
    ( "datalog.sld",
      [
        case "ground queries" sld_ground_queries;
        case "open query" sld_open_query;
        case "stats counted" sld_stats_counted;
        case "rule order matters" sld_rule_order_matters;
        case "recursion" sld_recursion;
        case "depth limit" sld_depth_limit;
        case "negation as failure" sld_naf;
        case "floundering" sld_floundering;
        case "answer limit" sld_solve_limit;
        case "lazy first answer" sld_lazy_first_answer;
      ] );
    ( "datalog.seminaive",
      [
        case "transitive closure" seminaive_transitive_closure;
        case "stratified negation" seminaive_stratified_negation;
        case "unstratifiable" seminaive_unstratifiable;
        sld_vs_seminaive;
      ] );
    ( "datalog.adorn",
      [
        case "university" adorn_university;
        case "ancestor bf" adorn_ancestor_bf;
        case "free query" adorn_free_query;
      ] );
    ( "datalog.magic",
      [
        case "ancestor answers" magic_ancestor_answers;
        case "goal directed" magic_is_goal_directed;
        case "same generation" magic_same_generation;
        case "negative edb ok" magic_negative_edb_ok;
        case "negative idb rejected" magic_negative_idb_rejected;
        magic_vs_seminaive;
      ] );
  ]
