open Helpers
open Infgraph
open Strategy
module C = Core

(* ---------- Delta ---------- *)

let delta_paper_cases () =
  (* Section 3.1's three cases on G_A. *)
  let ga = make_ga () in
  let t1 = Spec.Dfs (ga_theta1 ga) and t2 = Spec.Dfs (ga_theta2 ga) in
  let under ctx =
    C.Delta.underestimate ~theta:t1 ~theta':t2 (Exec.run t1 ctx)
  in
  (* Solution under Rg but not Rp: Δ̃ = f*(Rp) = 2. *)
  check_float "grad only" 2.0 (under (ga_context ga ~dp:false ~dg:true));
  (* No solution anywhere: Δ̃ = 0. *)
  check_float "none" 0.0 (under (ga_context ga ~dp:false ~dg:false));
  (* Solution under Rp (Dg unexplored): Δ̃ = −f*(Rg) = −2 regardless of Dg. *)
  check_float "prof, dg true" (-2.0) (under (ga_context ga ~dp:true ~dg:true));
  check_float "prof, dg false" (-2.0) (under (ga_context ga ~dp:true ~dg:false))

let delta_sandwich =
  qcheck "Δ̃ ≤ Δ ≤ Δ̂ on simple disjunctive graphs" ~count:200
    (QCheck2.Gen.pair gen_small_instance QCheck2.Gen.small_nat)
    (fun ((g, model), seed) ->
      let ds = dfs_strategies g in
      let theta = Spec.Dfs (List.hd ds) in
      let ctx = any_context model seed in
      let outcome = Exec.run theta ctx in
      List.for_all
        (fun d' ->
          let theta' = Spec.Dfs d' in
          let exact = C.Delta.exact theta theta' ctx in
          let under = C.Delta.underestimate ~theta ~theta' outcome in
          let over = C.Delta.overestimate ~theta ~theta' outcome in
          under <= exact +. 1e-9 && exact <= over +. 1e-9)
        ds)

let delta_exact_when_fully_observed =
  qcheck "failure run determines Δ exactly" ~count:100
    gen_small_instance
    (fun (g, _model) ->
      (* In the all-blocked context Θ observes every retrieval. *)
      let ctx = Context.all_blocked g in
      let ds = dfs_strategies g in
      let theta = Spec.Dfs (List.hd ds) in
      let outcome = Exec.run theta ctx in
      List.for_all
        (fun d' ->
          let theta' = Spec.Dfs d' in
          let exact = C.Delta.exact theta theta' ctx in
          abs_float (C.Delta.underestimate ~theta ~theta' outcome -. exact) < 1e-9
          && abs_float (C.Delta.overestimate ~theta ~theta' outcome -. exact) < 1e-9)
        ds)

let delta_rejects_experiment_graphs () =
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  ignore
    (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~blockable:true
       Graph.Reduction);
  ignore (Graph.Builder.add_retrieval b ~src:n ());
  ignore (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ());
  let g = Graph.Builder.finish b in
  check_bool "not sound" false (C.Delta.sound_for g);
  let d = Spec.default g in
  let outcome = Exec.run (Spec.Dfs d) (Context.all_blocked g) in
  check_bool "raises" true
    (try
       ignore (C.Delta.underestimate ~theta:(Spec.Dfs d) ~theta':(Spec.Dfs d) outcome);
       false
     with Invalid_argument _ -> true)

(* ---------- Pib1 ---------- *)

let pib1_counters_equal_replay () =
  (* The paper's 3-counter Δ̃ must equal the trace-replay Δ̃ sum on G_A. *)
  let ga = make_ga () in
  let t1 = ga_theta1 ga in
  let tr = { Transform.node = Graph.root ga.ga_graph; pos_i = 0; pos_j = 1 } in
  let filter = C.Pib1.create t1 ~transform:tr ~delta:0.05 in
  let model = ga_model ga ~pp:0.3 ~pg:0.5 in
  let r = rng 41 in
  let replay_sum = ref 0. in
  for _ = 1 to 500 do
    let ctx = Bernoulli_model.sample model r in
    let outcome = Exec.run (Spec.Dfs t1) ctx in
    C.Pib1.observe filter outcome;
    replay_sum :=
      !replay_sum
      +. C.Delta.underestimate ~theta:(Spec.Dfs t1)
           ~theta':(Spec.Dfs (ga_theta2 ga)) outcome
  done;
  check_close "counter form = replay form" !replay_sum (C.Pib1.delta_sum filter);
  let m, k1, k2 = C.Pib1.counts filter in
  check_int "m" 500 m;
  check_bool "counters plausible" true (k1 + k2 <= m && k1 >= 0 && k2 >= 0)

let pib1_switches_when_better () =
  (* Θ2 is much better: p_g >> p_p. PIB1 must approve the swap. *)
  let ga = make_ga () in
  let t1 = ga_theta1 ga in
  let tr = { Transform.node = Graph.root ga.ga_graph; pos_i = 0; pos_j = 1 } in
  let filter = C.Pib1.create t1 ~transform:tr ~delta:0.05 in
  let model = ga_model ga ~pp:0.05 ~pg:0.9 in
  let r = rng 42 in
  let rec feed i =
    if i > 5000 then `Keep
    else begin
      C.Pib1.observe filter (Exec.run (Spec.Dfs t1) (Bernoulli_model.sample model r));
      match C.Pib1.decision filter with `Switch -> `Switch | `Keep -> feed (i + 1)
    end
  in
  check_bool "switches" true (feed 1 = `Switch);
  check_bool "theta' is Θ2" true
    (Spec.equal_dfs (C.Pib1.theta' filter) (ga_theta2 ga))

let pib1_false_positive_rate () =
  (* Θ2 is strictly worse (p_p > p_g): over many runs, the fraction where
     PIB1 ever approves within 300 samples must stay below δ. *)
  let ga = make_ga () in
  let t1 = ga_theta1 ga in
  let tr = { Transform.node = Graph.root ga.ga_graph; pos_i = 0; pos_j = 1 } in
  let delta = 0.1 in
  let model = ga_model ga ~pp:0.6 ~pg:0.3 in
  let r = rng 43 in
  let runs = 300 in
  let mistakes = ref 0 in
  for _ = 1 to runs do
    let filter = C.Pib1.create t1 ~transform:tr ~delta in
    let switched = ref false in
    for _ = 1 to 300 do
      if not !switched then begin
        C.Pib1.observe filter
          (Exec.run (Spec.Dfs t1) (Bernoulli_model.sample model r));
        if C.Pib1.decision filter = `Switch then switched := true
      end
    done;
    if !switched then incr mistakes
  done;
  check_bool "false positive rate below delta" true
    (float_of_int !mistakes /. float_of_int runs <= delta)

let pib1_rejects_nonadjacent () =
  let result = Workload.Gb.build () in
  let d = Workload.Gb.theta_abcd result in
  (* Find a non-adjacent transform... G_B has only binary nodes, so build a
     ternary node instead. *)
  ignore d;
  let b = Graph.Builder.create "r" in
  for _ = 1 to 3 do
    ignore (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ())
  done;
  let g = Graph.Builder.finish b in
  let tr = { Transform.node = Graph.root g; pos_i = 0; pos_j = 2 } in
  check_bool "raises" true
    (try
       ignore (C.Pib1.create (Spec.default g) ~transform:tr ~delta:0.05);
       false
     with Invalid_argument _ -> true)

(* ---------- Pib ---------- *)

let pib_learns_ga () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.1 ~pg:0.8 in
  let oracle = C.Oracle.of_model model (rng 44) in
  let pib = C.Pib.create (ga_theta1 ga) in
  let climbs = C.Pib.run pib oracle ~n:3000 in
  check_int "one climb" 1 (List.length climbs);
  check_bool "reaches Θ2" true (Spec.equal_dfs (C.Pib.current pib) (ga_theta2 ga))

let pib_reaches_optimum_gb () =
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  let oracle = C.Oracle.of_model model (rng 45) in
  let pib = C.Pib.create (Workload.Gb.theta_abcd result) in
  ignore (C.Pib.run pib oracle ~n:30_000);
  let c_final = fst (Cost.exact_dfs (C.Pib.current pib) model) in
  let _, c_opt = Upsilon.aot model in
  check_close ~eps:1e-6 "reaches the DFS optimum" c_opt c_final

let pib_climbs_monotone () =
  (* Theorem 1 in action: every climb must strictly improve the true cost
     (checked exactly; failure probability of this test is < δ = 0.05). *)
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model result ~pa:0.2 ~pb:0.6 ~pc:0.05 ~pd:0.7 in
  let oracle = C.Oracle.of_model model (rng 46) in
  let pib = C.Pib.create (Workload.Gb.theta_abcd result) in
  let climbs = C.Pib.run pib oracle ~n:20_000 in
  check_bool "at least one climb" true (List.length climbs >= 1);
  List.iter
    (fun climb ->
      let before = fst (Cost.exact_dfs climb.C.Pib.from_strategy model) in
      let after = fst (Cost.exact_dfs climb.C.Pib.to_strategy model) in
      check_bool "strict improvement" true (after < before))
    climbs

let pib_no_climb_when_optimal () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.8 ~pg:0.1 in
  let oracle = C.Oracle.of_model model (rng 47) in
  let pib = C.Pib.create (ga_theta1 ga) in
  let climbs = C.Pib.run pib oracle ~n:5000 in
  check_int "no climbs from the optimum" 0 (List.length climbs)

let pib_check_every () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.1 ~pg:0.8 in
  let oracle = C.Oracle.of_model model (rng 48) in
  let pib =
    C.Pib.create ~config:{ C.Pib.default_config with check_every = 50 }
      (ga_theta1 ga)
  in
  let climbs = C.Pib.run pib oracle ~n:3000 in
  check_bool "still climbs" true (List.length climbs = 1);
  List.iter
    (fun cl -> check_int "fires on a multiple of 50" 0 (cl.C.Pib.samples mod 50))
    climbs

let pib_candidates_introspection () =
  let ga = make_ga () in
  let pib = C.Pib.create (ga_theta1 ga) in
  check_int "one candidate" 1 (List.length (C.Pib.candidates pib));
  let _, sum, lambda = List.hd (C.Pib.candidates pib) in
  check_float "sum starts at 0" 0.0 sum;
  check_float "lambda" 4.0 lambda

(* Section 5.3: PIB "does not require that the success probabilities of
   the retrievals be independent". Under arbitrary finite context
   distributions (here: random, typically correlated), every climb must
   still be a strict improvement w.r.t. the true distribution. *)
let pib_sound_without_independence =
  qcheck "PIB climbs are improvements under correlated contexts" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = rng seed in
      let g, _ = Workload.Synth.small_instance ~max_leaves:4 r in
      (* Random support of correlated contexts with random weights. *)
      let n_ctx = 3 + Stats.Rng.int r 5 in
      let contexts =
        List.init n_ctx (fun _ ->
            Context.make g
              ~unblocked:
                (Array.init (Graph.n_arcs g) (fun _ ->
                     Stats.Rng.bernoulli r 0.4)))
      in
      let dist =
        Stats.Distribution.create
          (List.map (fun c -> (c, 1.0 +. Stats.Rng.float r)) contexts)
      in
      let oracle = C.Oracle.of_distribution g dist (Stats.Rng.split r) in
      let pib = C.Pib.create (Spec.default g) in
      let climbs = C.Pib.run pib oracle ~n:4000 in
      List.for_all
        (fun cl ->
          Cost.over_contexts (Spec.Dfs cl.C.Pib.to_strategy) dist
          < Cost.over_contexts (Spec.Dfs cl.C.Pib.from_strategy) dist +. 1e-9)
        climbs)

let pib_budget_accounting () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.5 ~pg:0.5 in
  let oracle = C.Oracle.of_model model (rng 64) in
  let pib = C.Pib.create (ga_theta1 ga) in
  ignore (C.Pib.run pib oracle ~n:500);
  check_int "500 samples seen" 500 (C.Pib.samples_total pib);
  check_int "still on sample set" 500 (C.Pib.samples_current pib)

let pib_first_k_learning () =
  (* Section 5.2's first-k variant: learn the scan order that minimizes
     the cost of collecting k = 2 answers. *)
  let f =
    Workload.Firstk.make
      ~sources:[ ("slow", 5.0, 0.5); ("fast", 1.0, 0.9); ("mid", 2.0, 0.8) ]
      ~k:2
  in
  let g = Workload.Firstk.graph f in
  let model = Workload.Firstk.model f in
  let oracle = C.Oracle.of_model model (rng 62) in
  let pib =
    C.Pib.create
      ~config:{ C.Pib.default_config with answers_required = 2 }
      (Spec.default g)
  in
  ignore (C.Pib.run pib oracle ~n:30_000);
  let learned = Spec.Dfs (C.Pib.current pib) in
  let _, best = Workload.Firstk.brute_optimal f in
  let start_cost =
    Workload.Firstk.expected_cost f (Spec.Dfs (Spec.default g))
  in
  let learned_cost = Workload.Firstk.expected_cost f learned in
  check_bool "improved" true (learned_cost < start_cost);
  check_close ~eps:1e-6 "reaches the optimum" best learned_cost

let pib_richer_moves_no_worse () =
  (* A richer transformation family must not hurt: on G_B the final cost
     with promotions is at most that with adjacent swaps (Theorem 1 holds
     for any family). *)
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  let final family seed =
    let pib =
      C.Pib.create ~config:{ C.Pib.default_config with moves = family }
        (Workload.Gb.theta_abcd result)
    in
    ignore (C.Pib.run pib (C.Oracle.of_model model (rng seed)) ~n:20_000);
    fst (Cost.exact_dfs (C.Pib.current pib) model)
  in
  let adj = final C.Pib.default_config.C.Pib.moves 63 in
  let rich = final Strategy.Moves.Swaps_and_promotions 63 in
  let _, c_opt = Upsilon.aot model in
  check_bool "both near optimum" true
    (adj <= c_opt +. 1e-6 && rich <= c_opt +. 1e-6)

(* ---------- Palo ---------- *)

let palo_stops_and_is_local_opt () =
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  let oracle = C.Oracle.of_model model (rng 49) in
  let epsilon = 0.3 in
  let palo =
    C.Palo.create
      ~config:{ C.Palo.default_config with epsilon; delta = 0.05 }
      (Workload.Gb.theta_abcd result)
  in
  (match C.Palo.run palo oracle ~max_contexts:500_000 with
  | C.Palo.Stopped _ -> ()
  | C.Palo.Running -> Alcotest.fail "PALO did not stop");
  (* ε-local optimality, verified exactly. *)
  let final = C.Palo.current palo in
  let c_final = fst (Cost.exact_dfs final model) in
  List.iter
    (fun (_, d') ->
      let c' = fst (Cost.exact_dfs d' model) in
      check_bool "ε-local optimum" true (c' >= c_final -. epsilon))
    (Transform.neighbors final)

let palo_trivial_stop () =
  (* A root with a single child has no transformations: stop immediately. *)
  let b = Graph.Builder.create "r" in
  ignore (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ());
  let g = Graph.Builder.finish b in
  let palo = C.Palo.create (Spec.default g) in
  let oracle = C.Oracle.of_model (Bernoulli_model.uniform g 0.5) (rng 50) in
  (match C.Palo.run palo oracle ~max_contexts:10 with
  | C.Palo.Stopped { total_samples; _ } ->
    check_bool "stops within a couple contexts" true (total_samples <= 2)
  | C.Palo.Running -> Alcotest.fail "should stop immediately")

let palo_works_on_experiment_graphs () =
  (* Paired evaluation lifts the simple-disjunctive restriction. *)
  let rng' = rng 51 in
  let params =
    { Workload.Synth.default_params with depth = 2; branch_max = 2; experiment_prob = 0.6 }
  in
  let g, model = Workload.Synth.random_instance rng' params in
  let palo =
    C.Palo.create ~config:{ C.Palo.default_config with epsilon = 1.0 }
      (Spec.default g)
  in
  let oracle = C.Oracle.of_model model (rng 52) in
  match C.Palo.run palo oracle ~max_contexts:200_000 with
  | C.Palo.Stopped _ -> ()
  | C.Palo.Running -> Alcotest.fail "PALO should stop on experiment graphs too"

(* ---------- Pao ---------- *)

let pao_targets_eq7 () =
  let ga = make_ga () in
  let g = ga.ga_graph in
  let targets = C.Pao.sample_targets g ~epsilon:0.5 ~delta:0.1 in
  (* n = 2 retrievals, F¬ = 2 for both: m = ceil(2 (2*2/0.5)^2 ln(4/0.1)). *)
  let expected =
    int_of_float (ceil (2.0 *. ((2.0 *. 2.0 /. 0.5) ** 2.0) *. log (4.0 /. 0.1)))
  in
  check_int "m(Dp)" expected targets.(ga.dp);
  check_int "m(Dg)" expected targets.(ga.dg);
  check_int "reductions get none" 0 targets.(ga.rp)

let pao_adaptive_strategy_orders_by_deficit () =
  let ga = make_ga () in
  let deficits = Array.make 4 0 in
  deficits.(ga.dg) <- 10;
  deficits.(ga.dp) <- 3;
  let spec = C.Pao.adaptive_strategy ga.ga_graph ~deficits in
  Alcotest.(check (list int))
    "grad path first"
    [ ga.rg; ga.dg; ga.rp; ga.dp ]
    (Spec.arc_sequence spec)

let pao_collects_enough_samples () =
  let ga = make_ga () in
  (* The pathological case of Section 4.1: Dp always succeeds, so a fixed
     Θ1 would never sample Dg. QPᴬ must still gather both. *)
  let model = ga_model ga ~pp:1.0 ~pg:0.5 in
  let oracle = C.Oracle.of_model model (rng 53) in
  let report = C.Pao.run ~scale:0.0005 ~epsilon:0.5 ~delta:0.1 oracle in
  check_bool "not capped" false report.C.Pao.capped;
  check_bool "Dp sampled" true
    (report.C.Pao.attempts.(ga.dp) >= report.C.Pao.targets.(ga.dp));
  check_bool "Dg sampled" true
    (report.C.Pao.attempts.(ga.dg) >= report.C.Pao.targets.(ga.dg))

let pao_estimates_converge () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.7 ~pg:0.3 in
  let oracle = C.Oracle.of_model model (rng 54) in
  (* Eq 7 at (ε=0.5, δ=0.1) asks for ~1900 samples per retrieval here —
     small enough to run unscaled. *)
  let report = C.Pao.run ~epsilon:0.5 ~delta:0.1 oracle in
  check_close ~eps:0.05 "p̂(Dp)" 0.7 report.C.Pao.p_hat.(ga.dp);
  check_close ~eps:0.05 "p̂(Dg)" 0.3 report.C.Pao.p_hat.(ga.dg);
  check_bool "learned the optimum" true
    (Spec.equal_dfs report.C.Pao.strategy (ga_theta1 ga))

let pao_epsilon_guarantee =
  qcheck "PAO regret ≤ ε at the full Eq-7 bill (Theorem 2)" ~count:25
    QCheck2.Gen.(int_range 0 10_000)
    (fun seed ->
      let r = rng seed in
      let g, model = Workload.Synth.small_instance ~max_leaves:4 r in
      if not (Graph.simple_disjunctive g) then true
      else begin
        (* A generous epsilon keeps the Eq-7 bill small enough to pay in
           full, so Theorem 2's guarantee genuinely applies. *)
        let epsilon = 0.5 *. Costs.total g in
        let oracle = C.Oracle.of_model model (Stats.Rng.split r) in
        let report =
          C.Pao.run ~max_contexts:500_000 ~epsilon ~delta:0.1 oracle
        in
        let c_pao = fst (Cost.exact_dfs report.C.Pao.strategy model) in
        let _, c_opt = Upsilon.aot model in
        (not report.C.Pao.capped) && c_pao -. c_opt <= epsilon +. 1e-9
      end)

let pao_cap_flag () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.5 ~pg:0.5 in
  let oracle = C.Oracle.of_model model (rng 55) in
  let report = C.Pao.run ~max_contexts:5 ~epsilon:0.01 ~delta:0.01 oracle in
  check_bool "capped" true report.C.Pao.capped;
  check_int "contexts" 5 report.C.Pao.contexts_used

(* ---------- Pao_adaptive ---------- *)

let experiment_fixture () =
  (* root -Re(p=0.2, blockable)-> n -De(p=0.9)-> box ; root -D0(p=0.3)-> box
     De is reachable only 20% of the time: Theorem 2 sampling would stall;
     Theorem 3 aiming must not. *)
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  let re =
    Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~blockable:true
      ~label:"Re" Graph.Reduction
  in
  let de = Graph.Builder.add_retrieval b ~src:n ~label:"De" () in
  let d0 = Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~label:"D0" () in
  let g = Graph.Builder.finish b in
  let p = Array.make (Graph.n_arcs g) 1.0 in
  p.(re) <- 0.2;
  p.(de) <- 0.9;
  p.(d0) <- 0.3;
  (g, Bernoulli_model.make g ~p, re, de, d0)

let pao_adaptive_targets_eq8 () =
  let g, _model, re, de, d0 = experiment_fixture () in
  let targets = C.Pao_adaptive.aim_targets g ~epsilon:1.0 ~delta:0.1 in
  check_bool "all experiments targeted" true
    (targets.(re) > 0 && targets.(de) > 0 && targets.(d0) > 0);
  (* Verify one value against Equation 8 directly. *)
  let f_not = Costs.f_not g de in
  let n = 3. in
  let root = sqrt ((2.0 /. (n *. f_not)) +. 1.0) -. 1.0 in
  let expected = int_of_float (ceil (2.0 /. (root *. root) *. log (4.0 *. n /. 0.1))) in
  check_int "m'(De)" expected targets.(de)

let pao_adaptive_handles_low_rho () =
  let _g, model, re, de, d0 = experiment_fixture () in
  let oracle = C.Oracle.of_model model (rng 56) in
  let report = C.Pao_adaptive.run ~epsilon:1.0 ~delta:0.1 oracle in
  check_bool "not capped" false report.C.Pao_adaptive.capped;
  check_bool "aims met" true
    (report.C.Pao_adaptive.aims.(de) >= report.C.Pao_adaptive.targets.(de));
  (* De was reached only when Re was unblocked. *)
  check_bool "reached ≤ aims" true
    (report.C.Pao_adaptive.reached.(de) <= report.C.Pao_adaptive.aims.(de));
  check_bool "estimates in range" true
    (Array.for_all (fun p -> p >= 0.0 && p <= 1.0) report.C.Pao_adaptive.p_hat);
  (* p̂(Re) should approach 0.2. *)
  check_close ~eps:0.13 "p̂(Re)" 0.2 report.C.Pao_adaptive.p_hat.(re);
  ignore d0

let pao_adaptive_unreached_default () =
  (* With rho = 0 (parent never unblocked) the estimate must fall back to
     0.5 and the run must still terminate. *)
  let g, model, re, de, _d0 = experiment_fixture () in
  let model = Bernoulli_model.set_prob model re 0.0 in
  ignore g;
  let oracle = C.Oracle.of_model model (rng 57) in
  let report = C.Pao_adaptive.run ~scale:0.002 ~epsilon:1.0 ~delta:0.1 oracle in
  check_int "never reached" 0 report.C.Pao_adaptive.reached.(de);
  check_float "p̂ default" 0.5 report.C.Pao_adaptive.p_hat.(de)

(* ---------- Smith / Monitor ---------- *)

let smith_follows_fact_counts () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let smith = C.Smith.strategy g (Workload.University.db2 ()) in
  check_bool "prof first (2000 vs 500)" true
    (Spec.equal_dfs smith (Workload.University.theta1 result));
  (* Flip the counts: grad first. *)
  let smith2 = C.Smith.strategy g (Workload.University.db2 ~n_prof:10 ~n_grad:900 ()) in
  check_bool "grad first" true
    (Spec.equal_dfs smith2 (Workload.University.theta2 result))

let smith_probability_ratios () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let model = C.Smith.probabilities g (Workload.University.db2 ()) in
  let dp = (Graph.arc_by_label g "D_prof").Graph.arc_id in
  let dg = (Graph.arc_by_label g "D_grad").Graph.arc_id in
  (* 2001 prof facts (incl. russ) vs 501 grad facts: ratio ≈ 4. *)
  check_close ~eps:0.01 "4x ratio" 4.0
    (Bernoulli_model.prob model dp /. Bernoulli_model.prob model dg)

let monitor_with_pib () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.05 ~pg:0.9 in
  let oracle = C.Oracle.of_model model (rng 58) in
  let pib = C.Pib.create (ga_theta1 ga) in
  let qp = C.Monitor.create (ga_theta1 ga) (C.Monitor.of_pib pib) in
  C.Monitor.serve qp oracle ~n:2000;
  check_bool "switched to Θ2" true
    (Spec.equal_dfs (C.Monitor.strategy qp) (ga_theta2 ga));
  check_int "one switch" 1 (List.length (C.Monitor.switches qp));
  check_int "all queries answered" 2000 (C.Monitor.queries qp);
  check_bool "cost accounted" true (C.Monitor.total_cost qp > 0.)

let monitor_with_palo () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.05 ~pg:0.9 in
  let oracle = C.Oracle.of_model model (rng 59) in
  let palo =
    C.Palo.create ~config:{ C.Palo.default_config with epsilon = 0.5 } (ga_theta1 ga)
  in
  let qp = C.Monitor.create (ga_theta1 ga) (C.Monitor.of_palo palo) in
  C.Monitor.serve qp oracle ~n:20_000;
  check_bool "PALO finished" true
    (match C.Palo.status palo with C.Palo.Stopped _ -> true | _ -> false);
  check_bool "ended on Θ2" true
    (Spec.equal_dfs (C.Monitor.strategy qp) (ga_theta2 ga))

let monitor_null_learner () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.5 ~pg:0.5 in
  let oracle = C.Oracle.of_model model (rng 60) in
  let qp = C.Monitor.create (ga_theta1 ga) C.Monitor.null_learner in
  C.Monitor.serve qp oracle ~n:100;
  check_int "never switches" 0 (List.length (C.Monitor.switches qp))

(* ---------- Live ---------- *)

let live_correctness () =
  (* The learned rule order must never change answers, only work. *)
  let rb = Workload.University.rulebase () in
  let live =
    C.Live.create ~rulebase:rb
      ~query_form:(Datalog.Parser.parse_atom "instructor(q)")
      ()
  in
  let db = Workload.University.db1 () in
  let plain = Datalog.Sld.config ~rulebase:rb ~db () in
  List.iter
    (fun name ->
      let q = Datalog.Atom.make "instructor" [ Datalog.Term.const name ] in
      let a = C.Live.answer live ~db q in
      let expected, _ = Datalog.Sld.solve_first plain [ Datalog.Clause.Pos q ] in
      check_bool (name ^ " same answer") (expected <> None)
        (a.C.Live.result <> None))
    [ "russ"; "manolis"; "fred"; "russ"; "manolis" ];
  check_int "5 queries" 5 (C.Live.queries live)

let live_learning_reduces_work () =
  (* Genealogy: queries mostly hit siblings/in-laws; the written order
     probes ancestors first. After learning, the SLD engine itself must do
     measurably fewer retrievals per query. *)
  let rb = Workload.Genealogy.rulebase () in
  let pop = Workload.Genealogy.populate (rng 95) ~n_people:150 in
  let db = Workload.Genealogy.db pop in
  let live =
    C.Live.create ~rulebase:rb
      ~query_form:(Datalog.Parser.parse_atom "relative(someone)")
      ()
  in
  let people = Array.of_list (Workload.Genealogy.people pop) in
  let r = rng 96 in
  let ask () =
    let name = people.(Stats.Rng.int r (Array.length people)) in
    let q = Datalog.Atom.make "relative" [ Datalog.Term.const name ] in
    (C.Live.answer live ~db q).C.Live.stats.Datalog.Sld.retrievals
  in
  let phase n =
    let total = ref 0 in
    for _ = 1 to n do
      total := !total + ask ()
    done;
    float_of_int !total /. float_of_int n
  in
  let early = phase 300 in
  (* learning phase *)
  ignore (phase 8_000);
  let late = phase 300 in
  check_bool
    (Printf.sprintf "late %.2f < early %.2f retrievals/query" late early)
    true (late < early);
  check_bool "strategy actually changed" true
    (not (Spec.equal_dfs (C.Live.strategy live) (Spec.default (C.Live.graph live))))

let live_stats_mirror_graph () =
  (* The SLD work counters and the abstract executor must agree per query. *)
  let rb = Workload.Genealogy.rulebase () in
  let pop = Workload.Genealogy.populate (rng 97) ~n_people:50 in
  let db = Workload.Genealogy.db pop in
  let live =
    C.Live.create ~rulebase:rb
      ~query_form:(Datalog.Parser.parse_atom "relative(someone)")
      ()
  in
  List.iter
    (fun name ->
      let q = Datalog.Atom.make "relative" [ Datalog.Term.const name ] in
      let before = C.Live.strategy live in
      let a = C.Live.answer live ~db q in
      let ctx = Infgraph.Context.of_db (C.Live.graph live) ~query:q ~db in
      let outcome = Exec.run (Spec.Dfs before) ctx in
      check_int (name ^ " retrievals") a.C.Live.stats.Datalog.Sld.retrievals
        (List.length outcome.Exec.observations);
      check_int (name ^ " reductions+retrievals")
        (a.C.Live.stats.Datalog.Sld.reductions
        + a.C.Live.stats.Datalog.Sld.retrievals)
        (List.length outcome.Exec.attempted))
    (List.filteri (fun i _ -> i < 10) (Workload.Genealogy.people pop))

(* ---------- Learner (unified API) ---------- *)

let learner_kind_names () =
  List.iter
    (fun k ->
      let s = C.Learner.kind_to_string k in
      check_bool (s ^ " round-trips") true (C.Learner.kind_of_string s = Some k))
    C.Learner.all_kinds;
  check_bool "underscore alias" true
    (C.Learner.kind_of_string "pao_adaptive" = Some `Pao_adaptive);
  check_bool "unknown rejected" true (C.Learner.kind_of_string "sgd" = None)

let learner_conformance () =
  (* Every packed learner honours the API contract: it starts at the seed
     strategy, serializes to a parseable strategy, any conjecture it emits
     is adoptable via reseed, and observing never changes the graph. *)
  let ga = make_ga () in
  let start = ga_theta1 ga in
  let model = ga_model ga ~pp:0.1 ~pg:0.9 in
  List.iter
    (fun k ->
      let name = C.Learner.kind_to_string k in
      let l = ref (C.Learner.create k start) in
      check_string (name ^ " name") name (C.Learner.name !l);
      check_bool (name ^ " starts at seed") true
        (Spec.equal_dfs (C.Learner.current !l) start);
      for seed = 0 to 399 do
        if not (C.Learner.finished !l) then begin
          let ctx = any_context model seed in
          let outcome = Exec.run (Spec.Dfs (C.Learner.current !l)) ctx in
          C.Learner.observe !l ctx outcome;
          match C.Learner.conjecture !l with
          | Some d -> l := C.Learner.reseed !l d
          | None -> ()
        end
      done;
      let cur = C.Learner.current !l in
      let reparsed =
        Strategy.Persist.dfs_of_string ga.ga_graph (C.Learner.serialize !l)
      in
      check_bool (name ^ " serialize round-trips") true
        (Spec.equal_dfs cur reparsed))
    C.Learner.all_kinds

let learner_pib_agrees_with_direct () =
  (* The packed PIB learner is the same algorithm as Pib.t: identical
     observation streams yield identical strategies. *)
  let ga = make_ga () in
  let start = ga_theta1 ga in
  let model = ga_model ga ~pp:0.05 ~pg:0.95 in
  let packed = ref (C.Learner.create `Pib start) in
  let direct = C.Pib.create start in
  for seed = 0 to 199 do
    let ctx = any_context model seed in
    (* Both run their own current strategy (they stay in lockstep). *)
    let o_packed = Exec.run (Spec.Dfs (C.Learner.current !packed)) ctx in
    C.Learner.observe !packed ctx o_packed;
    (match C.Learner.conjecture !packed with
    | Some d -> packed := C.Learner.reseed !packed d
    | None -> ());
    let o_direct = Exec.run (Spec.Dfs (C.Pib.current direct)) ctx in
    ignore (C.Pib.observe direct o_direct)
  done;
  check_bool "same learned strategy" true
    (Spec.equal_dfs (C.Learner.current !packed) (C.Pib.current direct));
  check_bool "grad-first was learned" true
    (Spec.equal_dfs (C.Learner.current !packed) (ga_theta2 ga))

let live_learner_selection () =
  (* Live exposes the chosen learner and every kind answers correctly. *)
  let rb = Workload.University.rulebase () in
  let db = Workload.University.db1 () in
  List.iter
    (fun k ->
      let live =
        C.Live.create ~learner:k ~rulebase:rb
          ~query_form:(Datalog.Parser.parse_atom "instructor(q)")
          ()
      in
      let name = C.Learner.kind_to_string k in
      check_string (name ^ " exposed") name (C.Live.learner_name live);
      let q = Datalog.Atom.make "instructor" [ Datalog.Term.const "russ" ] in
      let a = C.Live.answer live ~db q in
      check_bool (name ^ " answers") true (a.C.Live.result <> None))
    C.Learner.all_kinds

(* ---------- Oracle ---------- *)

let oracle_of_queries () =
  let result = Workload.University.build () in
  let mix = Workload.University.query_mix_section2 result in
  let oracle = C.Oracle.of_queries result.Build.graph mix (rng 61) in
  let g = result.Build.graph in
  let dp = (Graph.arc_by_label g "D_prof").Graph.arc_id in
  let n = 20_000 in
  let dp_ok = ref 0 in
  for _ = 1 to n do
    if Context.unblocked (C.Oracle.next oracle) dp then incr dp_ok
  done;
  check_int "drawn" n (C.Oracle.drawn oracle);
  (* 60% of queries are russ, the only prof. *)
  check_close ~eps:0.02 "p(Dp)" 0.6 (float_of_int !dp_ok /. float_of_int n)

let suite =
  [
    ( "core.delta",
      [
        case "paper cases" delta_paper_cases;
        delta_sandwich;
        delta_exact_when_fully_observed;
        case "rejects experiment graphs" delta_rejects_experiment_graphs;
      ] );
    ( "core.pib1",
      [
        case "counters equal replay" pib1_counters_equal_replay;
        case "switches when better" pib1_switches_when_better;
        slow_case "false positive rate" pib1_false_positive_rate;
        case "rejects non-adjacent" pib1_rejects_nonadjacent;
      ] );
    ( "core.pib",
      [
        case "learns G_A" pib_learns_ga;
        case "reaches optimum on G_B" pib_reaches_optimum_gb;
        case "climbs are monotone (Thm 1)" pib_climbs_monotone;
        case "no climb at the optimum" pib_no_climb_when_optimal;
        case "check_every batching" pib_check_every;
        case "candidate introspection" pib_candidates_introspection;
        slow_case "first-k learning" pib_first_k_learning;
        case "richer move families" pib_richer_moves_no_worse;
        pib_sound_without_independence;
        case "budget accounting" pib_budget_accounting;
      ] );
    ( "core.palo",
      [
        case "stops at an ε-local optimum" palo_stops_and_is_local_opt;
        case "trivial stop" palo_trivial_stop;
        case "experiment graphs supported" palo_works_on_experiment_graphs;
      ] );
    ( "core.pao",
      [
        case "Eq 7 targets" pao_targets_eq7;
        case "QP^A deficit ordering" pao_adaptive_strategy_orders_by_deficit;
        case "collects enough samples" pao_collects_enough_samples;
        case "estimates converge" pao_estimates_converge;
        pao_epsilon_guarantee;
        case "cap flag" pao_cap_flag;
      ] );
    ( "core.pao_adaptive",
      [
        case "Eq 8 targets" pao_adaptive_targets_eq8;
        case "handles low rho" pao_adaptive_handles_low_rho;
        case "unreached defaults to 0.5" pao_adaptive_unreached_default;
      ] );
    ( "core.smith",
      [
        case "follows fact counts" smith_follows_fact_counts;
        case "probability ratios" smith_probability_ratios;
      ] );
    ( "core.monitor",
      [
        case "with PIB" monitor_with_pib;
        slow_case "with PALO" monitor_with_palo;
        case "null learner" monitor_null_learner;
      ] );
    ( "core.live",
      [
        case "correctness preserved" live_correctness;
        slow_case "learning reduces SLD work" live_learning_reduces_work;
        case "stats mirror graph exec" live_stats_mirror_graph;
      ] );
    ( "core.learner",
      [
        case "kind names round-trip" learner_kind_names;
        case "API conformance (all kinds)" learner_conformance;
        case "packed PIB ≡ direct PIB" learner_pib_agrees_with_direct;
        case "Live learner selection" live_learner_selection;
      ] );
    ("core.oracle", [ case "of_queries" oracle_of_queries ]);
  ]
