The strategem CLI, end to end on the Figure 1 knowledge base.

Queries through the SLD engine:

  $ ../bin/strategem.exe query ../examples/data/university.dl --all
  ?- instructor(manolis).
    yes.
    [2 reductions, 2 retrievals (1 hits)]
  ?- instructor(fred).
    no.
    [2 reductions, 2 retrievals (0 hits)]
  ?- instructor(X).
    {X=russ}
    {X=manolis}
    [2 reductions, 2 retrievals (2 hits)]

Explain a single query: the answer, the full span tree (SLD resolution
steps, the mirrored strategy execution arc by arc, the learner phase),
and the cost-model consistency check on the last line. instructor(manolis)
under the written prof-first order pays all four arcs:

  $ ../bin/strategem.exe explain ../examples/data/university.dl 'instructor(manolis)' --dot explain.dot
  ?- instructor(manolis).
  answer: yes  [2 reductions, 2 retrievals]
  instructor(manolis) [query] cost=0
    sld [sld] cost=0
      instructor(manolis) [reduction] cost=1
        prof [retrieval] cost=1 pattern=prof(manolis) hit=false
      instructor(manolis) [reduction] cost=1
        grad [retrieval] cost=1 pattern=grad(manolis) hit=true
    exec [exec] cost=0
      R_instructor_prof [arc] cost=1 arc_id=0 blockable=false unblocked=true
      D_prof [arc] cost=1 arc_id=1 blockable=true unblocked=false
      R_instructor_grad [arc] cost=1 arc_id=2 blockable=false unblocked=true
      D_grad [arc] cost=1 arc_id=3 blockable=true unblocked=true
    learn [learn] cost=0 learner=pib
  paper cost: 4 (monitor: 4, consistent)
  wrote explain.dot

The DOT export paints the four traversed arcs (and their nodes) red:

  $ grep -c 'penwidth=2' explain.dot
  4

The russ query succeeds on the first branch, so only the prof arcs are
paid — and only they are highlighted:

  $ ../bin/strategem.exe explain ../examples/data/university.dl 'instructor(russ)' --dot russ.dot | grep 'paper cost'
  paper cost: 2 (monitor: 2, consistent)
  $ grep -c 'penwidth=2' russ.dot
  2

With --cached the query is answered twice: an untraced warm pass fills
the answer cache, and the traced pass is then served from it — a
cache_hit event (recording the SLD work the fill paid) replaces the sld
phase, while the exec and learn phases still run at the true paper cost:

  $ ../bin/strategem.exe explain ../examples/data/university.dl 'instructor(manolis)' --cached
  ?- instructor(manolis).
  answer: yes  [0 reductions, 0 retrievals]  (cached)
  instructor(manolis) [query] cost=0
    instructor(manolis) [cache_hit] cost=0 saved_reductions=2 saved_retrievals=2 fill_cost=4
    exec [exec] cost=0
      R_instructor_prof [arc] cost=1 arc_id=0 blockable=false unblocked=true
      D_prof [arc] cost=1 arc_id=1 blockable=true unblocked=false
      R_instructor_grad [arc] cost=1 arc_id=2 blockable=false unblocked=true
      D_grad [arc] cost=1 arc_id=3 blockable=true unblocked=true
    learn [learn] cost=0 learner=pib
  paper cost: 4 (monitor: 4, consistent)

With --warm the cache is filled by a different, more general query
instead: the traced query then misses its exact key but is answered by
filtering the general entry's enumerated answer set — a
subsumption-derived hit, marked (cached=derived) and derived=true on
the cache_hit event:

  $ ../bin/strategem.exe explain ../examples/data/university.dl 'instructor(manolis)' --warm 'instructor(X)' | grep -E 'answer:|cache_hit'
  answer: yes  [0 reductions, 0 retrievals]  (cached=derived)
    instructor(manolis) [cache_hit] cost=0 saved_reductions=1 saved_retrievals=1 fill_cost=2 derived=true

The same queries, bottom-up:

  $ ../bin/strategem.exe query ../examples/data/university.dl --engine seminaive
  ?- instructor(manolis).
    instructor(manolis).
  ?- instructor(fred).
    no.
  ?- instructor(X).
    instructor(russ).
    instructor(manolis).

The inference graph and the Section 2 expected costs:

  $ ../bin/strategem.exe optimal ../examples/data/university.dl -f 'instructor(q)' -p 'D_prof=0.6,D_grad=0.15'
  optimal DFS strategy: ⟨R_instructor_prof D_prof R_instructor_grad D_grad⟩
  expected cost: 2.8000
  optimal path order:  ⟨R_instructor_prof D_prof R_instructor_grad D_grad⟩
  expected cost: 2.8000

Smith's fact-count baseline (DB1 has one fact per relation, so it ties and
keeps the written order):

  $ ../bin/strategem.exe smith ../examples/data/university.dl -f 'instructor(q)'
  D_prof: p_hat = 1.000
  D_grad: p_hat = 1.000
  Smith strategy: ⟨R_instructor_prof D_prof R_instructor_grad D_grad⟩

Learning from a grad-heavy stream (seeded, deterministic), saving the
result, and evaluating the saved artifacts:

  $ ../bin/strategem.exe learn ../examples/data/university.dl -f 'instructor(q)' -m 'manolis=0.7,fred=0.3' -n 500 --seed 1 --save-strategy learned.strategy
  initial strategy: ⟨R_instructor_prof D_prof R_instructor_grad D_grad⟩
  climb 1 after 36 samples: ⟨R_instructor_grad D_grad R_instructor_prof D_prof⟩
  final strategy (1 climbs over 500 queries): ⟨R_instructor_grad D_grad R_instructor_prof D_prof⟩
  saved strategy to learned.strategy

  $ ../bin/strategem.exe graph ../examples/data/university.dl -f 'instructor(q)' --save u.graph | tail -n 2
  tree: 5 nodes, 4 arcs, 2 retrievals, total cost 4
  saved graph to u.graph

  $ ../bin/strategem.exe eval u.graph -s learned.strategy -p 'D_prof=0.6,D_grad=0.15'
  strategy: ⟨R_instructor_grad D_grad R_instructor_prof D_prof⟩
  expected cost: 3.7000  success probability: 0.6600
  optimal DFS strategy would be ⟨R_instructor_prof D_prof R_instructor_grad D_grad⟩ at 2.8000
