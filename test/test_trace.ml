open Helpers
module T = Trace
module C = Core

(* ---------- The null tracer ---------- *)

let null_is_inert () =
  check_bool "null disabled" false (T.enabled T.null);
  check_bool "make enabled" true (T.enabled (T.make ()));
  let sp = T.root T.null "q" in
  check_bool "root on null is dummy" true (sp == T.dummy);
  let child = T.push T.null sp ~kind:"sld" "child" in
  check_bool "push on null is dummy" true (child == T.dummy);
  T.event T.null sp ~kind:"retrieval" ~cost:1.0 ~attrs:[ ("k", "v") ] "e";
  T.add_cost T.null sp 5.0;
  T.set_attr T.null sp "k" "v";
  T.finish T.null sp;
  check_bool "no root recorded" true (T.root_span T.null = None);
  check_float "dummy stays cost-free" 0.0 (T.total_cost T.dummy);
  check_int "dummy has no children" 0 (List.length (T.children T.dummy));
  check_int "dummy has no attrs" 0 (List.length (T.attrs T.dummy))

(* ---------- Recording ---------- *)

(* A small fixed tree used by several tests:
   query
   ├── sld (cost 0)
   │   ├── reduction r1 (cost 1)
   │   └── retrieval d1 (cost 1, pattern attr)
   └── exec (cost 0)
       ├── arc Rp (cost 1)
       └── arc Dp (cost 2.5) *)
let build_fixed () =
  let t = T.make () in
  let root = T.root t ~kind:"query" "instructor(manolis)" in
  let sld = T.push t root ~kind:"sld" "sld" in
  T.event t sld ~kind:"reduction" ~cost:1.0 "instructor(manolis)";
  T.event t sld ~kind:"retrieval" ~cost:1.0
    ~attrs:[ ("pattern", "prof(manolis)"); ("hit", "false") ]
    "prof";
  let exec = T.push t root ~kind:"exec" "exec" in
  T.event t exec ~kind:"arc" ~cost:1.0 ~attrs:[ ("arc_id", "0") ] "Rp";
  T.event t exec ~kind:"arc" ~cost:2.5 ~attrs:[ ("arc_id", "2") ] "Dp";
  T.finish t exec;
  T.finish t sld;
  T.finish t root;
  (t, root)

let recording_sums_costs () =
  let _, root = build_fixed () in
  check_float "root own cost" 0.0 (T.cost root);
  check_float "total cost" 5.5 (T.total_cost root);
  check_int "two phases" 2 (List.length (T.children root));
  let execs = T.find_kind root "exec" in
  check_int "one exec phase" 1 (List.length execs);
  check_float "exec subtree cost" 3.5 (T.total_cost (List.hd execs));
  check_int "two arcs" 2 (List.length (T.find_kind root "arc"));
  let d1 = List.hd (T.find_kind root "retrieval") in
  check_bool "attr lookup" true (T.attr d1 "pattern" = Some "prof(manolis)");
  check_bool "missing attr" true (T.attr d1 "nope" = None)

let add_cost_and_attrs () =
  let t = T.make () in
  let root = T.root t "q" in
  T.add_cost t root 2.0;
  T.add_cost t root 0.5;
  check_float "add_cost accumulates" 2.5 (T.cost root);
  T.set_attr t root "learner" "pib";
  T.set_attr t root "learner" "palo";
  check_bool "last write wins" true (T.attr root "learner" = Some "palo");
  (* A new root replaces the old one. *)
  let root2 = T.root t "q2" in
  check_bool "root replaced" true
    (match T.root_span t with Some sp -> sp == root2 | None -> false)

let unfinished_span_has_zero_wall () =
  let t = T.make () in
  let root = T.root t "q" in
  let child = T.push t root "child" in
  T.finish t root;
  check_bool "unfinished wall is 0" true (T.wall_ns child = 0L);
  check_bool "finished wall >= 0" true (T.wall_ns root >= 0L)

(* ---------- Rendering ---------- *)

let pp_tree_deterministic () =
  let _, root = build_fixed () in
  let got = Format.asprintf "%a" T.pp_tree root in
  let want =
    "instructor(manolis) [query] cost=0\n\
    \  sld [sld] cost=0\n\
    \    instructor(manolis) [reduction] cost=1\n\
    \    prof [retrieval] cost=1 pattern=prof(manolis) hit=false\n\
    \  exec [exec] cost=0\n\
    \    Rp [arc] cost=1 arc_id=0\n\
    \    Dp [arc] cost=2.5 arc_id=2\n"
  in
  check_string "text tree" want got

let json_round_trip_fixed () =
  let _, root = build_fixed () in
  let sp = T.of_json (T.to_json root) in
  check_bool "fixed tree round-trips" true (T.equal sp root)

let json_round_trip_nasty_strings () =
  let t = T.make () in
  let root =
    T.root t ~kind:"query" "quote \" backslash \\ newline \n tab \t"
  in
  T.set_attr t root "k\x01" "control \x1f and utf8 ⟨Rp⟩";
  T.event t root ~cost:0.125 "\r\x00";
  T.finish t root;
  let json = T.to_json root in
  check_bool "nasty strings round-trip" true (T.equal (T.of_json json) root)

let json_round_trip_random =
  qcheck "random span trees round-trip through JSON" ~count:200
    QCheck2.Gen.(
      pair small_nat (list_size (int_bound 8) (pair string (pair string float))))
    (fun (depth, items) ->
      let t = T.make () in
      let root = T.root t ~kind:"query" "root" in
      (* Build a chain [depth] deep, then scatter the items as events. *)
      let parent = ref root in
      for i = 1 to min depth 6 do
        parent := T.push t !parent ~kind:"phase" (Printf.sprintf "p%d" i)
      done;
      List.iter
        (fun (name, (k, cost)) ->
          if Float.is_nan cost || Float.is_integer (cost /. infinity) then ()
          else
            T.event t !parent ~kind:k ~cost ~attrs:[ (k, name) ] name)
        items;
      T.finish t root;
      T.equal (T.of_json (T.to_json root)) root)

let of_json_rejects_malformed () =
  let rejects s =
    match T.of_json s with
    | exception T.Parse_error _ -> true
    | _ -> false
  in
  check_bool "empty" true (rejects "");
  check_bool "not an object" true (rejects "[1,2]");
  check_bool "missing name" true (rejects "{\"kind\":\"query\"}");
  check_bool "truncated" true
    (rejects "{\"name\":\"q\",\"kind\":\"\",\"cost\":1");
  check_bool "garbage after" true
    (rejects
       "{\"name\":\"q\",\"kind\":\"\",\"cost\":0,\"start_ns\":0,\"wall_ns\":0}x")

(* ---------- Pure spans, embedded JSON, Chrome export ---------- *)

let pure_span_constructor () =
  let child =
    T.span ~kind:"queue" ~start_ns:1_000L ~wall_ns:500L ~cost:0.0 "queue"
  in
  let root =
    T.span ~kind:"request" ~start_ns:0L ~wall_ns:2_000L
      ~attrs:[ ("loop", "3"); ("conn", "8") ]
      ~children:[ child ] "QUERY instructor(manolis)"
  in
  check_string "name" "QUERY instructor(manolis)" (T.name root);
  check_string "kind" "request" (T.kind root);
  check_bool "attrs kept in order" true
    (T.attrs root = [ ("loop", "3"); ("conn", "8") ]);
  check_int "children attached" 1 (List.length (T.children root));
  check_bool "child timestamps survive" true
    (T.start_ns child = 1_000L && T.wall_ns child = 500L);
  check_bool "defaults are zero" true
    (let bare = T.span "x" in
     T.start_ns bare = 0L && T.wall_ns bare = 0L && T.cost bare = 0.0
     && T.kind bare = "span" && T.children bare = []);
  check_bool "pure spans round-trip through JSON" true
    (T.equal (T.of_json (T.to_json root)) root)

let json_value_of_embedded_envelope () =
  (* The FLIGHT reply embeds span objects inside a larger document; the
     exposed Json reader parses the envelope and of_json_value lifts the
     embedded spans. *)
  let _, root = build_fixed () in
  let envelope =
    Printf.sprintf
      "{\"version\":1,\"retained\":[{\"seq\":4,\"reason\":\"slow\",\
       \"span\":%s}],\"empty\":[],\"flag\":true,\"nothing\":null}"
      (T.to_json root)
  in
  match T.Json.parse envelope with
  | T.Json.Obj fields ->
    (match List.assoc_opt "version" fields with
    | Some (T.Json.Num "1") -> ()
    | _ -> Alcotest.fail "version field");
    (match List.assoc_opt "flag" fields with
    | Some (T.Json.Bool true) -> ()
    | _ -> Alcotest.fail "bool field");
    (match List.assoc_opt "nothing" fields with
    | Some T.Json.Jnull -> ()
    | _ -> Alcotest.fail "null field");
    (match List.assoc_opt "retained" fields with
    | Some (T.Json.Arr [ T.Json.Obj entry ]) -> (
      match List.assoc_opt "span" entry with
      | Some sv ->
        check_bool "embedded span lifts back" true
          (T.equal (T.of_json_value sv) root)
      | None -> Alcotest.fail "span field missing")
    | _ -> Alcotest.fail "retained array shape");
    check_bool "trailing garbage rejected" true
      (match T.Json.parse (envelope ^ "x") with
      | exception T.Parse_error _ -> true
      | _ -> false)
  | _ -> Alcotest.fail "envelope must parse as an object"

let chrome_export_shape () =
  let worker =
    T.span ~kind:"worker" ~start_ns:3_000L ~wall_ns:4_000L
      ~attrs:[ ("loop", "1") ] "worker"
  in
  let root =
    T.span ~kind:"request" ~start_ns:2_000L ~wall_ns:6_000L
      ~attrs:[ ("loop", "1") ] ~children:[ worker ] "QUERY q \"x\""
  in
  let doc = T.to_chrome [ root ] in
  match T.Json.parse doc with
  | T.Json.Obj [ ("traceEvents", T.Json.Arr events) ] ->
    check_int "one event per span" 2 (List.length events);
    let field ev k =
      match ev with
      | T.Json.Obj fields -> List.assoc_opt k fields
      | _ -> None
    in
    List.iter
      (fun ev ->
        check_bool "complete-event phase" true
          (field ev "ph" = Some (T.Json.Str "X"));
        check_bool "pid 1" true (field ev "pid" = Some (T.Json.Num "1"));
        check_bool "tid from the loop attr" true
          (field ev "tid" = Some (T.Json.Num "1")))
      events;
    let ev_root = List.hd events and ev_child = List.nth events 1 in
    check_bool "names escape" true
      (field ev_root "name" = Some (T.Json.Str "QUERY q \"x\""));
    check_bool "ts in microseconds" true
      (field ev_root "ts" = Some (T.Json.Num "2")
      && field ev_child "ts" = Some (T.Json.Num "3"));
    check_bool "dur in microseconds" true
      (field ev_root "dur" = Some (T.Json.Num "6")
      && field ev_child "dur" = Some (T.Json.Num "4"));
    (* The child's lane is nested inside the parent's on the timeline. *)
    let num ev k =
      match field ev k with
      | Some (T.Json.Num raw) -> float_of_string raw
      | _ -> Alcotest.failf "missing numeric %s" k
    in
    check_bool "child nests within parent" true
      (num ev_child "ts" >= num ev_root "ts"
      && num ev_child "ts" +. num ev_child "dur"
         <= num ev_root "ts" +. num ev_root "dur");
    (match field ev_root "args" with
    | Some (T.Json.Obj args) ->
      check_bool "cost rides in args" true
        (List.assoc_opt "cost" args = Some (T.Json.Str "0"));
      check_bool "attrs ride in args" true
        (List.assoc_opt "loop" args = Some (T.Json.Str "1"))
    | _ -> Alcotest.fail "args object missing");
    check_bool "span without the tid attr lands on tid 0" true
      (match T.Json.parse (T.to_chrome [ T.span "bare" ]) with
      | T.Json.Obj [ ("traceEvents", T.Json.Arr [ ev ]) ] ->
        field ev "tid" = Some (T.Json.Num "0")
      | _ -> false)
  | _ -> Alcotest.fail "chrome export must be {traceEvents:[...]}"

(* ---------- Ring ---------- *)

let ring_evicts_oldest () =
  let r = T.Ring.create ~capacity:3 in
  check_int "capacity" 3 (T.Ring.capacity r);
  check_int "empty" 0 (T.Ring.length r);
  List.iter (T.Ring.add r) [ "a"; "b" ];
  Alcotest.(check (list string)) "partial" [ "a"; "b" ] (T.Ring.to_list r);
  List.iter (T.Ring.add r) [ "c"; "d"; "e" ];
  check_int "full" 3 (T.Ring.length r);
  Alcotest.(check (list string))
    "last three, oldest first" [ "c"; "d"; "e" ] (T.Ring.to_list r);
  check_bool "capacity 0 rejected" true
    (match T.Ring.create ~capacity:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Cost-model consistency (the central invariant) ---------- *)

let exec_trace_matches_cost_ga () =
  (* Executor level: the arc events' summed cost equals c(Θ, I). *)
  let ga = make_ga ~cost:(function `Rp -> 1.0 | `Rg -> 2.0 | `Dp -> 3.0 | `Dg -> 4.0) () in
  List.iter
    (fun (dp, dg) ->
      let ctx = ga_context ga ~dp ~dg in
      List.iter
        (fun theta ->
          let t = Trace.make () in
          let parent = Trace.root t ~kind:"exec" "exec" in
          let outcome = Strategy.Exec.run ~tracer:t ~parent (Strategy.Spec.Dfs theta) ctx in
          Trace.finish t parent;
          check_float "arc events sum to c(Θ,I)" outcome.Strategy.Exec.cost
            (Trace.total_cost parent))
        [ ga_theta1 ga; ga_theta2 ga ])
    [ (true, true); (true, false); (false, true); (false, false) ]

let monitor_trace_matches_cost =
  qcheck "Monitor: exec span cost ≡ recorded cost" ~count:100
    (QCheck2.Gen.pair gen_experiment_instance QCheck2.Gen.small_nat)
    (fun ((g, model), seed) ->
      let qp =
        C.Monitor.create (Strategy.Spec.default g) C.Monitor.null_learner
      in
      let ctx = any_context model seed in
      let t = Trace.make () in
      let parent = Trace.root t ~kind:"query" "q" in
      let outcome, _ = C.Monitor.answer ~tracer:t ~parent qp ctx in
      Trace.finish t parent;
      match Trace.find_kind parent "exec" with
      | [ exec ] ->
        abs_float (Trace.total_cost exec -. outcome.Strategy.Exec.cost) < 1e-9
      | _ -> false)

let live_trace_consistent_on_figure1 () =
  (* End to end on the real SLD engine: for every query, the exec span
     sums to the answer's paper cost and the sld span to the engine's
     work counters — across a stream long enough to include a climb. *)
  let rb = Workload.University.rulebase () in
  let live =
    C.Live.create ~rulebase:rb
      ~query_form:(Datalog.Parser.parse_atom "instructor(q)")
      ()
  in
  let db = Workload.University.db1 () in
  let climbs = ref 0 in
  for i = 1 to 60 do
    let name = if i mod 10 = 0 then "fred" else "manolis" in
    let q = Datalog.Atom.make "instructor" [ Datalog.Term.const name ] in
    let t = Trace.make () in
    let ans = C.Live.answer ~tracer:t live ~db q in
    if ans.C.Live.switched then incr climbs;
    let root =
      match Trace.root_span t with Some sp -> sp | None -> Alcotest.fail "no root"
    in
    check_string "root kind" "query" (Trace.kind root);
    (match Trace.find_kind root "exec" with
    | [ exec ] ->
      check_float "exec span ≡ paper cost" ans.C.Live.cost
        (Trace.total_cost exec)
    | _ -> Alcotest.fail "expected exactly one exec span");
    (match Trace.find_kind root "sld" with
    | [ sld ] ->
      check_float "sld span ≡ reductions + retrievals"
        (float_of_int
           (ans.C.Live.stats.Datalog.Sld.reductions
           + ans.C.Live.stats.Datalog.Sld.retrievals))
        (Trace.total_cost sld)
    | _ -> Alcotest.fail "expected exactly one sld span");
    match Trace.find_kind root "learn" with
    | [ learn ] ->
      check_bool "climb event iff switched" ans.C.Live.switched
        (Trace.find_kind learn "climb" <> [])
    | _ -> Alcotest.fail "expected exactly one learn span"
  done;
  check_bool "the stream produced a climb" true (!climbs > 0);
  check_int "Live counts the same climbs" !climbs (C.Live.climbs live)

let live_null_tracer_same_answers () =
  (* Tracing must be an observer: identical answers and costs with and
     without it. *)
  let fresh () =
    C.Live.create
      ~rulebase:(Workload.University.rulebase ())
      ~query_form:(Datalog.Parser.parse_atom "instructor(q)")
      ()
  in
  let db = Workload.University.db1 () in
  let live_a = fresh () and live_b = fresh () in
  List.iter
    (fun name ->
      let q = Datalog.Atom.make "instructor" [ Datalog.Term.const name ] in
      let a = C.Live.answer live_a ~db q in
      let b = C.Live.answer ~tracer:(Trace.make ()) live_b ~db q in
      check_bool (name ^ " same result") true
        ((a.C.Live.result = None) = (b.C.Live.result = None));
      check_float (name ^ " same cost") a.C.Live.cost b.C.Live.cost;
      check_int (name ^ " same retrievals")
        a.C.Live.stats.Datalog.Sld.retrievals
        b.C.Live.stats.Datalog.Sld.retrievals)
    [ "manolis"; "fred"; "russ"; "manolis"; "manolis" ]

let suite =
  [
    ( "trace",
      [
        case "null tracer is inert" null_is_inert;
        case "recording sums costs" recording_sums_costs;
        case "add_cost / set_attr" add_cost_and_attrs;
        case "unfinished span wall = 0" unfinished_span_has_zero_wall;
        case "pp_tree is deterministic" pp_tree_deterministic;
        case "JSON round-trip (fixed)" json_round_trip_fixed;
        case "JSON round-trip (nasty strings)" json_round_trip_nasty_strings;
        json_round_trip_random;
        case "of_json rejects malformed" of_json_rejects_malformed;
        case "pure span constructor" pure_span_constructor;
        case "Json reader on embedded envelopes" json_value_of_embedded_envelope;
        case "Chrome trace-event export" chrome_export_shape;
        case "ring evicts oldest" ring_evicts_oldest;
        case "exec arc events ≡ c(Θ,I) on G_A" exec_trace_matches_cost_ga;
        monitor_trace_matches_cost;
        case "Live trace consistent on Figure 1" live_trace_consistent_on_figure1;
        case "tracing is a pure observer" live_null_tracer_same_answers;
      ] );
  ]
