The paged persistent fact store behind --data-dir: a cold start loads
the program's facts into the store and checkpoints; a restart against
the same directory starts warm — the facts (and the database
generation) come back from disk instead of being re-added.

  $ ../bin/strategem.exe serve ../examples/data/university.dl --port 0 --workers 2 --data-dir data --buffer-pages 8 --metrics-port 0 --log-level off > serve.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do grep -q listening serve.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' serve.log)
  $ MPORT=$(sed -n 's/.*metrics on [^:]*:\([0-9]*\).*/\1/p' serve.log)
  $ grep 'store:' serve.log
  strategem serve: store: loaded 2 fact(s)

Queries resolve against the paged backend exactly as they would in
memory:

  $ ../bin/strategem.exe client --port $PORT 'QUERY instructor(manolis)' 'QUERY instructor(fred)' 'QUERY instructor(X)'
  ANSWER yes reductions=2 retrievals=2
  ANSWER no reductions=2 retrievals=2
  ANSWER {X=russ} reductions=1 retrievals=1

STATS grows an additive store_* block. The cold load inserted two facts
(generation 2, four symbols), checkpointed once, and the WAL is empty
again after the checkpoint:

  $ ../bin/strategem.exe client --port $PORT STATS | grep -E '^(store_enabled|store_page_size_bytes|store_pages|store_pool_pages|store_wal_bytes|store_checkpoints|store_facts|store_symbols|store_generation) '
  store_enabled 1
  store_page_size_bytes 4096
  store_pages 2
  store_pool_pages 8
  store_wal_bytes 0
  store_checkpoints 1
  store_facts 2
  store_symbols 4
  store_generation 2

STATS JSON carries the same data as a versioned store block:

  $ ../bin/strategem.exe client --port $PORT 'STATS JSON' | grep -c '"store":{"version":1,'
  1

The counters are mirrored as strategem_store_* Prometheus series, and
the scrape linter accepts the enlarged exposition:

  $ curl -sf http://127.0.0.1:$MPORT/metrics > metrics.prom
  $ grep '^strategem_store_enabled ' metrics.prom
  strategem_store_enabled 1
  $ grep '^strategem_store_facts ' metrics.prom
  strategem_store_facts 2
  $ grep -c '^# TYPE strategem_store_pool_hits_total counter$' metrics.prom
  1
  $ ../bin/strategem.exe scrape --port $MPORT --lint > /dev/null
  lint: ok

watch renders a store status line under the per-form table:

  $ ../bin/strategem.exe watch --port $MPORT --count 1 | grep -c '^store facts '
  1

Shut down; a clean close leaves exactly the four on-disk structures
(the eviction spill file is per-run and removed on close):

  $ ../bin/strategem.exe client --port $PORT SHUTDOWN
  BYE
  $ wait $SERVER
  $ ls data
  header
  pages
  symtab
  wal

Restart against the same directory: the store is warm, nothing is
re-added (generation still 2, no checkpoint taken this run), and the
same queries answer from disk:

  $ ../bin/strategem.exe serve ../examples/data/university.dl --port 0 --workers 2 --data-dir data --buffer-pages 8 --log-level off > serve2.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do grep -q listening serve2.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' serve2.log)
  $ grep 'store:' serve2.log
  strategem serve: store: warm start (2 fact(s))
  $ ../bin/strategem.exe client --port $PORT 'QUERY instructor(manolis)' 'QUERY instructor(X)' | sed 's/ reductions=.*//'
  ANSWER yes
  ANSWER {X=russ}
  $ ../bin/strategem.exe client --port $PORT STATS SHUTDOWN | grep -E '^(store_facts|store_generation|store_checkpoints) |^BYE'
  store_checkpoints 0
  store_facts 2
  store_generation 2
  BYE
  $ wait $SERVER
