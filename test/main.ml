let () =
  Alcotest.run "strategem"
    (Test_stats.suite @ Test_datalog.suite @ Test_infgraph.suite
   @ Test_strategy.suite @ Test_persist.suite @ Test_core.suite
   @ Test_trace.suite @ Test_workload.suite @ Test_serve.suite
   @ Test_cache.suite @ Test_obs.suite @ Test_store.suite)
