The serve daemon end to end: start on an ephemeral port, answer queries
while learning online (and caching answers), snapshot, shut down
gracefully, and resume the learned strategy after a restart. This first
server runs --no-subsume so every cache interaction below is an exact
alpha-variant hit or a true miss (subsumption gets its own server at
the end).

  $ ../bin/strategem.exe serve ../examples/data/university.dl --port 0 --workers 2 --state-dir state --trace-sample 4 --metrics-port 0 --no-subsume > serve.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do grep -q listening serve.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' serve.log)
  $ MPORT=$(sed -n 's/.*metrics on [^:]*:\([0-9]*\).*/\1/p' serve.log)

A first conversation: the protocol banner, liveness, the three Figure-1
queries (prof-first rule order: instructor(manolis) costs two retrievals
because the prof branch is tried first), and the current strategy of the
bound form. All three queries are cold, so each pays its full SLD cost.

  $ ../bin/strategem.exe client --port $PORT HELLO PING 'QUERY instructor(manolis)' 'QUERY instructor(fred)' 'QUERY instructor(X)' 'STRATEGY instructor(q)'
  HELLO strategem/3 learner=pib
  PONG
  ANSWER yes reductions=2 retrievals=2
  ANSWER no reductions=2 retrievals=2
  ANSWER {X=russ} reductions=1 retrievals=1
  OK instructor_1_b ⟨R_instructor_prof D_prof R_instructor_grad D_grad⟩

A grad-heavy stream: every repeat is served from the answer cache
(reductions=0, flagged "cached"), yet the learner still observes each
query at its true paper cost and climbs to grad-first under live traffic
(the "switched" reply).

  $ yes 'QUERY instructor(manolis)' | head -80 | ../bin/strategem.exe client --port $PORT - | sort | uniq -c | sed 's/^ *//'
  79 ANSWER yes reductions=0 retrievals=0 cached
  1 ANSWER yes reductions=0 retrievals=0 cached switched

The metrics confirm the climb (latency fields vary run to run, so only
the stable counters are shown):

  $ ../bin/strategem.exe client --port $PORT STATS | grep -E '^(queries_total|answered_total|climbs_total|busy_total|errors_total|forms_active) '
  queries_total 83
  answered_total 82
  climbs_total 1
  busy_total 0
  errors_total 0
  forms_active 2

...and so do the cache counters: the three cold queries filled three
entries, the 80 repeats all hit. The additive subsumption fields are
present (and zero) even with --no-subsume:

  $ ../bin/strategem.exe client --port $PORT STATS | grep -E '^(cache_enabled|cache_hits|cache_misses|cache_entries|cache_subsume_enabled|cache_derived_hits) '
  cache_enabled 1
  cache_hits 80
  cache_misses 3
  cache_entries 3
  cache_subsume_enabled 0
  cache_derived_hits 0

The worker pool reports how many OCaml domains it spawned. The value
is the requested worker count clamped to the host's core count, so
only its presence is stable across machines:

  $ ../bin/strategem.exe client --port $PORT STATS | grep -c '^domains [0-9]*$'
  1

The same counters are also served as Prometheus metrics over HTTP
(--metrics-port): /healthz answers ready, and /metrics is valid text
exposition format 0.0.4 — the scrape --lint subcommand checks HELP/TYPE
presence, name validity, duplicate series, and histogram consistency,
and exits nonzero on any violation.

  $ curl -sf http://127.0.0.1:$MPORT/healthz
  ready
  $ curl -sf http://127.0.0.1:$MPORT/metrics > metrics.prom
  $ grep -c '^# TYPE strategem_queries_total counter$' metrics.prom
  1
  $ grep -o 'strategem_queries_total{form="instructor_1_b"} [0-9]*' metrics.prom
  strategem_queries_total{form="instructor_1_b"} 82
  $ grep -c '^# TYPE strategem_query_latency_us histogram$' metrics.prom
  1
  $ grep -c 'strategem_query_latency_us_bucket{form="instructor_1_b",le="+Inf"} 82' metrics.prom
  1
  $ grep '^strategem_cache_hits_total ' metrics.prom
  strategem_cache_hits_total 80
  $ grep -o 'strategem_climbs_total{form="instructor_1_b"} [0-9]*' metrics.prom
  strategem_climbs_total{form="instructor_1_b"} 1
  $ grep -c '^strategem_domains [0-9]*$' metrics.prom
  1
  $ grep -c '^strategem_domain_connections_total{domain="0"} [0-9]*$' metrics.prom
  1
  $ grep -c 'strategem_learner_epsilon{form="instructor_1_' metrics.prom
  2
  $ ../bin/strategem.exe scrape --port $MPORT --lint > /dev/null
  lint: ok

The watch subcommand polls the same endpoint and renders the per-form
learner-convergence table (one header plus one row per form):

  $ ../bin/strategem.exe watch --port $MPORT --count 1 | grep -c '^FORM\|^instructor_1_'
  3

...along with one row per event loop of the reactor fleet:

  $ ../bin/strategem.exe watch --port $MPORT --count 1 | grep -c '^loop 0 '
  1

Every request's lifecycle is tracked by default and counted in the
additive STATS field:

  $ ../bin/strategem.exe client --port $PORT STATS | grep -c '^lifecycle_requests_total [1-9][0-9]*$'
  1

The always-on flight recorder keeps a per-loop ring of lifecycle
events. FLIGHT dumps every ring (merged, time-ordered) plus the
tail-retained traces as one JSON envelope; the accept/request/flush
events of the conversations above are in it:

  $ ../bin/strategem.exe client --port $PORT FLIGHT | grep -c '"version":1,"loops":[0-9]*,"flight_capacity":4096'
  1
  $ ../bin/strategem.exe client --port $PORT FLIGHT | grep -o '"code":"accept"\|"code":"request"\|"code":"flush"' | sort -u
  "code":"accept"
  "code":"flush"
  "code":"request"

The same dump is served over HTTP at /debug/flight and by the flight
subcommand; --chrome converts the retained span trees to Chrome
trace-event JSON (empty here — no request was slow, shed, or errored,
and tail-based retention keeps only those):

  $ curl -sf http://127.0.0.1:$MPORT/debug/flight | grep -c '"version":1'
  1
  $ ../bin/strategem.exe flight --port $MPORT | grep -c '"version":1'
  1
  $ ../bin/strategem.exe flight --port $MPORT --chrome
  {"traceEvents":[]}

The tail subcommand streams retained traces as they appear — nothing
yet, for the same reason:

  $ ../bin/strategem.exe tail --port $MPORT --count 1

Unknown verbs, malformed arguments, and unparsable queries are answered
with structured ERR lines (a machine-readable code first):

  $ ../bin/strategem.exe client --port $PORT FROBNICATE 'QUERY instructor(' 'PING now'
  ERR unknown-verb FROBNICATE
  ERR parse expected a term but found end of input
  ERR malformed PING takes no argument

TRACE answers the query and returns its span tree as one JSON object;
the tree's summed exec paper-cost always equals the cost the learner
pipeline recorded for the same query (the built-in cost-model check).
This query is warm, so the tree records a cache_hit event and no sld
phase — the exec and learn phases still run, which is exactly why cached
traffic cannot skew the learner.

  $ ../bin/strategem.exe client --port $PORT 'TRACE instructor(manolis)' | grep -c '"consistent":true'
  1
  $ ../bin/strategem.exe client --port $PORT 'TRACE instructor(manolis)' | grep -o '"kind":"serve"\|"kind":"sld"\|"kind":"exec"\|"kind":"learn"\|"kind":"cache_hit"' | sort -u
  "kind":"cache_hit"
  "kind":"exec"
  "kind":"learn"
  "kind":"serve"

A warm-cache round trip on a query never seen before: the first TRACE
misses and runs SLD, the identical repeat is served from the cache.

  $ ../bin/strategem.exe client --port $PORT 'TRACE instructor(russ)' 'TRACE instructor(russ)' | grep -o '"cached":false\|"cached":true'
  "cached":false
  "cached":true

  $ ../bin/strategem.exe client --port $PORT STATS | grep -E '^(cache_hits|cache_misses|cache_entries) '
  cache_hits 83
  cache_misses 4
  cache_entries 4

With --trace-sample N the daemon keeps the last N query traces; STATS
JSON carries them (and the frozen schema version) for scraping, along
with the versioned cache block:

  $ ../bin/strategem.exe client --port $PORT 'STATS JSON' | grep -o '"schema":1\|"recent_traces":\[' | sort -u
  "recent_traces":[
  "schema":1
  $ ../bin/strategem.exe client --port $PORT 'STATS JSON' | grep -c '"cache":{"version":1,"enabled":true'
  1

The same daemon speaks protocol v4 on the same port: length-prefixed
frames with client-chosen request ids, negotiated per connection by the
HELLO V4 upgrade line. With --proto v4 the CLI pipelines every command
before reading any response and prints each reply line as
'#<id> <line>', sorted by id, so out-of-order arrival stays observable
but the output is deterministic. The banner carries the framed
dialect's version, everything else is the same reply text the line
protocol prints.

  $ ../bin/strategem.exe client --port $PORT --proto v4 HELLO PING 'QUERY instructor(manolis)' 'QUERY instructor(fred)'
  #1 HELLO strategem/4 learner=pib
  #2 PONG
  #3 ANSWER yes reductions=0 retrievals=0 cached
  #4 ANSWER no reductions=0 retrievals=0 cached

Lines the framed dialect cannot carry are answered locally under id 0
with the same structured ERR the server would send:

  $ ../bin/strategem.exe client --port $PORT --proto v4 FROBNICATE 'PING now' PING
  #0 ERR unknown-verb FROBNICATE
  #0 ERR malformed PING takes no argument
  #1 PONG

A multi-line reply (STATS) arrives as one frame under one id; the
reactor's transport gauges are in it, counting this very connection:

  $ ../bin/strategem.exe client --port $PORT --proto v4 STATS | grep -E '^#1 (conns_open|pipeline_depth) '
  #1 conns_open 1
  #1 pipeline_depth 1

...and STATS JSON carries the additive protocol block (schema
unchanged — pre-v4 scrapers are not broken):

  $ ../bin/strategem.exe client --port $PORT 'STATS JSON' | grep -o '"schema":1'
  "schema":1
  $ ../bin/strategem.exe client --port $PORT 'STATS JSON' | grep -oE '"protocol":\{"backend":"[a-z]+","frame_version":4'
  "protocol":{"backend":"epoll","frame_version":4

--proto auto negotiates v4 against this server (same #id output), and
falls back to the plain line dialect against anything older:

  $ ../bin/strategem.exe client --port $PORT --proto auto PING
  #1 PONG

Snapshot both learned forms and shut down (the daemon also snapshots on
shutdown); the state directory holds form, graph, and strategy per form.

  $ ../bin/strategem.exe client --port $PORT SNAPSHOT SHUTDOWN
  OK snapshot saved 2 form(s)
  BYE
  $ wait $SERVER
  $ tail -n 1 serve.log
  strategem serve: shut down cleanly
  $ ls state
  instructor_1_b.form
  instructor_1_b.graph
  instructor_1_b.strategy
  instructor_1_f.form
  instructor_1_f.graph
  instructor_1_f.strategy

A restarted server reloads the snapshots: the bound form resumes at the
learned grad-first strategy, and the very first query is already cheap.
This restart also selects a different learner (--learner palo), turns
the answer cache off (--no-cache), and silences the structured log
(--log-level off): the query runs real SLD and the metrics report the
cache as disabled.

  $ ../bin/strategem.exe serve ../examples/data/university.dl --port 0 --workers 2 --state-dir state --learner palo --no-cache --log-level off > serve2.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do grep -q listening serve2.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' serve2.log)
  $ ../bin/strategem.exe client --port $PORT HELLO 'STRATEGY instructor(q)' 'QUERY instructor(manolis)' STATS SHUTDOWN | grep -E '^(HELLO|OK|ANSWER|forms_loaded|cache_enabled|BYE)'
  HELLO strategem/3 learner=palo
  OK instructor_1_b ⟨R_instructor_grad D_grad R_instructor_prof D_prof⟩
  ANSWER yes reductions=1 retrievals=1
  forms_loaded 2
  cache_enabled 0
  BYE
  $ wait $SERVER

Subsumption-based answer reuse (--subsume, the default): a fully free
query's cache fill also enumerates its answer set, and a later more
specific query that misses its exact key is answered by filtering that
set instead of running SLD — a derived hit, flagged on the wire as
cached=derived. A derived "yes" needs a matching row; a derived "no"
needs the complete set to rule every row out.

  $ ../bin/strategem.exe serve ../examples/data/university.dl --port 0 --workers 2 --metrics-port 0 --log-level off > serve3.log 2>&1 &
  $ SERVER=$!
  $ for _ in $(seq 1 100); do grep -q listening serve3.log && break; sleep 0.1; done
  $ PORT=$(sed -n 's/.*listening on [^:]*:\([0-9]*\).*/\1/p' serve3.log)
  $ MPORT=$(sed -n 's/.*metrics on [^:]*:\([0-9]*\).*/\1/p' serve3.log)

The general query pays SLD once; neither specialization ever runs it —
instructor(russ) filters down to a cached row, and instructor(fred)
is a derived "no" read off the complete answer set:

  $ ../bin/strategem.exe client --port $PORT 'QUERY instructor(X)' 'QUERY instructor(russ)' 'QUERY instructor(fred)'
  ANSWER {X=russ} reductions=1 retrievals=1
  ANSWER yes reductions=0 retrievals=0 cached=derived
  ANSWER no reductions=0 retrievals=0 cached=derived

A derived verdict is promoted to an exact entry under its own key, so
the repeat is a plain exact hit:

  $ ../bin/strategem.exe client --port $PORT 'QUERY instructor(russ)'
  ANSWER yes reductions=0 retrievals=0 cached

TRACE marks derived answers both in the reply object and on the
cache_hit event:

  $ ../bin/strategem.exe client --port $PORT 'TRACE instructor(sam)' | grep -o '"cached":true,"derived":true\|"kind":"cache_hit"' | sort -u
  "cached":true,"derived":true
  "kind":"cache_hit"

The cache counters split exact from derived service; the probe/index
machinery reports its own counters (STATS text, the versioned JSON
block, and Prometheus all carry them):

  $ ../bin/strategem.exe client --port $PORT STATS | grep -E '^(cache_hits|cache_misses|cache_subsume_enabled|cache_derived_hits|cache_subsume_misses|cache_index_keys) '
  cache_hits 1
  cache_misses 1
  cache_subsume_enabled 1
  cache_derived_hits 3
  cache_subsume_misses 1
  cache_index_keys 1
  $ ../bin/strategem.exe client --port $PORT 'STATS JSON' | grep -o '"subsume":{"enabled":true,"derived_hits":3[^}]*}'
  "subsume":{"enabled":true,"derived_hits":3,"derived_scan_entries":3,"subsume_misses":1,"index_keys":1}
  $ curl -sf http://127.0.0.1:$MPORT/metrics > metrics3.prom
  $ grep '^strategem_cache_derived_hits_total ' metrics3.prom
  strategem_cache_derived_hits_total 3
  $ grep -c '^# TYPE strategem_cache_filter_latency_us histogram$' metrics3.prom
  1

  $ ../bin/strategem.exe client --port $PORT SHUTDOWN
  BYE
  $ wait $SERVER
