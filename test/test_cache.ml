(* The lib/cache layer: canonical keys, the sharded LRU, the answer
   cache's token/generation validity rules, SLD subgoal memoization, and
   the conformance guarantee that cached traffic leaves the learner's
   trajectory unchanged. *)

open Helpers
module D = Datalog

let atom = D.Parser.parse_atom

(* ---------- Key ---------- *)

let key_canonical_basics () =
  let k1, v1 = Cache.Key.of_atom (atom "anc(X, Y)") in
  let k2, v2 = Cache.Key.of_atom (atom "anc(A, B)") in
  check_bool "alpha-equivalent atoms share a key" true (D.Atom.equal k1 k2);
  check_int "two vars" 2 (Array.length v1);
  check_bool "original vars preserved, in order" true
    (v1.(0).D.Term.name = "X" && v1.(1).D.Term.name = "Y"
    && v2.(0).D.Term.name = "A" && v2.(1).D.Term.name = "B");
  (* A repeated variable is a different query than two distinct ones. *)
  let k3, v3 = Cache.Key.of_atom (atom "anc(X, X)") in
  check_bool "anc(X,X) distinct from anc(X,Y)" false (D.Atom.equal k1 k3);
  check_int "one var" 1 (Array.length v3);
  (* Ground atoms are their own key. *)
  let g = atom "anc(a, b)" in
  let kg, vg = Cache.Key.of_atom g in
  check_bool "ground key is the atom" true (D.Atom.equal g kg);
  check_int "no vars" 0 (Array.length vg);
  (* First-occurrence order with interleaved constants and repeats. *)
  let k4, v4 = Cache.Key.of_atom (atom "p(a, X, b, X, Y)") in
  check_int "two distinct vars" 2 (Array.length v4);
  check_bool "canonical shape" true
    (D.Atom.equal k4
       (D.Atom.make "p"
          [
            D.Term.const "a";
            D.Term.Var (Cache.Key.canonical_var 0);
            D.Term.const "b";
            D.Term.Var (Cache.Key.canonical_var 0);
            D.Term.Var (Cache.Key.canonical_var 1);
          ]));
  check_bool "index_of_canonical inverts canonical_var" true
    (Cache.Key.index_of_canonical (Cache.Key.canonical_var 3) = Some 3);
  check_bool "source vars are not canonical" true
    (Cache.Key.index_of_canonical { D.Term.name = "X"; gen = 0 } = None)

let gen_args =
  let open QCheck2.Gen in
  let term =
    oneof
      [
        map (fun i -> D.Term.const (Printf.sprintf "c%d" (i mod 3))) small_nat;
        map (fun i -> D.Term.var (Printf.sprintf "V%d" (i mod 4))) small_nat;
      ]
  in
  list_size (int_range 1 5) term

let key_alpha_equivalence =
  qcheck "renaming variables never changes the key" ~count:300 gen_args
    (fun args ->
      let renamed =
        List.map
          (function
            | D.Term.Var v -> D.Term.var ("r_" ^ v.D.Term.name)
            | t -> t)
          args
      in
      let k, vars = Cache.Key.of_atom (D.Atom.make "p" args) in
      let k', vars' = Cache.Key.of_atom (D.Atom.make "p" renamed) in
      D.Atom.equal k k' && Array.length vars = Array.length vars')

let key_canonical_fixpoint =
  qcheck "canonicalization is idempotent" ~count:300 gen_args (fun args ->
      let k, _ = Cache.Key.of_atom (D.Atom.make "p" args) in
      D.Atom.equal k (fst (Cache.Key.of_atom k)))

(* ---------- Lru ---------- *)

module Int_lru = Cache.Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let lru_eviction_order () =
  let t = Int_lru.create ~shards:1 ~capacity_bytes:300 () in
  Int_lru.add t 1 "a" ~bytes:100;
  Int_lru.add t 2 "b" ~bytes:100;
  Int_lru.add t 3 "c" ~bytes:100;
  check_int "full" 3 (Int_lru.length t);
  check_int "accounted" 300 (Int_lru.bytes t);
  (* Touching 1 makes 2 the least recently used. *)
  check_bool "find promotes" true (Int_lru.find t 1 = Some "a");
  Int_lru.add t 4 "d" ~bytes:100;
  check_bool "LRU entry evicted" true (Int_lru.find t 2 = None);
  check_bool "touched entry kept" true (Int_lru.find t 1 = Some "a");
  check_bool "3 kept" true (Int_lru.find t 3 = Some "c");
  check_bool "4 kept" true (Int_lru.find t 4 = Some "d");
  check_int "one eviction" 1 (Int_lru.evictions t);
  (* Replacing re-accounts the byte size. *)
  Int_lru.add t 4 "D" ~bytes:50;
  check_bool "replaced" true (Int_lru.find t 4 = Some "D");
  check_int "bytes after replace" 250 (Int_lru.bytes t);
  (* An oversized entry is admitted alone (never evicts itself). *)
  Int_lru.add t 9 "huge" ~bytes:1000;
  check_bool "oversized admitted" true (Int_lru.find t 9 = Some "huge");
  check_int "alone" 1 (Int_lru.length t);
  check_int "three more evictions" 4 (Int_lru.evictions t);
  check_bool "remove present" true (Int_lru.remove t 9);
  check_bool "remove absent" false (Int_lru.remove t 9);
  check_int "empty" 0 (Int_lru.length t);
  check_int "no bytes" 0 (Int_lru.bytes t)

(* ---------- Answers ---------- *)

let answers_roundtrip () =
  let db = D.Database.of_list [ atom "par(a, b)" ] in
  let c = Cache.Answers.create ~capacity_bytes:(1 lsl 16) () in
  let q = atom "anc(X, Y)" in
  check_bool "cold miss" true (Cache.Answers.find c ~db q = None);
  let result =
    D.Subst.empty
    |> D.Subst.bind { D.Term.name = "X"; gen = 0 } (D.Term.const "a")
    |> D.Subst.bind { D.Term.name = "Y"; gen = 0 } (D.Term.const "b")
  in
  Cache.Answers.store c ~db q ~result:(Some result) ~reductions:3
    ~retrievals:2 ~cost:5.0;
  (* Look up through an alpha-variant: the hit rebases onto ITS vars. *)
  (match Cache.Answers.find c ~db (atom "anc(P, Q)") with
  | None -> Alcotest.fail "expected a hit"
  | Some h ->
    check_int "fill reductions" 3 h.Cache.Answers.reductions;
    check_int "fill retrievals" 2 h.Cache.Answers.retrievals;
    check_float "fill cost" 5.0 h.Cache.Answers.cost;
    (match h.Cache.Answers.result with
    | None -> Alcotest.fail "expected an answer substitution"
    | Some s ->
      check_bool "P = a" true
        (D.Term.equal (D.Subst.apply s (D.Term.var "P")) (D.Term.const "a"));
      check_bool "Q = b" true
        (D.Term.equal (D.Subst.apply s (D.Term.var "Q")) (D.Term.const "b"))));
  (* "No" answers are cached too (they were not truncated). *)
  let qn = atom "anc(z, z)" in
  Cache.Answers.store c ~db qn ~result:None ~reductions:7 ~retrievals:4
    ~cost:11.0;
  (match Cache.Answers.find c ~db qn with
  | Some { Cache.Answers.result = None; _ } -> ()
  | _ -> Alcotest.fail "expected a cached 'no'");
  let cs = Cache.Answers.counters c in
  check_int "hits" 2 cs.Cache.Answers.hits;
  check_int "misses" 1 cs.Cache.Answers.misses;
  check_int "entries" 2 cs.Cache.Answers.entries

let answers_invalidation () =
  let db = D.Database.of_list [ atom "par(a, b)" ] in
  let c = Cache.Answers.create ~capacity_bytes:(1 lsl 16) () in
  let q = atom "anc(X, Y)" in
  Cache.Answers.store c ~db q ~result:None ~reductions:1 ~retrievals:1
    ~cost:2.0;
  check_bool "warm" true (Cache.Answers.find c ~db q <> None);
  (* Mutation bumps the generation; the stale entry drops on lookup. *)
  check_bool "fact added" true (D.Database.add db (atom "par(b, c)"));
  check_bool "stale entry dropped" true (Cache.Answers.find c ~db q = None);
  let cs = Cache.Answers.counters c in
  check_int "invalidations" 1 cs.Cache.Answers.invalidations;
  check_int "entries" 0 cs.Cache.Answers.entries;
  (* A different database instance never matches, whatever its state. *)
  Cache.Answers.store c ~db q ~result:None ~reductions:1 ~retrievals:1
    ~cost:2.0;
  let db2 = D.Database.of_list (D.Database.to_list db) in
  check_bool "other instance misses" true
    (Cache.Answers.find c ~db:db2 q = None)

(* ---------- Sld.Memo ---------- *)

let memo_kb () =
  let rules, facts, _ =
    D.Parser.parse_kb
      "anc(X, Y) :- par(X, Y).\n\
       anc(X, Y) :- par(X, Z), anc(Z, Y).\n\
       par(a, b). par(b, c). par(c, d).\n"
  in
  (D.Rulebase.of_list rules, D.Database.of_list facts)

let memo_same_answers () =
  let rulebase, db = memo_kb () in
  let plain = D.Sld.config ~rulebase ~db () in
  let memo = D.Sld.Memo.create () in
  let memoized = D.Sld.config ~memo ~rulebase ~db () in
  List.iter
    (fun q ->
      let goal = D.Parser.parse_query q in
      check_bool q (D.Sld.provable plain goal) (D.Sld.provable memoized goal))
    [ "anc(a, d)"; "anc(b, d)"; "anc(d, a)"; "anc(a, a)"; "par(a, b)" ];
  (* The repeat of a memoized ground query is pure table lookup. *)
  let _, stats = D.Sld.solve_first memoized (D.Parser.parse_query "anc(a, d)") in
  check_int "repeat costs no reductions" 0 stats.D.Sld.reductions;
  check_int "repeat costs no retrievals" 0 stats.D.Sld.retrievals;
  let cs = D.Sld.Memo.counters memo in
  check_bool "hits recorded" true (cs.D.Sld.Memo.hits > 0);
  check_bool "entries recorded" true (cs.D.Sld.Memo.entries > 0)

let memo_invalidation () =
  let rulebase, db = memo_kb () in
  let memo = D.Sld.Memo.create () in
  let cfg = D.Sld.config ~memo ~rulebase ~db () in
  let q = D.Parser.parse_query "anc(a, e)" in
  check_bool "not derivable yet" false (D.Sld.provable cfg q);
  check_bool "fact added" true (D.Database.add db (atom "par(d, e)"));
  (* Without generation checking this would serve the stale 'no'. *)
  check_bool "derivable after mutation" true (D.Sld.provable cfg q);
  check_bool "stable on repeat" true (D.Sld.provable cfg q);
  let cs = D.Sld.Memo.counters memo in
  check_bool "stale verdicts invalidated" true
    (cs.D.Sld.Memo.invalidations > 0)

let memo_never_caches_truncated () =
  let rulebase, db = memo_kb () in
  let memo = D.Sld.Memo.create () in
  let shallow = D.Sld.config ~memo ~depth_limit:2 ~rulebase ~db () in
  let q = D.Parser.parse_query "anc(a, d)" in
  let r, stats = D.Sld.solve_first shallow q in
  check_bool "cut by the depth limit" true
    (r = None && stats.D.Sld.truncated);
  (* The truncated 'no' is "unknown": it must not poison a deep search
     sharing the same table. *)
  let deep = D.Sld.config ~memo ~rulebase ~db () in
  check_bool "deep search still proves it" true (D.Sld.provable deep q)

(* ---------- Learner conformance ---------- *)

(* The acceptance criterion of the caching layer: an identical query
   stream answered with the cache + memo on must leave the learner in an
   identical state — same per-query paper cost (what the statistics are
   built from), same climb points, same final strategy. *)
let learner_trajectory_unchanged () =
  let kb_text =
    "instructor(X) :- prof(X).\n\
     instructor(X) :- grad(X).\n\
     prof(russ).\n\
     grad(manolis).\n"
  in
  let mk () =
    let rules, facts, _ = D.Parser.parse_kb kb_text in
    (D.Rulebase.of_list rules, D.Database.of_list facts)
  in
  let rulebase, db = mk () in
  let rulebase', db' = mk () in
  let plain = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  let caching =
    Serve.Registry.create ~rulebase:rulebase' (Serve.Metrics.create ())
  in
  let cache = Cache.Answers.create ~capacity_bytes:(1 lsl 20) () in
  let memo = D.Sld.Memo.create () in
  (* A grad-heavy stream mixing hits, misses and a 'no' answer. *)
  let queries =
    List.init 300 (fun i ->
        if i mod 7 = 3 then "instructor(russ)"
        else if i mod 11 = 5 then "instructor(fred)"
        else "instructor(manolis)")
  in
  List.iteri
    (fun i text ->
      let q = atom text in
      let a = Serve.Registry.answer plain ~db q in
      let b = Serve.Registry.answer caching ~cache ~memo ~db:db' q in
      let tag = Printf.sprintf "query %d (%s)" i text in
      check_bool (tag ^ ": answered alike") true
        (Option.is_some a.Core.Live.result
        = Option.is_some b.Core.Live.result);
      check_float (tag ^ ": same paper cost") a.Core.Live.cost
        b.Core.Live.cost;
      check_bool (tag ^ ": same switch decision") true
        (a.Core.Live.switched = b.Core.Live.switched))
    queries;
  let e1 = Serve.Registry.find_or_create plain (atom "instructor(manolis)") in
  let e2 =
    Serve.Registry.find_or_create caching (atom "instructor(manolis)")
  in
  check_string "same final strategy" (Serve.Registry.strategy_string e1)
    (Serve.Registry.strategy_string e2);
  let serialized e =
    Serve.Registry.with_live e (fun live ->
        Core.Learner.serialize (Core.Live.learner live))
  in
  check_string "same serialized learner" (serialized e1) (serialized e2);
  let climbs e = Serve.Registry.with_live e Core.Live.climbs in
  check_int "same climb count" (climbs e1) (climbs e2);
  (* ... and the cache really did serve the bulk of the traffic. *)
  let cs = Cache.Answers.counters cache in
  check_bool "cache served most queries" true (cs.Cache.Answers.hits > 250);
  check_int "three distinct fills" 3 cs.Cache.Answers.entries

(* The acceptance criterion of the domain pool: serving a stream from
   four worker domains must leave every form's learner exactly where
   one domain would have left it. Each form's queries are textually
   identical, so its observation sequence is order-insensitive — any
   divergence means a race (lost update, torn strategy, double climb),
   not an interleaving artifact. *)
let learner_conformance_across_domains () =
  let kb_text =
    "instructor(X) :- prof(X).\n\
     instructor(X) :- grad(X).\n\
     prof(russ).\n\
     grad(manolis).\n"
  in
  let mk () =
    let rules, facts, _ = D.Parser.parse_kb kb_text in
    (D.Rulebase.of_list rules, D.Database.of_list facts)
  in
  (* 300 queries over two forms: bound (instructor_1_b) and free
     (instructor_1_f), interleaved 2:1. *)
  let queries =
    Array.init 300 (fun i ->
        atom (if i mod 3 = 2 then "instructor(X)" else "instructor(manolis)"))
  in
  let rulebase, db = mk () in
  let seq = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  Array.iter (fun q -> ignore (Serve.Registry.answer seq ~db q)) queries;
  let rulebase', db' = mk () in
  let par = Serve.Registry.create ~rulebase:rulebase' (Serve.Metrics.create ()) in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length queries then begin
        ignore (Serve.Registry.answer par ~db:db' queries.(i));
        loop ()
      end
    in
    loop ()
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let summarize reg =
    List.map
      (fun e ->
        ( Serve.Registry.key e,
          Serve.Registry.strategy_string e,
          Serve.Registry.with_live e Core.Live.climbs,
          Serve.Registry.with_live e Core.Live.queries,
          Serve.Registry.with_live e (fun live ->
              Core.Learner.serialize (Core.Live.learner live)) ))
      (Serve.Registry.entries reg)
  in
  let a = summarize seq and b = summarize par in
  check_int "same number of forms" (List.length a) (List.length b);
  List.iter2
    (fun (ka, sa, ca, qa, la) (kb, sb, cb, qb, lb) ->
      check_string "same form key" ka kb;
      check_string (ka ^ ": same final strategy") sa sb;
      check_int (ka ^ ": same climb count") ca cb;
      check_int (ka ^ ": same query count") qa qb;
      check_string (ka ^ ": same serialized learner") la lb)
    a b

let suite =
  [
    ( "cache.key",
      [
        case "canonicalization" key_canonical_basics;
        key_alpha_equivalence;
        key_canonical_fixpoint;
      ] );
    ("cache.lru", [ case "eviction order and accounting" lru_eviction_order ]);
    ( "cache.answers",
      [
        case "store/find through alpha-variants" answers_roundtrip;
        case "generation invalidation" answers_invalidation;
      ] );
    ( "cache.memo",
      [
        case "same answers with and without" memo_same_answers;
        case "invalidation after mutation" memo_invalidation;
        case "truncated results never recorded" memo_never_caches_truncated;
      ] );
    ( "cache.conformance",
      [
        slow_case "learner trajectory unchanged" learner_trajectory_unchanged;
        slow_case "learning identical across worker domains"
          learner_conformance_across_domains;
      ] );
  ]
