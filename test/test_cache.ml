(* The lib/cache layer: canonical keys, the sharded LRU, the answer
   cache's token/generation validity rules, SLD subgoal memoization, and
   the conformance guarantee that cached traffic leaves the learner's
   trajectory unchanged. *)

open Helpers
module D = Datalog

let atom = D.Parser.parse_atom

(* ---------- Key ---------- *)

let key_canonical_basics () =
  let k1, v1 = Cache.Key.of_atom (atom "anc(X, Y)") in
  let k2, v2 = Cache.Key.of_atom (atom "anc(A, B)") in
  check_bool "alpha-equivalent atoms share a key" true (D.Atom.equal k1 k2);
  check_int "two vars" 2 (Array.length v1);
  check_bool "original vars preserved, in order" true
    (v1.(0).D.Term.name = "X" && v1.(1).D.Term.name = "Y"
    && v2.(0).D.Term.name = "A" && v2.(1).D.Term.name = "B");
  (* A repeated variable is a different query than two distinct ones. *)
  let k3, v3 = Cache.Key.of_atom (atom "anc(X, X)") in
  check_bool "anc(X,X) distinct from anc(X,Y)" false (D.Atom.equal k1 k3);
  check_int "one var" 1 (Array.length v3);
  (* Ground atoms are their own key. *)
  let g = atom "anc(a, b)" in
  let kg, vg = Cache.Key.of_atom g in
  check_bool "ground key is the atom" true (D.Atom.equal g kg);
  check_int "no vars" 0 (Array.length vg);
  (* First-occurrence order with interleaved constants and repeats. *)
  let k4, v4 = Cache.Key.of_atom (atom "p(a, X, b, X, Y)") in
  check_int "two distinct vars" 2 (Array.length v4);
  check_bool "canonical shape" true
    (D.Atom.equal k4
       (D.Atom.make "p"
          [
            D.Term.const "a";
            D.Term.Var (Cache.Key.canonical_var 0);
            D.Term.const "b";
            D.Term.Var (Cache.Key.canonical_var 0);
            D.Term.Var (Cache.Key.canonical_var 1);
          ]));
  check_bool "index_of_canonical inverts canonical_var" true
    (Cache.Key.index_of_canonical (Cache.Key.canonical_var 3) = Some 3);
  check_bool "source vars are not canonical" true
    (Cache.Key.index_of_canonical { D.Term.name = "X"; gen = 0 } = None)

let gen_args =
  let open QCheck2.Gen in
  let term =
    oneof
      [
        map (fun i -> D.Term.const (Printf.sprintf "c%d" (i mod 3))) small_nat;
        map (fun i -> D.Term.var (Printf.sprintf "V%d" (i mod 4))) small_nat;
      ]
  in
  list_size (int_range 1 5) term

let key_alpha_equivalence =
  qcheck "renaming variables never changes the key" ~count:300 gen_args
    (fun args ->
      let renamed =
        List.map
          (function
            | D.Term.Var v -> D.Term.var ("r_" ^ v.D.Term.name)
            | t -> t)
          args
      in
      let k, vars = Cache.Key.of_atom (D.Atom.make "p" args) in
      let k', vars' = Cache.Key.of_atom (D.Atom.make "p" renamed) in
      D.Atom.equal k k' && Array.length vars = Array.length vars')

let key_canonical_fixpoint =
  qcheck "canonicalization is idempotent" ~count:300 gen_args (fun args ->
      let k, _ = Cache.Key.of_atom (D.Atom.make "p" args) in
      D.Atom.equal k (fst (Cache.Key.of_atom k)))

(* ---------- Lru ---------- *)

module Int_lru = Cache.Lru.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

let lru_eviction_order () =
  let t = Int_lru.create ~shards:1 ~capacity_bytes:300 () in
  Int_lru.add t 1 "a" ~bytes:100;
  Int_lru.add t 2 "b" ~bytes:100;
  Int_lru.add t 3 "c" ~bytes:100;
  check_int "full" 3 (Int_lru.length t);
  check_int "accounted" 300 (Int_lru.bytes t);
  (* Touching 1 makes 2 the least recently used. *)
  check_bool "find promotes" true (Int_lru.find t 1 = Some "a");
  Int_lru.add t 4 "d" ~bytes:100;
  check_bool "LRU entry evicted" true (Int_lru.find t 2 = None);
  check_bool "touched entry kept" true (Int_lru.find t 1 = Some "a");
  check_bool "3 kept" true (Int_lru.find t 3 = Some "c");
  check_bool "4 kept" true (Int_lru.find t 4 = Some "d");
  check_int "one eviction" 1 (Int_lru.evictions t);
  (* Replacing re-accounts the byte size. *)
  Int_lru.add t 4 "D" ~bytes:50;
  check_bool "replaced" true (Int_lru.find t 4 = Some "D");
  check_int "bytes after replace" 250 (Int_lru.bytes t);
  (* An oversized entry is admitted alone (never evicts itself). *)
  Int_lru.add t 9 "huge" ~bytes:1000;
  check_bool "oversized admitted" true (Int_lru.find t 9 = Some "huge");
  check_int "alone" 1 (Int_lru.length t);
  check_int "three more evictions" 4 (Int_lru.evictions t);
  check_bool "remove present" true (Int_lru.remove t 9);
  check_bool "remove absent" false (Int_lru.remove t 9);
  check_int "empty" 0 (Int_lru.length t);
  check_int "no bytes" 0 (Int_lru.bytes t)

(* ---------- Answers ---------- *)

let answers_roundtrip () =
  let db = D.Database.of_list [ atom "par(a, b)" ] in
  let c = Cache.Answers.create ~capacity_bytes:(1 lsl 16) () in
  let q = atom "anc(X, Y)" in
  check_bool "cold miss" true (Cache.Answers.find c ~db q = None);
  let result =
    D.Subst.empty
    |> D.Subst.bind { D.Term.name = "X"; gen = 0 } (D.Term.const "a")
    |> D.Subst.bind { D.Term.name = "Y"; gen = 0 } (D.Term.const "b")
  in
  Cache.Answers.store c ~db q ~result:(Some result) ~reductions:3
    ~retrievals:2 ~cost:5.0;
  (* Look up through an alpha-variant: the hit rebases onto ITS vars. *)
  (match Cache.Answers.find c ~db (atom "anc(P, Q)") with
  | None -> Alcotest.fail "expected a hit"
  | Some h ->
    check_int "fill reductions" 3 h.Cache.Answers.reductions;
    check_int "fill retrievals" 2 h.Cache.Answers.retrievals;
    check_float "fill cost" 5.0 h.Cache.Answers.cost;
    (match h.Cache.Answers.result with
    | None -> Alcotest.fail "expected an answer substitution"
    | Some s ->
      check_bool "P = a" true
        (D.Term.equal (D.Subst.apply s (D.Term.var "P")) (D.Term.const "a"));
      check_bool "Q = b" true
        (D.Term.equal (D.Subst.apply s (D.Term.var "Q")) (D.Term.const "b"))));
  (* "No" answers are cached too (they were not truncated). *)
  let qn = atom "anc(z, z)" in
  Cache.Answers.store c ~db qn ~result:None ~reductions:7 ~retrievals:4
    ~cost:11.0;
  (match Cache.Answers.find c ~db qn with
  | Some { Cache.Answers.result = None; _ } -> ()
  | _ -> Alcotest.fail "expected a cached 'no'");
  let cs = Cache.Answers.counters c in
  check_int "hits" 2 cs.Cache.Answers.hits;
  check_int "misses" 1 cs.Cache.Answers.misses;
  check_int "entries" 2 cs.Cache.Answers.entries

let answers_invalidation () =
  let db = D.Database.of_list [ atom "par(a, b)" ] in
  let c = Cache.Answers.create ~capacity_bytes:(1 lsl 16) () in
  let q = atom "anc(X, Y)" in
  Cache.Answers.store c ~db q ~result:None ~reductions:1 ~retrievals:1
    ~cost:2.0;
  check_bool "warm" true (Cache.Answers.find c ~db q <> None);
  (* Mutation bumps the generation; the stale entry drops on lookup. *)
  check_bool "fact added" true (D.Database.add db (atom "par(b, c)"));
  check_bool "stale entry dropped" true (Cache.Answers.find c ~db q = None);
  let cs = Cache.Answers.counters c in
  check_int "invalidations" 1 cs.Cache.Answers.invalidations;
  check_int "entries" 0 cs.Cache.Answers.entries;
  (* A different database instance never matches, whatever its state. *)
  Cache.Answers.store c ~db q ~result:None ~reductions:1 ~retrievals:1
    ~cost:2.0;
  let db2 = D.Database.of_list (D.Database.to_list db) in
  check_bool "other instance misses" true
    (Cache.Answers.find c ~db:db2 q = None)

(* ---------- Subsume ---------- *)

let subsume_theta_basics () =
  let some g s =
    Option.is_some (Cache.Subsume.theta_subsumes ~general:(atom g) (atom s))
  in
  check_bool "free pair subsumes ground" true (some "p(X, Y)" "p(a, b)");
  check_bool "repeated var accepts equal args" true (some "p(X, X)" "p(a, a)");
  check_bool "repeated var rejects unequal args" false
    (some "p(X, X)" "p(a, b)");
  check_bool "distinct vars subsume the repeated-var query" true
    (some "p(X, Y)" "p(W, W)");
  check_bool "constants must coincide positionally" false
    (some "p(a, X)" "p(b, c)");
  check_bool "matching constant position" true (some "p(a, X)" "p(a, c)");
  check_bool "var maps to a var" true (some "p(X, Y)" "p(U, V)");
  check_bool "more bound never subsumes less bound" false
    (some "p(a, X)" "p(Y, c)");
  check_bool "ground subsumes only itself" true (some "p(a)" "p(a)");
  check_bool "ground mismatch" false (some "p(a)" "p(b)");
  match
    Cache.Subsume.theta_subsumes ~general:(atom "p(X, Y, X)")
      (atom "p(a, b, a)")
  with
  | None -> Alcotest.fail "expected a witness"
  | Some s ->
    check_bool "witness instantiates general to specific" true
      (D.Atom.equal
         (D.Subst.apply_atom s (atom "p(X, Y, X)"))
         (atom "p(a, b, a)"))

let subsume_index_candidates () =
  let ix = Cache.Subsume.create () in
  let key a = fst (Cache.Key.of_atom (atom a)) in
  let k_free = key "p(X, Y)" in
  let k_b1 = key "p(a, Y)" in
  let k_rep = key "p(X, X)" in
  Cache.Subsume.add ix k_free;
  Cache.Subsume.add ix k_b1;
  Cache.Subsume.add ix k_rep;
  Cache.Subsume.add ix k_free;
  check_int "add is idempotent" 3 (Cache.Subsume.length ix);
  (* A fully bound probe admits every mask; most-bound candidate first. *)
  let cands = Cache.Subsume.candidates ix (atom "p(a, b)") in
  check_int "all three are candidates" 3 (List.length cands);
  check_bool "most specific first" true (D.Atom.equal (List.hd cands) k_b1);
  (* p(Z, b) binds only position 1: the position-0-bound key cannot
     subsume it and is pre-filtered by the mask test. *)
  let cands = Cache.Subsume.candidates ix (atom "p(Z, b)") in
  check_bool "bound-elsewhere key filtered out" false
    (List.exists (D.Atom.equal k_b1) cands);
  (* The probe's own exact key never comes back as its generalization. *)
  let cands = Cache.Subsume.candidates ix ~exclude:k_free (atom "p(U, V)") in
  check_bool "exact key excluded" false
    (List.exists (D.Atom.equal k_free) cands);
  (* Equal masks stay in: p($c0, $c1) genuinely subsumes p(W, W) even
     though both adornments are fully free. *)
  let cands = Cache.Subsume.candidates ix ~exclude:k_rep (atom "p(W, W)") in
  check_bool "equal-mask candidate kept" true
    (List.exists (D.Atom.equal k_free) cands);
  (* Other predicates and arities never mix. *)
  check_int "different predicate: no candidates" 0
    (List.length (Cache.Subsume.candidates ix (atom "q(a, b)")));
  check_int "different arity: no candidates" 0
    (List.length (Cache.Subsume.candidates ix (atom "p(a, b, c)")));
  Cache.Subsume.remove ix k_b1;
  check_int "remove" 2 (Cache.Subsume.length ix)

let subsume_filter_row () =
  let general = fst (Cache.Key.of_atom (atom "p(X, Y)")) in
  let row = [ (0, D.Term.const "a"); (1, D.Term.const "b") ] in
  (match Cache.Subsume.filter_row ~general ~row (atom "p(a, Q)") with
  | None -> Alcotest.fail "matching row must filter through"
  | Some s ->
    check_bool "Q = b" true
      (D.Term.equal (D.Subst.apply s (D.Term.var "Q")) (D.Term.const "b")));
  check_bool "mismatched constant rejects the row" true
    (Cache.Subsume.filter_row ~general ~row (atom "p(z, Q)") = None);
  (* A repeated query variable needs equal row terms. *)
  check_bool "p(W, W) rejects the (a, b) row" true
    (Cache.Subsume.filter_row ~general ~row (atom "p(W, W)") = None);
  let row_aa = [ (0, D.Term.const "a"); (1, D.Term.const "a") ] in
  (match Cache.Subsume.filter_row ~general ~row:row_aa (atom "p(W, W)") with
  | None -> Alcotest.fail "equal row must match the repeated var"
  | Some s ->
    check_bool "W = a" true
      (D.Term.equal (D.Subst.apply s (D.Term.var "W")) (D.Term.const "a")));
  (* instantiate materializes the row for memo seeding. *)
  check_bool "instantiate applies the row" true
    (D.Atom.equal
       (Cache.Subsume.instantiate general row)
       (atom "p(a, b)"))

(* Brute-force θ-subsumption reference: enumerate every assignment of
   the general side's variables to terms occurring in the specific atom
   and test whether any instantiates general to specific exactly. Slow
   and independent of the one-pass matcher under test. *)
let brute_subsumes ~general specific =
  let gvars = D.Term.Var_set.elements (D.Atom.var_set general) in
  let universe = specific.D.Atom.args in
  let rec assign env = function
    | [] -> D.Atom.equal (D.Subst.apply_atom env general) specific
    | v :: rest ->
      List.exists (fun t -> assign (D.Subst.bind v t env) rest) universe
  in
  match gvars with
  | [] -> D.Atom.equal general specific
  | vs -> assign D.Subst.empty vs

(* Variable pools are disjoint between the two sides, mirroring real
   probes: cache keys are canonicalized into their own namespace, so a
   general entry never shares a variable with the query it subsumes
   (shared names would make substitution application chain). *)
let gen_atom_pair =
  let open QCheck2.Gen in
  int_range 1 4 >>= fun n ->
  let term prefix =
    oneof
      [
        map (fun i -> D.Term.const (Printf.sprintf "c%d" (i mod 3))) small_nat;
        map
          (fun i -> D.Term.var (Printf.sprintf "%s%d" prefix (i mod 3)))
          small_nat;
      ]
  in
  pair (list_repeat n (term "G")) (list_repeat n (term "V"))

let subsume_theta_matches_brute =
  qcheck "fast θ-subsumption agrees with the brute-force reference"
    ~count:500 gen_atom_pair (fun (gargs, sargs) ->
      let general = D.Atom.make "p" gargs in
      let specific = D.Atom.make "p" sargs in
      match Cache.Subsume.theta_subsumes ~general specific with
      | None -> not (brute_subsumes ~general specific)
      | Some s ->
        brute_subsumes ~general specific
        && D.Atom.equal (D.Subst.apply_atom s general) specific)

let answers_derived_verdicts () =
  let db = D.Database.of_list [ atom "e(a, b)" ] in
  let c = Cache.Answers.create ~subsume:true ~capacity_bytes:(1 lsl 16) () in
  check_bool "subsume enabled" true (Cache.Answers.subsume_enabled c);
  let bind name cst s =
    D.Subst.bind { D.Term.name; gen = 0 } (D.Term.const cst) s
  in
  let g = atom "p(X, Y)" in
  let s1 = D.Subst.empty |> bind "X" "a" |> bind "Y" "b" in
  let s2 = D.Subst.empty |> bind "X" "c" |> bind "Y" "d" in
  Cache.Answers.store c ~db ~answers:([ s1; s2 ], true) g ~result:(Some s1)
    ~reductions:5 ~retrievals:4 ~cost:9.0;
  (* Derived yes: the row (a, b) filters down to the specialization. *)
  (match Cache.Answers.find c ~db (atom "p(a, Q)") with
  | None -> Alcotest.fail "expected a derived hit"
  | Some h ->
    check_bool "derived" true h.Cache.Answers.derived;
    check_int "parent fill reductions" 5 h.Cache.Answers.reductions;
    (match h.Cache.Answers.result with
    | None -> Alcotest.fail "expected an answer"
    | Some s ->
      check_bool "Q = b" true
        (D.Term.equal (D.Subst.apply s (D.Term.var "Q")) (D.Term.const "b"))));
  (* The verdict was promoted under its own key: the alpha-variant
     repeat is an exact hit, no probe. *)
  (match Cache.Answers.find c ~db (atom "p(a, Z)") with
  | None -> Alcotest.fail "expected the promoted entry to hit"
  | Some h -> check_bool "promoted repeat is exact" false h.Cache.Answers.derived);
  (* Derived no: the complete set has no row with b first. *)
  (match Cache.Answers.find c ~db (atom "p(b, Q)") with
  | Some { Cache.Answers.result = None; derived = true; _ } -> ()
  | _ -> Alcotest.fail "expected a derived 'no'");
  (* A ground specialization derives too. *)
  (match Cache.Answers.find c ~db (atom "p(c, d)") with
  | Some { Cache.Answers.result = Some _; derived = true; _ } -> ()
  | _ -> Alcotest.fail "expected a derived ground 'yes'");
  let cs = Cache.Answers.counters c in
  check_int "derived hits" 3 cs.Cache.Answers.derived_hits;
  check_int "exact hits" 1 cs.Cache.Answers.hits;
  check_int "no plain misses" 0 cs.Cache.Answers.misses;
  check_bool "index keys counted" true (cs.Cache.Answers.index_keys >= 1);
  check_bool "probe scans counted" true (cs.Cache.Answers.derived_scanned >= 3)

let answers_incomplete_never_derives_no () =
  let db = D.Database.of_list [ atom "e(a, b)" ] in
  let c = Cache.Answers.create ~subsume:true ~capacity_bytes:(1 lsl 16) () in
  let bind name cst s =
    D.Subst.bind { D.Term.name; gen = 0 } (D.Term.const cst) s
  in
  let g = atom "p(X, Y)" in
  let s1 = D.Subst.empty |> bind "X" "a" |> bind "Y" "b" in
  (* The enumeration was cut by its cap: the set proves membership but
     never absence. *)
  Cache.Answers.store c ~db ~answers:([ s1 ], false) g ~result:(Some s1)
    ~reductions:1 ~retrievals:1 ~cost:1.0;
  (match Cache.Answers.find c ~db (atom "p(a, Q)") with
  | Some { Cache.Answers.result = Some _; derived = true; _ } -> ()
  | _ -> Alcotest.fail "membership still derives from an incomplete set");
  check_bool "absence never derives from an incomplete set" true
    (Cache.Answers.find c ~db (atom "p(z, Q)") = None);
  let cs = Cache.Answers.counters c in
  check_int "failed probe counted" 1 cs.Cache.Answers.subsume_misses

let answers_parent_no_derives_no () =
  let db = D.Database.of_list [ atom "e(a, b)" ] in
  let c = Cache.Answers.create ~subsume:true ~capacity_bytes:(1 lsl 16) () in
  let g = atom "q(X, Y)" in
  (* The general query failed outright (and was not truncated): every
     specialization inherits the "no". *)
  Cache.Answers.store c ~db ~answers:([], true) g ~result:None ~reductions:2
    ~retrievals:2 ~cost:3.0;
  match Cache.Answers.find c ~db (atom "q(a, Z)") with
  | Some { Cache.Answers.result = None; derived = true; _ } -> ()
  | _ -> Alcotest.fail "expected the parent's 'no' to derive"

let answers_derived_invalidation () =
  let db = D.Database.of_list [ atom "e(a, b)" ] in
  let c = Cache.Answers.create ~subsume:true ~capacity_bytes:(1 lsl 16) () in
  let bind name cst s =
    D.Subst.bind { D.Term.name; gen = 0 } (D.Term.const cst) s
  in
  let g = atom "p(X, Y)" in
  let s1 = D.Subst.empty |> bind "X" "a" |> bind "Y" "b" in
  Cache.Answers.store c ~db ~answers:([ s1 ], true) g ~result:(Some s1)
    ~reductions:1 ~retrievals:1 ~cost:1.0;
  check_bool "derived hit before mutation" true
    (match Cache.Answers.find c ~db (atom "p(a, Q)") with
    | Some h -> h.Cache.Answers.derived
    | None -> false);
  (* The mutation bumps the generation: the parent is stale, so both
     the promoted child and any fresh derivation die with it — exactly
     when an SLD re-run could differ. *)
  check_bool "fact added" true (D.Database.add db (atom "e(z, w)"));
  check_bool "promoted child gone with its parent" true
    (Cache.Answers.find c ~db (atom "p(a, Q)") = None);
  check_bool "fresh specialization finds no generalization" true
    (Cache.Answers.find c ~db (atom "p(z, Q)") = None);
  let cs = Cache.Answers.counters c in
  check_bool "stale entries counted as invalidations" true
    (cs.Cache.Answers.invalidations >= 1)

(* Derived service must agree with running SLD directly, on random
   databases and random specializations of a cached general query. *)
let gen_db_and_query =
  let open QCheck2.Gen in
  let name = map (fun i -> Printf.sprintf "n%d" (i mod 4)) small_nat in
  let edges = list_size (int_range 0 10) (pair name name) in
  let qterm =
    oneof
      [
        map (fun c -> D.Term.const c) name;
        map (fun i -> D.Term.var (Printf.sprintf "Q%d" (i mod 2))) small_nat;
      ]
  in
  pair edges (list_repeat 2 qterm)

let subsume_filter_matches_sld =
  qcheck "filtering a cached general answer set agrees with direct SLD"
    ~count:200 gen_db_and_query (fun (edges, qargs) ->
      let rules, _, _ =
        D.Parser.parse_kb "p(X, Y) :- e(X, Y).\np(X, Y) :- e(Y, X).\n"
      in
      let rulebase = D.Rulebase.of_list rules in
      let db =
        D.Database.of_list
          (List.map
             (fun (x, y) ->
               D.Atom.make "e" [ D.Term.const x; D.Term.const y ])
             edges)
      in
      let cfg = D.Sld.config ~rulebase ~db () in
      let c = Cache.Answers.create ~subsume:true ~capacity_bytes:(1 lsl 20) () in
      let g = atom "p(GX, GY)" in
      let r, st, en = D.Sld.solve_first_enum ~limit:256 cfg [ D.Clause.Pos g ] in
      if st.D.Sld.truncated then true
      else begin
        Cache.Answers.store c ~db
          ~answers:(en.D.Sld.answers, en.D.Sld.complete)
          g ~result:r ~reductions:st.D.Sld.reductions
          ~retrievals:st.D.Sld.retrievals ~cost:1.0;
        let q = D.Atom.make "p" qargs in
        let direct, _ = D.Sld.solve_first cfg [ D.Clause.Pos q ] in
        match Cache.Answers.find c ~db q with
        | None -> false (* the set is complete: find must always answer *)
        | Some h ->
          Option.is_some h.Cache.Answers.result = Option.is_some direct
          && (match h.Cache.Answers.result with
             | None -> true
             | Some s ->
               (* the filtered answer names a real instance *)
               D.Sld.provable cfg [ D.Clause.Pos (D.Subst.apply_atom s q) ])
      end)

(* ---------- Sld.Memo ---------- *)

let memo_seeded_verdicts () =
  let m = D.Sld.Memo.create () in
  let a = atom "p(a, b)" in
  D.Sld.Memo.add m ~token:1 ~gen:1 a true;
  check_bool "seeded verdict found" true
    (D.Sld.Memo.find m ~token:1 ~gen:1 a = Some true);
  check_bool "different generation misses" true
    (D.Sld.Memo.find m ~token:1 ~gen:2 a = None);
  check_bool "different token misses" true
    (D.Sld.Memo.find m ~token:2 ~gen:1 a = None)

let registry_seeds_memo () =
  let rules, facts, _ = D.Parser.parse_kb "p(X) :- e(X).\ne(a).\ne(b).\n" in
  let rulebase = D.Rulebase.of_list rules in
  let db = D.Database.of_list facts in
  let reg = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  let cache = Cache.Answers.create ~subsume:true ~capacity_bytes:(1 lsl 20) () in
  let memo = D.Sld.Memo.create () in
  ignore (Serve.Registry.answer reg ~cache ~memo ~db (atom "p(X)"));
  let token = D.Database.token db and gen = D.Database.generation db in
  check_bool "first enumerated instance seeded" true
    (D.Sld.Memo.find memo ~token ~gen (atom "p(a)") = Some true);
  check_bool "every enumerated instance seeded" true
    (D.Sld.Memo.find memo ~token ~gen (atom "p(b)") = Some true)

let memo_kb () =
  let rules, facts, _ =
    D.Parser.parse_kb
      "anc(X, Y) :- par(X, Y).\n\
       anc(X, Y) :- par(X, Z), anc(Z, Y).\n\
       par(a, b). par(b, c). par(c, d).\n"
  in
  (D.Rulebase.of_list rules, D.Database.of_list facts)

let memo_same_answers () =
  let rulebase, db = memo_kb () in
  let plain = D.Sld.config ~rulebase ~db () in
  let memo = D.Sld.Memo.create () in
  let memoized = D.Sld.config ~memo ~rulebase ~db () in
  List.iter
    (fun q ->
      let goal = D.Parser.parse_query q in
      check_bool q (D.Sld.provable plain goal) (D.Sld.provable memoized goal))
    [ "anc(a, d)"; "anc(b, d)"; "anc(d, a)"; "anc(a, a)"; "par(a, b)" ];
  (* The repeat of a memoized ground query is pure table lookup. *)
  let _, stats = D.Sld.solve_first memoized (D.Parser.parse_query "anc(a, d)") in
  check_int "repeat costs no reductions" 0 stats.D.Sld.reductions;
  check_int "repeat costs no retrievals" 0 stats.D.Sld.retrievals;
  let cs = D.Sld.Memo.counters memo in
  check_bool "hits recorded" true (cs.D.Sld.Memo.hits > 0);
  check_bool "entries recorded" true (cs.D.Sld.Memo.entries > 0)

let memo_invalidation () =
  let rulebase, db = memo_kb () in
  let memo = D.Sld.Memo.create () in
  let cfg = D.Sld.config ~memo ~rulebase ~db () in
  let q = D.Parser.parse_query "anc(a, e)" in
  check_bool "not derivable yet" false (D.Sld.provable cfg q);
  check_bool "fact added" true (D.Database.add db (atom "par(d, e)"));
  (* Without generation checking this would serve the stale 'no'. *)
  check_bool "derivable after mutation" true (D.Sld.provable cfg q);
  check_bool "stable on repeat" true (D.Sld.provable cfg q);
  let cs = D.Sld.Memo.counters memo in
  check_bool "stale verdicts invalidated" true
    (cs.D.Sld.Memo.invalidations > 0)

let memo_never_caches_truncated () =
  let rulebase, db = memo_kb () in
  let memo = D.Sld.Memo.create () in
  let shallow = D.Sld.config ~memo ~depth_limit:2 ~rulebase ~db () in
  let q = D.Parser.parse_query "anc(a, d)" in
  let r, stats = D.Sld.solve_first shallow q in
  check_bool "cut by the depth limit" true
    (r = None && stats.D.Sld.truncated);
  (* The truncated 'no' is "unknown": it must not poison a deep search
     sharing the same table. *)
  let deep = D.Sld.config ~memo ~rulebase ~db () in
  check_bool "deep search still proves it" true (D.Sld.provable deep q)

(* ---------- Learner conformance ---------- *)

(* The acceptance criterion of the caching layer: an identical query
   stream answered with the cache + memo on must leave the learner in an
   identical state — same per-query paper cost (what the statistics are
   built from), same climb points, same final strategy. *)
let learner_trajectory_unchanged () =
  let kb_text =
    "instructor(X) :- prof(X).\n\
     instructor(X) :- grad(X).\n\
     prof(russ).\n\
     grad(manolis).\n"
  in
  let mk () =
    let rules, facts, _ = D.Parser.parse_kb kb_text in
    (D.Rulebase.of_list rules, D.Database.of_list facts)
  in
  let rulebase, db = mk () in
  let rulebase', db' = mk () in
  let plain = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  let caching =
    Serve.Registry.create ~rulebase:rulebase' (Serve.Metrics.create ())
  in
  let cache = Cache.Answers.create ~capacity_bytes:(1 lsl 20) () in
  let memo = D.Sld.Memo.create () in
  (* A grad-heavy stream mixing hits, misses and a 'no' answer. *)
  let queries =
    List.init 300 (fun i ->
        if i mod 7 = 3 then "instructor(russ)"
        else if i mod 11 = 5 then "instructor(fred)"
        else "instructor(manolis)")
  in
  List.iteri
    (fun i text ->
      let q = atom text in
      let a = Serve.Registry.answer plain ~db q in
      let b = Serve.Registry.answer caching ~cache ~memo ~db:db' q in
      let tag = Printf.sprintf "query %d (%s)" i text in
      check_bool (tag ^ ": answered alike") true
        (Option.is_some a.Core.Live.result
        = Option.is_some b.Core.Live.result);
      check_float (tag ^ ": same paper cost") a.Core.Live.cost
        b.Core.Live.cost;
      check_bool (tag ^ ": same switch decision") true
        (a.Core.Live.switched = b.Core.Live.switched))
    queries;
  let e1 = Serve.Registry.find_or_create plain (atom "instructor(manolis)") in
  let e2 =
    Serve.Registry.find_or_create caching (atom "instructor(manolis)")
  in
  check_string "same final strategy" (Serve.Registry.strategy_string e1)
    (Serve.Registry.strategy_string e2);
  let serialized e =
    Serve.Registry.with_live e (fun live ->
        Core.Learner.serialize (Core.Live.learner live))
  in
  check_string "same serialized learner" (serialized e1) (serialized e2);
  let climbs e = Serve.Registry.with_live e Core.Live.climbs in
  check_int "same climb count" (climbs e1) (climbs e2);
  (* ... and the cache really did serve the bulk of the traffic. *)
  let cs = Cache.Answers.counters cache in
  check_bool "cache served most queries" true (cs.Cache.Answers.hits > 250);
  check_int "three distinct fills" 3 cs.Cache.Answers.entries

(* The acceptance criterion of the subsumption layer: serving answers by
   filtering a more general cached set must leave every learner exactly
   where plain SLD — or the exact-only cache — would have left it. The
   stream mixes a free generalization root with bound hits, misses and a
   'no', so both derived and exact service paths are exercised. *)
let learner_trajectory_subsume_invariant () =
  let kb_text =
    "instructor(X) :- prof(X).\n\
     instructor(X) :- grad(X).\n\
     prof(russ).\n\
     grad(manolis).\n"
  in
  let mk () =
    let rules, facts, _ = D.Parser.parse_kb kb_text in
    (D.Rulebase.of_list rules, D.Database.of_list facts)
  in
  let arm subsume =
    let rulebase, db = mk () in
    let reg = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
    let cache =
      if subsume = `Plain then None
      else
        Some
          (Cache.Answers.create
             ~subsume:(subsume = `Subsume)
             ~capacity_bytes:(1 lsl 20) ())
    in
    (reg, cache, D.Sld.Memo.create (), db)
  in
  let p_reg, p_cache, p_memo, p_db = arm `Plain in
  let e_reg, e_cache, e_memo, e_db = arm `Exact in
  let s_reg, s_cache, s_memo, s_db = arm `Subsume in
  let queries =
    List.init 300 (fun i ->
        if i mod 13 = 0 then "instructor(X)"
        else if i mod 7 = 3 then "instructor(russ)"
        else if i mod 11 = 5 then "instructor(fred)"
        else "instructor(manolis)")
  in
  List.iteri
    (fun i text ->
      let q = atom text in
      let go (reg, cache, memo, db) =
        Serve.Registry.answer reg ?cache ~memo ~db q
      in
      let p = go (p_reg, p_cache, p_memo, p_db) in
      let e = go (e_reg, e_cache, e_memo, e_db) in
      let s = go (s_reg, s_cache, s_memo, s_db) in
      let tag = Printf.sprintf "query %d (%s)" i text in
      List.iter
        (fun (arm, a) ->
          check_bool (tag ^ ": answered alike (" ^ arm ^ ")") true
            (Option.is_some a.Core.Live.result
            = Option.is_some p.Core.Live.result);
          check_float (tag ^ ": same paper cost (" ^ arm ^ ")")
            p.Core.Live.cost a.Core.Live.cost;
          check_bool (tag ^ ": same switch decision (" ^ arm ^ ")") true
            (a.Core.Live.switched = p.Core.Live.switched))
        [ ("exact", e); ("subsume", s) ])
    queries;
  (* Both forms' learners must agree across all three arms. *)
  List.iter
    (fun form ->
      let snap reg =
        let e = Serve.Registry.find_or_create reg (atom form) in
        ( Serve.Registry.strategy_string e,
          Serve.Registry.with_live e Core.Live.climbs,
          Serve.Registry.with_live e (fun live ->
              Core.Learner.serialize (Core.Live.learner live)) )
      in
      let sp, cp, lp = snap p_reg in
      let se, ce, le = snap e_reg in
      let ss, cs, ls = snap s_reg in
      check_string (form ^ ": exact strategy") sp se;
      check_string (form ^ ": subsume strategy") sp ss;
      check_int (form ^ ": exact climbs") cp ce;
      check_int (form ^ ": subsume climbs") cp cs;
      check_string (form ^ ": exact serialized learner") lp le;
      check_string (form ^ ": subsume serialized learner") lp ls)
    [ "instructor(manolis)"; "instructor(X)" ];
  (* ... and the subsuming arm really did serve derived hits. *)
  let cs = Cache.Answers.counters (Option.get s_cache) in
  check_bool "derived hits occurred" true (cs.Cache.Answers.derived_hits > 0);
  let ec = Cache.Answers.counters (Option.get e_cache) in
  check_int "exact arm derived nothing" 0 ec.Cache.Answers.derived_hits

(* The acceptance criterion of the domain pool: serving a stream from
   four worker domains must leave every form's learner exactly where
   one domain would have left it. Each form's queries are textually
   identical, so its observation sequence is order-insensitive — any
   divergence means a race (lost update, torn strategy, double climb),
   not an interleaving artifact. *)
let learner_conformance_across_domains () =
  let kb_text =
    "instructor(X) :- prof(X).\n\
     instructor(X) :- grad(X).\n\
     prof(russ).\n\
     grad(manolis).\n"
  in
  let mk () =
    let rules, facts, _ = D.Parser.parse_kb kb_text in
    (D.Rulebase.of_list rules, D.Database.of_list facts)
  in
  (* 300 queries over two forms: bound (instructor_1_b) and free
     (instructor_1_f), interleaved 2:1. *)
  let queries =
    Array.init 300 (fun i ->
        atom (if i mod 3 = 2 then "instructor(X)" else "instructor(manolis)"))
  in
  let rulebase, db = mk () in
  let seq = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  Array.iter (fun q -> ignore (Serve.Registry.answer seq ~db q)) queries;
  let rulebase', db' = mk () in
  let par = Serve.Registry.create ~rulebase:rulebase' (Serve.Metrics.create ()) in
  let next = Atomic.make 0 in
  let worker () =
    let rec loop () =
      let i = Atomic.fetch_and_add next 1 in
      if i < Array.length queries then begin
        ignore (Serve.Registry.answer par ~db:db' queries.(i));
        loop ()
      end
    in
    loop ()
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  let summarize reg =
    List.map
      (fun e ->
        ( Serve.Registry.key e,
          Serve.Registry.strategy_string e,
          Serve.Registry.with_live e Core.Live.climbs,
          Serve.Registry.with_live e Core.Live.queries,
          Serve.Registry.with_live e (fun live ->
              Core.Learner.serialize (Core.Live.learner live)) ))
      (Serve.Registry.entries reg)
  in
  let a = summarize seq and b = summarize par in
  check_int "same number of forms" (List.length a) (List.length b);
  List.iter2
    (fun (ka, sa, ca, qa, la) (kb, sb, cb, qb, lb) ->
      check_string "same form key" ka kb;
      check_string (ka ^ ": same final strategy") sa sb;
      check_int (ka ^ ": same climb count") ca cb;
      check_int (ka ^ ": same query count") qa qb;
      check_string (ka ^ ": same serialized learner") la lb)
    a b

let suite =
  [
    ( "cache.key",
      [
        case "canonicalization" key_canonical_basics;
        key_alpha_equivalence;
        key_canonical_fixpoint;
      ] );
    ("cache.lru", [ case "eviction order and accounting" lru_eviction_order ]);
    ( "cache.answers",
      [
        case "store/find through alpha-variants" answers_roundtrip;
        case "generation invalidation" answers_invalidation;
        case "derived verdicts and promotion" answers_derived_verdicts;
        case "incomplete sets never derive 'no'"
          answers_incomplete_never_derives_no;
        case "a failed general query derives 'no'" answers_parent_no_derives_no;
        case "derived entries die with their parent" answers_derived_invalidation;
      ] );
    ( "cache.subsume",
      [
        case "theta-subsumption basics" subsume_theta_basics;
        case "index candidates and masks" subsume_index_candidates;
        case "row filtering and instantiation" subsume_filter_row;
        subsume_theta_matches_brute;
        subsume_filter_matches_sld;
      ] );
    ( "cache.memo",
      [
        case "same answers with and without" memo_same_answers;
        case "invalidation after mutation" memo_invalidation;
        case "truncated results never recorded" memo_never_caches_truncated;
        case "seeded verdicts are token/generation scoped" memo_seeded_verdicts;
        case "registry seeds ground instances from fills" registry_seeds_memo;
      ] );
    ( "cache.conformance",
      [
        slow_case "learner trajectory unchanged" learner_trajectory_unchanged;
        slow_case "learner invariant under subsumption service"
          learner_trajectory_subsume_invariant;
        slow_case "learning identical across worker domains"
          learner_conformance_across_domains;
      ] );
  ]
