(* The paged persistent fact store: page layout, buffer pool, WAL
   framing and replay, the store engine's durability story (checkpoint +
   idempotent WAL replay, crash-truncated at every byte), and the
   Database backend seam (paged/mem conformance, COW copies). *)

open Helpers
module D = Datalog

let atom = D.Parser.parse_atom

(* ---------- scratch directories ---------- *)

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let temp_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "strategem-store-%d-%d" (Unix.getpid ()) !n)
    in
    rm_rf dir;
    dir

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc content)

(* ---------- Page ---------- *)

let page_roundtrip () =
  let b = Bytes.create 256 in
  Store.Page.init b ~pred:42;
  check_int "pred" 42 (Store.Page.pred b);
  check_int "count" 0 (Store.Page.count b);
  let o1 = Store.Page.append b [| 1; 2; 3 |] in
  let o2 = Store.Page.append b [| 4 |] in
  let o3 = Store.Page.append b [||] in
  check_int "count after appends" 3 (Store.Page.count b);
  check_bool "args 1" true (Store.Page.args_at b o1 = [| 1; 2; 3 |]);
  check_bool "args 2" true (Store.Page.args_at b o2 = [| 4 |]);
  check_bool "args 3" true (Store.Page.args_at b o3 = [||]);
  check_bool "matches" true (Store.Page.matches_at b o1 [| 1; 2; 3 |]);
  check_bool "no match, different args" false
    (Store.Page.matches_at b o1 [| 1; 2; 4 |]);
  check_bool "no match, different arity" false
    (Store.Page.matches_at b o1 [| 1; 2 |]);
  (* Fill the page to its boundary. *)
  let rec fill n =
    if Store.Page.has_room b ~nargs:2 then begin
      ignore (Store.Page.append b [| n; n |]);
      fill (n + 1)
    end
  in
  fill 10;
  check_bool "free_off never exceeds the page" true
    (Store.Page.free_off b <= Bytes.length b)

let page_tombstones () =
  let b = Bytes.create 256 in
  Store.Page.init b ~pred:7;
  let o1 = Store.Page.append b [| 1 |] in
  let o2 = Store.Page.append b [| 2 |] in
  let o3 = Store.Page.append b [| 3 |] in
  Store.Page.kill b o2;
  check_bool "killed is dead" false (Store.Page.live b o2);
  check_bool "killed never matches" false (Store.Page.matches_at b o2 [| 2 |]);
  let seen = ref [] in
  Store.Page.iter b (fun off args -> seen := (off, args.(0)) :: !seen);
  check_bool "iter skips tombstones" true
    (List.rev !seen = [ (o1, 1); (o3, 3) ])

(* ---------- Pool ---------- *)

let pool_spill_and_reload () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let pool =
        Store.Pool.create ~page_size:128 ~frames:2
          ~spill_path:(Filename.concat dir "spill")
      in
      Store.Pool.set_base pool None ~base_pages:0;
      (* Five distinct dirty pages through two frames: three must be
         evicted (spilled) and later reloaded intact. *)
      for p = 0 to 4 do
        Store.Pool.with_dirty ~fresh:true pool p (fun b ->
            Store.Page.init b ~pred:p;
            ignore (Store.Page.append b [| p * 10 |]))
      done;
      for p = 0 to 4 do
        Store.Pool.with_page pool p (fun b ->
            check_int (Printf.sprintf "page %d pred" p) p (Store.Page.pred b);
            check_int
              (Printf.sprintf "page %d payload" p)
              (p * 10)
              (Store.Page.args_at b Store.Page.header_bytes).(0))
      done;
      let s = Store.Pool.stats pool in
      check_bool "evictions happened" true (s.Store.Pool.evictions > 0);
      check_bool "dirty pages were spilled" true (s.Store.Pool.page_writes > 0);
      check_bool "spilled pages were reread" true (s.Store.Pool.page_reads > 0);
      Store.Pool.close pool;
      check_bool "spill removed on close" false
        (Sys.file_exists (Filename.concat dir "spill")))

(* ---------- WAL ---------- *)

let wal_ops =
  [
    Store.Wal.Sym { sid = 0; name = "prof" };
    Store.Wal.Sym { sid = 1; name = "russ" };
    Store.Wal.Add { gen = 1; pred = 0; args = [| 1 |] };
    Store.Wal.Add { gen = 2; pred = 0; args = [| 1; 1; 1 |] };
    Store.Wal.Del { gen = 3; pred = 0; args = [| 1 |] };
    Store.Wal.Add { gen = 4; pred = 1; args = [||] };
  ]

let wal_roundtrip () =
  with_dir (fun dir ->
      Unix.mkdir dir 0o755;
      let path = Filename.concat dir "wal" in
      let w = Store.Wal.open_append path ~valid:0 ~sync:Store.Wal.Always in
      List.iter (Store.Wal.append w) wal_ops;
      Store.Wal.close w;
      let got = ref [] in
      let valid = Store.Wal.replay path (fun op -> got := op :: !got) in
      check_bool "all ops replay in order" true (List.rev !got = wal_ops);
      check_int "valid covers the whole file" valid
        (String.length (read_file path));
      (* Corrupt one byte in the middle: replay stops at the damaged
         frame and keeps the prefix. *)
      let raw = read_file path in
      let cut = String.length raw / 2 in
      let corrupted = Bytes.of_string raw in
      Bytes.set corrupted cut
        (Char.chr (Char.code raw.[cut] lxor 0xFF));
      write_file path (Bytes.to_string corrupted);
      let got2 = ref [] in
      let valid2 = Store.Wal.replay path (fun op -> got2 := op :: !got2) in
      check_bool "corruption truncates the tail" true (valid2 <= cut);
      let n = List.length !got2 in
      check_bool "surviving records are an exact prefix" true
        (List.rev !got2 = List.filteri (fun i _ -> i < n) wal_ops))

(* ---------- Store engine ---------- *)

(* Enumerate a store's facts by symbol names (collect sids under the
   engine lock, map outside it). *)
let dump st =
  let raw = ref [] in
  Store.iter_all st (fun ~pred args -> raw := (pred, Array.copy args) :: !raw);
  List.map
    (fun (p, a) ->
      (Store.sid_name st p, Array.to_list (Array.map (Store.sid_name st) a)))
    !raw
  |> List.sort compare

let store_basics () =
  with_dir (fun dir ->
      let st = Store.open_ ~dir ~sync:Store.Never () in
      let prof = Store.sid_intern st "prof" in
      let grad = Store.sid_intern st "grad" in
      let russ = Store.sid_intern st "russ" in
      let kim = Store.sid_intern st "kim" in
      check_int "intern is idempotent" prof (Store.sid_intern st "prof");
      check_bool "fresh insert" true (Store.insert st ~pred:prof [| russ |]);
      check_bool "duplicate insert" false (Store.insert st ~pred:prof [| russ |]);
      check_bool "second fact" true (Store.insert st ~pred:prof [| kim |]);
      check_bool "other pred" true (Store.insert st ~pred:grad [| kim |]);
      check_bool "nullary" true (Store.insert st ~pred:grad [||]);
      check_int "fact_count" 4 (Store.fact_count st);
      check_int "generation counts mutations" 4 (Store.generation st);
      check_bool "mem hit" true (Store.mem st ~pred:prof [| russ |]);
      check_bool "mem miss" false (Store.mem st ~pred:prof [| grad |]);
      check_int "count_pred" 2 (Store.count_pred st ~pred:prof);
      check_int "count_bucket" 1 (Store.count_bucket st ~pred:prof ~first:russ);
      check_int "nullary bucket" 1 (Store.count_bucket st ~pred:grad ~first:(-1));
      check_bool "delete present" true (Store.delete st ~pred:prof [| russ |]);
      check_bool "delete absent" false (Store.delete st ~pred:prof [| russ |]);
      check_int "count after delete" 1 (Store.count_pred st ~pred:prof);
      check_int "generation after delete" 5 (Store.generation st);
      check_bool "token is negative" true (Store.token st < 0);
      check_bool "contents" true
        (dump st = [ ("grad", []); ("grad", [ "kim" ]); ("prof", [ "kim" ]) ]);
      Store.close st)

let store_reopen_from_wal () =
  with_dir (fun dir ->
      let st = Store.open_ ~dir ~sync:Store.Always () in
      let p = Store.sid_intern st "p" in
      let a = Store.sid_intern st "a" in
      let b = Store.sid_intern st "b" in
      ignore (Store.insert st ~pred:p [| a; b |]);
      ignore (Store.insert st ~pred:p [| b; a |]);
      ignore (Store.delete st ~pred:p [| a; b |]);
      let tok = Store.token st in
      let gen = Store.generation st in
      Store.close st;
      (* No checkpoint was taken: everything must come back from the
         header + WAL replay alone. *)
      let st2 = Store.open_ ~dir () in
      check_bool "facts recovered" true (dump st2 = [ ("p", [ "b"; "a" ]) ]);
      check_int "generation recovered" gen (Store.generation st2);
      check_int "token persists" tok (Store.token st2);
      check_int "symbols persist" 3 (Store.n_syms st2);
      Store.close st2)

let store_checkpoint_and_reopen () =
  with_dir (fun dir ->
      let st = Store.open_ ~dir ~sync:Store.Never () in
      let p = Store.sid_intern st "p" in
      let syms = Array.init 20 (fun i -> Store.sid_intern st (string_of_int i)) in
      Array.iter (fun s -> ignore (Store.insert st ~pred:p [| s |])) syms;
      for i = 0 to 9 do
        ignore (Store.delete st ~pred:p [| syms.(i) |])
      done;
      let before = dump st in
      let gen = Store.generation st in
      Store.checkpoint st;
      check_int "WAL reset by checkpoint" 0 (Store.stats st).Store.wal_bytes;
      check_bool "contents unchanged by checkpoint" true (dump st = before);
      (* Mutations after the checkpoint land in the fresh WAL. *)
      ignore (Store.delete st ~pred:p [| syms.(10) |]);
      let after = dump st in
      Store.close st;
      let st2 = Store.open_ ~dir () in
      check_bool "checkpoint + WAL tail recovered" true (dump st2 = after);
      check_int "generation across checkpoint" (gen + 1) (Store.generation st2);
      Store.close st2)

let store_larger_than_pool () =
  with_dir (fun dir ->
      (* 2 frames of 256 bytes against a few thousand facts: every
         access path has to page. *)
      let st = Store.open_ ~dir ~page_size:256 ~pool_pages:2 ~sync:Store.Never () in
      let preds = Array.init 5 (fun i -> Store.sid_intern st (Printf.sprintf "p%d" i)) in
      let consts = Array.init 400 (fun i -> Store.sid_intern st (string_of_int i)) in
      let n = ref 0 in
      for i = 0 to 1999 do
        let pred = preds.(i mod 5) in
        if Store.insert st ~pred [| consts.(i mod 400); consts.(i mod 7) |] then
          incr n
      done;
      check_int "all distinct facts landed" 2000 !n;
      check_int "fact_count" 2000 (Store.fact_count st);
      for i = 0 to 1999 do
        if
          not
            (Store.mem st ~pred:(preds.(i mod 5))
               [| consts.(i mod 400); consts.(i mod 7) |])
        then Alcotest.failf "fact %d lost" i
      done;
      let s = Store.stats st in
      check_bool "pool evicted" true (s.Store.pool_evictions > 0);
      check_bool "pages reread" true (s.Store.page_reads > 0);
      check_bool "many pages" true (s.Store.pages > 2);
      (* Checkpoint compacts through the same tiny pool, then everything
         is still there. *)
      Store.checkpoint st;
      check_int "fact_count after checkpoint" 2000 (Store.fact_count st);
      check_bool "membership after checkpoint" true
        (Store.mem st ~pred:(preds.(3)) [| consts.(3); consts.(3) |]);
      Store.close st)

(* The satellite crash property: truncate the WAL at EVERY byte boundary;
   each cut must recover exactly the state after some prefix of the
   operation sequence — no torn facts, generation monotone and exact. *)
let store_crash_at_every_byte () =
  with_dir (fun dir ->
      let st = Store.open_ ~dir ~sync:Store.Never () in
      (* Scripted mutations: inserts and deletes over a small universe,
         recording (wal_bytes, facts, generation) after each. *)
      let states = ref [ (0, dump st, Store.generation st) ] in
      let record () =
        states :=
          ((Store.stats st).Store.wal_bytes, dump st, Store.generation st)
          :: !states
      in
      let p i = Store.sid_intern st (Printf.sprintf "p%d" (i mod 3)) in
      let c i = Store.sid_intern st (Printf.sprintf "c%d" (i mod 7)) in
      for i = 0 to 24 do
        ignore (Store.insert st ~pred:(p i) [| c i; c (i * 3) |]);
        record ();
        if i mod 4 = 3 then begin
          ignore (Store.delete st ~pred:(p (i - 2)) [| c (i - 2); c ((i - 2) * 3) |]);
          record ()
        end
      done;
      Store.sync st;
      Store.close st;
      let states = List.rev !states in
      let wal = read_file (Filename.concat dir "wal") in
      let header = read_file (Filename.concat dir "header") in
      let total = String.length wal in
      check_bool "the script produced a non-trivial WAL" true (total > 500);
      let dir2 = temp_dir () in
      for cut = 0 to total do
        rm_rf dir2;
        Unix.mkdir dir2 0o755;
        write_file (Filename.concat dir2 "header") header;
        write_file (Filename.concat dir2 "wal") (String.sub wal 0 cut);
        let st2 = Store.open_ ~dir:dir2 () in
        (* The expected state: the last recorded one whose WAL length
           fits inside the cut. *)
        let _, want_facts, want_gen =
          List.fold_left
            (fun acc (bytes, _, _ as s) ->
              if bytes <= cut then s else acc)
            (List.hd states) states
        in
        if dump st2 <> want_facts then
          Alcotest.failf "cut %d/%d: recovered facts are not a prefix state"
            cut total;
        if Store.generation st2 <> want_gen then
          Alcotest.failf "cut %d/%d: generation %d, want %d" cut total
            (Store.generation st2) want_gen;
        Store.close st2
      done;
      rm_rf dir2)

(* ---------- Database: paged backend ---------- *)

let db_facts =
  [
    "prof(russ)"; "prof(kim)"; "grad(manolis)"; "grad(kim)";
    "dept(cs, stanford)"; "dept(ee, stanford)"; "tenured";
  ]

let db_paged_matches_mem () =
  with_dir (fun dir ->
      let mem_db = D.Database.of_list (List.map atom db_facts) in
      let paged = D.Database.open_paged ~dir ~wal_sync:Store.Never () in
      List.iter (fun f -> ignore (D.Database.add paged (atom f))) db_facts;
      check_string "backend" "paged" (D.Database.backend_name paged);
      check_int "sizes agree" (D.Database.size mem_db) (D.Database.size paged);
      let patterns =
        [
          "prof(X)"; "prof(russ)"; "prof(fred)"; "grad(kim)"; "grad(Y)";
          "dept(cs, W)"; "dept(X, stanford)"; "dept(X, Y)"; "tenured";
          "missing(X)";
        ]
      in
      List.iter
        (fun pat ->
          let facts db =
            D.Database.matching db (atom pat)
            |> List.map fst
            |> List.sort D.Atom.compare
          in
          if facts mem_db <> facts paged then
            Alcotest.failf "matching %s differs between backends" pat;
          let fm_m = D.Database.first_match mem_db (atom pat) in
          let fm_p = D.Database.first_match paged (atom pat) in
          check_bool
            (Printf.sprintf "first_match %s presence agrees" pat)
            (fm_m <> None) (fm_p <> None))
        patterns;
      List.iter
        (fun name ->
          check_int
            (Printf.sprintf "count_pred %s" name)
            (D.Database.count_pred mem_db name)
            (D.Database.count_pred paged name))
        [ "prof"; "grad"; "dept"; "tenured"; "missing" ];
      check_bool "predicates agree" true
        (D.Database.predicates mem_db = D.Database.predicates paged);
      (* Removal flows through both backends identically. *)
      check_bool "remove present" true (D.Database.remove paged (atom "prof(kim)"));
      check_bool "remove absent" false (D.Database.remove paged (atom "prof(kim)"));
      ignore (D.Database.remove mem_db (atom "prof(kim)"));
      check_int "sizes agree after remove" (D.Database.size mem_db)
        (D.Database.size paged);
      D.Database.close paged)

let db_paged_sld () =
  with_dir (fun dir ->
      let rb =
        D.Rulebase.of_list
          [
            D.Parser.parse_clause "instructor(X) :- prof(X).";
            D.Parser.parse_clause "instructor(X) :- grad(X).";
          ]
      in
      let db = D.Database.open_paged ~dir ~wal_sync:Store.Never () in
      ignore (D.Database.add db (atom "prof(russ)"));
      ignore (D.Database.add db (atom "grad(manolis)"));
      let cfg = D.Sld.config ~rulebase:rb ~db () in
      check_bool "russ provable" true
        (D.Sld.provable cfg (D.Parser.parse_query "instructor(russ)"));
      check_bool "manolis provable" true
        (D.Sld.provable cfg (D.Parser.parse_query "instructor(manolis)"));
      check_bool "fred not provable" false
        (D.Sld.provable cfg (D.Parser.parse_query "instructor(fred)"));
      let answers, _ =
        D.Sld.solve_all cfg (D.Parser.parse_query "instructor(X)")
      in
      check_int "two instructors through the paged store" 2
        (List.length answers);
      D.Database.close db)

(* Satellite: a copy of a paged database is COW — mutating the copy must
   never perturb the original's generation or query results. *)
let db_paged_copy_cow () =
  with_dir (fun dir ->
      let db = D.Database.open_paged ~dir ~wal_sync:Store.Never () in
      List.iter (fun f -> ignore (D.Database.add db (atom f))) db_facts;
      let gen0 = D.Database.generation db in
      let size0 = D.Database.size db in
      let answers0 =
        D.Database.matching db (atom "prof(X)")
        |> List.map fst |> List.sort D.Atom.compare
      in
      let copy = D.Database.copy db in
      check_string "copy backend" "overlay" (D.Database.backend_name copy);
      check_bool "copy has its own token" true
        (D.Database.token copy <> D.Database.token db);
      (* Mutate the copy heavily. *)
      ignore (D.Database.add copy (atom "prof(newcomer)"));
      ignore (D.Database.remove copy (atom "prof(russ)"));
      ignore (D.Database.add copy (atom "grad(extra)"));
      ignore (D.Database.remove copy (atom "tenured"));
      (* The original is untouched. *)
      check_int "original generation unperturbed" gen0 (D.Database.generation db);
      check_int "original size unperturbed" size0 (D.Database.size db);
      check_bool "original query results unperturbed" true
        (D.Database.matching db (atom "prof(X)")
         |> List.map fst |> List.sort D.Atom.compare = answers0);
      check_bool "original still holds prof(russ)" true
        (D.Database.mem db (atom "prof(russ)"));
      check_bool "original never sees the copy's insert" false
        (D.Database.mem db (atom "prof(newcomer)"));
      (* The copy sees its own view. *)
      check_bool "copy sees its insert" true
        (D.Database.mem copy (atom "prof(newcomer)"));
      check_bool "copy no longer holds prof(russ)" false
        (D.Database.mem copy (atom "prof(russ)"));
      check_int "copy size tracks deltas" size0 (D.Database.size copy);
      check_bool "copy generation advanced" true
        (D.Database.generation copy > gen0);
      check_bool "copy matching merges overlay and base" true
        (D.Database.matching copy (atom "prof(X)")
         |> List.map fst |> List.sort D.Atom.compare
        = List.sort D.Atom.compare [ atom "prof(kim)"; atom "prof(newcomer)" ]);
      check_int "copy count_pred merges deltas" 2
        (D.Database.count_pred copy "prof");
      D.Database.close db)

let db_paged_persistence () =
  with_dir (fun dir ->
      let db = D.Database.open_paged ~dir ~wal_sync:Store.Always () in
      List.iter (fun f -> ignore (D.Database.add db (atom f))) db_facts;
      let tok = D.Database.token db in
      let gen = D.Database.generation db in
      D.Database.checkpoint db;
      D.Database.close db;
      let db2 = D.Database.open_paged ~dir () in
      check_int "token survives restart" tok (D.Database.token db2);
      check_int "generation survives restart" gen (D.Database.generation db2);
      check_int "facts survive restart" (List.length db_facts)
        (D.Database.size db2);
      check_bool "query answers after restart" true
        (D.Database.mem db2 (atom "dept(cs, stanford)"));
      check_bool "store stats exposed" true
        (D.Database.store_stats db2 <> None);
      D.Database.close db2)

let suite =
  [
    ( "store",
      [
        case "page: append/read/match roundtrip" page_roundtrip;
        case "page: tombstones are skipped" page_tombstones;
        case "pool: spill and reload through 2 frames" pool_spill_and_reload;
        case "wal: roundtrip, torn tail, corrupt frame" wal_roundtrip;
        case "engine: insert/delete/mem/counts" store_basics;
        case "engine: reopen recovers from WAL alone" store_reopen_from_wal;
        case "engine: checkpoint compacts and resets WAL"
          store_checkpoint_and_reopen;
        case "engine: database larger than the pool" store_larger_than_pool;
        slow_case "engine: crash-truncated WAL at every byte"
          store_crash_at_every_byte;
        case "database: paged backend matches mem" db_paged_matches_mem;
        case "database: SLD over the paged backend" db_paged_sld;
        case "database: COW copy never perturbs the base" db_paged_copy_cow;
        case "database: token/generation survive restart" db_paged_persistence;
      ] );
  ]
