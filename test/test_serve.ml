(* The serve subsystem: protocol parsing (both the line dialect and v4
   framing), the admission queue's shed/drain semantics, metrics, the
   per-form registry (lazy creation, sharing, online climbs), snapshot
   save/load resumption, and the TCP server end to end in-process —
   concurrent clients, pipelining, slow/partial frames, load shedding,
   graceful shutdown. *)

open Helpers
module D = Datalog

let kb_text =
  "instructor(X) :- prof(X).\n\
   instructor(X) :- grad(X).\n\
   prof(russ).\n\
   grad(manolis).\n"

let kb () =
  let rules, facts, _ = D.Parser.parse_kb kb_text in
  (D.Rulebase.of_list rules, D.Database.of_list facts)

(* ---------- Protocol ---------- *)

let protocol_parse () =
  let check name expected line =
    check_bool name true (Serve.Protocol.parse line = expected)
  in
  check "query" (Serve.Protocol.Query "instructor(russ)")
    "QUERY instructor(russ)";
  check "query lowercase" (Serve.Protocol.Query "p(a)") "query p(a)";
  check "query trimmed" (Serve.Protocol.Query "p(a)") "  QUERY   p(a)  ";
  check "stats" Serve.Protocol.Stats "STATS";
  check "stats json" Serve.Protocol.Stats_json "STATS json";
  check "strategy" (Serve.Protocol.Strategy "p(q)") "STRATEGY p(q)";
  check "snapshot" Serve.Protocol.Snapshot "SNAPSHOT";
  check "ping" Serve.Protocol.Ping "PING";
  check "quit" Serve.Protocol.Quit "QUIT";
  check "shutdown" Serve.Protocol.Shutdown "SHUTDOWN";
  check "empty" Serve.Protocol.Empty "   ";
  check "hello" Serve.Protocol.Hello "HELLO";
  check "hello v4 upgrade" Serve.Protocol.Hello_v4 "HELLO V4";
  check "hello v4 case-insensitive" Serve.Protocol.Hello_v4 "hello v4";
  check "hello with junk is malformed"
    (Serve.Protocol.Malformed "HELLO takes no argument") "HELLO V5";
  check "trace" (Serve.Protocol.Trace "p(a)") "TRACE p(a)";
  check "bare query is malformed"
    (Serve.Protocol.Malformed "QUERY needs an atom") "QUERY";
  check "bare trace is malformed"
    (Serve.Protocol.Malformed "TRACE needs an atom") "TRACE";
  check "ping with junk is malformed"
    (Serve.Protocol.Malformed "PING takes no argument") "PING now";
  check "unknown verb carries the verb" (Serve.Protocol.Unknown "FROBNICATE")
    "FROBNICATE 3";
  check "flight" Serve.Protocol.Flight "FLIGHT";
  check "flight lowercase" Serve.Protocol.Flight "flight";
  check "flight with junk is malformed"
    (Serve.Protocol.Malformed "FLIGHT takes no argument") "FLIGHT now";
  check_string "answer line" "ANSWER yes reductions=2 retrievals=2 switched"
    (Serve.Protocol.answer_line ~result:"yes" ~reductions:2 ~retrievals:2
       ~cached:false ~switched:true ());
  check_string "cached answer line"
    "ANSWER yes reductions=0 retrievals=0 cached switched"
    (Serve.Protocol.answer_line ~result:"yes" ~reductions:0 ~retrievals:0
       ~cached:true ~switched:true ());
  check_string "derived cached answer line"
    "ANSWER yes reductions=0 retrievals=0 cached=derived"
    (Serve.Protocol.answer_line ~derived:true ~result:"yes" ~reductions:0
       ~retrievals:0 ~cached:true ~switched:false ());
  check_string "derived without cached renders nothing"
    "ANSWER yes reductions=2 retrievals=2"
    (Serve.Protocol.answer_line ~derived:true ~result:"yes" ~reductions:2
       ~retrievals:2 ~cached:false ~switched:false ());
  check_string "hello line carries version and learner"
    (Printf.sprintf "HELLO strategem/%d learner=pib" Serve.Protocol.version)
    (Serve.Protocol.hello_line ~learner:"pib" ());
  check_string "hello line takes a version override"
    "HELLO strategem/4 learner=pib"
    (Serve.Protocol.hello_line ~version:4 ~learner:"pib" ());
  check_string "err is structured and flattens newlines" "ERR internal a b"
    (Serve.Protocol.err ~code:`Internal "a\nb");
  check_string "err code renders" "ERR unknown-verb FROBNICATE"
    (Serve.Protocol.err ~code:`Unknown_verb "FROBNICATE")

(* The in-place parser must behave identically at any buffer offset, and
   never raise on any byte sequence. *)
let protocol_parse_sub_agrees =
  let gen =
    QCheck2.Gen.(
      string_size ~gen:(map Char.chr (int_range 1 255)) (int_bound 40))
  in
  qcheck ~count:500 "parse_sub agrees with parse at any offset" gen
    (fun line ->
      let reference = Serve.Protocol.parse line in
      let padded = Bytes.of_string ("XX" ^ line ^ "YY") in
      Serve.Protocol.parse_sub padded ~pos:2 ~len:(String.length line)
      = reference)

let protocol_parse_total =
  let gen =
    QCheck2.Gen.(string_size ~gen:(map Char.chr (int_bound 255)) (int_bound 60))
  in
  qcheck ~count:500 "parse never raises" gen (fun line ->
      match Serve.Protocol.parse line with _ -> true)

(* ---------- Frame (protocol v4) ---------- *)

let frame_kinds =
  [
    Serve.Frame.Hello; Serve.Frame.Query; Serve.Frame.Trace;
    Serve.Frame.Strategy; Serve.Frame.Stats; Serve.Frame.Stats_json;
    Serve.Frame.Snapshot; Serve.Frame.Ping; Serve.Frame.Help;
    Serve.Frame.Flight; Serve.Frame.Quit; Serve.Frame.Shutdown;
    Serve.Frame.Ok; Serve.Frame.Err; Serve.Frame.Busy; Serve.Frame.Bye;
  ]

let frame_roundtrip =
  let gen =
    QCheck2.Gen.(
      triple (int_bound 0xFFFF_FFFF)
        (oneofl frame_kinds)
        (string_size (int_bound 80)))
  in
  qcheck ~count:500 "v4 frame encode/decode round-trips" gen
    (fun (id, kind, payload) ->
      let f = { Serve.Frame.id; kind; payload } in
      let s = Serve.Frame.encode_string f in
      match
        Serve.Frame.decode (Bytes.of_string s) ~pos:0 ~limit:(String.length s)
      with
      | Serve.Frame.Frame (f', used) -> f' = f && used = String.length s
      | _ -> false)

(* A truncated frame must never decode, raise, or be misread: every
   strict prefix is Need_more, and decode at an offset inside a stream
   of two frames finds the second one. *)
let frame_truncation () =
  let f =
    { Serve.Frame.id = 42; kind = Serve.Frame.Query; payload = "relative(bob)" }
  in
  let s = Serve.Frame.encode_string f in
  for len = 0 to String.length s - 1 do
    match
      Serve.Frame.decode (Bytes.of_string (String.sub s 0 len)) ~pos:0
        ~limit:len
    with
    | Serve.Frame.Need_more need ->
      check_bool "need covers the missing bytes" true (need > len)
    | Serve.Frame.Frame _ -> Alcotest.fail "decoded a truncated frame"
    | Serve.Frame.Corrupt _ -> Alcotest.fail "truncation is not corruption"
  done;
  let two = s ^ s in
  (match
     Serve.Frame.decode (Bytes.of_string two) ~pos:(String.length s)
       ~limit:(String.length two)
   with
  | Serve.Frame.Frame (f', _) -> check_bool "second frame found" true (f' = f)
  | _ -> Alcotest.fail "offset decode failed");
  (* corruption is detected, not decoded *)
  (match Serve.Frame.decode (Bytes.of_string "garbage") ~pos:0 ~limit:7 with
  | Serve.Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "bad magic accepted");
  let b = Bytes.of_string s in
  (* length field = max_payload + 1 *)
  Bytes.set b 6 '\x00';
  Bytes.set b 7 '\x40';
  Bytes.set b 8 '\x00';
  Bytes.set b 9 '\x01';
  match Serve.Frame.decode b ~pos:0 ~limit:(Bytes.length b) with
  | Serve.Frame.Corrupt _ -> ()
  | _ -> Alcotest.fail "hostile length accepted"

(* ---------- Admission ---------- *)

let admission_shed_and_drain () =
  let q = Serve.Admission.create ~depth:2 () in
  check_bool "push 1" true (Serve.Admission.try_push q 1);
  check_bool "push 2" true (Serve.Admission.try_push q 2);
  check_bool "full refuses" false (Serve.Admission.try_push q 3);
  check_int "length" 2 (Serve.Admission.length q);
  check_bool "pop 1" true (Serve.Admission.pop q = Some 1);
  check_bool "room again" true (Serve.Admission.try_push q 4);
  Serve.Admission.close q;
  check_bool "closed refuses" false (Serve.Admission.try_push q 5);
  check_bool "drains 2" true (Serve.Admission.pop q = Some 2);
  check_bool "drains 4" true (Serve.Admission.pop q = Some 4);
  check_bool "then None" true (Serve.Admission.pop q = None);
  check_int "high water" 2 (Serve.Admission.high_water q)

let admission_per_producer_quota () =
  (* two producers split depth 4 into quotas of 2: a flooding producer
     is refused at its own share while its peer's slots stay free *)
  let q = Serve.Admission.create ~producers:2 ~depth:4 () in
  check_int "quota is the even split" 2 (Serve.Admission.quota q);
  check_bool "p0 push 1" true (Serve.Admission.try_push ~producer:0 q 1);
  check_bool "p0 push 2" true (Serve.Admission.try_push ~producer:0 q 2);
  check_bool "p0 at quota refused" false
    (Serve.Admission.try_push ~producer:0 q 3);
  check_bool "p1 unaffected" true (Serve.Admission.try_push ~producer:1 q 4);
  check_bool "p1 push 2" true (Serve.Admission.try_push ~producer:1 q 5);
  check_bool "p1 at quota refused" false
    (Serve.Admission.try_push ~producer:1 q 6);
  check_int "p0 in queue" 2 (Serve.Admission.producer_length q 0);
  (* popping p0's head frees one of p0's slots, not p1's *)
  check_bool "pop fifo" true (Serve.Admission.pop q = Some 1);
  check_int "p0 released" 1 (Serve.Admission.producer_length q 0);
  check_bool "p0 has room again" true
    (Serve.Admission.try_push ~producer:0 q 7);
  check_bool "p1 still at quota" false
    (Serve.Admission.try_push ~producer:1 q 8);
  (* a single producer keeps the historical whole-queue semantics *)
  let q1 = Serve.Admission.create ~depth:3 () in
  check_int "solo quota is the depth" 3 (Serve.Admission.quota q1);
  check_bool "solo fills the queue" true
    (List.for_all
       (fun x -> Serve.Admission.try_push q1 x)
       [ 1; 2; 3 ])

let admission_blocking_pop () =
  let q = Serve.Admission.create ~depth:4 () in
  let got = Atomic.make (-1) in
  let consumer =
    Thread.create
      (fun () ->
        match Serve.Admission.pop q with
        | Some v -> Atomic.set got v
        | None -> Atomic.set got (-2))
      ()
  in
  Thread.delay 0.05;
  check_bool "push wakes consumer" true (Serve.Admission.try_push q 7);
  Thread.join consumer;
  check_int "consumer got it" 7 (Atomic.get got)

(* ---------- Metrics ---------- *)

let metrics_counters_and_histogram () =
  let m = Serve.Metrics.create () in
  Serve.Metrics.connection m;
  Serve.Metrics.busy m;
  Serve.Metrics.observe_queue_depth m 3;
  Serve.Metrics.observe_queue_depth m 1;
  for i = 1 to 100 do
    Serve.Metrics.query m ~form:"f_1_b"
      ~latency_us:(float_of_int i)
      ~answered:(i mod 2 = 0)
      ~switched:(i = 50)
  done;
  check_int "queries" 100 (Serve.Metrics.queries_total m);
  check_int "climbs" 1 (Serve.Metrics.climbs_total m);
  check_int "busy" 1 (Serve.Metrics.busy_total m);
  check_int "queue high water" 3 (Serve.Metrics.queue_high_water m);
  let text = String.concat "\n" (Serve.Metrics.render_text m) in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "text has totals" true (contains "queries_total 100" text);
  check_bool "text has form line" true (contains "form f_1_b queries 100" text);
  let json = Serve.Metrics.render_json m in
  check_bool "json one line" true (not (String.contains json '\n'));
  check_bool "json has form" true (contains "\"f_1_b\"" json);
  check_bool "json has climbs" true (contains "\"climbs\":1" json)

(* ---------- Registry ---------- *)

let registry_forms () =
  let q = D.Parser.parse_atom "instructor(manolis)" in
  let form = Serve.Registry.form_of_query q in
  check_string "canonical form" "instructor(q)" (D.Atom.to_string form);
  check_string "key" "instructor_1_b" (Serve.Registry.key_of_form form);
  let free = Serve.Registry.form_of_query (D.Parser.parse_atom "instructor(X)") in
  check_string "free key" "instructor_1_f" (Serve.Registry.key_of_form free)

let registry_shares_and_learns () =
  let rulebase, db = kb () in
  let m = Serve.Metrics.create () in
  let reg = Serve.Registry.create ~rulebase m in
  let ans =
    Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(russ)")
  in
  check_bool "russ answered" true (ans.Core.Live.result <> None);
  ignore
    (Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(fred)"));
  check_int "one entry for both constants" 1
    (List.length (Serve.Registry.entries reg));
  (* a grad-heavy stream flips the learned order to grad-first *)
  let switched = ref false in
  for _ = 1 to 200 do
    let a =
      Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(manolis)")
    in
    if a.Core.Live.switched then switched := true
  done;
  check_bool "climbed" true !switched;
  let e = List.hd (Serve.Registry.entries reg) in
  let s = Serve.Registry.strategy_string e in
  check_bool "grad-first strategy" true
    (String.length s > 2 && String.sub s 3 17 = "R_instructor_grad")

(* ---------- Snapshot ---------- *)

let temp_dir () =
  let d = Filename.temp_file "strategem" ".state" in
  Sys.remove d;
  d

let snapshot_roundtrip () =
  let rulebase, db = kb () in
  let dir = temp_dir () in
  let m = Serve.Metrics.create () in
  let reg = Serve.Registry.create ~rulebase m in
  for _ = 1 to 200 do
    ignore
      (Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(manolis)"))
  done;
  let learned =
    Serve.Registry.strategy_string (List.hd (Serve.Registry.entries reg))
  in
  check_int "saved one form" 1 (Serve.Snapshot.save ~dir reg);
  (* a fresh registry (a restarted server) resumes the learned strategy *)
  let reg' = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  check_int "loaded one form" 1 (Serve.Snapshot.load ~dir reg');
  let resumed =
    Serve.Registry.strategy_string (List.hd (Serve.Registry.entries reg'))
  in
  check_string "strategy resumed" learned resumed;
  (* load into yet another registry from a missing dir is a no-op *)
  check_int "missing dir" 0
    (Serve.Snapshot.load ~dir:(dir ^ ".nope")
       (Serve.Registry.create ~rulebase (Serve.Metrics.create ())))

(* ---------- Server end to end (in-process TCP) ---------- *)

let server_config ?(workers = 2) ?(queue_depth = 8) ?max_conns ?state_dir
    ?(loops = 0) ?(idle_timeout_s = 0.0) ?(max_conns_per_ip = 0) ?max_write_buf
    () =
  {
    Serve.Server.default_config with
    port = 0;
    workers;
    queue_depth;
    max_conns =
      Option.value max_conns ~default:Serve.Server.default_config.max_conns;
    state_dir;
    loops;
    idle_timeout_s;
    max_conns_per_ip;
    max_write_buf =
      Option.value max_write_buf
        ~default:Serve.Server.default_config.max_write_buf;
  }

let start_server ?workers ?queue_depth ?max_conns ?state_dir ?loops
    ?idle_timeout_s ?max_conns_per_ip ?max_write_buf () =
  let rulebase, db = kb () in
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          (server_config ?workers ?queue_depth ?max_conns ?state_dir ?loops
             ?idle_timeout_s ?max_conns_per_ip ?max_write_buf ())
          ~rulebase ~db)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get port = 0 then Alcotest.fail "server did not start";
  (thread, Atomic.get port)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

(* One-shot conversation: send every line, half-close, read every reply. *)
let talk port lines =
  let fd, ic, oc = connect port in
  List.iter (send oc) lines;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let replies = In_channel.input_lines ic in
  close_in_noerr ic;
  replies

let server_concurrent_clients () =
  let thread, port = start_server ~workers:2 () in
  (* Client A parks on a worker; client B must still be answered, which
     needs the second worker. *)
  let _fd_a, ic_a, oc_a = connect port in
  check_bool "A ping" true (send oc_a "PING"; input_line ic_a = "PONG");
  let replies = talk port [ "QUERY instructor(manolis)"; "QUERY nonsense(" ] in
  check_bool "B answered while A held a worker" true
    (match replies with
    | [ a; b ] ->
      a = "ANSWER yes reductions=2 retrievals=2"
      && String.length b >= 3
      && String.sub b 0 3 = "ERR"
    | _ -> false);
  (* hammer it from two threads at once; all queries must be answered *)
  let n = 50 in
  let one_client () =
    let replies =
      talk port (List.init n (fun _ -> "QUERY instructor(manolis)"))
    in
    List.length (List.filter (fun r -> String.sub r 0 6 = "ANSWER") replies)
  in
  let count_b = ref 0 in
  let t = Thread.create (fun () -> count_b := one_client ()) () in
  let count_a = one_client () in
  Thread.join t;
  check_int "all of A's queries answered" n count_a;
  check_int "all of B's queries answered" n !count_b;
  send oc_a "QUIT";
  check_bool "A said bye" true (input_line ic_a = "BYE");
  close_in_noerr ic_a;
  let replies = talk port [ "STATS"; "SHUTDOWN" ] in
  check_bool "stats then bye" true
    (List.mem "END" replies && List.mem "BYE" replies);
  (* the parse-error line counts as an error, not a query *)
  check_bool "stats counted the queries" true
    (List.exists (fun l -> l = Printf.sprintf "queries_total %d" ((2 * n) + 1))
       replies);
  check_bool "stats counted the error" true
    (List.mem "errors_total 1" replies);
  Thread.join thread

let server_sheds_when_full () =
  (* connection-granular shedding: past [max_conns] the accept itself is
     refused with BUSY and the socket closed; established connections
     are untouched. *)
  let thread, port = start_server ~max_conns:1 () in
  let fd_a, ic_a, oc_a = connect port in
  send oc_a "PING";
  check_string "first conn served" "PONG" (input_line ic_a);
  let _fd_b, ic_b, _oc_b = connect port in
  check_string "second conn shed" "BUSY" (input_line ic_b);
  check_bool "and closed" true
    (match input_line ic_b with
    | _ -> false
    | exception End_of_file -> true);
  close_in_noerr ic_b;
  send oc_a "SHUTDOWN";
  check_string "survivor still served" "BYE" (input_line ic_a);
  close_in_noerr ic_a;
  ignore fd_a;
  Thread.join thread

(* A server over the genealogy workload, whose free query
   [relative(X)] is slow enough to park a worker for a while. *)
let start_genealogy_server ?loops ~workers ~queue_depth () =
  let rulebase = Workload.Genealogy.rulebase () in
  let pop = Workload.Genealogy.populate (Stats.Rng.create 5L) ~n_people:2_000 in
  let db = Workload.Genealogy.db pop in
  let people = Workload.Genealogy.people pop in
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          (server_config ~workers ~queue_depth ?loops ())
          ~rulebase ~db)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get port = 0 then Alcotest.fail "server did not start";
  (thread, Atomic.get port, people)

let server_v4_busy_keeps_conn () =
  (* request-granular shedding on a framed connection: a shed request
     answers with a Busy frame carrying its id, and the connection
     stays open. *)
  let thread, port, people =
    start_genealogy_server ~workers:1 ~queue_depth:1 ()
  in
  let c = Serve.Client.connect ~proto:`V4 ~port () in
  (* park the single worker on the slow free query ... *)
  let slow = Serve.Client.post c "QUERY relative(X)" in
  Thread.delay 0.05;
  (* ... then overflow the depth-1 queue *)
  let bound =
    List.init 6 (fun i ->
        Serve.Client.post c
          (Printf.sprintf "QUERY relative(%s)" (List.nth people i)))
  in
  let posted = slow :: bound in
  let responses = List.map (fun _ -> Serve.Client.recv c) posted in
  check_bool "every response id was posted" true
    (List.sort compare (List.map fst responses) = List.sort compare posted);
  check_bool "at least one request shed" true
    (List.exists (fun (_, lines) -> lines = [ "BUSY" ]) responses);
  check_bool "the slow query still answered" true
    (List.exists
       (fun (id, lines) ->
         id = slow
         &&
         match lines with
         | [ l ] -> String.length l >= 6 && String.sub l 0 6 = "ANSWER"
         | _ -> false)
       responses);
  (* shedding did not cost the connection *)
  check_string "conn still usable" "PONG" (Serve.Client.request c "PING");
  check_string "drains on shutdown" "BYE" (Serve.Client.request c "SHUTDOWN");
  Serve.Client.close c;
  Thread.join thread

let server_v4_pipelining () =
  (* the queue must hold the whole window, or shedding kicks in (that
     path has its own test) *)
  let thread, port = start_server ~workers:2 ~queue_depth:64 () in
  let c = Serve.Client.connect ~proto:`Auto ~port () in
  check_bool "auto negotiated v4" true (Serve.Client.protocol c = `V4);
  let banner = Serve.Client.request c "HELLO" in
  check_bool "framed banner carries the v4 version" true
    (String.length banner >= 18
    && String.sub banner 0 18
       = Printf.sprintf "HELLO strategem/%d " Serve.Frame.version);
  let n = 32 in
  let ids =
    List.init n (fun _ -> Serve.Client.post c "QUERY instructor(manolis)")
  in
  let got = List.init n (fun _ -> Serve.Client.recv c) in
  check_bool "all 32 ids answered exactly once" true
    (List.sort compare (List.map fst got) = List.sort compare ids);
  check_bool "every reply is an answer" true
    (List.for_all
       (fun (_, lines) ->
         match lines with
         | [ l ] -> String.length l >= 6 && String.sub l 0 6 = "ANSWER"
         | _ -> false)
       got);
  let stats = Serve.Client.command c "STATS" in
  let has prefix l =
    String.length l >= String.length prefix
    && String.sub l 0 (String.length prefix) = prefix
  in
  check_bool "stats reports conns_open" true
    (List.exists (has "conns_open ") stats);
  check_bool "stats reports the pipeline high water" true
    (List.exists (has "pipeline_depth_high_water ") stats);
  check_string "quit closes the framed conn" "BYE"
    (Serve.Client.request c "QUIT");
  Serve.Client.close c;
  let c2 = Serve.Client.connect ~proto:`Lines ~port () in
  ignore (Serve.Client.command c2 "SHUTDOWN");
  Serve.Client.close c2;
  Thread.join thread

let server_slow_frame () =
  (* slowloris: one frame dripped in three installments must not block
     the loop (other connections stay live) and must still be answered;
     junk after it on the same (now framed) connection draws a
     structured error, then close. *)
  let thread, port = start_server ~workers:2 () in
  let fd, ic, oc = connect port in
  let frame =
    Serve.Frame.encode_string
      { Serve.Frame.id = 9; kind = Serve.Frame.Query;
        payload = "instructor(russ)" }
  in
  let len = String.length frame in
  output_string oc (String.sub frame 0 3);
  flush oc;
  Thread.delay 0.05;
  check_bool "server responsive mid-frame" true (talk port [ "PING" ] = [ "PONG" ]);
  output_string oc (String.sub frame 3 4);
  flush oc;
  Thread.delay 0.05;
  output_string oc (String.sub frame 7 (len - 7));
  flush oc;
  let reply = Serve.Frame.read ic in
  check_int "dripped frame id echoed" 9 reply.Serve.Frame.id;
  check_bool "dripped frame answered" true
    (reply.Serve.Frame.kind = Serve.Frame.Ok
    && String.length reply.Serve.Frame.payload >= 6
    && String.sub reply.Serve.Frame.payload 0 6 = "ANSWER");
  send oc "garbage";
  (match Serve.Frame.read ic with
  | f -> check_bool "junk drew an error frame" true (f.Serve.Frame.kind = Serve.Frame.Err)
  | exception (End_of_file | Failure _) -> ());
  close_in_noerr ic;
  ignore fd;
  ignore (talk port [ "SHUTDOWN" ]);
  Thread.join thread

let client_falls_back_to_lines () =
  (* a fake pre-v4 daemon: line protocol only, where HELLO V4 parses as
     a malformed HELLO — exactly what a historical server answers. *)
  let srv = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt srv Unix.SO_REUSEADDR true;
  Unix.bind srv (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen srv 1;
  let port =
    match Unix.getsockname srv with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> assert false
  in
  let server =
    Thread.create
      (fun () ->
        let fd, _ = Unix.accept srv in
        let ic = Unix.in_channel_of_descr fd in
        let oc = Unix.out_channel_of_descr fd in
        (try
           while true do
             let line = String.trim (input_line ic) in
             (match String.uppercase_ascii line with
             | "HELLO V4" ->
               output_string oc "ERR malformed HELLO takes no argument\n"
             | "PING" -> output_string oc "PONG\n"
             | "QUIT" -> output_string oc "BYE\n"
             | _ -> output_string oc "ERR unknown-verb\n");
             flush oc
           done
         with End_of_file | Sys_error _ -> ());
        close_in_noerr ic)
      ()
  in
  let c = Serve.Client.connect ~proto:`Auto ~port () in
  check_bool "fell back to the line dialect" true
    (Serve.Client.protocol c = `Lines);
  check_string "and the fallback conn works" "PONG"
    (Serve.Client.request c "PING");
  check_string "bye" "BYE" (Serve.Client.request c "QUIT");
  Serve.Client.close c;
  Thread.join server;
  Unix.close srv

let server_snapshot_restart () =
  let dir = temp_dir () in
  let thread, port = start_server ~state_dir:dir () in
  let replies =
    talk port
      (List.init 200 (fun _ -> "QUERY instructor(manolis)") @ [ "SHUTDOWN" ])
  in
  (* With the (default-on) answer cache, every query after the first is a
     hit, so the climb lands on a cached reply. *)
  check_bool "climbed under live traffic" true
    (List.exists
       (fun r -> r = "ANSWER yes reductions=0 retrievals=0 cached switched")
       replies);
  Thread.join thread;
  (* restart against the same state dir: the learned strategy is back
     without a single climb *)
  let thread, port = start_server ~state_dir:dir () in
  let replies =
    talk port [ "STRATEGY instructor(q)"; "QUERY instructor(manolis)"; "SHUTDOWN" ]
  in
  check_bool "resumed grad-first" true
    (List.exists
       (fun r ->
         r = "OK instructor_1_b ⟨R_instructor_grad D_grad R_instructor_prof \
              D_prof⟩")
       replies);
  check_bool "fast from the first query" true
    (List.mem "ANSWER yes reductions=1 retrievals=1" replies);
  Thread.join thread

(* ---------- Reactor fleet ---------- *)

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  go 0

(* Read a multi-line (END-terminated) reply off a persistent line conn. *)
let read_until_end ic =
  let rec go acc =
    let line = input_line ic in
    if line = "END" then List.rev acc else go (line :: acc)
  in
  go []

let conn_write_cap_sheds () =
  (* per-conn cap: the send that would breach it sheds the whole
     buffered output, leaves one BUSY, and flags the conn for teardown *)
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let limits = Serve.Conn.limits ~max_buf:32 () in
  let c = Serve.Conn.create ~id:1 ~loop:0 ~peer:"t" ~ip:"t" ~limits a in
  Serve.Conn.send c (String.make 16 'x');
  check_bool "under the cap buffers" false (Serve.Conn.overflowed c);
  Serve.Conn.send c (String.make 20 'y');
  check_bool "over the cap sheds" true (Serve.Conn.overflowed c);
  check_bool "shedding means closing" true (Serve.Conn.closing c);
  check_int "shed bytes count buffered + refused" 36
    (Serve.Conn.take_shed_bytes c);
  check_int "take_shed_bytes resets" 0 (Serve.Conn.take_shed_bytes c);
  (* output after the overflow is dropped, never buffered *)
  Serve.Conn.send c "more";
  check_bool "flush delivers the notice" true (Serve.Conn.flush c = `Flushed);
  let buf = Bytes.create 64 in
  let n = Unix.read b buf 0 64 in
  check_string "peer sees one BUSY, nothing else" "BUSY\n"
    (Bytes.sub_string buf 0 n);
  Serve.Conn.kill c;
  Unix.close a;
  Unix.close b;
  (* global cap: the breaching conn is shed, its peers are spared, and
     draining a survivor gives the budget back *)
  let shared = Serve.Conn.limits ~global_max:50 () in
  let mk id =
    let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (Serve.Conn.create ~id ~loop:0 ~peer:"t" ~ip:"t" ~limits:shared a, a, b)
  in
  let c1, a1, b1 = mk 2 in
  let c2, a2, b2 = mk 3 in
  Serve.Conn.send c1 (String.make 40 'x');
  Serve.Conn.send c2 (String.make 20 'y');
  check_bool "breaching conn shed" true (Serve.Conn.overflowed c2);
  check_bool "innocent conn spared" false (Serve.Conn.overflowed c1);
  check_bool "survivor drains" true (Serve.Conn.flush c1 = `Flushed);
  let c3, a3, b3 = mk 4 in
  Serve.Conn.send c3 (String.make 20 'z');
  check_bool "drained budget admits new output" false
    (Serve.Conn.overflowed c3);
  List.iter Serve.Conn.kill [ c1; c2; c3 ];
  List.iter Unix.close [ a1; b1; a2; b2; a3; b3 ]

let server_fleet_balances_conns () =
  let thread, port = start_server ~loops:2 () in
  let conns = List.init 4 (fun _ -> connect port) in
  (* a round trip on each conn guarantees every fd has been adopted by
     its loop before we read the per-loop gauges *)
  List.iter
    (fun (_, ic, oc) ->
      send oc "PING";
      check_string "conn served" "PONG" (input_line ic))
    conns;
  let _, ic0, oc0 = List.hd conns in
  send oc0 "STATS json";
  let json = input_line ic0 in
  check_bool "json reports the fleet size" true
    (contains "\"loops\":{\"count\":2" json);
  check_bool "loop 0 took half the conns" true
    (contains "\"id\":0,\"conns\":2" json);
  check_bool "loop 1 took the other half" true
    (contains "\"id\":1,\"conns\":2" json);
  (* the text rendering carries the additive fleet line *)
  send oc0 "STATS";
  check_bool "text reports the fleet size" true
    (List.mem "loops 2" (read_until_end ic0));
  List.iter (fun (_, ic, _) -> close_in_noerr ic) (List.tl conns);
  send oc0 "SHUTDOWN";
  check_string "bye" "BYE" (input_line ic0);
  close_in_noerr ic0;
  Thread.join thread

let server_fleet_drains_every_loop () =
  (* graceful shutdown with a slow query in flight on each loop of a
     2-loop fleet: every response must still be flushed by its owner *)
  let thread, port, _people =
    start_genealogy_server ~loops:2 ~workers:2 ~queue_depth:8 ()
  in
  let c1 = Serve.Client.connect ~proto:`V4 ~port () in
  let c2 = Serve.Client.connect ~proto:`V4 ~port () in
  let s1 = Serve.Client.post c1 "QUERY relative(X)" in
  let s2 = Serve.Client.post c2 "QUERY relative(X)" in
  Thread.delay 0.05;
  let sd = Serve.Client.post c1 "SHUTDOWN" in
  let r1 = List.init 2 (fun _ -> Serve.Client.recv c1) in
  let answered id rs =
    List.exists
      (fun (i, lines) ->
        i = id
        &&
        match lines with
        | [ l ] -> String.length l >= 6 && String.sub l 0 6 = "ANSWER"
        | _ -> false)
      rs
  in
  check_bool "loop 0's in-flight query answered through the drain" true
    (answered s1 r1);
  check_bool "shutdown acknowledged" true
    (List.exists (fun (i, lines) -> i = sd && lines = [ "BYE" ]) r1);
  check_bool "loop 1's in-flight query answered through the drain" true
    (answered s2 [ Serve.Client.recv c2 ]);
  Serve.Client.close c1;
  Serve.Client.close c2;
  Thread.join thread

let server_fleet_isolates_slow_peer () =
  (* slowloris on loop 0 must not stall loop 1: with a partial frame
     wedged on the first conn, a conn on the other loop stays live *)
  let thread, port = start_server ~loops:2 () in
  let fd, ic, oc = connect port in
  let frame =
    Serve.Frame.encode_string
      { Serve.Frame.id = 7; kind = Serve.Frame.Query;
        payload = "instructor(russ)" }
  in
  output_string oc (String.sub frame 0 3);
  flush oc;
  Thread.delay 0.05;
  (* second conn lands on loop 1 (least connections) *)
  let fd_b, ic_b, oc_b = connect port in
  send oc_b "PING";
  check_string "loop 1 live while loop 0 holds a partial frame" "PONG"
    (input_line ic_b);
  output_string oc (String.sub frame 3 (String.length frame - 3));
  flush oc;
  let reply = Serve.Frame.read ic in
  check_int "the dripped frame still answered" 7 reply.Serve.Frame.id;
  check_bool "with an answer" true (reply.Serve.Frame.kind = Serve.Frame.Ok);
  send oc_b "SHUTDOWN";
  check_string "bye" "BYE" (input_line ic_b);
  close_in_noerr ic;
  close_in_noerr ic_b;
  ignore fd;
  ignore fd_b;
  Thread.join thread

let server_write_cap_disconnects () =
  (* a 64-byte write cap: PONG fits, a STATS reply does not — the conn
     is answered BUSY and disconnected, the server survives *)
  let thread, port = start_server ~max_write_buf:64 () in
  let _fd, ic, oc = connect port in
  send oc "PING";
  check_string "small reply fits the cap" "PONG" (input_line ic);
  send oc "STATS";
  check_string "oversized reply shed as BUSY" "BUSY" (input_line ic);
  check_bool "then disconnected" true
    (match input_line ic with
    | _ -> false
    | exception End_of_file -> true);
  close_in_noerr ic;
  check_bool "server survives the shed conn" true
    (talk port [ "PING" ] = [ "PONG" ]);
  ignore (talk port [ "SHUTDOWN" ]);
  Thread.join thread

let server_per_ip_cap () =
  let thread, port = start_server ~max_conns_per_ip:1 () in
  let _fd, ic_a, oc_a = connect port in
  send oc_a "PING";
  check_string "first conn from the ip served" "PONG" (input_line ic_a);
  let _fd_b, ic_b, _oc_b = connect port in
  check_string "second conn from the same ip shed" "BUSY" (input_line ic_b);
  check_bool "and closed" true
    (match input_line ic_b with
    | _ -> false
    | exception End_of_file -> true);
  close_in_noerr ic_b;
  send oc_a "STATS";
  check_bool "the shed accept was counted" true
    (List.mem "ip_limited_total 1" (read_until_end ic_a));
  send oc_a "QUIT";
  check_string "bye" "BYE" (input_line ic_a);
  close_in_noerr ic_a;
  (* closing the survivor frees the ip slot (asynchronously: retry) *)
  let deadline = Unix.gettimeofday () +. 5.0 in
  let rec admitted () =
    talk port [ "PING" ] = [ "PONG" ]
    || (Unix.gettimeofday () < deadline
       && (Thread.delay 0.02; admitted ()))
  in
  check_bool "slot released after close" true (admitted ());
  let rec shutdown () =
    List.mem "BYE" (talk port [ "SHUTDOWN" ])
    || (Unix.gettimeofday () < deadline
       && (Thread.delay 0.02; shutdown ()))
  in
  check_bool "shutdown admitted" true (shutdown ());
  Thread.join thread

let eventloop_wakeups_coalesce () =
  (* The wake channel is kernel-coalesced (eventfd) behind an atomic
     flag: a burst of cross-thread posts between two polls must drain as
     ONE counted wakeup, not one per post — the {loop} wakeup counters
     report batches. *)
  let l = Serve.Eventloop.create () in
  Fun.protect
    ~finally:(fun () -> Serve.Eventloop.close l)
    (fun () ->
      check_int "no wakeups before any poll" 0 (Serve.Eventloop.wakeups l);
      let posters =
        List.init 4 (fun _ ->
            Thread.create
              (fun () ->
                for _ = 1 to 25 do
                  Serve.Eventloop.wake l
                done)
              ())
      in
      List.iter Thread.join posters;
      Serve.Eventloop.iterate l ~timeout_ms:0;
      check_int "100 posts drain as one coalesced wakeup" 1
        (Serve.Eventloop.wakeups l);
      Serve.Eventloop.iterate l ~timeout_ms:0;
      check_int "a quiet iteration adds none" 1 (Serve.Eventloop.wakeups l);
      Serve.Eventloop.wake l;
      Serve.Eventloop.iterate l ~timeout_ms:0;
      check_int "a separate burst counts separately" 2
        (Serve.Eventloop.wakeups l))

(* ---------- Request lifecycle + flight recorder ---------- *)

(* One blocking HTTP GET against the daemon's metrics responder. *)
let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
      let req =
        Printf.sprintf
          "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n" path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 4096 in
      let chunk = Bytes.create 4096 in
      let rec go () =
        match Unix.read fd chunk 0 4096 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      let raw = Buffer.contents buf in
      let rec body_start i =
        if i + 4 > String.length raw then 0
        else if String.sub raw i 4 = "\r\n\r\n" then i + 4
        else body_start (i + 1)
      in
      let i = body_start 0 in
      String.sub raw i (String.length raw - i))

let server_lifecycle_flight_e2e () =
  (* End to end over a 1-loop fleet with a threshold that marks every
     request slow: a pipelined v4 QUERY must surface in the FLIGHT dump
     as a retained span tree whose accept→frame→queue→worker→backend→
     flush stages nest, order, and carry the owning loop id — including
     after conversion to Chrome trace-event JSON — and the {stage,loop}
     histogram series must lint on a live /metrics scrape. *)
  let rulebase, db = kb () in
  let port = Atomic.make 0 and mport = Atomic.make 0 in
  let cfg =
    {
      (server_config ~workers:2 ~loops:1 ()) with
      Serve.Server.slow_query_us = 0.001;
      metrics_port = Some 0;
    }
  in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          ~on_metrics_listen:(fun p -> Atomic.set mport p)
          cfg ~rulebase ~db)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while
    (Atomic.get port = 0 || Atomic.get mport = 0)
    && Unix.gettimeofday () < deadline
  do
    Thread.delay 0.01
  done;
  if Atomic.get port = 0 || Atomic.get mport = 0 then
    Alcotest.fail "server did not start";
  let c = Serve.Client.connect ~proto:`V4 ~port:(Atomic.get port) () in
  let qid = Serve.Client.post c "QUERY instructor(manolis)" in
  let rid, lines = Serve.Client.recv c in
  check_int "query answered under its id" qid rid;
  check_bool "with an ANSWER" true
    (match lines with
    | [ l ] -> String.length l >= 6 && String.sub l 0 6 = "ANSWER"
    | _ -> false);
  (* Finalization happens on the owning loop after the response bytes
     drain, so the retained trace may lag the reply by a poll: retry. *)
  let find_retained () =
    let reply = Serve.Client.request c "FLIGHT" in
    match Trace.Json.parse reply with
    | Trace.Json.Obj fields -> (
      match List.assoc_opt "retained" fields with
      | Some (Trace.Json.Arr entries) ->
        List.find_map
          (fun e ->
            match e with
            | Trace.Json.Obj ef -> (
              match
                (List.assoc_opt "rid" ef, List.assoc_opt "span" ef)
              with
              | Some (Trace.Json.Num rid), Some span
                when int_of_string rid = qid ->
                Some (ef, span)
              | _ -> None)
            | _ -> None)
          entries
      | _ -> None)
    | _ -> None
  in
  let rec poll () =
    match find_retained () with
    | Some found -> found
    | None ->
      if Unix.gettimeofday () > deadline then
        Alcotest.fail "query trace never retained"
      else begin
        Thread.delay 0.05;
        poll ()
      end
  in
  let entry, span_v = poll () in
  (match List.assoc_opt "reason" entry with
  | Some (Trace.Json.Str "slow") -> ()
  | _ -> Alcotest.fail "retention reason must be slow");
  (match List.assoc_opt "loop" entry with
  | Some (Trace.Json.Num "0") -> ()
  | _ -> Alcotest.fail "1-loop fleet: retained on loop 0");
  let span = Trace.of_json_value span_v in
  check_string "root is the request span" "request" (Trace.kind span);
  check_bool "root carries the loop id" true
    (Trace.attr span "loop" = Some "0");
  check_bool "root carries the rid" true
    (Trace.attr span "rid" = Some (string_of_int qid));
  let stages = List.map Trace.kind (Trace.children span) in
  (* accept→frame→queue→worker→flush, in order (all present here) *)
  check_bool "stage order" true
    (stages = [ "accept"; "frame"; "queue"; "worker"; "flush" ]);
  List.iter
    (fun sp ->
      check_bool "every stage carries the loop id" true
        (Trace.attr sp "loop" = Some "0"))
    (Trace.children span);
  let worker =
    List.find (fun sp -> Trace.kind sp = "worker") (Trace.children span)
  in
  check_bool "worker span shows the backend (cache or sld)" true
    (List.exists
       (fun sp -> Trace.kind sp = "cache" || Trace.kind sp = "sld")
       (Trace.children worker));
  (* Stage timestamps are monotone through the pipeline. *)
  let start k =
    Trace.start_ns
      (List.find (fun sp -> Trace.kind sp = k) (Trace.children span))
  in
  check_bool "frame≤queue≤worker≤flush" true
    (start "frame" <= start "queue"
    && start "queue" <= start "worker"
    && start "worker" <= start "flush");
  (* ---- the same tree through the Chrome trace-event exporter ---- *)
  (match Trace.Json.parse (Trace.to_chrome [ span ]) with
  | Trace.Json.Obj [ ("traceEvents", Trace.Json.Arr events) ] ->
    let field ev k =
      match ev with
      | Trace.Json.Obj fs -> List.assoc_opt k fs
      | _ -> None
    in
    let num ev k =
      match field ev k with
      | Some (Trace.Json.Num raw) -> float_of_string raw
      | _ -> Alcotest.failf "chrome event missing %s" k
    in
    check_bool "one event per span" true
      (List.length events >= 6 (* request + 5 stages *));
    List.iter
      (fun ev ->
        check_bool "every event is a complete span on the loop's lane"
          true
          (field ev "ph" = Some (Trace.Json.Str "X")
          && field ev "tid" = Some (Trace.Json.Num "0")))
      events;
    (* preorder: the request event leads, stages follow in order *)
    let names =
      List.filter_map
        (fun ev ->
          match field ev "cat" with
          | Some (Trace.Json.Str k) -> Some k
          | _ -> None)
        events
    in
    check_bool "request leads the export" true
      (match names with "request" :: _ -> true | _ -> false);
    let idx k =
      let rec go i = function
        | [] -> Alcotest.failf "chrome export missing %s" k
        | x :: _ when x = k -> i
        | _ :: tl -> go (i + 1) tl
      in
      go 0 names
    in
    check_bool "stage events keep pipeline order" true
      (idx "accept" < idx "frame"
      && idx "frame" < idx "queue"
      && idx "queue" < idx "worker"
      && idx "worker" < idx "flush");
    (* nesting: every stage but accept fits inside the request event
       (accept predates the request's first frame byte by design) *)
    let root_ev = List.hd events in
    List.iter
      (fun k ->
        let ev = List.nth events (idx k) in
        check_bool (k ^ " nests inside the request event") true
          (num ev "ts" >= num root_ev "ts"
          && num ev "ts" +. num ev "dur"
             <= num root_ev "ts" +. num root_ev "dur" +. 0.5))
      [ "frame"; "queue"; "worker"; "flush" ]
  | _ -> Alcotest.fail "chrome export must parse as {traceEvents:[...]}");
  (* ---- ring events for the request are in the dump too ---- *)
  let dump = Serve.Client.request c "FLIGHT" in
  List.iter
    (fun code ->
      check_bool (code ^ " event recorded") true
        (contains (Printf.sprintf "\"code\":\"%s\"" code) dump))
    [ "accept"; "request"; "enqueue"; "worker"; "respond"; "flush" ];
  (* ---- STATS carries the additive lifecycle fields ---- *)
  let stats = Serve.Client.command c "STATS" in
  let field_at_least name floor =
    List.exists
      (fun l ->
        match String.split_on_char ' ' l with
        | [ n; v ] -> n = name && int_of_string_opt v >= Some floor
        | _ -> false)
      stats
  in
  check_bool "lifecycle_requests_total counted" true
    (field_at_least "lifecycle_requests_total" 1);
  check_bool "traces_retained_total counted" true
    (field_at_least "traces_retained_total" 1);
  (* ---- live /metrics scrape: {stage,loop} series, and it lints ---- *)
  let body = http_get ~port:(Atomic.get mport) "/metrics" in
  (match Obs.Expo.lint body with
  | Ok () -> ()
  | Error problems ->
    Alcotest.failf "live fleet scrape must lint: %s"
      (String.concat "; " problems));
  List.iter
    (fun needle ->
      check_bool (needle ^ " series exported") true (contains needle body))
    [
      "strategem_stage_latency_us_bucket{stage=\"total\",loop=\"0\"";
      "strategem_stage_latency_us_bucket{stage=\"worker\",loop=\"0\"";
      "strategem_traces_retained_total{reason=\"slow\"}";
      "strategem_trace_retained_exemplar{loop=\"0\"}";
      "strategem_lifecycle_requests_total";
      "strategem_loop_wakeups_total{loop=\"0\"}";
    ];
  (* ---- /debug/flight serves the same envelope over HTTP ---- *)
  let flight_body = http_get ~port:(Atomic.get mport) "/debug/flight" in
  (match Trace.Json.parse flight_body with
  | Trace.Json.Obj fields ->
    check_bool "/debug/flight envelope version" true
      (List.assoc_opt "version" fields = Some (Trace.Json.Num "1"))
  | _ -> Alcotest.fail "/debug/flight must serve the flight JSON");
  check_string "shutdown" "BYE" (Serve.Client.request c "SHUTDOWN");
  Serve.Client.close c;
  Thread.join thread

let server_lifecycle_off_still_serves () =
  (* --no-lifecycle / --flight-capacity 0 / --retain 0: the whole layer
     gone, FLIGHT still answers an empty envelope, serving unaffected. *)
  let rulebase, db = kb () in
  let port = Atomic.make 0 in
  let cfg =
    {
      (server_config ~workers:2 ~loops:1 ()) with
      Serve.Server.lifecycle = false;
      flight_capacity = 0;
      retain = 0;
      slow_query_us = 0.001;
    }
  in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          cfg ~rulebase ~db)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get port = 0 then Alcotest.fail "server did not start";
  let replies =
    talk (Atomic.get port) [ "QUERY instructor(manolis)"; "FLIGHT"; "SHUTDOWN" ]
  in
  check_bool "query still answered" true
    (List.exists
       (fun l -> String.length l >= 6 && String.sub l 0 6 = "ANSWER")
       replies);
  (match
     List.find_opt
       (fun l -> String.length l > 0 && l.[0] = '{')
       replies
   with
  | Some dump -> (
    match Trace.Json.parse dump with
    | Trace.Json.Obj fields ->
      check_bool "no events recorded" true
        (List.assoc_opt "events" fields = Some (Trace.Json.Arr []));
      check_bool "nothing retained" true
        (List.assoc_opt "retained" fields = Some (Trace.Json.Arr []))
    | _ -> Alcotest.fail "FLIGHT reply must be a JSON object")
  | None -> Alcotest.fail "FLIGHT reply missing");
  check_bool "shutdown acknowledged" true (List.mem "BYE" replies);
  Thread.join thread

let server_idle_timeout_closes () =
  let thread, port = start_server ~idle_timeout_s:0.2 () in
  let _fd, ic, oc = connect port in
  send oc "PING";
  check_string "served while active" "PONG" (input_line ic);
  (* no traffic past the timeout: the sweep (≤ 1 s cadence) closes it *)
  check_bool "idle conn closed by the server" true
    (match input_line ic with
    | _ -> false
    | exception End_of_file -> true);
  close_in_noerr ic;
  let replies = talk port [ "STATS"; "SHUTDOWN" ] in
  check_bool "the idle close was counted" true
    (List.mem "idle_closed_total 1" replies);
  Thread.join thread

let suite =
  [
    ( "serve",
      [
        case "protocol parse and render" protocol_parse;
        protocol_parse_sub_agrees;
        protocol_parse_total;
        frame_roundtrip;
        case "frame truncation and corruption" frame_truncation;
        case "admission queue sheds and drains" admission_shed_and_drain;
        case "admission splits depth into per-producer quotas"
          admission_per_producer_quota;
        case "admission pop blocks until push" admission_blocking_pop;
        case "write caps shed with BUSY-then-disconnect" conn_write_cap_sheds;
        case "metrics counters and histogram" metrics_counters_and_histogram;
        case "registry canonical forms" registry_forms;
        case "registry shares learners and climbs" registry_shares_and_learns;
        case "snapshot save/load resumes the strategy" snapshot_roundtrip;
        slow_case "server answers concurrent clients" server_concurrent_clients;
        slow_case "server sheds connections past max-conns"
          server_sheds_when_full;
        slow_case "v4 sheds requests with Busy, conn survives"
          server_v4_busy_keeps_conn;
        slow_case "v4 pipelines 32 requests on one conn" server_v4_pipelining;
        slow_case "slow partial frame neither blocks nor breaks"
          server_slow_frame;
        slow_case "client auto-negotiation falls back to lines"
          client_falls_back_to_lines;
        slow_case "server restart resumes the snapshot" server_snapshot_restart;
        slow_case "fleet balances conns across loops"
          server_fleet_balances_conns;
        slow_case "fleet drains in-flight work on every loop"
          server_fleet_drains_every_loop;
        slow_case "slowloris on loop 0 does not stall loop 1"
          server_fleet_isolates_slow_peer;
        slow_case "write cap answers BUSY and disconnects"
          server_write_cap_disconnects;
        slow_case "per-ip cap sheds at accept and releases on close"
          server_per_ip_cap;
        slow_case "idle timeout closes quiet conns" server_idle_timeout_closes;
        case "eventfd wake channel coalesces bursts" eventloop_wakeups_coalesce;
        slow_case "lifecycle traces retained, exported, and linted"
          server_lifecycle_flight_e2e;
        slow_case "lifecycle layer off: serving unaffected"
          server_lifecycle_off_still_serves;
      ] );
  ]
