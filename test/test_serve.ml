(* The serve subsystem: protocol parsing, the admission queue's
   shed/drain semantics, metrics, the per-form registry (lazy creation,
   sharing, online climbs), snapshot save/load resumption, and the TCP
   server end to end in-process — concurrent clients, load shedding,
   graceful shutdown. *)

open Helpers
module D = Datalog

let kb_text =
  "instructor(X) :- prof(X).\n\
   instructor(X) :- grad(X).\n\
   prof(russ).\n\
   grad(manolis).\n"

let kb () =
  let rules, facts, _ = D.Parser.parse_kb kb_text in
  (D.Rulebase.of_list rules, D.Database.of_list facts)

(* ---------- Protocol ---------- *)

let protocol_parse () =
  let check name expected line =
    check_bool name true (Serve.Protocol.parse line = expected)
  in
  check "query" (Serve.Protocol.Query "instructor(russ)")
    "QUERY instructor(russ)";
  check "query lowercase" (Serve.Protocol.Query "p(a)") "query p(a)";
  check "query trimmed" (Serve.Protocol.Query "p(a)") "  QUERY   p(a)  ";
  check "stats" Serve.Protocol.Stats "STATS";
  check "stats json" Serve.Protocol.Stats_json "STATS json";
  check "strategy" (Serve.Protocol.Strategy "p(q)") "STRATEGY p(q)";
  check "snapshot" Serve.Protocol.Snapshot "SNAPSHOT";
  check "ping" Serve.Protocol.Ping "PING";
  check "quit" Serve.Protocol.Quit "QUIT";
  check "shutdown" Serve.Protocol.Shutdown "SHUTDOWN";
  check "empty" Serve.Protocol.Empty "   ";
  check "hello" Serve.Protocol.Hello "HELLO";
  check "trace" (Serve.Protocol.Trace "p(a)") "TRACE p(a)";
  check "bare query is malformed"
    (Serve.Protocol.Malformed "QUERY needs an atom") "QUERY";
  check "bare trace is malformed"
    (Serve.Protocol.Malformed "TRACE needs an atom") "TRACE";
  check "ping with junk is malformed"
    (Serve.Protocol.Malformed "PING takes no argument") "PING now";
  check "unknown verb carries the verb" (Serve.Protocol.Unknown "FROBNICATE")
    "FROBNICATE 3";
  check_string "answer line" "ANSWER yes reductions=2 retrievals=2 switched"
    (Serve.Protocol.answer_line ~result:"yes" ~reductions:2 ~retrievals:2
       ~cached:false ~switched:true);
  check_string "cached answer line"
    "ANSWER yes reductions=0 retrievals=0 cached switched"
    (Serve.Protocol.answer_line ~result:"yes" ~reductions:0 ~retrievals:0
       ~cached:true ~switched:true);
  check_string "hello line carries version and learner"
    (Printf.sprintf "HELLO strategem/%d learner=pib" Serve.Protocol.version)
    (Serve.Protocol.hello_line ~learner:"pib");
  check_string "err is structured and flattens newlines" "ERR internal a b"
    (Serve.Protocol.err ~code:`Internal "a\nb");
  check_string "err code renders" "ERR unknown-verb FROBNICATE"
    (Serve.Protocol.err ~code:`Unknown_verb "FROBNICATE")

(* ---------- Admission ---------- *)

let admission_shed_and_drain () =
  let q = Serve.Admission.create ~depth:2 in
  check_bool "push 1" true (Serve.Admission.try_push q 1);
  check_bool "push 2" true (Serve.Admission.try_push q 2);
  check_bool "full refuses" false (Serve.Admission.try_push q 3);
  check_int "length" 2 (Serve.Admission.length q);
  check_bool "pop 1" true (Serve.Admission.pop q = Some 1);
  check_bool "room again" true (Serve.Admission.try_push q 4);
  Serve.Admission.close q;
  check_bool "closed refuses" false (Serve.Admission.try_push q 5);
  check_bool "drains 2" true (Serve.Admission.pop q = Some 2);
  check_bool "drains 4" true (Serve.Admission.pop q = Some 4);
  check_bool "then None" true (Serve.Admission.pop q = None);
  check_int "high water" 2 (Serve.Admission.high_water q)

let admission_blocking_pop () =
  let q = Serve.Admission.create ~depth:4 in
  let got = Atomic.make (-1) in
  let consumer =
    Thread.create
      (fun () ->
        match Serve.Admission.pop q with
        | Some v -> Atomic.set got v
        | None -> Atomic.set got (-2))
      ()
  in
  Thread.delay 0.05;
  check_bool "push wakes consumer" true (Serve.Admission.try_push q 7);
  Thread.join consumer;
  check_int "consumer got it" 7 (Atomic.get got)

(* ---------- Metrics ---------- *)

let metrics_counters_and_histogram () =
  let m = Serve.Metrics.create () in
  Serve.Metrics.connection m;
  Serve.Metrics.busy m;
  Serve.Metrics.observe_queue_depth m 3;
  Serve.Metrics.observe_queue_depth m 1;
  for i = 1 to 100 do
    Serve.Metrics.query m ~form:"f_1_b"
      ~latency_us:(float_of_int i)
      ~answered:(i mod 2 = 0)
      ~switched:(i = 50)
  done;
  check_int "queries" 100 (Serve.Metrics.queries_total m);
  check_int "climbs" 1 (Serve.Metrics.climbs_total m);
  check_int "busy" 1 (Serve.Metrics.busy_total m);
  check_int "queue high water" 3 (Serve.Metrics.queue_high_water m);
  let text = String.concat "\n" (Serve.Metrics.render_text m) in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
    go 0
  in
  check_bool "text has totals" true (contains "queries_total 100" text);
  check_bool "text has form line" true (contains "form f_1_b queries 100" text);
  let json = Serve.Metrics.render_json m in
  check_bool "json one line" true (not (String.contains json '\n'));
  check_bool "json has form" true (contains "\"f_1_b\"" json);
  check_bool "json has climbs" true (contains "\"climbs\":1" json)

(* ---------- Registry ---------- *)

let registry_forms () =
  let q = D.Parser.parse_atom "instructor(manolis)" in
  let form = Serve.Registry.form_of_query q in
  check_string "canonical form" "instructor(q)" (D.Atom.to_string form);
  check_string "key" "instructor_1_b" (Serve.Registry.key_of_form form);
  let free = Serve.Registry.form_of_query (D.Parser.parse_atom "instructor(X)") in
  check_string "free key" "instructor_1_f" (Serve.Registry.key_of_form free)

let registry_shares_and_learns () =
  let rulebase, db = kb () in
  let m = Serve.Metrics.create () in
  let reg = Serve.Registry.create ~rulebase m in
  let ans =
    Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(russ)")
  in
  check_bool "russ answered" true (ans.Core.Live.result <> None);
  ignore
    (Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(fred)"));
  check_int "one entry for both constants" 1
    (List.length (Serve.Registry.entries reg));
  (* a grad-heavy stream flips the learned order to grad-first *)
  let switched = ref false in
  for _ = 1 to 200 do
    let a =
      Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(manolis)")
    in
    if a.Core.Live.switched then switched := true
  done;
  check_bool "climbed" true !switched;
  let e = List.hd (Serve.Registry.entries reg) in
  let s = Serve.Registry.strategy_string e in
  check_bool "grad-first strategy" true
    (String.length s > 2 && String.sub s 3 17 = "R_instructor_grad")

(* ---------- Snapshot ---------- *)

let temp_dir () =
  let d = Filename.temp_file "strategem" ".state" in
  Sys.remove d;
  d

let snapshot_roundtrip () =
  let rulebase, db = kb () in
  let dir = temp_dir () in
  let m = Serve.Metrics.create () in
  let reg = Serve.Registry.create ~rulebase m in
  for _ = 1 to 200 do
    ignore
      (Serve.Registry.answer reg ~db (D.Parser.parse_atom "instructor(manolis)"))
  done;
  let learned =
    Serve.Registry.strategy_string (List.hd (Serve.Registry.entries reg))
  in
  check_int "saved one form" 1 (Serve.Snapshot.save ~dir reg);
  (* a fresh registry (a restarted server) resumes the learned strategy *)
  let reg' = Serve.Registry.create ~rulebase (Serve.Metrics.create ()) in
  check_int "loaded one form" 1 (Serve.Snapshot.load ~dir reg');
  let resumed =
    Serve.Registry.strategy_string (List.hd (Serve.Registry.entries reg'))
  in
  check_string "strategy resumed" learned resumed;
  (* load into yet another registry from a missing dir is a no-op *)
  check_int "missing dir" 0
    (Serve.Snapshot.load ~dir:(dir ^ ".nope")
       (Serve.Registry.create ~rulebase (Serve.Metrics.create ())))

(* ---------- Server end to end (in-process TCP) ---------- *)

let server_config ?(workers = 2) ?(queue_depth = 8) ?state_dir () =
  {
    Serve.Server.default_config with
    port = 0;
    workers;
    queue_depth;
    state_dir;
  }

let start_server ?workers ?queue_depth ?state_dir () =
  let rulebase, db = kb () in
  let port = Atomic.make 0 in
  let thread =
    Thread.create
      (fun () ->
        Serve.Server.run
          ~on_listen:(fun p -> Atomic.set port p)
          (server_config ?workers ?queue_depth ?state_dir ())
          ~rulebase ~db)
      ()
  in
  let deadline = Unix.gettimeofday () +. 10.0 in
  while Atomic.get port = 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done;
  if Atomic.get port = 0 then Alcotest.fail "server did not start";
  (thread, Atomic.get port)

let connect port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.setsockopt_float fd Unix.SO_RCVTIMEO 10.0;
  (fd, Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd)

let send oc line =
  output_string oc line;
  output_char oc '\n';
  flush oc

(* One-shot conversation: send every line, half-close, read every reply. *)
let talk port lines =
  let fd, ic, oc = connect port in
  List.iter (send oc) lines;
  Unix.shutdown fd Unix.SHUTDOWN_SEND;
  let replies = In_channel.input_lines ic in
  close_in_noerr ic;
  replies

let server_concurrent_clients () =
  let thread, port = start_server ~workers:2 () in
  (* Client A parks on a worker; client B must still be answered, which
     needs the second worker. *)
  let _fd_a, ic_a, oc_a = connect port in
  check_bool "A ping" true (send oc_a "PING"; input_line ic_a = "PONG");
  let replies = talk port [ "QUERY instructor(manolis)"; "QUERY nonsense(" ] in
  check_bool "B answered while A held a worker" true
    (match replies with
    | [ a; b ] ->
      a = "ANSWER yes reductions=2 retrievals=2"
      && String.length b >= 3
      && String.sub b 0 3 = "ERR"
    | _ -> false);
  (* hammer it from two threads at once; all queries must be answered *)
  let n = 50 in
  let one_client () =
    let replies =
      talk port (List.init n (fun _ -> "QUERY instructor(manolis)"))
    in
    List.length (List.filter (fun r -> String.sub r 0 6 = "ANSWER") replies)
  in
  let count_b = ref 0 in
  let t = Thread.create (fun () -> count_b := one_client ()) () in
  let count_a = one_client () in
  Thread.join t;
  check_int "all of A's queries answered" n count_a;
  check_int "all of B's queries answered" n !count_b;
  send oc_a "QUIT";
  check_bool "A said bye" true (input_line ic_a = "BYE");
  close_in_noerr ic_a;
  let replies = talk port [ "STATS"; "SHUTDOWN" ] in
  check_bool "stats then bye" true
    (List.mem "END" replies && List.mem "BYE" replies);
  (* the parse-error line counts as an error, not a query *)
  check_bool "stats counted the queries" true
    (List.exists (fun l -> l = Printf.sprintf "queries_total %d" ((2 * n) + 1))
       replies);
  check_bool "stats counted the error" true
    (List.mem "errors_total 1" replies);
  Thread.join thread

let server_sheds_when_full () =
  let thread, port = start_server ~workers:1 ~queue_depth:1 () in
  (* occupy the single worker ... *)
  let fd_a, ic_a, oc_a = connect port in
  send oc_a "PING";
  check_string "worker busy with A" "PONG" (input_line ic_a);
  (* ... fill the queue ... *)
  let fd_b, _ic_b, _oc_b = connect port in
  Thread.delay 0.2;
  (* ... so the next connection is shed with BUSY. *)
  let _fd_c, ic_c, _oc_c = connect port in
  check_string "shed" "BUSY" (input_line ic_c);
  close_in_noerr ic_c;
  Unix.close fd_b;
  send oc_a "SHUTDOWN";
  check_string "bye" "BYE" (input_line ic_a);
  close_in_noerr ic_a;
  ignore fd_a;
  Thread.join thread

let server_snapshot_restart () =
  let dir = temp_dir () in
  let thread, port = start_server ~state_dir:dir () in
  let replies =
    talk port
      (List.init 200 (fun _ -> "QUERY instructor(manolis)") @ [ "SHUTDOWN" ])
  in
  (* With the (default-on) answer cache, every query after the first is a
     hit, so the climb lands on a cached reply. *)
  check_bool "climbed under live traffic" true
    (List.exists
       (fun r -> r = "ANSWER yes reductions=0 retrievals=0 cached switched")
       replies);
  Thread.join thread;
  (* restart against the same state dir: the learned strategy is back
     without a single climb *)
  let thread, port = start_server ~state_dir:dir () in
  let replies =
    talk port [ "STRATEGY instructor(q)"; "QUERY instructor(manolis)"; "SHUTDOWN" ]
  in
  check_bool "resumed grad-first" true
    (List.exists
       (fun r ->
         r = "OK instructor_1_b ⟨R_instructor_grad D_grad R_instructor_prof \
              D_prof⟩")
       replies);
  check_bool "fast from the first query" true
    (List.mem "ANSWER yes reductions=1 retrievals=1" replies);
  Thread.join thread

let suite =
  [
    ( "serve",
      [
        case "protocol parse and render" protocol_parse;
        case "admission queue sheds and drains" admission_shed_and_drain;
        case "admission pop blocks until push" admission_blocking_pop;
        case "metrics counters and histogram" metrics_counters_and_histogram;
        case "registry canonical forms" registry_forms;
        case "registry shares learners and climbs" registry_shares_and_learns;
        case "snapshot save/load resumes the strategy" snapshot_roundtrip;
        slow_case "server answers concurrent clients" server_concurrent_clients;
        slow_case "server sheds with BUSY when saturated" server_sheds_when_full;
        slow_case "server restart resumes the snapshot" server_snapshot_restart;
      ] );
  ]
