(* The observability layer: the labeled registry's instruments and
   collect hooks, histogram quantiles against adversarial distributions
   (the log-bucket "within one bucket boundary" guarantee), Prometheus
   rendering + the exposition linter, JSONL structured logging with its
   rate limiter, and the embedded HTTP responder. *)

open Helpers
module R = Obs.Registry

(* ---------- Registry instruments ---------- *)

let counter_basics () =
  let reg = R.create () in
  let fam = R.Counter.v reg ~help:"h" "c_total" in
  let c = R.Counter.solo fam in
  R.Counter.inc c;
  R.Counter.add c 4;
  check_int "inc + add" 5 (R.Counter.value c);
  (match R.Counter.add c (-1) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative add must raise");
  R.Counter.set c 3;
  check_int "set never moves backwards" 5 (R.Counter.value c);
  R.Counter.set c 9;
  check_int "set moves forward" 9 (R.Counter.value c)

let labeled_children () =
  let reg = R.create () in
  let fam = R.Counter.v reg ~help:"h" ~labels:[ "form" ] "q_total" in
  let a = R.Counter.labels fam [ "a" ] in
  let b = R.Counter.labels fam [ "b" ] in
  R.Counter.inc a;
  R.Counter.inc a;
  R.Counter.inc b;
  check_int "children are distinct series" 2 (R.Counter.value a);
  check_int "other child unaffected" 1 (R.Counter.value b);
  let a' = R.Counter.labels fam [ "a" ] in
  R.Counter.inc a';
  check_int "same labels, same child" 3 (R.Counter.value a)

let family_name_validation () =
  let reg = R.create () in
  (match R.Counter.v reg ~help:"h" "0bad" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "invalid metric name must raise");
  let _ = R.Counter.v reg ~help:"h" "dup_total" in
  (match R.Counter.v reg ~help:"h" "dup_total" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate family must raise");
  check_bool "name regex accepts colons" true (R.name_re_ok "a:b_c9");
  check_bool "name regex rejects dash" false (R.name_re_ok "a-b");
  check_bool "label regex rejects colon" false (R.label_re_ok "a:b")

let gauge_ops () =
  let reg = R.create () in
  let g = R.Gauge.solo (R.Gauge.v reg ~help:"h" "g") in
  R.Gauge.set g 2.5;
  R.Gauge.add g 1.0;
  check_float "set + add" 3.5 (R.Gauge.value g);
  R.Gauge.set_max g 1.0;
  check_float "set_max ignores smaller" 3.5 (R.Gauge.value g);
  R.Gauge.set_max g 7.0;
  check_float "set_max takes larger" 7.0 (R.Gauge.value g);
  check_float "read_reset returns the value" 7.0 (R.Gauge.read_reset g);
  check_float "and zeroes the window" 0.0 (R.Gauge.value g)

let collect_hooks_in_order () =
  let reg = R.create () in
  let order = ref [] in
  R.on_collect reg (fun () -> order := "first" :: !order);
  R.on_collect reg (fun () -> order := "second" :: !order);
  R.collect reg;
  check_bool "hooks run oldest first" true
    (List.rev !order = [ "first"; "second" ])

(* ---------- Histogram quantiles ---------- *)

(* The exact percentile at the same rank convention the histogram uses:
   rank = max 1 (ceil (q * n)), value = sorted.(rank - 1). The log-bucket
   quantile must return the upper bound of the bucket containing exactly
   that value — that is what "exact to within one bucket boundary"
   means. *)
let exact_percentile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = Int.max 1 (int_of_float (ceil (q *. float_of_int n))) in
  List.nth sorted (rank - 1)

let check_quantiles name values =
  let reg = R.create () in
  let h = R.Histogram.solo (R.Histogram.v reg ~help:"h" "lat_us") in
  List.iter (fun v -> R.Histogram.observe h v) values;
  let s = R.Histogram.snapshot h in
  List.iter
    (fun q ->
      let exact = exact_percentile values q in
      check_int
        (Printf.sprintf "%s: p%.0f covers the exact percentile's bucket"
           name (q *. 100.))
        (R.bucket_upper (R.bucket_of_value exact))
        (R.Histogram.quantile s q))
    [ 0.5; 0.9; 0.99 ]

let hist_all_in_one_bucket () =
  (* every observation in [64, 128): all percentiles are that bucket *)
  check_quantiles "one bucket" (List.init 100 (fun i -> 64.0 +. float_of_int (i mod 60)));
  let s =
    let reg = R.create () in
    let h = R.Histogram.solo (R.Histogram.v reg ~help:"h" "x") in
    R.Histogram.snapshot h
  in
  check_int "empty histogram quantile is 0" 0 (R.Histogram.quantile s 0.99)

let hist_bimodal () =
  (* 90 fast (~8 µs) and 10 slow (~100 ms): p50 in the fast mode, p99 in
     the slow mode, orders of magnitude apart *)
  let values =
    List.init 90 (fun _ -> 8.0) @ List.init 10 (fun _ -> 100_000.0)
  in
  check_quantiles "bimodal" values;
  let reg = R.create () in
  let h = R.Histogram.solo (R.Histogram.v reg ~help:"h" "x") in
  List.iter (R.Histogram.observe h) values;
  let s = R.Histogram.snapshot h in
  check_bool "p50 stays in the fast mode" true (R.Histogram.quantile s 0.5 <= 16);
  check_bool "p99 lands in the slow mode" true
    (R.Histogram.quantile s 0.99 >= 65536)

let hist_monotone_ramp () =
  check_quantiles "ramp" (List.init 1000 (fun i -> float_of_int (i + 1)))

let hist_overflow () =
  let reg = R.create () in
  let h = R.Histogram.solo (R.Histogram.v reg ~help:"h" "x") in
  R.Histogram.observe h 1e12;
  let s = R.Histogram.snapshot h in
  check_int "overflow observation lands in the overflow bucket"
    (R.bucket_upper R.n_buckets)
    (R.Histogram.quantile s 0.5);
  check_int "count still tracks" 1 s.R.Histogram.count

let hist_quantile_qcheck =
  qcheck ~count:300 "random histograms: quantile within one bucket of exact"
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 200) (float_range 0.0 2e6))
        (float_range 0.01 0.99))
    (fun (values, q) ->
      let reg = R.create () in
      let h = R.Histogram.solo (R.Histogram.v reg ~help:"h" "x") in
      List.iter (R.Histogram.observe h) values;
      let s = R.Histogram.snapshot h in
      R.Histogram.quantile s q
      = R.bucket_upper (R.bucket_of_value (exact_percentile values q)))

(* ---------- Exposition rendering + lint ---------- *)

let sample_registry () =
  let reg = R.create () in
  let c = R.Counter.v reg ~help:"Queries \"answered\"\nso far" ~labels:[ "form" ] "t_queries_total" in
  R.Counter.add (R.Counter.labels c [ "instructor_1_b" ]) 83;
  R.Counter.inc (R.Counter.labels c [ "weird\"form\\n" ]);
  let g = R.Gauge.solo (R.Gauge.v reg ~help:"eps" "t_epsilon") in
  R.Gauge.set g Float.infinity;
  let h = R.Histogram.solo (R.Histogram.v reg ~help:"lat" "t_latency_us") in
  List.iter (R.Histogram.observe h) [ 3.0; 5.0; 900.0 ];
  reg

let render_lints_clean () =
  let doc = Obs.Expo.render (sample_registry ()) in
  (match Obs.Expo.lint doc with
  | Ok () -> ()
  | Error problems ->
    Alcotest.failf "rendered document must lint: %s"
      (String.concat "; " problems));
  check_bool "histogram +Inf bucket present" true
    (let needle = "t_latency_us_bucket{le=\"+Inf\"} 3" in
     let rec mem i =
       i + String.length needle <= String.length doc
       && (String.sub doc i (String.length needle) = needle || mem (i + 1))
     in
     mem 0)

let render_parse_roundtrip () =
  let doc = Obs.Expo.render (sample_registry ()) in
  let samples = Obs.Expo.parse_samples doc in
  let find metric labels =
    List.find_opt
      (fun s -> s.Obs.Expo.metric = metric && s.Obs.Expo.labels = labels)
      samples
  in
  (match find "t_queries_total" [ ("form", "instructor_1_b") ] with
  | Some s -> check_float "labeled counter value" 83.0 s.Obs.Expo.value
  | None -> Alcotest.fail "labeled counter sample missing");
  (match find "t_queries_total" [ ("form", "weird\"form\\n") ] with
  | Some s -> check_float "escaped label round-trips" 1.0 s.Obs.Expo.value
  | None -> Alcotest.fail "escaped label sample missing");
  (match find "t_epsilon" [] with
  | Some s -> check_bool "+Inf round-trips" true (s.Obs.Expo.value = Float.infinity)
  | None -> Alcotest.fail "gauge sample missing");
  (match find "t_latency_us_sum" [] with
  | Some s -> check_float "histogram sum" 908.0 s.Obs.Expo.value
  | None -> Alcotest.fail "histogram _sum missing")

let float_str_forms () =
  check_string "+Inf" "+Inf" (Obs.Expo.float_str Float.infinity);
  check_string "-Inf" "-Inf" (Obs.Expo.float_str Float.neg_infinity);
  check_string "NaN" "NaN" (Obs.Expo.float_str Float.nan);
  check_string "integral float" "42" (Obs.Expo.float_str 42.0)

let lint_catches_violations () =
  let check_rejects name doc =
    match Obs.Expo.lint doc with
    | Ok () -> Alcotest.failf "%s: lint must reject" name
    | Error problems -> check_bool (name ^ " reports a problem") true (problems <> [])
  in
  check_rejects "missing HELP/TYPE" "a_total 1\n";
  check_rejects "TYPE without HELP" "# TYPE a_total counter\na_total 1\n";
  check_rejects "bad type"
    "# HELP a_total h\n# TYPE a_total widget\na_total 1\n";
  check_rejects "duplicate sample"
    "# HELP a_total h\n# TYPE a_total counter\na_total 1\na_total 2\n";
  check_rejects "invalid metric name"
    "# HELP 0a h\n# TYPE 0a counter\n0a 1\n";
  check_rejects "non-cumulative histogram buckets"
    "# HELP h h\n# TYPE h histogram\n\
     h_bucket{le=\"2\"} 5\nh_bucket{le=\"4\"} 3\nh_bucket{le=\"+Inf\"} 5\n\
     h_sum 10\nh_count 5\n";
  check_rejects "+Inf bucket disagrees with _count"
    "# HELP h h\n# TYPE h histogram\n\
     h_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 1\nh_sum 2\nh_count 3\n";
  check_rejects "histogram missing _sum"
    "# HELP h h\n# TYPE h histogram\n\
     h_bucket{le=\"+Inf\"} 1\nh_count 1\n";
  match
    Obs.Expo.lint
      "# HELP h h\n# TYPE h histogram\n\
       h_bucket{le=\"2\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 3\nh_count 2\n"
  with
  | Ok () -> ()
  | Error problems ->
    Alcotest.failf "well-formed histogram must pass: %s"
      (String.concat "; " problems)

(* ---------- Label-value escaping ---------- *)

let contains_s hay needle =
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let label_value_escaping () =
  let reg = R.create () in
  let fam = R.Counter.v reg ~help:"h" ~labels:[ "k" ] "esc_total" in
  List.iter
    (fun v -> R.Counter.inc (R.Counter.labels fam [ v ]))
    [ "back\\slash"; "new\nline"; "quo\"te"; "all\\three\"\n" ];
  let doc = Obs.Expo.render reg in
  (* The exposition format escapes exactly backslash, newline, and double
     quote inside label values. *)
  check_bool "backslash escaped" true
    (contains_s doc {|esc_total{k="back\\slash"} 1|});
  check_bool "newline escaped" true
    (contains_s doc {|esc_total{k="new\nline"} 1|});
  check_bool "quote escaped" true
    (contains_s doc {|esc_total{k="quo\"te"} 1|});
  check_bool "combined escapes" true
    (contains_s doc {|esc_total{k="all\\three\"\n"} 1|});
  (match Obs.Expo.lint doc with
  | Ok () -> ()
  | Error problems ->
    Alcotest.failf "escaped document must lint: %s"
      (String.concat "; " problems));
  let samples = Obs.Expo.parse_samples doc in
  List.iter
    (fun v ->
      check_bool "escaped value parses back" true
        (List.exists
           (fun s ->
             s.Obs.Expo.metric = "esc_total"
             && s.Obs.Expo.labels = [ ("k", v) ])
           samples))
    [ "back\\slash"; "new\nline"; "quo\"te"; "all\\three\"\n" ]

(* ---------- Flight recorder ---------- *)

module F = Obs.Flight

let flight_records_and_snapshots () =
  let r = F.create ~capacity:8 in
  check_bool "enabled" true (F.enabled r);
  check_int "capacity kept" 8 (F.capacity r);
  for i = 0 to 4 do
    F.record r
      ~ts_ns:(Int64.of_int (1000 + i))
      ~code:F.code_request ~loop:2 ~conn:7 ~rid:i ~a:(Int64.of_int i) ~b:9L
  done;
  check_int "seq counts events" 5 (F.seq r);
  let evs = F.snapshot r in
  check_int "all five present" 5 (List.length evs);
  let e0 = List.hd evs in
  check_int "oldest first" 0 e0.F.ev_seq;
  check_bool "ts survives" true (e0.F.ev_ts_ns = 1000L);
  check_int "code" F.code_request e0.F.ev_code;
  check_int "loop" 2 e0.F.ev_loop;
  check_int "conn" 7 e0.F.ev_conn;
  check_int "rid" 0 e0.F.ev_rid;
  check_bool "detail a" true (e0.F.ev_a = 0L);
  check_bool "detail b" true (e0.F.ev_b = 9L);
  check_string "event JSON shape"
    "{\"seq\":0,\"ts_ns\":1000,\"code\":\"request\",\"loop\":2,\"conn\":7,\
     \"rid\":0,\"a\":0,\"b\":9}"
    (F.event_to_json e0)

let flight_wraps () =
  let r = F.create ~capacity:4 in
  for i = 0 to 9 do
    F.record r ~ts_ns:(Int64.of_int i) ~code:F.code_accept ~loop:0 ~conn:i
      ~rid:0 ~a:0L ~b:0L
  done;
  let evs = F.snapshot r in
  check_int "only the last capacity survive" 4 (List.length evs);
  check_int "oldest surviving seq" 6 (List.hd evs).F.ev_seq;
  check_int "newest last" 9 (List.nth evs 3).F.ev_seq;
  check_int "conn tracks the survivors" 6 (List.hd evs).F.ev_conn

let flight_capacity_edge_cases () =
  check_int "capacity rounds up to a power of two" 8
    (F.capacity (F.create ~capacity:5));
  let d = F.create ~capacity:0 in
  check_bool "capacity 0 disables" false (F.enabled d);
  F.record d ~ts_ns:1L ~code:F.code_accept ~loop:0 ~conn:0 ~rid:0 ~a:0L
    ~b:0L;
  check_int "disabled ring records nothing" 0 (List.length (F.snapshot d));
  check_int "disabled ring has no seq" 0 (F.seq d)

let flight_code_names () =
  List.iter
    (fun (code, name) -> check_string name name (F.code_name code))
    [
      (F.code_accept, "accept"); (F.code_close, "close");
      (F.code_shed, "shed"); (F.code_request, "request");
      (F.code_enqueue, "enqueue"); (F.code_worker, "worker");
      (F.code_respond, "respond"); (F.code_flush, "flush");
    ]

(* ---------- Structured logging ---------- *)

let log_lines f =
  let path = Filename.temp_file "obs_log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t = Obs.Log.open_file ~level:Obs.Log.Debug path in
      f t;
      Obs.Log.close t;
      In_channel.with_open_text path In_channel.input_lines)

let contains hay needle =
  let rec go i =
    i + String.length needle <= String.length hay
    && (String.sub hay i (String.length needle) = needle || go (i + 1))
  in
  go 0

let log_record_shape () =
  let lines =
    log_lines (fun t ->
        Obs.Log.info t "query answered"
          ~fields:
            [
              ("conn", Obs.Log.I 7);
              ("q", Obs.Log.S "instructor(\"x\")\n");
              ("latency_us", Obs.Log.F 12.5);
              ("cached", Obs.Log.B false);
              ("span", Obs.Log.J {|{"name":"root"}|});
            ])
  in
  check_int "one record per call" 1 (List.length lines);
  let l = List.hd lines in
  List.iter
    (fun needle ->
      check_bool (Printf.sprintf "record has %s" needle) true
        (contains l needle))
    [
      {|"ts":"|};
      {|"mono_ns":|};
      {|"level":"info"|};
      {|"msg":"query answered"|};
      {|"conn":7|};
      {|"q":"instructor(\"x\")\n"|};
      {|"latency_us":12.5|};
      {|"cached":false|};
      {|"span":{"name":"root"}|};
    ]

let log_level_filter () =
  let lines =
    log_lines (fun t ->
        Obs.Log.set_level t Obs.Log.Warn;
        check_bool "debug disabled at warn" false
          (Obs.Log.enabled t Obs.Log.Debug);
        check_bool "error enabled at warn" true
          (Obs.Log.enabled t Obs.Log.Error);
        Obs.Log.debug t "dropped";
        Obs.Log.info t "dropped too";
        Obs.Log.error t "kept")
  in
  check_int "only the error record is written" 1 (List.length lines);
  check_bool "null sink is never enabled" false
    (Obs.Log.enabled Obs.Log.null Obs.Log.Error)

let log_levels_roundtrip () =
  List.iter
    (fun l ->
      check_bool "level round-trips" true
        (Obs.Log.level_of_string (Obs.Log.level_to_string l) = Some l))
    [ Obs.Log.Debug; Obs.Log.Info; Obs.Log.Warn; Obs.Log.Error ];
  check_bool "warning is an alias" true
    (Obs.Log.level_of_string "warning" = Some Obs.Log.Warn)

let limiter_admits_and_counts () =
  let lim = Obs.Log.Limiter.create ~min_interval_s:10.0 in
  check_bool "first event admitted" true
    (Obs.Log.Limiter.admit lim ~now:100.0 = Some 0);
  check_bool "burst suppressed" true
    (Obs.Log.Limiter.admit lim ~now:100.1 = None);
  check_bool "still suppressed" true
    (Obs.Log.Limiter.admit lim ~now:109.9 = None);
  check_bool "after the interval, admitted with the suppressed count" true
    (Obs.Log.Limiter.admit lim ~now:110.5 = Some 2)

(* ---------- HTTP responder ---------- *)

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd
        (Unix.ADDR_INET (Unix.inet_addr_of_string "127.0.0.1", port));
      let req =
        Printf.sprintf "GET %s HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"
          path
      in
      ignore (Unix.write_substring fd req 0 (String.length req));
      let buf = Buffer.create 1024 in
      let chunk = Bytes.create 1024 in
      let rec go () =
        match Unix.read fd chunk 0 1024 with
        | 0 -> ()
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
      in
      go ();
      Buffer.contents buf)

let http_serves_and_404s () =
  let handler ~meth:_ ~path =
    match path with
    | "/metrics" -> Some (Obs.Http.text 200 "all_good 1\n")
    | _ -> None
  in
  let t = Obs.Http.start ~port:0 ~handler () in
  Fun.protect
    ~finally:(fun () -> Obs.Http.stop t)
    (fun () ->
      let port = Obs.Http.port t in
      check_bool "ephemeral port chosen" true (port > 0);
      let ok = http_get ~port "/metrics" in
      check_bool "200 status line" true (contains ok "HTTP/1.1 200 OK");
      check_bool "body served" true (contains ok "all_good 1");
      check_bool "content-length present" true (contains ok "Content-Length:");
      let qs = http_get ~port "/metrics?x=1" in
      check_bool "query string stripped" true (contains qs "all_good 1");
      let missing = http_get ~port "/nope" in
      check_bool "unhandled path is 404" true (contains missing "404"))

let suite =
  [
    ( "obs",
      [
        case "counter inc/add/set semantics" counter_basics;
        case "labeled children are distinct series" labeled_children;
        case "family and name validation" family_name_validation;
        case "gauge set/add/set_max/read_reset" gauge_ops;
        case "collect hooks run oldest first" collect_hooks_in_order;
        case "histogram: one-bucket distribution" hist_all_in_one_bucket;
        case "histogram: bimodal distribution" hist_bimodal;
        case "histogram: monotone ramp" hist_monotone_ramp;
        case "histogram: overflow bucket" hist_overflow;
        hist_quantile_qcheck;
        case "render lints clean" render_lints_clean;
        case "render/parse round-trip" render_parse_roundtrip;
        case "float formatting" float_str_forms;
        case "lint catches violations" lint_catches_violations;
        case "label-value escaping" label_value_escaping;
        case "flight ring records and snapshots" flight_records_and_snapshots;
        case "flight ring wraps" flight_wraps;
        case "flight ring capacity edge cases" flight_capacity_edge_cases;
        case "flight event-code names" flight_code_names;
        case "log record shape" log_record_shape;
        case "log level filtering" log_level_filter;
        case "log level round-trip" log_levels_roundtrip;
        case "slow-query limiter" limiter_admits_and_counts;
        case "http responder serves and 404s" http_serves_and_404s;
      ] );
  ]
