(* Anytime behaviour at scale:

     dune exec examples/synthetic_anytime.exe

   A random ~30-arc inference tree, run in two regimes:

   - {b failure-heavy} (low success probabilities): the QP explores deeply,
     so PIB's trace-only under-estimates Δ̃ carry real signal and it climbs
     step by step — the anytime profile of Theorem 1.
   - {b success-heavy} (high probabilities): the QP usually succeeds in the
     first subtree it tries, Θ' is never observed "winning", and the
     pessimistic Δ̃ stays negative: unobtrusive PIB sits still (soundness
     without power — the trade the paper accepts), while PALO, which pays
     for paired executions, still converges and stops. *)

open Strategy
open Infgraph

let report_regime ~label ~p_min ~p_max g rng =
  let model = Workload.Synth.random_model ~p_min ~p_max rng g in
  let start = Spec.default g in
  let _, c_opt = Upsilon.aot model in
  Fmt.pr "@.[%s] start cost %.3f; DFS-optimal %.3f@." label
    (fst (Cost.exact_dfs start model))
    c_opt;
  let pib = Core.Pib.create start in
  let climbs =
    Core.Pib.run pib (Core.Oracle.of_model model (Stats.Rng.split rng)) ~n:60_000
  in
  List.iter
    (fun cl ->
      Fmt.pr "  PIB climb %2d (after %5d samples): cost %.3f@." cl.Core.Pib.step
        cl.Core.Pib.samples
        (fst (Cost.exact_dfs cl.Core.Pib.to_strategy model)))
    climbs;
  Fmt.pr "  PIB final: %.3f (gap %.3f, %d climbs)@."
    (fst (Cost.exact_dfs (Core.Pib.current pib) model))
    (fst (Cost.exact_dfs (Core.Pib.current pib) model) -. c_opt)
    (List.length climbs);
  let epsilon = 0.05 *. Costs.total g in
  let palo =
    Core.Palo.create ~config:{ Core.Palo.default_config with epsilon } start
  in
  match
    Core.Palo.run palo (Core.Oracle.of_model model (Stats.Rng.split rng))
      ~max_contexts:300_000
  with
  | Core.Palo.Stopped { total_samples; _ } ->
    Fmt.pr "  PALO stopped after %d samples at cost %.3f (gap %.3f, eps %.3f)@."
      total_samples
      (fst (Cost.exact_dfs (Core.Palo.current palo) model))
      (fst (Cost.exact_dfs (Core.Palo.current palo) model) -. c_opt)
      epsilon
  | Core.Palo.Running -> Fmt.pr "  PALO still running@."

let () =
  let rng = Stats.Rng.create 2024L in
  let params =
    {
      Workload.Synth.default_params with
      depth = 4;
      branch_min = 2;
      branch_max = 3;
      leaf_prob = 0.45;
    }
  in
  (* resample until the tree is interesting (>= 25 arcs) *)
  let rec shape () =
    let g = Workload.Synth.random_graph rng params in
    if Graph.n_arcs g >= 25 then g else shape ()
  in
  let g = shape () in
  Fmt.pr "random tree: %d arcs, %d retrievals, %d DFS strategies@."
    (Graph.n_arcs g)
    (List.length (Graph.retrievals g))
    (Enumerate.count_dfs g);
  report_regime ~label:"failure-heavy (p in 0.02..0.25)" ~p_min:0.02
    ~p_max:0.25 g rng;
  report_regime ~label:"success-heavy (p in 0.5..0.95)" ~p_min:0.5 ~p_max:0.95
    g rng
