(* Note 4's extension: conjunctive rule bodies need AND/OR hypergraphs.

     dune exec examples/conjunctive.exe

   The rule [happy(X) :- rich(X), healthy(X)] is a hyper-arc: both
   subgoals must succeed. Strategies then order choices at OR nodes
   ("which rule first?") and subgoals inside each hyper-arc ("which
   conjunct first?"); the ratio optimizer sorts OR choices by
   productivity P/C and AND conjuncts fail-fast by (1-P)/C. *)

let () =
  let rulebase =
    Datalog.Rulebase.of_list
      (Datalog.Parser.parse_clauses
         "happy(X) :- rich(X), healthy(X).\n\
          happy(X) :- zen(X).\n\
          rich(X) :- founder(X), exit(X).\n\
          rich(X) :- heir(X).")
  in
  let prob atom =
    match Datalog.Symbol.to_string atom.Datalog.Atom.pred with
    | "healthy" -> 0.7
    | "zen" -> 0.05
    | "founder" -> 0.1
    | "exit" -> 0.3
    | "heir" -> 0.02
    | _ -> 0.5
  in
  let h =
    Infgraph.Hypergraph.of_rulebase ~rulebase
      ~query:(Datalog.Parser.parse_atom "happy(q)")
      ~prob ()
  in
  Fmt.pr "AND/OR tree (%d leaves):@.  %a@.@." (Infgraph.Hypergraph.n_leaves h)
    Infgraph.Hypergraph.pp h;
  let c0, p0 = Infgraph.Hypergraph.evaluate h in
  Fmt.pr "written order:   cost %.4f, success prob %.4f@." c0 p0;
  let best = Infgraph.Hypergraph.optimize h in
  let c1, p1 = Infgraph.Hypergraph.evaluate best in
  Fmt.pr "ratio-optimized: cost %.4f, success prob %.4f@." c1 p1;
  Fmt.pr "optimized tree:@.  %a@.@." Infgraph.Hypergraph.pp best;
  (* verify against brute force over all depth-first orders *)
  let brute =
    List.fold_left
      (fun acc h' -> Float.min acc (fst (Infgraph.Hypergraph.evaluate h')))
      infinity
      (Infgraph.Hypergraph.all_orders h)
  in
  Fmt.pr "brute-force optimum over %d orders: %.4f (%s)@."
    (List.length (Infgraph.Hypergraph.all_orders h))
    brute
    (if abs_float (brute -. c1) < 1e-9 then "matched" else "MISMATCH");
  (* Monte-Carlo sanity *)
  let rng = Stats.Rng.create 3L in
  let w = Stats.Welford.create () in
  for _ = 1 to 100_000 do
    Stats.Welford.add w (fst (Infgraph.Hypergraph.simulate best rng))
  done;
  Fmt.pr "simulated optimized cost: %.4f (n = %d)@." (Stats.Welford.mean w)
    (Stats.Welford.count w)
