(* Quickstart: the paper's Figure 1 in ~40 lines.

     dune exec examples/quickstart.exe

   1. Parse a Datalog rule base.
   2. Build the inference graph for the query form instructor^(b).
   3. Compute the two strategies' expected costs (2.8 / 3.7).
   4. Let PIB watch a query stream and discover the better order. *)

open Strategy

let () =
  (* 1. The knowledge base. *)
  let rulebase =
    Datalog.Rulebase.of_list
      (Datalog.Parser.parse_clauses
         "instructor(X) :- prof(X).\ninstructor(X) :- grad(X).")
  in
  let db =
    Datalog.Database.of_list
      [
        Datalog.Parser.parse_atom "prof(russ)";
        Datalog.Parser.parse_atom "grad(manolis)";
      ]
  in
  (* 2. Inference graph for instructor^(b): the constant marks the bound
        position. *)
  let result =
    Infgraph.Build.build ~rulebase
      ~query_form:(Datalog.Parser.parse_atom "instructor(someone)")
      ()
  in
  let g = result.Infgraph.Build.graph in
  Fmt.pr "%a@.@." Infgraph.Graph.pp g;
  (* 3. Expected costs under the paper's query mix: 60%% russ (a prof),
        15%% manolis (a grad), 25%% fred (neither). *)
  let theta1 = Spec.default g in
  let theta2 =
    Spec.with_order theta1 ~node:(Infgraph.Graph.root g)
      ~order:(List.rev (Infgraph.Graph.children g (Infgraph.Graph.root g)))
  in
  let model =
    Infgraph.Bernoulli_model.of_alist g [ ("D_prof", 0.6); ("D_grad", 0.15) ]
  in
  Fmt.pr "C[%a] = %.2f@." Spec.pp_dfs theta1 (fst (Cost.exact_dfs theta1 model));
  Fmt.pr "C[%a] = %.2f@.@." Spec.pp_dfs theta2 (fst (Cost.exact_dfs theta2 model));
  (* 4. Learning: users actually only ask about grads, so Θ2 is better -
        PIB figures that out from the stream alone. *)
  let mix =
    Stats.Distribution.create
      [
        ((Infgraph.Build.query_of_consts result [ "manolis" ], db), 0.7);
        ((Infgraph.Build.query_of_consts result [ "fred" ], db), 0.3);
      ]
  in
  let oracle = Core.Oracle.of_queries g mix (Stats.Rng.create 42L) in
  let pib = Core.Pib.create theta1 in
  let climbs = Core.Pib.run pib oracle ~n:2000 in
  Fmt.pr "PIB watched %d queries and climbed %d time(s); final strategy: %a@."
    (Core.Pib.samples_total pib) (List.length climbs) Spec.pp_dfs
    (Core.Pib.current pib)
