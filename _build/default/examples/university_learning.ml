(* A full learning session on the university knowledge base:

     dune exec examples/university_learning.exe

   The database is DB2 (2000 prof / 500 grad facts) but the users only ask
   about "minors" — never profs, 60% grads. We compare:
   - Smith's [Smi89] fact-count baseline (fooled by the database);
   - PIB hill-climbing (Figure 4 architecture via Monitor);
   - PALO (stops by itself at an ε-local optimum);
   - PAO's probably-approximately-optimal output. *)

open Strategy
open Infgraph

let () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let db2 = Workload.University.db2 () in
  let mix, _db = Workload.University.minors_mix ~grad_fraction:0.6 result in
  let ctx_dist =
    Stats.Distribution.map (fun (q, db) -> Context.of_db g ~query:q ~db) mix
  in
  let true_cost d = Cost.over_contexts (Spec.Dfs d) ctx_dist in

  (* Smith's baseline: probabilities from fact counts. *)
  let smith = Core.Smith.strategy g db2 in
  Fmt.pr "Smith baseline:  %a  E[cost] = %.3f@." Spec.pp_dfs smith
    (true_cost smith);

  (* PIB behind the Figure-4 monitor: the QP answers queries, PIB watches. *)
  let oracle = Core.Oracle.of_queries g mix (Stats.Rng.create 7L) in
  let pib = Core.Pib.create smith in
  let qp = Core.Monitor.create smith (Core.Monitor.of_pib pib) in
  Core.Monitor.serve qp oracle ~n:4000;
  Fmt.pr "PIB (monitored): %a  E[cost] = %.3f  (switches at queries: %s)@."
    Spec.pp_dfs
    (Core.Monitor.strategy qp)
    (true_cost (Core.Monitor.strategy qp))
    (String.concat ", "
       (List.map (fun (q, _) -> string_of_int q) (Core.Monitor.switches qp)));
  Fmt.pr "  average cost per query while learning: %.3f@."
    (Core.Monitor.total_cost qp /. float_of_int (Core.Monitor.queries qp));

  (* PALO stops on its own. *)
  let palo =
    Core.Palo.create
      ~config:{ Core.Palo.default_config with epsilon = 0.2; delta = 0.05 }
      smith
  in
  let oracle2 = Core.Oracle.of_queries g mix (Stats.Rng.create 8L) in
  (match Core.Palo.run palo oracle2 ~max_contexts:100_000 with
  | Core.Palo.Stopped { total_samples; _ } ->
    Fmt.pr "PALO:            %a  E[cost] = %.3f  (stopped after %d samples)@."
      Spec.pp_dfs (Core.Palo.current palo)
      (true_cost (Core.Palo.current palo))
      total_samples
  | Core.Palo.Running -> Fmt.pr "PALO did not converge@.");

  (* PAO from the same stream (engineering mode). *)
  let oracle3 = Core.Oracle.of_queries g mix (Stats.Rng.create 9L) in
  let report = Core.Pao.run ~scale:0.01 ~epsilon:0.5 ~delta:0.1 oracle3 in
  Fmt.pr "PAO:             %a  E[cost] = %.3f  (%d contexts)@." Spec.pp_dfs
    report.Core.Pao.strategy
    (true_cost report.Core.Pao.strategy)
    report.Core.Pao.contexts_used
