examples/university_learning.ml: Build Context Core Cost Fmt Infgraph List Spec Stats Strategy String Workload
