examples/conjunctive.mli:
