examples/synthetic_anytime.mli:
