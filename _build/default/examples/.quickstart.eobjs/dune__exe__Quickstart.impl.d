examples/quickstart.ml: Core Cost Datalog Fmt Infgraph List Spec Stats Strategy
