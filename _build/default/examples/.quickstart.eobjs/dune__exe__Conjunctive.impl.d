examples/conjunctive.ml: Datalog Float Fmt Infgraph List Stats
