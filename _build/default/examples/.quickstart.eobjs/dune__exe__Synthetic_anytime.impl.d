examples/synthetic_anytime.ml: Core Cost Costs Enumerate Fmt Graph Infgraph List Spec Stats Strategy Upsilon Workload
