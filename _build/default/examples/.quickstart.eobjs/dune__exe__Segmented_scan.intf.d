examples/segmented_scan.mli:
