examples/university_learning.mli:
