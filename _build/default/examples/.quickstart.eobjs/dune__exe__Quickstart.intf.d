examples/quickstart.mli:
