examples/segmented_scan.ml: Array Bernoulli_model Core Cost Enumerate Fmt Graph Infgraph List Spec Stats Strategy Workload
