(* Section 5.2's distributed-database application:

     dune exec examples/segmented_scan.exe

   A person table is horizontally segmented over five files. Queries are
   Zipf-distributed over people — with no relation to which file stores
   whom. The scan order is a satisficing strategy; PIB learns a good one
   from the query stream alone. *)

open Strategy
open Infgraph

let () =
  let s =
    Workload.Segmented.make ~rng:(Stats.Rng.create 5L) ~n_files:5
      ~n_people:1000 ()
  in
  let g = Workload.Segmented.graph s in
  let costs = Workload.Segmented.costs s in
  let model = Workload.Segmented.independent_model s in
  Fmt.pr "file profile:@.";
  List.iter
    (fun a ->
      Fmt.pr "  %s: scan cost %.0f, hit probability %.3f@." a.Graph.label
        costs.(a.Graph.arc_id)
        (Bernoulli_model.prob model a.Graph.arc_id))
    (Graph.arcs g);
  let dist = Workload.Segmented.context_distribution s in
  let cost spec = Cost.over_contexts spec dist in
  let physical = Spec.default g in
  Fmt.pr "physical order %a: E[probe cost] = %.1f@." Spec.pp_dfs physical
    (cost (Spec.Dfs physical));
  let pib = Core.Pib.create physical in
  let climbs =
    Core.Pib.run pib
      (Workload.Segmented.oracle s (Stats.Rng.create 6L))
      ~n:40_000
  in
  Fmt.pr "PIB climbed %d time(s) -> %a: E[probe cost] = %.1f@."
    (List.length climbs) Spec.pp_dfs (Core.Pib.current pib)
    (cost (Spec.Dfs (Core.Pib.current pib)));
  (* sanity: the exact optimum by brute force over the 5! orders *)
  let best =
    List.fold_left
      (fun (bs, bc) spec ->
        let c = cost spec in
        if c < bc then (spec, c) else (bs, bc))
      (Spec.Dfs physical, cost (Spec.Dfs physical))
      (Enumerate.all_paths g)
  in
  Fmt.pr "exact optimum %a: E[probe cost] = %.1f@." Spec.pp (fst best) (snd best)
