  $ ../bin/strategem.exe query ../examples/data/university.dl --all
  $ ../bin/strategem.exe query ../examples/data/university.dl --engine seminaive
  $ ../bin/strategem.exe optimal ../examples/data/university.dl -f 'instructor(q)' -p 'D_prof=0.6,D_grad=0.15'
  $ ../bin/strategem.exe smith ../examples/data/university.dl -f 'instructor(q)'
  $ ../bin/strategem.exe learn ../examples/data/university.dl -f 'instructor(q)' -m 'manolis=0.7,fred=0.3' -n 500 --seed 1 --save-strategy learned.strategy
  $ ../bin/strategem.exe graph ../examples/data/university.dl -f 'instructor(q)' --save u.graph | tail -n 2
  $ ../bin/strategem.exe eval u.graph -s learned.strategy -p 'D_prof=0.6,D_grad=0.15'
