test/helpers.ml: Alcotest Array Bernoulli_model Context Graph Infgraph Int64 List QCheck2 QCheck_alcotest Stats Strategy Workload
