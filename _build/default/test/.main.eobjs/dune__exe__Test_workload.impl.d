test/test_workload.ml: Alcotest Array Bernoulli_model Build Context Core Cost Datalog Exec Graph Helpers Infgraph List Printf QCheck2 Spec Stats Strategy Upsilon Workload
