test/main.ml: Alcotest Test_core Test_datalog Test_infgraph Test_stats Test_strategy Test_workload
