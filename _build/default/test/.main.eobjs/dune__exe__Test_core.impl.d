test/test_core.ml: Alcotest Array Bernoulli_model Build Context Core Cost Costs Datalog Exec Graph Helpers Infgraph List Printf QCheck2 Spec Stats Strategy Transform Upsilon Workload
