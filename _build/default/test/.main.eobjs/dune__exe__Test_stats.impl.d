test/test_stats.ml: Alcotest Array Fun Hashtbl Helpers List Option QCheck2 Stats
