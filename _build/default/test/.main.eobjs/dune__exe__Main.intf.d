test/main.mli:
