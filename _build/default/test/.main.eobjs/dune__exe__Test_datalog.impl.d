test/test_datalog.ml: Alcotest Datalog Format Helpers List Printf QCheck2 Stats
