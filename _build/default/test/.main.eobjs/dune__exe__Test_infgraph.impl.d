test/test_infgraph.ml: Alcotest Array Bernoulli_model Build Context Costs Datalog Dot Float Graph Helpers Hypergraph Infgraph List Option Printf QCheck2 Serial Stats Strategy String Workload
