open Helpers
open Infgraph
module D = Datalog

(* ---------- Graph / Builder ---------- *)

let builder_structure () =
  let ga = make_ga () in
  let g = ga.ga_graph in
  check_int "nodes" 5 (Graph.n_nodes g);
  check_int "arcs" 4 (Graph.n_arcs g);
  check_int "root children" 2 (List.length (Graph.children g (Graph.root g)));
  check_int "retrievals" 2 (List.length (Graph.retrievals g));
  check_bool "simple disjunctive" true (Graph.simple_disjunctive g);
  check_bool "retrieval blockable" true (Graph.arc g ga.dp).Graph.blockable;
  check_bool "reduction not" false (Graph.arc g ga.rp).Graph.blockable

let builder_paths () =
  let ga = make_ga () in
  let g = ga.ga_graph in
  Alcotest.(check (list int)) "path to Dg" [ ga.rg; ga.dg ] (Graph.path_to g ga.dg);
  Alcotest.(check (list int)) "above Dg" [ ga.rg ] (Graph.path_above g ga.dg);
  Alcotest.(check (list int)) "subtree Rp" [ ga.rp; ga.dp ] (Graph.subtree_arcs g ga.rp);
  check_int "leaf paths" 2 (List.length (Graph.leaf_paths g))

let builder_rejects_double_parent () =
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  ignore (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n Graph.Reduction);
  check_bool "second incoming arc" true
    (try
       ignore (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n Graph.Reduction);
       false
     with Invalid_argument _ -> true)

let builder_rejects_bad_costs () =
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  check_bool "zero cost" true
    (try
       ignore (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~cost:0.0 Graph.Reduction);
       false
     with Invalid_argument _ -> true)

let builder_rejects_dangling_goal () =
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "dead end" in
  ignore (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n Graph.Reduction);
  check_bool "goal without arcs" true
    (try
       ignore (Graph.Builder.finish b);
       false
     with Invalid_argument _ -> true)

let builder_rejects_retrieval_to_goal () =
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  check_bool "retrieval into goal node" true
    (try
       ignore (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n Graph.Retrieval);
       false
     with Invalid_argument _ -> true)

(* ---------- Costs (Note 5 values) ---------- *)

let costs_ga () =
  let ga = make_ga () in
  let g = ga.ga_graph in
  check_float "total" 4.0 (Costs.total g);
  check_float "f*(Rp)" 2.0 (Costs.f_star g ga.rp);
  check_float "f*(Dp)" 1.0 (Costs.f_star g ga.dp);
  (* Note 5: F¬[Dg] = f(Rp) + f(Dp) = 2, F¬[Dp] = f(Rg) + f(Dg) = 2. *)
  check_float "F¬(Dg)" 2.0 (Costs.f_not g ga.dg);
  check_float "F¬(Dp)" 2.0 (Costs.f_not g ga.dp);
  check_float "Λ swap" 4.0 (Costs.lambda_swap g ga.rp ga.rg)

let costs_ga_weighted () =
  let cost = function `Rp -> 2.0 | `Rg -> 3.0 | `Dp -> 5.0 | `Dg -> 7.0 in
  let ga = make_ga ~cost () in
  let g = ga.ga_graph in
  check_float "total" 17.0 (Costs.total g);
  check_float "f*(Rp)" 7.0 (Costs.f_star g ga.rp);
  check_float "f*(Rg)" 10.0 (Costs.f_star g ga.rg);
  check_float "F¬(Dp)" 10.0 (Costs.f_not g ga.dp);
  check_float "F¬(Rg)" 7.0 (Costs.f_not g ga.rg)

let costs_gb () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  check_float "total" 10.0 (Costs.total g);
  (* Λ[Θ_ABCD, Θ_ABDC] = f*(R_tc) + f*(R_td) = 2 + 2 = 4;
     Λ[Θ_ABCD, Θ_ACDB] = f*(R_sb) + f*(R_st) = 2 + 5 = 7 (Section 3.2). *)
  let f_star label = Costs.f_star g (Graph.arc_by_label g label).Graph.arc_id in
  check_float "f*(R_tc)" 2.0 (f_star "R_t_c");
  check_float "f*(R_td)" 2.0 (f_star "R_t_d");
  check_float "f*(R_sb)" 2.0 (f_star "R_s_b");
  check_float "f*(R_st)" 5.0 (f_star "R_s_t");
  let f_not label = Costs.f_not g (Graph.arc_by_label g label).Graph.arc_id in
  (* F¬[R_st]: everything outside {R_gs, R_st} ∪ subtree(R_st) = {R_ga, D_a, R_sb, D_b} = 4. *)
  check_float "F¬(R_st)" 4.0 (f_not "R_s_t")

let costs_cache_across_graphs () =
  (* The one-slot per-graph memo must stay correct when callers alternate
     between graphs. *)
  let ga = make_ga () in
  let gb = (Workload.Gb.build ()).Build.graph in
  for _ = 1 to 5 do
    check_float "G_A f*(Rp)" 2.0 (Costs.f_star ga.ga_graph ga.rp);
    check_float "G_B f*(R_st)" 5.0
      (Costs.f_star gb (Graph.arc_by_label gb "R_s_t").Graph.arc_id)
  done;
  (* returned arrays are copies: mutating one must not poison the cache *)
  let arr = Costs.f_star_all ga.ga_graph in
  arr.(ga.rp) <- 999.0;
  check_float "cache unharmed" 2.0 (Costs.f_star ga.ga_graph ga.rp)

let costs_fnot_partition =
  qcheck "path + subtree + F¬ partitions total" ~count:100 gen_small_instance
    (fun (g, _model) ->
      List.for_all
        (fun a ->
          let id = a.Graph.arc_id in
          let above =
            List.fold_left (fun acc x -> acc +. Costs.f g x) 0. (Graph.path_above g id)
          in
          abs_float (above +. Costs.f_star g id +. Costs.f_not g id -. Costs.total g)
          < 1e-9)
        (Graph.arcs g))

(* ---------- Context ---------- *)

let context_completion () =
  let ga = make_ga () in
  let g = ga.ga_graph in
  let partial = Context.Partial.unknown g in
  Context.Partial.observe partial ~arc_id:ga.dp ~unblocked:true;
  let pess = Context.Partial.pessimistic partial in
  let opt = Context.Partial.optimistic partial in
  check_bool "observed kept (pess)" true (Context.unblocked pess ga.dp);
  check_bool "unknown blocked (pess)" true (Context.blocked pess ga.dg);
  check_bool "unknown unblocked (opt)" true (Context.unblocked opt ga.dg);
  check_bool "reductions never blocked" true (Context.unblocked pess ga.rp);
  check_bool "consistency" true
    (Context.Partial.consistent partial (ga_context ga ~dp:true ~dg:false));
  check_bool "inconsistency" false
    (Context.Partial.consistent partial (ga_context ga ~dp:false ~dg:false))

let context_conflicting_observation () =
  let ga = make_ga () in
  let partial = Context.Partial.unknown ga.ga_graph in
  Context.Partial.observe partial ~arc_id:ga.dp ~unblocked:true;
  check_bool "conflict raises" true
    (try
       Context.Partial.observe partial ~arc_id:ga.dp ~unblocked:false;
       false
     with Invalid_argument _ -> true)

let context_of_db () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let db = Workload.University.db1 () in
  let ctx_manolis =
    Context.of_db g ~query:(Build.query_of_consts result [ "manolis" ]) ~db
  in
  let dp = (Graph.arc_by_label g "D_prof").Graph.arc_id in
  let dg = (Graph.arc_by_label g "D_grad").Graph.arc_id in
  check_bool "prof(manolis) blocked" true (Context.blocked ctx_manolis dp);
  check_bool "grad(manolis) ok" true (Context.unblocked ctx_manolis dg);
  let ctx_russ =
    Context.of_db g ~query:(Build.query_of_consts result [ "russ" ]) ~db
  in
  check_bool "prof(russ) ok" true (Context.unblocked ctx_russ dp);
  check_bool "grad(russ) blocked" true (Context.blocked ctx_russ dg)

(* ---------- Bernoulli model ---------- *)

let model_enumerate_sums_to_one =
  qcheck "enumeration is a distribution" ~count:60 gen_small_instance
    (fun (_g, model) ->
      let total =
        List.fold_left (fun acc (_, p) -> acc +. p) 0.
          (Bernoulli_model.enumerate model)
      in
      abs_float (total -. 1.0) < 1e-9)

let model_enumerate_matches_sampling () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.6 ~pg:0.15 in
  (* P(Dp blocked & Dg unblocked) = 0.4 * 0.15 = 0.06 *)
  let target ctx = Context.blocked ctx ga.dp && Context.unblocked ctx ga.dg in
  let exact =
    List.fold_left
      (fun acc (ctx, p) -> if target ctx then acc +. p else acc)
      0.
      (Bernoulli_model.enumerate model)
  in
  check_close "exact" 0.06 exact;
  let r = rng 17 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if target (Bernoulli_model.sample model r) then incr hits
  done;
  check_close ~eps:0.005 "sampled" 0.06 (float_of_int !hits /. float_of_int n)

let model_rho () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  (* All reductions unblockable: rho = 1 everywhere. *)
  let model = Workload.Gb.model result ~pa:0.3 ~pb:0.3 ~pc:0.3 ~pd:0.3 in
  List.iter
    (fun a -> check_float "rho=1" 1.0 (Bernoulli_model.rho model a.Graph.arc_id))
    (Graph.arcs g)

let model_rho_experiments () =
  (* root -R(blockable, p=0.25)-> n -D-> box : rho(D) = 0.25. *)
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  let r =
    Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~blockable:true
      Graph.Reduction
  in
  let d = Graph.Builder.add_retrieval b ~src:n () in
  let g = Graph.Builder.finish b in
  let p = Array.make (Graph.n_arcs g) 1.0 in
  p.(r) <- 0.25;
  p.(d) <- 0.5;
  let model = Bernoulli_model.make g ~p in
  check_float "rho(D)" 0.25 (Bernoulli_model.rho model d);
  check_float "rho(R)" 1.0 (Bernoulli_model.rho model r);
  check_close "success below R" (0.25 *. 0.5) (Bernoulli_model.success_below model r);
  check_close "failure prob" (1.0 -. 0.125) (Bernoulli_model.failure_prob model)

let model_failure_prob_matches_enum =
  qcheck "failure_prob equals enumeration" ~count:60 gen_experiment_instance
    (fun (g, model) ->
      let spec = Strategy.Spec.Dfs (Strategy.Spec.default g) in
      let exact =
        List.fold_left
          (fun acc (ctx, p) ->
            if (Strategy.Exec.run spec ctx).Strategy.Exec.succeeded then acc
            else acc +. p)
          0.
          (Bernoulli_model.enumerate model)
      in
      abs_float (exact -. Bernoulli_model.failure_prob model) < 1e-9)

let model_validation () =
  let ga = make_ga () in
  check_bool "out of range" true
    (try
       ignore (Bernoulli_model.make ga.ga_graph ~p:(Array.make 4 1.5));
       false
     with Invalid_argument _ -> true)

(* ---------- Build ---------- *)

let build_university () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  check_int "nodes" 5 (Graph.n_nodes g);
  check_int "arcs" 4 (Graph.n_arcs g);
  check_int "params" 1 (List.length result.Build.params);
  check_bool "not truncated" false result.Build.truncated;
  check_bool "simple disjunctive" true (Graph.simple_disjunctive g)

let build_experiment_arcs () =
  (* Section 4.1's example: grad(fred) :- admitted(fred, X) gives a
     blockable reduction arc. *)
  let rb =
    D.Rulebase.of_list
      (D.Parser.parse_clauses
         "instructor(X) :- prof(X).\n\
          instructor(X) :- grad(X).\n\
          grad(X) :- enrolled(X).\n\
          grad(fred) :- admitted(fred).")
  in
  let result =
    Build.build ~rulebase:rb ~query_form:(D.Parser.parse_atom "instructor(q)") ()
  in
  let g = result.Build.graph in
  check_bool "has experiment arcs" false (Graph.simple_disjunctive g);
  let fred_arc =
    List.find
      (fun a -> a.Graph.kind = Graph.Reduction && a.Graph.blockable)
      (Graph.arcs g)
  in
  (* The blockable arc must be blocked for manolis and open for fred. *)
  let db = D.Database.of_list [ D.Parser.parse_atom "admitted(fred)" ] in
  let ctx_fred =
    Context.of_db g ~query:(Build.query_of_consts result [ "fred" ]) ~db
  in
  let ctx_other =
    Context.of_db g ~query:(Build.query_of_consts result [ "manolis" ]) ~db
  in
  check_bool "open for fred" true (Context.unblocked ctx_fred fred_arc.Graph.arc_id);
  check_bool "blocked otherwise" true (Context.blocked ctx_other fred_arc.Graph.arc_id)

let build_rejects_conjunctive () =
  let rb = D.Rulebase.of_list (D.Parser.parse_clauses "p(X) :- q(X), r(X).") in
  check_bool "Not_disjunctive" true
    (try
       ignore (Build.build ~rulebase:rb ~query_form:(D.Parser.parse_atom "p(a)") ());
       false
     with Build.Not_disjunctive _ -> true)

let build_truncates_recursion () =
  let rb = D.Rulebase.of_list (D.Parser.parse_clauses "p(X) :- p(X). p(X) :- q(X).") in
  let result =
    Build.build ~max_depth:4 ~rulebase:rb
      ~query_form:(D.Parser.parse_atom "p(a)") ()
  in
  check_bool "truncated" true result.Build.truncated;
  check_bool "still has retrievals" true
    (Graph.retrievals result.Build.graph <> [])

let build_custom_costs () =
  let rb = D.Rulebase.of_list (D.Parser.parse_clauses "p(X) :- q(X).") in
  let result =
    Build.build
      ~cost_reduction:(fun _ -> 3.0)
      ~cost_retrieval:(fun _ -> 7.0)
      ~rulebase:rb ~query_form:(D.Parser.parse_atom "p(a)") ()
  in
  check_float "total" 10.0 (Costs.total result.Build.graph)

let build_free_query_form () =
  (* Section 5.2's existential queries: instructor^(f) — "is there any
     instructor?". Retrieval patterns keep the free variable, so a
     retrieval is unblocked iff the relation is non-empty. *)
  let rb = Workload.University.rulebase () in
  let result =
    Build.build ~rulebase:rb ~query_form:(D.Parser.parse_atom "instructor(X)") ()
  in
  let g = result.Build.graph in
  check_int "no parameters" 0 (List.length result.Build.params);
  let ctx_with db =
    Context.of_db g ~query:(D.Parser.parse_atom "instructor(Y)") ~db
  in
  let dp = (Graph.arc_by_label g "D_prof").Graph.arc_id in
  let dg = (Graph.arc_by_label g "D_grad").Graph.arc_id in
  let full = ctx_with (Workload.University.db1 ()) in
  check_bool "profs exist" true (Context.unblocked full dp);
  check_bool "grads exist" true (Context.unblocked full dg);
  let empty = ctx_with (D.Database.create ()) in
  check_bool "no profs" true (Context.blocked empty dp);
  let only_grad =
    ctx_with (D.Database.of_list [ D.Parser.parse_atom "grad(zoe)" ])
  in
  check_bool "still no profs" true (Context.blocked only_grad dp);
  check_bool "grads exist now" true (Context.unblocked only_grad dg);
  (* the satisficing run answers the existential with one retrieval *)
  let outcome =
    Strategy.Exec.run (Strategy.Spec.Dfs (Strategy.Spec.default g)) full
  in
  check_bool "answered" true outcome.Strategy.Exec.succeeded;
  check_float "minimal work" 2.0 outcome.Strategy.Exec.cost

let build_mixed_edb () =
  (* A predicate defined by rules AND listed as extensional gets both a
     retrieval arc and its rule arcs. *)
  let rb =
    D.Rulebase.of_list
      (D.Parser.parse_clauses "p(X) :- q(X). q(X) :- r(X).")
  in
  let result =
    Build.build ~edb:[ "q" ] ~rulebase:rb
      ~query_form:(D.Parser.parse_atom "p(a)") ()
  in
  let g = result.Build.graph in
  (* arcs: R_p_q, then under q: R_q_r + D_q, then D_r. *)
  check_int "four arcs" 4 (Graph.n_arcs g);
  check_int "two retrievals" 2 (List.length (Graph.retrievals g));
  (* the q node has both a rule child and a retrieval child *)
  let q_node =
    List.find
      (fun n ->
        match n.Graph.goal with
        | Some a -> D.Symbol.to_string a.D.Atom.pred = "q"
        | None -> false)
      (Graph.nodes g)
  in
  check_int "q has two children" 2
    (List.length (Graph.children g q_node.Graph.node_id))

let build_rule_arcs_mapping () =
  let result = Workload.University.build () in
  check_int "two rule arcs" 2 (List.length result.Build.rule_arcs);
  List.iter
    (fun (arc_id, clause) ->
      let a = Graph.arc result.Build.graph arc_id in
      check_bool "reduction arc" true (a.Graph.kind = Graph.Reduction);
      check_bool "head is instructor" true
        (D.Symbol.to_string clause.D.Clause.head.D.Atom.pred = "instructor"))
    result.Build.rule_arcs

let build_query_of_consts () =
  let result = Workload.University.build () in
  let q = Build.query_of_consts result [ "alice" ] in
  check_string "query" "instructor(alice)" (D.Atom.to_string q);
  check_bool "arity mismatch" true
    (try
       ignore (Build.query_of_consts result [ "a"; "b" ]);
       false
     with Invalid_argument _ -> true)

(* ---------- Dot ---------- *)

let dot_output () =
  let ga = make_ga () in
  let s = Dot.to_string ~name:"GA" ga.ga_graph in
  check_bool "digraph" true
    (String.length s > 0 && String.sub s 0 7 = "digraph");
  check_bool "mentions Dp" true
    (let found = ref false in
     String.iteri
       (fun i _ ->
         if i + 2 <= String.length s && String.sub s i 2 = "Dp" then found := true)
       s;
     !found)

(* ---------- Serial ---------- *)

let graphs_identical g1 g2 =
  Graph.n_nodes g1 = Graph.n_nodes g2
  && Graph.n_arcs g1 = Graph.n_arcs g2
  && Graph.root g1 = Graph.root g2
  && List.for_all2
       (fun n1 n2 ->
         n1.Graph.name = n2.Graph.name
         && n1.Graph.success = n2.Graph.success
         && Option.equal D.Atom.equal n1.Graph.goal n2.Graph.goal)
       (Graph.nodes g1) (Graph.nodes g2)
  && List.for_all2
       (fun a1 a2 ->
         a1.Graph.src = a2.Graph.src
         && a1.Graph.dst = a2.Graph.dst
         && a1.Graph.kind = a2.Graph.kind
         && a1.Graph.label = a2.Graph.label
         && a1.Graph.cost = a2.Graph.cost
         && a1.Graph.blockable = a2.Graph.blockable
         && Option.equal D.Atom.equal a1.Graph.pattern a2.Graph.pattern)
       (Graph.arcs g1) (Graph.arcs g2)

let serial_graph_roundtrip_kb () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let g' = Serial.graph_of_string (Serial.graph_to_string g) in
  check_bool "identical" true (graphs_identical g g')

let serial_graph_roundtrip_random =
  qcheck "graph serialization round-trips" ~count:60 gen_experiment_instance
    (fun (g, _model) ->
      graphs_identical g (Serial.graph_of_string (Serial.graph_to_string g)))

let serial_model_roundtrip =
  qcheck "model serialization round-trips" ~count:60 gen_experiment_instance
    (fun (g, model) ->
      let model' = Serial.model_of_string g (Serial.model_to_string model) in
      Bernoulli_model.probs model = Bernoulli_model.probs model')

let serial_graph_errors () =
  let bad s =
    try
      ignore (Serial.graph_of_string s);
      false
    with Serial.Parse_error _ -> true
  in
  check_bool "garbage" true (bad "not a graph");
  check_bool "no root" true (bad "strategem-graph 1\nend\n");
  check_bool "dangling arc" true
    (bad
       "strategem-graph 1\nroot 0\nnode 0 \"r\" goal -\nnode 1 \"b\" success \
        -\narc 0 0 1 retrieval \"d\" 1.0 true -\narc 1 0 9 retrieval \"x\" \
        1.0 true -\nend\n")

let serial_strategy_roundtrip =
  qcheck "strategy serialization round-trips" ~count:60
    (QCheck2.Gen.pair gen_small_instance QCheck2.Gen.small_nat)
    (fun ((g, _), seed) ->
      let ds = Strategy.Enumerate.all_dfs g in
      let d = List.nth ds (seed mod List.length ds) in
      let d' =
        Strategy.Persist.dfs_of_string g (Strategy.Persist.dfs_to_string d)
      in
      Strategy.Spec.equal_dfs d d'
      &&
      let spec = Strategy.Spec.of_paths g (Strategy.Spec.to_paths (Strategy.Spec.Dfs d)) in
      let spec' = Strategy.Persist.of_string g (Strategy.Persist.to_string spec) in
      Strategy.Spec.equal spec spec')

(* ---------- Hypergraph (Note 4) ---------- *)

let hyper_fixture () =
  (* goal { rule1: [a & b] | rule2: [c] } with unit costs. *)
  let open Hypergraph in
  goal ~label:"top"
    [
      choice ~label:"r1"
        [
          retrieve ~label:"a" ~cost:1.0 ~prob:0.8 ();
          retrieve ~label:"b" ~cost:2.0 ~prob:0.5 ();
        ];
      choice ~label:"r2" [ retrieve ~label:"c" ~cost:4.0 ~prob:0.9 () ];
    ]

let hypergraph_evaluate () =
  let h = hyper_fixture () in
  let cost, prob = Hypergraph.evaluate h in
  (* choice r1: cost = 1 + 1 + 0.8*2 = 3.6, prob = 0.4
     then r2 if r1 failed: + 0.6 * (1 + 4) = 3.0; total 6.6
     success = 1 - 0.6*0.1 = 0.94 *)
  check_close "cost" 6.6 cost;
  check_close "prob" 0.94 prob

let hypergraph_simulation_matches () =
  let h = hyper_fixture () in
  let cost, prob = Hypergraph.evaluate h in
  let r = rng 23 in
  let n = 200_000 in
  let w = Stats.Welford.create () in
  let succ = ref 0 in
  for _ = 1 to n do
    let c, ok = Hypergraph.simulate h r in
    Stats.Welford.add w c;
    if ok then incr succ
  done;
  check_close ~eps:0.03 "simulated cost" cost (Stats.Welford.mean w);
  check_close ~eps:0.01 "simulated prob" prob
    (float_of_int !succ /. float_of_int n)

let hypergraph_optimize_beats_brute =
  qcheck "ratio ordering is DFS-optimal" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      (* random 2-level AND/OR tree *)
      let leaf () =
        Hypergraph.retrieve
          ~cost:(Stats.Rng.uniform_in r ~lo:0.5 ~hi:3.0)
          ~prob:(Stats.Rng.uniform_in r ~lo:0.1 ~hi:0.9)
          ()
      in
      let choice () =
        Hypergraph.choice
          (List.init (1 + Stats.Rng.int r 2) (fun _ -> leaf ()))
      in
      let h = Hypergraph.goal (List.init (2 + Stats.Rng.int r 2) (fun _ -> choice ())) in
      let opt_cost = fst (Hypergraph.evaluate (Hypergraph.optimize h)) in
      let best_brute =
        List.fold_left
          (fun acc h' -> Float.min acc (fst (Hypergraph.evaluate h')))
          infinity (Hypergraph.all_orders h)
      in
      abs_float (opt_cost -. best_brute) < 1e-9)

(* A hypergraph whose conjunctions are all singletons is exactly a simple
   disjunctive inference tree: its DFS cost must match the Graph/Cost
   machinery on the corresponding tree (with the hyper-arc cost playing
   the reduction arc's role). *)
let hypergraph_matches_graph =
  qcheck "singleton-AND hypergraph = simple graph costs" ~count:80
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let n = 2 + Stats.Rng.int r 3 in
      let leaves =
        List.init n (fun i ->
            ( Printf.sprintf "d%d" i,
              Stats.Rng.uniform_in r ~lo:0.5 ~hi:3.0,    (* reduction cost *)
              Stats.Rng.uniform_in r ~lo:0.5 ~hi:3.0,    (* retrieval cost *)
              Stats.Rng.uniform_in r ~lo:0.05 ~hi:0.95 ) (* probability *))
      in
      (* hypergraph: root OR, each choice = [single retrieval] *)
      let h =
        Hypergraph.goal
          (List.map
             (fun (label, rc, dc, p) ->
               Hypergraph.choice ~cost:rc
                 [ Hypergraph.retrieve ~label ~cost:dc ~prob:p () ])
             leaves)
      in
      (* equivalent tree: root -R(rc)-> node -D(dc)-> box *)
      let b = Graph.Builder.create "root" in
      let probs = ref [] in
      List.iter
        (fun (label, rc, dc, p) ->
          let mid = Graph.Builder.add_node b label in
          ignore
            (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:mid
               ~cost:rc Graph.Reduction);
          let d =
            Graph.Builder.add_retrieval b ~src:mid ~cost:dc ~label ()
          in
          probs := (d, p) :: !probs)
        leaves;
      let g = Graph.Builder.finish b in
      let parr = Array.make (Graph.n_arcs g) 1.0 in
      List.iter (fun (d, p) -> parr.(d) <- p) !probs;
      let model = Bernoulli_model.make g ~p:parr in
      let c_graph, p_graph =
        Strategy.Cost.exact_dfs (Strategy.Spec.default g) model
      in
      let c_hyper, p_hyper = Hypergraph.evaluate h in
      abs_float (c_graph -. c_hyper) < 1e-9
      && abs_float (p_graph -. p_hyper) < 1e-9)

let hypergraph_of_rulebase () =
  let rb =
    D.Rulebase.of_list
      (D.Parser.parse_clauses
         "happy(X) :- rich(X), healthy(X).\nhappy(X) :- zen(X).")
  in
  let h =
    Hypergraph.of_rulebase ~rulebase:rb ~query:(D.Parser.parse_atom "happy(q)")
      ~prob:(fun a ->
        match D.Symbol.to_string a.D.Atom.pred with
        | "rich" -> 0.1
        | "healthy" -> 0.7
        | _ -> 0.5)
      ()
  in
  check_int "three leaves" 3 (Hypergraph.n_leaves h);
  let _, prob = Hypergraph.evaluate h in
  (* 1 - (1 - 0.07)(1 - 0.5) = 0.535 *)
  check_close "success prob" 0.535 prob

let suite =
  [
    ( "infgraph.graph",
      [
        case "builder structure" builder_structure;
        case "paths" builder_paths;
        case "rejects double parent" builder_rejects_double_parent;
        case "rejects bad costs" builder_rejects_bad_costs;
        case "rejects dangling goal" builder_rejects_dangling_goal;
        case "rejects retrieval to goal" builder_rejects_retrieval_to_goal;
      ] );
    ( "infgraph.costs",
      [
        case "G_A unit costs" costs_ga;
        case "G_A weighted" costs_ga_weighted;
        case "G_B values" costs_gb;
        case "cache across graphs" costs_cache_across_graphs;
        costs_fnot_partition;
      ] );
    ( "infgraph.context",
      [
        case "partial completion" context_completion;
        case "conflicting observation" context_conflicting_observation;
        case "of_db" context_of_db;
      ] );
    ( "infgraph.model",
      [
        model_enumerate_sums_to_one;
        case "enumerate matches sampling" model_enumerate_matches_sampling;
        case "rho trivial" model_rho;
        case "rho with experiments" model_rho_experiments;
        model_failure_prob_matches_enum;
        case "validation" model_validation;
      ] );
    ( "infgraph.build",
      [
        case "university" build_university;
        case "experiment arcs" build_experiment_arcs;
        case "rejects conjunctive" build_rejects_conjunctive;
        case "truncates recursion" build_truncates_recursion;
        case "custom costs" build_custom_costs;
        case "free (existential) query form" build_free_query_form;
        case "mixed edb/idb predicate" build_mixed_edb;
        case "rule arc mapping" build_rule_arcs_mapping;
        case "query_of_consts" build_query_of_consts;
      ] );
    ("infgraph.dot", [ case "output" dot_output ]);
    ( "infgraph.serial",
      [
        case "kb graph roundtrip" serial_graph_roundtrip_kb;
        serial_graph_roundtrip_random;
        serial_model_roundtrip;
        case "parse errors" serial_graph_errors;
        serial_strategy_roundtrip;
      ] );
    ( "infgraph.hypergraph",
      [
        case "evaluate" hypergraph_evaluate;
        slow_case "simulation matches" hypergraph_simulation_matches;
        hypergraph_optimize_beats_brute;
        hypergraph_matches_graph;
        case "of_rulebase" hypergraph_of_rulebase;
      ] );
  ]
