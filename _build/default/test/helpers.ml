(* Shared fixtures and small utilities for the test suite. *)

open Infgraph

let check_float = Alcotest.(check (float 1e-9))
let check_close ?(eps = 1e-6) msg a b = Alcotest.(check (float eps)) msg a b
let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)
let check_string = Alcotest.(check string)

let case name f = Alcotest.test_case name `Quick f
let slow_case name f = Alcotest.test_case name `Slow f

let qcheck ?(count = 200) name gen prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~count ~name gen prop)

(* Figure 1's G_A built directly (arc ids: Rp=0, Rg=1, Dp=2, Dg=3). *)
type ga = {
  ga_graph : Graph.t;
  rp : int;
  rg : int;
  dp : int;
  dg : int;
}

let make_ga ?(cost = fun _ -> 1.0) () =
  let b = Graph.Builder.create "instructor(K)" in
  let prof = Graph.Builder.add_node b "prof(K)" in
  let grad = Graph.Builder.add_node b "grad(K)" in
  let rp =
    Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:prof
      ~cost:(cost `Rp) ~label:"Rp" Graph.Reduction
  in
  let rg =
    Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:grad
      ~cost:(cost `Rg) ~label:"Rg" Graph.Reduction
  in
  let dp = Graph.Builder.add_retrieval b ~src:prof ~cost:(cost `Dp) ~label:"Dp" () in
  let dg = Graph.Builder.add_retrieval b ~src:grad ~cost:(cost `Dg) ~label:"Dg" () in
  { ga_graph = Graph.Builder.finish b; rp; rg; dp; dg }

(* A context for G_A given which retrievals succeed. *)
let ga_context ga ~dp ~dg =
  let unblocked = Array.make (Graph.n_arcs ga.ga_graph) true in
  unblocked.(ga.dp) <- dp;
  unblocked.(ga.dg) <- dg;
  Context.make ga.ga_graph ~unblocked

let ga_model ga ~pp ~pg =
  let p = Array.make (Graph.n_arcs ga.ga_graph) 1.0 in
  p.(ga.dp) <- pp;
  p.(ga.dg) <- pg;
  Bernoulli_model.make ga.ga_graph ~p

(* Θ1 = ⟨Rp Dp Rg Dg⟩ (default), Θ2 = swapped. *)
let ga_theta1 ga = Strategy.Spec.default ga.ga_graph
let ga_theta2 ga =
  Strategy.Spec.with_order (ga_theta1 ga)
    ~node:(Graph.root ga.ga_graph)
    ~order:[ ga.rg; ga.rp ]

(* QCheck generator for a random small synthetic instance. *)
let gen_small_instance =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Stats.Rng.create (Int64.of_int seed) in
      Workload.Synth.small_instance ~max_leaves:5 rng)
    QCheck2.Gen.int

(* Random instance that may contain blockable reductions. *)
let gen_experiment_instance =
  QCheck2.Gen.map
    (fun seed ->
      let rng = Stats.Rng.create (Int64.of_int seed) in
      let params =
        { Workload.Synth.default_params with
          depth = 3;
          branch_max = 2;
          experiment_prob = 0.5;
        }
      in
      let rec pick () =
        let g, m = Workload.Synth.random_instance rng params in
        if List.length (Graph.retrievals g) <= 5 then (g, m) else pick ()
      in
      pick ())
    QCheck2.Gen.int

(* Deterministic RNG per test. *)
let rng seed = Stats.Rng.create (Int64.of_int seed)

let dfs_strategies g = Strategy.Enumerate.all_dfs g

(* Random context from a model with a locally created rng. *)
let any_context model seed = Bernoulli_model.sample model (rng seed)
