open Helpers
open Infgraph
open Strategy

(* ---------- Spec ---------- *)

let spec_default_sequence () =
  let ga = make_ga () in
  let t1 = ga_theta1 ga in
  Alcotest.(check (list int))
    "Θ1 = ⟨Rp Dp Rg Dg⟩"
    [ ga.rp; ga.dp; ga.rg; ga.dg ]
    (Spec.arc_sequence (Spec.Dfs t1));
  let t2 = ga_theta2 ga in
  Alcotest.(check (list int))
    "Θ2 = ⟨Rg Dg Rp Dp⟩"
    [ ga.rg; ga.dg; ga.rp; ga.dp ]
    (Spec.arc_sequence (Spec.Dfs t2))

let spec_eq4_sequence () =
  (* Equation 4: Θ_ABCD = ⟨R_ga D_a R_gs R_sb D_b R_st R_tc D_c R_td D_d⟩. *)
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  let labels spec =
    List.map (fun id -> (Graph.arc g id).Graph.label) (Spec.arc_sequence spec)
  in
  Alcotest.(check (list string))
    "Θ_ABCD"
    [ "R_g_a"; "D_a"; "R_g_s"; "R_s_b"; "D_b"; "R_s_t"; "R_t_c"; "D_c"; "R_t_d"; "D_d" ]
    (labels (Spec.Dfs (Workload.Gb.theta_abcd result)));
  Alcotest.(check (list string))
    "Θ_ABDC"
    [ "R_g_a"; "D_a"; "R_g_s"; "R_s_b"; "D_b"; "R_s_t"; "R_t_d"; "D_d"; "R_t_c"; "D_c" ]
    (labels (Spec.Dfs (Workload.Gb.theta_abdc result)));
  Alcotest.(check (list string))
    "Θ_ACDB"
    [ "R_g_a"; "D_a"; "R_g_s"; "R_s_t"; "R_t_c"; "D_c"; "R_t_d"; "D_d"; "R_s_b"; "D_b" ]
    (labels (Spec.Dfs (Workload.Gb.theta_acdb result)))

let spec_note3_paths () =
  (* Note 3: Θ_ABCD ≈ ⟨⟨R_ga D_a⟩, ⟨R_gs R_sb D_b⟩, ⟨R_gs R_st R_tc D_c⟩,
     ⟨R_gs R_st R_td D_d⟩⟩ (full root paths; the paper elides shared
     prefixes in its rendering). *)
  let result = Workload.Gb.build () in
  let paths = Spec.to_paths (Spec.Dfs (Workload.Gb.theta_abcd result)) in
  check_int "four paths" 4 (List.length paths);
  Alcotest.(check (list int)) "lengths" [ 2; 3; 4; 4 ]
    (List.map List.length paths)

let spec_validation () =
  let ga = make_ga () in
  check_bool "bad order rejected" true
    (try
       ignore
         (Spec.with_order (ga_theta1 ga) ~node:(Graph.root ga.ga_graph)
            ~order:[ ga.rp; ga.rp ]);
       false
     with Invalid_argument _ -> true);
  check_bool "bad paths rejected" true
    (try
       ignore (Spec.of_paths ga.ga_graph [ [ ga.rp; ga.dp ] ]);
       false
     with Invalid_argument _ -> true)

let spec_retrieval_order () =
  let result = Workload.Gb.build () in
  let g = result.Infgraph.Build.graph in
  let labels spec =
    List.map
      (fun id -> (Infgraph.Graph.arc g id).Infgraph.Graph.label)
      (Spec.retrieval_order spec)
  in
  Alcotest.(check (list string))
    "ABCD retrievals" [ "D_a"; "D_b"; "D_c"; "D_d" ]
    (labels (Spec.Dfs (Workload.Gb.theta_abcd result)));
  Alcotest.(check (list string))
    "ACDB retrievals" [ "D_a"; "D_c"; "D_d"; "D_b" ]
    (labels (Spec.Dfs (Workload.Gb.theta_acdb result)))

let persist_errors () =
  let ga = make_ga () in
  let bad s =
    try
      ignore (Persist.of_string ga.ga_graph s);
      false
    with Persist.Parse_error _ -> true
  in
  check_bool "garbage" true (bad "nope");
  check_bool "bad kind" true (bad "strategem-strategy 1 widget\nend\n");
  check_bool "bad node id" true
    (bad "strategem-strategy 1 dfs\norder 99 1 2\nend\n");
  check_bool "not a permutation" true
    (bad "strategem-strategy 1 dfs\norder 0 0 0\nend\n")

let spec_deviation () =
  let ga = make_ga () in
  check_bool "same" true (Spec.deviation_node (ga_theta1 ga) (ga_theta1 ga) = None);
  check_bool "differs at root" true
    (Spec.deviation_node (ga_theta1 ga) (ga_theta2 ga)
    = Some (Graph.root ga.ga_graph))

(* ---------- Exec: the Section 2 per-context costs ---------- *)

let exec_section2_costs () =
  let ga = make_ga () in
  let i1 = ga_context ga ~dp:false ~dg:true in
  let i2 = ga_context ga ~dp:true ~dg:false in
  let c spec ctx = (Exec.run spec ctx).Exec.cost in
  check_float "c(Θ1,I1)=4" 4.0 (c (Spec.Dfs (ga_theta1 ga)) i1);
  check_float "c(Θ2,I1)=2" 2.0 (c (Spec.Dfs (ga_theta2 ga)) i1);
  check_float "c(Θ1,I2)=2" 2.0 (c (Spec.Dfs (ga_theta1 ga)) i2);
  check_float "c(Θ2,I2)=4" 4.0 (c (Spec.Dfs (ga_theta2 ga)) i2)

let exec_failure_explores_all () =
  let ga = make_ga () in
  let ctx = ga_context ga ~dp:false ~dg:false in
  let outcome = Exec.run (Spec.Dfs (ga_theta1 ga)) ctx in
  check_float "full cost" 4.0 outcome.Exec.cost;
  check_bool "failed" false outcome.Exec.succeeded;
  check_bool "no success arc" true (outcome.Exec.success_arc = None);
  check_int "4 arcs attempted" 4 (List.length outcome.Exec.attempted);
  check_int "2 observations" 2 (List.length outcome.Exec.observations)

let exec_success_stops () =
  let ga = make_ga () in
  let ctx = ga_context ga ~dp:true ~dg:true in
  let outcome = Exec.run (Spec.Dfs (ga_theta1 ga)) ctx in
  check_float "stops after Dp" 2.0 outcome.Exec.cost;
  check_bool "success arc" true (outcome.Exec.success_arc = Some ga.dp)

let exec_shared_prefix_paid_once () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  let all_blocked = Context.all_blocked g in
  let outcome = Exec.run (Spec.Dfs (Workload.Gb.theta_abcd result)) all_blocked in
  (* Every arc paid exactly once: total cost 10. *)
  check_float "total graph cost" 10.0 outcome.Exec.cost;
  check_int "10 arcs" 10 (List.length outcome.Exec.attempted)

let exec_blocked_internal_skips_subtree () =
  (* Experiment graph: blockable reduction blocks its whole subtree. *)
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  let ra =
    Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~blockable:true
      ~label:"RA" Graph.Reduction
  in
  let da = Graph.Builder.add_retrieval b ~src:n ~label:"DA" () in
  let db_arc =
    Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~label:"DB" ()
  in
  let g = Graph.Builder.finish b in
  let unblocked = Array.make (Graph.n_arcs g) true in
  unblocked.(ra) <- false;
  let ctx = Context.make g ~unblocked in
  let outcome = Exec.run (Spec.Dfs (Spec.default g)) ctx in
  (* Pays RA (blocked), skips DA, pays DB and succeeds. *)
  check_float "cost" 2.0 outcome.Exec.cost;
  check_bool "succeeded" true outcome.Exec.succeeded;
  check_bool "DA never attempted" false (List.mem da outcome.Exec.attempted);
  check_bool "DB attempted" true (List.mem db_arc outcome.Exec.attempted)

let exec_first_k () =
  let ga = make_ga () in
  let ctx = ga_context ga ~dp:true ~dg:true in
  let o1 = Exec.first_k 1 (Spec.Dfs (ga_theta1 ga)) ctx in
  let o2 = Exec.first_k 2 (Spec.Dfs (ga_theta1 ga)) ctx in
  check_float "k=1 stops early" 2.0 o1.Exec.cost;
  check_float "k=2 searches on" 4.0 o2.Exec.cost;
  check_bool "k=2 succeeded" true o2.Exec.succeeded;
  let o3 = Exec.first_k 2 (Spec.Dfs (ga_theta1 ga)) (ga_context ga ~dp:true ~dg:false) in
  check_bool "k=2 with one answer fails" false o3.Exec.succeeded

(* Execution invariants over random instances and contexts. *)
let exec_invariants =
  qcheck "exec invariants" ~count:200
    (QCheck2.Gen.pair gen_experiment_instance QCheck2.Gen.small_nat)
    (fun ((g, model), seed) ->
      let ctx = any_context model seed in
      let d = Spec.default g in
      let o = Exec.run (Spec.Dfs d) ctx in
      (* cost = sum of attempted arc costs *)
      let paid =
        List.fold_left (fun acc id -> acc +. (Graph.arc g id).Graph.cost) 0.
          o.Exec.attempted
      in
      abs_float (paid -. o.Exec.cost) < 1e-9
      (* every observation is of a blockable arc, attempted exactly once *)
      && List.for_all
           (fun { Exec.arc_id; unblocked } ->
             (Graph.arc g arc_id).Graph.blockable
             && List.mem arc_id o.Exec.attempted
             && unblocked = Context.unblocked ctx arc_id)
           o.Exec.observations
      (* no arc attempted twice *)
      && List.length (List.sort_uniq compare o.Exec.attempted)
         = List.length o.Exec.attempted
      (* success iff a success arc is reported, and it is an unblocked
         retrieval *)
      && (match o.Exec.success_arc with
         | Some id ->
           o.Exec.succeeded
           && (Graph.arc g id).Graph.kind = Graph.Retrieval
           && Context.unblocked ctx id
         | None -> not o.Exec.succeeded)
      (* an attempted arc's ancestors were attempted and unblocked *)
      && List.for_all
           (fun id ->
             List.for_all
               (fun anc ->
                 List.mem anc o.Exec.attempted && Context.unblocked ctx anc)
               (Graph.path_above g id))
           o.Exec.attempted)

let exec_first_k_monotone =
  qcheck "first-k cost is monotone in k and in successes" ~count:150
    (QCheck2.Gen.pair gen_small_instance QCheck2.Gen.small_nat)
    (fun ((g, model), seed) ->
      let d = Spec.Dfs (Spec.default g) in
      let ctx = any_context model seed in
      let c k = (Exec.first_k k d ctx).Exec.cost in
      (* more answers required -> weakly more cost *)
      c 1 <= c 2 +. 1e-9
      && c 2 <= c 3 +. 1e-9
      &&
      (* unblocking one more retrieval never raises the cost *)
      let blocked_retrievals =
        List.filter (fun a -> Context.blocked ctx a.Graph.arc_id)
          (Graph.retrievals g)
      in
      List.for_all
        (fun a ->
          let unblocked =
            Array.init (Graph.n_arcs g) (fun id ->
                id = a.Graph.arc_id || Context.unblocked ctx id)
          in
          let ctx' = Context.make g ~unblocked in
          (Exec.first_k 2 d ctx').Exec.cost <= c 2 +. 1e-9)
        blocked_retrievals)

(* ---------- Cost ---------- *)

let cost_section2_values () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.6 ~pg:0.15 in
  (* With p_prof = 0.6: prof-first costs 2.8, grad-first 3.7 — the paper's
     two §2 values (its labels are swapped; see EXPERIMENTS.md E1). *)
  check_close "prof-first 2.8" 2.8 (fst (Cost.exact_dfs (ga_theta1 ga) model));
  check_close "grad-first 3.7" 3.7 (fst (Cost.exact_dfs (ga_theta2 ga) model))

let cost_success_prob () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.6 ~pg:0.15 in
  let _, p = Cost.exact_dfs (ga_theta1 ga) model in
  check_close "success prob" (1.0 -. (0.4 *. 0.85)) p

let cost_dfs_matches_enum =
  qcheck "exact_dfs = exact_enum" ~count:80 gen_experiment_instance
    (fun (g, model) ->
      List.for_all
        (fun d ->
          let a = fst (Cost.exact_dfs d model) in
          let b = Cost.exact_enum (Spec.Dfs d) model in
          abs_float (a -. b) < 1e-9)
        (List.filteri (fun i _ -> i < 4) (dfs_strategies g)))

let cost_monte_carlo_converges () =
  let ga = make_ga () in
  let model = ga_model ga ~pp:0.6 ~pg:0.15 in
  let w = Cost.monte_carlo (Spec.Dfs (ga_theta1 ga)) model (rng 31) ~n:200_000 in
  check_close ~eps:0.02 "MC mean" 2.8 (Stats.Welford.mean w)

let cost_over_contexts () =
  let ga = make_ga () in
  (* 60% I2 (russ: dp), 15% I1 (manolis: dg), 25% fred (neither). *)
  let dist =
    Stats.Distribution.create
      [
        (ga_context ga ~dp:true ~dg:false, 0.60);
        (ga_context ga ~dp:false ~dg:true, 0.15);
        (ga_context ga ~dp:false ~dg:false, 0.25);
      ]
  in
  check_close "Θ1 over contexts" 2.8 (Cost.over_contexts (Spec.Dfs (ga_theta1 ga)) dist);
  check_close "Θ2 over contexts" 3.7 (Cost.over_contexts (Spec.Dfs (ga_theta2 ga)) dist)

(* ---------- Transform ---------- *)

let transform_apply () =
  let ga = make_ga () in
  let t = { Transform.node = Graph.root ga.ga_graph; pos_i = 0; pos_j = 1 } in
  let swapped = Transform.apply (ga_theta1 ga) t in
  check_bool "is Θ2" true (Spec.equal_dfs swapped (ga_theta2 ga));
  check_bool "involutive" true
    (Spec.equal_dfs (Transform.apply swapped t) (ga_theta1 ga))

let transform_neighbors_count () =
  let result = Workload.Gb.build () in
  let d = Workload.Gb.theta_abcd result in
  (* Three binary nodes: 3 swaps. *)
  check_int "all pairs" 3 (List.length (Transform.all d));
  check_int "adjacent" 3 (List.length (Transform.all ~adjacent_only:true d))

let transform_lambda () =
  let result = Workload.Gb.build () in
  let d = Workload.Gb.theta_abcd result in
  let g = result.Build.graph in
  (* Λ[Θ_ABCD, Θ_ABDC] = f*(R_tc)+f*(R_td) = 4; Λ[Θ_ABCD, Θ_ACDB] = 7. *)
  let lambda_for label1 =
    let tr =
      List.find
        (fun tr ->
          let r1, _ = Transform.arcs d tr in
          (Graph.arc g r1).Graph.label = label1)
        (Transform.all d)
    in
    Transform.lambda d tr
  in
  check_float "Λ at T" 4.0 (lambda_for "R_t_c");
  check_float "Λ at S" 7.0 (lambda_for "R_s_b")

let transform_lambda_nonadjacent () =
  (* Regression: with an expensive intermediate sibling, |Δ| exceeds
     f*(r1)+f*(r2); Λ must cover the whole swapped segment. *)
  let b = Graph.Builder.create "r" in
  let r1 = Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~cost:1.0 ~label:"r1" () in
  let m = Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~cost:100.0 ~label:"m" () in
  let r2 = Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~cost:1.0 ~label:"r2" () in
  let g = Graph.Builder.finish b in
  let d = Spec.default g in
  let tr = { Transform.node = Graph.root g; pos_i = 0; pos_j = 2 } in
  let d' = Transform.apply d tr in
  (* context: only r1 succeeds *)
  let unblocked = Array.make (Graph.n_arcs g) false in
  unblocked.(r1) <- true;
  ignore m;
  ignore r2;
  let ctx = Context.make g ~unblocked in
  let delta = Core.Delta.exact (Spec.Dfs d) (Spec.Dfs d') ctx in
  check_float "delta = -101" (-101.0) delta;
  check_float "lambda covers it" 102.0 (Transform.lambda d tr);
  check_bool "bounded" true (abs_float delta <= Transform.lambda d tr)

let transform_lambda_bounds_delta =
  qcheck "|Δ| ≤ Λ over random contexts" ~count:100
    (QCheck2.Gen.pair gen_experiment_instance QCheck2.Gen.small_nat)
    (fun ((g, model), seed) ->
      let d = Spec.default g in
      List.for_all
        (fun (tr, d') ->
          let lambda = Transform.lambda d tr in
          let ctx = any_context model seed in
          let delta = Core.Delta.exact (Spec.Dfs d) (Spec.Dfs d') ctx in
          abs_float delta <= lambda +. 1e-9)
        (Transform.neighbors d))

(* ---------- Moves ---------- *)

let four_leaf_root () =
  let b = Graph.Builder.create "r" in
  for i = 0 to 3 do
    ignore
      (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b)
         ~cost:(float_of_int (i + 1))
         ~label:(Printf.sprintf "d%d" i) ())
  done;
  Graph.Builder.finish b

let moves_promote () =
  let g = four_leaf_root () in
  let d = Spec.default g in
  let d' = Moves.apply d (Moves.Promote { node = Graph.root g; pos = 2 }) in
  Alcotest.(check (list int)) "2 to front" [ 2; 0; 1; 3 ]
    (Spec.arc_sequence (Spec.Dfs d'));
  (* promote lambda covers positions 0..pos: f* sums 1+2+3 = 6 *)
  check_float "promote lambda" 6.0
    (Moves.lambda d (Moves.Promote { node = Graph.root g; pos = 2 }))

let moves_family_counts () =
  let g = four_leaf_root () in
  let d = Spec.default g in
  check_int "adjacent" 3 (List.length (Moves.neighbors Moves.Adjacent_swaps d));
  check_int "all swaps" 6 (List.length (Moves.neighbors Moves.All_swaps d));
  (* promotions: 3 adjacent swaps + promote pos 2,3 *)
  check_int "promotions" 5 (List.length (Moves.neighbors Moves.Promotions d));
  check_int "union" 8
    (List.length (Moves.neighbors Moves.Swaps_and_promotions d))

let moves_neighbors_distinct =
  qcheck "family neighborhoods contain no duplicate strategies" ~count:40
    gen_small_instance
    (fun (g, _) ->
      let d = Spec.default g in
      List.for_all
        (fun family ->
          let seqs =
            List.map
              (fun (_, d') -> Spec.arc_sequence (Spec.Dfs d'))
              (Moves.neighbors family d)
          in
          List.length (List.sort_uniq compare seqs) = List.length seqs)
        [ Moves.Adjacent_swaps; Moves.All_swaps; Moves.Promotions;
          Moves.Swaps_and_promotions ])

let moves_promotions_connected () =
  (* Closure of the Promotions family on a ternary node reaches all 6
     orders. *)
  let b = Graph.Builder.create "r" in
  for _ = 0 to 2 do
    ignore (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ())
  done;
  let g = Graph.Builder.finish b in
  let seen = Hashtbl.create 8 in
  let rec explore d =
    let key = Spec.arc_sequence (Spec.Dfs d) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.add seen key ();
      List.iter (fun (_, d') -> explore d') (Moves.neighbors Moves.Promotions d)
    end
  in
  explore (Spec.default g);
  check_int "all 6 orders reachable" 6 (Hashtbl.length seen)

let moves_lambda_bounds_delta =
  qcheck "|Δ| ≤ Λ for every move family" ~count:100
    (QCheck2.Gen.pair gen_small_instance QCheck2.Gen.small_nat)
    (fun ((g, model), seed) ->
      let d = Spec.default g in
      let ctx = any_context model seed in
      List.for_all
        (fun (mv, d') ->
          abs_float (Core.Delta.exact (Spec.Dfs d) (Spec.Dfs d') ctx)
          <= Moves.lambda d mv +. 1e-9)
        (Moves.neighbors Moves.Swaps_and_promotions d))

(* ---------- Enumerate ---------- *)

let enumerate_counts () =
  let ga = make_ga () in
  check_int "2 DFS strategies" 2 (List.length (Enumerate.all_dfs ga.ga_graph));
  check_int "count matches" 2 (Enumerate.count_dfs ga.ga_graph);
  check_int "2 path orders" 2 (List.length (Enumerate.all_paths ga.ga_graph));
  let result = Workload.Gb.build () in
  check_int "G_B: 8 DFS" 8 (List.length (Enumerate.all_dfs result.Build.graph));
  check_int "G_B: 24 path orders" 24
    (List.length (Enumerate.all_paths result.Build.graph))

let enumerate_distinct =
  qcheck "enumerated strategies are distinct" ~count:40 gen_small_instance
    (fun (g, _) ->
      let seqs =
        List.map (fun d -> Spec.arc_sequence (Spec.Dfs d)) (dfs_strategies g)
      in
      List.length (List.sort_uniq compare seqs) = List.length seqs)

(* ---------- Upsilon ---------- *)

let upsilon_section4_example () =
  (* Section 4: p̂ = ⟨18/30, 10/20⟩ gives Θ1 (prof first). *)
  let ga = make_ga () in
  let model = ga_model ga ~pp:(18. /. 30.) ~pg:(10. /. 20.) in
  let opt, _ = Upsilon.aot model in
  check_bool "Θ1 optimal" true (Spec.equal_dfs opt (ga_theta1 ga));
  (* p = ⟨0.2, 0.6⟩ gives Θ2. *)
  let model2 = ga_model ga ~pp:0.2 ~pg:0.6 in
  let opt2, _ = Upsilon.aot model2 in
  check_bool "Θ2 optimal" true (Spec.equal_dfs opt2 (ga_theta2 ga))

let upsilon_aot_matches_brute =
  qcheck "aot = brute force over DFS" ~count:120 gen_experiment_instance
    (fun (_g, model) ->
      let _, c_aot = Upsilon.aot model in
      let _, c_brute = Upsilon.brute_dfs model in
      abs_float (c_aot -. c_brute) < 1e-9)

let upsilon_aot_cost_consistent =
  qcheck "aot's reported cost is its strategy's cost" ~count:80
    gen_experiment_instance
    (fun (g, model) ->
      ignore g;
      let d, c = Upsilon.aot model in
      abs_float (fst (Cost.exact_dfs d model) -. c) < 1e-9)

let upsilon_sidney_matches_brute =
  qcheck "Sidney = brute force over path orders" ~count:120 gen_small_instance
    (fun (g, model) ->
      if not (Graph.simple_disjunctive g) then true
      else begin
        let _, c_sid = Upsilon.ot_sidney model in
        let _, c_brute = Upsilon.brute_paths model in
        abs_float (c_sid -. c_brute) < 1e-7
      end)

let upsilon_sidney_beats_dfs =
  qcheck "global path optimum ≤ DFS optimum" ~count:100 gen_small_instance
    (fun (_g, model) ->
      let _, c_dfs = Upsilon.aot model in
      let _, c_sid = Upsilon.ot_sidney model in
      c_sid <= c_dfs +. 1e-9)

let upsilon_sidney_cost_consistent =
  qcheck "Sidney's reported cost equals enumeration" ~count:80
    gen_small_instance
    (fun (_g, model) ->
      let spec, c = Upsilon.ot_sidney model in
      abs_float (Cost.exact_enum spec model -. c) < 1e-9)

let upsilon_approx_valid =
  qcheck "approx produces a valid strategy" ~count:60 gen_experiment_instance
    (fun (g, model) ->
      let d = Upsilon.approx model in
      (* valid = its cost is computable and at least the optimum *)
      let c = fst (Cost.exact_dfs d model) in
      let _, c_opt = Upsilon.aot model in
      c >= c_opt -. 1e-9 && Graph.n_arcs g >= 0)

let upsilon_sidney_rejects_experiments () =
  let gen = gen_experiment_instance in
  ignore gen;
  let b = Graph.Builder.create "r" in
  let n = Graph.Builder.add_node b "n" in
  ignore
    (Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~blockable:true
       Graph.Reduction);
  ignore (Graph.Builder.add_retrieval b ~src:n ());
  let g = Graph.Builder.finish b in
  let model = Bernoulli_model.uniform g 0.5 in
  check_bool "raises" true
    (try
       ignore (Upsilon.ot_sidney model);
       false
     with Invalid_argument _ -> true)

let suite =
  [
    ( "strategy.spec",
      [
        case "default sequences" spec_default_sequence;
        case "equation 4 sequences" spec_eq4_sequence;
        case "note 3 paths" spec_note3_paths;
        case "validation" spec_validation;
        case "retrieval order" spec_retrieval_order;
        case "persist errors" persist_errors;
        case "deviation node" spec_deviation;
      ] );
    ( "strategy.exec",
      [
        case "section 2 per-context costs" exec_section2_costs;
        case "failure explores all" exec_failure_explores_all;
        case "success stops" exec_success_stops;
        case "shared prefix paid once" exec_shared_prefix_paid_once;
        case "blocked internal skips subtree" exec_blocked_internal_skips_subtree;
        case "first k" exec_first_k;
        exec_invariants;
        exec_first_k_monotone;
      ] );
    ( "strategy.cost",
      [
        case "section 2 expected costs" cost_section2_values;
        case "success probability" cost_success_prob;
        cost_dfs_matches_enum;
        slow_case "monte carlo converges" cost_monte_carlo_converges;
        case "over explicit contexts" cost_over_contexts;
      ] );
    ( "strategy.transform",
      [
        case "apply" transform_apply;
        case "neighbor count" transform_neighbors_count;
        case "lambda values" transform_lambda;
        case "lambda non-adjacent regression" transform_lambda_nonadjacent;
        transform_lambda_bounds_delta;
      ] );
    ( "strategy.moves",
      [
        case "promote" moves_promote;
        case "family counts" moves_family_counts;
        moves_neighbors_distinct;
        case "promotions connected" moves_promotions_connected;
        moves_lambda_bounds_delta;
      ] );
    ( "strategy.enumerate",
      [ case "counts" enumerate_counts; enumerate_distinct ] );
    ( "strategy.upsilon",
      [
        case "section 4 example" upsilon_section4_example;
        upsilon_aot_matches_brute;
        upsilon_aot_cost_consistent;
        upsilon_sidney_matches_brute;
        upsilon_sidney_beats_dfs;
        upsilon_sidney_cost_consistent;
        upsilon_approx_valid;
        case "sidney rejects experiments" upsilon_sidney_rejects_experiments;
      ] );
  ]
