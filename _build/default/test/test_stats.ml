open Helpers

(* ---------- Rng ---------- *)

let rng_deterministic () =
  let a = rng 1 and b = rng 1 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Stats.Rng.bits64 a) (Stats.Rng.bits64 b)
  done

let rng_split_independent () =
  let a = rng 2 in
  let b = Stats.Rng.split a in
  (* After splitting, the two streams should differ quickly. *)
  let same = ref 0 in
  for _ = 1 to 64 do
    if Stats.Rng.bits64 a = Stats.Rng.bits64 b then incr same
  done;
  check_bool "streams differ" true (!same < 4)

let rng_float_range () =
  let r = rng 3 in
  for _ = 1 to 10_000 do
    let x = Stats.Rng.float r in
    check_bool "in [0,1)" true (x >= 0.0 && x < 1.0)
  done

let rng_int_uniform () =
  let r = rng 4 in
  let counts = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Stats.Rng.int r 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      let f = float_of_int c /. float_of_int n in
      if abs_float (f -. 0.1) > 0.01 then
        Alcotest.failf "bucket %d off: %f" i f)
    counts

let rng_bernoulli_mean () =
  let r = rng 5 in
  let n = 100_000 in
  let hits = ref 0 in
  for _ = 1 to n do
    if Stats.Rng.bernoulli r 0.3 then incr hits
  done;
  check_close ~eps:0.01 "bernoulli mean" 0.3
    (float_of_int !hits /. float_of_int n)

let rng_bernoulli_extremes () =
  let r = rng 6 in
  for _ = 1 to 100 do
    check_bool "p=0 never" false (Stats.Rng.bernoulli r 0.0);
    check_bool "p=1 always" true (Stats.Rng.bernoulli r 1.0)
  done

let rng_categorical () =
  let r = rng 7 in
  let w = [| 1.0; 3.0; 0.0; 6.0 |] in
  let counts = Array.make 4 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let i = Stats.Rng.categorical r w in
    counts.(i) <- counts.(i) + 1
  done;
  check_int "zero-weight bucket empty" 0 counts.(2);
  check_close ~eps:0.01 "weight 1/10" 0.1
    (float_of_int counts.(0) /. float_of_int n);
  check_close ~eps:0.01 "weight 6/10" 0.6
    (float_of_int counts.(3) /. float_of_int n)

let rng_categorical_errors () =
  let r = rng 8 in
  Alcotest.check_raises "empty" (Invalid_argument "Rng.categorical: empty weights")
    (fun () -> ignore (Stats.Rng.categorical r [||]));
  Alcotest.check_raises "all zero"
    (Invalid_argument "Rng.categorical: all weights zero") (fun () ->
      ignore (Stats.Rng.categorical r [| 0.0; 0.0 |]))

let rng_shuffle_permutes () =
  let r = rng 9 in
  let a = Array.init 20 Fun.id in
  Stats.Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 20 Fun.id) sorted

let rng_int_bounds =
  qcheck "Rng.int within bounds"
    QCheck2.Gen.(pair small_int (int_range 1 1000))
    (fun (seed, n) ->
      let r = rng seed in
      let x = Stats.Rng.int r n in
      x >= 0 && x < n)

let rng_exponential_mean () =
  let r = rng 13 in
  let n = 100_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    sum := !sum +. Stats.Rng.exponential r ~rate:2.0
  done;
  check_close ~eps:0.01 "mean = 1/rate" 0.5 (!sum /. float_of_int n)

let rng_uniform_in_bounds =
  qcheck "uniform_in stays within bounds"
    QCheck2.Gen.(triple small_int (float_range (-10.) 10.) (float_range 0.1 10.))
    (fun (seed, lo, width) ->
      let r = rng seed in
      let x = Stats.Rng.uniform_in r ~lo ~hi:(lo +. width) in
      x >= lo && x < lo +. width)

let rng_pick_uniform () =
  let r = rng 14 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 30_000 do
    let v = Stats.Rng.pick r [ "a"; "b"; "c" ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  Hashtbl.iter
    (fun _ c ->
      check_bool "roughly uniform" true (c > 9_000 && c < 11_000))
    counts

(* ---------- Chernoff ---------- *)

let chernoff_tail_values () =
  (* exp(-2 * 50 * (0.1/1)^2) = exp(-1) *)
  check_close "tail bound" (exp (-1.0))
    (Stats.Chernoff.tail_bound ~n:50 ~beta:0.1 ~range:1.0);
  check_float "beta=0 gives 1" 1.0
    (Stats.Chernoff.tail_bound ~n:100 ~beta:0.0 ~range:1.0)

let chernoff_threshold_values () =
  (* range * sqrt(n/2 ln(1/delta)) with n=8, delta=e^-1, range=2:
     2 * sqrt(4 * 1) = 4 *)
  check_close "eq 2" 4.0
    (Stats.Chernoff.switch_threshold ~n:8 ~delta:(exp (-1.0)) ~range:2.0)

let chernoff_threshold_k () =
  (* k=1 must equal the plain threshold. *)
  check_close "k=1 reduces"
    (Stats.Chernoff.switch_threshold ~n:10 ~delta:0.05 ~range:1.5)
    (Stats.Chernoff.switch_threshold_k ~n:10 ~delta:0.05 ~k:1 ~range:1.5)

let chernoff_sequential_sums_to_delta () =
  (* sum_{i=1..N} 6/(pi^2 i^2) * delta -> delta *)
  let delta = 0.2 in
  let total = ref 0. in
  for i = 1 to 200_000 do
    total := !total +. Stats.Chernoff.sequential_delta ~delta ~test_index:i
  done;
  check_close ~eps:1e-4 "series sum" delta !total

let chernoff_eq6_vs_eq2 () =
  (* Equation 6 at test index i equals Equation 2 at delta_i' where
     ln(1/delta_i') = ln(i^2 pi^2 / 6 delta). *)
  let pi = 4.0 *. atan 1.0 in
  let delta = 0.1 and i = 7 and n = 31 and range = 2.5 in
  let direct =
    Stats.Chernoff.switch_threshold_seq ~n ~delta ~test_index:i ~range
  in
  let di = 6.0 *. delta /. (pi *. pi *. float_of_int (i * i)) in
  let via_eq2 = Stats.Chernoff.switch_threshold ~n ~delta:di ~range in
  check_close "consistent" via_eq2 direct

let chernoff_eq7_monotone =
  qcheck "Eq 7 decreasing in epsilon"
    QCheck2.Gen.(triple (int_range 1 10) (float_range 0.5 5.0) (float_range 0.01 0.4))
    (fun (n, f_not, delta) ->
      let m eps =
        Stats.Chernoff.samples_for_retrieval ~n_retrievals:n ~f_not
          ~epsilon:eps ~delta
      in
      m 1.0 >= m 2.0 && m 2.0 >= m 4.0)

let chernoff_eq7_value () =
  (* n=1, F=1, eps=1, delta=2/e^2: m = ceil(2 * 1 * ln(2/(2/e^2))) = ceil(4) = 4 *)
  check_int "eq 7" 4
    (Stats.Chernoff.samples_for_retrieval ~n_retrievals:1 ~f_not:1.0
       ~epsilon:1.0 ~delta:(2.0 /. exp 2.0))

let chernoff_eq8_leading_term () =
  (* Footnote 11: the asymptotic leading term of Eq 8 is
     2 (n F / eps)^2 ln(4n/delta); for large n the two should be close. *)
  let n = 2000 and f_not = 1.0 and epsilon = 1.0 and delta = 0.1 in
  let actual =
    float_of_int
      (Stats.Chernoff.aims_for_experiment ~n_experiments:n ~f_not ~epsilon
         ~delta)
  in
  let fn = float_of_int n in
  let leading = 2.0 *. ((fn *. f_not /. epsilon) ** 2.0) *. log (4.0 *. fn /. delta) in
  let ratio = actual /. leading in
  check_bool "within 1% of the leading term" true
    (ratio > 0.99 && ratio < 1.01)

let chernoff_eq8_zero_fnot () =
  check_int "F=0 needs no samples" 0
    (Stats.Chernoff.aims_for_experiment ~n_experiments:3 ~f_not:0.0
       ~epsilon:0.5 ~delta:0.1)

let chernoff_radius_inverse =
  qcheck "samples_for_radius inverts hoeffding_radius"
    QCheck2.Gen.(pair (float_range 0.01 0.5) (float_range 0.01 0.5))
    (fun (radius, delta) ->
      let m = Stats.Chernoff.samples_for_radius ~radius ~delta in
      Stats.Chernoff.hoeffding_radius ~m ~delta <= radius
      && (m = 1
         || Stats.Chernoff.hoeffding_radius ~m:(m - 1) ~delta > radius))

let chernoff_hoeffding_coverage () =
  (* Empirical check that the radius covers the true mean at >= 1-delta. *)
  let r = rng 11 in
  let delta = 0.1 and p = 0.35 and m = 200 in
  let radius = Stats.Chernoff.hoeffding_radius ~m ~delta in
  let trials = 2000 in
  let misses = ref 0 in
  for _ = 1 to trials do
    let hits = ref 0 in
    for _ = 1 to m do
      if Stats.Rng.bernoulli r p then incr hits
    done;
    let p_hat = float_of_int !hits /. float_of_int m in
    if abs_float (p_hat -. p) > radius then incr misses
  done;
  check_bool "miss rate below delta" true
    (float_of_int !misses /. float_of_int trials <= delta)

let chernoff_validation () =
  Alcotest.check_raises "bad delta"
    (Invalid_argument "Chernoff: delta must lie in (0,1)") (fun () ->
      ignore (Stats.Chernoff.deviation ~n:3 ~delta:1.0 ~range:1.0));
  Alcotest.check_raises "bad range"
    (Invalid_argument "Chernoff: range must be positive") (fun () ->
      ignore (Stats.Chernoff.deviation ~n:3 ~delta:0.5 ~range:0.0))

(* ---------- Counter / Estimate ---------- *)

let counter_basics () =
  let c = Stats.Counter.create () in
  check_int "attempts" 0 (Stats.Counter.attempts c);
  check_float "default freq" 0.5 (Stats.Counter.frequency c);
  Stats.Counter.record c ~success:true;
  Stats.Counter.record c ~success:false;
  Stats.Counter.record c ~success:true;
  check_int "attempts" 3 (Stats.Counter.attempts c);
  check_int "successes" 2 (Stats.Counter.successes c);
  check_int "failures" 1 (Stats.Counter.failures c);
  check_close "freq" (2.0 /. 3.0) (Stats.Counter.frequency c);
  Stats.Counter.reset c;
  check_int "reset" 0 (Stats.Counter.attempts c)

let counter_merge () =
  let a = Stats.Counter.create () and b = Stats.Counter.create () in
  Stats.Counter.record a ~success:true;
  Stats.Counter.record b ~success:false;
  Stats.Counter.record b ~success:true;
  Stats.Counter.merge_into ~dst:a ~src:b;
  check_int "merged attempts" 3 (Stats.Counter.attempts a);
  check_int "merged successes" 2 (Stats.Counter.successes a)

let estimate_basics () =
  let e = Stats.Estimate.of_counts ~successes:30 ~attempts:100 ~delta:0.05 () in
  check_close "mean" 0.3 e.Stats.Estimate.mean;
  check_bool "contains truth-ish" true (Stats.Estimate.contains e 0.3);
  check_bool "bounds clamped" true
    (Stats.Estimate.lower e >= 0.0 && Stats.Estimate.upper e <= 1.0);
  let empty = Stats.Estimate.of_counts ~successes:0 ~attempts:0 ~delta:0.05 () in
  check_float "empty default" 0.5 empty.Stats.Estimate.mean;
  check_float "empty radius" 1.0 empty.Stats.Estimate.radius

(* ---------- Welford ---------- *)

let welford_known_values () =
  let w = Stats.Welford.create () in
  List.iter (Stats.Welford.add w) [ 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 ];
  check_close "mean" 5.0 (Stats.Welford.mean w);
  check_close "variance" (32.0 /. 7.0) (Stats.Welford.variance w);
  check_float "min" 2.0 (Stats.Welford.min w);
  check_float "max" 9.0 (Stats.Welford.max w);
  check_close "sum" 40.0 (Stats.Welford.sum w)

let welford_merge =
  qcheck "merge equals concatenation"
    QCheck2.Gen.(pair (list (float_range (-100.) 100.)) (list (float_range (-100.) 100.)))
    (fun (xs, ys) ->
      let wa = Stats.Welford.create () and wb = Stats.Welford.create () in
      let wall = Stats.Welford.create () in
      List.iter (Stats.Welford.add wa) xs;
      List.iter (Stats.Welford.add wb) ys;
      List.iter (Stats.Welford.add wall) (xs @ ys);
      let merged = Stats.Welford.merge wa wb in
      Stats.Welford.count merged = Stats.Welford.count wall
      && abs_float (Stats.Welford.mean merged -. Stats.Welford.mean wall) < 1e-6
      && abs_float (Stats.Welford.variance merged -. Stats.Welford.variance wall)
         < 1e-4)

(* ---------- Distribution ---------- *)

let distribution_normalizes () =
  let d = Stats.Distribution.create [ ("a", 2.0); ("b", 6.0) ] in
  check_close "p(a)" 0.25 (Stats.Distribution.prob d 0);
  check_close "p(b)" 0.75 (Stats.Distribution.prob d 1);
  check_close "expect" 0.75
    (Stats.Distribution.expect d (fun v -> if v = "b" then 1.0 else 0.0))

let distribution_sampling_matches () =
  let d = Stats.Distribution.create [ (0, 1.0); (1, 4.0) ] in
  let r = rng 12 in
  let n = 50_000 in
  let ones = ref 0 in
  for _ = 1 to n do
    if Stats.Distribution.sample d r = 1 then incr ones
  done;
  check_close ~eps:0.01 "sampled frequency" 0.8
    (float_of_int !ones /. float_of_int n)

let distribution_errors () =
  Alcotest.check_raises "empty" (Invalid_argument "Distribution.create: empty")
    (fun () -> ignore (Stats.Distribution.create []));
  Alcotest.check_raises "zero mass"
    (Invalid_argument "Distribution.create: zero total weight") (fun () ->
      ignore (Stats.Distribution.create [ ("x", 0.0) ]))

let distribution_prob_of () =
  let d = Stats.Distribution.uniform [ 1; 2; 3; 4 ] in
  check_close "evens" 0.5 (Stats.Distribution.prob_of d (fun x -> x mod 2 = 0))

(* ---------- Sequential ---------- *)

let sequential_budget () =
  let s = Stats.Sequential.create ~delta:0.1 in
  check_int "no tests yet" 0 (Stats.Sequential.tests_used s);
  let i1 = Stats.Sequential.advance s ~count:3 in
  check_int "advanced" 3 i1;
  let i2 = Stats.Sequential.advance s ~count:2 in
  check_int "advanced again" 5 i2;
  check_bool "budget below delta" true (Stats.Sequential.spent s < 0.1)

let sequential_spent_bounded =
  qcheck "spent never exceeds delta" ~count:50
    QCheck2.Gen.(list_size (int_range 1 50) (int_range 1 10))
    (fun counts ->
      let s = Stats.Sequential.create ~delta:0.05 in
      List.iter (fun c -> ignore (Stats.Sequential.advance s ~count:c)) counts;
      Stats.Sequential.spent s <= 0.05 +. 1e-12)

let sequential_threshold_grows () =
  let s = Stats.Sequential.create ~delta:0.05 in
  ignore (Stats.Sequential.advance s ~count:1);
  let t1 = Stats.Sequential.threshold s ~n:100 ~range:1.0 in
  ignore (Stats.Sequential.advance s ~count:100);
  let t2 = Stats.Sequential.threshold s ~n:100 ~range:1.0 in
  check_bool "later tests need larger margins" true (t2 > t1)

let suite =
  [
    ( "stats.rng",
      [
        case "deterministic" rng_deterministic;
        case "split independence" rng_split_independent;
        case "float range" rng_float_range;
        case "int uniform" rng_int_uniform;
        case "bernoulli mean" rng_bernoulli_mean;
        case "bernoulli extremes" rng_bernoulli_extremes;
        case "categorical" rng_categorical;
        case "categorical errors" rng_categorical_errors;
        case "shuffle permutes" rng_shuffle_permutes;
        rng_int_bounds;
        case "exponential mean" rng_exponential_mean;
        rng_uniform_in_bounds;
        case "pick uniform" rng_pick_uniform;
      ] );
    ( "stats.chernoff",
      [
        case "tail bound values" chernoff_tail_values;
        case "eq2 threshold" chernoff_threshold_values;
        case "eq5 with k=1" chernoff_threshold_k;
        case "sequential deltas sum to delta" chernoff_sequential_sums_to_delta;
        case "eq6 consistency" chernoff_eq6_vs_eq2;
        chernoff_eq7_monotone;
        case "eq7 value" chernoff_eq7_value;
        case "eq8 leading term" chernoff_eq8_leading_term;
        case "eq8 F=0" chernoff_eq8_zero_fnot;
        chernoff_radius_inverse;
        case "hoeffding coverage" chernoff_hoeffding_coverage;
        case "argument validation" chernoff_validation;
      ] );
    ( "stats.counters",
      [
        case "counter basics" counter_basics;
        case "counter merge" counter_merge;
        case "estimate basics" estimate_basics;
      ] );
    ( "stats.welford",
      [ case "known values" welford_known_values; welford_merge ] );
    ( "stats.distribution",
      [
        case "normalizes" distribution_normalizes;
        case "sampling matches" distribution_sampling_matches;
        case "errors" distribution_errors;
        case "prob_of" distribution_prob_of;
      ] );
    ( "stats.sequential",
      [
        case "budget" sequential_budget;
        sequential_spent_bounded;
        case "threshold grows" sequential_threshold_grows;
      ] );
  ]
