open Helpers
open Infgraph
open Strategy
module D = Datalog

(* ---------- University ---------- *)

let university_worked_example () =
  let result = Workload.University.build () in
  let mix = Workload.University.query_mix_section2 result in
  let g = result.Build.graph in
  (* Expected cost over the explicit query mix must equal the independent-
     model computation: 2.8 / 3.7. *)
  let ctx_dist =
    Stats.Distribution.map
      (fun (q, db) -> Context.of_db g ~query:q ~db)
      mix
  in
  check_close "C[Θ1] over queries" 2.8
    (Cost.over_contexts (Spec.Dfs (Workload.University.theta1 result)) ctx_dist);
  check_close "C[Θ2] over queries" 3.7
    (Cost.over_contexts (Spec.Dfs (Workload.University.theta2 result)) ctx_dist)

let university_sld_agrees_with_graph () =
  (* The inference-graph execution and the real SLD engine must agree on
     answers and on the number of retrieval attempts, query by query. *)
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let db = Workload.University.db1 () in
  let rb = Workload.University.rulebase () in
  let cfg = D.Sld.config ~rulebase:rb ~db () in
  List.iter
    (fun name ->
      let q = Build.query_of_consts result [ name ] in
      let ctx = Context.of_db g ~query:q ~db in
      let outcome = Exec.run (Spec.Dfs (Workload.University.theta1 result)) ctx in
      let answer, stats = D.Sld.solve_first cfg [ D.Clause.Pos q ] in
      check_bool (name ^ ": same answer") outcome.Exec.succeeded (answer <> None);
      check_int (name ^ ": same retrieval count") stats.D.Sld.retrievals
        (List.length outcome.Exec.observations))
    [ "russ"; "manolis"; "fred" ]

let university_minors () =
  let result = Workload.University.build () in
  let mix, _db = Workload.University.minors_mix ~grad_fraction:0.6 result in
  let g = result.Build.graph in
  let ctx_dist =
    Stats.Distribution.map (fun (q, db) -> Context.of_db g ~query:q ~db) mix
  in
  let c1 = Cost.over_contexts (Spec.Dfs (Workload.University.theta1 result)) ctx_dist in
  let c2 = Cost.over_contexts (Spec.Dfs (Workload.University.theta2 result)) ctx_dist in
  check_bool "Θ2 superior under minors" true (c2 < c1)

let university_db2_counts () =
  let db = Workload.University.db2 () in
  check_int "prof count" 2001 (D.Database.count_pred db "prof");
  check_int "grad count" 501 (D.Database.count_pred db "grad")

(* ---------- Gb ---------- *)

let gb_structure () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  check_int "10 arcs" 10 (Graph.n_arcs g);
  check_int "4 retrievals" 4 (List.length (Graph.retrievals g));
  check_bool "simple disjunctive" true (Graph.simple_disjunctive g)

let gb_model_d_heavy_prefers_d () =
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  let opt, _ = Upsilon.aot model in
  let g = result.Build.graph in
  let seq = Spec.arc_sequence (Spec.Dfs opt) in
  let label i = (Graph.arc g (List.nth seq i)).Graph.label in
  (* The optimal strategy must reach D_d before any other retrieval. *)
  let first_retrieval =
    List.find
      (fun id -> (Graph.arc g id).Graph.kind = Graph.Retrieval)
      seq
  in
  ignore label;
  check_string "D_d first" "D_d" (Graph.arc g first_retrieval).Graph.label

(* ---------- Synth ---------- *)

let synth_valid_graphs =
  qcheck "random graphs are well formed" ~count:100
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let g = Workload.Synth.random_graph r Workload.Synth.default_params in
      (* every non-root node has a parent; every goal node has children *)
      List.for_all
        (fun n ->
          let id = n.Graph.node_id in
          (id = Graph.root g || Graph.parent_arc g id <> None)
          && (n.Graph.success || Graph.children g id <> []))
        (Graph.nodes g))

let synth_experiment_fraction () =
  let r = rng 71 in
  let params =
    { Workload.Synth.default_params with experiment_prob = 1.0; depth = 3 }
  in
  let g = Workload.Synth.random_graph r params in
  check_bool "all reductions blockable" true
    (List.for_all
       (fun a -> a.Graph.blockable)
       (List.filter (fun a -> a.Graph.kind = Graph.Reduction) (Graph.arcs g)))

let synth_costs_in_range =
  qcheck "costs respect bounds" ~count:50
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let p = { Workload.Synth.default_params with cost_min = 2.0; cost_max = 3.0 } in
      let g = Workload.Synth.random_graph r p in
      List.for_all
        (fun a -> a.Graph.cost >= 2.0 && a.Graph.cost <= 3.0)
        (Graph.arcs g))

(* The full-pipeline property: on random knowledge bases, the inference
   graph + strategy executor must agree with the real SLD engine on the
   answer, the number of retrieval attempts, and (unit costs) the total
   work, query by query. *)
let synth_kb_pipeline_agrees =
  qcheck "graph execution = SLD on random KBs" ~count:60
    QCheck2.Gen.(int_range 0 100_000)
    (fun seed ->
      let r = rng seed in
      let depth = 1 + Stats.Rng.int r 3 in
      let branch = 2 + Stats.Rng.int r 2 in
      let kb = Workload.Synth.random_kb r ~depth ~branch ~n_constants:6 in
      let result =
        Build.build ~rulebase:kb.Workload.Synth.rulebase
          ~query_form:
            (D.Atom.make kb.Workload.Synth.query_pred [ D.Term.const "x" ])
          ()
      in
      let g = result.Build.graph in
      let theta = Spec.default g in
      List.for_all
        (fun trial ->
          let db = Workload.Synth.sample_db kb (rng (seed + trial)) in
          let query = Workload.Synth.sample_query kb (rng (seed + trial + 7)) in
          let ctx = Context.of_db g ~query ~db in
          let outcome = Exec.run (Spec.Dfs theta) ctx in
          let cfg = D.Sld.config ~rulebase:kb.Workload.Synth.rulebase ~db () in
          let answer, stats = D.Sld.solve_first cfg [ D.Clause.Pos query ] in
          outcome.Exec.succeeded = (answer <> None)
          && List.length outcome.Exec.observations = stats.D.Sld.retrievals
          && int_of_float outcome.Exec.cost
             = stats.D.Sld.reductions + stats.D.Sld.retrievals)
        [ 0; 1; 2 ])

let synth_kb_structure () =
  let kb = Workload.Synth.random_kb (rng 80) ~depth:2 ~branch:3 ~n_constants:4 in
  check_bool "non-recursive" false
    (D.Rulebase.is_recursive kb.Workload.Synth.rulebase);
  check_int "9 leaves" 9 (List.length kb.Workload.Synth.edb_preds);
  let result =
    Build.build ~rulebase:kb.Workload.Synth.rulebase
      ~query_form:(D.Atom.make kb.Workload.Synth.query_pred [ D.Term.const "x" ])
      ()
  in
  check_bool "simple disjunctive" true
    (Graph.simple_disjunctive result.Build.graph);
  check_int "9 retrievals" 9
    (List.length (Graph.retrievals result.Build.graph))

(* Learning end-to-end on a random KB through real databases. *)
let synth_kb_learning () =
  let r = rng 81 in
  let kb = Workload.Synth.random_kb ~p_min:0.05 ~p_max:0.4 r ~depth:2 ~branch:2 ~n_constants:8 in
  let result =
    Build.build ~rulebase:kb.Workload.Synth.rulebase
      ~query_form:(D.Atom.make kb.Workload.Synth.query_pred [ D.Term.const "x" ])
      ()
  in
  let g = result.Build.graph in
  let oracle =
    Core.Oracle.of_fn g (fun () ->
        let db = Workload.Synth.sample_db kb r in
        Context.of_db g ~query:(Workload.Synth.sample_query kb r) ~db)
  in
  let pib = Core.Pib.create (Spec.default g) in
  ignore (Core.Pib.run pib oracle ~n:8000);
  (* The climbs must never hurt: evaluate on the true per-pred model. *)
  let p = Array.make (Graph.n_arcs g) 1.0 in
  List.iter
    (fun a ->
      match a.Graph.pattern with
      | Some pattern ->
        let name = D.Symbol.to_string pattern.D.Atom.pred in
        p.(a.Graph.arc_id) <-
          List.assoc name kb.Workload.Synth.edb_probs
      | None -> ())
    (Graph.retrievals g);
  let model = Bernoulli_model.make g ~p in
  check_bool "no worse than start" true
    (fst (Cost.exact_dfs (Core.Pib.current pib) model)
    <= fst (Cost.exact_dfs (Spec.default g) model) +. 1e-9)

(* ---------- Segmented ---------- *)

let segmented_fixture () =
  Workload.Segmented.make ~rng:(rng 72) ~n_files:4 ~n_people:200 ()

let segmented_structure () =
  let s = segmented_fixture () in
  let g = Workload.Segmented.graph s in
  check_int "one arc per file" 4 (Graph.n_arcs g);
  check_int "all retrievals" 4 (List.length (Graph.retrievals g));
  (* scan costs are 1 + file size; sizes sum to the population *)
  let total = Array.fold_left ( +. ) 0. (Workload.Segmented.costs s) in
  check_float "costs account for every record" (float_of_int (4 + 200)) total

let segmented_contexts_exclusive () =
  let s = segmented_fixture () in
  let g = Workload.Segmented.graph s in
  (* Each person's context unblocks exactly the file that holds them. *)
  List.iter
    (fun i ->
      let person = Printf.sprintf "person%d" i in
      let ctx = Workload.Segmented.context_for s person in
      let unblocked_files =
        List.filter (fun a -> Context.unblocked ctx a.Graph.arc_id) (Graph.arcs g)
      in
      check_int (person ^ " in one file") 1 (List.length unblocked_files);
      match Workload.Segmented.file_of s person with
      | Some f ->
        check_int "the right file" f (List.hd unblocked_files).Graph.arc_id
      | None -> Alcotest.fail "person must be assigned")
    [ 1; 50; 137 ];
  let unknown = Workload.Segmented.context_for s "stranger" in
  check_bool "unknown person blocks all" true
    (List.for_all (fun a -> Context.blocked unknown a.Graph.arc_id) (Graph.arcs g))

let segmented_learning_helps () =
  let s = segmented_fixture () in
  let dist = Workload.Segmented.context_distribution s in
  let oracle = Workload.Segmented.oracle s (rng 73) in
  let start = Spec.default (Workload.Segmented.graph s) in
  let pib = Core.Pib.create start in
  ignore (Core.Pib.run pib oracle ~n:20_000);
  let cost spec = Cost.over_contexts (Spec.Dfs spec) dist in
  check_bool "learned order no worse" true
    (cost (Core.Pib.current pib) <= cost start +. 1e-9)

(* ---------- Naf ---------- *)

let naf_fixture () =
  Workload.Naf.make ~rng:(rng 74)
    ~categories:[ ("house", 3.0, 0.3); ("car", 1.0, 0.8); ("boat", 2.0, 0.1) ]
    ~n_people:120 ~pauper_fraction:0.25 ()

let naf_graph_matches_sld () =
  let n = naf_fixture () in
  let rb = D.Rulebase.of_list (D.Parser.parse_clauses (Workload.Naf.program n)) in
  let cfg = D.Sld.config ~rulebase:rb ~db:(Workload.Naf.db n) () in
  List.iter
    (fun person ->
      let graph_says =
        (Exec.run
           (Spec.Dfs (Spec.default (Workload.Naf.graph n)))
           (Workload.Naf.context_for n person))
          .Exec.succeeded
      in
      let sld_says =
        D.Sld.provable cfg
          [ D.Clause.Pos (D.Atom.make "has_possession" [ D.Term.const person ]) ]
      in
      check_bool (person ^ " agreement") sld_says graph_says;
      (* pauper = person with no possession *)
      let pauper_sld =
        D.Sld.provable cfg
          [ D.Clause.Pos (D.Atom.make "pauper" [ D.Term.const person ]) ]
      in
      check_bool (person ^ " pauper consistency")
        (Workload.Naf.is_pauper n person)
        pauper_sld)
    (List.filteri (fun i _ -> i < 25) (Workload.Naf.people n))

let naf_learning_improves () =
  let n = naf_fixture () in
  let dist = Workload.Naf.context_distribution n in
  (* Worst static order: house (expensive, unlikely) first. That is the
     default construction order; learning should find car-first. *)
  let start = Spec.default (Workload.Naf.graph n) in
  let pib = Core.Pib.create start in
  ignore (Core.Pib.run pib (Workload.Naf.oracle n (rng 75)) ~n:30_000);
  let cost spec = Cost.over_contexts (Spec.Dfs spec) dist in
  check_bool "strictly better after learning" true
    (cost (Core.Pib.current pib) < cost start)

(* ---------- Genealogy ---------- *)

let genealogy_structure () =
  let result = Workload.Genealogy.build () in
  let g = result.Build.graph in
  check_int "8 retrievals" 8 (List.length (Graph.retrievals g));
  check_bool "simple disjunctive" true (Graph.simple_disjunctive g);
  check_bool "three levels deep" true
    (List.exists (fun p -> List.length p = 4) (Graph.leaf_paths g));
  check_bool "non-recursive" false
    (D.Rulebase.is_recursive (Workload.Genealogy.rulebase ()))

let genealogy_graph_matches_sld () =
  let result = Workload.Genealogy.build () in
  let g = result.Build.graph in
  let pop = Workload.Genealogy.populate (rng 90) ~n_people:60 in
  let db = Workload.Genealogy.db pop in
  let cfg = D.Sld.config ~rulebase:(Workload.Genealogy.rulebase ()) ~db () in
  List.iter
    (fun name ->
      let q = Build.query_of_consts result [ name ] in
      let ctx = Context.of_db g ~query:q ~db in
      let outcome = Exec.run (Spec.Dfs (Spec.default g)) ctx in
      let answer, stats = D.Sld.solve_first cfg [ D.Clause.Pos q ] in
      check_bool (name ^ " answer") outcome.Exec.succeeded (answer <> None);
      check_int (name ^ " retrievals") stats.D.Sld.retrievals
        (List.length outcome.Exec.observations))
    (List.filteri (fun i _ -> i < 20) (Workload.Genealogy.people pop))

let genealogy_learning_improves () =
  let result = Workload.Genealogy.build () in
  let pop = Workload.Genealogy.populate (rng 91) ~n_people:200 in
  let dist = Workload.Genealogy.context_distribution result pop in
  let start = Spec.default result.Build.graph in
  let cost d = Cost.over_contexts (Spec.Dfs d) dist in
  let pib = Core.Pib.create start in
  ignore
    (Core.Pib.run pib (Workload.Genealogy.oracle result pop (rng 92)) ~n:40_000);
  (* The written rule order probes the rare ancestor relations first;
     the population makes siblings/in-laws far more common. *)
  check_bool "strictly better after learning" true
    (cost (Core.Pib.current pib) < cost start);
  check_bool "at least one climb" true (Core.Pib.climbs pib <> [])

let genealogy_magic_agrees () =
  (* The genealogy rule base also exercises magic sets. *)
  let pop = Workload.Genealogy.populate (rng 93) ~n_people:40 in
  let db = Workload.Genealogy.db pop in
  let rb = Workload.Genealogy.rulebase () in
  List.iter
    (fun name ->
      let q = D.Atom.make "relative" [ D.Term.const name ] in
      let via_magic = D.Magic.answers rb db ~query:q <> [] in
      let via_sn = D.Seminaive.holds rb db q in
      check_bool (name ^ " magic = semi-naive") via_sn via_magic)
    (List.filteri (fun i _ -> i < 15) (Workload.Genealogy.people pop))

(* ---------- Firstk ---------- *)

let firstk_fixture () =
  Workload.Firstk.make
    ~sources:
      [ ("mother", 1.0, 0.9); ("father", 1.0, 0.7); ("guardian", 2.0, 0.3) ]
    ~k:2

let firstk_expected_cost () =
  let f = firstk_fixture () in
  (* Hand computation for the default order (m, f, g), k = 2:
     cost = 1 (mother) + 1 (father) + P(fewer than 2 found so far) * 2.
     after two probes: both found with 0.63 -> stop; else probe guardian. *)
  let expected = 1.0 +. 1.0 +. ((1.0 -. (0.9 *. 0.7)) *. 2.0) in
  check_close "hand computation"
    expected
    (Workload.Firstk.expected_cost f
       (Spec.Dfs (Spec.default (Workload.Firstk.graph f))))

let firstk_brute_vs_ratio () =
  let f = firstk_fixture () in
  let _, best = Workload.Firstk.brute_optimal f in
  let ratio = Workload.Firstk.expected_cost f (Workload.Firstk.ratio_strategy f) in
  check_bool "ratio heuristic within 10%" true (ratio <= best *. 1.10)

let firstk_k1_ratio_optimal () =
  let f =
    Workload.Firstk.make
      ~sources:[ ("a", 2.0, 0.5); ("b", 1.0, 0.4); ("c", 3.0, 0.9) ]
      ~k:1
  in
  let _, best = Workload.Firstk.brute_optimal f in
  let ratio = Workload.Firstk.expected_cost f (Workload.Firstk.ratio_strategy f) in
  check_close "p/c ordering optimal for k=1" best ratio

let suite =
  [
    ( "workload.university",
      [
        case "worked example" university_worked_example;
        case "SLD agrees with graph" university_sld_agrees_with_graph;
        case "minors scenario" university_minors;
        case "db2 counts" university_db2_counts;
      ] );
    ( "workload.gb",
      [
        case "structure" gb_structure;
        case "d-heavy optimum" gb_model_d_heavy_prefers_d;
      ] );
    ( "workload.synth",
      [
        synth_valid_graphs;
        case "experiment fraction" synth_experiment_fraction;
        synth_costs_in_range;
        synth_kb_pipeline_agrees;
        case "random kb structure" synth_kb_structure;
        slow_case "random kb learning" synth_kb_learning;
      ] );
    ( "workload.segmented",
      [
        case "structure" segmented_structure;
        case "contexts exclusive" segmented_contexts_exclusive;
        slow_case "learning helps" segmented_learning_helps;
      ] );
    ( "workload.naf",
      [
        case "graph matches SLD" naf_graph_matches_sld;
        slow_case "learning improves" naf_learning_improves;
      ] );
    ( "workload.genealogy",
      [
        case "structure" genealogy_structure;
        case "graph matches SLD" genealogy_graph_matches_sld;
        slow_case "learning improves" genealogy_learning_improves;
        case "magic agrees" genealogy_magic_agrees;
      ] );
    ( "workload.firstk",
      [
        case "expected cost" firstk_expected_cost;
        case "brute vs ratio" firstk_brute_vs_ratio;
        case "k=1 ratio optimal" firstk_k1_ratio_optimal;
      ] );
  ]
