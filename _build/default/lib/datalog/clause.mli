(** Definite clauses with optional negated body literals.

    [h :- b1, ..., bn.] A clause with an empty body is a fact. Negated
    literals are interpreted by negation as failure (Section 5.2 of the
    paper); safety requires every variable of the head and of each negative
    literal to occur in some positive body literal (range restriction). *)

type lit =
  | Pos of Atom.t
  | Neg of Atom.t

type t = { head : Atom.t; body : lit list }

val make : Atom.t -> lit list -> t
val fact : Atom.t -> t
val is_fact : t -> bool

val lit_atom : lit -> Atom.t
val lit_is_positive : lit -> bool

(** Positive body atoms, in order. *)
val positive_body : t -> Atom.t list

(** Negative body atoms, in order. *)
val negative_body : t -> Atom.t list

(** All variables of the clause. *)
val vars : t -> Term.Var_set.t

(** Range-restriction check; returns the offending variables if unsafe. *)
val check_safe : t -> (unit, Term.var list) result

(** [rename gen c] lifts every variable to generation [gen] (used to
    standardize apart before resolution). *)
val rename : int -> t -> t

val apply : Subst.t -> t -> t
val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_lit : Format.formatter -> lit -> unit
val to_string : t -> string
