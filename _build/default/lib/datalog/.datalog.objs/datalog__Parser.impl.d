lib/datalog/parser.ml: Atom Clause Format Lexer List Term
