lib/datalog/clause.ml: Atom Format List Subst Term
