lib/datalog/sld.mli: Atom Clause Database Rulebase Seq Subst
