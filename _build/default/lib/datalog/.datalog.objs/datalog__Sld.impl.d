lib/datalog/sld.ml: Atom Clause Database Format Hashtbl List Rulebase Seq Subst Symbol Term
