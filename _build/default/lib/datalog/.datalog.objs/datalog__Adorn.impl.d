lib/datalog/adorn.ml: Atom Clause Format List Printf Queue Rulebase String Symbol Term
