lib/datalog/subst.mli: Atom Format Term
