lib/datalog/seminaive.ml: Atom Clause Database Format List Rulebase Subst Symbol Term
