lib/datalog/magic.ml: Adorn Atom Clause Database Format List Option Rulebase Seminaive Symbol
