lib/datalog/atom.ml: Format Hashtbl List String Symbol Term
