lib/datalog/seminaive.mli: Atom Database Rulebase Symbol
