lib/datalog/symbol.ml: Format Hashtbl Int
