lib/datalog/rulebase.ml: Atom Clause Format Hashtbl List Option Subst Symbol
