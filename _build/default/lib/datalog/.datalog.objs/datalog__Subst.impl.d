lib/datalog/subst.ml: Atom Format List Symbol Term
