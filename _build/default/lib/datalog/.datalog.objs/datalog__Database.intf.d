lib/datalog/database.mli: Atom Format Subst Symbol
