lib/datalog/atom.mli: Format Symbol Term
