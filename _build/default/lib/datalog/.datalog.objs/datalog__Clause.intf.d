lib/datalog/clause.mli: Atom Format Subst Term
