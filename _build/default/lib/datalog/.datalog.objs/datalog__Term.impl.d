lib/datalog/term.ml: Format Int Map Set String Symbol
