lib/datalog/rulebase.mli: Atom Clause Format Subst Symbol Term
