lib/datalog/magic.mli: Adorn Atom Database Rulebase Symbol
