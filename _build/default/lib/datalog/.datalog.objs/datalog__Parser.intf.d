lib/datalog/parser.mli: Atom Clause Lexer
