lib/datalog/adorn.mli: Atom Clause Format Rulebase Symbol
