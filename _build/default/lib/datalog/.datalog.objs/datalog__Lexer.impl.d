lib/datalog/lexer.ml: Format List Printf String
