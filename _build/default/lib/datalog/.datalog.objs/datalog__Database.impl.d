lib/datalog/database.ml: Atom Format Hashtbl List Set Subst Symbol Term
