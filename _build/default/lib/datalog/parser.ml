type item =
  | Clause of Clause.t
  | Query of Clause.lit list

exception Parse_error of string * Lexer.position

type state = { mutable toks : (Lexer.token * Lexer.position) list }

let peek st =
  match st.toks with
  | [] -> (Lexer.Eof, { Lexer.line = 0; col = 0 })
  | t :: _ -> t

let next st =
  let t = peek st in
  (match st.toks with [] -> () | _ :: rest -> st.toks <- rest);
  t

let expect st tok =
  let got, pos = next st in
  if got <> tok then
    raise
      (Parse_error
         ( Format.asprintf "expected %a but found %a" Lexer.pp_token tok
             Lexer.pp_token got,
           pos ))

let parse_term st =
  match next st with
  | Lexer.Ident s, _ -> Term.const s
  | Lexer.Variable s, _ -> Term.var s
  | tok, pos ->
    raise
      (Parse_error
         (Format.asprintf "expected a term but found %a" Lexer.pp_token tok, pos))

let parse_atom_st st =
  match next st with
  | Lexer.Ident name, _ ->
    (match peek st with
    | Lexer.Lparen, _ ->
      expect st Lexer.Lparen;
      let rec args acc =
        let t = parse_term st in
        match peek st with
        | Lexer.Comma, _ ->
          ignore (next st);
          args (t :: acc)
        | _ ->
          expect st Lexer.Rparen;
          List.rev (t :: acc)
      in
      Atom.make name (args [])
    | _ -> Atom.make name [])
  | tok, pos ->
    raise
      (Parse_error
         ( Format.asprintf "expected a predicate but found %a" Lexer.pp_token tok,
           pos ))

let parse_lit st =
  match peek st with
  | Lexer.Not, _ ->
    ignore (next st);
    Clause.Neg (parse_atom_st st)
  | _ -> Clause.Pos (parse_atom_st st)

let parse_body st =
  let rec loop acc =
    let l = parse_lit st in
    match peek st with
    | Lexer.Comma, _ ->
      ignore (next st);
      loop (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  loop []

let parse_item st =
  match peek st with
  | Lexer.Query, _ ->
    ignore (next st);
    let body = parse_body st in
    expect st Lexer.Dot;
    Query body
  | _ ->
    let head = parse_atom_st st in
    (match peek st with
    | Lexer.Turnstile, _ ->
      ignore (next st);
      let body = parse_body st in
      expect st Lexer.Dot;
      Clause (Clause.make head body)
    | _ ->
      expect st Lexer.Dot;
      Clause (Clause.fact head))

let parse_program input =
  let st = { toks = Lexer.tokenize input } in
  let rec loop acc =
    match peek st with
    | Lexer.Eof, _ -> List.rev acc
    | _ -> loop (parse_item st :: acc)
  in
  loop []

let only_eof st =
  match peek st with
  | Lexer.Eof, _ -> ()
  | tok, pos ->
    raise
      (Parse_error
         (Format.asprintf "trailing input: %a" Lexer.pp_token tok, pos))

let parse_clause input =
  let st = { toks = Lexer.tokenize input } in
  match parse_item st with
  | Clause c ->
    only_eof st;
    c
  | Query _ ->
    raise (Parse_error ("expected a clause, found a query", { line = 1; col = 1 }))

let parse_clauses input =
  List.map
    (function
      | Clause c -> c
      | Query _ ->
        raise
          (Parse_error ("unexpected query in clause list", { line = 1; col = 1 })))
    (parse_program input)

let parse_atom input =
  let st = { toks = Lexer.tokenize input } in
  let a = parse_atom_st st in
  only_eof st;
  a

let parse_query input =
  let st = { toks = Lexer.tokenize input } in
  (match peek st with
  | Lexer.Query, _ -> ignore (next st)
  | _ -> ());
  let body = parse_body st in
  (match peek st with Lexer.Dot, _ -> ignore (next st) | _ -> ());
  only_eof st;
  body

let parse_kb input =
  let items = parse_program input in
  let rules, facts, queries =
    List.fold_left
      (fun (rules, facts, queries) item ->
        match item with
        | Clause c when Clause.is_fact c -> (rules, c.Clause.head :: facts, queries)
        | Clause c -> (c :: rules, facts, queries)
        | Query q -> (rules, facts, q :: queries))
      ([], [], []) items
  in
  (List.rev rules, List.rev facts, List.rev queries)
