(** Program adornment (Ullman [Ull89]; the paper's "query forms").

    An adornment annotates a predicate with one symbol per argument: [`B]
    (bound at call time) or [`F] (free). Given a query form — e.g.
    [instructor^(b)] — adornment propagates binding information through
    the rule bodies with sideways information passing (left-to-right SIP):
    a body literal's argument is bound if it is a constant or a variable
    already bound by the head's bound arguments or by an earlier positive
    body literal.

    The result is the {e adorned program}: one specialized rule version
    per reachable adorned predicate, the input to the magic-sets
    transformation ({!Magic}). *)

type adornment = [ `B | `F ] list

(** ["bf"]-style rendering. *)
val adornment_to_string : adornment -> string

(** Adorned predicate, e.g. [instructor] + [[`B]]. *)
type apred = { pred : Symbol.t; adornment : adornment }

val apred_equal : apred -> apred -> bool
val pp_apred : Format.formatter -> apred -> unit

(** Name mangling used in generated programs: [p_bf]. *)
val apred_symbol : apred -> Symbol.t

type program = {
  query : apred;              (** the adorned query predicate *)
  rules : (apred * Clause.t) list;
      (** each reachable adorned IDB predicate with its specialized rule;
          head/body predicates of the clause are the mangled symbols for
          IDB literals and the original symbols for EDB literals *)
  edb : Symbol.t list;        (** extensional predicates encountered *)
}

(** [adorn rulebase ~query_form] computes the adorned program for the
    query form (an atom whose constant arguments mark bound positions).
    Negative literals require all their variables bound at their position
    (safety); [Invalid_argument] otherwise. *)
val adorn : Rulebase.t -> query_form:Atom.t -> program

val pp_program : Format.formatter -> program -> unit
