type var = { name : string; gen : int }

type t =
  | Const of Symbol.t
  | Var of var

let const s = Const (Symbol.intern s)
let var name = Var { name; gen = 0 }

let is_const = function Const _ -> true | Var _ -> false
let is_var = function Var _ -> true | Const _ -> false

let equal_var a b = a.gen = b.gen && String.equal a.name b.name

let compare_var a b =
  match String.compare a.name b.name with
  | 0 -> Int.compare a.gen b.gen
  | c -> c

let equal a b =
  match (a, b) with
  | Const x, Const y -> Symbol.equal x y
  | Var x, Var y -> equal_var x y
  | Const _, Var _ | Var _, Const _ -> false

let compare a b =
  match (a, b) with
  | Const x, Const y -> Symbol.compare x y
  | Var x, Var y -> compare_var x y
  | Const _, Var _ -> -1
  | Var _, Const _ -> 1

let rename gen = function
  | Const _ as t -> t
  | Var v -> Var { v with gen }

let pp_var ppf v =
  if v.gen = 0 then Format.pp_print_string ppf v.name
  else Format.fprintf ppf "%s_%d" v.name v.gen

let pp ppf = function
  | Const s -> Symbol.pp ppf s
  | Var v -> pp_var ppf v

let to_string t = Format.asprintf "%a" pp t

module Var_ord = struct
  type t = var

  let compare = compare_var
end

module Var_map = Map.Make (Var_ord)
module Var_set = Set.Make (Var_ord)
