(** Substitutions and unification.

    A substitution maps variables to terms. Bindings are idempotent by
    construction: [bind] resolves the term fully before storing it, so
    [apply] never needs to chase chains. *)

type t

val empty : t
val is_empty : t -> bool
val size : t -> int

(** [find v s] is the binding of [v], if any. *)
val find : Term.var -> t -> Term.t option

(** Resolve a term through the substitution (single step suffices because
    bindings are kept fully resolved). *)
val walk : t -> Term.t -> Term.t

(** [bind v t s] adds the binding [v -> walk s t]. Binding a variable to
    itself returns [s] unchanged. Raises [Invalid_argument] if [v] is
    already bound to a different term. *)
val bind : Term.var -> Term.t -> t -> t

val apply : t -> Term.t -> Term.t
val apply_atom : t -> Atom.t -> Atom.t

(** [unify a b s] extends [s] to make [a] and [b] equal, if possible. *)
val unify : Term.t -> Term.t -> t -> t option

val unify_atoms : Atom.t -> Atom.t -> t -> t option

(** [match_atom ~pattern ~ground s] one-way matching: only variables of
    [pattern] may be bound. Used for database lookup where the fact is
    ground. *)
val match_atom : pattern:Atom.t -> ground:Atom.t -> t -> t option

(** [restrict vars s] keeps only the bindings of the given variables. *)
val restrict : Term.Var_set.t -> t -> t

val to_alist : t -> (Term.var * Term.t) list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
