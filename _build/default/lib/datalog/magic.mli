(** The magic-sets transformation (Bancilhon & Ramakrishnan [BR86] —
    cited in the paper's introduction as the classical line of query
    optimization this work complements).

    Magic sets makes bottom-up evaluation goal-directed: the adorned
    program ({!Adorn}) is rewritten so that each IDB predicate [p^a]
    only fires for bindings reachable from the query, which a new
    {e magic predicate} [m_p_a] (holding the bound-argument tuples that
    top-down evaluation would ask about) collects:

    - every adorned rule [h :- b1, ..., bn] gains the guard
      [m_h(bound args of h)];
    - for each positive IDB body literal [bi], a {e magic rule}
      [m_bi(bound args of bi) :- m_h(...), b1, ..., b(i-1)] propagates
      bindings sideways;
    - the query seeds [m_query(constants)].

    Restricted to programs whose negative literals are extensional (the
    general stratified-magic construction is out of scope);
    [Invalid_argument] otherwise. *)

type result = {
  program : Rulebase.t;   (** transformed rules (adorned + magic rules) *)
  seed : Atom.t;          (** the magic seed fact for the query *)
  answer_pred : Symbol.t; (** adorned predicate holding the answers *)
  adorned : Adorn.program;
}

(** [transform rulebase ~query] for a (partially) bound query atom. *)
val transform : Rulebase.t -> query:Atom.t -> result

(** [answers rulebase db ~query] — run the transformed program bottom-up
    (semi-naive) and return the query's answers as atoms of the
    {e original} predicate, sorted. Must agree with [Sld.solve_all] and
    with semi-naive evaluation of the original program. *)
val answers : Rulebase.t -> Database.t -> query:Atom.t -> Atom.t list

(** Facts derived by the transformed program (for measuring how much work
    magic saves versus evaluating the whole original program). *)
val derived_size : Rulebase.t -> Database.t -> query:Atom.t -> int
