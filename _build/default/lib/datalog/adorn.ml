type adornment = [ `B | `F ] list

let adornment_to_string a =
  String.concat "" (List.map (function `B -> "b" | `F -> "f") a)

type apred = { pred : Symbol.t; adornment : adornment }

let apred_equal a b =
  Symbol.equal a.pred b.pred && a.adornment = b.adornment

let pp_apred ppf a =
  Format.fprintf ppf "%a^%s" Symbol.pp a.pred
    (adornment_to_string a.adornment)

let apred_symbol a =
  Symbol.intern
    (Printf.sprintf "%s_%s" (Symbol.to_string a.pred)
       (adornment_to_string a.adornment))

type program = {
  query : apred;
  rules : (apred * Clause.t) list;
  edb : Symbol.t list;
}

let atom_adornment bound atom =
  List.map
    (fun t ->
      match t with
      | Term.Const _ -> `B
      | Term.Var v -> if Term.Var_set.mem v bound then `B else `F)
    atom.Atom.args

let bound_vars adornment atom =
  List.fold_left2
    (fun acc mark t ->
      match (mark, t) with
      | `B, Term.Var v -> Term.Var_set.add v acc
      | _ -> acc)
    Term.Var_set.empty adornment atom.Atom.args

let adorn rb ~query_form =
  let is_idb pred = Rulebase.rules_for rb pred <> [] in
  let query =
    {
      pred = query_form.Atom.pred;
      adornment =
        List.map
          (function Term.Const _ -> `B | Term.Var _ -> `F)
          query_form.Atom.args;
    }
  in
  if not (is_idb query.pred) then
    invalid_arg "Adorn.adorn: the query predicate has no rules";
  let processed : apred list ref = ref [] in
  let rules = ref [] in
  let edb = ref [] in
  let note_edb pred =
    if not (List.exists (Symbol.equal pred) !edb) then edb := pred :: !edb
  in
  let queue = Queue.create () in
  Queue.add query queue;
  while not (Queue.is_empty queue) do
    let ap = Queue.pop queue in
    if not (List.exists (apred_equal ap) !processed) then begin
      processed := ap :: !processed;
      List.iter
        (fun clause ->
          if List.length clause.Clause.head.Atom.args
             <> List.length ap.adornment
          then ()
          else begin
            (* Sideways information passing, left to right. *)
            let bound = ref (bound_vars ap.adornment clause.Clause.head) in
            let body' =
              List.map
                (fun lit ->
                  let atom = Clause.lit_atom lit in
                  match lit with
                  | Clause.Pos atom ->
                    let result =
                      if is_idb atom.Atom.pred then begin
                        let sub =
                          {
                            pred = atom.Atom.pred;
                            adornment = atom_adornment !bound atom;
                          }
                        in
                        Queue.add sub queue;
                        Clause.Pos
                          (Atom.make_sym (apred_symbol sub) atom.Atom.args)
                      end
                      else begin
                        note_edb atom.Atom.pred;
                        Clause.Pos atom
                      end
                    in
                    (* evaluating a positive literal binds its variables *)
                    bound := Term.Var_set.union !bound (Atom.var_set atom);
                    result
                  | Clause.Neg _ ->
                    if
                      not
                        (Term.Var_set.subset (Atom.var_set atom) !bound)
                    then
                      invalid_arg
                        (Format.asprintf
                           "Adorn.adorn: negative literal %a not bound at \
                            its position"
                           Atom.pp atom);
                    if is_idb atom.Atom.pred then begin
                      let sub =
                        {
                          pred = atom.Atom.pred;
                          adornment = atom_adornment !bound atom;
                        }
                      in
                      Queue.add sub queue;
                      Clause.Neg (Atom.make_sym (apred_symbol sub) atom.Atom.args)
                    end
                    else begin
                      note_edb atom.Atom.pred;
                      Clause.Neg atom
                    end)
                clause.Clause.body
            in
            let head' =
              Atom.make_sym (apred_symbol ap) clause.Clause.head.Atom.args
            in
            rules := (ap, Clause.make head' body') :: !rules
          end)
        (Rulebase.rules_for rb ap.pred)
    end
  done;
  { query; rules = List.rev !rules; edb = List.rev !edb }

let pp_program ppf p =
  Format.fprintf ppf "@[<v>query: %a@," pp_apred p.query;
  List.iter
    (fun (_, clause) -> Format.fprintf ppf "%a@," Clause.pp clause)
    p.rules;
  Format.fprintf ppf "edb: %s@]"
    (String.concat ", " (List.map Symbol.to_string p.edb))
