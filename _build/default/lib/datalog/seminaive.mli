(** Bottom-up semi-naive evaluation with stratified negation.

    This is the reference engine: it computes the full minimal model (per
    stratum), so its answers are ground truth against which the satisficing
    SLD engine — and therefore every strategy execution — is cross-checked
    in the test suite. *)

exception Unstratifiable of Symbol.t list

(** [model rulebase db] returns a new database containing [db]'s facts plus
    every derivable IDB fact. [db] itself is not modified.
    Raises [Unstratifiable] if negation cannot be stratified, and
    [Invalid_argument] if some rule is not range-restricted. *)
val model : Rulebase.t -> Database.t -> Database.t

(** [query rulebase db pattern] — all ground instances of [pattern] in the
    model, sorted. *)
val query : Rulebase.t -> Database.t -> Atom.t -> Atom.t list

(** [holds rulebase db atom] — is the ground atom in the model? *)
val holds : Rulebase.t -> Database.t -> Atom.t -> bool
