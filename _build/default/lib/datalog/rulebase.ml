type t = {
  by_head : (int, Clause.t list ref) Hashtbl.t;
  mutable order : Clause.t list; (* reversed insertion order *)
  mutable size : int;
}

let create () = { by_head = Hashtbl.create 32; order = []; size = 0 }

let add rb clause =
  let key = Symbol.id clause.Clause.head.Atom.pred in
  let cell =
    match Hashtbl.find_opt rb.by_head key with
    | Some r -> r
    | None ->
      let r = ref [] in
      Hashtbl.add rb.by_head key r;
      r
  in
  cell := clause :: !cell;
  rb.order <- clause :: rb.order;
  rb.size <- rb.size + 1

let of_list clauses =
  let rb = create () in
  List.iter (add rb) clauses;
  rb

let to_list rb = List.rev rb.order
let size rb = rb.size

let rules_for rb pred =
  match Hashtbl.find_opt rb.by_head (Symbol.id pred) with
  | Some r -> List.rev !r
  | None -> []

let resolving rb ~gen goal =
  List.filter_map
    (fun clause ->
      let clause = Clause.rename gen clause in
      match Subst.unify_atoms clause.Clause.head goal Subst.empty with
      | Some s -> Some (clause, s)
      | None -> None)
    (rules_for rb goal.Atom.pred)

let idb_preds rb =
  Hashtbl.fold
    (fun _ rules acc ->
      match !rules with
      | [] -> acc
      | c :: _ -> c.Clause.head.Atom.pred :: acc)
    rb.by_head []
  |> List.sort Symbol.compare

let body_preds rb =
  List.concat_map
    (fun c -> List.map (fun l -> (Clause.lit_atom l).Atom.pred) c.Clause.body)
    (to_list rb)

let edb_preds rb =
  let idb = idb_preds rb in
  let is_idb p = List.exists (Symbol.equal p) idb in
  body_preds rb
  |> List.filter (fun p -> not (is_idb p))
  |> List.sort_uniq Symbol.compare

(* Dependency edges between IDB predicates: head -> body predicate, tagged
   with the polarity of the body occurrence. *)
let edges rb =
  List.concat_map
    (fun c ->
      List.filter_map
        (fun lit ->
          let target = (Clause.lit_atom lit).Atom.pred in
          if Hashtbl.mem rb.by_head (Symbol.id target) then
            Some
              (c.Clause.head.Atom.pred, target, Clause.lit_is_positive lit)
          else None)
        c.Clause.body)
    (to_list rb)

(* Tarjan's strongly connected components over the IDB dependency graph,
   returned in reverse topological order (callees before callers). *)
let sccs rb =
  let preds = idb_preds rb in
  let succ =
    let tbl = Hashtbl.create 32 in
    List.iter
      (fun (src, dst, _) ->
        let key = Symbol.id src in
        let old = Option.value ~default:[] (Hashtbl.find_opt tbl key) in
        Hashtbl.replace tbl key (dst :: old))
      (edges rb);
    fun p -> Option.value ~default:[] (Hashtbl.find_opt tbl (Symbol.id p))
  in
  let index = Hashtbl.create 32 in
  let lowlink = Hashtbl.create 32 in
  let on_stack = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let components = ref [] in
  let rec strongconnect v =
    let vid = Symbol.id v in
    Hashtbl.replace index vid !counter;
    Hashtbl.replace lowlink vid !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack vid ();
    List.iter
      (fun w ->
        let wid = Symbol.id w in
        if not (Hashtbl.mem index wid) then begin
          strongconnect w;
          Hashtbl.replace lowlink vid
            (min (Hashtbl.find lowlink vid) (Hashtbl.find lowlink wid))
        end
        else if Hashtbl.mem on_stack wid then
          Hashtbl.replace lowlink vid
            (min (Hashtbl.find lowlink vid) (Hashtbl.find index wid)))
      (succ v);
    if Hashtbl.find lowlink vid = Hashtbl.find index vid then begin
      let rec pop acc =
        match !stack with
        | [] -> acc
        | w :: rest ->
          stack := rest;
          Hashtbl.remove on_stack (Symbol.id w);
          if Symbol.equal w v then w :: acc else pop (w :: acc)
      in
      components := pop [] :: !components
    end
  in
  List.iter
    (fun p -> if not (Hashtbl.mem index (Symbol.id p)) then strongconnect p)
    preds;
  List.rev !components

let self_loop rb p =
  List.exists (fun (src, dst, _) -> Symbol.equal src p && Symbol.equal dst p)
    (edges rb)

let is_recursive rb =
  List.exists
    (fun comp ->
      match comp with
      | [] -> false
      | [ p ] -> self_loop rb p
      | _ :: _ :: _ -> true)
    (sccs rb)

let pred_recursive rb pred =
  List.exists
    (fun comp ->
      List.exists (Symbol.equal pred) comp
      && (List.length comp > 1 || self_loop rb pred))
    (sccs rb)

let stratify rb =
  let comps = sccs rb in
  (* A program is stratifiable iff no negative edge stays inside an SCC. *)
  let in_same_comp a b =
    List.exists
      (fun comp ->
        List.exists (Symbol.equal a) comp && List.exists (Symbol.equal b) comp)
      comps
  in
  let bad =
    List.filter_map
      (fun (src, dst, positive) ->
        if (not positive) && in_same_comp src dst then Some src else None)
      (edges rb)
  in
  if bad <> [] then Error (List.sort_uniq Symbol.compare bad)
  else begin
    (* Assign each SCC the stratum max(pos-dep strata, neg-dep strata + 1).
       [sccs] is in reverse topological order, so dependencies come first. *)
    let stratum_of = Hashtbl.create 32 in
    let comp_of p =
      List.find (fun comp -> List.exists (Symbol.equal p) comp) comps
    in
    List.iter
      (fun comp ->
        let level = ref 0 in
        List.iter
          (fun (src, dst, positive) ->
            if
              List.exists (Symbol.equal src) comp
              && not (in_same_comp src dst)
            then begin
              let dep =
                match Hashtbl.find_opt stratum_of (List.hd (comp_of dst)) with
                | Some l -> l
                | None -> 0
              in
              let need = if positive then dep else dep + 1 in
              if need > !level then level := need
            end)
          (edges rb);
        Hashtbl.replace stratum_of (List.hd comp) !level)
      comps;
    let max_level =
      Hashtbl.fold (fun _ l acc -> max l acc) stratum_of 0
    in
    let strata =
      List.init (max_level + 1) (fun level ->
          List.concat_map
            (fun comp ->
              if Hashtbl.find_opt stratum_of (List.hd comp) = Some level then
                comp
              else [])
            comps)
    in
    Ok (List.map (List.sort Symbol.compare) strata)
  end

let check_safe rb =
  let bad =
    List.filter_map
      (fun c ->
        match Clause.check_safe c with
        | Ok () -> None
        | Error vars -> Some (c, vars))
      (to_list rb)
  in
  if bad = [] then Ok () else Error bad

let pp ppf rb =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    Clause.pp ppf (to_list rb)
