(** Datalog terms: constants and variables (no function symbols). *)

(** A variable has a source name and a renaming generation: generation 0 is a
    variable as written in the source program; higher generations are created
    by [rename] when a rule is used in a resolution step, so distinct rule
    instances never capture each other's variables. *)
type var = { name : string; gen : int }

type t =
  | Const of Symbol.t
  | Var of var

val const : string -> t

(** A source-program variable (generation 0). *)
val var : string -> t

val is_const : t -> bool
val is_var : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val equal_var : var -> var -> bool
val compare_var : var -> var -> int

(** [rename gen t] lifts every variable in [t] to generation [gen]. *)
val rename : int -> t -> t

val pp : Format.formatter -> t -> unit
val pp_var : Format.formatter -> var -> unit
val to_string : t -> string

module Var_map : Map.S with type key = var
module Var_set : Set.S with type elt = var
