type token =
  | Ident of string
  | Variable of string
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Turnstile
  | Query
  | Not
  | Eof

type position = { line : int; col : int }

exception Lex_error of string * position

let pp_token ppf = function
  | Ident s -> Format.fprintf ppf "identifier %S" s
  | Variable s -> Format.fprintf ppf "variable %S" s
  | Lparen -> Format.pp_print_string ppf "'('"
  | Rparen -> Format.pp_print_string ppf "')'"
  | Comma -> Format.pp_print_string ppf "','"
  | Dot -> Format.pp_print_string ppf "'.'"
  | Turnstile -> Format.pp_print_string ppf "':-'"
  | Query -> Format.pp_print_string ppf "'?-'"
  | Not -> Format.pp_print_string ppf "'not'"
  | Eof -> Format.pp_print_string ppf "end of input"

let is_lower c = (c >= 'a' && c <= 'z')
let is_upper c = (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_lower c || is_upper c || is_digit c || c = '_'

let tokenize input =
  let n = String.length input in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let i = ref 0 in
  let pos () = { line = !line; col = !col } in
  let advance () =
    if !i < n then begin
      if input.[!i] = '\n' then begin
        incr line;
        col := 1
      end
      else incr col;
      incr i
    end
  in
  let push tok p = tokens := (tok, p) :: !tokens in
  let read_while pred =
    let start = !i in
    while !i < n && pred input.[!i] do
      advance ()
    done;
    String.sub input start (!i - start)
  in
  while !i < n do
    let c = input.[!i] in
    let p = pos () in
    if c = ' ' || c = '\t' || c = '\r' || c = '\n' then advance ()
    else if c = '%' then
      while !i < n && input.[!i] <> '\n' do
        advance ()
      done
    else if c = '(' then (advance (); push Lparen p)
    else if c = ')' then (advance (); push Rparen p)
    else if c = ',' then (advance (); push Comma p)
    else if c = '.' then (advance (); push Dot p)
    else if c = ':' then begin
      advance ();
      if !i < n && input.[!i] = '-' then (advance (); push Turnstile p)
      else raise (Lex_error ("expected '-' after ':'", p))
    end
    else if c = '?' then begin
      advance ();
      if !i < n && input.[!i] = '-' then (advance (); push Query p)
      else raise (Lex_error ("expected '-' after '?'", p))
    end
    else if c = '\\' then begin
      advance ();
      if !i < n && input.[!i] = '+' then (advance (); push Not p)
      else raise (Lex_error ("expected '+' after '\\\\'", p))
    end
    else if c = '\'' then begin
      advance ();
      let start = !i in
      while !i < n && input.[!i] <> '\'' do
        advance ()
      done;
      if !i >= n then raise (Lex_error ("unterminated quoted atom", p));
      let s = String.sub input start (!i - start) in
      advance ();
      push (Ident s) p
    end
    else if is_lower c then begin
      let s = read_while is_ident_char in
      if s = "not" then push Not p else push (Ident s) p
    end
    else if is_upper c || c = '_' then begin
      let s = read_while is_ident_char in
      push (Variable s) p
    end
    else if is_digit c then begin
      let s = read_while is_digit in
      push (Ident s) p
    end
    else
      raise (Lex_error (Printf.sprintf "unexpected character %C" c, p))
  done;
  push Eof (pos ());
  List.rev !tokens
