(** The intensional rule base, with dependency analysis.

    The rule base is static across query-processing contexts (Section 2.1 of
    the paper: "the rule base, encoded as the inference graph G, is static").
    Beyond rule storage it provides the predicate dependency graph used to
    detect recursion (inference-graph construction requires a non-recursive
    rule base, or bounded unfolding) and the stratification used by the
    semi-naive engine to evaluate negation. *)

type t

val create : unit -> t
val add : t -> Clause.t -> unit
val of_list : Clause.t list -> t
val to_list : t -> Clause.t list
val size : t -> int

(** Rules whose head predicate is the given one, in insertion order. *)
val rules_for : t -> Symbol.t -> Clause.t list

(** Rules whose head unifies with the goal, each paired with the unifier of
    head and goal (clauses are standardized apart at generation [gen]). *)
val resolving : t -> gen:int -> Atom.t -> (Clause.t * Subst.t) list

(** Predicates defined by at least one rule (intensional predicates). *)
val idb_preds : t -> Symbol.t list

(** Predicates that occur in rule bodies but have no rules (extensional). *)
val edb_preds : t -> Symbol.t list

(** Does any cycle exist in the predicate dependency graph? *)
val is_recursive : t -> bool

(** Is this predicate involved in a dependency cycle? *)
val pred_recursive : t -> Symbol.t -> bool

(** Stratification: a list of strata (lowest first), each a list of IDB
    predicates, such that negative dependencies never point within or above
    a stratum. Returns [Error cycle] if a negative cycle makes the program
    unstratifiable. *)
val stratify : t -> (Symbol.t list list, Symbol.t list) result

(** Check that all rules are range-restricted; returns offending clauses. *)
val check_safe : t -> (unit, (Clause.t * Term.var list) list) result

val pp : Format.formatter -> t -> unit
