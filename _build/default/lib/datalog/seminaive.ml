exception Unstratifiable of Symbol.t list

(* Evaluate a rule body left to right over [total], threading substitutions.
   When [delta] is given, the positive literal at [delta_pos] is matched
   against it instead (the semi-naive decomposition). Negative literals test
   the ground instance against [total]; stratification guarantees their
   predicates are already complete. *)
let eval_rule ~total ?delta_at clause =
  let results = ref [] in
  let rec go idx pos_idx subst = function
    | [] -> results := Subst.apply_atom subst clause.Clause.head :: !results
    | Clause.Pos atom :: rest ->
      let pattern = Subst.apply_atom subst atom in
      let source =
        match delta_at with
        | Some (j, delta) when pos_idx = j -> delta
        | _ -> total
      in
      List.iter
        (fun (_fact, s_fact) ->
          (* s_fact binds pattern variables to constants; merge into subst. *)
          let merged =
            List.fold_left
              (fun acc (v, t) ->
                match acc with
                | None -> None
                | Some s -> Subst.unify (Term.Var v) t s)
              (Some subst) (Subst.to_alist s_fact)
          in
          match merged with
          | Some s -> go (idx + 1) (pos_idx + 1) s rest
          | None -> ())
        (Database.matching source pattern)
    | Clause.Neg atom :: rest ->
      let ground = Subst.apply_atom subst atom in
      if not (Atom.is_ground ground) then
        invalid_arg
          (Format.asprintf "Seminaive: unsafe negative literal %a" Atom.pp
             ground);
      if not (Database.mem total ground) then go (idx + 1) pos_idx subst rest
  in
  (match delta_at with
  | Some (_, delta) when Database.size delta = 0 -> ()
  | _ -> go 0 0 Subst.empty clause.Clause.body);
  !results

let positive_positions clause in_stratum =
  let rec go pos_idx acc = function
    | [] -> List.rev acc
    | Clause.Pos atom :: rest ->
      let acc = if in_stratum atom.Atom.pred then pos_idx :: acc else acc in
      go (pos_idx + 1) acc rest
    | Clause.Neg _ :: rest -> go pos_idx acc rest
  in
  go 0 [] clause.Clause.body

let model rulebase db =
  (match Rulebase.check_safe rulebase with
  | Ok () -> ()
  | Error ((c, _) :: _) ->
    invalid_arg
      (Format.asprintf "Seminaive: unsafe rule %a" Clause.pp c)
  | Error [] -> assert false);
  let strata =
    match Rulebase.stratify rulebase with
    | Ok s -> s
    | Error preds -> raise (Unstratifiable preds)
  in
  let total = Database.copy db in
  List.iter
    (fun stratum ->
      let in_stratum p = List.exists (Symbol.equal p) stratum in
      let rules =
        List.filter
          (fun c -> in_stratum c.Clause.head.Atom.pred)
          (Rulebase.to_list rulebase)
      in
      (* First round: naive evaluation over everything known so far. *)
      let delta = Database.create () in
      List.iter
        (fun clause ->
          List.iter
            (fun fact ->
              if Database.add total fact then ignore (Database.add delta fact))
            (eval_rule ~total clause))
        rules;
      (* Subsequent rounds: only join through the last round's delta. *)
      let current = ref delta in
      while Database.size !current > 0 do
        let next = Database.create () in
        List.iter
          (fun clause ->
            List.iter
              (fun j ->
                List.iter
                  (fun fact ->
                    if Database.add total fact then
                      ignore (Database.add next fact))
                  (eval_rule ~total ~delta_at:(j, !current) clause))
              (positive_positions clause in_stratum))
          rules;
        current := next
      done)
    strata;
  total

let query rulebase db pattern =
  let m = model rulebase db in
  Database.matching m pattern |> List.map fst |> List.sort_uniq Atom.compare

let holds rulebase db atom =
  if not (Atom.is_ground atom) then invalid_arg "Seminaive.holds: non-ground";
  Database.mem (model rulebase db) atom
