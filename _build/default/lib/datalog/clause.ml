type lit =
  | Pos of Atom.t
  | Neg of Atom.t

type t = { head : Atom.t; body : lit list }

let make head body = { head; body }
let fact head = { head; body = [] }
let is_fact c = c.body = []

let lit_atom = function Pos a | Neg a -> a
let lit_is_positive = function Pos _ -> true | Neg _ -> false

let positive_body c =
  List.filter_map (function Pos a -> Some a | Neg _ -> None) c.body

let negative_body c =
  List.filter_map (function Neg a -> Some a | Pos _ -> None) c.body

let vars c =
  List.fold_left
    (fun acc lit -> Term.Var_set.union acc (Atom.var_set (lit_atom lit)))
    (Atom.var_set c.head) c.body

let check_safe c =
  let positive_vars =
    List.fold_left
      (fun acc a -> Term.Var_set.union acc (Atom.var_set a))
      Term.Var_set.empty (positive_body c)
  in
  let must_be_covered =
    List.fold_left
      (fun acc a -> Term.Var_set.union acc (Atom.var_set a))
      (Atom.var_set c.head) (negative_body c)
  in
  let uncovered = Term.Var_set.diff must_be_covered positive_vars in
  if Term.Var_set.is_empty uncovered then Ok ()
  else Error (Term.Var_set.elements uncovered)

let map_atoms f c =
  {
    head = f c.head;
    body =
      List.map (function Pos a -> Pos (f a) | Neg a -> Neg (f a)) c.body;
  }

let rename gen c = map_atoms (Atom.rename gen) c
let apply s c = map_atoms (Subst.apply_atom s) c

let equal_lit a b =
  match (a, b) with
  | Pos x, Pos y | Neg x, Neg y -> Atom.equal x y
  | Pos _, Neg _ | Neg _, Pos _ -> false

let equal a b = Atom.equal a.head b.head && List.equal equal_lit a.body b.body

let compare_lit a b =
  match (a, b) with
  | Pos x, Pos y | Neg x, Neg y -> Atom.compare x y
  | Pos _, Neg _ -> -1
  | Neg _, Pos _ -> 1

let compare a b =
  match Atom.compare a.head b.head with
  | 0 -> List.compare compare_lit a.body b.body
  | c -> c

let pp_lit ppf = function
  | Pos a -> Atom.pp ppf a
  | Neg a -> Format.fprintf ppf "not %a" Atom.pp a

let pp ppf c =
  if is_fact c then Format.fprintf ppf "%a." Atom.pp c.head
  else
    Format.fprintf ppf "%a :- %a." Atom.pp c.head
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         pp_lit)
      c.body

let to_string c = Format.asprintf "%a" pp c
