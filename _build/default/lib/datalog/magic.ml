type result = {
  program : Rulebase.t;
  seed : Atom.t;
  answer_pred : Symbol.t;
  adorned : Adorn.program;
}

let magic_symbol ap =
  Symbol.intern ("m_" ^ Symbol.to_string (Adorn.apred_symbol ap))

(* The bound-position arguments of an atom under an adornment. *)
let bound_args adornment atom =
  List.filteri
    (fun i _ -> List.nth adornment i = `B)
    atom.Atom.args

let magic_atom ap atom = Atom.make_sym (magic_symbol ap) (bound_args ap.Adorn.adornment atom)

(* Recover the adorned predicate of a mangled body literal. *)
let apred_of_mangled rules sym =
  List.find_opt
    (fun (ap, _) -> Symbol.equal (Adorn.apred_symbol ap) sym)
    rules
  |> Option.map fst

let transform rb ~query =
  let adorned = Adorn.adorn rb ~query_form:query in
  let out = ref [] in
  List.iter
    (fun (ap, clause) ->
      let guard = Clause.Pos (magic_atom ap clause.Clause.head) in
      (* guarded adorned rule *)
      out := Clause.make clause.Clause.head (guard :: clause.Clause.body) :: !out;
      (* magic rules for each positive IDB (mangled) body literal *)
      let rec walk prefix = function
        | [] -> ()
        | (Clause.Pos atom as lit) :: rest ->
          (match apred_of_mangled adorned.Adorn.rules atom.Atom.pred with
          | Some sub_ap ->
            let head = magic_atom sub_ap atom in
            out :=
              Clause.make head (guard :: List.rev prefix) :: !out
          | None -> ());
          walk (lit :: prefix) rest
        | (Clause.Neg atom as lit) :: rest ->
          (match apred_of_mangled adorned.Adorn.rules atom.Atom.pred with
          | Some _ ->
            invalid_arg
              (Format.asprintf
                 "Magic.transform: negative intensional literal %a is not \
                  supported"
                 Atom.pp atom)
          | None -> ());
          walk (lit :: prefix) rest
      in
      walk [] clause.Clause.body)
    adorned.Adorn.rules;
  let seed = magic_atom adorned.Adorn.query query in
  if not (Atom.is_ground seed) then
    invalid_arg "Magic.transform: the query's bound arguments must be ground";
  {
    program = Rulebase.of_list (List.rev !out);
    seed;
    answer_pred = Adorn.apred_symbol adorned.Adorn.query;
    adorned;
  }

let run rb db ~query =
  let t = transform rb ~query in
  let db' = Database.copy db in
  ignore (Database.add db' t.seed);
  (t, Seminaive.model t.program db')

let answers rb db ~query =
  let t, model = run rb db ~query in
  let pattern = Atom.make_sym t.answer_pred query.Atom.args in
  Database.matching model pattern
  |> List.map (fun (fact, _) -> Atom.make_sym query.Atom.pred fact.Atom.args)
  |> List.sort_uniq Atom.compare

let derived_size rb db ~query =
  let _, model = run rb db ~query in
  Database.size model - Database.size db - 1 (* minus base facts and seed *)
