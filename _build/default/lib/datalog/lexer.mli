(** Hand-written lexer for the Datalog surface syntax. *)

type token =
  | Ident of string      (** lowercase identifier, integer, or quoted atom *)
  | Variable of string   (** identifier starting with uppercase or [_] *)
  | Lparen
  | Rparen
  | Comma
  | Dot
  | Turnstile            (** [:-] *)
  | Query                (** [?-] *)
  | Not                  (** [not] or [\+] *)
  | Eof

type position = { line : int; col : int }

exception Lex_error of string * position

val pp_token : Format.formatter -> token -> unit

(** Tokenize a whole string. [%] starts a comment running to end of line. *)
val tokenize : string -> (token * position) list
