(** Recursive-descent parser for Datalog programs.

    Surface syntax:
    {v
      prof(russ).                      % a fact
      instructor(X) :- prof(X).       % a rule
      safe(X) :- person(X), not criminal(X).
      ?- instructor(manolis).         % a query
    v}

    Identifiers starting with a lowercase letter (or digits, or quoted
    ['...']) are constants/predicates; identifiers starting with an
    uppercase letter or [_] are variables. [%] comments run to end of
    line. [\+] is accepted as a synonym for [not]. *)

type item =
  | Clause of Clause.t
  | Query of Clause.lit list

exception Parse_error of string * Lexer.position

(** Parse a whole program. *)
val parse_program : string -> item list

(** Parse a single clause, e.g. ["instructor(X) :- prof(X)."]. *)
val parse_clause : string -> Clause.t

(** Parse several clauses and no queries. *)
val parse_clauses : string -> Clause.t list

(** Parse a single atom, e.g. ["instructor(manolis)"]. *)
val parse_atom : string -> Atom.t

(** Parse a query body, e.g. ["?- p(X), not q(X)."] or ["p(X), not q(X)"]. *)
val parse_query : string -> Clause.lit list

(** Split a program into (rules, facts, queries). *)
val parse_kb : string -> Clause.t list * Atom.t list * Clause.lit list list
