type t = { pred : Symbol.t; args : Term.t list }

let make_sym pred args = { pred; args }
let make name args = { pred = Symbol.intern name; args }
let arity a = List.length a.args
let is_ground a = List.for_all Term.is_const a.args

let equal a b =
  Symbol.equal a.pred b.pred && List.equal Term.equal a.args b.args

let compare a b =
  match Symbol.compare a.pred b.pred with
  | 0 -> List.compare Term.compare a.args b.args
  | c -> c

let hash a =
  List.fold_left
    (fun acc t ->
      let h =
        match t with
        | Term.Const s -> Symbol.hash s
        | Term.Var v -> Hashtbl.hash (v.Term.name, v.Term.gen)
      in
      (acc * 31) + h)
    (Symbol.hash a.pred) a.args

let var_set a =
  List.fold_left
    (fun acc t ->
      match t with Term.Var v -> Term.Var_set.add v acc | Term.Const _ -> acc)
    Term.Var_set.empty a.args

let vars a =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun t ->
      match t with
      | Term.Const _ -> None
      | Term.Var v ->
        let key = (v.Term.name, v.Term.gen) in
        if Hashtbl.mem seen key then None
        else begin
          Hashtbl.add seen key ();
          Some v
        end)
    a.args

let rename gen a = { a with args = List.map (Term.rename gen) a.args }

let adornment a =
  List.map (function Term.Const _ -> `B | Term.Var _ -> `F) a.args

let pp ppf a =
  match a.args with
  | [] -> Symbol.pp ppf a.pred
  | args ->
    Format.fprintf ppf "%a(%a)" Symbol.pp a.pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
         Term.pp)
      args

let pp_query_form ppf a =
  let mark = function `B -> "b" | `F -> "f" in
  Format.fprintf ppf "%a^(%s)" Symbol.pp a.pred
    (String.concat "," (List.map mark (adornment a)))

let to_string a = Format.asprintf "%a" pp a
