type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let next = ref 0

let intern name =
  match Hashtbl.find_opt table name with
  | Some s -> s
  | None ->
    let s = { id = !next; name } in
    incr next;
    Hashtbl.add table name s;
    s

let to_string s = s.name
let id s = s.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash s = s.id
let pp ppf s = Format.pp_print_string ppf s.name
let count () = !next
