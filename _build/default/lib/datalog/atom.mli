(** Atomic formulae: a predicate applied to terms. *)

type t = { pred : Symbol.t; args : Term.t list }

val make : string -> Term.t list -> t
val make_sym : Symbol.t -> Term.t list -> t
val arity : t -> int
val is_ground : t -> bool
val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

(** Variables occurring in the atom, left to right, without duplicates. *)
val vars : t -> Term.var list

val var_set : t -> Term.Var_set.t

(** [rename gen a] lifts all variables to generation [gen]. *)
val rename : int -> t -> t

(** Adornment in the paper's sense (Section 2): for each argument, [`B] if
    bound (a constant), [`F] if free (a variable). *)
val adornment : t -> [ `B | `F ] list

(** Render e.g. ["instructor^(b,f)"]. *)
val pp_query_form : Format.formatter -> t -> unit

val pp : Format.formatter -> t -> unit
val to_string : t -> string
