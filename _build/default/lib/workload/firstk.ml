open Infgraph
open Strategy

type t = {
  graph : Graph.t;
  k : int;
  model : Bernoulli_model.t;
  sources : (string * float * float) list;
}

let make ~sources ~k =
  if k < 1 then invalid_arg "Firstk.make: k must be >= 1";
  if List.length sources < k then
    invalid_arg "Firstk.make: need at least k sources";
  let b = Graph.Builder.create "answers(Q)" in
  List.iter
    (fun (label, cost, _) ->
      ignore
        (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~cost ~label
           ()))
    sources;
  let graph = Graph.Builder.finish b in
  let p = Array.make (Graph.n_arcs graph) 1.0 in
  List.iteri (fun i (_, _, prob) -> p.(i) <- prob) sources;
  { graph; k; model = Bernoulli_model.make graph ~p; sources }

let graph t = t.graph
let k t = t.k
let model t = t.model

let expected_cost t spec =
  List.fold_left
    (fun acc (ctx, prob) ->
      if prob = 0. then acc
      else acc +. (prob *. (Exec.first_k t.k spec ctx).Exec.cost))
    0.
    (Bernoulli_model.enumerate t.model)

let brute_optimal t =
  let specs = Enumerate.all_paths t.graph in
  let best =
    List.fold_left
      (fun best spec ->
        let c = expected_cost t spec in
        match best with
        | Some (_, bc) when bc <= c -> best
        | _ -> Some (spec, c))
      None specs
  in
  match best with
  | Some r -> r
  | None -> invalid_arg "Firstk.brute_optimal: no strategies"

let ratio_strategy t =
  let rated =
    List.mapi
      (fun i (_, cost, prob) -> (Graph.path_to t.graph i, prob /. cost))
      t.sources
  in
  let order =
    List.stable_sort (fun (_, r1) (_, r2) -> Float.compare r2 r1) rated
    |> List.map fst
  in
  Spec.of_paths t.graph order
