module D = Datalog
open Infgraph

let rules_text =
  "relative(X) :- ancestor_of_probe(X).\n\
   relative(X) :- sibling(X).\n\
   relative(X) :- inlaw(X).\n\
   ancestor_of_probe(X) :- parent_of_probe(X).\n\
   ancestor_of_probe(X) :- grandparent_of_probe(X).\n\
   parent_of_probe(X) :- mother_probe(X).\n\
   parent_of_probe(X) :- father_probe(X).\n\
   grandparent_of_probe(X) :- gm_probe(X).\n\
   grandparent_of_probe(X) :- gf_probe(X).\n\
   sibling(X) :- full_sibling(X).\n\
   sibling(X) :- half_sibling(X).\n\
   inlaw(X) :- spouse(X).\n\
   inlaw(X) :- spouse_sibling(X).\n"

let rulebase () = D.Rulebase.of_list (D.Parser.parse_clauses rules_text)

let build () =
  Build.build ~rulebase:(rulebase ())
    ~query_form:(D.Parser.parse_atom "relative(someone)")
    ()

let rates =
  [
    ("mother_probe", 0.02);
    ("father_probe", 0.02);
    ("gm_probe", 0.01);
    ("gf_probe", 0.01);
    ("full_sibling", 0.25);
    ("half_sibling", 0.05);
    ("spouse", 0.15);
    ("spouse_sibling", 0.10);
  ]

type population = { pdb : D.Database.t; ppeople : string list }

let populate rng ~n_people =
  if n_people < 1 then invalid_arg "Genealogy.populate: need people";
  let pdb = D.Database.create () in
  let ppeople =
    List.init n_people (fun i ->
        let name = Printf.sprintf "person%d" (i + 1) in
        List.iter
          (fun (pred, rate) ->
            if Stats.Rng.bernoulli rng rate then
              ignore (D.Database.add pdb (D.Atom.make pred [ D.Term.const name ])))
          rates;
        name)
  in
  { pdb; ppeople }

let db p = p.pdb
let people p = p.ppeople

let person_distribution ?(skew = 1.2) pop =
  Stats.Distribution.create
    (List.mapi
       (fun i name -> (name, (1.0 /. float_of_int (i + 1)) ** skew))
       pop.ppeople)

let context_distribution ?skew result pop =
  let g = result.Build.graph in
  Stats.Distribution.map
    (fun name ->
      Context.of_db g
        ~query:(Build.query_of_consts result [ name ])
        ~db:pop.pdb)
    (person_distribution ?skew pop)

let oracle ?skew result pop rng =
  let dist = context_distribution ?skew result pop in
  Core.Oracle.of_fn result.Build.graph (fun () ->
      Stats.Distribution.sample dist rng)
