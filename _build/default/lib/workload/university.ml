module D = Datalog
open Infgraph
open Strategy

let rules_text = "instructor(X) :- prof(X).\ninstructor(X) :- grad(X).\n"

let rulebase () = D.Rulebase.of_list (D.Parser.parse_clauses rules_text)

let db1 () =
  D.Database.of_list
    [ D.Parser.parse_atom "prof(russ)"; D.Parser.parse_atom "grad(manolis)" ]

let db2 ?(n_prof = 2000) ?(n_grad = 500) () =
  let db = db1 () in
  for i = 1 to n_prof do
    ignore
      (D.Database.add db
         (D.Atom.make "prof" [ D.Term.const (Printf.sprintf "p%d" i) ]))
  done;
  for i = 1 to n_grad do
    ignore
      (D.Database.add db
         (D.Atom.make "grad" [ D.Term.const (Printf.sprintf "g%d" i) ]))
  done;
  db

let build () =
  Build.build ~rulebase:(rulebase ())
    ~query_form:(D.Parser.parse_atom "instructor(someone)")
    ()

let theta1 result = Spec.default result.Build.graph

let theta2 result =
  let g = result.Build.graph in
  let root = Graph.root g in
  Spec.with_order (Spec.default g) ~node:root
    ~order:(List.rev (Graph.children g root))

let model_of result ~p_prof ~p_grad =
  Bernoulli_model.of_alist result.Build.graph
    [ ("D_prof", p_prof); ("D_grad", p_grad) ]

let model_section2 result = model_of result ~p_prof:0.60 ~p_grad:0.15
let model_section4 result = model_of result ~p_prof:0.2 ~p_grad:0.6

let query_for result name = Build.query_of_consts result [ name ]

let query_mix_section2 result =
  let db = db1 () in
  Stats.Distribution.create
    [
      ((query_for result "russ", db), 0.60);
      ((query_for result "manolis", db), 0.15);
      ((query_for result "fred", db), 0.25);
    ]

let minors_mix ?(grad_fraction = 0.6) ?(n_minors = 10) result =
  if grad_fraction < 0. || grad_fraction > 1. then
    invalid_arg "University.minors_mix: grad_fraction out of range";
  if n_minors < 2 then invalid_arg "University.minors_mix: need >= 2 minors";
  let db = db2 () in
  (* The first ceil(grad_fraction * n) minors are grads; none are profs. *)
  let n_grads =
    int_of_float (Float.round (grad_fraction *. float_of_int n_minors))
  in
  let minors = List.init n_minors (fun i -> Printf.sprintf "minor%d" (i + 1)) in
  List.iteri
    (fun i name ->
      if i < n_grads then
        ignore (D.Database.add db (D.Atom.make "grad" [ D.Term.const name ])))
    minors;
  let mix =
    Stats.Distribution.uniform
      (List.map (fun name -> (query_for result name, db)) minors)
  in
  (mix, db)
