(** Section 5.2's distributed-database application: choosing the order in
    which to scan horizontally segmented files.

    One logical relation (say [age/2]) is split across [n] physical files;
    a query [age(person, X)] probes files until the one holding the
    person's record is found. A probe costs that file's scan cost; the
    scan order is exactly a one-level satisficing strategy, so PIB/PAO
    apply unchanged: the inference graph is a root with one retrieval arc
    per file, and a context blocks every arc except the file that holds
    the queried person (or all of them, for unknown people). *)

open Infgraph

type t

(** [make ~rng ~n_files ~n_people ()] distributes [n_people] records over
    [n_files] files with a skewed (geometric-ish) file-popularity profile,
    and gives each file a scan cost proportional to its size (plus 1).
    [hot_file_bias] (default 2.0) controls the skew. *)
val make :
  ?hot_file_bias:float ->
  rng:Stats.Rng.t ->
  n_files:int ->
  n_people:int ->
  unit ->
  t

val graph : t -> Graph.t
val n_files : t -> int

(** Which file holds this person (if any). *)
val file_of : t -> string -> int option

(** File scan costs by file index. *)
val costs : t -> float array

(** The context for a query about [person]. *)
val context_for : t -> string -> Context.t

(** Oracle over a query distribution on people. [skew] (default 1.5)
    Zipf-skews the per-person query probabilities — independently of where
    their records sit, which is the paper's point. *)
val oracle : ?skew:float -> t -> Stats.Rng.t -> Core.Oracle.t

(** The exact context distribution [oracle] samples from — file successes
    are mutually exclusive (a person's record lives in one file), so exact
    expected costs use this with {!Strategy.Cost.over_contexts}. PIB makes
    no independence assumption (Section 5.3) and handles this directly. *)
val context_distribution :
  ?skew:float -> t -> Context.t Stats.Distribution.t

(** The independence {e approximation} of the per-file hit probabilities —
    what PAO (which assumes independence, footnote 8) would work with. *)
val independent_model : ?skew:float -> t -> Bernoulli_model.t
