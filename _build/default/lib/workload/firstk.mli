(** Section 5.2's first-k-answers variant.

    Some queries are known to have exactly [k] answers — [parent(x, Y)]
    yields two bindings, [senator(state, Y)] two, etc. The satisficing
    search then stops after the [k]-th success rather than the first
    ({!Strategy.Exec.first_k}). Strategies are the same objects; only the
    stopping rule changes, so expected costs are evaluated by enumeration
    or sampling over contexts. *)

open Infgraph
open Strategy

type t

(** [make ~sources ~k] — one retrieval arc per answer source:
    (label, cost, probability the source holds an answer). *)
val make : sources:(string * float * float) list -> k:int -> t

val graph : t -> Graph.t
val k : t -> int
val model : t -> Bernoulli_model.t

(** Exact expected cost of a strategy under the first-k stopping rule
    (enumerates contexts). *)
val expected_cost : t -> Spec.t -> float

(** Best strategy by brute force over path orders (small source counts). *)
val brute_optimal : t -> Spec.t * float

(** Order sources greedily by p/c — optimal for the k = 1 case, a good
    heuristic otherwise (compared against [brute_optimal] in tests). *)
val ratio_strategy : t -> Spec.t
