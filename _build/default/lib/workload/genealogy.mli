(** A deeper, multi-level knowledge base: genealogy.

    Three layers of disjunctive rules over six extensional relations —
    large enough that the inference graph for [relative^(b)] has a dozen
    retrievals at different depths, so learned strategies genuinely
    reorder subtrees rather than a single sibling pair:

    {v
      relative(X) :- ancestor_of_probe(X).
      relative(X) :- sibling(X).
      relative(X) :- inlaw(X).
      ancestor_of_probe(X) :- parent_of_probe(X).
      ancestor_of_probe(X) :- grandparent_of_probe(X).
      parent_of_probe(X)      :- mother_probe(X).
      parent_of_probe(X)      :- father_probe(X).
      grandparent_of_probe(X) :- gm_probe(X).
      grandparent_of_probe(X) :- gf_probe(X).
      sibling(X) :- full_sibling(X).
      sibling(X) :- half_sibling(X).
      inlaw(X)   :- spouse(X).
      inlaw(X)   :- spouse_sibling(X).
    v}

    A population generator fills the extensional relations with per-person
    Bernoulli draws (each predicate has its own rate), and a query mix
    draws people with a Zipf skew. *)

open Infgraph

val rules_text : string
val rulebase : unit -> Datalog.Rulebase.t

(** Inference graph for [relative^(b)]. *)
val build : unit -> Build.result

type population

(** [populate rng ~n_people] — draws each leaf relation per person. *)
val populate : Stats.Rng.t -> n_people:int -> population

val db : population -> Datalog.Database.t
val people : population -> string list

(** The per-leaf-relation rates used by the generator, by predicate. *)
val rates : (string * float) list

(** Query oracle over the population, Zipf-skewed. *)
val oracle : ?skew:float -> Build.result -> population -> Stats.Rng.t -> Core.Oracle.t

(** The exact context distribution the oracle samples from. *)
val context_distribution :
  ?skew:float -> Build.result -> population -> Context.t Stats.Distribution.t
