open Infgraph

type params = {
  depth : int;
  branch_min : int;
  branch_max : int;
  leaf_prob : float;
  cost_min : float;
  cost_max : float;
  experiment_prob : float;
}

let default_params =
  {
    depth = 4;
    branch_min = 2;
    branch_max = 3;
    leaf_prob = 0.4;
    cost_min = 0.5;
    cost_max = 4.0;
    experiment_prob = 0.0;
  }

let validate p =
  if p.depth < 1 then invalid_arg "Synth: depth must be >= 1";
  if p.branch_min < 1 || p.branch_max < p.branch_min then
    invalid_arg "Synth: bad branching bounds";
  if p.cost_min <= 0. || p.cost_max < p.cost_min then
    invalid_arg "Synth: bad cost bounds";
  if p.leaf_prob < 0. || p.leaf_prob > 1. then
    invalid_arg "Synth: leaf_prob out of range";
  if p.experiment_prob < 0. || p.experiment_prob > 1. then
    invalid_arg "Synth: experiment_prob out of range"

let random_graph rng p =
  validate p;
  let b = Graph.Builder.create "root" in
  let cost () = Stats.Rng.uniform_in rng ~lo:p.cost_min ~hi:p.cost_max in
  let rec grow node depth =
    let n_children =
      p.branch_min + Stats.Rng.int rng (p.branch_max - p.branch_min + 1)
    in
    for _ = 1 to n_children do
      let leaf = depth >= p.depth || Stats.Rng.bernoulli rng p.leaf_prob in
      if leaf then
        ignore (Graph.Builder.add_retrieval b ~src:node ~cost:(cost ()) ())
      else begin
        let child = Graph.Builder.add_node b (Printf.sprintf "n%d" node) in
        let blockable = Stats.Rng.bernoulli rng p.experiment_prob in
        ignore
          (Graph.Builder.add_arc b ~src:node ~dst:child ~cost:(cost ())
             ~blockable Graph.Reduction);
        grow child (depth + 1)
      end
    done
  in
  grow (Graph.Builder.root b) 1;
  Graph.Builder.finish b

let random_model ?(p_min = 0.05) ?(p_max = 0.95) rng g =
  if p_min < 0. || p_max > 1. || p_max < p_min then
    invalid_arg "Synth.random_model: bad probability bounds";
  Bernoulli_model.make g
    ~p:
      (Array.init (Graph.n_arcs g) (fun _ ->
           Stats.Rng.uniform_in rng ~lo:p_min ~hi:p_max))

let random_instance ?p_min ?p_max rng p =
  let g = random_graph rng p in
  (g, random_model ?p_min ?p_max rng g)

type kb = {
  rulebase : Datalog.Rulebase.t;
  query_pred : string;
  edb_preds : string list;
  edb_probs : (string * float) list;
  constants : string list;
}

let random_kb ?(p_min = 0.1) ?(p_max = 0.9) rng ~depth ~branch ~n_constants =
  if depth < 1 || branch < 1 then invalid_arg "Synth.random_kb: bad shape";
  if n_constants < 1 then invalid_arg "Synth.random_kb: need constants";
  let clauses = ref [] in
  let edb = ref [] in
  let counter = ref 0 in
  (* Build the predicate tree top-down; returns the predicate name. *)
  let rec define level =
    incr counter;
    let name =
      if level = 0 then "q0"
      else if level >= depth then Printf.sprintf "e%d" !counter
      else Printf.sprintf "p%d" !counter
    in
    if level >= depth then begin
      edb := name :: !edb;
      name
    end
    else begin
      for _ = 1 to branch do
        let child = define (level + 1) in
        clauses :=
          Datalog.Clause.make
            (Datalog.Atom.make name [ Datalog.Term.var "X" ])
            [ Datalog.Clause.Pos (Datalog.Atom.make child [ Datalog.Term.var "X" ]) ]
          :: !clauses
      done;
      name
    end
  in
  let root = define 0 in
  let edb_preds = List.rev !edb in
  {
    rulebase = Datalog.Rulebase.of_list (List.rev !clauses);
    query_pred = root;
    edb_preds;
    edb_probs =
      List.map
        (fun p -> (p, Stats.Rng.uniform_in rng ~lo:p_min ~hi:p_max))
        edb_preds;
    constants = List.init n_constants (fun i -> Printf.sprintf "k%d" i);
  }

let sample_db kb rng =
  let db = Datalog.Database.create () in
  List.iter
    (fun (pred, prob) ->
      List.iter
        (fun const ->
          if Stats.Rng.bernoulli rng prob then
            ignore
              (Datalog.Database.add db
                 (Datalog.Atom.make pred [ Datalog.Term.const const ])))
        kb.constants)
    kb.edb_probs;
  db

let sample_query kb rng =
  Datalog.Atom.make kb.query_pred
    [ Datalog.Term.const (Stats.Rng.pick rng kb.constants) ]

let small_instance ?(max_leaves = 5) ?params ?p_min ?p_max rng =
  let p =
    match params with
    | Some p -> p
    | None -> { default_params with depth = 2; branch_max = 2 }
  in
  let rec try_once () =
    let g = random_graph rng p in
    if List.length (Graph.retrievals g) <= max_leaves then
      (g, random_model ?p_min ?p_max rng g)
    else try_once ()
  in
  try_once ()
