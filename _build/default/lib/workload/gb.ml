module D = Datalog
open Infgraph
open Strategy

let rules_text =
  "g(X) :- a(X).\n\
   g(X) :- s(X).\n\
   s(X) :- b(X).\n\
   s(X) :- t(X).\n\
   t(X) :- c(X).\n\
   t(X) :- d(X).\n"

let build () =
  Build.build
    ~rulebase:(D.Rulebase.of_list (D.Parser.parse_clauses rules_text))
    ~query_form:(D.Parser.parse_atom "g(someone)")
    ()

let theta_abcd result = Spec.default result.Build.graph

let node_of_goal g pred =
  let found =
    List.find_opt
      (fun n ->
        match n.Graph.goal with
        | Some atom ->
          String.equal (D.Symbol.to_string atom.D.Atom.pred) pred
        | None -> false)
      (Graph.nodes g)
  in
  match found with
  | Some n -> n.Graph.node_id
  | None -> invalid_arg ("Gb: no goal node for predicate " ^ pred)

let swap_at result pred =
  let g = result.Build.graph in
  let node = node_of_goal g pred in
  fun d ->
    Spec.with_order d ~node ~order:(List.rev (Graph.children g node))

let theta_abdc result = swap_at result "t" (theta_abcd result)
let theta_acdb result = swap_at result "s" (theta_abcd result)

let model result ~pa ~pb ~pc ~pd =
  Bernoulli_model.of_alist result.Build.graph
    [ ("D_a", pa); ("D_b", pb); ("D_c", pc); ("D_d", pd) ]

let model_d_heavy result = model result ~pa:0.05 ~pb:0.05 ~pc:0.1 ~pd:0.8
