(** Random tree-shaped inference graphs and models — the scaling and
    property-test workload. *)

open Infgraph

type params = {
  depth : int;            (** maximum reduction depth (>= 1) *)
  branch_min : int;       (** children per goal node, lower bound (>= 1) *)
  branch_max : int;       (** upper bound *)
  leaf_prob : float;      (** probability an arc is a retrieval (when depth allows) *)
  cost_min : float;
  cost_max : float;
  experiment_prob : float;
      (** probability a reduction arc is blockable (0 gives simple
          disjunctive graphs) *)
}

val default_params : params

(** Shape-only generation (unit retrieval probabilities are chosen by
    {!random_model}). *)
val random_graph : Stats.Rng.t -> params -> Graph.t

(** Independent model with blockable-arc probabilities uniform in
    [[p_min, p_max]]. *)
val random_model :
  ?p_min:float -> ?p_max:float -> Stats.Rng.t -> Graph.t -> Bernoulli_model.t

(** A graph plus model in one call. *)
val random_instance :
  ?p_min:float -> ?p_max:float -> Stats.Rng.t -> params ->
  Graph.t * Bernoulli_model.t

(** Small instances for brute-force comparison: at most [max_leaves]
    retrievals (resamples until satisfied). *)
val small_instance :
  ?max_leaves:int -> ?params:params -> ?p_min:float -> ?p_max:float ->
  Stats.Rng.t -> Graph.t * Bernoulli_model.t

(** A full random Datalog knowledge base: a non-recursive simple
    disjunctive rule base (a tree of unary predicates), a population of
    databases and a query distribution over constants — the end-to-end
    workload on which the inference-graph pipeline is cross-validated
    against the SLD engine. *)
type kb = {
  rulebase : Datalog.Rulebase.t;
  query_pred : string;          (** root predicate (arity 1) *)
  edb_preds : string list;      (** leaf predicates *)
  edb_probs : (string * float) list;
      (** per-predicate membership probability used to populate databases *)
  constants : string list;      (** the query/constant universe *)
}

(** [random_kb rng ~depth ~branch ~n_constants] — each intensional
    predicate gets [branch] single-literal rules; at [depth] the body
    predicates are extensional. *)
val random_kb :
  ?p_min:float -> ?p_max:float ->
  Stats.Rng.t -> depth:int -> branch:int -> n_constants:int -> kb

(** Draw a database: each (EDB predicate, constant) fact is present
    independently with the predicate's probability. *)
val sample_db : kb -> Stats.Rng.t -> Datalog.Database.t

(** A ground query about a uniformly random constant. *)
val sample_query : kb -> Stats.Rng.t -> Datalog.Atom.t
