(** Section 5.2's negation-as-failure application.

    {v pauper(X) :- person(X), not has_possession(X). v}

    Deciding [not has_possession(x)] is a satisficing search: find a
    {e single} possession and the NAF test fails — "we do not have to find
    each of his multitude of possessions". The search over possession
    categories ([owns_house], [owns_car], ...) is a one-level inference
    graph whose retrieval order PIB can learn: probing the categories
    people most often own first answers the NAF test fastest for
    non-paupers (the common case). *)

open Infgraph

type t

(** [make ~rng ~categories ~n_people ~pauper_fraction ()] — [categories]
    are (name, retrieval cost, ownership probability among non-paupers)
    triples. *)
val make :
  rng:Stats.Rng.t ->
  categories:(string * float * float) list ->
  n_people:int ->
  pauper_fraction:float ->
  unit ->
  t

(** The inference graph of the [has_possession] satisficing search. *)
val graph : t -> Graph.t

(** The rule base, including the NAF rule, as Datalog source (the same
    scenario run through the SLD engine in tests). *)
val program : t -> string

val db : t -> Datalog.Database.t
val people : t -> string list
val is_pauper : t -> string -> bool

val context_for : t -> string -> Context.t

(** Uniform queries over all people. *)
val oracle : t -> Stats.Rng.t -> Core.Oracle.t

val context_distribution : t -> Context.t Stats.Distribution.t
