open Infgraph

type t = {
  graph : Graph.t;
  n_files : int;
  people : string array;
  assignment : (string, int) Hashtbl.t; (* person -> file *)
  costs : float array;
}

let make ?(hot_file_bias = 2.0) ~rng ~n_files ~n_people () =
  if n_files < 2 then invalid_arg "Segmented.make: need at least 2 files";
  if n_people < 1 then invalid_arg "Segmented.make: need at least 1 person";
  if hot_file_bias < 1.0 then
    invalid_arg "Segmented.make: hot_file_bias must be >= 1";
  (* Skewed file popularity: file f gets weight bias^-f. *)
  let weights =
    Array.init n_files (fun f -> hot_file_bias ** float_of_int (-f))
  in
  let assignment = Hashtbl.create n_people in
  let sizes = Array.make n_files 0 in
  let people =
    Array.init n_people (fun i ->
        let name = Printf.sprintf "person%d" (i + 1) in
        let f = Stats.Rng.categorical rng weights in
        Hashtbl.add assignment name f;
        sizes.(f) <- sizes.(f) + 1;
        name)
  in
  let costs =
    Array.init n_files (fun f -> 1.0 +. float_of_int sizes.(f))
  in
  let b = Graph.Builder.create "record(P)" in
  for f = 0 to n_files - 1 do
    ignore
      (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b)
         ~cost:costs.(f)
         ~label:(Printf.sprintf "file%d" f)
         ())
  done;
  { graph = Graph.Builder.finish b; n_files; people; assignment; costs }

let graph t = t.graph
let n_files t = t.n_files
let file_of t person = Hashtbl.find_opt t.assignment person
let costs t = Array.copy t.costs

let context_for t person =
  let unblocked = Array.make (Graph.n_arcs t.graph) false in
  (match file_of t person with
  | Some f -> unblocked.(f) <- true (* arc ids equal file index here *)
  | None -> ());
  Context.make t.graph ~unblocked

let person_distribution ?(skew = 1.5) t =
  (* Zipf over people, independent of file assignment. *)
  Stats.Distribution.create
    (Array.to_list
       (Array.mapi
          (fun i person -> (person, (1.0 /. float_of_int (i + 1)) ** skew))
          t.people))

let context_distribution ?skew t =
  Stats.Distribution.map (context_for t) (person_distribution ?skew t)

let oracle ?skew t rng =
  let dist = person_distribution ?skew t in
  Core.Oracle.of_fn t.graph (fun () ->
      context_for t (Stats.Distribution.sample dist rng))

let independent_model ?skew t =
  let dist = person_distribution ?skew t in
  let p = Array.make (Graph.n_arcs t.graph) 0. in
  List.iter
    (fun (person, prob) ->
      match file_of t person with
      | Some f -> p.(f) <- p.(f) +. prob
      | None -> ())
    (Stats.Distribution.to_alist dist);
  Bernoulli_model.make t.graph ~p
