(** Figure 2's larger inference graph G_B.

    Rule base (query form [g^(b)]):
    {v
      g(X) :- a(X).   g(X) :- s(X).
      s(X) :- b(X).   s(X) :- t(X).
      t(X) :- c(X).   t(X) :- d(X).
    v}
    Ten arcs: ⟨R_ga D_a R_gs R_sb D_b R_st R_tc D_c R_td D_d⟩ in the
    default (Θ_ABCD) order. *)

open Infgraph
open Strategy

val rules_text : string
val build : unit -> Build.result

(** Equation 4's Θ_ABCD: depth-first, left-to-right (the default). *)
val theta_abcd : Build.result -> Spec.dfs

(** Θ_ABDC: D before C under node T. *)
val theta_abdc : Build.result -> Spec.dfs

(** Θ_ACDB: the T subtree before B under node S. *)
val theta_acdb : Build.result -> Spec.dfs

(** Independent model from leaf probabilities. *)
val model :
  Build.result -> pa:float -> pb:float -> pc:float -> pd:float ->
  Bernoulli_model.t

(** The Section 3.2 motivating situation: D_a, D_b, D_c rarely succeed and
    D_d usually does — ⟨0.05, 0.05, 0.1, 0.8⟩. *)
val model_d_heavy : Build.result -> Bernoulli_model.t
