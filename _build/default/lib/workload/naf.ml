module D = Datalog
open Infgraph

type t = {
  graph : Graph.t;
  categories : (string * float * float) list;
  db : D.Database.t;
  people : string list;
  paupers : (string, unit) Hashtbl.t;
  ownership : (string * string, unit) Hashtbl.t; (* (person, category) *)
}

let make ~rng ~categories ~n_people ~pauper_fraction () =
  if categories = [] then invalid_arg "Naf.make: no categories";
  if pauper_fraction < 0. || pauper_fraction > 1. then
    invalid_arg "Naf.make: pauper_fraction out of range";
  let db = D.Database.create () in
  let paupers = Hashtbl.create 16 in
  let ownership = Hashtbl.create 64 in
  let people =
    List.init n_people (fun i ->
        let name = Printf.sprintf "citizen%d" (i + 1) in
        ignore (D.Database.add db (D.Atom.make "person" [ D.Term.const name ]));
        if Stats.Rng.bernoulli rng pauper_fraction then
          Hashtbl.add paupers name ()
        else begin
          (* A non-pauper owns each category independently; guarantee at
             least one possession so "non-pauper" is meaningful. *)
          let owned = ref false in
          List.iter
            (fun (cat, _cost, p) ->
              if Stats.Rng.bernoulli rng p then begin
                owned := true;
                Hashtbl.add ownership (name, cat) ();
                ignore
                  (D.Database.add db
                     (D.Atom.make ("owns_" ^ cat) [ D.Term.const name ]))
              end)
            categories;
          if not !owned then begin
            let cat, _, _ = List.hd categories in
            Hashtbl.add ownership (name, cat) ();
            ignore
              (D.Database.add db
                 (D.Atom.make ("owns_" ^ cat) [ D.Term.const name ]))
          end
        end;
        name)
  in
  let b = Graph.Builder.create "has_possession(P)" in
  List.iter
    (fun (cat, cost, _) ->
      ignore
        (Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~cost
           ~label:("owns_" ^ cat) ()))
    categories;
  { graph = Graph.Builder.finish b; categories; db; people; paupers; ownership }

let graph t = t.graph
let db t = t.db
let people t = t.people
let is_pauper t person = Hashtbl.mem t.paupers person

let program t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "pauper(X) :- person(X), not has_possession(X).\n";
  List.iter
    (fun (cat, _, _) ->
      Buffer.add_string buf
        (Printf.sprintf "has_possession(X) :- owns_%s(X).\n" cat))
    t.categories;
  Buffer.contents buf

let context_for t person =
  let unblocked = Array.make (Graph.n_arcs t.graph) false in
  List.iteri
    (fun i (cat, _, _) ->
      if Hashtbl.mem t.ownership (person, cat) then unblocked.(i) <- true)
    t.categories;
  Context.make t.graph ~unblocked

let context_distribution t =
  Stats.Distribution.uniform (List.map (context_for t) t.people)

let oracle t rng =
  let dist = context_distribution t in
  Core.Oracle.of_fn t.graph (fun () -> Stats.Distribution.sample dist rng)
