lib/workload/gb.ml: Bernoulli_model Build Datalog Graph Infgraph List Spec Strategy String
