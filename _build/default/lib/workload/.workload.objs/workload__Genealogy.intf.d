lib/workload/genealogy.mli: Build Context Core Datalog Infgraph Stats
