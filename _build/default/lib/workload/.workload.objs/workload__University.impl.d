lib/workload/university.ml: Bernoulli_model Build Datalog Float Graph Infgraph List Printf Spec Stats Strategy
