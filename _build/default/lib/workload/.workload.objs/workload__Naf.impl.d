lib/workload/naf.ml: Array Buffer Context Core Datalog Graph Hashtbl Infgraph List Printf Stats
