lib/workload/naf.mli: Context Core Datalog Graph Infgraph Stats
