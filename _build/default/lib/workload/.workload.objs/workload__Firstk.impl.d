lib/workload/firstk.ml: Array Bernoulli_model Enumerate Exec Float Graph Infgraph List Spec Strategy
