lib/workload/synth.mli: Bernoulli_model Datalog Graph Infgraph Stats
