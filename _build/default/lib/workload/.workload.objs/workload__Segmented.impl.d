lib/workload/segmented.ml: Array Bernoulli_model Context Core Graph Hashtbl Infgraph List Printf Stats
