lib/workload/gb.mli: Bernoulli_model Build Infgraph Spec Strategy
