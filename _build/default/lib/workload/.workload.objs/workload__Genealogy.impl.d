lib/workload/genealogy.ml: Build Context Core Datalog Infgraph List Printf Stats
