lib/workload/firstk.mli: Bernoulli_model Graph Infgraph Spec Strategy
