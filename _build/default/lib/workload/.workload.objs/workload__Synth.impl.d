lib/workload/synth.ml: Array Bernoulli_model Datalog Graph Infgraph List Printf Stats
