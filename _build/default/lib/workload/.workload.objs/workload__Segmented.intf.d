lib/workload/segmented.mli: Bernoulli_model Context Core Graph Infgraph Stats
