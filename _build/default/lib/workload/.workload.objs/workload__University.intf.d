lib/workload/university.mli: Bernoulli_model Build Datalog Infgraph Spec Stats Strategy
