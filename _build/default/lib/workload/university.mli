(** The paper's running example (Figure 1): the university knowledge base.

    Rule base: [instructor(X) :- prof(X).  instructor(X) :- grad(X).]
    Query form: [instructor^(b)].

    Two strategies: Θ₁ = ⟨R_p D_p R_g D_g⟩ (prof first, the graph's
    default) and Θ₂ = ⟨R_g D_g R_p D_p⟩.

    Section 2's quantities: with the query mix 60% [instructor(russ)]
    (a prof), 15% [instructor(manolis)] (a grad), 25% [instructor(fred)]
    (neither), the retrieval success probabilities are p_prof = 0.60 and
    p_grad = 0.15, and the two expected costs are 2.8 and 3.7.
    (The paper's §2 prints the two values against swapped labels — its own
    per-context costs c(Θ₁,I₂) = 2 with 60% weight on I₂ force
    C[Θ₁] = 2.8; see EXPERIMENTS.md E1.) *)

open Infgraph
open Strategy

val rules_text : string

val rulebase : unit -> Datalog.Rulebase.t

(** DB₁ of Figure 1: [prof(russ)], [grad(manolis)] (fred in neither). *)
val db1 : unit -> Datalog.Database.t

(** The Section 2 DB₂: [n_prof] prof facts and [n_grad] grad facts
    (defaults 2000 / 500) over synthetic constants, plus DB₁'s people. *)
val db2 : ?n_prof:int -> ?n_grad:int -> unit -> Datalog.Database.t

(** Inference graph for [instructor^(b)] (G_A). *)
val build : unit -> Build.result

(** Θ₁: prof first. *)
val theta1 : Build.result -> Spec.dfs

(** Θ₂: grad first. *)
val theta2 : Build.result -> Spec.dfs

(** The ⟨p_prof, p_grad⟩ = ⟨0.60, 0.15⟩ independent model. *)
val model_section2 : Build.result -> Bernoulli_model.t

(** The Section 4 example model ⟨p_p, p_g⟩ = ⟨0.2, 0.6⟩. *)
val model_section4 : Build.result -> Bernoulli_model.t

(** The Section 2 query mix as ⟨query, database⟩ pairs over DB₁:
    60% russ / 15% manolis / 25% fred. *)
val query_mix_section2 :
  Build.result -> (Datalog.Atom.t * Datalog.Database.t) Stats.Distribution.t

(** The "minors" adversarial mix (Section 2): queries mention only people
    absent from [prof]; [grad_fraction] of the query mass falls on people
    with [grad] facts (default 0.6). Returns the mix and the database it
    runs against (DB₂ extended with the minors' grad facts). *)
val minors_mix :
  ?grad_fraction:float ->
  ?n_minors:int ->
  Build.result ->
  (Datalog.Atom.t * Datalog.Database.t) Stats.Distribution.t
  * Datalog.Database.t
