open Infgraph

type t = { graph : Graph.t; gen : unit -> Context.t; mutable drawn : int }

let graph t = t.graph

let next t =
  t.drawn <- t.drawn + 1;
  t.gen ()

let drawn t = t.drawn

let of_fn graph gen = { graph; gen; drawn = 0 }

let of_model model rng =
  of_fn (Bernoulli_model.graph model) (fun () ->
      Bernoulli_model.sample model rng)

let of_distribution graph dist rng =
  of_fn graph (fun () -> Stats.Distribution.sample dist rng)

let of_queries graph dist rng =
  of_fn graph (fun () ->
      let query, db = Stats.Distribution.sample dist rng in
      Context.of_db graph ~query ~db)
