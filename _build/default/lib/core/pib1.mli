(** PIB₁ — the one-shot statistical filter (Section 3.1).

    PIB₁ guards a single proposed modification: interchanging two sibling
    arcs [r1] (visited earlier) and [r2] (visited immediately after). It
    keeps the paper's three counters while the query processor runs the
    current strategy Θ:

    - [m]  — number of contexts observed;
    - [k1] — contexts whose solution was found under [r1];
    - [k2] — contexts whose solution was found under [r2] (hence after
      exhausting [r1]'s subtree without success).

    The swap is approved when Equation 3 holds:
    [k2·f*(r1) − k1·f*(r2) ≥ (f*(r1)+f*(r2)) · sqrt((m/2)·ln(1/δ))],
    which certifies, with confidence 1−δ, that the swapped strategy has
    strictly lower expected cost.

    The two arcs must be {e adjacent} siblings in Θ's order — the setting
    in which the counter form of Δ̃ is exact; for arbitrary sibling pairs
    use {!Pib}, which replays traces instead. *)

open Strategy

type t

(** [create theta ~transform ~delta] — [transform] must swap adjacent
    siblings ([pos_j = pos_i + 1]); raises [Invalid_argument] otherwise,
    or if the graph is not simple disjunctive. *)
val create : Spec.dfs -> transform:Transform.t -> delta:float -> t

val theta : t -> Spec.dfs

(** The strategy the filter is contemplating, τ(Θ). *)
val theta' : t -> Spec.dfs

(** Record one execution of Θ. Raises [Invalid_argument] if the outcome's
    graph differs. *)
val observe : t -> Exec.outcome -> unit

(** Counters (m, k1, k2). *)
val counts : t -> int * int * int

(** Left-hand side of Equation 3: the Δ̃ sum [k2·f*(r1) − k1·f*(r2)]. *)
val delta_sum : t -> float

(** Right-hand side of Equation 3 at the current sample count. *)
val threshold : t -> float

(** Equation 3's verdict: [`Switch] approves τ(Θ). *)
val decision : t -> [ `Switch | `Keep ]
