(** Cost-difference estimation: Δ, Δ̃ and Δ̂ (Section 3).

    For strategies Θ (executed) and Θ′ (merely contemplated) and a context
    I, Δ[Θ,Θ′,I] = c(Θ,I) − c(Θ′,I). Running Θ′ to measure this would
    defeat the purpose, so PIB estimates it from Θ's execution trace alone:

    - Δ̃ (under-estimate): replay Θ′ on the {e pessimistic completion} of
      the observed context — every blockable arc Θ did not attempt is
      assumed blocked. Making retrievals fail can only increase a fixed
      strategy's cost, so c(Θ′, pess) ≥ c(Θ′, I) and Δ̃ ≤ Δ. This argument
      needs monotonicity, which holds exactly when reductions never block
      ({!Infgraph.Graph.simple_disjunctive}); [underestimate] refuses other
      graphs.
    - Δ̂ (over-estimate, used by PALO's stopping rule): the symmetric
      optimistic completion.

    Both are exact (Δ̃ = Δ = Δ̂) whenever Θ's trace already determines every
    arc Θ′ would attempt. *)

open Infgraph
open Strategy

(** Exact Δ[Θ, Θ′, I] — for tests and paired baselines (runs both). *)
val exact : Spec.t -> Spec.t -> Context.t -> float

(** Δ̃ from Θ's outcome. [k] is the satisficing stopping count (Section
    5.2's first-k variant; default 1) — the outcome must come from the
    same [k]. Monotonicity (more successes never raise a fixed strategy's
    cost) holds for every [k], so the completion argument is unchanged.
    Raises [Invalid_argument] if the graph is not simple disjunctive. *)
val underestimate : ?k:int -> theta:Spec.t -> theta':Spec.t -> Exec.outcome -> float

(** Δ̂ from Θ's outcome (same restriction). *)
val overestimate : ?k:int -> theta:Spec.t -> theta':Spec.t -> Exec.outcome -> float

(** Can Δ̃/Δ̂ be used on this graph? *)
val sound_for : Graph.t -> bool
