(** The [Smi89] baseline the paper argues against (Section 2).

    Smith's approach estimates retrieval success probabilities from the
    {e distribution of facts in the database}: with 2000 [prof] facts and
    500 [grad] facts it assumes a [prof] lookup is 4× as likely to succeed
    as a [grad] lookup — regardless of which queries users actually ask.
    The paper's point is that nothing ties the query distribution to the
    fact distribution (the "minors" scenario: if users only ask about
    people who are in neither relation's majority, the ordering inverts).

    We implement the heuristic faithfully: each retrieval arc's estimated
    success probability is its predicate's fact count divided by the
    maximum count over the graph's retrieval predicates (so the best-
    supported predicate gets p̂ = 1 and ratios between predicates match
    Smith's likelihood ratios), and the strategy is Υ_AOT on those
    estimates. Only the ratios matter to the ordering. *)

open Infgraph
open Strategy

(** Fact-count probability estimates for a graph whose retrieval arcs carry
    patterns (i.e. built from a knowledge base).
    Raises [Invalid_argument] if some retrieval has no pattern. *)
val probabilities : Graph.t -> Datalog.Database.t -> Bernoulli_model.t

(** Υ_AOT over the fact-count estimates. *)
val strategy : Graph.t -> Datalog.Database.t -> Spec.dfs
