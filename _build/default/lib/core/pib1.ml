open Infgraph
open Strategy

type t = {
  theta : Spec.dfs;
  theta' : Spec.dfs;
  delta : float;
  f1 : float;  (* f*(r1) *)
  f2 : float;  (* f*(r2) *)
  under_r1 : bool array;  (* arc id -> lies in r1's subtree *)
  under_r2 : bool array;
  mutable m : int;
  mutable k1 : int;
  mutable k2 : int;
}

let create theta ~transform ~delta =
  if not (delta > 0. && delta < 1.) then
    invalid_arg "Pib1.create: delta must lie in (0,1)";
  if transform.Transform.pos_j <> transform.Transform.pos_i + 1 then
    invalid_arg "Pib1.create: the swapped siblings must be adjacent";
  let g = theta.Spec.graph in
  if not (Graph.simple_disjunctive g) then
    invalid_arg "Pib1.create: requires a simple disjunctive graph";
  let r1, r2 = Transform.arcs theta transform in
  let stars = Costs.f_star_all g in
  let mark ids =
    let a = Array.make (Graph.n_arcs g) false in
    List.iter (fun id -> a.(id) <- true) ids;
    a
  in
  {
    theta;
    theta' = Transform.apply theta transform;
    delta;
    f1 = stars.(r1);
    f2 = stars.(r2);
    under_r1 = mark (Graph.subtree_arcs g r1);
    under_r2 = mark (Graph.subtree_arcs g r2);
    m = 0;
    k1 = 0;
    k2 = 0;
  }

let theta t = t.theta
let theta' t = t.theta'

let observe t (outcome : Exec.outcome) =
  t.m <- t.m + 1;
  match outcome.Exec.success_arc with
  | Some arc when t.under_r1.(arc) -> t.k1 <- t.k1 + 1
  | Some arc when t.under_r2.(arc) -> t.k2 <- t.k2 + 1
  | Some _ | None -> ()

let counts t = (t.m, t.k1, t.k2)
let delta_sum t = (float_of_int t.k2 *. t.f1) -. (float_of_int t.k1 *. t.f2)

let threshold t =
  Stats.Chernoff.switch_threshold ~n:t.m ~delta:t.delta ~range:(t.f1 +. t.f2)

let decision t =
  if t.m > 0 && delta_sum t >= threshold t then `Switch else `Keep
