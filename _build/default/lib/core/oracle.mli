(** Context oracles.

    PIB and PAO both consume "an oracle that produces contexts drawn
    randomly from the distribution" (Section 3.1) — in practice the
    system's user posing queries. An oracle here is simply a generator of
    {!Infgraph.Context.t} values for a fixed graph. *)

open Infgraph

type t

val graph : t -> Graph.t

(** Draw the next context. *)
val next : t -> Context.t

(** Number of contexts drawn so far. *)
val drawn : t -> int

(** From the independent-arc model (the theorems' setting). *)
val of_model : Bernoulli_model.t -> Stats.Rng.t -> t

(** From an explicit finite distribution over contexts. *)
val of_distribution : Graph.t -> Context.t Stats.Distribution.t -> Stats.Rng.t -> t

(** From a distribution over concrete ⟨query, database⟩ pairs, for graphs
    built from a knowledge base: each draw evaluates the blocked set
    against the database ({!Infgraph.Context.of_db}). *)
val of_queries :
  Graph.t ->
  (Datalog.Atom.t * Datalog.Database.t) Stats.Distribution.t ->
  Stats.Rng.t ->
  t

(** Custom generator. *)
val of_fn : Graph.t -> (unit -> Context.t) -> t
