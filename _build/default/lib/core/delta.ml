open Infgraph
open Strategy

let exact theta theta' ctx =
  (Exec.run theta ctx).Exec.cost -. (Exec.run theta' ctx).Exec.cost

let sound_for = Graph.simple_disjunctive

let completion_estimate ~k ~complete ~theta ~theta' (outcome : Exec.outcome) =
  let g = Spec.graph theta in
  if Spec.graph theta' != g then
    invalid_arg "Delta: strategies are over different graphs";
  if not (sound_for g) then
    invalid_arg
      "Delta: the trace-based estimates are only sound for simple \
       disjunctive graphs";
  let partial = Exec.to_partial g outcome in
  let completed = complete partial in
  outcome.Exec.cost -. (Exec.first_k k theta' completed).Exec.cost

let underestimate ?(k = 1) ~theta ~theta' outcome =
  completion_estimate ~k ~complete:Context.Partial.pessimistic ~theta ~theta'
    outcome

let overestimate ?(k = 1) ~theta ~theta' outcome =
  completion_estimate ~k ~complete:Context.Partial.optimistic ~theta ~theta'
    outcome
