open Infgraph
open Strategy

type report = {
  strategy : Spec.dfs;
  p_hat : float array;
  aims : int array;
  reached : int array;
  successes : int array;
  targets : int array;
  contexts_used : int;
  sampling_cost : float;
  capped : bool;
}

let aim_targets g ~epsilon ~delta =
  let experiments = Graph.experiments g in
  let n = List.length experiments in
  let f_not = Costs.f_not_all g in
  let targets = Array.make (Graph.n_arcs g) 0 in
  List.iter
    (fun a ->
      let id = a.Graph.arc_id in
      targets.(id) <-
        Stats.Chernoff.aims_for_experiment ~n_experiments:n
          ~f_not:f_not.(id) ~epsilon ~delta)
    experiments;
  targets

let scaled_target scale target =
  if scale = 1.0 then target
  else max 1 (int_of_float (ceil (float_of_int target *. scale)))

let run ?(scale = 1.0) ?(max_contexts = 10_000_000) ~epsilon ~delta oracle =
  if scale <= 0. then invalid_arg "Pao_adaptive.run: scale must be positive";
  let g = Oracle.graph oracle in
  let n_arcs = Graph.n_arcs g in
  let targets = aim_targets g ~epsilon ~delta in
  let targets = Array.map (scaled_target scale) targets in
  List.iter
    (fun a ->
      if not a.Graph.blockable then targets.(a.Graph.arc_id) <- 0)
    (Graph.arcs g);
  let aims = Array.make n_arcs 0 in
  let reached = Array.make n_arcs 0 in
  let successes = Array.make n_arcs 0 in
  let deficit id = targets.(id) - aims.(id) in
  let neediest () =
    List.fold_left
      (fun best a ->
        let id = a.Graph.arc_id in
        match best with
        | Some b when deficit b >= deficit id -> best
        | _ -> if deficit id > 0 then Some id else best)
      None (Graph.experiments g)
  in
  let contexts = ref 0 in
  let cost = ref 0. in
  let aim_at target_arc ctx =
    (* Follow Π(target) ∪ {target} as far as possible, paying arc costs;
       every blockable arc on the path is aimed at; the ones before the
       first block are reached; the unblocked ones among those succeed. *)
    let path = Graph.path_to g target_arc in
    let blocked_seen = ref false in
    List.iter
      (fun arc_id ->
        let a = Graph.arc g arc_id in
        if not !blocked_seen then cost := !cost +. a.Graph.cost;
        if a.Graph.blockable then begin
          aims.(arc_id) <- aims.(arc_id) + 1;
          if not !blocked_seen then begin
            reached.(arc_id) <- reached.(arc_id) + 1;
            if Context.unblocked ctx arc_id then
              successes.(arc_id) <- successes.(arc_id) + 1
            else blocked_seen := true
          end
        end)
      path
  in
  let rec loop () =
    match neediest () with
    | None -> ()
    | Some target ->
      if !contexts >= max_contexts then ()
      else begin
        let ctx = Oracle.next oracle in
        incr contexts;
        aim_at target ctx;
        loop ()
      end
  in
  loop ();
  let p_hat =
    Array.init n_arcs (fun id ->
        let a = Graph.arc g id in
        if not a.Graph.blockable then 1.0
        else if reached.(id) = 0 then 0.5
        else float_of_int successes.(id) /. float_of_int reached.(id))
  in
  let model = Bernoulli_model.make g ~p:p_hat in
  let strategy, _ = Upsilon.aot model in
  {
    strategy;
    p_hat;
    aims;
    reached;
    successes;
    targets;
    contexts_used = !contexts;
    sampling_cost = !cost;
    capped = neediest () <> None;
  }
