open Infgraph
open Strategy

type report = {
  strategy : Spec.dfs;
  p_hat : float array;
  attempts : int array;
  successes : int array;
  targets : int array;
  contexts_used : int;
  sampling_cost : float;
  capped : bool;
}

let sample_targets g ~epsilon ~delta =
  let retrievals = Graph.retrievals g in
  let n = List.length retrievals in
  let f_not = Costs.f_not_all g in
  let targets = Array.make (Graph.n_arcs g) 0 in
  List.iter
    (fun a ->
      let id = a.Graph.arc_id in
      targets.(id) <-
        Stats.Chernoff.samples_for_retrieval ~n_retrievals:n
          ~f_not:f_not.(id) ~epsilon ~delta)
    retrievals;
  targets

let adaptive_strategy g ~deficits =
  let paths = Graph.leaf_paths g in
  let deficit_of path =
    match List.rev path with
    | last :: _ -> deficits.(last)
    | [] -> 0
  in
  let order =
    List.stable_sort
      (fun p1 p2 -> Int.compare (deficit_of p2) (deficit_of p1))
      paths
  in
  Spec.of_paths g order

let scaled_target scale target =
  if scale = 1.0 then target
  else max 1 (int_of_float (ceil (float_of_int target *. scale)))

let run ?(scale = 1.0) ?(max_contexts = 10_000_000) ?(upsilon = `Exact)
    ~epsilon ~delta oracle =
  if scale <= 0. then invalid_arg "Pao.run: scale must be positive";
  let g = Oracle.graph oracle in
  if not (Graph.simple_disjunctive g) then
    invalid_arg
      "Pao.run: requires a simple disjunctive graph (use Pao_adaptive for \
       experiment graphs)";
  let n_arcs = Graph.n_arcs g in
  let targets = sample_targets g ~epsilon ~delta in
  let targets = Array.map (scaled_target scale) targets in
  (* Reductions keep target 0. *)
  List.iter
    (fun a ->
      if a.Graph.kind = Graph.Reduction then targets.(a.Graph.arc_id) <- 0)
    (Graph.arcs g);
  let attempts = Array.make n_arcs 0 in
  let successes = Array.make n_arcs 0 in
  let deficit id = targets.(id) - attempts.(id) in
  let need_more () =
    List.exists (fun a -> deficit a.Graph.arc_id > 0) (Graph.retrievals g)
  in
  let contexts = ref 0 in
  let cost = ref 0. in
  while need_more () && !contexts < max_contexts do
    let deficits = Array.init n_arcs deficit in
    let spec = adaptive_strategy g ~deficits in
    let ctx = Oracle.next oracle in
    let outcome = Exec.run spec ctx in
    incr contexts;
    cost := !cost +. outcome.Exec.cost;
    List.iter
      (fun { Exec.arc_id; unblocked } ->
        attempts.(arc_id) <- attempts.(arc_id) + 1;
        if unblocked then successes.(arc_id) <- successes.(arc_id) + 1)
      outcome.Exec.observations
  done;
  let p_hat =
    Array.init n_arcs (fun id ->
        let a = Graph.arc g id in
        if not a.Graph.blockable then 1.0
        else if attempts.(id) = 0 then 0.5
        else float_of_int successes.(id) /. float_of_int attempts.(id))
  in
  let model = Bernoulli_model.make g ~p:p_hat in
  let strategy =
    match upsilon with
    | `Exact -> fst (Upsilon.aot model)
    | `Approx -> Upsilon.approx model
  in
  {
    strategy;
    p_hat;
    attempts;
    successes;
    targets;
    contexts_used = !contexts;
    sampling_cost = !cost;
    capped = need_more ();
  }
