(** PAO over general experiment graphs (Section 4.1, Theorem 3).

    When reduction arcs can themselves be blocked (e.g. the rule
    [grad(fred) :- admitted(fred, X)], applicable only to [fred] queries),
    some experiments may be unreachable in most contexts, so Theorem 2's
    "sample each retrieval m(d_i) times" is unobtainable. Theorem 3 fixes
    this by counting {e aims} instead: QPᴬ "attempts to reach e" by
    following the root path Π(e) as far as it can. Aiming at e also aims at
    every experiment on Π(e), and each aim yields either a sample of e (if
    reached) or evidence that ρ(e) is small — both reduce the error Υ can
    suffer (Lemma 1 weights errors by ρ(e)·F¬(e)).

    Per experiment, Equation 8's aim target:
    m'(e_i) = ⌈2 (√(2ε/(n·F¬[e_i]) + 1) − 1)⁻² ln(4n/δ)⌉.
    Estimates use p̂_i = n(e_i)/k(e_i), or 0.5 when e_i was never reached. *)

open Infgraph
open Strategy

type report = {
  strategy : Spec.dfs;
  p_hat : float array;
  aims : int array;     (** attempted reaches per arc *)
  reached : int array;  (** k(e): times the arc's source was reached *)
  successes : int array;  (** n(e): times the arc was unblocked *)
  targets : int array;  (** m'(e_i); 0 for non-blockable arcs *)
  contexts_used : int;
  sampling_cost : float;
  capped : bool;
}

(** Equation 8 targets per arc id (0 for non-blockable arcs). *)
val aim_targets : Graph.t -> epsilon:float -> delta:float -> int array

(** Run the aiming phase on any tree-shaped experiment graph. *)
val run :
  ?scale:float ->
  ?max_contexts:int ->
  epsilon:float ->
  delta:float ->
  Oracle.t ->
  report
