(** PAO — probably approximately optimal learning (Section 4, Theorem 2).

    PAO computes, per database retrieval d_i, the Equation 7 sample target
    m(d_i) = ⌈2 (n·F¬[d_i]/ε)² ln(2n/δ)⌉, then lets the adaptive query
    processor QPᴬ answer contexts until every retrieval has been attempted
    that many times. QPᴬ keeps one counter per retrieval and always begins
    with the retrieval whose remaining deficit is largest (Section 4.1), so
    no retrieval starves even when earlier ones always succeed. Finally it
    hands the observed frequencies p̂ to Υ_AOT; Theorem 2 guarantees
    C[Θ_pao] ≤ C[Θ_opt] + ε with probability ≥ 1−δ.

    Equation 7's PAC targets are astronomically conservative; [scale]
    multiplies them (documented "engineering mode" — the experiments show
    the ε-guarantee holds empirically at far smaller samples), and
    [max_contexts] caps the sampling phase, flagging the report
    [capped]. *)

open Infgraph
open Strategy

type report = {
  strategy : Spec.dfs;             (** Θ_pao = Υ_AOT(G, p̂) *)
  p_hat : float array;             (** per-arc estimates (1.0 non-blockable) *)
  attempts : int array;            (** per-arc attempt counts *)
  successes : int array;           (** per-arc success counts *)
  targets : int array;             (** per-arc m(d_i); 0 for reductions *)
  contexts_used : int;
  sampling_cost : float;           (** total execution cost of the phase *)
  capped : bool;                   (** sampling stopped by [max_contexts] *)
}

(** Equation 7 targets per arc id (0 for non-retrieval arcs). *)
val sample_targets : Graph.t -> epsilon:float -> delta:float -> int array

(** The strategy QPᴬ would use given per-arc deficits: retrieval paths in
    non-increasing deficit order. Exposed for tests. *)
val adaptive_strategy : Graph.t -> deficits:int array -> Spec.t

(** Run the sampling phase and return the learned strategy.

    [upsilon] selects the final optimizer: [`Exact] (Υ_AOT, the default)
    or [`Approx] (the greedy Υ̃ — the paper notes ([GO91] App. B) that
    polynomial near-optimal Υ̃ functions yield an efficient PAO variant
    for graph classes where exact Υ is intractable).

    Raises [Invalid_argument] unless the graph is simple disjunctive
    (blockable reductions need {!Pao_adaptive}). *)
val run :
  ?scale:float ->
  ?max_contexts:int ->
  ?upsilon:[ `Exact | `Approx ] ->
  epsilon:float ->
  delta:float ->
  Oracle.t ->
  report
