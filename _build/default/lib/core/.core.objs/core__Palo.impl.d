lib/core/palo.ml: Exec List Logs Moves Oracle Pib Spec Stats Strategy
