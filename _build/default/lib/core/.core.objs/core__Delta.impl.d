lib/core/delta.ml: Context Exec Graph Infgraph Spec Strategy
