lib/core/oracle.ml: Bernoulli_model Context Graph Infgraph Stats
