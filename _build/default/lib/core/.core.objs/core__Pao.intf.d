lib/core/pao.mli: Graph Infgraph Oracle Spec Strategy
