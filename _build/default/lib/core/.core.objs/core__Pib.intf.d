lib/core/pib.mli: Context Exec Infgraph Moves Oracle Spec Strategy
