lib/core/pib1.ml: Array Costs Exec Graph Infgraph List Spec Stats Strategy Transform
