lib/core/monitor.ml: Context Exec Infgraph List Oracle Palo Pib Spec Strategy
