lib/core/oracle.mli: Bernoulli_model Context Datalog Graph Infgraph Stats
