lib/core/pao_adaptive.mli: Graph Infgraph Oracle Spec Strategy
