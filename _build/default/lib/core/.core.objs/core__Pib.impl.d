lib/core/pib.ml: Delta Exec Graph Infgraph List Logs Moves Oracle Spec Stats Strategy
