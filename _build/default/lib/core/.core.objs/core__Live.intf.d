lib/core/live.mli: Datalog Infgraph Pib Strategy
