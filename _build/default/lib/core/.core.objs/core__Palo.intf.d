lib/core/palo.mli: Context Exec Infgraph Moves Oracle Pib Spec Strategy
