lib/core/live.ml: Array Build Context Datalog Exec Graph Hashtbl Infgraph Int List Pib Queue Spec Strategy
