lib/core/smith.ml: Array Bernoulli_model Datalog Graph Infgraph List Printf Strategy Upsilon
