lib/core/pao.ml: Array Bernoulli_model Costs Exec Graph Infgraph Int List Oracle Spec Stats Strategy Upsilon
