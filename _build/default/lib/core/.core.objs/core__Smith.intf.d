lib/core/smith.mli: Bernoulli_model Datalog Graph Infgraph Spec Strategy
