lib/core/delta.mli: Context Exec Graph Infgraph Spec Strategy
