lib/core/pib1.mli: Exec Spec Strategy Transform
