lib/core/monitor.mli: Context Exec Infgraph Oracle Palo Pib Spec Strategy
