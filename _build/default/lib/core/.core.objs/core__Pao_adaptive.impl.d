lib/core/pao_adaptive.ml: Array Bernoulli_model Context Costs Graph Infgraph List Oracle Spec Stats Strategy Upsilon
