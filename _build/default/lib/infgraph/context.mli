(** Query-processing contexts (Section 2.1, Note 2).

    A context I = ⟨q, DB⟩ determines, for each blockable arc, whether it is
    blocked. Since the cost of running any strategy on a context depends
    only on that blocked set, contexts are represented as the Note 2
    equivalence classes: a boolean per arc ([true] = traversable).

    [of_db] derives the blocked set of a concrete ⟨query, database⟩ pair for
    a graph built from a knowledge base; [Partial] represents the learner's
    incomplete knowledge after watching one execution, with the pessimistic
    and optimistic completions used by the Δ̃ / Δ̂ estimates. *)

type t

(** [make g ~unblocked] — [unblocked.(arc_id)] says the arc is traversable.
    Entries for non-blockable arcs are forced to [true]. *)
val make : Graph.t -> unblocked:bool array -> t

(** Every blockable arc blocked / unblocked. *)
val all_blocked : Graph.t -> t
val all_unblocked : Graph.t -> t

(** [of_db g ~query ~db] instantiates the graph's patterns with the query
    and tests each blockable arc against the database: a retrieval arc is
    unblocked iff some fact matches its instantiated pattern; a blockable
    reduction arc is unblocked iff its [pattern] (the rule-head instance)
    unifies with the instantiated goal of its source node.
    Raises [Invalid_argument] if the graph has no goal atom at the root or
    the query does not unify with it. *)
val of_db : Graph.t -> query:Datalog.Atom.t -> db:Datalog.Database.t -> t

val unblocked : t -> int -> bool
val blocked : t -> int -> bool

(** Arcs ids that are unblocked (including non-blockable arcs). *)
val unblocked_set : t -> int list

val equal : t -> t -> bool
val pp : Graph.t -> Format.formatter -> t -> unit

(** Partially observed contexts. *)
module Partial : sig
  type full := t
  type t

  (** Nothing observed. *)
  val unknown : Graph.t -> t

  (** Record an observation for an arc. Conflicting re-observation raises
      [Invalid_argument] (contexts are fixed within a run). *)
  val observe : t -> arc_id:int -> unblocked:bool -> unit

  val known : t -> int -> bool option

  (** Pessimistic completion: unobserved blockable arcs are blocked. *)
  val pessimistic : t -> full

  (** Optimistic completion: unobserved arcs are unblocked. *)
  val optimistic : t -> full

  (** Is [full] consistent with the observations? *)
  val consistent : t -> full -> bool
end
