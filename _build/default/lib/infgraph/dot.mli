(** Graphviz export — regenerates the paper's Figure 1 / Figure 2 drawings.

    Success nodes are drawn as boxes (as in the paper); retrieval arcs are
    dashed; blockable reduction arcs ("experiments") are dotted. *)

val to_string : ?name:string -> Graph.t -> string
val to_channel : ?name:string -> out_channel -> Graph.t -> unit
val to_file : ?name:string -> string -> Graph.t -> unit
