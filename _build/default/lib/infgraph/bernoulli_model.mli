(** The theory-side context distribution: independent arc successes.

    The paper's Υ functions and Theorems 2/3 assume the success
    probabilities of the experiments are independent of one another
    (footnote 8, footnote 12). This module is that model: each blockable
    arc [a] is unblocked with probability [p(a)], independently. It can
    sample contexts, enumerate them exactly (for exact expected costs on
    small graphs), and report the reachability probabilities ρ(e) of
    Definition 2. *)

type t

(** [make g ~p] where [p.(arc_id)] is the probability that the arc is
    unblocked. Entries for non-blockable arcs are forced to 1. Probabilities
    must lie in [0, 1]. *)
val make : Graph.t -> p:float array -> t

(** [uniform g p0] gives every blockable arc probability [p0]. *)
val uniform : Graph.t -> float -> t

(** [of_alist g assoc] builds [p] from [(arc label, probability)] pairs;
    unlisted blockable arcs get 0.5. *)
val of_alist : Graph.t -> (string * float) list -> t

val graph : t -> Graph.t
val prob : t -> int -> float
val probs : t -> float array

(** Replace one probability (returns a new model). *)
val set_prob : t -> int -> float -> t

(** Draw a context. *)
val sample : t -> Stats.Rng.t -> Context.t

(** Exact enumeration of the (context, probability) pairs over the
    blockable arcs. Raises [Invalid_argument] if there are more than
    [max_experiments] (default 20) blockable arcs. *)
val enumerate : ?max_experiments:int -> t -> (Context.t * float) list

(** Definition 2's ρ(e): the probability that the experiment [e] is
    reachable — i.e. that every arc strictly above it is unblocked (an
    adaptive strategy can always aim at [e], so the max over strategies is
    the product of the ancestors' success probabilities). *)
val rho : t -> int -> float

(** Probability that the whole search fails (no success node reachable). *)
val failure_prob : t -> float

(** Probability that a solution exists somewhere below the given arc
    (counting the arc itself). *)
val success_below : t -> int -> float
