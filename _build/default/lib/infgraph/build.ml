module D = Datalog

exception Not_disjunctive of D.Clause.t

type result = {
  graph : Graph.t;
  params : D.Term.var list;
  truncated : bool;
  rule_arcs : (int * D.Clause.t) list;
}

(* Intermediate pure tree, emitted into the builder once complete. *)
type pre_arc = {
  pkind : Graph.kind;
  plabel : string;
  pcost : float;
  pblockable : bool;
  ppattern : D.Atom.t option;
  pclause : D.Clause.t option; (* the unfolded rule, for reductions *)
  pchild : pre_node option; (* None for retrievals *)
}

and pre_node = { pgoal : D.Atom.t; parcs : pre_arc list }

let build ?(max_depth = 64) ?(cost_reduction = fun _ -> 1.0)
    ?(cost_retrieval = fun _ -> 1.0) ?(edb = []) ~rulebase ~query_form () =
  let truncated = ref false in
  let gen = ref 0 in
  let label_counts = Hashtbl.create 16 in
  let fresh_label base =
    let n = Option.value ~default:0 (Hashtbl.find_opt label_counts base) in
    Hashtbl.replace label_counts base (n + 1);
    if n = 0 then base else Printf.sprintf "%s#%d" base n
  in
  (* Parameter variables replace the bound (constant) positions of the
     query form; free positions keep their variables. *)
  let params = ref [] in
  let root_args =
    List.mapi
      (fun i t ->
        match t with
        | D.Term.Const _ ->
          let v = { D.Term.name = Printf.sprintf "Q%d" i; gen = 0 } in
          params := v :: !params;
          D.Term.Var v
        | D.Term.Var _ -> t)
      query_form.D.Atom.args
  in
  let params = List.rev !params in
  let root_goal = D.Atom.make_sym query_form.D.Atom.pred root_args in
  let param_set =
    List.fold_left (fun s v -> D.Term.Var_set.add v s) D.Term.Var_set.empty
      params
  in
  let is_edb pred =
    List.exists (fun name -> String.equal name (D.Symbol.to_string pred)) edb
  in
  let rec expand goal depth : pre_node option =
    let rules = D.Rulebase.rules_for rulebase goal.D.Atom.pred in
    let rule_arcs =
      if depth >= max_depth && rules <> [] then begin
        truncated := true;
        []
      end
      else
        List.filter_map
          (fun clause ->
            if D.Clause.is_fact clause then
              invalid_arg
                (Format.asprintf
                   "Build.build: fact %a belongs in the database, not the \
                    rule base"
                   D.Clause.pp clause);
            (match clause.D.Clause.body with
            | [ D.Clause.Pos _ ] -> ()
            | _ -> raise (Not_disjunctive clause));
            incr gen;
            let renamed = D.Clause.rename !gen clause in
            match
              D.Subst.unify_atoms renamed.D.Clause.head goal D.Subst.empty
            with
            | None -> None
            | Some s ->
              let body_atom =
                match renamed.D.Clause.body with
                | [ D.Clause.Pos a ] -> D.Subst.apply_atom s a
                | _ -> assert false
              in
              (* The arc is context-dependent iff unifying constrained a
                 parameter variable (bound it to a constant). *)
              let blockable =
                List.exists
                  (fun (v, t) ->
                    D.Term.Var_set.mem v param_set && D.Term.is_const t)
                  (D.Subst.to_alist s)
              in
              (match expand body_atom (depth + 1) with
              | None -> None
              | Some child ->
                Some
                  {
                    pkind = Graph.Reduction;
                    plabel =
                      fresh_label
                        (Printf.sprintf "R_%s_%s"
                           (D.Symbol.to_string goal.D.Atom.pred)
                           (D.Symbol.to_string body_atom.D.Atom.pred));
                    pcost = cost_reduction clause;
                    pblockable = blockable;
                    ppattern =
                      (if blockable then Some renamed.D.Clause.head else None);
                    pclause = Some clause;
                    pchild = Some child;
                  }))
          rules
    in
    let retrieval_arcs =
      if rules = [] || is_edb goal.D.Atom.pred then
        [
          {
            pkind = Graph.Retrieval;
            plabel =
              fresh_label
                (Printf.sprintf "D_%s" (D.Symbol.to_string goal.D.Atom.pred));
            pcost = cost_retrieval goal;
            pblockable = true;
            ppattern = Some goal;
            pclause = None;
            pchild = None;
          };
        ]
      else []
    in
    match rule_arcs @ retrieval_arcs with
    | [] -> None
    | arcs -> Some { pgoal = goal; parcs = arcs }
  in
  match expand root_goal 0 with
  | None ->
    invalid_arg "Build.build: the query form has no derivations at all"
  | Some pre_root ->
    let b = Graph.Builder.create ~goal:pre_root.pgoal
        (D.Atom.to_string pre_root.pgoal)
    in
    let rule_arcs = ref [] in
    let rec emit node_id pre =
      List.iter
        (fun pa ->
          match (pa.pkind, pa.pchild) with
          | Graph.Retrieval, None ->
            ignore
              (Graph.Builder.add_retrieval b ~src:node_id ~cost:pa.pcost
                 ?pattern:pa.ppattern ~label:pa.plabel ())
          | Graph.Reduction, Some child ->
            let child_id =
              Graph.Builder.add_node b ~goal:child.pgoal
                (D.Atom.to_string child.pgoal)
            in
            let arc_id =
              Graph.Builder.add_arc b ~src:node_id ~dst:child_id
                ~cost:pa.pcost ~blockable:pa.pblockable ?pattern:pa.ppattern
                ~label:pa.plabel Graph.Reduction
            in
            (match pa.pclause with
            | Some clause -> rule_arcs := (arc_id, clause) :: !rule_arcs
            | None -> ());
            emit child_id child
          | _ -> assert false)
        pre.parcs
    in
    emit (Graph.Builder.root b) pre_root;
    {
      graph = Graph.Builder.finish b;
      params;
      truncated = !truncated;
      rule_arcs = List.rev !rule_arcs;
    }

let query_of_consts result consts =
  if List.length consts <> List.length result.params then
    invalid_arg "Build.query_of_consts: wrong number of constants";
  let root_goal =
    match (Graph.node result.graph (Graph.root result.graph)).Graph.goal with
    | Some g -> g
    | None -> assert false
  in
  let assoc = List.combine result.params consts in
  let args =
    List.map
      (fun t ->
        match t with
        | D.Term.Var v -> (
          match
            List.find_opt (fun (pv, _) -> D.Term.equal_var pv v) assoc
          with
          | Some (_, c) -> D.Term.const c
          | None -> t)
        | D.Term.Const _ -> t)
      root_goal.D.Atom.args
  in
  D.Atom.make_sym root_goal.D.Atom.pred args
