lib/infgraph/bernoulli_model.mli: Context Graph Stats
