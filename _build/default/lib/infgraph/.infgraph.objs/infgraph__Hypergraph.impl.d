lib/infgraph/hypergraph.ml: Datalog Float Format List Stats
