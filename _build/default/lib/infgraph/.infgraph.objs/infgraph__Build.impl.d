lib/infgraph/build.ml: Datalog Format Graph Hashtbl List Option Printf String
