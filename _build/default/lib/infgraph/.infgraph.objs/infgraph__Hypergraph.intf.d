lib/infgraph/hypergraph.mli: Datalog Format Stats
