lib/infgraph/context.ml: Array Datalog Format Graph List Printf String
