lib/infgraph/costs.mli: Graph
