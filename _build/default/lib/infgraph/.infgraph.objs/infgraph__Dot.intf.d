lib/infgraph/dot.mli: Graph
