lib/infgraph/graph.ml: Array Datalog Format List Printf String
