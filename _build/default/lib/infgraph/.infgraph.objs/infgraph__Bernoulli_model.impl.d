lib/infgraph/bernoulli_model.ml: Array Context Graph List Printf Stats
