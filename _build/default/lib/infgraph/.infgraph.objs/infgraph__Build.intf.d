lib/infgraph/build.mli: Datalog Graph
