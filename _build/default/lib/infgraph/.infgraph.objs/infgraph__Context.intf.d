lib/infgraph/context.mli: Datalog Format Graph
