lib/infgraph/serial.ml: Array Bernoulli_model Buffer Datalog Format Fun Graph List Printf Scanf String
