lib/infgraph/dot.ml: Buffer Fun Graph List Printf String
