lib/infgraph/serial.mli: Bernoulli_model Graph
