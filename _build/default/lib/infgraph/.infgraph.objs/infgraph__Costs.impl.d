lib/infgraph/costs.ml: Array Graph List
