lib/infgraph/graph.mli: Datalog Format
