(** Cost functions over inference graphs (Note 5 of the paper).

    - [f] is the arc cost itself;
    - [f_star a] = sum of the costs of [a] and every arc below it;
    - [f_not a] ("F¬") = total cost of the arcs on the paths {e other} than
      the paths on which [a] appears — i.e. everything outside
      [path_to a ∪ subtree a];
    - [lambda_swap] = the range Λ of the cost difference between a strategy
      and its sibling-swap neighbour, [f*(r1) + f*(r2)] (Section 3.2). *)

val f : Graph.t -> int -> float

(** Sum of all arc costs in the graph. *)
val total : Graph.t -> float

(** [f_star g a] — cost of the subtree hanging from arc [a], including [a].
    O(1) after the first call (computed once for all arcs). *)
val f_star : Graph.t -> int -> float

(** [f_not g a] — Note 5's F¬: [total g] minus the costs of the arcs on
    [path_to a] and in [subtree_arcs a]. *)
val f_not : Graph.t -> int -> float

(** [lambda_swap g r1 r2] — the range Λ[Θ, Θ'] when Θ' swaps sibling arcs
    [r1] and [r2]: [f_star r1 +. f_star r2].
    Raises [Invalid_argument] if the arcs are not siblings. *)
val lambda_swap : Graph.t -> int -> int -> float

(** All [f*] values, indexed by arc id (fresh array). *)
val f_star_all : Graph.t -> float array

(** All [F¬] values, indexed by arc id (fresh array). *)
val f_not_all : Graph.t -> float array
