(** Construct the inference graph of a rule base for a query form.

    The root is the query-form goal, e.g. [instructor(Q)] for the form
    [instructor^(b)]: bound argument positions hold distinguished
    "parameter" variables that each concrete context instantiates. A goal
    node is expanded by:

    - one [Reduction] arc per rule whose head unifies with the goal; the
      arc is blockable iff the unification constrains the goal's parameters
      (e.g. the head [grad(fred)] against goal [grad(Q)] — the Section 4.1
      experiment arcs);
    - one [Retrieval] arc (into a success box) if the goal's predicate
      occurs in the database schema (is extensional, or is listed in
      [edb]).

    Only *simple disjunctive* rules (at most one body literal) fit
    tree-shaped graphs; rules with conjunctive bodies raise
    [Not_disjunctive] — use {!Hypergraph} for those. Recursive rule bases
    are unfolded to [max_depth]; if the bound is hit the result is flagged
    [truncated]. *)

exception Not_disjunctive of Datalog.Clause.t

type result = {
  graph : Graph.t;
  params : Datalog.Term.var list;  (** parameter variables, by position *)
  truncated : bool;  (** some branch was cut by [max_depth] *)
  rule_arcs : (int * Datalog.Clause.t) list;
      (** each reduction arc with the source rule it unfolds — the hook a
          live query processor needs to turn a strategy's child order back
          into an SLD rule order (see {!Core.Live}) *)
}

(** [build ~rulebase ~query_form ()] — [query_form] is an atom pattern
    whose constant arguments mark bound positions (their values are
    irrelevant) and whose variables mark free positions, e.g.
    [instructor(q)] for [instructor^(b)].

    [cost_reduction] and [cost_retrieval] set arc costs (default:
    [fun _ -> 1.0], the paper's unit-cost convention).
    [edb] forces predicates to be treated as extensional even if rules
    define them as well. *)
val build :
  ?max_depth:int ->
  ?cost_reduction:(Datalog.Clause.t -> float) ->
  ?cost_retrieval:(Datalog.Atom.t -> float) ->
  ?edb:string list ->
  rulebase:Datalog.Rulebase.t ->
  query_form:Datalog.Atom.t ->
  unit ->
  result

(** [query_of_consts result atoms] builds the concrete query binding the
    parameters to the given constants (by position).
    Raises [Invalid_argument] on arity mismatch. *)
val query_of_consts : result -> string list -> Datalog.Atom.t
