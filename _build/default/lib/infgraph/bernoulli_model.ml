type t = { g : Graph.t; p : float array }

let make g ~p =
  if Array.length p <> Graph.n_arcs g then
    invalid_arg "Bernoulli_model.make: array size mismatch";
  let p =
    Array.mapi
      (fun id v ->
        if not (Graph.arc g id).Graph.blockable then 1.0
        else if v < 0. || v > 1. then
          invalid_arg "Bernoulli_model.make: probability out of range"
        else v)
      p
  in
  { g; p }

let uniform g p0 = make g ~p:(Array.make (Graph.n_arcs g) p0)

let of_alist g assoc =
  let p = Array.make (Graph.n_arcs g) 0.5 in
  List.iter
    (fun (label, v) ->
      let a = Graph.arc_by_label g label in
      p.(a.Graph.arc_id) <- v)
    assoc;
  make g ~p

let graph t = t.g
let prob t id = t.p.(id)
let probs t = Array.copy t.p

let set_prob t id v =
  let p = Array.copy t.p in
  p.(id) <- v;
  make t.g ~p

let sample t rng =
  Context.make t.g
    ~unblocked:(Array.map (fun p -> Stats.Rng.bernoulli rng p) t.p)

let enumerate ?(max_experiments = 20) t =
  let exps =
    List.filter_map
      (fun a ->
        if a.Graph.blockable then Some a.Graph.arc_id else None)
      (Graph.arcs t.g)
  in
  let k = List.length exps in
  if k > max_experiments then
    invalid_arg
      (Printf.sprintf
         "Bernoulli_model.enumerate: %d experiments exceed the limit %d" k
         max_experiments);
  let n = Graph.n_arcs t.g in
  let rec go exps base prob_acc =
    match exps with
    | [] -> [ (Context.make t.g ~unblocked:(Array.copy base), prob_acc) ]
    | e :: rest ->
      let p = t.p.(e) in
      let with_unblocked =
        if p > 0. then begin
          base.(e) <- true;
          go rest base (prob_acc *. p)
        end
        else []
      in
      let with_blocked =
        if p < 1. then begin
          base.(e) <- false;
          let r = go rest base (prob_acc *. (1. -. p)) in
          base.(e) <- true;
          r
        end
        else begin
          base.(e) <- true;
          []
        end
      in
      with_unblocked @ with_blocked
  in
  go exps (Array.make n true) 1.0

let rho t id =
  List.fold_left (fun acc a -> acc *. t.p.(a)) 1.0 (Graph.path_above t.g id)

let rec success_below_rec t id =
  let a = Graph.arc t.g id in
  match a.Graph.kind with
  | Graph.Retrieval -> t.p.(id)
  | Graph.Reduction ->
    let below =
      List.fold_left
        (fun fail c -> fail *. (1. -. success_below_rec t c))
        1.0
        (Graph.children t.g a.Graph.dst)
    in
    t.p.(id) *. (1. -. below)

let success_below = success_below_rec

let failure_prob t =
  List.fold_left
    (fun fail c -> fail *. (1. -. success_below t c))
    1.0
    (Graph.children t.g (Graph.root t.g))
