(** AND/OR directed hypergraphs — Note 4's extension for conjunctive rules.

    A rule [A :- B, C] becomes a hyper-arc from the goal [A] to the set
    {B, C}: the derivation must succeed on {e every} subgoal of some choice.
    This module models those graphs with independent leaf probabilities and
    provides depth-first strategies (an order of choices at each OR node and
    of subgoals inside each hyper-arc), their exact expected cost, and the
    recursive ratio-ordering optimizer:

    - OR choices are visited in non-increasing [P/C] (productivity) order;
    - AND subgoals in non-increasing [(1-P)/C] (fail-fast) order.

    Both rules are exchange-optimal, so the recursion is optimal within the
    depth-first class (the test suite checks this against brute force). *)

type t =
  | Retrieve of { label : string; cost : float; prob : float }
      (** database retrieval: attempt cost and success probability *)
  | Goal of { label : string; choices : choice list }
      (** OR node: any choice proves the goal *)

and choice = { hlabel : string; hcost : float; subgoals : t list }
    (** hyper-arc: pay [hcost], then prove every subgoal (left to right,
        abandoning the choice at the first failed subgoal) *)

val retrieve : ?label:string -> cost:float -> prob:float -> unit -> t
val goal : ?label:string -> choice list -> t
val choice : ?label:string -> ?cost:float -> t list -> choice

(** [of_rulebase ~rulebase ~query ~prob ~cost_rule ~cost_retrieval] unfolds
    a (possibly conjunctive) non-recursive rule base into an AND/OR tree for
    a ground query form; [prob] assigns each extensional predicate its
    retrieval success probability.
    Raises [Invalid_argument] on recursion deeper than [max_depth]. *)
val of_rulebase :
  ?max_depth:int ->
  ?cost_rule:(Datalog.Clause.t -> float) ->
  ?cost_retrieval:(Datalog.Atom.t -> float) ->
  rulebase:Datalog.Rulebase.t ->
  query:Datalog.Atom.t ->
  prob:(Datalog.Atom.t -> float) ->
  unit ->
  t

(** Exact (expected cost, success probability) of the depth-first execution
    in the tree's current order, assuming independent leaves. *)
val evaluate : t -> float * float

(** Recursively reorder to the ratio-optimal depth-first strategy. *)
val optimize : t -> t

(** Simulate one depth-first execution; returns (cost, success). *)
val simulate : t -> Stats.Rng.t -> float * bool

(** All reorderings of the tree (choices and subgoals). Exponential: guarded
    by [limit] (default 20000); raises [Invalid_argument] beyond it. *)
val all_orders : ?limit:int -> t -> t list

(** Number of leaves. *)
val n_leaves : t -> int

val pp : Format.formatter -> t -> unit
