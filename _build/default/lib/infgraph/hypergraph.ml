module D = Datalog

type t =
  | Retrieve of { label : string; cost : float; prob : float }
  | Goal of { label : string; choices : choice list }

and choice = { hlabel : string; hcost : float; subgoals : t list }

let retrieve ?(label = "retrieve") ~cost ~prob () =
  if cost <= 0. then invalid_arg "Hypergraph.retrieve: cost must be positive";
  if prob < 0. || prob > 1. then
    invalid_arg "Hypergraph.retrieve: probability out of range";
  Retrieve { label; cost; prob }

let goal ?(label = "goal") choices =
  if choices = [] then invalid_arg "Hypergraph.goal: no choices";
  Goal { label; choices }

let choice ?(label = "rule") ?(cost = 1.0) subgoals =
  if subgoals = [] then invalid_arg "Hypergraph.choice: no subgoals";
  if cost <= 0. then invalid_arg "Hypergraph.choice: cost must be positive";
  { hlabel = label; hcost = cost; subgoals }

let of_rulebase ?(max_depth = 64) ?(cost_rule = fun _ -> 1.0)
    ?(cost_retrieval = fun _ -> 1.0) ~rulebase ~query ~prob () =
  let gen = ref 0 in
  let rec expand goal_atom depth =
    if depth > max_depth then
      invalid_arg "Hypergraph.of_rulebase: max unfolding depth exceeded";
    let rules = D.Rulebase.rules_for rulebase goal_atom.D.Atom.pred in
    if rules = [] then
      Retrieve
        {
          label = D.Atom.to_string goal_atom;
          cost = cost_retrieval goal_atom;
          prob = prob goal_atom;
        }
    else
      let choices =
        List.filter_map
          (fun clause ->
            incr gen;
            let renamed = D.Clause.rename !gen clause in
            match
              D.Subst.unify_atoms renamed.D.Clause.head goal_atom D.Subst.empty
            with
            | None -> None
            | Some s ->
              let subgoals =
                List.map
                  (fun lit ->
                    match lit with
                    | D.Clause.Pos a ->
                      expand (D.Subst.apply_atom s a) (depth + 1)
                    | D.Clause.Neg _ ->
                      invalid_arg
                        "Hypergraph.of_rulebase: negation not supported")
                  renamed.D.Clause.body
              in
              if subgoals = [] then
                invalid_arg
                  "Hypergraph.of_rulebase: facts belong in the database"
              else
                Some
                  {
                    hlabel = D.Clause.to_string clause;
                    hcost = cost_rule clause;
                    subgoals;
                  })
          rules
      in
      if choices = [] then
        invalid_arg
          (Format.asprintf "Hypergraph.of_rulebase: no applicable rule for %a"
             D.Atom.pp goal_atom)
      else Goal { label = D.Atom.to_string goal_atom; choices }
  in
  expand query 0

let rec evaluate = function
  | Retrieve { cost; prob; _ } -> (cost, prob)
  | Goal { choices; _ } ->
    (* OR: visit choices until one succeeds. *)
    let cost, fail =
      List.fold_left
        (fun (cost, fail) ch ->
          let c, p = evaluate_choice ch in
          (cost +. (fail *. c), fail *. (1. -. p)))
        (0., 1.) choices
    in
    (cost, 1. -. fail)

and evaluate_choice ch =
  (* AND: pay the hyper-arc, then prove subgoals until one fails. *)
  let cost, succ =
    List.fold_left
      (fun (cost, succ) g ->
        let c, p = evaluate g in
        (cost +. (succ *. c), succ *. p))
      (ch.hcost, 1.) ch.subgoals
  in
  (cost, succ)

let rec optimize = function
  | Retrieve _ as t -> t
  | Goal { label; choices } ->
    let choices =
      List.map optimize_choice choices
      |> List.map (fun ch -> (ch, evaluate_choice ch))
      |> List.stable_sort (fun (_, (c1, p1)) (_, (c2, p2)) ->
             (* descending productivity P/C  <=>  p1*c2 > p2*c1 first *)
             Float.compare (p2 *. c1) (p1 *. c2))
      |> List.map fst
    in
    Goal { label; choices }

and optimize_choice ch =
  let subgoals =
    List.map optimize ch.subgoals
    |> List.map (fun g -> (g, evaluate g))
    |> List.stable_sort (fun (_, (c1, p1)) (_, (c2, p2)) ->
           (* descending fail-fast ratio (1-P)/C *)
           Float.compare ((1. -. p2) *. c1) ((1. -. p1) *. c2))
    |> List.map fst
  in
  { ch with subgoals }

let rec simulate t rng =
  match t with
  | Retrieve { cost; prob; _ } -> (cost, Stats.Rng.bernoulli rng prob)
  | Goal { choices; _ } ->
    let rec try_choices cost = function
      | [] -> (cost, false)
      | ch :: rest ->
        let c, ok = simulate_choice ch rng in
        let cost = cost +. c in
        if ok then (cost, true) else try_choices cost rest
    in
    try_choices 0. choices

and simulate_choice ch rng =
  let rec prove cost = function
    | [] -> (cost, true)
    | g :: rest ->
      let c, ok = simulate g rng in
      let cost = cost +. c in
      if ok then prove cost rest else (cost, false)
  in
  prove ch.hcost ch.subgoals

(* All interleavings of per-node orders. *)
let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y != x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let all_orders ?(limit = 20000) t =
  let rec go t =
    match t with
    | Retrieve _ -> [ t ]
    | Goal { label; choices } ->
      let choice_variants = List.map go_choice choices in
      (* cartesian product of per-choice variants *)
      let combos =
        List.fold_right
          (fun variants acc ->
            List.concat_map
              (fun v -> List.map (fun rest -> v :: rest) acc)
              variants)
          choice_variants [ [] ]
      in
      List.concat_map
        (fun combo ->
          List.map (fun perm -> Goal { label; choices = perm })
            (permutations combo))
        combos
  and go_choice ch =
    let sub_variants = List.map go ch.subgoals in
    let combos =
      List.fold_right
        (fun variants acc ->
          List.concat_map (fun v -> List.map (fun rest -> v :: rest) acc)
            variants)
        sub_variants [ [] ]
    in
    List.concat_map
      (fun combo ->
        List.map (fun perm -> { ch with subgoals = perm }) (permutations combo))
      combos
  in
  let result = go t in
  if List.length result > limit then
    invalid_arg "Hypergraph.all_orders: too many orderings";
  result

let rec n_leaves = function
  | Retrieve _ -> 1
  | Goal { choices; _ } ->
    List.fold_left
      (fun acc ch ->
        acc + List.fold_left (fun a g -> a + n_leaves g) 0 ch.subgoals)
      0 choices

let rec pp ppf = function
  | Retrieve { label; cost; prob } ->
    Format.fprintf ppf "%s(c=%g,p=%g)" label cost prob
  | Goal { label; choices } ->
    Format.fprintf ppf "@[<hov 2>%s{%a}@]" label
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " | ")
         pp_choice)
      choices

and pp_choice ppf ch =
  Format.fprintf ppf "@[<hov 2>%s:[%a]@]" ch.hlabel
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " & ")
       pp)
    ch.subgoals
