exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let graph_to_string g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "strategem-graph 1\n";
  Buffer.add_string buf (Printf.sprintf "root %d\n" (Graph.root g));
  List.iter
    (fun n ->
      Buffer.add_string buf
        (Printf.sprintf "node %d %S %s %s\n" n.Graph.node_id n.Graph.name
           (if n.Graph.success then "success" else "goal")
           (match n.Graph.goal with
           | Some atom -> Printf.sprintf "%S" (Datalog.Atom.to_string atom)
           | None -> "-")))
    (Graph.nodes g);
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "arc %d %d %d %s %S %.17g %b %s\n" a.Graph.arc_id
           a.Graph.src a.Graph.dst
           (match a.Graph.kind with
           | Graph.Reduction -> "reduction"
           | Graph.Retrieval -> "retrieval")
           a.Graph.label a.Graph.cost a.Graph.blockable
           (match a.Graph.pattern with
           | Some atom -> Printf.sprintf "%S" (Datalog.Atom.to_string atom)
           | None -> "-")))
    (Graph.arcs g);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

type parsed_node = { pid : int; pname : string; psuccess : bool; pgoal : string option }

type parsed_arc = {
  aid : int;
  asrc : int;
  adst : int;
  akind : Graph.kind;
  alabel : string;
  acost : float;
  ablockable : bool;
  apattern : string option;
}

let parse_atom_opt = function
  | None -> None
  | Some s -> (
    try Some (Datalog.Parser.parse_atom s)
    with _ -> fail "unparsable atom %S" s)

let graph_of_string input =
  let lines =
    String.split_on_char '\n' input
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  let root = ref (-1) in
  let nodes = ref [] in
  let arcs = ref [] in
  let opt_of_string s = if s = "-" then None else Some (Scanf.sscanf s "%S" Fun.id) in
  (match lines with
  | header :: _ when String.length header >= 15
                     && String.sub header 0 15 = "strategem-graph" -> ()
  | _ -> fail "missing strategem-graph header");
  List.iteri
    (fun lineno line ->
      if lineno = 0 || line = "end" then ()
      else
        try
          if String.length line > 5 && String.sub line 0 5 = "root " then
            Scanf.sscanf line "root %d" (fun r -> root := r)
          else if String.length line > 5 && String.sub line 0 5 = "node " then
            Scanf.sscanf line "node %d %S %s %s@\000" (fun pid pname kind rest ->
                nodes :=
                  {
                    pid;
                    pname;
                    psuccess =
                      (match kind with
                      | "success" -> true
                      | "goal" -> false
                      | k -> fail "bad node kind %S" k);
                    pgoal = opt_of_string (String.trim rest);
                  }
                  :: !nodes)
          else if String.length line > 4 && String.sub line 0 4 = "arc " then
            Scanf.sscanf line "arc %d %d %d %s %S %g %B %s@\000"
              (fun aid asrc adst kind alabel acost ablockable rest ->
                arcs :=
                  {
                    aid;
                    asrc;
                    adst;
                    akind =
                      (match kind with
                      | "reduction" -> Graph.Reduction
                      | "retrieval" -> Graph.Retrieval
                      | k -> fail "bad arc kind %S" k);
                    alabel;
                    acost;
                    ablockable;
                    apattern = opt_of_string (String.trim rest);
                  }
                  :: !arcs)
          else fail "unrecognized line %S" line
        with Scanf.Scan_failure m | Failure m ->
          fail "line %d: %s" (lineno + 1) m)
    lines;
  if !root < 0 then fail "no root line";
  let nodes = List.sort (fun a b -> compare a.pid b.pid) !nodes in
  let arcs = List.sort (fun a b -> compare a.aid b.aid) !arcs in
  (* Rebuild through the Builder to revalidate every structural invariant.
     The builder assigns ids in creation order, so create nodes and arcs in
     id order and check the ids match. *)
  (match nodes with
  | { pid = 0; _ } :: _ -> ()
  | _ -> fail "node 0 (the root) must be present");
  let b =
    match nodes with
    | first :: _ ->
      Graph.Builder.create
        ?goal:(parse_atom_opt first.pgoal)
        first.pname
    | [] -> fail "no nodes"
  in
  if !root <> 0 then fail "root must be node 0 in builder order";
  List.iteri
    (fun i n ->
      if i = 0 then ()
      else begin
        if n.pid <> i then fail "non-contiguous node ids";
        let id =
          if n.psuccess then Graph.Builder.add_success b n.pname
          else Graph.Builder.add_node b ?goal:(parse_atom_opt n.pgoal) n.pname
        in
        if id <> n.pid then fail "node id mismatch"
      end)
    nodes;
  try
    List.iteri
      (fun i a ->
        if a.aid <> i then fail "non-contiguous arc ids";
        let id =
          Graph.Builder.add_arc b ~src:a.asrc ~dst:a.adst ~cost:a.acost
            ~blockable:a.ablockable
            ?pattern:(parse_atom_opt a.apattern)
            ~label:a.alabel a.akind
        in
        if id <> a.aid then fail "arc id mismatch")
      arcs;
    Graph.Builder.finish b
  with Invalid_argument m -> fail "invalid graph: %s" m

let graph_to_file path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (graph_to_string g))

let graph_of_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> graph_of_string (really_input_string ic (in_channel_length ic)))

let model_to_string model =
  let g = Bernoulli_model.graph model in
  let buf = Buffer.create 256 in
  Buffer.add_string buf "strategem-model 1\n";
  List.iter
    (fun a ->
      Buffer.add_string buf
        (Printf.sprintf "prob %d %.17g\n" a.Graph.arc_id
           (Bernoulli_model.prob model a.Graph.arc_id)))
    (Graph.experiments g);
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let model_of_string g input =
  let p = Array.make (Graph.n_arcs g) 1.0 in
  String.split_on_char '\n' input
  |> List.map String.trim
  |> List.filter (fun l -> l <> "")
  |> List.iteri (fun lineno line ->
         if lineno = 0 then begin
           if
             not
               (String.length line >= 15
               && String.sub line 0 15 = "strategem-model")
           then fail "missing strategem-model header"
         end
         else if line = "end" then ()
         else
           try
             Scanf.sscanf line "prob %d %g" (fun id v ->
                 if id < 0 || id >= Graph.n_arcs g then
                   fail "arc id %d out of range" id;
                 p.(id) <- v)
           with Scanf.Scan_failure m -> fail "line %d: %s" (lineno + 1) m);
  try Bernoulli_model.make g ~p
  with Invalid_argument m -> fail "invalid model: %s" m
