(** Inference graphs (Section 2.1 of the paper).

    An inference graph [G = (N, A, S, f)] has a node per atomic goal, an arc
    per rule invocation ([Reduction]) or database retrieval ([Retrieval]),
    a set of success nodes, and a positive cost per arc. This module
    implements the tree-shaped class 𝒜𝒪𝒯 the paper's algorithms target:
    every node except the root has exactly one incoming arc (enforced at
    construction).

    Blocking: an arc may be [blockable] — whether it can be traversed
    depends on the context. Retrieval arcs are always blockable (the fact
    may be absent). Reduction arcs are blockable only in "experiment"
    graphs (Section 4.1, e.g. the [grad(fred) :- admitted(fred, X)] rule,
    which is blocked unless the query constant is [fred]). Attempting an
    arc always costs [f(arc)], traversable or not. Reaching a success node
    ends the search (satisficing). *)

type kind =
  | Reduction
  | Retrieval

type arc = {
  arc_id : int;
  src : int;
  dst : int;
  kind : kind;
  label : string;
  cost : float;
  blockable : bool;
  pattern : Datalog.Atom.t option;
      (** for graphs built from a knowledge base: the retrieval pattern
          (retrievals) or the instantiated rule head (reductions), used to
          decide blocking against a concrete database *)
}

type node = {
  node_id : int;
  name : string;
  success : bool;
  goal : Datalog.Atom.t option;  (** goal atom, for KB-derived graphs *)
}

type t

(** {1 Accessors} *)

val root : t -> int
val node : t -> int -> node
val arc : t -> int -> arc
val n_nodes : t -> int
val n_arcs : t -> int
val nodes : t -> node list
val arcs : t -> arc list

(** Outgoing arc ids of a node, in canonical (construction) order. *)
val children : t -> int -> int list

(** The arc entering a node ([None] for the root). *)
val parent_arc : t -> int -> int option

(** Arc ids on the path from the root down to and including [arc_id]. *)
val path_to : t -> int -> int list

(** The paper's Π(e): the arcs strictly above [arc_id]. *)
val path_above : t -> int -> int list

(** Arc ids in the subtree rooted at the destination of [arc_id]. *)
val subtree_arcs : t -> int -> int list

(** All retrieval arcs, in canonical order. *)
val retrievals : t -> arc list

(** All blockable arcs ("probabilistic experiments"), canonical order. *)
val experiments : t -> arc list

(** Leaf-to-root paths: for each retrieval arc, [path_to]. Canonical order. *)
val leaf_paths : t -> int list list

(** Is every reduction arc non-blockable (the "simple disjunctive" class,
    for which the Δ̃ underestimate is sound)? *)
val simple_disjunctive : t -> bool

(** Find an arc by label. Raises [Not_found]. *)
val arc_by_label : t -> string -> arc

val pp : Format.formatter -> t -> unit

(** {1 Construction} *)

module Builder : sig
  type graph := t
  type b

  (** [create name] starts a graph whose root node is named [name]. *)
  val create : ?goal:Datalog.Atom.t -> string -> b

  val root : b -> int

  (** Add an interior (goal) node. *)
  val add_node : b -> ?goal:Datalog.Atom.t -> string -> int

  (** Add a success (box) node. *)
  val add_success : b -> string -> int

  (** Add an arc. Child order at each node is the insertion order.
      Retrieval arcs must end in success nodes; [blockable] defaults to
      [true] for retrievals and [false] for reductions.
      Raises [Invalid_argument] on a second incoming arc (non-tree),
      non-positive cost, or a retrieval into a non-success node. *)
  val add_arc :
    b ->
    src:int ->
    dst:int ->
    ?cost:float ->
    ?blockable:bool ->
    ?pattern:Datalog.Atom.t ->
    ?label:string ->
    kind ->
    int

  (** Convenience: add a retrieval arc plus its success box under [src]. *)
  val add_retrieval :
    b ->
    src:int ->
    ?cost:float ->
    ?pattern:Datalog.Atom.t ->
    ?label:string ->
    unit ->
    int

  (** Validate and freeze. Raises [Invalid_argument] if some non-root node
      is unreachable, or a non-success leaf exists (a goal with no way to
      prove it would make every strategy equivalent below it). *)
  val finish : b -> graph
end
