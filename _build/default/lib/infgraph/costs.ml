let f g a = (Graph.arc g a).Graph.cost

let total g =
  List.fold_left (fun acc a -> acc +. a.Graph.cost) 0. (Graph.arcs g)

let compute_f_star g =
  let n = Graph.n_arcs g in
  let out = Array.make n 0. in
  let memo = Array.make n None in
  let rec go id =
    match memo.(id) with
    | Some v -> v
    | None ->
      let a = Graph.arc g id in
      let below =
        List.fold_left (fun acc c -> acc +. go c) 0. (Graph.children g a.dst)
      in
      let v = a.Graph.cost +. below in
      memo.(id) <- Some v;
      v
  in
  for id = 0 to n - 1 do
    out.(id) <- go id
  done;
  out

(* Graphs are immutable after Builder.finish, so the per-graph arrays are
   memoized (keyed by physical identity; one-slot cache — the learners
   work one graph at a time). Callers receive a copy so the cache cannot
   be corrupted. *)
let f_star_cache : (Graph.t * float array) option ref = ref None

let f_star_all g =
  let arr =
    match !f_star_cache with
    | Some (g', arr) when g' == g -> arr
    | _ ->
      let arr = compute_f_star g in
      f_star_cache := Some (g, arr);
      arr
  in
  Array.copy arr

let f_star g id = (f_star_all g).(id)

let f_not_all g =
  let tot = total g in
  let stars = f_star_all g in
  let n = Graph.n_arcs g in
  Array.init n (fun id ->
      let above =
        List.fold_left (fun acc a -> acc +. f g a) 0. (Graph.path_above g id)
      in
      tot -. above -. stars.(id))

let f_not g id = (f_not_all g).(id)

let lambda_swap g r1 r2 =
  let a1 = Graph.arc g r1 and a2 = Graph.arc g r2 in
  if a1.Graph.src <> a2.Graph.src then
    invalid_arg "Costs.lambda_swap: arcs are not siblings";
  let stars = f_star_all g in
  stars.(r1) +. stars.(r2)
