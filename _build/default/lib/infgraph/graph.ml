type kind =
  | Reduction
  | Retrieval

type arc = {
  arc_id : int;
  src : int;
  dst : int;
  kind : kind;
  label : string;
  cost : float;
  blockable : bool;
  pattern : Datalog.Atom.t option;
}

type node = {
  node_id : int;
  name : string;
  success : bool;
  goal : Datalog.Atom.t option;
}

type t = {
  nodes : node array;
  arcs : arc array;
  root : int;
  children : int list array;
  parent_arc : int option array;
}

let root t = t.root
let node t i = t.nodes.(i)
let arc t i = t.arcs.(i)
let n_nodes t = Array.length t.nodes
let n_arcs t = Array.length t.arcs
let nodes t = Array.to_list t.nodes
let arcs t = Array.to_list t.arcs
let children t i = t.children.(i)
let parent_arc t i = t.parent_arc.(i)

let path_to t arc_id =
  let rec up acc id =
    let a = t.arcs.(id) in
    let acc = id :: acc in
    match t.parent_arc.(a.src) with None -> acc | Some p -> up acc p
  in
  up [] arc_id

let path_above t arc_id =
  match path_to t arc_id with
  | [] -> []
  | path -> List.filter (fun id -> id <> arc_id) path

let subtree_arcs t arc_id =
  let rec down acc id =
    let a = t.arcs.(id) in
    List.fold_left down (id :: acc) (t.children.(a.dst))
  in
  List.rev (down [] arc_id)

let retrievals t =
  List.filter (fun a -> a.kind = Retrieval) (Array.to_list t.arcs)

let experiments t = List.filter (fun a -> a.blockable) (Array.to_list t.arcs)

let leaf_paths t = List.map (fun a -> path_to t a.arc_id) (retrievals t)

let simple_disjunctive t =
  Array.for_all (fun a -> a.kind = Retrieval || not a.blockable) t.arcs

let arc_by_label t label =
  match Array.find_opt (fun a -> String.equal a.label label) t.arcs with
  | Some a -> a
  | None -> raise Not_found

let pp ppf t =
  Format.fprintf ppf "@[<v>graph (%d nodes, %d arcs, root=%s)@,"
    (Array.length t.nodes) (Array.length t.arcs) t.nodes.(t.root).name;
  Array.iter
    (fun a ->
      Format.fprintf ppf "  %s: %s -%s-> %s (cost %g%s)@,"
        a.label t.nodes.(a.src).name
        (match a.kind with Reduction -> "R" | Retrieval -> "D")
        t.nodes.(a.dst).name a.cost
        (if a.blockable then ", blockable" else ""))
    t.arcs;
  Format.fprintf ppf "@]"

module Builder = struct
  type b = {
    mutable bnodes : node list; (* reversed *)
    mutable barcs : arc list; (* reversed *)
    mutable n_next : int;
    mutable a_next : int;
    broot : int;
  }

  let create ?goal name =
    let root_node = { node_id = 0; name; success = false; goal } in
    { bnodes = [ root_node ]; barcs = []; n_next = 1; a_next = 0; broot = 0 }

  let root b = b.broot

  let add_node_gen b ~success ?goal name =
    let id = b.n_next in
    b.n_next <- id + 1;
    b.bnodes <- { node_id = id; name; success; goal } :: b.bnodes;
    id

  let add_node b ?goal name = add_node_gen b ~success:false ?goal name
  let add_success b name = add_node_gen b ~success:true name

  let add_arc b ~src ~dst ?(cost = 1.0) ?blockable ?pattern ?label kind =
    if cost <= 0. then invalid_arg "Graph.Builder.add_arc: cost must be positive";
    if src < 0 || src >= b.n_next || dst < 0 || dst >= b.n_next then
      invalid_arg "Graph.Builder.add_arc: unknown node";
    if dst = b.broot then invalid_arg "Graph.Builder.add_arc: arc into root";
    if List.exists (fun a -> a.dst = dst) b.barcs then
      invalid_arg "Graph.Builder.add_arc: node already has an incoming arc";
    let dst_node = List.find (fun n -> n.node_id = dst) b.bnodes in
    (match kind with
    | Retrieval ->
      if not dst_node.success then
        invalid_arg "Graph.Builder.add_arc: retrieval must end in a success node"
    | Reduction ->
      if dst_node.success then
        invalid_arg "Graph.Builder.add_arc: reduction into a success node");
    let blockable =
      match blockable with
      | Some v ->
        if kind = Retrieval && not v then
          invalid_arg "Graph.Builder.add_arc: retrievals are always blockable"
        else v
      | None -> ( match kind with Retrieval -> true | Reduction -> false)
    in
    let id = b.a_next in
    b.a_next <- id + 1;
    let label =
      match label with
      | Some l -> l
      | None ->
        Printf.sprintf "%s%d"
          (match kind with Reduction -> "R" | Retrieval -> "D")
          id
    in
    b.barcs <- { arc_id = id; src; dst; kind; label; cost; blockable; pattern } :: b.barcs;
    id

  let add_retrieval b ~src ?cost ?pattern ?label () =
    let name =
      match label with Some l -> "[" ^ l ^ "]" | None -> "[success]"
    in
    let box = add_success b name in
    add_arc b ~src ~dst:box ?cost ?pattern ?label Retrieval

  let finish b =
    let nodes = Array.of_list (List.rev b.bnodes) in
    let arcs = Array.of_list (List.rev b.barcs) in
    let children = Array.make (Array.length nodes) [] in
    let parent = Array.make (Array.length nodes) None in
    Array.iter
      (fun a ->
        children.(a.src) <- a.arc_id :: children.(a.src);
        parent.(a.dst) <- Some a.arc_id)
      arcs;
    Array.iteri (fun i l -> children.(i) <- List.rev l) children;
    (* Reachability and leaf checks. *)
    Array.iter
      (fun n ->
        if n.node_id <> b.broot && parent.(n.node_id) = None then
          invalid_arg
            (Printf.sprintf "Graph.Builder.finish: node %S is unreachable" n.name);
        if (not n.success) && children.(n.node_id) = [] then
          invalid_arg
            (Printf.sprintf
               "Graph.Builder.finish: goal node %S has no outgoing arcs" n.name))
      nodes;
    { nodes; arcs; root = b.broot; children; parent_arc = parent }
end
