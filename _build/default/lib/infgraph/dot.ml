let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      if c = '"' || c = '\\' then Buffer.add_char buf '\\';
      Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_string ?(name = "inference_graph") g =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  rankdir=TB;\n  node [fontname=\"Helvetica\"];\n";
  List.iter
    (fun n ->
      let shape = if n.Graph.success then "box" else "ellipse" in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\", shape=%s];\n" n.Graph.node_id
           (escape n.Graph.name) shape))
    (Graph.nodes g);
  List.iter
    (fun a ->
      let style =
        match (a.Graph.kind, a.Graph.blockable) with
        | Graph.Retrieval, _ -> "dashed"
        | Graph.Reduction, true -> "dotted"
        | Graph.Reduction, false -> "solid"
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d -> n%d [label=\"%s (%g)\", style=%s];\n"
           a.Graph.src a.Graph.dst (escape a.Graph.label) a.Graph.cost style))
    (Graph.arcs g);
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let to_channel ?name oc g = output_string oc (to_string ?name g)

let to_file ?name path g =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> to_channel ?name oc g)
