module D = Datalog

type t = { g : Graph.t; unblocked : bool array }

let make g ~unblocked =
  if Array.length unblocked <> Graph.n_arcs g then
    invalid_arg "Context.make: array size mismatch";
  let a =
    Array.mapi
      (fun id u -> (not (Graph.arc g id).Graph.blockable) || u)
      unblocked
  in
  { g; unblocked = a }

let all_blocked g = make g ~unblocked:(Array.make (Graph.n_arcs g) false)
let all_unblocked g = make g ~unblocked:(Array.make (Graph.n_arcs g) true)

let of_db g ~query ~db =
  let root_goal =
    match (Graph.node g (Graph.root g)).Graph.goal with
    | Some goal -> goal
    | None -> invalid_arg "Context.of_db: graph has no goal atoms"
  in
  let subst =
    match D.Subst.unify_atoms root_goal query D.Subst.empty with
    | Some s -> s
    | None ->
      invalid_arg
        (Format.asprintf "Context.of_db: query %a does not match root goal %a"
           D.Atom.pp query D.Atom.pp root_goal)
  in
  let unblocked =
    Array.init (Graph.n_arcs g) (fun id ->
        let a = Graph.arc g id in
        if not a.Graph.blockable then true
        else
          match (a.Graph.kind, a.Graph.pattern) with
          | Graph.Retrieval, Some pattern ->
            let instance = D.Subst.apply_atom subst pattern in
            D.Database.first_match db instance <> None
          | Graph.Reduction, Some head ->
            let goal =
              match (Graph.node g a.Graph.src).Graph.goal with
              | Some goal -> D.Subst.apply_atom subst goal
              | None -> invalid_arg "Context.of_db: source node has no goal"
            in
            D.Subst.unify_atoms head goal D.Subst.empty <> None
          | _, None ->
            invalid_arg
              (Printf.sprintf "Context.of_db: blockable arc %s has no pattern"
                 a.Graph.label))
  in
  make g ~unblocked

let unblocked t id = t.unblocked.(id)
let blocked t id = not t.unblocked.(id)

let unblocked_set t =
  let acc = ref [] in
  for id = Array.length t.unblocked - 1 downto 0 do
    if t.unblocked.(id) then acc := id :: !acc
  done;
  !acc

let equal a b = a.unblocked = b.unblocked

let pp g ppf t =
  let blocked_labels =
    List.filter_map
      (fun a ->
        if t.unblocked.(a.Graph.arc_id) then None else Some a.Graph.label)
      (Graph.arcs g)
  in
  Format.fprintf ppf "{blocked: %s}" (String.concat ", " blocked_labels)

module Partial = struct
  type full = t

  type t = { g : Graph.t; state : bool option array }

  let unknown g = { g; state = Array.make (Graph.n_arcs g) None }

  let observe t ~arc_id ~unblocked =
    match t.state.(arc_id) with
    | None -> t.state.(arc_id) <- Some unblocked
    | Some prev ->
      if prev <> unblocked then
        invalid_arg "Context.Partial.observe: conflicting observation"

  let known t id = t.state.(id)

  let pessimistic t =
    make t.g
      ~unblocked:
        (Array.mapi
           (fun id st ->
             match st with
             | Some v -> v
             | None -> not (Graph.arc t.g id).Graph.blockable)
           t.state)

  let optimistic t =
    make t.g
      ~unblocked:
        (Array.map (fun st -> match st with Some v -> v | None -> true) t.state)

  let consistent t (full : full) =
    let ok = ref true in
    Array.iteri
      (fun id st ->
        match st with
        | Some v -> if full.unblocked.(id) <> v then ok := false
        | None -> ())
      t.state;
    !ok
end
