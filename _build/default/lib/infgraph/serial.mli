(** Text serialization for inference graphs and probability models.

    A small line-oriented format (versioned header, one node/arc per
    line, OCaml-style quoted strings) so that graphs built from a
    knowledge base — and the probability estimates a learner produced —
    can be saved and reloaded across sessions. Strategies are serialized
    by {!Strategy.Persist} on top of this.

    [graph_of_string (graph_to_string g)] reconstructs an identical graph
    (same ids, names, kinds, costs, patterns). *)

exception Parse_error of string

val graph_to_string : Graph.t -> string

(** Raises [Parse_error] on malformed input. *)
val graph_of_string : string -> Graph.t

val graph_to_file : string -> Graph.t -> unit
val graph_of_file : string -> Graph.t

(** Probabilities, one [prob <arc_id> <p>] line per blockable arc. *)
val model_to_string : Bernoulli_model.t -> string

(** Raises [Parse_error] if an arc id is out of range or a probability
    invalid for the given graph. *)
val model_of_string : Graph.t -> string -> Bernoulli_model.t
