let pi = 4.0 *. atan 1.0

let check_delta delta =
  if not (delta > 0. && delta < 1.) then
    invalid_arg "Chernoff: delta must lie in (0,1)"

let check_range range =
  if not (range > 0.) then invalid_arg "Chernoff: range must be positive"

let tail_bound ~n ~beta ~range =
  if n < 0 then invalid_arg "Chernoff.tail_bound: n < 0";
  if beta < 0. then invalid_arg "Chernoff.tail_bound: beta < 0";
  check_range range;
  exp (-2.0 *. float_of_int n *. (beta /. range) ** 2.0)

let deviation ~n ~delta ~range =
  if n <= 0 then invalid_arg "Chernoff.deviation: n <= 0";
  check_delta delta;
  check_range range;
  range *. sqrt (log (1.0 /. delta) /. (2.0 *. float_of_int n))

let switch_threshold ~n ~delta ~range =
  if n < 0 then invalid_arg "Chernoff.switch_threshold: n < 0";
  check_delta delta;
  check_range range;
  range *. sqrt (float_of_int n /. 2.0 *. log (1.0 /. delta))

let switch_threshold_k ~n ~delta ~k ~range =
  if k <= 0 then invalid_arg "Chernoff.switch_threshold_k: k <= 0";
  if n < 0 then invalid_arg "Chernoff.switch_threshold_k: n < 0";
  check_delta delta;
  check_range range;
  range *. sqrt (float_of_int n /. 2.0 *. log (float_of_int k /. delta))

let sequential_delta ~delta ~test_index =
  check_delta delta;
  if test_index < 1 then invalid_arg "Chernoff.sequential_delta: index < 1";
  let i = float_of_int test_index in
  6.0 /. (pi *. pi) *. delta /. (i *. i)

let switch_threshold_seq ~n ~delta ~test_index ~range =
  if n < 0 then invalid_arg "Chernoff.switch_threshold_seq: n < 0";
  check_delta delta;
  check_range range;
  if test_index < 1 then invalid_arg "Chernoff.switch_threshold_seq: index < 1";
  let i = float_of_int test_index in
  range *. sqrt (float_of_int n /. 2.0 *. log (i *. i *. pi *. pi /. (6.0 *. delta)))

(* Rounds a positive float up to an int, guarding against overflow on the
   astronomically large PAC sample sizes Equation 7 can produce. *)
let ceil_to_int x =
  if x >= float_of_int max_int then max_int else int_of_float (ceil x)

let samples_for_retrieval ~n_retrievals ~f_not ~epsilon ~delta =
  if n_retrievals <= 0 then invalid_arg "Chernoff.samples_for_retrieval: n <= 0";
  if f_not < 0. then invalid_arg "Chernoff.samples_for_retrieval: f_not < 0";
  if epsilon <= 0. then invalid_arg "Chernoff.samples_for_retrieval: epsilon <= 0";
  check_delta delta;
  if f_not = 0. then 0
  else
    let n = float_of_int n_retrievals in
    ceil_to_int (2.0 *. (n *. f_not /. epsilon) ** 2.0 *. log (2.0 *. n /. delta))

let aims_for_experiment ~n_experiments ~f_not ~epsilon ~delta =
  if n_experiments <= 0 then invalid_arg "Chernoff.aims_for_experiment: n <= 0";
  if f_not < 0. then invalid_arg "Chernoff.aims_for_experiment: f_not < 0";
  if epsilon <= 0. then invalid_arg "Chernoff.aims_for_experiment: epsilon <= 0";
  check_delta delta;
  if f_not = 0. then 0
  else
    let n = float_of_int n_experiments in
    let root = sqrt ((2.0 *. epsilon /. (n *. f_not)) +. 1.0) -. 1.0 in
    ceil_to_int (2.0 /. (root *. root) *. log (4.0 *. n /. delta))

let hoeffding_radius ~m ~delta =
  if m <= 0 then invalid_arg "Chernoff.hoeffding_radius: m <= 0";
  check_delta delta;
  sqrt (log (2.0 /. delta) /. (2.0 *. float_of_int m))

let samples_for_radius ~radius ~delta =
  if radius <= 0. then invalid_arg "Chernoff.samples_for_radius: radius <= 0";
  check_delta delta;
  ceil_to_int (log (2.0 /. delta) /. (2.0 *. radius *. radius))
