(** Sequential hypothesis-test bookkeeping.

    Section 3.2: a learner that re-tests "is the candidate better?" after
    successive batches of samples must spend confidence across the tests.
    The paper's schedule assigns the [i]-th test confidence
    [delta_i = (6/pi^2) delta / i^2], so the total false-positive probability
    is below [sum delta_i = delta]. This module tracks the running test index
    and hands out per-test deltas and Equation 6 thresholds.

    Figure 3 of the paper advances the index by the number of comparisons
    performed at once ([i <- i + |T(Theta_j)|]); [advance] takes that count. *)

type t

(** [create ~delta] with total confidence budget [delta] in (0,1). *)
val create : delta:float -> t

(** Total budget. *)
val delta : t -> float

(** Number of elementary tests charged so far. *)
val tests_used : t -> int

(** [advance t ~count] charges [count >= 1] elementary tests and returns the
    index [i] (after advancing) to use in Equation 6. *)
val advance : t -> count:int -> int

(** Per-test confidence at the current index (after the last [advance]);
    [delta] itself if no test has been charged yet. *)
val current_delta : t -> float

(** [threshold t ~n ~range] is Equation 6's right-hand side at the current
    test index for [n] samples and difference range [range]. Must be called
    after at least one [advance]. *)
val threshold : t -> n:int -> range:float -> float

(** Sum of the per-test deltas charged so far (always [<= delta]). *)
val spent : t -> float
