(** Deterministic, splittable pseudo-random number generator.

    The generator is splitmix64 (Steele, Lea & Flood, OOPSLA 2014). Every
    experiment in this repository threads an explicit [Rng.t] so that runs are
    reproducible bit-for-bit; [split] derives statistically independent
    streams for parallel or nested use. *)

type t

(** [create seed] returns a fresh generator. Equal seeds give equal streams. *)
val create : int64 -> t

(** [copy t] is an independent generator with the same current state. *)
val copy : t -> t

(** [split t] advances [t] and returns a new generator whose stream is
    independent of the remainder of [t]'s stream. *)
val split : t -> t

(** Next raw 64-bit value. *)
val bits64 : t -> int64

(** [int t n] is uniform on [0, n-1]. Raises [Invalid_argument] if [n <= 0]. *)
val int : t -> int -> int

(** [float t] is uniform on [0, 1). *)
val float : t -> float

(** [bernoulli t p] is [true] with probability [p] (clamped to [0,1]). *)
val bernoulli : t -> float -> bool

(** [categorical t weights] draws an index with probability proportional to
    its non-negative weight. Raises [Invalid_argument] on an empty or
    all-zero weight array. *)
val categorical : t -> float array -> int

(** [shuffle t a] permutes [a] in place, uniformly (Fisher-Yates). *)
val shuffle : t -> 'a array -> unit

(** [pick t l] is a uniformly random element of [l].
    Raises [Invalid_argument] on an empty list. *)
val pick : t -> 'a list -> 'a

(** [exponential t ~rate] draws from Exp(rate). *)
val exponential : t -> rate:float -> float

(** [uniform_in t ~lo ~hi] is uniform on [lo, hi). *)
val uniform_in : t -> lo:float -> hi:float -> float
