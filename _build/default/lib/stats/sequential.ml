type t = { delta : float; mutable used : int; mutable spent : float }

let create ~delta =
  if not (delta > 0. && delta < 1.) then
    invalid_arg "Sequential.create: delta must lie in (0,1)";
  { delta; used = 0; spent = 0. }

let delta t = t.delta
let tests_used t = t.used

let advance t ~count =
  if count < 1 then invalid_arg "Sequential.advance: count < 1";
  (* Charge each elementary test its own delta_i so [spent] tracks the true
     union bound, then report the final (most conservative) index. *)
  for _ = 1 to count do
    t.used <- t.used + 1;
    t.spent <-
      t.spent +. Chernoff.sequential_delta ~delta:t.delta ~test_index:t.used
  done;
  t.used

let current_delta t =
  if t.used = 0 then t.delta
  else Chernoff.sequential_delta ~delta:t.delta ~test_index:t.used

let threshold t ~n ~range =
  if t.used = 0 then invalid_arg "Sequential.threshold: no test charged yet";
  Chernoff.switch_threshold_seq ~n ~delta:t.delta ~test_index:t.used ~range

let spent t = t.spent
