(** Attempt/success counters.

    Section 5.1 of the paper stresses that PIB and PAO need only "one or two
    counters per retrieval": the number of times a query processor attempted
    a database retrieval and the number of times it succeeded. This module is
    that storage. *)

type t

val create : unit -> t

(** Number of attempts recorded so far. *)
val attempts : t -> int

(** Number of successful attempts recorded so far. *)
val successes : t -> int

(** Number of failed attempts recorded so far. *)
val failures : t -> int

(** Record one attempt and its outcome. *)
val record : t -> success:bool -> unit

(** Empirical success frequency. [default] (default [0.5], as in Theorem 3)
    is returned when no attempts have been recorded. *)
val frequency : ?default:float -> t -> float

val reset : t -> unit

(** Merge [src] into [dst] (for combining counters from separate runs). *)
val merge_into : dst:t -> src:t -> unit

val pp : Format.formatter -> t -> unit
