(** Frequency estimates with Hoeffding confidence radii. *)

type t = {
  mean : float;        (** empirical frequency [p_hat] *)
  samples : int;       (** number of observations it is based on *)
  radius : float;      (** confidence radius at the [delta] used to build it *)
}

(** [of_counter ?default c ~delta] turns an attempt/success counter into an
    estimate whose radius satisfies [Pr(|p_hat - p| > radius) <= delta].
    With zero samples the mean is [default] (0.5 per Theorem 3) and the
    radius is 1. *)
val of_counter : ?default:float -> Counter.t -> delta:float -> t

(** Same from raw counts. *)
val of_counts :
  ?default:float -> successes:int -> attempts:int -> delta:float -> unit -> t

(** Clamped confidence interval bounds. *)
val lower : t -> float
val upper : t -> float

(** [contains t p] — is [p] inside the interval? *)
val contains : t -> float -> bool

val pp : Format.formatter -> t -> unit
