type 'a t = { values : 'a array; probs : float array }

let create pairs =
  if pairs = [] then invalid_arg "Distribution.create: empty";
  let total =
    List.fold_left
      (fun acc (_, w) ->
        if w < 0. then invalid_arg "Distribution.create: negative weight";
        acc +. w)
      0. pairs
  in
  if total <= 0. then invalid_arg "Distribution.create: zero total weight";
  {
    values = Array.of_list (List.map fst pairs);
    probs = Array.of_list (List.map (fun (_, w) -> w /. total) pairs);
  }

let uniform values = create (List.map (fun v -> (v, 1.0)) values)
let point v = { values = [| v |]; probs = [| 1.0 |] }
let support t = Array.to_list t.values
let prob t i = t.probs.(i)
let size t = Array.length t.values
let sample t rng = t.values.(Rng.categorical rng t.probs)

let expect t f =
  let acc = ref 0. in
  Array.iteri (fun i v -> acc := !acc +. (t.probs.(i) *. f v)) t.values;
  !acc

let map f t = { values = Array.map f t.values; probs = Array.copy t.probs }

let prob_of t pred =
  let acc = ref 0. in
  Array.iteri (fun i v -> if pred v then acc := !acc +. t.probs.(i)) t.values;
  !acc

let to_alist t =
  Array.to_list (Array.mapi (fun i v -> (v, t.probs.(i))) t.values)
