lib/stats/estimate.ml: Chernoff Counter Float Format
