lib/stats/chernoff.ml:
