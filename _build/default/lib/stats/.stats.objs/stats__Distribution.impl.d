lib/stats/distribution.ml: Array List Rng
