lib/stats/sequential.ml: Chernoff
