lib/stats/rng.mli:
