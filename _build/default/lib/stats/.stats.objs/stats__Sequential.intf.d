lib/stats/sequential.mli:
