lib/stats/estimate.mli: Counter Format
