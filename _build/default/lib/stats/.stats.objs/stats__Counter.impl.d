lib/stats/counter.ml: Format
