lib/stats/chernoff.mli:
