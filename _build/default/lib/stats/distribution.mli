(** Finite discrete distributions.

    The paper's theorems quantify over a fixed but unknown stationary
    distribution of query-processing contexts; experiments instantiate that
    distribution explicitly with values of this type. *)

type 'a t

(** [create pairs] builds a distribution from [(value, weight)] pairs.
    Weights must be non-negative with a positive sum; they are normalized.
    Raises [Invalid_argument] otherwise. *)
val create : ('a * float) list -> 'a t

(** [uniform values] gives each value equal probability. *)
val uniform : 'a list -> 'a t

(** [point v] is the distribution concentrated on [v]. *)
val point : 'a -> 'a t

val support : 'a t -> 'a list

(** Normalized probability of the [i]-th support element. *)
val prob : 'a t -> int -> float

val size : 'a t -> int

(** Draw one value. *)
val sample : 'a t -> Rng.t -> 'a

(** [expect t f] is the exact expectation of [f] under [t]. *)
val expect : 'a t -> ('a -> float) -> float

(** [map f t] pushes the distribution forward through [f]
    (weights of equal images are not merged). *)
val map : ('a -> 'b) -> 'a t -> 'b t

(** Probability assigned to values satisfying the predicate. *)
val prob_of : 'a t -> ('a -> bool) -> float

(** [to_alist t] returns [(value, probability)] pairs. *)
val to_alist : 'a t -> ('a * float) list
