type t = { mutable attempts : int; mutable successes : int }

let create () = { attempts = 0; successes = 0 }

let attempts t = t.attempts
let successes t = t.successes
let failures t = t.attempts - t.successes

let record t ~success =
  t.attempts <- t.attempts + 1;
  if success then t.successes <- t.successes + 1

let frequency ?(default = 0.5) t =
  if t.attempts = 0 then default
  else float_of_int t.successes /. float_of_int t.attempts

let reset t =
  t.attempts <- 0;
  t.successes <- 0

let merge_into ~dst ~src =
  dst.attempts <- dst.attempts + src.attempts;
  dst.successes <- dst.successes + src.successes

let pp ppf t = Format.fprintf ppf "%d/%d" t.successes t.attempts
