type t = { mean : float; samples : int; radius : float }

let of_counts ?(default = 0.5) ~successes ~attempts ~delta () =
  if attempts < 0 || successes < 0 || successes > attempts then
    invalid_arg "Estimate.of_counts: bad counts";
  if attempts = 0 then { mean = default; samples = 0; radius = 1.0 }
  else
    {
      mean = float_of_int successes /. float_of_int attempts;
      samples = attempts;
      radius = Chernoff.hoeffding_radius ~m:attempts ~delta;
    }

let of_counter ?default c ~delta =
  of_counts ?default ~successes:(Counter.successes c)
    ~attempts:(Counter.attempts c) ~delta ()

let lower t = Float.max 0.0 (t.mean -. t.radius)
let upper t = Float.min 1.0 (t.mean +. t.radius)
let contains t p = p >= lower t && p <= upper t

let pp ppf t =
  Format.fprintf ppf "%.4f +/- %.4f (n=%d)" t.mean t.radius t.samples
