(** Running mean and variance (Welford's online algorithm).

    Used by the experiment harness to aggregate per-context costs without
    storing them. *)

type t

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float

(** Unbiased sample variance; 0 for fewer than two observations. *)
val variance : t -> float

val stddev : t -> float
val min : t -> float
val max : t -> float
val sum : t -> float

(** Merge two aggregates (Chan et al. parallel combination). *)
val merge : t -> t -> t

val pp : Format.formatter -> t -> unit
