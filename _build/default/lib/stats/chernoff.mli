(** Chernoff/Hoeffding bound machinery.

    This module implements, symbol for symbol, the statistical tests and
    sample-complexity formulae of Greiner, "Learning Efficient Query
    Processing Strategies" (PODS 1992):

    - Equation 1: the two-sided Hoeffding tail bound for i.i.d. variables
      with range [Lambda];
    - Equations 2/3: the a-posteriori switch threshold for a single
      comparison at confidence [1 - delta];
    - Equation 5: the threshold corrected for [k] simultaneous comparisons;
    - Equation 6: the threshold further corrected for sequential testing
      (the [i^2 pi^2 / 6 delta] schedule);
    - Equation 7: Theorem 2's per-retrieval sample complexity [m(d_i)];
    - Equation 8: Theorem 3's per-experiment aiming complexity [m'(e_i)]. *)

(** [tail_bound ~n ~beta ~range] is the Equation 1 bound
    [exp (-2 n (beta / range)^2)] on [Pr(Y_n > mu + beta)].
    Requires [n >= 0], [beta >= 0], [range > 0]. *)
val tail_bound : n:int -> beta:float -> range:float -> float

(** [deviation ~n ~delta ~range] inverts Equation 1: the radius [beta] such
    that [Pr(|Y_n - mu| > beta) <= 2 delta] — i.e.
    [range * sqrt (ln (1/delta) / (2 n))]. Requires [n > 0], [0 < delta < 1]. *)
val deviation : n:int -> delta:float -> range:float -> float

(** [switch_threshold ~n ~delta ~range] is Equation 2's right-hand side
    [range * sqrt ((n/2) ln (1/delta))]: if the observed sum of cost
    differences over [n] samples exceeds it, the alternative strategy is
    better with confidence at least [1 - delta]. *)
val switch_threshold : n:int -> delta:float -> range:float -> float

(** [switch_threshold_k ~n ~delta ~k ~range] is Equation 5: the threshold
    guarding [k] simultaneous comparisons, [range * sqrt ((n/2) ln (k/delta))]. *)
val switch_threshold_k : n:int -> delta:float -> k:int -> range:float -> float

(** [sequential_delta ~delta ~test_index] is the Section 3.2 schedule
    [delta_i = (6 / pi^2) * delta / i^2] whose sum over all [i >= 1] is
    exactly [delta]. [test_index] is 1-based. *)
val sequential_delta : delta:float -> test_index:int -> float

(** [switch_threshold_seq ~n ~delta ~test_index ~range] is Equation 6:
    [range * sqrt ((n/2) ln (i^2 pi^2 / (6 delta)))] for the [i]-th test. *)
val switch_threshold_seq :
  n:int -> delta:float -> test_index:int -> range:float -> float

(** [samples_for_retrieval ~n_retrievals ~f_not ~epsilon ~delta] is
    Equation 7: [ceil (2 (n F_not / eps)^2 ln (2n / delta))], the number of
    samples of retrieval [d_i] Theorem 2 requires. [f_not] is [F_not(d_i)].
    When [f_not = 0] the retrieval cannot affect any other path and 0 samples
    are needed. *)
val samples_for_retrieval :
  n_retrievals:int -> f_not:float -> epsilon:float -> delta:float -> int

(** [aims_for_experiment ~n_experiments ~f_not ~epsilon ~delta] is
    Equation 8: [ceil (2 (sqrt (2 eps / (n F_not) + 1) - 1)^-2 ln (4n / delta))],
    the number of contexts on which QP^A must attempt to reach experiment
    [e_i] under Theorem 3. Returns 0 when [f_not = 0]. *)
val aims_for_experiment :
  n_experiments:int -> f_not:float -> epsilon:float -> delta:float -> int

(** [hoeffding_radius ~m ~delta] is the two-sided confidence radius for a
    Bernoulli mean estimated from [m] samples:
    [sqrt (ln (2/delta) / (2 m))]. *)
val hoeffding_radius : m:int -> delta:float -> float

(** [samples_for_radius ~radius ~delta] inverts [hoeffding_radius]: the
    smallest [m] with [hoeffding_radius ~m ~delta <= radius]. *)
val samples_for_radius : radius:float -> delta:float -> int
