type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable lo : float;
  mutable hi : float;
}

let create () = { n = 0; mean = 0.; m2 = 0.; lo = infinity; hi = neg_infinity }

let add t x =
  t.n <- t.n + 1;
  let d = x -. t.mean in
  t.mean <- t.mean +. (d /. float_of_int t.n);
  t.m2 <- t.m2 +. (d *. (x -. t.mean));
  if x < t.lo then t.lo <- x;
  if x > t.hi then t.hi <- x

let count t = t.n
let mean t = t.mean
let variance t = if t.n < 2 then 0. else t.m2 /. float_of_int (t.n - 1)
let stddev t = sqrt (variance t)
let min t = t.lo
let max t = t.hi
let sum t = t.mean *. float_of_int t.n

let merge a b =
  if a.n = 0 then { b with n = b.n }
  else if b.n = 0 then { a with n = a.n }
  else
    let n = a.n + b.n in
    let d = b.mean -. a.mean in
    let fa = float_of_int a.n and fb = float_of_int b.n and fn = float_of_int n in
    {
      n;
      mean = a.mean +. (d *. fb /. fn);
      m2 = a.m2 +. b.m2 +. (d *. d *. fa *. fb /. fn);
      lo = Float.min a.lo b.lo;
      hi = Float.max a.hi b.hi;
    }

let pp ppf t =
  Format.fprintf ppf "mean=%.4f sd=%.4f n=%d" (mean t) (stddev t) t.n
