type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 seed }

let copy t = { state = t.state }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t = { state = mix64 (bits64 t) }

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let n64 = Int64.of_int n in
  let rec loop () =
    let bits = Int64.shift_right_logical (bits64 t) 1 in
    let v = Int64.rem bits n64 in
    if Int64.sub (Int64.add (Int64.sub bits v) n64) 1L < 0L then loop ()
    else Int64.to_int v
  in
  loop ()

let float t =
  (* 53 random bits scaled to [0,1). *)
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits *. (1.0 /. 9007199254740992.0)

let bernoulli t p =
  let p = if p < 0. then 0. else if p > 1. then 1. else p in
  float t < p

let categorical t weights =
  let n = Array.length weights in
  if n = 0 then invalid_arg "Rng.categorical: empty weights";
  let total = Array.fold_left (fun acc w ->
    if w < 0. then invalid_arg "Rng.categorical: negative weight";
    acc +. w) 0. weights
  in
  if total <= 0. then invalid_arg "Rng.categorical: all weights zero";
  let x = float t *. total in
  let rec scan i acc =
    if i = n - 1 then i
    else
      let acc = acc +. weights.(i) in
      if x < acc then i else scan (i + 1) acc
  in
  scan 0 0.

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let pick t l =
  match l with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth l (int t (List.length l))

let exponential t ~rate =
  if rate <= 0. then invalid_arg "Rng.exponential: rate must be positive";
  -. log (1.0 -. float t) /. rate

let uniform_in t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform_in: hi < lo";
  lo +. ((hi -. lo) *. float t)
