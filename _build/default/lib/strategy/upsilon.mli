(** The Υ functions: compute optimal strategies from success probabilities
    (Section 4 of the paper).

    Three algorithms plus brute-force references:

    - [aot]: the optimal {e depth-first} strategy for any tree-shaped graph
      with probabilistic experiments, by the recursive productivity
      ordering (children sorted by non-increasing P/C of their subtree
      composites). Exchange-optimal at every node, hence optimal within
      the DFS class. O(A log A).
    - [ot_sidney]: the globally optimal {e path-order} strategy for simple
      disjunctive trees (only retrievals block) — the class [Smi89]'s
      Υ_OT handles — via Sidney/Horn chain-merging over the tree
      precedence order. O(A² ) worst case here (list merges).
    - [approx]: the cheap greedy Υ̃ that sorts children by
      [success_below / f*] without recursing on composites — the paper's
      note that near-optimal polynomial approximations exist.
    - [brute_dfs] / [brute_paths]: exhaustive references for tests.

    All assume independent experiment probabilities (footnote 8). *)

open Infgraph

(** Optimal DFS strategy and its expected cost. *)
val aot : Bernoulli_model.t -> Spec.dfs * float

(** Globally optimal path order for simple disjunctive trees and its
    expected cost. Raises [Invalid_argument] if a reduction arc is
    blockable. *)
val ot_sidney : Bernoulli_model.t -> Spec.t * float

(** Greedy one-level approximation (still a valid strategy). *)
val approx : Bernoulli_model.t -> Spec.dfs

(** Exhaustive optimum over DFS strategies (small graphs only). *)
val brute_dfs : ?limit:int -> Bernoulli_model.t -> Spec.dfs * float

(** Exhaustive optimum over path orders (small graphs only), cost by
    configuration enumeration. *)
val brute_paths :
  ?limit:int -> ?max_experiments:int -> Bernoulli_model.t -> Spec.t * float
