(** Strategy representation.

    A strategy specifies the order in which a satisficing query processor
    searches the inference graph (Section 2.1). Two concrete classes:

    - {b DFS strategies}: a permutation of the children at every node,
      searched depth first. All of the paper's example strategies
      (Θ₁, Θ₂, Θ_ABCD, ...) and every PIB sibling-swap transformation live
      in this class.
    - {b Path strategies} (Note 3): an arbitrary order of the root-to-
      retrieval paths; shared prefix arcs are paid only once. DFS
      strategies are the special case in which the paths of a subtree are
      contiguous.

    Both linearize to the paper's flat arc-sequence notation. *)

open Infgraph

type dfs = private {
  graph : Graph.t;
  orders : int list array;  (** node id -> outgoing arc ids, visit order *)
}

type t =
  | Dfs of dfs
  | Paths of { graph : Graph.t; order : int list list }
      (** ordered root-to-retrieval paths, each a list of arc ids *)

val graph : t -> Graph.t

(** The graph's canonical left-to-right DFS strategy. *)
val default : Graph.t -> dfs

(** [dfs g orders] — validates that [orders.(n)] is a permutation of
    [Graph.children g n] for every node. *)
val make_dfs : Graph.t -> int list array -> dfs

(** [with_order d ~node ~order] replaces one node's child order. *)
val with_order : dfs -> node:int -> order:int list -> dfs

(** [of_paths g order] — validates that [order] lists each root-to-
    retrieval path of [g] exactly once. *)
val of_paths : Graph.t -> int list list -> t

(** Path decomposition (Note 3). For a DFS strategy this is its
    depth-first path order. *)
val to_paths : t -> int list list

(** The paper's flat arc-sequence rendering: paths concatenated, each arc
    listed at its first occurrence, e.g. Θ₁ = ⟨R_p D_p R_g D_g⟩. *)
val arc_sequence : t -> int list

(** Retrieval arcs in visit order. *)
val retrieval_order : t -> int list

val equal : t -> t -> bool
val equal_dfs : dfs -> dfs -> bool

(** First node (in DFS discovery order of [a]) whose child order differs
    between the two DFS strategies. *)
val deviation_node : dfs -> dfs -> int option

(** Print as ⟨label label ...⟩ using arc labels. *)
val pp : Format.formatter -> t -> unit

val pp_dfs : Format.formatter -> dfs -> unit
