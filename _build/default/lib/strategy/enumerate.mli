(** Exhaustive strategy enumeration (ground truth for optimality tests). *)

open Infgraph

(** All DFS strategies: the product of the child permutations at every
    node. Guarded by [limit] (default 50000 strategies);
    raises [Invalid_argument] beyond it. *)
val all_dfs : ?limit:int -> Graph.t -> Spec.dfs list

(** All path-order strategies: permutations of the root-to-retrieval
    paths. Guarded by [limit]. *)
val all_paths : ?limit:int -> Graph.t -> Spec.t list

(** Number of DFS strategies without enumerating them. *)
val count_dfs : Graph.t -> int
