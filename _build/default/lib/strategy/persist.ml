open Infgraph

exception Parse_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Parse_error s)) fmt

let ints_line ids = String.concat " " (List.map string_of_int ids)

let parse_ints s =
  String.split_on_char ' ' s
  |> List.filter (fun t -> t <> "")
  |> List.map (fun t ->
         match int_of_string_opt t with
         | Some i -> i
         | None -> fail "expected an integer, found %S" t)

let dfs_to_string d =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "strategem-strategy 1 dfs\n";
  Array.iteri
    (fun node order ->
      if order <> [] then
        Buffer.add_string buf
          (Printf.sprintf "order %d %s\n" node (ints_line order)))
    d.Spec.orders;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let paths_to_string g order =
  ignore g;
  let buf = Buffer.create 256 in
  Buffer.add_string buf "strategem-strategy 1 paths\n";
  List.iter
    (fun path ->
      Buffer.add_string buf (Printf.sprintf "path %s\n" (ints_line path)))
    order;
  Buffer.add_string buf "end\n";
  Buffer.contents buf

let to_string = function
  | Spec.Dfs d -> dfs_to_string d
  | Spec.Paths { graph; order } -> paths_to_string graph order

let body_lines input =
  match
    String.split_on_char '\n' input
    |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  with
  | [] -> fail "empty strategy text"
  | header :: rest ->
    let kind =
      try Scanf.sscanf header "strategem-strategy %d %s" (fun _ k -> k)
      with Scanf.Scan_failure _ -> fail "missing strategem-strategy header"
    in
    (kind, List.filter (fun l -> l <> "end") rest)

let dfs_of_string g input =
  match body_lines input with
  | "dfs", lines ->
    let orders = Array.init (Graph.n_nodes g) (Graph.children g) in
    List.iter
      (fun line ->
        if String.length line < 6 || String.sub line 0 6 <> "order " then
          fail "unrecognized line %S" line
        else
          match parse_ints (String.sub line 6 (String.length line - 6)) with
          | node :: order ->
            if node < 0 || node >= Graph.n_nodes g then
              fail "node %d out of range" node;
            orders.(node) <- order
          | [] -> fail "empty order line")
      lines;
    (try Spec.make_dfs g orders
     with Invalid_argument m -> fail "invalid strategy: %s" m)
  | k, _ -> fail "expected a dfs strategy, found %S" k

let of_string g input =
  match body_lines input with
  | "dfs", _ -> Spec.Dfs (dfs_of_string g input)
  | "paths", lines ->
    let order =
      List.map
        (fun line ->
          if String.length line < 5 || String.sub line 0 5 <> "path " then
            fail "unrecognized line %S" line
          else parse_ints (String.sub line 5 (String.length line - 5)))
        lines
    in
    (try Spec.of_paths g order
     with Invalid_argument m -> fail "invalid strategy: %s" m)
  | k, _ -> fail "unknown strategy kind %S" k
