open Infgraph

type t =
  | Swap of Transform.t
  | Promote of { node : int; pos : int }

type family =
  | Adjacent_swaps
  | All_swaps
  | Promotions
  | Swaps_and_promotions

let apply d = function
  | Swap tr -> Transform.apply d tr
  | Promote { node; pos } ->
    let order = d.Spec.orders.(node) in
    if pos < 1 || pos >= List.length order then
      invalid_arg "Moves.apply: invalid promotion position";
    let chosen = List.nth order pos in
    let rest = List.filteri (fun i _ -> i <> pos) order in
    Spec.with_order d ~node ~order:(chosen :: rest)

let segment_lambda d ~node ~lo ~hi =
  let stars = Costs.f_star_all d.Spec.graph in
  let order = Array.of_list d.Spec.orders.(node) in
  let sum = ref 0. in
  for k = lo to hi do
    sum := !sum +. stars.(order.(k))
  done;
  !sum

let lambda d = function
  | Swap tr -> Transform.lambda d tr
  | Promote { node; pos } -> segment_lambda d ~node ~lo:0 ~hi:pos

let neighbors family d =
  let swaps adjacent_only =
    List.map
      (fun (tr, d') -> (Swap tr, d'))
      (Transform.neighbors ~adjacent_only d)
  in
  let promotions () =
    let g = d.Spec.graph in
    let out = ref [] in
    for node = 0 to Graph.n_nodes g - 1 do
      let len = List.length d.Spec.orders.(node) in
      (* pos = 1 duplicates the adjacent swap (0,1); start at 2. *)
      for pos = 2 to len - 1 do
        let mv = Promote { node; pos } in
        out := (mv, apply d mv) :: !out
      done
    done;
    List.rev !out
  in
  match family with
  | Adjacent_swaps -> swaps true
  | All_swaps -> swaps false
  | Promotions -> swaps true @ promotions ()
  | Swaps_and_promotions -> swaps false @ promotions ()

let family_to_string = function
  | Adjacent_swaps -> "adjacent-swaps"
  | All_swaps -> "all-swaps"
  | Promotions -> "promotions"
  | Swaps_and_promotions -> "swaps+promotions"

let pp d ppf = function
  | Swap tr -> Transform.pp d ppf tr
  | Promote { node; pos } ->
    Format.fprintf ppf "promote(pos %d)@@%s" pos
      (Graph.node d.Spec.graph node).Graph.name
