open Infgraph

(* Composite (expected cost, success probability) of searching the subtree
   hanging from [arc_id], in the strategy's order, given that the search
   reaches the arc's source with no solution found yet. *)
let rec arc_composite (d : Spec.dfs) model arc_id =
  let g = d.Spec.graph in
  let a = Graph.arc g arc_id in
  let p = Bernoulli_model.prob model arc_id in
  match a.Graph.kind with
  | Graph.Retrieval -> (a.Graph.cost, p)
  | Graph.Reduction ->
    let c_below, p_below = node_composite d model a.Graph.dst in
    (a.Graph.cost +. (p *. c_below), p *. p_below)

and node_composite d model node =
  List.fold_left
    (fun (cost, succ) child ->
      let c, p = arc_composite d model child in
      (cost +. ((1. -. succ) *. c), succ +. ((1. -. succ) *. p)))
    (0., 0.) d.Spec.orders.(node)

let exact_dfs d model =
  if Bernoulli_model.graph model != d.Spec.graph then
    invalid_arg "Cost.exact_dfs: model is for a different graph";
  node_composite d model (Graph.root d.Spec.graph)

let exact_enum ?max_experiments spec model =
  if Bernoulli_model.graph model != Spec.graph spec then
    invalid_arg "Cost.exact_enum: model is for a different graph";
  List.fold_left
    (fun acc (ctx, prob) ->
      if prob = 0. then acc
      else acc +. (prob *. (Exec.run spec ctx).Exec.cost))
    0.
    (Bernoulli_model.enumerate ?max_experiments model)

let monte_carlo spec model rng ~n =
  if n <= 0 then invalid_arg "Cost.monte_carlo: n must be positive";
  let w = Stats.Welford.create () in
  for _ = 1 to n do
    let ctx = Bernoulli_model.sample model rng in
    Stats.Welford.add w (Exec.run spec ctx).Exec.cost
  done;
  w

let over_contexts spec dist =
  Stats.Distribution.expect dist (fun ctx -> (Exec.run spec ctx).Exec.cost)

let exact spec model =
  match spec with
  | Spec.Dfs d -> fst (exact_dfs d model)
  | Spec.Paths _ -> exact_enum spec model
