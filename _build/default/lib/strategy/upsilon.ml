open Infgraph

(* ---------- Υ_AOT: optimal depth-first strategy ---------- *)

(* Bottom-up: compute each subtree's optimal child order along with its
   composite (cost, success probability); sort children by non-increasing
   productivity P/C (compared as P1*C2 >= P2*C1 to avoid division). *)
let aot model =
  let g = Bernoulli_model.graph model in
  let orders = Array.make (Graph.n_nodes g) [] in
  let rec arc_composite arc_id =
    let a = Graph.arc g arc_id in
    let p = Bernoulli_model.prob model arc_id in
    match a.Graph.kind with
    | Graph.Retrieval -> (a.Graph.cost, p)
    | Graph.Reduction ->
      let c_below, p_below = node_composite a.Graph.dst in
      (a.Graph.cost +. (p *. c_below), p *. p_below)
  and node_composite node =
    let rated =
      List.map (fun c -> (c, arc_composite c)) (Graph.children g node)
    in
    let sorted =
      List.stable_sort
        (fun (_, (c1, p1)) (_, (c2, p2)) -> Float.compare (p2 *. c1) (p1 *. c2))
        rated
    in
    orders.(node) <- List.map fst sorted;
    List.fold_left
      (fun (cost, succ) (_, (c, p)) ->
        (cost +. ((1. -. succ) *. c), succ +. ((1. -. succ) *. p)))
      (0., 0.) sorted
  in
  let root_cost, _ = node_composite (Graph.root g) in
  (* Success nodes have no children; their (empty) orders are fine. *)
  (Spec.make_dfs g orders, root_cost)

(* ---------- Υ_OT: Sidney/Horn chain merging ---------- *)

(* A segment is a block of arcs executed consecutively: [cost] is its
   expected incremental cost when started (internal arcs never block in
   this class, so all arcs of the segment before a success are paid in
   sequence, discounted by the failure probabilities of the segment's own
   earlier retrievals), [fail] the probability it finds no solution, and
   [arcs] the block in execution order. Its ratio (1-fail)/cost is the
   merge key. *)
type segment = { scost : float; sfail : float; sarcs : int list }

let seg_ratio s = (1. -. s.sfail) /. s.scost

(* Sequential composition: run s1 then (if it failed) s2. *)
let seg_concat s1 s2 =
  {
    scost = s1.scost +. (s1.sfail *. s2.scost);
    sfail = s1.sfail *. s2.sfail;
    sarcs = s1.sarcs @ s2.sarcs;
  }

(* Merge segment lists that are each in non-increasing ratio order into one
   such list (cross-list order is free: no precedence between subtrees). *)
let rec seg_merge l1 l2 =
  match (l1, l2) with
  | [], l | l, [] -> l
  | s1 :: r1, s2 :: r2 ->
    if seg_ratio s1 >= seg_ratio s2 then s1 :: seg_merge r1 l2
    else s2 :: seg_merge l1 r2

(* Prepend a head segment, absorbing following segments while they have a
   strictly higher ratio than the accumulated head (the chain-merge step
   that restores non-increasing order after adding a precedence root). *)
let rec seg_push head = function
  | [] -> [ head ]
  | s :: rest ->
    if seg_ratio s > seg_ratio head then seg_push (seg_concat head s) rest
    else head :: s :: rest

let ot_sidney model =
  let g = Bernoulli_model.graph model in
  if not (Graph.simple_disjunctive g) then
    invalid_arg
      "Upsilon.ot_sidney: requires a simple disjunctive graph (no blockable \
       reductions)";
  let rec arc_segments arc_id =
    let a = Graph.arc g arc_id in
    match a.Graph.kind with
    | Graph.Retrieval ->
      [
        {
          scost = a.Graph.cost;
          sfail = 1. -. Bernoulli_model.prob model arc_id;
          sarcs = [ arc_id ];
        };
      ]
    | Graph.Reduction ->
      let below = node_segments a.Graph.dst in
      let head = { scost = a.Graph.cost; sfail = 1.; sarcs = [ arc_id ] } in
      seg_push head below
  and node_segments node =
    List.fold_left
      (fun acc child -> seg_merge acc (arc_segments child))
      []
      (Graph.children g node)
  in
  let segments = node_segments (Graph.root g) in
  let arc_seq = List.concat_map (fun s -> s.sarcs) segments in
  (* Convert the arc sequence to a path order: paths in order of their
     retrieval's appearance. *)
  let order =
    List.filter_map
      (fun arc_id ->
        match (Graph.arc g arc_id).Graph.kind with
        | Graph.Retrieval -> Some (Graph.path_to g arc_id)
        | Graph.Reduction -> None)
      arc_seq
  in
  let spec = Spec.of_paths g order in
  (* Expected cost: fold the segments sequentially from an empty run. *)
  let total =
    match segments with
    | [] -> { scost = 0.; sfail = 1.; sarcs = [] }
    | s :: rest -> List.fold_left seg_concat s rest
  in
  (spec, total.scost)

(* ---------- greedy approximation ---------- *)

let approx model =
  let g = Bernoulli_model.graph model in
  let stars = Costs.f_star_all g in
  let orders =
    Array.init (Graph.n_nodes g) (fun node ->
        Graph.children g node
        |> List.map (fun c -> (c, Bernoulli_model.success_below model c))
        |> List.stable_sort (fun (c1, p1) (c2, p2) ->
               Float.compare (p2 *. stars.(c1)) (p1 *. stars.(c2)))
        |> List.map fst)
  in
  Spec.make_dfs g orders

(* ---------- brute force references ---------- *)

let brute_dfs ?limit model =
  let g = Bernoulli_model.graph model in
  let best = ref None in
  List.iter
    (fun d ->
      let c, _ = Cost.exact_dfs d model in
      match !best with
      | Some (_, bc) when bc <= c -> ()
      | _ -> best := Some (d, c))
    (Enumerate.all_dfs ?limit g);
  match !best with
  | Some r -> r
  | None -> invalid_arg "Upsilon.brute_dfs: no strategies"

let brute_paths ?limit ?max_experiments model =
  let g = Bernoulli_model.graph model in
  let best = ref None in
  List.iter
    (fun spec ->
      let c = Cost.exact_enum ?max_experiments spec model in
      match !best with
      | Some (_, bc) when bc <= c -> ()
      | _ -> best := Some (spec, c))
    (Enumerate.all_paths ?limit g);
  match !best with
  | Some r -> r
  | None -> invalid_arg "Upsilon.brute_paths: no strategies"
