lib/strategy/enumerate.mli: Graph Infgraph Spec
