lib/strategy/persist.ml: Array Buffer Format Graph Infgraph List Printf Scanf Spec String
