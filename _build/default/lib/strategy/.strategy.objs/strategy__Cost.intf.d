lib/strategy/cost.mli: Bernoulli_model Context Infgraph Spec Stats
