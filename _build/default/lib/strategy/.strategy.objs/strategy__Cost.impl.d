lib/strategy/cost.ml: Array Bernoulli_model Exec Graph Infgraph List Spec Stats
