lib/strategy/transform.ml: Array Costs Format Graph Infgraph List Spec
