lib/strategy/moves.mli: Format Spec Transform
