lib/strategy/spec.ml: Array Format Graph Hashtbl Infgraph List Printf String
