lib/strategy/persist.mli: Infgraph Spec
