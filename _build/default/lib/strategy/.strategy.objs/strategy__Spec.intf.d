lib/strategy/spec.mli: Format Graph Infgraph
