lib/strategy/upsilon.mli: Bernoulli_model Infgraph Spec
