lib/strategy/enumerate.ml: Graph Infgraph List Spec
