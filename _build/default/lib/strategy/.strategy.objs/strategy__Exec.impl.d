lib/strategy/exec.ml: Array Context Graph Infgraph List Spec
