lib/strategy/transform.mli: Format Spec
