lib/strategy/moves.ml: Array Costs Format Graph Infgraph List Spec Transform
