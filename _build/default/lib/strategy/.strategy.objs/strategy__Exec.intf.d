lib/strategy/exec.mli: Context Graph Infgraph Spec
