lib/strategy/upsilon.ml: Array Bernoulli_model Cost Costs Enumerate Float Graph Infgraph List Spec
