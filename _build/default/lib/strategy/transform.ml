open Infgraph

type t = { node : int; pos_i : int; pos_j : int }

let check d t =
  let order = d.Spec.orders.(t.node) in
  let len = List.length order in
  if t.pos_i < 0 || t.pos_j <= t.pos_i || t.pos_j >= len then
    invalid_arg "Transform: invalid sibling positions"

let arcs d t =
  check d t;
  let order = d.Spec.orders.(t.node) in
  (List.nth order t.pos_i, List.nth order t.pos_j)

let apply d t =
  check d t;
  let order = Array.of_list d.Spec.orders.(t.node) in
  let tmp = order.(t.pos_i) in
  order.(t.pos_i) <- order.(t.pos_j);
  order.(t.pos_j) <- tmp;
  Spec.with_order d ~node:t.node ~order:(Array.to_list order)

let all ?(adjacent_only = false) d =
  let g = d.Spec.graph in
  let out = ref [] in
  for node = 0 to Graph.n_nodes g - 1 do
    let len = List.length d.Spec.orders.(node) in
    for i = 0 to len - 2 do
      let js = if adjacent_only then [ i + 1 ] else List.init (len - 1 - i) (fun k -> i + 1 + k) in
      List.iter (fun j -> out := { node; pos_i = i; pos_j = j } :: !out) js
    done
  done;
  List.rev !out

let neighbors ?adjacent_only d =
  List.map (fun t -> (t, apply d t)) (all ?adjacent_only d)

let lambda d t =
  check d t;
  (* Executions coincide outside the child segment [pos_i .. pos_j] of the
     swapped node (children before i are visited identically; the multiset
     explored before any later child is unchanged), so the difference range
     is the total subtree cost of that segment. For adjacent swaps this is
     the paper's f*(r1) + f*(r2); for non-adjacent swaps the intermediate
     siblings' subtrees must be included (e.g. success under r1 only:
     Θ stops at r1 while τ(Θ) first searches r2 and every intermediate). *)
  let stars = Costs.f_star_all d.Spec.graph in
  let order = Array.of_list d.Spec.orders.(t.node) in
  let sum = ref 0. in
  for k = t.pos_i to t.pos_j do
    sum := !sum +. stars.(order.(k))
  done;
  !sum

let pp d ppf t =
  let r1, r2 = arcs d t in
  let g = d.Spec.graph in
  Format.fprintf ppf "swap(%s, %s)@@%s" (Graph.arc g r1).Graph.label
    (Graph.arc g r2).Graph.label
    (Graph.node g t.node).Graph.name
