(** Generalized transformation sets.

    Section 3.2: "The general PIB system can use (almost) arbitrary sets
    of transformations to hill-climb". Beyond the sibling swaps of
    {!Transform}, this module offers {e promotions} (move a child to the
    front of its node — a macro-operator composed of adjacent swaps, in
    the spirit of the [MKKC86]/[LNR87] citations) and packages families of
    moves for the learners to draw neighborhoods from.

    Every move reorders the children of a single node, so the range bound
    is the same segment argument as {!Transform.lambda}: the total subtree
    cost of the children whose positions change. *)

type t =
  | Swap of Transform.t
  | Promote of { node : int; pos : int }
      (** move the child at position [pos >= 1] to position 0 *)

type family =
  | Adjacent_swaps    (** smallest: n-1 moves per node *)
  | All_swaps         (** every sibling pair *)
  | Promotions
      (** move-to-front macros, plus adjacent swaps so the neighborhood
          stays connected *)
  | Swaps_and_promotions  (** union of [All_swaps] and [Promotions] *)

val apply : Spec.dfs -> t -> Spec.dfs

(** Range Λ[Θ, move(Θ)]. *)
val lambda : Spec.dfs -> t -> float

(** The neighborhood 𝒯(Θ) for a family (duplicates removed: a promotion
    of position 1 is the same strategy as the adjacent swap (0,1), so it
    is emitted only as a swap). *)
val neighbors : family -> Spec.dfs -> (t * Spec.dfs) list

val family_to_string : family -> string
val pp : Spec.dfs -> Format.formatter -> t -> unit
