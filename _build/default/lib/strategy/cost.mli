(** Expected strategy cost C[Θ] (Section 2.1).

    Four evaluators, trading generality against scale:

    - [exact_dfs]: closed-form recursion for DFS strategies under the
      independent-arc model — O(arcs), any size;
    - [exact_enum]: any strategy, by enumerating the model's blocked-arc
      configurations — exponential in the number of experiments;
    - [monte_carlo]: any strategy, sampled;
    - [over_contexts]: any strategy against an explicit finite context
      distribution — the exact Section 2 definition
      C[Θ] = Σ_I Pr(I) c(Θ, I). *)

open Infgraph

(** Expected cost and overall success probability of a DFS strategy. *)
val exact_dfs : Spec.dfs -> Bernoulli_model.t -> float * float

(** Expected cost of any strategy by exhaustive enumeration (guarded by
    [max_experiments], default 20). *)
val exact_enum : ?max_experiments:int -> Spec.t -> Bernoulli_model.t -> float

(** [monte_carlo spec model rng ~n] — sampled cost statistics. *)
val monte_carlo :
  Spec.t -> Bernoulli_model.t -> Stats.Rng.t -> n:int -> Stats.Welford.t

(** Exact expectation over an explicit context distribution. *)
val over_contexts : Spec.t -> Context.t Stats.Distribution.t -> float

(** [exact spec model] — [exact_dfs] when [spec] is DFS, else
    [exact_enum]. *)
val exact : Spec.t -> Bernoulli_model.t -> float
