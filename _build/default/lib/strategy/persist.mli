(** Strategy serialization (companion to {!Infgraph.Serial}).

    A DFS strategy is stored as one [order <node_id> <arc ids...>] line per
    node; a path strategy as one [path <arc ids...>] line per root-to-
    retrieval path, in visit order. Loading validates against the graph
    (permutation checks are {!Spec}'s). *)

exception Parse_error of string

val dfs_to_string : Spec.dfs -> string
val dfs_of_string : Infgraph.Graph.t -> string -> Spec.dfs
val to_string : Spec.t -> string
val of_string : Infgraph.Graph.t -> string -> Spec.t
