(** The PIB transformation set 𝒯 (Section 3.2).

    Each transformation re-orders one pair of sibling arcs in a DFS
    strategy: τ(Θ) swaps the subtrees under two arcs that descend from a
    common node (e.g. τ_{d,c}(Θ_ABCD) = Θ_ABDC). The neighborhood 𝒯(Θ) of
    all such swaps is what PIB hill-climbs over. *)

type t = {
  node : int;  (** node whose child order is changed *)
  pos_i : int;  (** earlier position (0-based, in Θ's order) *)
  pos_j : int;  (** later position *)
}

(** Swapped arc ids [(r1, r2)]: r1 currently at [pos_i], r2 at [pos_j]. *)
val arcs : Spec.dfs -> t -> int * int

val apply : Spec.dfs -> t -> Spec.dfs

(** All transformations of a strategy: adjacent sibling swaps only when
    [adjacent_only] (smaller, still connects the whole space), otherwise
    every sibling pair (the default). Nodes with fewer than two children
    contribute none. *)
val all : ?adjacent_only:bool -> Spec.dfs -> t list

(** Neighborhood 𝒯(Θ): transformations with their resulting strategies. *)
val neighbors : ?adjacent_only:bool -> Spec.dfs -> (t * Spec.dfs) list

(** The range Λ[Θ, τ(Θ)] of per-context cost differences: the total
    subtree cost of the children in positions [pos_i .. pos_j] of the
    swapped node. For adjacent swaps this is the paper's
    [f*(r1) + f*(r2)]; for non-adjacent swaps the intermediate siblings'
    subtrees are part of the range (a success under [r1] alone makes τ(Θ)
    search [r2] {e and} every intermediate before reaching [r1]). *)
val lambda : Spec.dfs -> t -> float

val pp : Spec.dfs -> Format.formatter -> t -> unit
