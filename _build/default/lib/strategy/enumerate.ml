open Infgraph

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        let rest = List.filter (fun y -> y <> x) l in
        List.map (fun p -> x :: p) (permutations rest))
      l

let rec factorial n = if n <= 1 then 1 else n * factorial (n - 1)

let count_dfs g =
  let n = ref 1 in
  for node = 0 to Graph.n_nodes g - 1 do
    n := !n * factorial (List.length (Graph.children g node))
  done;
  !n

let all_dfs ?(limit = 50000) g =
  if count_dfs g > limit then
    invalid_arg "Enumerate.all_dfs: too many strategies";
  let base = Spec.default g in
  let rec go node acc =
    if node >= Graph.n_nodes g then acc
    else
      let perms = permutations (Graph.children g node) in
      let acc =
        List.concat_map
          (fun d -> List.map (fun order -> Spec.with_order d ~node ~order) perms)
          acc
      in
      go (node + 1) acc
  in
  go 0 [ base ]

let all_paths ?(limit = 50000) g =
  let paths = Graph.leaf_paths g in
  let n = List.length paths in
  if factorial n > limit then
    invalid_arg "Enumerate.all_paths: too many strategies";
  List.map (Spec.of_paths g) (permutations paths)
