open Infgraph

type dfs = { graph : Graph.t; orders : int list array }

type t =
  | Dfs of dfs
  | Paths of { graph : Graph.t; order : int list list }

let graph = function Dfs d -> d.graph | Paths p -> p.graph

let default g =
  { graph = g; orders = Array.init (Graph.n_nodes g) (Graph.children g) }

let is_perm a b = List.sort compare a = List.sort compare b

let make_dfs g orders =
  if Array.length orders <> Graph.n_nodes g then
    invalid_arg "Spec.make_dfs: orders size mismatch";
  Array.iteri
    (fun n order ->
      if not (is_perm order (Graph.children g n)) then
        invalid_arg
          (Printf.sprintf
             "Spec.make_dfs: order at node %d is not a permutation of its \
              children"
             n))
    orders;
  { graph = g; orders = Array.copy orders }

let with_order d ~node ~order =
  if not (is_perm order (Graph.children d.graph node)) then
    invalid_arg "Spec.with_order: not a permutation of the node's children";
  let orders = Array.copy d.orders in
  orders.(node) <- order;
  { d with orders }

let dfs_paths d =
  let acc = ref [] in
  let rec go prefix node =
    List.iter
      (fun arc_id ->
        let a = Graph.arc d.graph arc_id in
        let prefix' = arc_id :: prefix in
        match a.Graph.kind with
        | Graph.Retrieval -> acc := List.rev prefix' :: !acc
        | Graph.Reduction -> go prefix' a.Graph.dst)
      d.orders.(node)
  in
  go [] (Graph.root d.graph);
  List.rev !acc

let canonical_paths g =
  List.sort compare (Graph.leaf_paths g)

let of_paths g order =
  if not (is_perm (List.sort compare order) (canonical_paths g)) then
    invalid_arg
      "Spec.of_paths: not a permutation of the graph's root-to-retrieval paths";
  Paths { graph = g; order }

let to_paths = function
  | Dfs d -> dfs_paths d
  | Paths p -> p.order

let arc_sequence t =
  let seen = Hashtbl.create 16 in
  List.concat_map
    (fun path ->
      List.filter
        (fun arc_id ->
          if Hashtbl.mem seen arc_id then false
          else begin
            Hashtbl.add seen arc_id ();
            true
          end)
        path)
    (to_paths t)

let retrieval_order t =
  List.filter_map
    (fun path -> match List.rev path with last :: _ -> Some last | [] -> None)
    (to_paths t)

let equal_dfs a b = a.graph == b.graph && a.orders = b.orders

let equal a b =
  match (a, b) with
  | Dfs x, Dfs y -> equal_dfs x y
  | _ -> graph a == graph b && to_paths a = to_paths b

let deviation_node a b =
  if a.graph != b.graph then
    invalid_arg "Spec.deviation_node: different graphs";
  (* DFS discovery order of [a]. *)
  let rec go node =
    if a.orders.(node) <> b.orders.(node) then Some node
    else
      List.fold_left
        (fun found arc_id ->
          match found with
          | Some _ -> found
          | None ->
            let arc = Graph.arc a.graph arc_id in
            if arc.Graph.kind = Graph.Reduction then go arc.Graph.dst
            else None)
        None a.orders.(node)
  in
  go (Graph.root a.graph)

let pp ppf t =
  let g = graph t in
  Format.fprintf ppf "⟨%s⟩"
    (String.concat " "
       (List.map (fun id -> (Graph.arc g id).Graph.label) (arc_sequence t)))

let pp_dfs ppf d = pp ppf (Dfs d)
