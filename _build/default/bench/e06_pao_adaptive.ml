(* E6 — Theorem 3: aiming for hard-to-reach experiments (Section 4.1).

   The graph has a blockable reduction (the grad(fred) :- admitted(fred)
   pattern): the deep retrieval is reachable only when its parent
   experiment succeeds (ρ << 1), so Theorem 2's "sample each retrieval m
   times" stalls, while Theorem 3 only needs m' aims. *)

open Infgraph
open Strategy

let fixture () =
  let b = Graph.Builder.create "instructor(Q)" in
  let n = Graph.Builder.add_node b "admitted(fred)" in
  let re =
    Graph.Builder.add_arc b ~src:(Graph.Builder.root b) ~dst:n ~blockable:true
      ~label:"R_fred" Graph.Reduction
  in
  let de = Graph.Builder.add_retrieval b ~src:n ~label:"D_admitted" () in
  let d0 = Graph.Builder.add_retrieval b ~src:(Graph.Builder.root b) ~label:"D_prof" () in
  let g = Graph.Builder.finish b in
  let p = Array.make (Graph.n_arcs g) 1.0 in
  p.(re) <- 0.1;  (* only 10% of queries mention fred *)
  p.(de) <- 0.8;
  p.(d0) <- 0.4;
  (g, Bernoulli_model.make g ~p)

let run () =
  let g, model = fixture () in
  let epsilon = 0.75 and delta = 0.1 in
  let eq7 = Core.Pao.sample_targets g ~epsilon ~delta in
  let eq8 = Core.Pao_adaptive.aim_targets g ~epsilon ~delta in
  let oracle = Core.Oracle.of_model model (Stats.Rng.create 6L) in
  let report = Core.Pao_adaptive.run ~epsilon ~delta oracle in
  let rows =
    List.map
      (fun a ->
        let id = a.Graph.arc_id in
        [
          a.Graph.label;
          Table.f2 (Costs.f_not g id);
          Table.f3 (Bernoulli_model.rho model id);
          (if a.Graph.kind = Graph.Retrieval then Table.i eq7.(id) else "n/a");
          Table.i eq8.(id);
          Table.i report.Core.Pao_adaptive.aims.(id);
          Table.i report.Core.Pao_adaptive.reached.(id);
          Table.f3 report.Core.Pao_adaptive.p_hat.(id);
          Table.f3 (Bernoulli_model.prob model id);
        ])
      (Graph.experiments g)
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E6: Theorem 3 aiming (epsilon=%.2f delta=%.2f); rho(D_admitted) = 0.1"
         epsilon delta)
    ~header:
      [ "experiment"; "F_not"; "rho"; "m Eq7"; "m' Eq8"; "aims"; "reached";
        "p_hat"; "true p" ]
    rows;
  let regret =
    fst (Cost.exact_dfs report.Core.Pao_adaptive.strategy model)
    -. snd (Upsilon.aot model)
  in
  Table.note
    "Contexts used: %d; sampling cost: %.0f; realized regret %.4f <= \
     epsilon %.2f: %s.\nLow-rho experiments are reached rarely, but \
     Lemma 1 says their estimates matter\nproportionally less - the \
     guarantee survives.\n"
    report.Core.Pao_adaptive.contexts_used
    report.Core.Pao_adaptive.sampling_cost regret epsilon
    (Table.yesno (regret <= epsilon +. 1e-9))
