(* E15 — the Note 4 AND/OR extension, exercised.

   Random conjunctive rule structures: the ratio-ordering optimizer
   (OR choices by P/C, AND conjuncts by fail-fast (1-P)/C) against the
   written order and against brute force over all depth-first orders
   (where enumerable). *)

open Infgraph

let random_tree rng ~max_depth =
  let leaf () =
    Hypergraph.retrieve
      ~cost:(Stats.Rng.uniform_in rng ~lo:0.5 ~hi:4.0)
      ~prob:(Stats.Rng.uniform_in rng ~lo:0.05 ~hi:0.9)
      ()
  in
  let rec node depth =
    if depth >= max_depth || Stats.Rng.bernoulli rng 0.4 then leaf ()
    else
      Hypergraph.goal
        (List.init
           (1 + Stats.Rng.int rng 2)
           (fun _ ->
             Hypergraph.choice
               ~cost:(Stats.Rng.uniform_in rng ~lo:0.2 ~hi:1.0)
               (List.init (1 + Stats.Rng.int rng 2) (fun _ -> node (depth + 1)))))
  in
  (* Force a root OR with at least two choices. *)
  Hypergraph.goal
    (List.init (2 + Stats.Rng.int rng 2) (fun _ ->
         Hypergraph.choice
           ~cost:(Stats.Rng.uniform_in rng ~lo:0.2 ~hi:1.0)
           (List.init (1 + Stats.Rng.int rng 2) (fun _ -> node 1))))

let run () =
  let rng = Stats.Rng.create 15L in
  let rows = ref [] in
  let id = ref 0 in
  while List.length !rows < 8 do
    incr id;
    let h = random_tree rng ~max_depth:3 in
    let leaves = Hypergraph.n_leaves h in
    if leaves >= 3 && leaves <= 9 then begin
      let c0, _ = Hypergraph.evaluate h in
      let c1, _ = Hypergraph.evaluate (Hypergraph.optimize h) in
      let brute =
        try
          Some
            (List.fold_left
               (fun acc h' -> Float.min acc (fst (Hypergraph.evaluate h')))
               infinity
               (Hypergraph.all_orders ~limit:20000 h))
        with Invalid_argument _ -> None
      in
      rows :=
        [
          Table.i !id;
          Table.i leaves;
          Table.f3 c0;
          Table.f3 c1;
          Table.pct (1.0 -. (c1 /. c0));
          (match brute with Some b -> Table.f3 b | None -> "(too many)");
          (match brute with
          | Some b -> Table.yesno (abs_float (b -. c1) < 1e-9)
          | None -> "-");
        ]
        :: !rows
    end
  done;
  Table.print
    ~title:"E15: AND/OR hypergraphs (Note 4) - ratio optimizer vs brute force"
    ~header:
      [ "tree"; "leaves"; "written cost"; "optimized"; "saved"; "brute";
        "optimal?" ]
    (List.rev !rows);
  Table.note
    "OR choices sorted by productivity P/C, AND conjuncts fail-fast by \
     (1-P)/C -\nexchange-optimal at every node, hence optimal within the \
     depth-first class.\n"
