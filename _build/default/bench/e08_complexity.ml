(* E8 — the Section 5.1 complexity claims, measured with Bechamel.

   - Υ_AOT runs in polynomial (here ~linearithmic) time: time it on trees
     of growing size.
   - PIB's per-query overhead is "minor": time one observe step (execute +
     Δ̃ replay per neighbour) against plain execution.
   - PIB's data collection is counters-only; PAO needs one pass of Υ. *)

open Infgraph
open Strategy
open Bechamel

let instance = Toolkit.Instance.monotonic_clock
let ols = Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| "run" |]

let make_tree ~depth ~branch seed =
  let rng = Stats.Rng.create (Int64.of_int seed) in
  let params =
    {
      Workload.Synth.default_params with
      depth;
      branch_min = branch;
      branch_max = branch;
      leaf_prob = 0.0;
    }
  in
  Workload.Synth.random_instance rng params

let run () =
  let sizes = [ (2, 2); (3, 3); (4, 4); (5, 4) ] in
  let upsilon_tests =
    List.map
      (fun (depth, branch) ->
        let g, model = make_tree ~depth ~branch 1 in
        Test.make
          ~name:(Printf.sprintf "upsilon_aot/%d arcs" (Graph.n_arcs g))
          (Staged.stage (fun () -> ignore (Upsilon.aot model))))
      sizes
  in
  let exec_tests =
    List.map
      (fun (depth, branch) ->
        let g, model = make_tree ~depth ~branch 2 in
        let d = Spec.default g in
        let rng = Stats.Rng.create 7L in
        Test.make
          ~name:(Printf.sprintf "exec_run/%d arcs" (Graph.n_arcs g))
          (Staged.stage (fun () ->
               ignore (Exec.run (Spec.Dfs d) (Bernoulli_model.sample model rng)))))
      [ (2, 2); (3, 3); (4, 4) ]
  in
  let pib_tests =
    List.map
      (fun (depth, branch) ->
        let g, model = make_tree ~depth ~branch 3 in
        let pib = Core.Pib.create (Spec.default g) in
        let rng = Stats.Rng.create 8L in
        let neighbours = List.length (Core.Pib.candidates pib) in
        Test.make
          ~name:
            (Printf.sprintf "pib_step/%d arcs, %d neighbours" (Graph.n_arcs g)
               neighbours)
          (Staged.stage (fun () ->
               ignore (Core.Pib.step pib (Bernoulli_model.sample model rng)))))
      [ (2, 2); (3, 3) ]
  in
  let grouped =
    Test.make_grouped ~name:"complexity" (upsilon_tests @ exec_tests @ pib_tests)
  in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) () in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols acc ->
        let ns =
          match Analyze.OLS.estimates ols with
          | Some (x :: _) -> x
          | _ -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols with Some r -> r | None -> nan
        in
        (name, ns, r2) :: acc)
      results []
    |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
    |> List.map (fun (name, ns, r2) ->
           [ name; Printf.sprintf "%.0f" ns; Printf.sprintf "%.3f" r2 ])
  in
  Table.print ~title:"E8: micro-benchmarks (Bechamel, OLS fit)"
    ~header:[ "benchmark"; "ns/run"; "r^2" ]
    rows;
  Table.note
    "upsilon_aot grows near-linearly in arc count (Section 5.1: polynomial \
     for trees);\npib_step = one query answered + all neighbour updates - \
     the 'unobtrusive' overhead.\n"
