(* E10 — the remaining Section 5.2 applications.

   (a) Negation as failure: answering pauper(x) satisficingly - find one
       possession. Learning probes the most-commonly-owned category first.
   (b) First-k answers: parent(x, Y) has exactly two answers; the stopping
       rule changes but the strategy machinery is unchanged. *)

open Strategy

let run_naf () =
  let n =
    Workload.Naf.make ~rng:(Stats.Rng.create 11L)
      ~categories:
        [ ("house", 3.0, 0.25); ("car", 1.0, 0.85); ("boat", 2.5, 0.05) ]
      ~n_people:300 ~pauper_fraction:0.2 ()
  in
  let dist = Workload.Naf.context_distribution n in
  let cost d = Cost.over_contexts (Spec.Dfs d) dist in
  let start = Spec.default (Workload.Naf.graph n) in
  let pib = Core.Pib.create start in
  ignore (Core.Pib.run pib (Workload.Naf.oracle n (Stats.Rng.create 12L)) ~n:30_000);
  let learned = Core.Pib.current pib in
  Table.print
    ~title:"E10a: negation as failure - cost of deciding has_possession(x)"
    ~header:[ "strategy"; "order"; "E[cost]"; "saving" ]
    [
      [
        "static (house, car, boat)";
        Format.asprintf "%a" Spec.pp_dfs start;
        Table.f3 (cost start);
        "-";
      ];
      [
        "PIB learned";
        Format.asprintf "%a" Spec.pp_dfs learned;
        Table.f3 (cost learned);
        Table.pct (1.0 -. (cost learned /. cost start));
      ];
    ]

let run_firstk () =
  (* Physical order puts the big registry first — not the optimal probe
     order, so the comparison is informative. *)
  let sources =
    [ ("registry", 4.0, 0.6); ("mother_rel", 1.0, 0.95); ("father_rel", 1.5, 0.85) ]
  in
  let rows =
    List.concat_map
      (fun k ->
        let f = Workload.Firstk.make ~sources ~k in
        let default =
          Spec.Dfs (Spec.default (Workload.Firstk.graph f))
        in
        let ratio = Workload.Firstk.ratio_strategy f in
        let brute, brute_cost = Workload.Firstk.brute_optimal f in
        [
          [
            Table.i k;
            "construction order";
            Table.f3 (Workload.Firstk.expected_cost f default);
            "";
          ];
          [
            Table.i k;
            "p/c ratio order";
            Table.f3 (Workload.Firstk.expected_cost f ratio);
            "";
          ];
          [
            Table.i k;
            "brute-force optimum";
            Table.f3 brute_cost;
            Format.asprintf "%a" Spec.pp brute;
          ];
        ])
      [ 1; 2 ]
  in
  Table.print
    ~title:"E10b: first-k answers (parent-style queries, k known a priori)"
    ~header:[ "k"; "strategy"; "E[cost]"; "optimal order" ]
    rows

let run () =
  run_naf ();
  run_firstk ();
  Table.note
    "Both applications reuse the satisficing machinery unchanged: NAF needs \
     one\nwitness; first-k just moves the stopping rule (Section 5.2).\n"
