(* Minimal fixed-width table printer for the experiment harness. *)

let pad width s =
  let n = String.length s in
  if n >= width then s else s ^ String.make (width - n) ' '

(* Unicode-aware enough for our headers: counts bytes, so keep headers
   ASCII. *)
let print ~title ~header rows =
  let all = header :: rows in
  let cols = List.length header in
  let widths =
    List.init cols (fun c ->
        List.fold_left
          (fun acc row ->
            max acc (String.length (try List.nth row c with _ -> "")))
          0 all)
  in
  let line row =
    String.concat "  " (List.map2 pad widths row)
  in
  Printf.printf "\n== %s ==\n" title;
  Printf.printf "%s\n" (line header);
  Printf.printf "%s\n" (String.make (String.length (line header)) '-');
  List.iter (fun row -> Printf.printf "%s\n" (line row)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let f3 x = Printf.sprintf "%.3f" x
let f4 x = Printf.sprintf "%.4f" x
let i = string_of_int
let pct x = Printf.sprintf "%.1f%%" (100. *. x)
let yesno b = if b then "yes" else "no"

let note fmt = Printf.printf fmt
