(* E2 — the [Smi89] fact-count baseline vs learned strategies (Section 2).

   DB2 holds 2000 prof / 500 grad facts, so Smith's heuristic bets on
   prof-first (a 4x likelihood ratio). The user, however, only asks about
   "minors": people who are never profs, 60% of whom are grads. Learning
   from the queries must discover grad-first; the fact-count prior cannot. *)

open Infgraph
open Strategy

let run () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let db2 = Workload.University.db2 () in
  let smith_model = Core.Smith.probabilities g db2 in
  let dp = (Graph.arc_by_label g "D_prof").Graph.arc_id in
  let dg = (Graph.arc_by_label g "D_grad").Graph.arc_id in
  Table.print ~title:"E2a: Smith's fact-count estimates on DB2"
    ~header:[ "retrieval"; "facts"; "p_hat (Smith)" ]
    [
      [ "D_prof"; Table.i (Datalog.Database.count_pred db2 "prof");
        Table.f3 (Bernoulli_model.prob smith_model dp) ];
      [ "D_grad"; Table.i (Datalog.Database.count_pred db2 "grad");
        Table.f3 (Bernoulli_model.prob smith_model dg) ];
    ];
  (* The adversarial "minors" query distribution. *)
  let mix, _db = Workload.University.minors_mix ~grad_fraction:0.6 result in
  let ctx_dist =
    Stats.Distribution.map (fun (q, db) -> Context.of_db g ~query:q ~db) mix
  in
  let cost d = Cost.over_contexts (Spec.Dfs d) ctx_dist in
  let smith = Core.Smith.strategy g db2 in
  (* PIB learning from the real query stream. *)
  let oracle = Core.Oracle.of_queries g mix (Stats.Rng.create 2L) in
  let pib = Core.Pib.create smith in
  ignore (Core.Pib.run pib oracle ~n:5000);
  let learned = Core.Pib.current pib in
  (* The true optimum given the real (minors) distribution: p_prof = 0,
     p_grad = 0.6. *)
  let true_model =
    Bernoulli_model.of_alist g [ ("D_prof", 0.0); ("D_grad", 0.6) ]
  in
  let opt, _ = Upsilon.aot true_model in
  let show name d =
    [ name; Format.asprintf "%a" Spec.pp_dfs d; Table.f4 (cost d) ]
  in
  Table.print
    ~title:"E2b: expected cost under the minors query mix (lower is better)"
    ~header:[ "method"; "strategy"; "E[cost]" ]
    [
      show "Smith [Smi89] (fact counts)" smith;
      show "PIB (learned from queries)" learned;
      show "true optimum" opt;
    ];
  Table.note
    "Smith's DB-statistics prior picks prof-first and pays for it on every \
     query;\nPIB recovers the optimal grad-first order from %d observed \
     queries.\n"
    (Core.Pib.samples_total pib)
