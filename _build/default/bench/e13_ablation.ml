(* E13 — ablations of PIB's design choices (DESIGN.md §3).

   (a) Transformation family 𝒯: adjacent swaps vs all swaps vs +promotions
       (final cost and queries-to-converge on G_B).
   (b) The sequential i²π²/6δ correction: replace Equation 6 with a naive
       fixed-δ Equation 3 at every check and measure how often the learner
       ever leaves the optimal strategy (a mistake). The paper's
       correction keeps that probability below δ overall; the naive test
       does not.
   (c) check_every: testing less often is statistically identical but
       delays climbs. *)

open Infgraph
open Strategy

let family_rows () =
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  let _, c_opt = Upsilon.aot model in
  List.map
    (fun family ->
      let costs = ref 0. and climbs = ref 0 and last_climb = ref 0 in
      let repeats = 10 in
      for rep = 0 to repeats - 1 do
        let pib =
          Core.Pib.create ~config:{ Core.Pib.default_config with moves = family }
            (Workload.Gb.theta_abcd result)
        in
        let oracle =
          Core.Oracle.of_model model (Stats.Rng.create (Int64.of_int (500 + rep)))
        in
        let cl = Core.Pib.run pib oracle ~n:30_000 in
        climbs := !climbs + List.length cl;
        (match List.rev cl with
        | _last :: _ ->
          (* queries consumed before the final climb *)
          last_climb := !last_climb + Core.Pib.samples_total pib - Core.Pib.samples_current pib
        | [] -> ());
        costs := !costs +. fst (Cost.exact_dfs (Core.Pib.current pib) model)
      done;
      let f = float_of_int repeats in
      [
        Moves.family_to_string family;
        Table.f4 (!costs /. f);
        Table.f4 c_opt;
        Table.f1 (float_of_int !climbs /. f);
        Table.i (!last_climb / repeats);
      ])
    [ Moves.Adjacent_swaps; Moves.All_swaps; Moves.Promotions;
      Moves.Swaps_and_promotions ]

(* Isolate the testing schedule: both testers consume the {e exact} paired
   differences on a near-tie where the neighbour is strictly worse, so the
   only difference is the threshold. The naive tester applies the one-shot
   Equation 3 threshold at fixed delta after every sample — "sampling to a
   foregone conclusion"; the corrected tester uses Equation 6's
   i^2 pi^2 / 6 delta schedule. *)
let mistake_rate ~schedule ~delta ~queries ~episodes =
  let ga = Workload.University.build () in
  let g = ga.Build.graph in
  (* Exact tie: D[Theta1, Theta2] = 0, so any "confidently better" verdict
     is a false positive. *)
  let model = Bernoulli_model.of_alist g [ ("D_prof", 0.5); ("D_grad", 0.5) ] in
  let theta = Workload.University.theta1 ga in
  let theta' = Workload.University.theta2 ga in
  let lambda = Costs.total g in
  let mistakes = ref 0 in
  for ep = 0 to episodes - 1 do
    let rng = Stats.Rng.create (Int64.of_int (900 + ep)) in
    let switched = ref false in
    let sum = ref 0. in
    let n = ref 0 in
    while (not !switched) && !n < queries do
      let ctx = Bernoulli_model.sample model rng in
      incr n;
      sum := !sum +. Core.Delta.exact (Spec.Dfs theta) (Spec.Dfs theta') ctx;
      let threshold =
        match schedule with
        | `Naive -> Stats.Chernoff.switch_threshold ~n:!n ~delta ~range:lambda
        | `Sequential ->
          Stats.Chernoff.switch_threshold_seq ~n:!n ~delta ~test_index:!n
            ~range:lambda
      in
      if !sum >= threshold && !sum > 0. then switched := true
    done;
    if !switched then incr mistakes
  done;
  float_of_int !mistakes /. float_of_int episodes

let check_every_rows () =
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  List.map
    (fun every ->
      let samples_to_opt = ref 0 and reached = ref 0 in
      let repeats = 10 in
      let _, c_opt = Upsilon.aot model in
      for rep = 0 to repeats - 1 do
        let pib =
          Core.Pib.create
            ~config:{ Core.Pib.default_config with check_every = every }
            (Workload.Gb.theta_abcd result)
        in
        let oracle =
          Core.Oracle.of_model model (Stats.Rng.create (Int64.of_int (700 + rep)))
        in
        ignore (Core.Pib.run pib oracle ~n:30_000);
        if fst (Cost.exact_dfs (Core.Pib.current pib) model) <= c_opt +. 1e-9
        then begin
          incr reached;
          samples_to_opt :=
            !samples_to_opt + Core.Pib.samples_total pib
            - Core.Pib.samples_current pib
        end
      done;
      [
        Table.i every;
        Printf.sprintf "%d/10" !reached;
        (if !reached = 0 then "-" else Table.i (!samples_to_opt / !reached));
      ])
    [ 1; 10; 100; 1000 ]

let run () =
  Table.print ~title:"E13a: transformation family ablation (G_B, 10 runs)"
    ~header:[ "family 𝒯"; "mean final cost"; "optimum"; "mean climbs";
              "mean queries to final climb" ]
    (family_rows ());
  let delta = 0.25 and queries = 5000 and episodes = 300 in
  Table.print
    ~title:
      (Printf.sprintf
         "E13b: sequential correction ablation (exact tie; delta=%.2f, %d queries, %d episodes)"
         delta queries episodes)
    ~header:[ "tester"; "P(ever leaves the optimum)"; "guarantee" ]
    [
      [ "naive Eq 3 at every check";
        Table.pct (mistake_rate ~schedule:`Naive ~delta ~queries ~episodes);
        "none" ];
      [ "Eq 6 with the 6/(pi^2 i^2) schedule";
        Table.pct (mistake_rate ~schedule:`Sequential ~delta ~queries ~episodes);
        "<= " ^ Table.pct delta ];
    ];
  Table.print ~title:"E13c: check_every (test frequency) on G_B"
    ~header:[ "check_every"; "reached optimum"; "mean queries to final climb" ]
    (check_every_rows ());
  Table.note
    "E13b is the reason Section 3.2 introduces the delta_i schedule: testing \
     repeatedly\nat a fixed delta inflates the lifetime false-positive rate \
     far beyond delta.\n"
