bench/e02_smith_baseline.ml: Bernoulli_model Build Context Core Cost Datalog Format Graph Infgraph Spec Stats Strategy Table Upsilon Workload
