bench/e12_figures.ml: Build Costs Dot Filename Graph Infgraph List Printf Table Unix Workload
