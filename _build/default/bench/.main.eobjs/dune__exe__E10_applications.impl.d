bench/e10_applications.ml: Core Cost Format List Spec Stats Strategy Table Workload
