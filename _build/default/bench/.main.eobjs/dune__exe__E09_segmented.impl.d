bench/e09_segmented.ml: Array Bernoulli_model Core Cost Enumerate Format Graph Infgraph List Spec Stats Strategy Table Workload
