bench/e03_pib1.ml: Bernoulli_model Build Core Cost Exec Fun Graph Infgraph Int64 List Printf Spec Stats Strategy Table Transform Workload
