bench/e08_complexity.ml: Analyze Bechamel Benchmark Bernoulli_model Core Exec Graph Hashtbl Infgraph Int64 List Printf Spec Staged Stats Strategy Table Test Time Toolkit Upsilon Workload
