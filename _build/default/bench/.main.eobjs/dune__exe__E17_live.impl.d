bench/e17_live.ml: Array Core Datalog Format List Printf Stats Strategy Table Workload
