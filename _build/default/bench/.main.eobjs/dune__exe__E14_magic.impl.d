bench/e14_magic.ml: Datalog List Printf Table Unix
