bench/e06_pao_adaptive.ml: Array Bernoulli_model Core Cost Costs Graph Infgraph List Printf Stats Strategy Table Upsilon
