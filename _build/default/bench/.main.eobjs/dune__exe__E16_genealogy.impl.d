bench/e16_genealogy.ml: Array Bernoulli_model Build Context Core Cost Datalog Graph Infgraph List Printf Spec Stats Strategy Table Upsilon Workload
