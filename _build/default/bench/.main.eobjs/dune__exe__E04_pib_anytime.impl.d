bench/e04_pib_anytime.ml: Core Cost Format List Spec Stats Strategy Table Upsilon Workload
