bench/e15_hypergraph.ml: Float Hypergraph Infgraph List Stats Table
