bench/e01_worked_example.ml: Build Context Cost Exec Infgraph Spec Stats Strategy Table Workload
