bench/e05_pao.ml: Array Build Core Cost Float Fun Infgraph Int64 List Printf Stats Strategy Table Upsilon Workload
