bench/e11_sensitivity.ml: Array Bernoulli_model Cost Costs Float Graph Infgraph Int64 List Printf Stats Strategy Table Upsilon Workload
