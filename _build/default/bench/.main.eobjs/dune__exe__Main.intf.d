bench/main.mli:
