bench/e07_comparison.ml: Array Core Cost Costs Infgraph Int64 List Printf Spec Stats Strategy Table Upsilon Workload
