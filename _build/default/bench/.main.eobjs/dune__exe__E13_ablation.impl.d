bench/e13_ablation.ml: Bernoulli_model Build Core Cost Costs Infgraph Int64 List Moves Printf Spec Stats Strategy Table Upsilon Workload
