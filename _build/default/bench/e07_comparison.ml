(* E7 — PIB vs PALO vs PAO on random trees (Sections 3-5).

   The trade the paper describes: PIB is unobtrusive and never stops (no
   global guarantee, may sit at a local optimum); PALO stops at an
   ε-local optimum (paying paired executions); PAO finds an ε-global
   optimum but needs its sampling phase and independence. All three are
   scored against the true Υ_AOT optimum on the same random instances. *)

open Infgraph
open Strategy

let run () =
  let sizes = [ ("shallow (d=2)", 2, 2); ("medium (d=3)", 3, 2); ("bushy (d=3,b=3)", 3, 3) ] in
  let repeats = 10 in
  let rows =
    List.concat_map
      (fun (label, depth, branch) ->
        let acc_regret = Array.make 3 0. in
        let acc_samples = Array.make 3 0 in
        for rep = 0 to repeats - 1 do
          let rng = Stats.Rng.create (Int64.of_int ((depth * 1000) + (branch * 100) + rep)) in
          let params =
            {
              Workload.Synth.default_params with
              depth;
              branch_min = 2;
              branch_max = branch;
              leaf_prob = 0.5;
            }
          in
          let g, model = Workload.Synth.random_instance rng params in
          let _, c_opt = Upsilon.aot model in
          let start = Spec.default g in
          (* PIB: fixed budget of 20k queries. *)
          let pib = Core.Pib.create start in
          ignore
            (Core.Pib.run pib (Core.Oracle.of_model model (Stats.Rng.split rng)) ~n:20_000);
          acc_regret.(0) <-
            acc_regret.(0) +. fst (Cost.exact_dfs (Core.Pib.current pib) model) -. c_opt;
          acc_samples.(0) <- acc_samples.(0) + Core.Pib.samples_total pib;
          (* PALO: runs until its epsilon-local stop. *)
          let epsilon = 0.05 *. Costs.total g in
          let palo =
            Core.Palo.create
              ~config:{ Core.Palo.default_config with epsilon; delta = 0.05 }
              start
          in
          ignore
            (Core.Palo.run palo (Core.Oracle.of_model model (Stats.Rng.split rng))
               ~max_contexts:200_000);
          acc_regret.(1) <-
            acc_regret.(1) +. fst (Cost.exact_dfs (Core.Palo.current palo) model) -. c_opt;
          acc_samples.(1) <- acc_samples.(1) + Core.Palo.samples_total palo;
          (* PAO: engineering mode at 1% of Eq 7. *)
          let report =
            Core.Pao.run ~scale:0.01 ~max_contexts:200_000 ~epsilon:(0.1 *. Costs.total g)
              ~delta:0.05
              (Core.Oracle.of_model model (Stats.Rng.split rng))
          in
          acc_regret.(2) <-
            acc_regret.(2) +. fst (Cost.exact_dfs report.Core.Pao.strategy model) -. c_opt;
          acc_samples.(2) <- acc_samples.(2) + report.Core.Pao.contexts_used
        done;
        let f = float_of_int repeats in
        List.map2
          (fun i name ->
            [
              label;
              name;
              Table.f4 (acc_regret.(i) /. f);
              Table.i (acc_samples.(i) / repeats);
            ])
          [ 0; 1; 2 ]
          [ "PIB (20k queries)"; "PALO (till stop)"; "PAO (1% Eq7)" ])
      sizes
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E7: learner comparison on random trees (mean over %d instances)"
         repeats)
    ~header:[ "instance class"; "method"; "mean regret"; "mean samples" ]
    rows;
  Table.note
    "Regret is measured against the exact Upsilon_AOT optimum on the true \
     model.\nPIB/PALO climb within the DFS class; PAO estimates the whole \
     model at once.\n"
