(* E3 — PIB1's Equation 3 filter (Section 3.1 / Theorem 1 restricted).

   (a) Soundness: when the proposed swap is wrong (Θ2 worse), the rate at
       which PIB1 ever approves it within an episode must stay below δ.
   (b) Power: when the swap is right, how many samples until approval, as
       a function of the true gap D[Θ1, Θ2]. *)

open Infgraph
open Strategy

let episode filter t1 model r ~max_samples =
  let rec go i =
    if i > max_samples then None
    else begin
      Core.Pib1.observe filter (Exec.run (Spec.Dfs t1) (Bernoulli_model.sample model r));
      match Core.Pib1.decision filter with
      | `Switch -> Some i
      | `Keep -> go (i + 1)
    end
  in
  go 1

let run () =
  let ga_result = Workload.University.build () in
  let g = ga_result.Build.graph in
  let t1 = Workload.University.theta1 ga_result in
  let root = Graph.root g in
  let tr = { Transform.node = root; pos_i = 0; pos_j = 1 } in
  let model_of pp pg =
    Bernoulli_model.of_alist g [ ("D_prof", pp); ("D_grad", pg) ]
  in
  (* (a) false positives: Θ2 worse by a clear margin. *)
  let r = Stats.Rng.create 3L in
  let runs = 400 in
  let rows =
    List.map
      (fun delta ->
        let model = model_of 0.6 0.3 in
        let mistakes = ref 0 in
        for _ = 1 to runs do
          let filter = Core.Pib1.create t1 ~transform:tr ~delta in
          if episode filter t1 model r ~max_samples:300 <> None then
            incr mistakes
        done;
        [
          Printf.sprintf "%.2f" delta;
          Table.pct (float_of_int !mistakes /. float_of_int runs);
          "<= " ^ Table.pct delta;
          Table.i runs;
        ])
      [ 0.2; 0.1; 0.05; 0.01 ]
  in
  Table.print
    ~title:"E3a: PIB1 false-approval rate when the swap is wrong (Theorem 1)"
    ~header:[ "delta"; "observed rate"; "guarantee"; "episodes" ]
    rows;
  (* (b) samples to a correct switch vs the true gap. *)
  let rows =
    List.map
      (fun (pp, pg) ->
        let model = model_of pp pg in
        let c1 = fst (Cost.exact_dfs t1 model) in
        let c2 =
          fst (Cost.exact_dfs (Workload.University.theta2 ga_result) model)
        in
        let gap = c1 -. c2 in
        let samples =
          List.filter_map
            (fun seed ->
              let filter = Core.Pib1.create t1 ~transform:tr ~delta:0.05 in
              episode filter t1 model
                (Stats.Rng.create (Int64.of_int (1000 + seed)))
                ~max_samples:100_000)
            (List.init 30 Fun.id)
        in
        let median =
          match List.sort compare samples with
          | [] -> "never"
          | l -> Table.i (List.nth l (List.length l / 2))
        in
        [
          Printf.sprintf "(%.2f, %.2f)" pp pg;
          Table.f3 gap;
          median;
          Printf.sprintf "%d/30" (List.length samples);
        ])
      [ (0.05, 0.9); (0.2, 0.7); (0.3, 0.55); (0.35, 0.45) ]
  in
  Table.print
    ~title:
      "E3b: samples until a correct switch at delta=0.05 (median of 30 runs)"
    ~header:[ "(p_prof, p_grad)"; "true gap D"; "median samples"; "switched" ]
    rows;
  Table.note
    "Smaller true gaps need quadratically more evidence - the price of the \
     Equation 3\nChernoff threshold.\n"
