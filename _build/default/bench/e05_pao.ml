(* E5 — PAO and Theorem 2 (Equation 7).

   For a grid of (ε, δ): the Equation 7 sample bill, the contexts QP^A
   actually used, and the realized regret C[Θ_pao] − C[Θ_opt], which must
   be ≤ ε in at least a 1−δ fraction of runs. The full PAC bill is run
   when feasible; an "engineering mode" row (scale = 1%) shows the
   guarantee holding empirically at a fraction of the theoretical price. *)

open Infgraph
open Strategy

let run () =
  let result = Workload.Gb.build () in
  let g = result.Build.graph in
  let model = Workload.Gb.model result ~pa:0.15 ~pb:0.55 ~pc:0.3 ~pd:0.75 in
  let _, c_opt = Upsilon.aot model in
  let repeats = 20 in
  let row ~epsilon ~delta ~scale =
    let targets = Core.Pao.sample_targets g ~epsilon ~delta in
    let bill = Array.fold_left ( + ) 0 targets in
    let regrets =
      List.map
        (fun seed ->
          let oracle =
            Core.Oracle.of_model model (Stats.Rng.create (Int64.of_int (40 + seed)))
          in
          let report =
            Core.Pao.run ~scale ~max_contexts:5_000_000 ~epsilon ~delta oracle
          in
          ( fst (Cost.exact_dfs report.Core.Pao.strategy model) -. c_opt,
            report.Core.Pao.contexts_used ))
        (List.init repeats Fun.id)
    in
    let within =
      List.length (List.filter (fun (r, _) -> r <= epsilon +. 1e-9) regrets)
    in
    let max_regret = List.fold_left (fun acc (r, _) -> Float.max acc r) 0. regrets in
    let avg_ctx =
      List.fold_left (fun acc (_, c) -> acc + c) 0 regrets / repeats
    in
    [
      Printf.sprintf "%.2f" epsilon;
      Printf.sprintf "%.2f" delta;
      (if scale = 1.0 then "full" else Table.pct scale);
      Table.i bill;
      Table.i avg_ctx;
      Table.f4 max_regret;
      Printf.sprintf "%d/%d" within repeats;
    ]
  in
  let rows =
    [
      row ~epsilon:2.0 ~delta:0.2 ~scale:1.0;
      row ~epsilon:1.0 ~delta:0.1 ~scale:1.0;
      row ~epsilon:0.5 ~delta:0.1 ~scale:1.0;
      row ~epsilon:0.5 ~delta:0.1 ~scale:0.01;
      row ~epsilon:0.25 ~delta:0.05 ~scale:0.01;
    ]
  in
  Table.print
    ~title:"E5: PAO on G_B - Theorem 2's guarantee (20 runs per row)"
    ~header:
      [ "epsilon"; "delta"; "mode"; "Eq7 bill"; "avg contexts"; "max regret";
        "within eps" ]
    rows;
  Table.note
    "The PAC bill is extremely conservative: even at 1%% of Equation 7's \
     samples the\nrealized regret stays within epsilon on every run here.\n"
