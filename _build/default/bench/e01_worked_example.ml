(* E1 — Section 2 / Figure 1 worked example.

   Paper quantities: per-context costs c(Θ1,I1)=4, c(Θ2,I1)=2, c(Θ1,I2)=2,
   c(Θ2,I2)=4; expected costs {2.8, 3.7} under the 60/15/25 query mix.
   (The paper's §2 prints C[Θ1]=3.7, C[Θ2]=2.8, which is inconsistent with
   its own per-context costs and the stated p_prof=0.6 — the value set is
   reproduced; the labels are swapped. See EXPERIMENTS.md.) *)

open Infgraph
open Strategy

let run () =
  let result = Workload.University.build () in
  let g = result.Build.graph in
  let t1 = Workload.University.theta1 result in
  let t2 = Workload.University.theta2 result in
  let db = Workload.University.db1 () in
  let ctx name =
    Context.of_db g ~query:(Build.query_of_consts result [ name ]) ~db
  in
  let c spec ctx = (Exec.run spec ctx).Exec.cost in
  let i1 = ctx "manolis" and i2 = ctx "russ" in
  Table.print ~title:"E1a: per-context costs (paper: 4 / 2 / 2 / 4)"
    ~header:[ "context"; "c(Theta1,I)"; "c(Theta2,I)"; "paper" ]
    [
      [ "I1 = instructor(manolis)"; Table.f1 (c (Spec.Dfs t1) i1);
        Table.f1 (c (Spec.Dfs t2) i1); "4 / 2" ];
      [ "I2 = instructor(russ)"; Table.f1 (c (Spec.Dfs t1) i2);
        Table.f1 (c (Spec.Dfs t2) i2); "2 / 4" ];
    ];
  let mix = Workload.University.query_mix_section2 result in
  let ctx_dist =
    Stats.Distribution.map (fun (q, db) -> Context.of_db g ~query:q ~db) mix
  in
  let model = Workload.University.model_section2 result in
  let mc spec =
    Stats.Welford.mean
      (Cost.monte_carlo spec model (Stats.Rng.create 1L) ~n:200_000)
  in
  Table.print
    ~title:
      "E1b: expected costs under the 60/15/25 mix (paper's value set {2.8, 3.7})"
    ~header:[ "strategy"; "exact (mix)"; "exact (model)"; "monte carlo" ]
    [
      [ "Theta1 = <Rp Dp Rg Dg> (prof first)";
        Table.f4 (Cost.over_contexts (Spec.Dfs t1) ctx_dist);
        Table.f4 (fst (Cost.exact_dfs t1 model));
        Table.f4 (mc (Spec.Dfs t1)) ];
      [ "Theta2 = <Rg Dg Rp Dp> (grad first)";
        Table.f4 (Cost.over_contexts (Spec.Dfs t2) ctx_dist);
        Table.f4 (fst (Cost.exact_dfs t2 model));
        Table.f4 (mc (Spec.Dfs t2)) ];
    ];
  Table.note
    "With p_prof=0.60 (60%% russ queries) the prof-first strategy wins at \
     2.8 vs 3.7;\nthe paper prints the same two values with the labels \
     swapped (see EXPERIMENTS.md E1).\n"
