(* E9 — Section 5.2: scan-order learning for a horizontally segmented
   distributed database.

   Query popularity is Zipf over people, uncorrelated with which file holds
   each record — exactly the correlation failure the paper warns about.
   We compare: the physical file order, the "scan smallest file first"
   static heuristic, PIB's learned order, and the exact optimum (brute
   force over the 4! = 24 orders, evaluated on the true context
   distribution — no independence assumed). *)

open Infgraph
open Strategy

let run () =
  let s =
    Workload.Segmented.make ~rng:(Stats.Rng.create 9L) ~n_files:4
      ~n_people:400 ()
  in
  let g = Workload.Segmented.graph s in
  let dist = Workload.Segmented.context_distribution s in
  let cost spec = Cost.over_contexts spec dist in
  (* Per-file profile. *)
  let model = Workload.Segmented.independent_model s in
  let costs = Workload.Segmented.costs s in
  Table.print ~title:"E9a: file profile (skewed sizes, Zipf queries)"
    ~header:[ "file"; "scan cost"; "query hit prob" ]
    (List.map
       (fun a ->
         [
           a.Graph.label;
           Table.f1 costs.(a.Graph.arc_id);
           Table.f3 (Bernoulli_model.prob model a.Graph.arc_id);
         ])
       (Graph.arcs g));
  let physical = Spec.Dfs (Spec.default g) in
  (* smallest-first static heuristic *)
  let smallest_first =
    let paths = Graph.leaf_paths g in
    Spec.of_paths g
      (List.stable_sort
         (fun p1 p2 ->
           compare costs.(List.hd p1) costs.(List.hd p2))
         paths)
  in
  let pib = Core.Pib.create (Spec.default g) in
  ignore
    (Core.Pib.run pib
       (Workload.Segmented.oracle s (Stats.Rng.create 10L))
       ~n:30_000);
  let learned = Spec.Dfs (Core.Pib.current pib) in
  let optimum =
    List.fold_left
      (fun (best, bc) spec ->
        let c = cost spec in
        if c < bc then (spec, c) else (best, bc))
      (physical, cost physical)
      (Enumerate.all_paths g)
    |> fst
  in
  let row name spec =
    [ name; Format.asprintf "%a" Spec.pp spec; Table.f2 (cost spec) ]
  in
  Table.print ~title:"E9b: expected probe cost per query (lower is better)"
    ~header:[ "method"; "scan order"; "E[cost]" ]
    [
      row "physical file order" physical;
      row "smallest file first" smallest_first;
      row "PIB (learned, 30k queries)" learned;
      row "exact optimum (brute force)" optimum;
    ];
  Table.note
    "PIB needs no independence assumption (Section 5.3) - file hits are \
     mutually\nexclusive here, and the learned order still converges to the \
     true optimum.\n"
