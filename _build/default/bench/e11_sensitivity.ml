(* E11 — Lemma 1's sensitivity bound, measured.

   For random trees and perturbations p̂ = clamp(p + noise):
     C_P[Θ_p̂] − C_P[Θ_P]  ≤  2 Σ_i F¬(e_i) ρ(e_i) |p_i − p̂_i|.
   The bound must never be violated; we also report how loose it is. *)

open Infgraph
open Strategy

let clamp x = Float.max 0.0 (Float.min 1.0 x)

let run () =
  let noise_levels = [ 0.02; 0.05; 0.1; 0.2; 0.4 ] in
  let instances = 40 in
  let rows =
    List.map
      (fun eta ->
        let max_ratio = ref 0. in
        let mean_regret = ref 0. in
        let mean_bound = ref 0. in
        let violations = ref 0 in
        for i = 0 to instances - 1 do
          let rng = Stats.Rng.create (Int64.of_int ((i * 97) + 13)) in
          let params =
            { Workload.Synth.default_params with depth = 3; branch_max = 3 }
          in
          let g, model = Workload.Synth.random_instance rng params in
          let p = Bernoulli_model.probs model in
          let p_hat =
            Array.mapi
              (fun id v ->
                if (Graph.arc g id).Graph.blockable then
                  clamp (v +. Stats.Rng.uniform_in rng ~lo:(-.eta) ~hi:eta)
                else v)
              p
          in
          let model_hat = Bernoulli_model.make g ~p:p_hat in
          let theta_hat, _ = Upsilon.aot model_hat in
          let _, c_opt = Upsilon.aot model in
          let regret = fst (Cost.exact_dfs theta_hat model) -. c_opt in
          let f_not = Costs.f_not_all g in
          let bound =
            2.0
            *. List.fold_left
                 (fun acc a ->
                   let id = a.Graph.arc_id in
                   acc
                   +. f_not.(id)
                      *. Bernoulli_model.rho model id
                      *. abs_float (p.(id) -. p_hat.(id)))
                 0. (Graph.experiments g)
          in
          if regret > bound +. 1e-9 then incr violations;
          mean_regret := !mean_regret +. regret;
          mean_bound := !mean_bound +. bound;
          if bound > 0. then max_ratio := Float.max !max_ratio (regret /. bound)
        done;
        let f = float_of_int instances in
        [
          Table.f2 eta;
          Table.f4 (!mean_regret /. f);
          Table.f2 (!mean_bound /. f);
          Table.f3 !max_ratio;
          Table.i !violations;
        ])
      noise_levels
  in
  Table.print
    ~title:
      (Printf.sprintf
         "E11: Lemma 1 sensitivity bound on %d random trees per noise level"
         instances)
    ~header:
      [ "noise eta"; "mean regret"; "mean Lemma-1 bound"; "max regret/bound";
        "violations" ]
    rows;
  Table.note
    "Zero violations: the measured cost excess of optimizing against \
     perturbed\nestimates always sits below Lemma 1's 2*sum(F_not*rho*|dp|) \
     bound (and far below -\nthe bound is worst-case).\n"
