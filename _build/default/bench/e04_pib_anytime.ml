(* E4 — PIB's anytime behaviour on G_B (Section 3.2, Figures 2-4).

   Starting from Θ_ABCD under the "D_d-heavy" distribution that motivates
   Section 3.2, PIB's successive strategies Θ_0, Θ_1, ... must have
   (with prob >= 1-δ) strictly decreasing true expected costs, ending at
   the Υ_AOT optimum. *)

open Strategy

let run () =
  let result = Workload.Gb.build () in
  let model = Workload.Gb.model_d_heavy result in
  let oracle = Core.Oracle.of_model model (Stats.Rng.create 4L) in
  let pib = Core.Pib.create ~config:{ Core.Pib.default_config with delta = 0.05 }
      (Workload.Gb.theta_abcd result)
  in
  let climbs = Core.Pib.run pib oracle ~n:50_000 in
  let cost d = fst (Cost.exact_dfs d model) in
  let start = Workload.Gb.theta_abcd result in
  let rows =
    ([ "0"; "0"; Format.asprintf "%a" Spec.pp_dfs start; Table.f4 (cost start) ]
    ::
    List.map
      (fun cl ->
        [
          Table.i cl.Core.Pib.step;
          Table.i cl.Core.Pib.samples;
          Format.asprintf "%a" Spec.pp_dfs cl.Core.Pib.to_strategy;
          Table.f4 (cost cl.Core.Pib.to_strategy);
        ])
      climbs)
  in
  Table.print
    ~title:
      "E4: PIB anytime trajectory on G_B (p = <0.05 0.05 0.1 0.8>, delta=0.05)"
    ~header:[ "climb"; "samples@climb"; "strategy"; "true E[cost]" ]
    rows;
  let _, c_opt = Upsilon.aot model in
  Table.note
    "Final cost %.4f vs DFS optimum %.4f after %d climbs over %d queries; \
     every step\nis a strict improvement (Theorem 1 bounds the chance of \
     any mistaken step by delta).\n"
    (cost (Core.Pib.current pib))
    c_opt (List.length climbs)
    (Core.Pib.samples_total pib)
