(* E12 — structural reproduction of the paper's figures.

   Figure 1 (G_A + DB1) and Figure 2 (G_B) are regenerated as Graphviz
   files, and the quantities quoted in Notes 5-6 and Section 3.2 are
   printed from the implementation. *)

open Infgraph

let run () =
  let ga = Workload.University.build () in
  let gb = Workload.Gb.build () in
  let dir = "figures" in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  Dot.to_file ~name:"G_A" (Filename.concat dir "figure1_ga.dot") ga.Build.graph;
  Dot.to_file ~name:"G_B" (Filename.concat dir "figure2_gb.dot") gb.Build.graph;
  Printf.printf "\n== E12: figures ==\nWrote %s and %s\n"
    (Filename.concat dir "figure1_ga.dot")
    (Filename.concat dir "figure2_gb.dot");
  let g = ga.Build.graph in
  let arc label = (Graph.arc_by_label g label).Graph.arc_id in
  Table.print ~title:"E12a: Note 5/6 quantities on G_A (all unit costs)"
    ~header:[ "quantity"; "value"; "paper" ]
    [
      [ "f*(R_p)"; Table.f1 (Costs.f_star g (arc "R_instructor_prof")); "f(Rp)+f(Dp) = 2" ];
      [ "f*(R_g)"; Table.f1 (Costs.f_star g (arc "R_instructor_grad")); "f(Rg)+f(Dg) = 2" ];
      [ "F_not(D_g)"; Table.f1 (Costs.f_not g (arc "D_grad")); "f(Rp)+f(Dp) = 2" ];
      [ "F_not(D_p)"; Table.f1 (Costs.f_not g (arc "D_prof")); "f(Rg)+f(Dg) = 2" ];
      [ "Lambda (swap Rp,Rg)";
        Table.f1
          (Costs.lambda_swap g (arc "R_instructor_prof") (arc "R_instructor_grad"));
        "f*(Rp)+f*(Rg) = 4" ];
    ];
  let g = gb.Build.graph in
  let arc label = (Graph.arc_by_label g label).Graph.arc_id in
  Table.print ~title:"E12b: Section 3.2 quantities on G_B"
    ~header:[ "quantity"; "value"; "paper" ]
    [
      [ "Lambda[ABCD, ABDC]";
        Table.f1 (Costs.lambda_swap g (arc "R_t_c") (arc "R_t_d"));
        "f*(R_tc)+f*(R_td) = 4" ];
      [ "Lambda[ABCD, ACDB]";
        Table.f1 (Costs.lambda_swap g (arc "R_s_b") (arc "R_s_t"));
        "f*(R_sb)+f*(R_st) = 7" ];
      [ "arcs"; Table.i (Graph.n_arcs g); "10" ];
      [ "retrievals"; Table.i (List.length (Graph.retrievals g)); "4" ];
    ]
