(* E16 — end-to-end on the deep genealogy knowledge base.

   Three rule levels, eight leaf relations with very different success
   rates: the written rule order probes the rare ancestor relations
   first. The learners estimate the {e actual} distribution (finite
   population + Zipf query skew), so they can beat Υ run on the
   generator's nominal rates — Υ on the exact arc marginals is the fair
   optimum. *)

open Infgraph
open Strategy

let run () =
  let result = Workload.Genealogy.build () in
  let g = result.Build.graph in
  let pop = Workload.Genealogy.populate (Stats.Rng.create 16L) ~n_people:400 in
  Table.print ~title:"E16a: leaf relations (generator rates vs population)"
    ~header:[ "relation"; "rate"; "facts / 400 people" ]
    (List.map
       (fun (pred, rate) ->
         [
           pred; Table.f3 rate;
           Table.i (Datalog.Database.count_pred (Workload.Genealogy.db pop) pred);
         ])
       Workload.Genealogy.rates);
  let dist = Workload.Genealogy.context_distribution result pop in
  let cost d = Cost.over_contexts (Spec.Dfs d) dist in
  let start = Spec.default g in
  (* PIB *)
  let pib = Core.Pib.create start in
  let climbs =
    Core.Pib.run pib
      (Workload.Genealogy.oracle result pop (Stats.Rng.create 17L))
      ~n:60_000
  in
  (* PALO *)
  let palo =
    Core.Palo.create
      ~config:{ Core.Palo.default_config with epsilon = 0.25 }
      start
  in
  let palo_status =
    Core.Palo.run palo
      (Workload.Genealogy.oracle result pop (Stats.Rng.create 18L))
      ~max_contexts:300_000
  in
  (* Υ on the exact per-leaf rates *)
  let p = Array.make (Graph.n_arcs g) 1.0 in
  List.iter
    (fun a ->
      match a.Graph.pattern with
      | Some pattern ->
        p.(a.Graph.arc_id) <-
          List.assoc
            (Datalog.Symbol.to_string pattern.Datalog.Atom.pred)
            Workload.Genealogy.rates
      | None -> ())
    (Graph.retrievals g);
  let model = Bernoulli_model.make g ~p in
  let upsilon, _ = Upsilon.aot model in
  (* Υ on the exact arc marginals of the real context distribution (the
     finite population and the Zipf query skew shift them away from the
     generator rates). *)
  let p_exact =
    Array.init (Graph.n_arcs g) (fun id ->
        if (Graph.arc g id).Graph.blockable then
          Stats.Distribution.prob_of dist (fun ctx -> Context.unblocked ctx id)
        else 1.0)
  in
  let upsilon_exact, _ = Upsilon.aot (Bernoulli_model.make g ~p:p_exact) in
  Table.print ~title:"E16b: expected cost per relative(x) query"
    ~header:[ "method"; "E[cost]"; "notes" ]
    [
      [ "written rule order"; Table.f3 (cost start); "ancestors probed first" ];
      [ "PIB (60k queries)"; Table.f3 (cost (Core.Pib.current pib));
        Printf.sprintf "%d climbs" (List.length climbs) ];
      [ "PALO (eps=0.25)"; Table.f3 (cost (Core.Palo.current palo));
        (match palo_status with
        | Core.Palo.Stopped { total_samples; _ } ->
          Printf.sprintf "stopped after %d samples" total_samples
        | Core.Palo.Running -> "still running") ];
      [ "Upsilon_AOT on generator rates"; Table.f3 (cost upsilon);
        "ignores population + query-skew drift" ];
      [ "Upsilon_AOT on exact arc marginals"; Table.f3 (cost upsilon_exact);
        "what the learners estimate" ];
    ];
  Table.note
    "The deep graph gives the learners real structure to reorder: sibling \
     and in-law\nsubtrees move ahead of the rare ancestor chain.\n"
