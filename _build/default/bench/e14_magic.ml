(* E14 — the deductive-database substrate at work: magic sets vs full
   bottom-up evaluation ([BR86], cited in the paper's introduction as the
   classical query-optimization line this work complements).

   On an ancestor chain of length L with the bound query anc(n_{L-5}, Y),
   plain semi-naive evaluation materializes the entire O(L²) closure while
   the magic-transformed program derives only what the query reaches. *)

module D = Datalog

let chain n =
  D.Database.of_list
    (List.init n (fun i ->
         D.Atom.make "par"
           [
             D.Term.const (Printf.sprintf "n%d" i);
             D.Term.const (Printf.sprintf "n%d" (i + 1));
           ]))

let rb () =
  D.Rulebase.of_list
    (D.Parser.parse_clauses
       "anc(X, Y) :- par(X, Y). anc(X, Y) :- par(X, Z), anc(Z, Y).")

let run () =
  let rows =
    List.map
      (fun len ->
        let rb = rb () in
        let db = chain len in
        let query =
          D.Atom.make "anc"
            [ D.Term.const (Printf.sprintf "n%d" (len - 5)); D.Term.var "Y" ]
        in
        let t0 = Unix.gettimeofday () in
        let full = D.Seminaive.model rb db in
        let t_full = Unix.gettimeofday () -. t0 in
        let full_facts = D.Database.size full - D.Database.size db in
        let t0 = Unix.gettimeofday () in
        let magic_answers = D.Magic.answers rb db ~query in
        let t_magic = Unix.gettimeofday () -. t0 in
        let magic_facts = D.Magic.derived_size rb db ~query in
        [
          Table.i len;
          Table.i (List.length magic_answers);
          Table.i full_facts;
          Table.i magic_facts;
          Printf.sprintf "%.1fx" (float_of_int full_facts /. float_of_int (max 1 magic_facts));
          Printf.sprintf "%.1f" (t_full *. 1000.);
          Printf.sprintf "%.1f" (t_magic *. 1000.);
        ])
      [ 40; 80; 160; 320 ]
  in
  Table.print
    ~title:"E14: magic sets vs full semi-naive on anc(n_{L-5}, Y) chains"
    ~header:
      [ "chain L"; "answers"; "full facts"; "magic facts"; "fact ratio";
        "full ms"; "magic ms" ]
    rows;
  Table.note
    "Magic keeps the derivation goal-directed: derived facts stay O(answers)\n\
     while the full closure grows quadratically in L.\n"
