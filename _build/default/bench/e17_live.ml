(* E17 — the deployed system (Figure 4 on the real engine).

   Core.Live answers genealogy queries with the actual SLD resolution
   engine, reordering its rules as PIB climbs. The measurement is the
   engine's own work counters (retrievals per query) in successive
   windows of the query stream: the knee in the series is the climb. *)

module D = Datalog

let run () =
  let rb = Workload.Genealogy.rulebase () in
  let pop = Workload.Genealogy.populate (Stats.Rng.create 19L) ~n_people:300 in
  let db = Workload.Genealogy.db pop in
  let live =
    Core.Live.create ~rulebase:rb
      ~query_form:(D.Parser.parse_atom "relative(someone)")
      ()
  in
  let people = Array.of_list (Workload.Genealogy.people pop) in
  let r = Stats.Rng.create 20L in
  let window = 2000 in
  let rows =
    List.map
      (fun w ->
        let reds = ref 0 and rets = ref 0 and hits = ref 0 and switches = ref 0 in
        for _ = 1 to window do
          let name = people.(Stats.Rng.int r (Array.length people)) in
          let q = D.Atom.make "relative" [ D.Term.const name ] in
          let a = Core.Live.answer live ~db q in
          reds := !reds + a.Core.Live.stats.D.Sld.reductions;
          rets := !rets + a.Core.Live.stats.D.Sld.retrievals;
          if a.Core.Live.result <> None then incr hits;
          if a.Core.Live.switched then incr switches
        done;
        let f x = float_of_int !x /. float_of_int window in
        [
          Printf.sprintf "%d-%d" ((w * window) + 1) ((w + 1) * window);
          Table.f2 (f reds);
          Table.f2 (f rets);
          Table.f2 (f reds +. f rets);
          Table.pct (f hits);
          Table.i !switches;
        ])
      [ 0; 1; 2; 3; 4 ]
  in
  Table.print
    ~title:
      "E17: live SLD query processor with PIB attached (genealogy, windows \
       of 2000 queries)"
    ~header:
      [ "queries"; "reductions/q"; "retrievals/q"; "work/q"; "answered";
        "switches" ]
    rows;
  let reds, rets = Core.Live.work live in
  Table.note
    "Total engine work over %d queries: %d reductions, %d retrievals. The \
     strategy in\nforce at the end: %s\n"
    (Core.Live.queries live) reds rets
    (Format.asprintf "%a" Strategy.Spec.pp_dfs (Core.Live.strategy live))
