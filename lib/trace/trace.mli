(** Per-query tracing: a span tree in paper-cost units and wall-clock.

    A {e span} is one step of answering a query — an SLD resolution step,
    a strategy-execution arc attempt, a learner update, a serve-path
    phase. Spans carry a {e paper cost} (the unit the paper's cost model
    charges: 1 per reduction or retrieval in the SLD engine, [f(arc)] per
    arc attempt in the abstract executor) and wall-clock nanoseconds, and
    nest into a tree rooted at the query.

    The central invariant (checked by the [TRACE] wire verb and the test
    suite): the summed paper-cost of the spans under a query's [exec]
    phase equals the cost {!Core.Monitor} records for that query — the
    tracer is a built-in consistency check on the cost model.

    {b Disabled tracing is free.} A tracer is either {!null} or
    collecting; every operation on {!null} is a single tag test that
    allocates nothing and returns the shared {!dummy} span. Hot paths
    thread a tracer unconditionally and stay zero-allocation when tracing
    is off; guard only the {e construction of labels/attributes} behind
    {!enabled}.

    Span kinds used by this repo (free-form strings, not enforced):
    [query] (root), [serve] (daemon root), [sld], [exec], [learn]
    (phases), [reduction], [retrieval], [naf] (SLD events, cost 1/1/0),
    [arc] (executor events, cost [f(arc)]), [wait] (admission-queue
    wait). *)

type span
type t

(** The disabled tracer: every operation is a no-op. *)
val null : t

(** A fresh collecting tracer (no root span yet). *)
val make : unit -> t

val enabled : t -> bool

(** The shared inert span returned by every operation on {!null}.
    Mutating operations applied to it via {!null} are no-ops. *)
val dummy : span

(** {1 Recording} *)

(** [span name] builds a span outside any tracer from values the caller
    already holds — the request-lifecycle layer reconstructs its span
    skeletons from recorded timestamps this way. No clock is read;
    [start_ns]/[wall_ns] default to 0, [attrs]/[children] are taken
    oldest-first (the order {!attrs}/{!children} report). *)
val span :
  ?kind:string ->
  ?start_ns:int64 ->
  ?wall_ns:int64 ->
  ?cost:float ->
  ?attrs:(string * string) list ->
  ?children:span list ->
  string ->
  span

(** [root t name] starts the tracer's root span (replacing any previous
    root). *)
val root : t -> ?kind:string -> string -> span

(** [push t parent name] starts a child span of [parent]. *)
val push : t -> span -> ?kind:string -> string -> span

(** [event t parent name] — an instant child span (started and finished
    at once), the representation of SLD/executor steps whose duration is
    not separately meaningful. *)
val event :
  t ->
  span ->
  ?kind:string ->
  ?cost:float ->
  ?attrs:(string * string) list ->
  string ->
  unit

(** Charge paper-cost units directly to a span. *)
val add_cost : t -> span -> float -> unit

(** Attach a key/value attribute (last write per key wins on render). *)
val set_attr : t -> span -> string -> string -> unit

(** Stop the span's wall clock. A span never finished reports the wall
    time of an instant event (0 ns). *)
val finish : t -> span -> unit

val root_span : t -> span option

(** {1 Reading} *)

val name : span -> string
val kind : span -> string

(** Paper cost charged directly to this span (children not included). *)
val cost : span -> float

val children : span -> span list

val attrs : span -> (string * string) list
val attr : span -> string -> string option
val start_ns : span -> int64
val wall_ns : span -> int64

(** Summed paper cost of the span and its whole subtree. *)
val total_cost : span -> float

(** All spans of the subtree (preorder) whose kind matches. *)
val find_kind : span -> string -> span list

(** Structural equality: name, kind, cost, timestamps, attrs, children.
    (Used by the JSON round-trip tests.) *)
val equal : span -> span -> bool

(** {1 Rendering} *)

(** Indented text tree: [name [kind] cost=... {attrs}] — deliberately
    free of wall-clock times so output is deterministic (timings live in
    the JSON rendering). *)
val pp_tree : Format.formatter -> span -> unit

(** One-line JSON object:
    [{"name":..,"kind":..,"cost":..,"start_ns":..,"wall_ns":..,
      "attrs":{..},"children":[..]}]
    ([attrs]/[children] omitted when empty). *)
val to_json : span -> string

exception Parse_error of string

(** Parse {!to_json} output back into a span ({!equal} to the original).
    Raises {!Parse_error} on malformed input. *)
val of_json : string -> span

(** Escape a string for embedding in a JSON string literal (double
    quotes not included). *)
val json_escape : string -> string

(** The minimal JSON reader behind {!of_json} — just the dialect this
    repo's renderers emit (objects, arrays, strings, numbers, booleans,
    null). Exposed so consumers of composite documents that {e embed}
    span objects (the [FLIGHT] verb's reply, [/debug/flight]) can parse
    the envelope and hand the span values to {!of_json_value}. *)
module Json : sig
  type value =
    | Obj of (string * value) list
    | Arr of value list
    | Str of string
    | Num of string  (** raw text, so int64 timestamps keep precision *)
    | Bool of bool
    | Jnull

  (** Raises {!Parse_error} on malformed input or trailing bytes. *)
  val parse : string -> value
end

(** Like {!of_json}, from an already-parsed {!Json.value}. *)
val of_json_value : Json.value -> span

(** Chrome trace-event / Perfetto JSON ([{"traceEvents":[...]}]): every
    span of every tree becomes one complete ("X"-phase) event with
    microsecond [ts]/[dur] from [start_ns]/[wall_ns], [pid] 1, and [tid]
    taken from the span's [tid_attr] attribute (default ["loop"], 0 when
    absent) — so a fleet trace lanes per event loop. Paper cost and all
    attributes ride in [args]. *)
val to_chrome : ?tid_attr:string -> span list -> string

(** A bounded ring of recent rendered traces.

    Holds the last [capacity] entries (each typically one {!to_json}
    line); adding to a full ring evicts the oldest. {b Not} thread-safe —
    callers that share a ring across threads must serialize access
    themselves ([Serve.Metrics] guards its ring with the metrics lock,
    keeping this library dependency-light). *)
module Ring : sig
  type t

  (** Raises [Invalid_argument] unless [capacity >= 1]. *)
  val create : capacity:int -> t

  val capacity : t -> int

  (** Entries currently held (0 to [capacity]). *)
  val length : t -> int

  val add : t -> string -> unit

  (** Oldest first. *)
  val to_list : t -> string list
end
