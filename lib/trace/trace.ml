type span = {
  sp_name : string;
  sp_kind : string;
  mutable sp_cost : float;
  sp_start_ns : int64;
  mutable sp_wall_ns : int64;
  mutable sp_children : span list; (* newest first *)
  mutable sp_attrs : (string * string) list; (* newest first *)
}

type state = { mutable root : span option }
type t = Null | On of state

let null = Null
let make () = On { root = None }
let enabled = function Null -> false | On _ -> true

let dummy =
  {
    sp_name = "";
    sp_kind = "";
    sp_cost = 0.0;
    sp_start_ns = 0L;
    sp_wall_ns = 0L;
    sp_children = [];
    sp_attrs = [];
  }

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let fresh ?(kind = "span") name =
  {
    sp_name = name;
    sp_kind = kind;
    sp_cost = 0.0;
    sp_start_ns = now_ns ();
    sp_wall_ns = 0L;
    sp_children = [];
    sp_attrs = [];
  }

(* Pure constructor for spans assembled after the fact from recorded
   timestamps (the serve layer's request-lifecycle skeletons): no tracer,
   no clock reads — every field is the caller's. *)
let span ?(kind = "span") ?(start_ns = 0L) ?(wall_ns = 0L) ?(cost = 0.0)
    ?(attrs = []) ?(children = []) name =
  {
    sp_name = name;
    sp_kind = kind;
    sp_cost = cost;
    sp_start_ns = start_ns;
    sp_wall_ns = wall_ns;
    sp_children = List.rev children;
    sp_attrs = List.rev attrs;
  }

let root t ?kind name =
  match t with
  | Null -> dummy
  | On st ->
    let sp = fresh ?kind name in
    st.root <- Some sp;
    sp

let push t parent ?kind name =
  match t with
  | Null -> dummy
  | On _ ->
    let sp = fresh ?kind name in
    parent.sp_children <- sp :: parent.sp_children;
    sp

let add_cost t sp c = match t with Null -> () | On _ -> sp.sp_cost <- sp.sp_cost +. c

let set_attr t sp k v =
  match t with Null -> () | On _ -> sp.sp_attrs <- (k, v) :: sp.sp_attrs

let event t parent ?kind ?(cost = 0.0) ?(attrs = []) name =
  match t with
  | Null -> ()
  | On _ ->
    let sp = fresh ?kind name in
    sp.sp_cost <- cost;
    sp.sp_attrs <- List.rev attrs;
    parent.sp_children <- sp :: parent.sp_children

let finish t sp =
  match t with
  | Null -> ()
  | On _ -> sp.sp_wall_ns <- Int64.max 0L (Int64.sub (now_ns ()) sp.sp_start_ns)

let root_span = function Null -> None | On st -> st.root

(* ---------- reads ---------- *)

let name sp = sp.sp_name
let kind sp = sp.sp_kind
let cost sp = sp.sp_cost
let children sp = List.rev sp.sp_children

(* Last write per key wins; oldest-first order of first occurrence. *)
let attrs sp =
  let seen = Hashtbl.create 4 in
  List.iter
    (fun (k, v) -> if not (Hashtbl.mem seen k) then Hashtbl.add seen k v)
    sp.sp_attrs;
  List.rev sp.sp_attrs
  |> List.filter_map (fun (k, _) ->
         match Hashtbl.find_opt seen k with
         | Some v ->
           Hashtbl.remove seen k;
           Some (k, v)
         | None -> None)

let attr sp k = List.assoc_opt k sp.sp_attrs
let start_ns sp = sp.sp_start_ns
let wall_ns sp = sp.sp_wall_ns

let rec total_cost sp =
  List.fold_left (fun acc c -> acc +. total_cost c) sp.sp_cost sp.sp_children

let find_kind sp k =
  let rec go acc sp =
    let acc = if sp.sp_kind = k then sp :: acc else acc in
    List.fold_left go acc (children sp)
  in
  List.rev (go [] sp)

let rec equal a b =
  a.sp_name = b.sp_name && a.sp_kind = b.sp_kind && a.sp_cost = b.sp_cost
  && a.sp_start_ns = b.sp_start_ns
  && a.sp_wall_ns = b.sp_wall_ns
  && attrs a = attrs b
  && List.length a.sp_children = List.length b.sp_children
  && List.for_all2 equal (children a) (children b)

(* ---------- text rendering ---------- *)

let pp_tree ppf sp =
  let rec go indent sp =
    Format.fprintf ppf "%s%s [%s] cost=%g" indent sp.sp_name sp.sp_kind
      sp.sp_cost;
    List.iter (fun (k, v) -> Format.fprintf ppf " %s=%s" k v) (attrs sp);
    Format.fprintf ppf "@.";
    List.iter (go (indent ^ "  ")) (children sp)
  in
  go "" sp

(* ---------- JSON ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_repr f =
  (* Shortest representation that round-trips a float. *)
  let s = Printf.sprintf "%.15g" f in
  if float_of_string s = f then s else Printf.sprintf "%.17g" f

let to_json sp =
  let buf = Buffer.create 256 in
  let rec go sp =
    Buffer.add_string buf
      (Printf.sprintf "{\"name\":\"%s\",\"kind\":\"%s\",\"cost\":%s,\
                       \"start_ns\":%Ld,\"wall_ns\":%Ld"
         (json_escape sp.sp_name) (json_escape sp.sp_kind)
         (float_repr sp.sp_cost) sp.sp_start_ns sp.sp_wall_ns);
    (match attrs sp with
    | [] -> ()
    | kvs ->
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        kvs;
      Buffer.add_char buf '}');
    (match children sp with
    | [] -> ()
    | cs ->
      Buffer.add_string buf ",\"children\":[";
      List.iteri
        (fun i c ->
          if i > 0 then Buffer.add_char buf ',';
          go c)
        cs;
      Buffer.add_char buf ']');
    Buffer.add_char buf '}'
  in
  go sp;
  Buffer.contents buf

exception Parse_error of string

(* A minimal JSON reader, just enough for the dialect [to_json] emits
   (objects, arrays, strings, numbers, booleans, null). *)
module Json = struct
  type value =
    | Obj of (string * value) list
    | Arr of value list
    | Str of string
    | Num of string  (* raw text, so int64 timestamps keep full precision *)
    | Bool of bool
    | Jnull

  type reader = { text : string; mutable pos : int }

  let fail r msg = raise (Parse_error (Printf.sprintf "%s at %d" msg r.pos))
  let peek r = if r.pos < String.length r.text then Some r.text.[r.pos] else None

  let skip_ws r =
    while
      r.pos < String.length r.text
      && match r.text.[r.pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      r.pos <- r.pos + 1
    done

  let expect r c =
    skip_ws r;
    match peek r with
    | Some c' when c' = c -> r.pos <- r.pos + 1
    | _ -> fail r (Printf.sprintf "expected %c" c)

  let literal r word value =
    if
      r.pos + String.length word <= String.length r.text
      && String.sub r.text r.pos (String.length word) = word
    then begin
      r.pos <- r.pos + String.length word;
      value
    end
    else fail r ("expected " ^ word)

  let string r =
    expect r '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if r.pos >= String.length r.text then fail r "unterminated string";
      let c = r.text.[r.pos] in
      r.pos <- r.pos + 1;
      match c with
      | '"' -> Buffer.contents buf
      | '\\' ->
        (if r.pos >= String.length r.text then fail r "bad escape";
         let e = r.text.[r.pos] in
         r.pos <- r.pos + 1;
         match e with
         | '"' -> Buffer.add_char buf '"'
         | '\\' -> Buffer.add_char buf '\\'
         | '/' -> Buffer.add_char buf '/'
         | 'n' -> Buffer.add_char buf '\n'
         | 'r' -> Buffer.add_char buf '\r'
         | 't' -> Buffer.add_char buf '\t'
         | 'b' -> Buffer.add_char buf '\b'
         | 'f' -> Buffer.add_char buf '\012'
         | 'u' ->
           if r.pos + 4 > String.length r.text then fail r "bad \\u escape";
           let hex = String.sub r.text r.pos 4 in
           r.pos <- r.pos + 4;
           let code =
             try int_of_string ("0x" ^ hex)
             with Failure _ -> fail r "bad \\u escape"
           in
           (* to_json only emits \u for control characters *)
           if code < 0x80 then Buffer.add_char buf (Char.chr code)
           else fail r "unsupported \\u escape"
         | _ -> fail r "bad escape");
        go ()
      | c -> Buffer.add_char buf c; go ()
    in
    go ()

  let number r =
    let start = r.pos in
    let is_num_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while r.pos < String.length r.text && is_num_char r.text.[r.pos] do
      r.pos <- r.pos + 1
    done;
    if r.pos = start then fail r "expected number";
    let raw = String.sub r.text start (r.pos - start) in
    if float_of_string_opt raw = None then fail r "malformed number";
    raw

  let rec value r =
    skip_ws r;
    match peek r with
    | Some '{' ->
      r.pos <- r.pos + 1;
      skip_ws r;
      if peek r = Some '}' then (r.pos <- r.pos + 1; Obj [])
      else begin
        let rec fields acc =
          skip_ws r;
          let k = string r in
          expect r ':';
          let v = value r in
          skip_ws r;
          match peek r with
          | Some ',' -> r.pos <- r.pos + 1; fields ((k, v) :: acc)
          | Some '}' -> r.pos <- r.pos + 1; List.rev ((k, v) :: acc)
          | _ -> fail r "expected , or }"
        in
        Obj (fields [])
      end
    | Some '[' ->
      r.pos <- r.pos + 1;
      skip_ws r;
      if peek r = Some ']' then (r.pos <- r.pos + 1; Arr [])
      else begin
        let rec elems acc =
          let v = value r in
          skip_ws r;
          match peek r with
          | Some ',' -> r.pos <- r.pos + 1; elems (v :: acc)
          | Some ']' -> r.pos <- r.pos + 1; List.rev (v :: acc)
          | _ -> fail r "expected , or ]"
        in
        Arr (elems [])
      end
    | Some '"' -> Str (string r)
    | Some 't' -> literal r "true" (Bool true)
    | Some 'f' -> literal r "false" (Bool false)
    | Some 'n' -> literal r "null" Jnull
    | _ -> Num (number r)

  let parse text =
    let r = { text; pos = 0 } in
    let v = value r in
    skip_ws r;
    if r.pos <> String.length text then fail r "trailing input";
    v
end

module Ring = struct
  type t = {
    items : string array;
    mutable next : int;  (* slot the next add writes *)
    mutable len : int;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Ring.create: capacity must be >= 1";
    { items = Array.make capacity ""; next = 0; len = 0 }

  let capacity t = Array.length t.items
  let length t = t.len

  let add t s =
    t.items.(t.next) <- s;
    t.next <- (t.next + 1) mod Array.length t.items;
    if t.len < Array.length t.items then t.len <- t.len + 1

  let to_list t =
    let cap = Array.length t.items in
    List.init t.len (fun i ->
        t.items.((t.next - t.len + i + (2 * cap)) mod cap))
end

let of_json_value v =
  let fail msg = raise (Parse_error msg) in
  let rec span_of = function
    | Json.Obj fields ->
      let get k = List.assoc_opt k fields in
      let str k =
        match get k with
        | Some (Json.Str s) -> s
        | Some _ -> fail (k ^ " must be a string")
        | None -> fail ("missing field " ^ k)
      in
      let num k =
        match get k with
        | Some (Json.Num raw) -> float_of_string raw
        | Some _ -> fail (k ^ " must be a number")
        | None -> fail ("missing field " ^ k)
      in
      let num64 k =
        match get k with
        | Some (Json.Num raw) -> (
          match Int64.of_string_opt raw with
          | Some i -> i
          | None -> Int64.of_float (float_of_string raw))
        | Some _ -> fail (k ^ " must be a number")
        | None -> fail ("missing field " ^ k)
      in
      let attrs =
        match get "attrs" with
        | None -> []
        | Some (Json.Obj kvs) ->
          List.map
            (function
              | k, Json.Str v -> (k, v)
              | _ -> fail "attrs values must be strings")
            kvs
        | Some _ -> fail "attrs must be an object"
      in
      let children =
        match get "children" with
        | None -> []
        | Some (Json.Arr vs) -> List.map span_of vs
        | Some _ -> fail "children must be an array"
      in
      {
        sp_name = str "name";
        sp_kind = str "kind";
        sp_cost = num "cost";
        sp_start_ns = num64 "start_ns";
        sp_wall_ns = num64 "wall_ns";
        sp_children = List.rev children;
        sp_attrs = List.rev attrs;
      }
    | _ -> fail "span must be a JSON object"
  in
  span_of v

let of_json text = of_json_value (Json.parse text)

(* ---------- Chrome trace-event export ----------

   The [chrome://tracing] / Perfetto JSON-object format: one complete
   ("X"-phase) event per span, microsecond timestamps, the owning event
   loop as the thread id so Perfetto lanes the fleet per loop. *)

let to_chrome ?(tid_attr = "loop") roots =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\"traceEvents\":[";
  let first = ref true in
  let us_of_ns ns = Int64.to_float ns /. 1e3 in
  let rec go sp =
    if !first then first := false else Buffer.add_char buf ',';
    let tid =
      match Option.bind (attr sp tid_attr) int_of_string_opt with
      | Some i -> i
      | None -> 0
    in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%s,\
          \"dur\":%s,\"pid\":1,\"tid\":%d"
         (json_escape sp.sp_name) (json_escape sp.sp_kind)
         (float_repr (us_of_ns sp.sp_start_ns))
         (float_repr (us_of_ns sp.sp_wall_ns))
         tid);
    let args = ("cost", float_repr sp.sp_cost) :: attrs sp in
    Buffer.add_string buf ",\"args\":{";
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf
          (Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v)))
      args;
    Buffer.add_string buf "}}";
    List.iter go (children sp)
  in
  List.iter go roots;
  Buffer.add_string buf "]}";
  Buffer.contents buf
