(** Leveled structured logging: one JSON object per line (JSONL), safe
    to call from any thread.

    Record shape (see docs/OBSERVABILITY.md):
    [{"ts":"<ISO 8601 UTC>","mono_ns":<ns since logger creation>,
      "level":"info","msg":"...", <extra fields>}] *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
val level_of_string : string -> level option

type field =
  | S of string
  | I of int
  | F of float
  | B of bool
  | J of string
      (** Pre-rendered JSON embedded verbatim — e.g. a trace span tree. *)

type t

(** Discards everything; [enabled] is always [false], so call sites pay
    only a branch. *)
val null : t

(** Log to an existing channel (not closed by {!close}). *)
val to_channel : ?level:level -> out_channel -> t

(** Append to [path], creating it if needed. Raises [Sys_error] if the
    file cannot be opened. *)
val open_file : ?level:level -> string -> t

val set_level : t -> level -> unit
val level : t -> level

(** [true] when a record at this level would be written — guard any
    expensive field construction with this. *)
val enabled : t -> level -> bool

val log : t -> level -> ?fields:(string * field) list -> string -> unit
val debug : t -> ?fields:(string * field) list -> string -> unit
val info : t -> ?fields:(string * field) list -> string -> unit
val warn : t -> ?fields:(string * field) list -> string -> unit
val error : t -> ?fields:(string * field) list -> string -> unit

(** Flush (and close, for {!open_file} sinks) the output. *)
val close : t -> unit

(** Token-bucket-of-one rate limiter — at most one admitted event per
    [min_interval_s]; used by the slow-query log. *)
module Limiter : sig
  type t

  val create : min_interval_s:float -> t

  (** [Some n] admits the event, where [n] is the number of events
      suppressed since the last admitted one; [None] suppresses it. *)
  val admit : t -> now:float -> int option
end

(** Route the [logs] library (used by lib/core's PIB/PALO debug
    tracing) into this sink as JSONL records with a ["src"] field, and
    align the [Logs] level with the sink's. *)
val install_logs_reporter : t -> unit
