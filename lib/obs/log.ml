(* Leveled structured logging: one JSON object per line, written under a
   mutex so concurrent worker threads never interleave records. Each
   record carries a wall-clock ISO 8601 timestamp and a monotonic-ish
   nanosecond offset from logger creation (gettimeofday-based — the
   toolchain has no monotonic clock library; good enough for ordering
   and latency arithmetic within one process run). *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let level_rank = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

type field =
  | S of string
  | I of int
  | F of float
  | B of bool
  | J of string  (* pre-rendered JSON, embedded verbatim *)

type sink = Null | Channel of { oc : out_channel; close_on_close : bool }

type t = {
  (* Atomic: [enabled] reads it on every log call from any worker
     domain, racing a possible [set_level]. *)
  min_level : level Atomic.t;
  sink : sink;
  lock : Mutex.t;
  t0 : float;  (* gettimeofday at creation; origin for mono_ns *)
}

let null =
  { min_level = Atomic.make Error; sink = Null; lock = Mutex.create (); t0 = 0.0 }

let to_channel ?(level = Info) oc =
  {
    min_level = Atomic.make level;
    sink = Channel { oc; close_on_close = false };
    lock = Mutex.create ();
    t0 = Unix.gettimeofday ();
  }

let open_file ?(level = Info) path =
  let oc =
    open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path
  in
  {
    min_level = Atomic.make level;
    sink = Channel { oc; close_on_close = true };
    lock = Mutex.create ();
    t0 = Unix.gettimeofday ();
  }

let set_level t l = Atomic.set t.min_level l
let level t = Atomic.get t.min_level

let enabled t l =
  match t.sink with
  | Null -> false
  | Channel _ -> level_rank l >= level_rank (Atomic.get t.min_level)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float v =
  if Float.is_nan v || Float.is_integer v |> not then
    if Float.is_nan v || Float.abs v = Float.infinity then
      (* JSON has no Inf/NaN; encode as string *)
      Printf.sprintf "\"%s\"" (Expo.float_str v)
    else Printf.sprintf "%.6g" v
  else Printf.sprintf "%.0f" v

let field_json = function
  | S s -> Printf.sprintf "\"%s\"" (json_escape s)
  | I i -> string_of_int i
  | F v -> json_float v
  | B b -> if b then "true" else "false"
  | J raw -> raw

let iso8601 now =
  let tm = Unix.gmtime now in
  let ms = int_of_float (Float.rem now 1.0 *. 1000.0) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec ms

let log t lvl ?(fields = []) msg =
  if enabled t lvl then
    match t.sink with
    | Null -> ()
    | Channel { oc; _ } ->
      let now = Unix.gettimeofday () in
      let mono_ns = Int64.of_float ((now -. t.t0) *. 1e9) in
      let buf = Buffer.create 160 in
      Printf.bprintf buf "{\"ts\":\"%s\",\"mono_ns\":%Ld,\"level\":\"%s\",\"msg\":\"%s\""
        (iso8601 now) mono_ns (level_to_string lvl) (json_escape msg);
      List.iter
        (fun (k, v) ->
          Printf.bprintf buf ",\"%s\":%s" (json_escape k) (field_json v))
        fields;
      Buffer.add_string buf "}\n";
      Mutex.lock t.lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.lock)
        (fun () ->
          output_string oc (Buffer.contents buf);
          flush oc)

let debug t ?fields msg = log t Debug ?fields msg
let info t ?fields msg = log t Info ?fields msg
let warn t ?fields msg = log t Warn ?fields msg
let error t ?fields msg = log t Error ?fields msg

let close t =
  match t.sink with
  | Null -> ()
  | Channel { oc; close_on_close } ->
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        flush oc;
        if close_on_close then close_out_noerr oc)

(* ---------- rate limiting (the slow-query log) ---------- *)

module Limiter = struct
  type nonrec t = {
    min_interval_s : float;
    lock : Mutex.t;
    mutable last_admit : float;  (* -inf before the first admit *)
    mutable suppressed : int;
  }

  let create ~min_interval_s =
    {
      min_interval_s;
      lock = Mutex.create ();
      last_admit = Float.neg_infinity;
      suppressed = 0;
    }

  (* [Some n] admits the event (n = events suppressed since the last
     admitted one); [None] suppresses it. *)
  let admit t ~now =
    Mutex.lock t.lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.lock)
      (fun () ->
        if now -. t.last_admit >= t.min_interval_s then begin
          let n = t.suppressed in
          t.suppressed <- 0;
          t.last_admit <- now;
          Some n
        end
        else begin
          t.suppressed <- t.suppressed + 1;
          None
        end)
end

(* ---------- bridge for the [logs] library ---------- *)

(* lib/core's PIB/PALO modules log through [Logs] sources
   ("strategem.pib", "strategem.palo"); forward those records into the
   structured stream so `--log-level debug` shows learner internals as
   JSONL like everything else. *)
let logs_reporter t =
  let report src lvl ~over k msgf =
    let level =
      match lvl with
      | Logs.App | Logs.Info -> Info
      | Logs.Error -> Error
      | Logs.Warning -> Warn
      | Logs.Debug -> Debug
    in
    if not (enabled t level) then begin
      over ();
      k ()
    end
    else
      msgf @@ fun ?header ?tags:_ fmt ->
      Format.kasprintf
        (fun msg ->
          let fields =
            ("src", S (Logs.Src.name src))
            ::
            (match header with None -> [] | Some h -> [ ("header", S h) ])
          in
          log t level ~fields msg;
          over ();
          k ())
        fmt
  in
  { Logs.report }

let install_logs_reporter t =
  Logs.set_reporter (logs_reporter t);
  Logs.set_level ~all:true
    (Some
       (match Atomic.get t.min_level with
       | Debug -> Logs.Debug
       | Info -> Logs.Info
       | Warn -> Logs.Warning
       | Error -> Logs.Error))
