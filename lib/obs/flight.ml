(* Per-loop flight recorder: single-writer binary ring, torn-read-safe
   concurrent snapshots. See the .mli for the record layout. *)

let record_size = 48

type t = {
  buf : Bytes.t;          (* capacity * record_size, single writer *)
  mask : int;             (* capacity - 1 (capacity is a power of two) *)
  published : int Atomic.t;  (* records fully written *)
}

let rec pow2 n k = if k >= n then k else pow2 n (k * 2)

let create ~capacity =
  if capacity <= 0 then
    { buf = Bytes.create 0; mask = -1; published = Atomic.make 0 }
  else
    let cap = pow2 capacity 1 in
    { buf = Bytes.create (cap * record_size); mask = cap - 1;
      published = Atomic.make 0 }

let enabled t = t.mask >= 0
let capacity t = if t.mask < 0 then 0 else t.mask + 1
let seq t = Atomic.get t.published

let record t ~ts_ns ~code ~loop ~conn ~rid ~a ~b =
  if t.mask >= 0 then begin
    let s = Atomic.get t.published in
    let off = (s land t.mask) * record_size in
    (* Payload first, the slot's seq stamp second, the publish last: a
       concurrent reader that copies this slot mid-write sees a stale
       stamp and drops it. *)
    Bytes.set_int64_le t.buf (off + 8) ts_ns;
    Bytes.set_uint16_le t.buf (off + 16) (code land 0xFFFF);
    Bytes.set_uint16_le t.buf (off + 18) (loop land 0xFFFF);
    Bytes.set_int32_le t.buf (off + 20) (Int32.of_int conn);
    Bytes.set_int32_le t.buf (off + 24) (Int32.of_int rid);
    Bytes.set_int32_le t.buf (off + 28) 0l;
    Bytes.set_int64_le t.buf (off + 32) a;
    Bytes.set_int64_le t.buf (off + 40) b;
    Bytes.set_int64_le t.buf off (Int64.of_int s);
    Atomic.set t.published (s + 1)
  end

type event = {
  ev_seq : int;
  ev_ts_ns : int64;
  ev_code : int;
  ev_loop : int;
  ev_conn : int;
  ev_rid : int;
  ev_a : int64;
  ev_b : int64;
}

let u32 i32 = Int32.to_int i32 land 0xFFFFFFFF

let snapshot t =
  if t.mask < 0 then []
  else begin
    let cap = t.mask + 1 in
    let hi = Atomic.get t.published in
    let lo = max 0 (hi - cap) in
    let copy = Bytes.create record_size in
    let out = ref [] in
    for s = hi - 1 downto lo do
      let off = (s land t.mask) * record_size in
      Bytes.blit t.buf off copy 0 record_size;
      (* Validate the stamp after the copy: a mismatch means the writer
         lapped us into this slot mid-blit. *)
      if Bytes.get_int64_le copy 0 = Int64.of_int s then
        out :=
          {
            ev_seq = s;
            ev_ts_ns = Bytes.get_int64_le copy 8;
            ev_code = Bytes.get_uint16_le copy 16;
            ev_loop = Bytes.get_uint16_le copy 18;
            ev_conn = u32 (Bytes.get_int32_le copy 20);
            ev_rid = u32 (Bytes.get_int32_le copy 24);
            ev_a = Bytes.get_int64_le copy 32;
            ev_b = Bytes.get_int64_le copy 40;
          }
          :: !out
    done;
    !out
  end

(* ---------- event codes ---------- *)

let code_accept = 1
let code_close = 2
let code_shed = 3
let code_request = 4
let code_enqueue = 5
let code_worker = 6
let code_respond = 7
let code_flush = 8

let code_name = function
  | 1 -> "accept"
  | 2 -> "close"
  | 3 -> "shed"
  | 4 -> "request"
  | 5 -> "enqueue"
  | 6 -> "worker"
  | 7 -> "respond"
  | 8 -> "flush"
  | c -> Printf.sprintf "code%d" c

let event_to_json e =
  Printf.sprintf
    "{\"seq\":%d,\"ts_ns\":%Ld,\"code\":\"%s\",\"loop\":%d,\"conn\":%d,\
     \"rid\":%d,\"a\":%Ld,\"b\":%Ld}"
    e.ev_seq e.ev_ts_ns (code_name e.ev_code) e.ev_loop e.ev_conn e.ev_rid
    e.ev_a e.ev_b
