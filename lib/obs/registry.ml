(* The instrument store behind /metrics and the STATS facade.

   Shape: a registry holds *families* (name, help text, label names, and
   one of three kinds); a family holds one *child* time series per
   distinct label-value tuple. Families and children are created under
   the registry lock (cold path — consumers cache child handles); the
   hot path touches only the child itself: counters and gauges are
   atomics, histograms take their own per-child mutex. Updates are O(1)
   and two children never contend with each other — the "lock sharding"
   is one shard per time series. *)

let name_re_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> true
         | _ -> false)
       s

let label_re_ok s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false)
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

type kind = Counter_k | Gauge_k | Histogram_k

(* Log-scale latency buckets, shared with the serve-path STATS
   histograms: bucket [i] holds observations in [[2^i, 2^(i+1)) µs); the
   last bucket is the overflow. 22 doubling buckets reach ~4.2 s. *)
let n_buckets = 22

let bucket_of_value v =
  let v = int_of_float (Float.max v 0.0) in
  let rec go i bound = if v < bound then i else go (i + 1) (bound * 2) in
  Int.min (go 0 2) n_buckets

(* Upper bound of bucket [i] (the Prometheus [le]); the overflow bucket
   has no finite bound. *)
let bucket_upper i = 1 lsl (i + 1)

type hist_state = {
  h_lock : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array;  (* length n_buckets + 1 *)
}

type child_state =
  | Counter_c of int Atomic.t
  | Gauge_c of float Atomic.t
  | Histogram_c of hist_state

type child = { labels : string list; state : child_state }

type family = {
  fam_name : string;
  fam_help : string;
  fam_labels : string list;
  fam_kind : kind;
  fam_lock : Mutex.t;  (* guards [children] creation *)
  children : (string list, child) Hashtbl.t;
}

type t = {
  lock : Mutex.t;
  mutable families : family list;  (* newest first *)
  mutable hooks : (unit -> unit) list;  (* run before every render *)
}

let create () = { lock = Mutex.create (); families = []; hooks = [] }

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let on_collect t f = with_lock t.lock (fun () -> t.hooks <- f :: t.hooks)

let collect t =
  let hooks = with_lock t.lock (fun () -> List.rev t.hooks) in
  List.iter (fun f -> f ()) hooks

let family t ~kind ~help ~labels name =
  if not (name_re_ok name) then
    invalid_arg (Printf.sprintf "Obs.Registry: invalid metric name %S" name);
  List.iter
    (fun l ->
      if not (label_re_ok l) then
        invalid_arg (Printf.sprintf "Obs.Registry: invalid label name %S" l))
    labels;
  with_lock t.lock (fun () ->
      if List.exists (fun f -> f.fam_name = name) t.families then
        invalid_arg
          (Printf.sprintf "Obs.Registry: duplicate metric family %S" name);
      let f =
        {
          fam_name = name;
          fam_help = help;
          fam_labels = labels;
          fam_kind = kind;
          fam_lock = Mutex.create ();
          children = Hashtbl.create 4;
        }
      in
      t.families <- f :: t.families;
      f)

let child fam values =
  if List.length values <> List.length fam.fam_labels then
    invalid_arg
      (Printf.sprintf "Obs.Registry: %s takes %d label value(s), got %d"
         fam.fam_name
         (List.length fam.fam_labels)
         (List.length values));
  with_lock fam.fam_lock (fun () ->
      match Hashtbl.find_opt fam.children values with
      | Some c -> c
      | None ->
        let state =
          match fam.fam_kind with
          | Counter_k -> Counter_c (Atomic.make 0)
          | Gauge_k -> Gauge_c (Atomic.make 0.0)
          | Histogram_k ->
            Histogram_c
              {
                h_lock = Mutex.create ();
                h_count = 0;
                h_sum = 0.0;
                h_buckets = Array.make (n_buckets + 1) 0;
              }
        in
        let c = { labels = values; state } in
        Hashtbl.add fam.children values c;
        c)

let sorted_children fam =
  with_lock fam.fam_lock (fun () ->
      Hashtbl.fold (fun _ c acc -> c :: acc) fam.children [])
  |> List.sort (fun a b -> compare a.labels b.labels)

module Counter = struct
  type fam = family
  type nonrec t = child

  let v reg ~help ?(labels = []) name =
    family reg ~kind:Counter_k ~help ~labels name

  let labels = child
  let solo fam = child fam []

  let state c =
    match c.state with Counter_c a -> a | _ -> assert false

  let inc c = ignore (Atomic.fetch_and_add (state c) 1)

  let add c n =
    if n < 0 then invalid_arg "Obs.Registry.Counter.add: negative increment";
    ignore (Atomic.fetch_and_add (state c) n)

  (* Mirror an external monotonic counter (e.g. the cache layer's own
     hit count) at collect time. Never moves the value backwards. *)
  let set c n =
    let a = state c in
    let rec go () =
      let cur = Atomic.get a in
      if n > cur && not (Atomic.compare_and_set a cur n) then go ()
    in
    go ()

  let value c = Atomic.get (state c)
end

module Gauge = struct
  type fam = family
  type nonrec t = child

  let v reg ~help ?(labels = []) name =
    family reg ~kind:Gauge_k ~help ~labels name

  let labels = child
  let solo fam = child fam []

  let state c = match c.state with Gauge_c a -> a | _ -> assert false
  let set c v = Atomic.set (state c) v

  let add c d =
    let a = state c in
    let rec go () =
      let cur = Atomic.get a in
      if not (Atomic.compare_and_set a cur (cur +. d)) then go ()
    in
    go ()

  let set_max c v =
    let a = state c in
    let rec go () =
      let cur = Atomic.get a in
      if v > cur && not (Atomic.compare_and_set a cur v) then go ()
    in
    go ()

  let value c = Atomic.get (state c)

  (* Read-and-zero: the windowed high-water idiom (resets on scrape). *)
  let read_reset c = Atomic.exchange (state c) 0.0
end

module Histogram = struct
  type fam = family
  type nonrec t = child

  let v reg ~help ?(labels = []) name =
    family reg ~kind:Histogram_k ~help ~labels name

  let labels = child
  let solo fam = child fam []

  let state c = match c.state with Histogram_c h -> h | _ -> assert false

  let observe c v =
    let h = state c in
    with_lock h.h_lock (fun () ->
        h.h_count <- h.h_count + 1;
        h.h_sum <- h.h_sum +. v;
        let b = bucket_of_value v in
        h.h_buckets.(b) <- h.h_buckets.(b) + 1)

  type snapshot = { count : int; sum : float; buckets : int array }

  let snapshot c =
    let h = state c in
    with_lock h.h_lock (fun () ->
        { count = h.h_count; sum = h.h_sum; buckets = Array.copy h.h_buckets })

  let mean s = if s.count = 0 then 0.0 else s.sum /. float_of_int s.count

  (* Upper bound of the smallest bucket covering quantile [q] — i.e. the
     answer is exact to within one bucket boundary (the property the
     test suite checks against adversarial distributions). *)
  let quantile s q =
    if s.count = 0 then 0
    else begin
      let target =
        Int.max 1 (int_of_float (ceil (q *. float_of_int s.count)))
      in
      let acc = ref 0 and result = ref (bucket_upper n_buckets) in
      (try
         Array.iteri
           (fun i n ->
             acc := !acc + n;
             if !acc >= target then begin
               result := bucket_upper i;
               raise Exit
             end)
           s.buckets
       with Exit -> ());
      !result
    end
end

(* ---------- reading (for Expo and the STATS facade) ---------- *)

type sample_value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of Histogram.snapshot

type sample = { sample_labels : string list; value : sample_value }

type family_view = {
  name : string;
  help : string;
  label_names : string list;
  kind : kind;
  samples : sample list;
}

let view t =
  let families = with_lock t.lock (fun () -> List.rev t.families) in
  List.map
    (fun f ->
      {
        name = f.fam_name;
        help = f.fam_help;
        label_names = f.fam_labels;
        kind = f.fam_kind;
        samples =
          List.map
            (fun c ->
              {
                sample_labels = c.labels;
                value =
                  (match c.state with
                  | Counter_c a -> Sample_counter (Atomic.get a)
                  | Gauge_c a -> Sample_gauge (Atomic.get a)
                  | Histogram_c _ -> Sample_histogram (Histogram.snapshot c));
              })
            (sorted_children f);
      })
    families
  |> List.sort (fun a b -> String.compare a.name b.name)
