(* A deliberately minimal HTTP/1.1 responder for /metrics and /healthz:
   thread per connection, reads one request line (headers are drained
   and ignored), writes one response, closes. Not a general web server —
   it exists so a Prometheus scraper can reach the registry without
   adding an HTTP dependency to the build. *)

type response = { status : int; content_type : string; body : string }

type handler = meth:string -> path:string -> response option

type t = {
  sock : Unix.file_descr;
  port : int;
  stop_r : Unix.file_descr;  (* self-pipe: write side closed to stop *)
  stop_w : Unix.file_descr;
  accept_thread : Thread.t;
}

let status_text = function
  | 200 -> "OK"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 503 -> "Service Unavailable"
  | _ -> "Internal Server Error"

let write_response fd { status; content_type; body } =
  let head =
    Printf.sprintf
      "HTTP/1.1 %d %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      status (status_text status) content_type (String.length body)
  in
  let msg = head ^ body in
  let n = String.length msg in
  let pos = ref 0 in
  (try
     while !pos < n do
       pos := !pos + Unix.write_substring fd msg !pos (n - !pos)
     done
   with Unix.Unix_error _ -> ())

let text status body =
  { status; content_type = "text/plain; charset=utf-8"; body }

(* Read until the end of the request head (CRLFCRLF) or EOF/timeout,
   bounded at 8 KiB — more than enough for a scraper's GET. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf > 8192 then None
    else
      match Unix.read fd chunk 0 (Bytes.length chunk) with
      | 0 | (exception Unix.Unix_error _) ->
        if Buffer.length buf = 0 then None else Some (Buffer.contents buf)
      | n ->
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let rec has_end i =
          if i + 3 >= String.length s then false
          else if s.[i] = '\r' && s.[i + 1] = '\n' && s.[i + 2] = '\r'
                  && s.[i + 3] = '\n' then true
          else has_end (i + 1)
        in
        if has_end 0 then Some s else go ()
  in
  go ()

let serve_conn handler fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0;
      Unix.setsockopt_float fd Unix.SO_SNDTIMEO 5.0;
      match read_head fd with
      | None -> ()
      | Some head ->
        let request_line =
          match String.index_opt head '\r' with
          | Some i -> String.sub head 0 i
          | None -> head
        in
        (match String.split_on_char ' ' request_line with
        | meth :: target :: _ ->
          (* Strip any query string; the endpoints take none. *)
          let path =
            match String.index_opt target '?' with
            | Some i -> String.sub target 0 i
            | None -> target
          in
          (match handler ~meth ~path with
          | Some resp -> write_response fd resp
          | None ->
            if meth <> "GET" && meth <> "HEAD" then
              write_response fd (text 405 "method not allowed\n")
            else write_response fd (text 404 "not found\n"))
        | _ -> write_response fd (text 400 "bad request\n")))

let accept_loop ~sock ~stop_r handler =
  let rec loop () =
    match Unix.select [ sock; stop_r ] [] [] (-1.0) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
    | ready, _, _ ->
      if List.mem stop_r ready then ()
      else begin
        (match Unix.accept sock with
        | exception Unix.Unix_error _ -> ()
        | fd, _ -> ignore (Thread.create (serve_conn handler) fd));
        loop ()
      end
  in
  loop ()

let start ?(host = "127.0.0.1") ~port ~handler () =
  let sock = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt sock Unix.SO_REUSEADDR true;
     Unix.bind sock (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen sock 16
   with e ->
     (try Unix.close sock with Unix.Unix_error _ -> ());
     raise e);
  let port =
    match Unix.getsockname sock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> port
  in
  let stop_r, stop_w = Unix.pipe () in
  let accept_thread =
    Thread.create (fun () -> accept_loop ~sock ~stop_r handler) ()
  in
  { sock; port; stop_r; stop_w; accept_thread }

let port t = t.port

let stop t =
  (try Unix.close t.stop_w with Unix.Unix_error _ -> ());
  Thread.join t.accept_thread;
  (try Unix.close t.sock with Unix.Unix_error _ -> ());
  try Unix.close t.stop_r with Unix.Unix_error _ -> ()
