(** Prometheus text exposition format 0.0.4: rendering, linting, and a
    small sample parser.

    Rendered output is what [GET /metrics] serves; {!lint} is the
    checker behind [strategem scrape --lint] and the CI cram test;
    {!parse_samples} feeds [strategem watch]. *)

(** Run the registry's collect hooks, then render every family as
    [# HELP] / [# TYPE] plus one sample line per child (histograms as
    cumulative [_bucket{le="..."}] series ending in [le="+Inf"], then
    [_sum] and [_count]). *)
val render : Registry.t -> string

(** Float formatting as Prometheus expects: ["+Inf"], ["-Inf"], ["NaN"],
    integers without a decimal point, else shortest-ish decimal. *)
val float_str : float -> string

type parsed_sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

(** Parse the sample lines of an exposition document, skipping comments
    and blanks. Raises {!Bad_line} on a malformed line. *)
val parse_samples : string -> parsed_sample list

exception Bad_line of string

(** Check an exposition document: every sampled family has [# HELP] and
    [# TYPE] (valid and unique), metric/label names are well-formed, no
    duplicate [(name, labelset)] sample, and histograms are consistent —
    cumulative non-decreasing buckets, an [le="+Inf"] bucket equal to
    [_count], and [_sum]/[_count] present. Returns all violations. *)
val lint : string -> (unit, string list) result
