(** The labeled metrics registry: counters, gauges, and log-scale
    histograms, rendered by {!Expo} in Prometheus text exposition format
    and read by the [STATS] facade in [Serve.Metrics].

    Concurrency: family and child creation take the registry lock (cold
    path — cache the child handle); updates touch only the child itself.
    Counters and gauges are atomics, histograms take a per-child mutex,
    so every update is O(1) and two distinct time series never contend —
    the lock sharding is one shard per child. *)

type t
type registry := t

val create : unit -> t

(** Register a hook run by {!collect} (and so by every [/metrics] render
    and every [STATS]) before values are read — the place to refresh
    mirrored values (cache counters, uptime, windowed high-waters). *)
val on_collect : t -> (unit -> unit) -> unit

(** Run the collect hooks, oldest first. *)
val collect : t -> unit

(** Prometheus metric-name validity ([[a-zA-Z_:][a-zA-Z0-9_:]*]) — used
    by family creation and by {!Expo.lint}. *)
val name_re_ok : string -> bool

(** Label-name validity ([[a-zA-Z_][a-zA-Z0-9_]*]). *)
val label_re_ok : string -> bool

(** {1 Bucket scheme}

    All histograms share the serve path's log-scale scheme: bucket [i]
    holds observations in [[2^i, 2^(i+1))] (of whatever unit the metric
    uses; µs throughout this repo), with one overflow bucket at the
    end. *)

val n_buckets : int

(** Bucket index for a value. *)
val bucket_of_value : float -> int

(** Upper bound of bucket [i]; [bucket_upper n_buckets] is the overflow
    bucket's (notional) bound. *)
val bucket_upper : int -> int

(** {1 Instruments}

    Family creation raises [Invalid_argument] on an invalid metric or
    label name, or a duplicate family name. [labels] takes the label
    {e values}, positionally matching the family's label names, and
    creates the child on first use. *)

module Counter : sig
  type fam
  type t

  val v : registry -> help:string -> ?labels:string list -> string -> fam
  val labels : fam -> string list -> t

  (** The single child of an unlabeled family. *)
  val solo : fam -> t

  val inc : t -> unit

  (** Raises [Invalid_argument] on a negative increment. *)
  val add : t -> int -> unit

  (** Mirror an external monotonic counter: sets the value, never
      moving it backwards. *)
  val set : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type fam
  type t

  val v : registry -> help:string -> ?labels:string list -> string -> fam
  val labels : fam -> string list -> t
  val solo : fam -> t
  val set : t -> float -> unit
  val add : t -> float -> unit

  (** Keep a running maximum (no-op unless the value increases). *)
  val set_max : t -> float -> unit

  val value : t -> float

  (** Read and zero atomically — the windowed high-water idiom: the
      window is "since the last scrape". *)
  val read_reset : t -> float
end

module Histogram : sig
  type fam
  type t

  val v : registry -> help:string -> ?labels:string list -> string -> fam
  val labels : fam -> string list -> t
  val solo : fam -> t
  val observe : t -> float -> unit

  type snapshot = { count : int; sum : float; buckets : int array }

  (** A consistent point-in-time copy. *)
  val snapshot : t -> snapshot

  val mean : snapshot -> float

  (** Upper bound of the smallest bucket covering quantile [q] — exact
      to within one bucket boundary. [0] on an empty histogram. *)
  val quantile : snapshot -> float -> int
end

(** {1 Reading} *)

type kind = Counter_k | Gauge_k | Histogram_k

type sample_value =
  | Sample_counter of int
  | Sample_gauge of float
  | Sample_histogram of Histogram.snapshot

type sample = { sample_labels : string list; value : sample_value }

type family_view = {
  name : string;
  help : string;
  label_names : string list;
  kind : kind;
  samples : sample list;  (** sorted by label values *)
}

(** A consistent-enough view for rendering: families sorted by name,
    children by label values. Does {e not} run the collect hooks — call
    {!collect} first (as {!Expo.render} does). *)
val view : t -> family_view list
