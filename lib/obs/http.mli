(** A minimal embedded HTTP/1.1 responder — just enough for a
    Prometheus scraper: one thread per connection, one request per
    connection ([Connection: close]), 5 s socket timeouts. *)

type response = { status : int; content_type : string; body : string }

(** Return [Some response] to answer, [None] to fall through to the
    built-in 404 (or 405 for non-GET/HEAD methods). The query string is
    stripped from [path] before dispatch. *)
type handler = meth:string -> path:string -> response option

type t

(** Bind and listen on [host:port] ([port = 0] picks an ephemeral port —
    read it back with {!port}) and start the accept thread. Raises
    [Unix.Unix_error] if the bind fails. *)
val start : ?host:string -> port:int -> handler:handler -> unit -> t

(** The actual bound port. *)
val port : t -> int

(** A [text/plain] response. *)
val text : int -> string -> response

(** Stop accepting, close the listening socket, and join the accept
    thread. In-flight connection threads finish on their own. *)
val stop : t -> unit
