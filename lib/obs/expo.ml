(* Prometheus text exposition format 0.0.4: rendering a Registry,
   linting rendered output (used by CI and `strategem scrape --lint`),
   and a small sample parser (used by `strategem watch`). *)

let escape_help s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_label_value s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let float_str v =
  if Float.is_nan v then "NaN"
  else if v = Float.infinity then "+Inf"
  else if v = Float.neg_infinity then "-Inf"
  else if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

let label_str names values =
  if names = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map2
           (fun n v -> Printf.sprintf "%s=\"%s\"" n (escape_label_value v))
           names values)
    ^ "}"

(* [extra] appends one more label (histograms' [le]) after the family's
   own labels, matching Prometheus convention. *)
let label_str_extra names values (k, v) =
  let pairs =
    List.map2 (fun n v -> (n, v)) names values @ [ (k, v) ]
  in
  "{"
  ^ String.concat ","
      (List.map
         (fun (n, v) -> Printf.sprintf "%s=\"%s\"" n (escape_label_value v))
         pairs)
  ^ "}"

let kind_str = function
  | Registry.Counter_k -> "counter"
  | Registry.Gauge_k -> "gauge"
  | Registry.Histogram_k -> "histogram"

let render_family buf (f : Registry.family_view) =
  Printf.bprintf buf "# HELP %s %s\n" f.Registry.name
    (escape_help f.Registry.help);
  Printf.bprintf buf "# TYPE %s %s\n" f.Registry.name (kind_str f.Registry.kind);
  List.iter
    (fun (s : Registry.sample) ->
      let labels = label_str f.Registry.label_names s.Registry.sample_labels in
      match s.Registry.value with
      | Registry.Sample_counter v ->
        Printf.bprintf buf "%s%s %d\n" f.Registry.name labels v
      | Registry.Sample_gauge v ->
        Printf.bprintf buf "%s%s %s\n" f.Registry.name labels (float_str v)
      | Registry.Sample_histogram h ->
        let cum = ref 0 in
        Array.iteri
          (fun i n ->
            cum := !cum + n;
            let le =
              if i = Registry.n_buckets then "+Inf"
              else string_of_int (Registry.bucket_upper i)
            in
            Printf.bprintf buf "%s_bucket%s %d\n" f.Registry.name
              (label_str_extra f.Registry.label_names s.Registry.sample_labels
                 ("le", le))
              !cum)
          h.Registry.Histogram.buckets;
        Printf.bprintf buf "%s_sum%s %s\n" f.Registry.name labels
          (float_str h.Registry.Histogram.sum);
        Printf.bprintf buf "%s_count%s %d\n" f.Registry.name labels
          h.Registry.Histogram.count)
    f.Registry.samples

let render reg =
  Registry.collect reg;
  let buf = Buffer.create 4096 in
  List.iter (render_family buf) (Registry.view reg);
  Buffer.contents buf

(* ---------- parsing (for watch and the linter) ---------- *)

type parsed_sample = {
  metric : string;
  labels : (string * string) list;
  value : float;
}

exception Bad_line of string

let parse_labels s =
  (* s is the text between '{' and '}' *)
  let n = String.length s in
  let rec skip_ws i = if i < n && s.[i] = ' ' then skip_ws (i + 1) else i in
  let rec pairs i acc =
    let i = skip_ws i in
    if i >= n then List.rev acc
    else begin
      let j = ref i in
      while !j < n && s.[!j] <> '=' do incr j done;
      if !j >= n then raise (Bad_line "label without '='");
      let name = String.trim (String.sub s i (!j - i)) in
      let j = !j + 1 in
      if j >= n || s.[j] <> '"' then raise (Bad_line "unquoted label value");
      let buf = Buffer.create 16 in
      let k = ref (j + 1) in
      let closed = ref false in
      while not !closed do
        if !k >= n then raise (Bad_line "unterminated label value");
        (match s.[!k] with
        | '\\' ->
          if !k + 1 >= n then raise (Bad_line "dangling escape");
          (match s.[!k + 1] with
          | 'n' -> Buffer.add_char buf '\n'
          | '\\' -> Buffer.add_char buf '\\'
          | '"' -> Buffer.add_char buf '"'
          | c -> raise (Bad_line (Printf.sprintf "bad escape \\%c" c)));
          k := !k + 2
        | '"' ->
          closed := true;
          incr k
        | c ->
          Buffer.add_char buf c;
          incr k);
      done;
      let acc = (name, Buffer.contents buf) :: acc in
      let i = skip_ws !k in
      if i < n && s.[i] = ',' then pairs (i + 1) acc
      else if i >= n then List.rev acc
      else raise (Bad_line "junk after label value")
    end
  in
  pairs 0 []

let parse_value s =
  match String.trim s with
  | "+Inf" -> Float.infinity
  | "-Inf" -> Float.neg_infinity
  | "NaN" -> Float.nan
  | v -> (
    match float_of_string_opt v with
    | Some f -> f
    | None -> raise (Bad_line (Printf.sprintf "bad value %S" v)))

let parse_sample_line line =
  match String.index_opt line '{' with
  | Some i ->
    let close =
      match String.rindex_opt line '}' with
      | Some j when j > i -> j
      | _ -> raise (Bad_line "unbalanced '{'")
    in
    {
      metric = String.sub line 0 i;
      labels = parse_labels (String.sub line (i + 1) (close - i - 1));
      value =
        parse_value (String.sub line (close + 1) (String.length line - close - 1));
    }
  | None -> (
    match String.index_opt line ' ' with
    | None -> raise (Bad_line "sample without value")
    | Some i ->
      {
        metric = String.sub line 0 i;
        labels = [];
        value = parse_value (String.sub line i (String.length line - i));
      })

let parse_samples text =
  String.split_on_char '\n' text
  |> List.filter_map (fun line ->
         let line = String.trim line in
         if line = "" || line.[0] = '#' then None
         else Some (parse_sample_line line))

(* ---------- lint ---------- *)

(* A family's base name for a sample name: strips the histogram
   suffixes. *)
let base_of ~histograms name =
  let strip suffix =
    let n = String.length name and m = String.length suffix in
    if n > m && String.sub name (n - m) m = suffix then
      Some (String.sub name 0 (n - m))
    else None
  in
  let try_base suffix =
    match strip suffix with
    | Some b when List.mem_assoc b histograms -> Some b
    | _ -> None
  in
  match try_base "_bucket" with
  | Some b -> Some b
  | None -> (
    match try_base "_sum" with
    | Some b -> Some b
    | None -> try_base "_count")

let lint text =
  let errors = ref [] in
  let err fmt = Printf.ksprintf (fun m -> errors := m :: !errors) fmt in
  let lines = String.split_on_char '\n' text in
  (* First pass: collect HELP/TYPE declarations, flag duplicates. *)
  let helps = Hashtbl.create 16 and types = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] = '#' then
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _rest ->
          if Hashtbl.mem helps name then
            err "line %d: duplicate # HELP for %s" lineno name
          else Hashtbl.add helps name ()
        | "#" :: "TYPE" :: name :: ty :: [] ->
          if Hashtbl.mem types name then
            err "line %d: duplicate # TYPE for %s" lineno name
          else if not (List.mem ty [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then err "line %d: unknown type %S for %s" lineno ty name
          else Hashtbl.add types name ty
        | "#" :: "TYPE" :: name :: _ ->
          err "line %d: malformed # TYPE for %s" lineno name
        | _ -> () (* other comments are allowed *))
    lines;
  let histograms =
    Hashtbl.fold
      (fun name ty acc -> if ty = "histogram" then (name, ()) :: acc else acc)
      types []
  in
  (* Second pass: parse samples; check names are declared, label syntax
     is valid, and no (name, labelset) repeats. *)
  let seen = Hashtbl.create 64 in
  let hist_buckets = Hashtbl.create 16 in
  (* (base, labels-sans-le) -> (le, cumulative) list *)
  let hist_sums = Hashtbl.create 16 and hist_counts = Hashtbl.create 16 in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line = String.trim line in
      if line <> "" && line.[0] <> '#' then
        match parse_sample_line line with
        | exception Bad_line msg -> err "line %d: %s" lineno msg
        | s ->
          if not (Registry.name_re_ok s.metric) then
            err "line %d: invalid metric name %S" lineno s.metric;
          List.iter
            (fun (k, _) ->
              if not (Registry.label_re_ok k) then
                err "line %d: invalid label name %S" lineno k)
            s.labels;
          let family =
            match base_of ~histograms s.metric with
            | Some b -> b
            | None -> s.metric
          in
          if not (Hashtbl.mem types family) then
            err "line %d: %s has no # TYPE" lineno s.metric;
          if not (Hashtbl.mem helps family) then
            err "line %d: %s has no # HELP" lineno s.metric;
          let key = (s.metric, List.sort compare s.labels) in
          if Hashtbl.mem seen key then
            err "line %d: duplicate sample %s%s" lineno s.metric
              (String.concat ","
                 (List.map (fun (k, v) -> k ^ "=" ^ v) s.labels))
          else Hashtbl.add seen key ();
          (* Histogram series bookkeeping. *)
          (match base_of ~histograms s.metric with
          | Some b ->
            let sans_le =
              List.sort compare (List.remove_assoc "le" s.labels)
            in
            let hkey = (b, sans_le) in
            if Filename.check_suffix s.metric "_bucket" then begin
              match List.assoc_opt "le" s.labels with
              | None -> err "line %d: %s without le label" lineno s.metric
              | Some le ->
                Hashtbl.replace hist_buckets hkey
                  ((le, s.value)
                  :: (try Hashtbl.find hist_buckets hkey with Not_found -> []))
            end
            else if Filename.check_suffix s.metric "_sum" then
              Hashtbl.replace hist_sums hkey s.value
            else if Filename.check_suffix s.metric "_count" then
              Hashtbl.replace hist_counts hkey s.value
          | None ->
            if Hashtbl.mem types s.metric
               && Hashtbl.find types s.metric = "histogram" then
              err "line %d: histogram %s sampled without _bucket/_sum/_count"
                lineno s.metric))
    lines;
  (* Third pass: histogram consistency per (family, labelset). *)
  Hashtbl.iter
    (fun (b, labels) buckets ->
      let pretty =
        b
        ^
        if labels = [] then ""
        else
          "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
          ^ "}"
      in
      let le_value = function
        | "+Inf" -> Float.infinity
        | le -> (
          match float_of_string_opt le with
          | Some f -> f
          | None -> Float.nan)
      in
      let sorted =
        List.sort
          (fun (a, _) (b, _) -> Float.compare (le_value a) (le_value b))
          buckets
      in
      (match List.rev sorted with
      | ("+Inf", inf_cum) :: _ -> (
        match Hashtbl.find_opt hist_counts (b, labels) with
        | Some count when count <> inf_cum ->
          err "%s: le=\"+Inf\" bucket %g != _count %g" pretty inf_cum count
        | Some _ -> ()
        | None -> err "%s: histogram without _count" pretty)
      | _ -> err "%s: histogram without le=\"+Inf\" bucket" pretty);
      if not (Hashtbl.mem hist_sums (b, labels)) then
        err "%s: histogram without _sum" pretty;
      ignore
        (List.fold_left
           (fun prev (le, cum) ->
             if cum < prev then
               err "%s: bucket le=%s not cumulative (%g < %g)" pretty le cum
                 prev;
             cum)
           0.0 sorted))
    hist_buckets;
  (* Families declared but never sampled are fine (empty label sets);
     TYPE without HELP is not. *)
  Hashtbl.iter
    (fun name _ ->
      if not (Hashtbl.mem helps name) then err "%s: # TYPE without # HELP" name)
    types;
  match List.rev !errors with [] -> Ok () | es -> Error es
