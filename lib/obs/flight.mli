(** The per-loop flight recorder: an always-on, fixed-size, lock-free
    binary ring of request-lifecycle events.

    One ring belongs to one event loop of the reactor fleet, and {b only
    that loop's thread writes it} — the fleet's no-sharing ownership
    model is what makes recording a handful of plain [Bytes] stores with
    one [Atomic] publish, no lock and no allocation. Any thread may
    {!snapshot} concurrently: readers validate each candidate record's
    sequence stamp after copying it and drop records the writer was
    overwriting mid-copy, so a snapshot is a consistent {e sample}, never
    a stall of the hot path (best-effort by design — this is a crash/slow
    forensics aid, not an audit log).

    Records are 48 bytes, fixed layout:

    {v
      offset  size  field
      0       8     seq      record sequence number (monotonic from 0)
      8       8     ts_ns    wall-clock nanoseconds
      16      2     code     event code (see the [code_*] constants)
      18      2     loop     owning event-loop id
      20      4     conn     connection id
      24      4     rid      request id (v4 client id / line seqno)
      28      4     (pad)
      32      8     a        per-code detail (see docs/TRACING.md)
      40      8     b        per-code detail
    v}

    Capacity is rounded up to a power of two; capacity 0 builds a
    disabled recorder whose {!record} is a single branch. *)

type t

(** [create ~capacity] — a ring holding the last [capacity] (rounded up
    to a power of two) events; [capacity <= 0] disables recording. *)
val create : capacity:int -> t

val enabled : t -> bool
val capacity : t -> int

(** Events ever recorded (= the sequence number the next record gets). *)
val seq : t -> int

(** Append one event. Owning-loop thread only; no-op when disabled. *)
val record :
  t ->
  ts_ns:int64 ->
  code:int ->
  loop:int ->
  conn:int ->
  rid:int ->
  a:int64 ->
  b:int64 ->
  unit

(** One decoded record. *)
type event = {
  ev_seq : int;
  ev_ts_ns : int64;
  ev_code : int;
  ev_loop : int;
  ev_conn : int;
  ev_rid : int;
  ev_a : int64;
  ev_b : int64;
}

(** The ring's current contents, oldest first. Safe from any thread;
    records the writer overwrote mid-read are dropped, not torn. *)
val snapshot : t -> event list

(** {1 Event codes}

    The request-lifecycle taxonomy (also the [stage] label vocabulary of
    the [strategem_stage_latency_us] histograms where a duration is
    meaningful). *)

(** [accept] — connection accepted; [a] = owning loop. *)
val code_accept : int

(** [close] — connection closed; [a] = 1 if killed. *)
val code_close : int

(** [shed] — request/conn shed with BUSY; [a] = 1 at accept. *)
val code_shed : int

(** [request] — request parsed; [ts] = parse time. *)
val code_request : int

(** [enqueue] — admitted to the queue; [ts] = enqueue time. *)
val code_enqueue : int

(** [worker] — picked up by a worker; [a]/[b] = WAL-fsync / page-read
    wait ns. *)
val code_worker : int

(** [respond] — response enqueued; [a] = 1 if error reply. *)
val code_respond : int

(** [flush] — response bytes drained; [a] = request total ns. *)
val code_flush : int

val code_name : int -> string

(** One event as a JSON object (a [{"seq":..,"ts_ns":..,"code":"..",..}]
    line fragment for the [FLIGHT] / [/debug/flight] reply). *)
val event_to_json : event -> string
