(** Strategy execution: compute c(Θ, I) and the execution trace.

    Execution follows the strategy's path order. Walking a path, the
    processor pays an arc's cost the first time it attempts it; an arc
    observed blocked aborts the path (and every later path through it is
    abandoned for free — the processor remembers). Reaching an unblocked
    retrieval is a success node: the search stops (satisficing). *)

open Infgraph

type observation = { arc_id : int; unblocked : bool }

type outcome = {
  cost : float;           (** c(Θ, I) *)
  succeeded : bool;
  success_arc : int option;  (** the retrieval that ended the search *)
  observations : observation list;
      (** blockable arcs attempted, in order, with what was seen *)
  attempted : int list;   (** all arcs paid for, in order *)
}

(** Run a strategy in a context. With [tracer], each arc paid for emits an
    [arc] event under [parent] carrying the arc's paper cost [f(arc)] and
    attrs [arc_id]/[blockable]/[unblocked]; the events' summed cost equals
    [outcome.cost]. Defaults: [Trace.null]/[Trace.dummy] — free. *)
val run : ?tracer:Trace.t -> ?parent:Trace.span -> Spec.t -> Context.t -> outcome

(** The partial context a learner knows after watching this run. *)
val to_partial : Graph.t -> outcome -> Context.Partial.t

(** [first_k k spec ctx] — the Section 5.2 variant that stops after [k]
    successful retrievals instead of one ([run] is [first_k 1]);
    [succeeded] then means "found at least [k] answers" and [success_arc]
    is the retrieval that delivered the [k]-th. *)
val first_k :
  ?tracer:Trace.t -> ?parent:Trace.span -> int -> Spec.t -> Context.t -> outcome
