open Infgraph

type observation = { arc_id : int; unblocked : bool }

type outcome = {
  cost : float;
  succeeded : bool;
  success_arc : int option;
  observations : observation list;
  attempted : int list;
}

let first_k ?(tracer = Trace.null) ?(parent = Trace.dummy) k spec ctx =
  if k < 1 then invalid_arg "Exec.first_k: k must be at least 1";
  let g = Spec.graph spec in
  let n = Graph.n_arcs g in
  let paid = Array.make n false in
  let known_blocked = Array.make n false in
  let cost = ref 0. in
  let observations = ref [] in
  let attempted = ref [] in
  let found = ref 0 in
  let last_success = ref None in
  (* Walk one path; returns [true] if its retrieval succeeded. *)
  let walk_path path =
    let rec go = function
      | [] -> true (* reached and passed the retrieval *)
      | arc_id :: rest ->
        if known_blocked.(arc_id) then false
        else if paid.(arc_id) then go rest
        else begin
          let a = Graph.arc g arc_id in
          cost := !cost +. a.Graph.cost;
          paid.(arc_id) <- true;
          attempted := arc_id :: !attempted;
          let unblocked =
            if a.Graph.blockable then begin
              let unblocked = Context.unblocked ctx arc_id in
              observations := { arc_id; unblocked } :: !observations;
              if not unblocked then known_blocked.(arc_id) <- true;
              unblocked
            end
            else true
          in
          if Trace.enabled tracer then
            Trace.event tracer parent ~kind:"arc" ~cost:a.Graph.cost
              ~attrs:
                [
                  ("arc_id", string_of_int arc_id);
                  ("blockable", if a.Graph.blockable then "true" else "false");
                  ("unblocked", if unblocked then "true" else "false");
                ]
              a.Graph.label;
          if unblocked then go rest else false
        end
    in
    go path
  in
  let rec run_paths = function
    | [] -> ()
    | path :: rest ->
      if walk_path path then begin
        incr found;
        (match List.rev path with
        | last :: _ -> last_success := Some last
        | [] -> ());
        if !found < k then run_paths rest
      end
      else run_paths rest
  in
  run_paths (Spec.to_paths spec);
  {
    cost = !cost;
    succeeded = !found >= k;
    success_arc = (if !found >= k then !last_success else None);
    observations = List.rev !observations;
    attempted = List.rev !attempted;
  }

let run ?tracer ?parent spec ctx = first_k ?tracer ?parent 1 spec ctx

let to_partial g outcome =
  let partial = Context.Partial.unknown g in
  List.iter
    (fun { arc_id; unblocked } ->
      Context.Partial.observe partial ~arc_id ~unblocked)
    outcome.observations;
  partial
