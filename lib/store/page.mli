(** Fixed-size page layout for packed ground facts.

    A page belongs to one predicate (its store symbol id is in the page
    header), and holds a sequence of packed fact records — the argument
    tuples only, as store symbol ids, so a page is position-independent:
    nothing in it depends on process-run symbol numbering or on where
    the page sits in the file.

    Layout (all integers little-endian):

    {v
      offset 0   u32  pred sid
      offset 4   u32  record count (including tombstones)
      offset 8   u32  free offset (next append position)
      offset 12  records...

      record:    u8   flags (bit 0 = tombstone)
                 u8   arity (nargs <= 255)
                 u32 x nargs  argument sids
    v}

    Tombstoning a record flips its flag in place; space is reclaimed by
    the store's checkpoint compaction, never in place. *)

val header_bytes : int

(** Bytes a record with [nargs] arguments occupies. *)
val record_bytes : nargs:int -> int

(** Initialize an all-zero buffer as an empty page for predicate
    [pred]. *)
val init : Bytes.t -> pred:int -> unit

val pred : Bytes.t -> int
val count : Bytes.t -> int
val free_off : Bytes.t -> int
val has_room : Bytes.t -> nargs:int -> bool

(** Append a record; returns its offset. The caller must have checked
    [has_room]. *)
val append : Bytes.t -> int array -> int

(** Tombstone the record at [off]. *)
val kill : Bytes.t -> int -> unit

val live : Bytes.t -> int -> bool
val args_at : Bytes.t -> int -> int array

(** [matches_at page off args] — the record at [off] is live and its
    argument tuple equals [args] (no allocation). *)
val matches_at : Bytes.t -> int -> int array -> bool

(** Iterate the live records (offset and argument tuple). *)
val iter : Bytes.t -> (int -> int array -> unit) -> unit
