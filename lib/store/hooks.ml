type event = Wal_fsync | Page_read

let observer : (event -> int -> unit) option Atomic.t = Atomic.make None
let install f = Atomic.set observer (Some f)
let clear () = Atomic.set observer None
let installed () = Atomic.get observer

let timed ev f =
  match Atomic.get observer with
  | None -> f ()
  | Some obs ->
    let t0 = Unix.gettimeofday () in
    let finally () =
      obs ev (int_of_float ((Unix.gettimeofday () -. t0) *. 1e9))
    in
    Fun.protect ~finally f
