let header_bytes = 12
let record_bytes ~nargs = 2 + (4 * nargs)

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let init b ~pred =
  Bytes.fill b 0 (Bytes.length b) '\000';
  set_u32 b 0 pred;
  set_u32 b 4 0;
  set_u32 b 8 header_bytes

let pred b = get_u32 b 0
let count b = get_u32 b 4
let free_off b = get_u32 b 8

let has_room b ~nargs = free_off b + record_bytes ~nargs <= Bytes.length b

let append b args =
  let off = free_off b in
  let nargs = Array.length args in
  if nargs > 255 then invalid_arg "Page.append: arity > 255";
  Bytes.set_uint8 b off 0;
  Bytes.set_uint8 b (off + 1) nargs;
  Array.iteri (fun i a -> set_u32 b (off + 2 + (4 * i)) a) args;
  set_u32 b 4 (count b + 1);
  set_u32 b 8 (off + record_bytes ~nargs);
  off

let kill b off = Bytes.set_uint8 b off (Bytes.get_uint8 b off lor 1)
let live b off = Bytes.get_uint8 b off land 1 = 0

let args_at b off =
  let nargs = Bytes.get_uint8 b (off + 1) in
  Array.init nargs (fun i -> get_u32 b (off + 2 + (4 * i)))

let matches_at b off args =
  live b off
  && Bytes.get_uint8 b (off + 1) = Array.length args
  &&
  let rec eq i =
    i >= Array.length args
    || (get_u32 b (off + 2 + (4 * i)) = args.(i) && eq (i + 1))
  in
  eq 0

let iter b f =
  let stop = free_off b in
  let off = ref header_bytes in
  while !off < stop do
    let nargs = Bytes.get_uint8 b (!off + 1) in
    if live b !off then f !off (args_at b !off);
    off := !off + record_bytes ~nargs
  done
