(** The buffer pool: a fixed set of page frames over the checkpoint
    image, with pin counts and clock (second-chance) eviction, so the
    resident working set can be far smaller than the database.

    Disk layout discipline: the checkpoint image ([base]) is immutable —
    it is only ever replaced wholesale by an atomic rename at checkpoint
    time, never written in place, so a crash can never tear it. Dirty
    pages evicted between checkpoints are therefore written to a
    separate {e spill} file, a per-run scratch that recovery never
    reads: after a crash the store rebuilds from checkpoint image + WAL
    alone. A page is read back from the spill file iff it was evicted
    dirty ([spilled] tracks that), from the base image otherwise.

    The pool is not synchronized; the store engine serializes access. *)

type t

(** [create ~page_size ~frames ~spill_path] — [frames >= 2] (one pinned
    reader plus one eviction victim must coexist). The spill file is
    created (truncated) immediately. *)
val create : page_size:int -> frames:int -> spill_path:string -> t

val page_size : t -> int
val frames : t -> int

(** Point the pool at a (new) checkpoint image: drops every cached
    frame, truncates the spill file, forgets spilled pages. [fd] is
    closed by the next [set_base] or [close]; [None] means no base image
    (fresh store). *)
val set_base : t -> Unix.file_descr option -> base_pages:int -> unit

(** [with_page t n f] — pin page [n] (faulting it in if needed), run [f]
    on its bytes, unpin. The bytes must not escape [f]. *)
val with_page : t -> int -> (Bytes.t -> 'a) -> 'a

(** Like {!with_page} but marks the frame dirty. [fresh] asserts the
    page is brand new — its frame is zeroed instead of read from disk
    (the caller must [Page.init] it). *)
val with_dirty : ?fresh:bool -> t -> int -> (Bytes.t -> 'a) -> 'a

type stats = {
  hits : int;        (** pin found the page resident *)
  misses : int;      (** pin faulted the page in *)
  evictions : int;   (** frames reclaimed by the clock *)
  page_reads : int;  (** pages read from base or spill *)
  page_writes : int; (** dirty pages written to the spill file *)
}

val stats : t -> stats
val close : t -> unit
