let fsync_fd fd = Unix.fsync fd

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | dirfd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close dirfd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync dirfd with Unix.Unix_error _ -> ())

let write_file path content =
  let tmp = path ^ ".tmp" in
  let fd =
    Unix.openfile tmp
      [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let len = String.length content in
      let written = ref 0 in
      while !written < len do
        written :=
          !written + Unix.write_substring fd content !written (len - !written)
      done;
      fsync_fd fd);
  Sys.rename tmp path;
  fsync_dir (Filename.dirname path)

let ensure_dir dir =
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
