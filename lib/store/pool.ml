type frame = {
  data : Bytes.t;
  mutable page_no : int; (* -1 = free *)
  mutable pins : int;
  mutable dirty : bool;
  mutable refbit : bool;
}

type t = {
  page_size : int;
  frames : frame array;
  table : (int, int) Hashtbl.t; (* page_no -> frame index *)
  mutable hand : int;
  mutable base_fd : Unix.file_descr option;
  mutable base_pages : int;
  spill_path : string;
  spill_fd : Unix.file_descr;
  spilled : (int, unit) Hashtbl.t;
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable page_reads : int;
  mutable page_writes : int;
}

let create ~page_size ~frames ~spill_path =
  if frames < 2 then invalid_arg "Pool.create: need at least 2 frames";
  let spill_fd =
    Unix.openfile spill_path
      [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      0o644
  in
  {
    page_size;
    frames =
      Array.init frames (fun _ ->
          {
            data = Bytes.create page_size;
            page_no = -1;
            pins = 0;
            dirty = false;
            refbit = false;
          });
    table = Hashtbl.create (2 * frames);
    hand = 0;
    base_fd = None;
    base_pages = 0;
    spill_path;
    spill_fd;
    spilled = Hashtbl.create 64;
    hits = 0;
    misses = 0;
    evictions = 0;
    page_reads = 0;
    page_writes = 0;
  }

let page_size t = t.page_size
let frames t = Array.length t.frames

let pread fd buf ~file_off =
  ignore (Unix.lseek fd file_off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go off =
    if off < len then
      match Unix.read fd buf off (len - off) with
      | 0 ->
        (* short file: zero-fill the tail (a page past EOF) *)
        Bytes.fill buf off (len - off) '\000'
      | n -> go (off + n)
  in
  go 0

let pwrite fd buf ~file_off =
  ignore (Unix.lseek fd file_off Unix.SEEK_SET);
  let len = Bytes.length buf in
  let rec go off =
    if off < len then go (off + Unix.write fd buf off (len - off))
  in
  go 0

let set_base t fd ~base_pages =
  (match t.base_fd with
  | Some old -> ( try Unix.close old with Unix.Unix_error _ -> ())
  | None -> ());
  t.base_fd <- fd;
  t.base_pages <- base_pages;
  Hashtbl.reset t.table;
  Hashtbl.reset t.spilled;
  Array.iter
    (fun fr ->
      fr.page_no <- -1;
      fr.pins <- 0;
      fr.dirty <- false;
      fr.refbit <- false)
    t.frames;
  Unix.ftruncate t.spill_fd 0

(* Clock sweep: skip pinned frames, give referenced frames a second
   chance. Two full sweeps without a victim means every frame is pinned
   — a caller bug (the store pins at most a handful of pages at once). *)
let evict t =
  let n = Array.length t.frames in
  let victim = ref (-1) in
  let steps = ref 0 in
  while !victim < 0 do
    if !steps > 2 * n then failwith "Store.Pool: all frames pinned";
    incr steps;
    let fr = t.frames.(t.hand) in
    let here = t.hand in
    t.hand <- (t.hand + 1) mod n;
    if fr.pins = 0 then
      if fr.refbit then fr.refbit <- false else victim := here
  done;
  let fr = t.frames.(!victim) in
  if fr.page_no >= 0 then begin
    if fr.dirty then begin
      (* Steal: the spill file is per-run scratch, so no WAL force is
         needed — durability comes from the WAL alone and recovery
         never reads the spill. *)
      pwrite t.spill_fd fr.data ~file_off:(fr.page_no * t.page_size);
      Hashtbl.replace t.spilled fr.page_no ();
      t.page_writes <- t.page_writes + 1
    end;
    Hashtbl.remove t.table fr.page_no;
    t.evictions <- t.evictions + 1
  end;
  fr.page_no <- -1;
  fr.dirty <- false;
  !victim

let free_frame t =
  let n = Array.length t.frames in
  let rec find i = if i >= n then None else
      if t.frames.(i).page_no < 0 && t.frames.(i).pins = 0 then Some i
      else find (i + 1)
  in
  find 0

let load t page_no ~fresh =
  let idx = match free_frame t with Some i -> i | None -> evict t in
  let fr = t.frames.(idx) in
  if fresh then Bytes.fill fr.data 0 t.page_size '\000'
  else begin
    Hooks.timed Hooks.Page_read (fun () ->
        if Hashtbl.mem t.spilled page_no then
          pread t.spill_fd fr.data ~file_off:(page_no * t.page_size)
        else
          match t.base_fd with
          | Some fd when page_no < t.base_pages ->
            pread fd fr.data ~file_off:(page_no * t.page_size)
          | _ -> Bytes.fill fr.data 0 t.page_size '\000');
    t.page_reads <- t.page_reads + 1
  end;
  fr.page_no <- page_no;
  fr.dirty <- false;
  Hashtbl.replace t.table page_no idx;
  idx

let pin t page_no ~fresh =
  let idx =
    match Hashtbl.find_opt t.table page_no with
    | Some idx ->
      t.hits <- t.hits + 1;
      idx
    | None ->
      t.misses <- t.misses + 1;
      load t page_no ~fresh
  in
  let fr = t.frames.(idx) in
  fr.pins <- fr.pins + 1;
  fr.refbit <- true;
  fr

let unpin fr = fr.pins <- fr.pins - 1

let with_page t page_no f =
  let fr = pin t page_no ~fresh:false in
  Fun.protect ~finally:(fun () -> unpin fr) (fun () -> f fr.data)

let with_dirty ?(fresh = false) t page_no f =
  let fr = pin t page_no ~fresh in
  fr.dirty <- true;
  Fun.protect ~finally:(fun () -> unpin fr) (fun () -> f fr.data)

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  page_reads : int;
  page_writes : int;
}

let stats (t : t) =
  {
    hits = t.hits;
    misses = t.misses;
    evictions = t.evictions;
    page_reads = t.page_reads;
    page_writes = t.page_writes;
  }

let close t =
  (match t.base_fd with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.base_fd <- None;
  (try Unix.close t.spill_fd with Unix.Unix_error _ -> ());
  try Sys.remove t.spill_path with Sys_error _ -> ()
