(** Store wait observation: a process-global hook timed around the two
    places a store operation blocks on the disk — the WAL group-commit
    [fsync] and a buffer-pool page fault's [read].

    With no observer installed ({!installed} [= None], the default) the
    hot paths pay one atomic load and no clock read. The serving layer
    installs an observer that attributes the wait to the in-flight
    request's lifecycle record and to the
    [strategem_stage_latency_us{stage="wal_fsync"|"page_read"}]
    histograms. The observer is called with the wait's duration in
    nanoseconds, on the thread that waited, and must not call back into
    the store. *)

type event = Wal_fsync | Page_read

val install : (event -> int -> unit) -> unit
val clear : unit -> unit
val installed : unit -> (event -> int -> unit) option

(** [timed ev f] runs [f], reporting its wall-clock nanoseconds to the
    installed observer (if any). Used by {!Wal} and {!Pool} internally. *)
val timed : event -> (unit -> 'a) -> 'a
