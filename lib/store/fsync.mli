(** Durable-write helpers shared by everything that persists state
    (strategy snapshots, the fact store's WAL and checkpoints).

    The discipline is always the same: write a temp file, [fsync] it,
    [rename] over the final name, then [fsync] the directory. Without the
    first fsync a crash shortly after the rename can leave the final name
    pointing at truncated data (the rename is metadata and can reach disk
    before the data blocks); without the second, the rename itself may be
    lost. *)

(** [fsync_fd fd] — flush [fd] to stable storage; [Unix.Unix_error]
    escapes (callers writing durability-critical data must not swallow
    it). *)
val fsync_fd : Unix.file_descr -> unit

(** Best-effort fsync of a directory (some filesystems refuse directory
    fsync; errors are ignored, as is an unopenable directory). *)
val fsync_dir : string -> unit

(** [write_file path content] — atomic durable replacement of [path]:
    temp file + fsync + rename + directory fsync. Concurrent writers
    race safely (last rename wins; readers never see a torn file). *)
val write_file : string -> string -> unit

(** [mkdir] if missing (single level). *)
val ensure_dir : string -> unit
