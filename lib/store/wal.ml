type op =
  | Sym of { sid : int; name : string }
  | Add of { gen : int; pred : int; args : int array }
  | Del of { gen : int; pred : int; args : int array }

type sync_mode = Always | Interval of float | Never

(* ---------- CRC-32 (IEEE 802.3, reflected) ---------- *)

let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 buf off len =
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = off to off + len - 1 do
    c := table.((!c lxor Bytes.get_uint8 buf i) land 0xFF) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF

(* ---------- record encoding ---------- *)

let k_sym = 1
let k_add = 2
let k_del = 3

let get_u32 b off = Int32.to_int (Bytes.get_int32_le b off) land 0xFFFFFFFF
let set_u32 b off v = Bytes.set_int32_le b off (Int32.of_int v)

let encode_body op =
  match op with
  | Sym { sid; name } ->
    let b = Bytes.create (5 + String.length name) in
    Bytes.set_uint8 b 0 k_sym;
    set_u32 b 1 sid;
    Bytes.blit_string name 0 b 5 (String.length name);
    b
  | Add { gen; pred; args } | Del { gen; pred; args } ->
    let nargs = Array.length args in
    let b = Bytes.create (14 + (4 * nargs)) in
    Bytes.set_uint8 b 0 (match op with Add _ -> k_add | _ -> k_del);
    Bytes.set_int64_le b 1 (Int64.of_int gen);
    set_u32 b 9 pred;
    Bytes.set_uint8 b 13 nargs;
    Array.iteri (fun i a -> set_u32 b (14 + (4 * i)) a) args;
    b

exception Bad

let decode_body b =
  let len = Bytes.length b in
  if len < 1 then raise Bad;
  match Bytes.get_uint8 b 0 with
  | k when k = k_sym ->
    if len < 5 then raise Bad;
    Sym { sid = get_u32 b 1; name = Bytes.sub_string b 5 (len - 5) }
  | k when k = k_add || k = k_del ->
    if len < 14 then raise Bad;
    let nargs = Bytes.get_uint8 b 13 in
    if len <> 14 + (4 * nargs) then raise Bad;
    let gen = Int64.to_int (Bytes.get_int64_le b 1) in
    let pred = get_u32 b 9 in
    let args = Array.init nargs (fun i -> get_u32 b (14 + (4 * i))) in
    if Bytes.get_uint8 b 0 = k_add then Add { gen; pred; args }
    else Del { gen; pred; args }
  | _ -> raise Bad

(* A frame can in principle be large (a long symbol name), but anything
   beyond this is surely corruption, not data. *)
let max_body = 1 lsl 20

let replay path f =
  match
    Unix.openfile path [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0
  with
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> 0
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let size = (Unix.fstat fd).Unix.st_size in
        let buf = Bytes.create size in
        let rec fill off =
          if off < size then
            match Unix.read fd buf off (size - off) with
            | 0 -> ()
            | n -> fill (off + n)
        in
        fill 0;
        let pos = ref 0 in
        let valid = ref 0 in
        (try
           while !pos + 8 <= size do
             let len = get_u32 buf !pos in
             if len = 0 || len > max_body || !pos + 8 + len > size then
               raise Exit;
             let body = Bytes.sub buf (!pos + 4) len in
             if crc32 buf (!pos + 4) len <> get_u32 buf (!pos + 4 + len) then
               raise Exit;
             let op = decode_body body in
             pos := !pos + 8 + len;
             valid := !pos;
             f op
           done
         with Exit | Bad -> ());
        !valid)

(* ---------- appending ---------- *)

type t = {
  fd : Unix.file_descr;
  mode : sync_mode;
  mutable bytes : int;
  mutable appends : int;
  mutable syncs : int;
  mutable dirty : bool;      (* appended since the last fsync *)
  mutable last_sync : float;
}

let open_append path ~valid ~sync:mode =
  let fd =
    Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_CLOEXEC ] 0o644
  in
  Unix.ftruncate fd valid;
  ignore (Unix.lseek fd valid Unix.SEEK_SET);
  {
    fd;
    mode;
    bytes = valid;
    appends = 0;
    syncs = 0;
    dirty = false;
    last_sync = Unix.gettimeofday ();
  }

let write_all fd b =
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let do_sync t =
  Hooks.timed Hooks.Wal_fsync (fun () -> Fsync.fsync_fd t.fd);
  t.syncs <- t.syncs + 1;
  t.dirty <- false;
  t.last_sync <- Unix.gettimeofday ()

let append t op =
  let body = encode_body op in
  let len = Bytes.length body in
  let frame = Bytes.create (8 + len) in
  set_u32 frame 0 len;
  Bytes.blit body 0 frame 4 len;
  set_u32 frame (4 + len) (crc32 frame 4 len);
  write_all t.fd frame;
  t.bytes <- t.bytes + 8 + len;
  t.appends <- t.appends + 1;
  t.dirty <- true;
  match t.mode with
  | Always -> do_sync t
  | Never -> ()
  | Interval s ->
    if Unix.gettimeofday () -. t.last_sync >= s then do_sync t

let sync t = if t.dirty then do_sync t

let reset t =
  Unix.ftruncate t.fd 0;
  ignore (Unix.lseek t.fd 0 Unix.SEEK_SET);
  t.bytes <- 0;
  do_sync t

let size t = t.bytes

type stats = { bytes : int; appends : int; syncs : int }

let stats (t : t) = { bytes = t.bytes; appends = t.appends; syncs = t.syncs }

let close t =
  (try sync t with Unix.Unix_error _ -> ());
  try Unix.close t.fd with Unix.Unix_error _ -> ()
