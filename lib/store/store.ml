(* The paged persistent fact store. [Engine] is the store proper; the
   submodules are its layers, exposed for tests and for sharing (the
   serve snapshotter reuses [Fsync]). *)

module Fsync = Fsync
module Hooks = Hooks
module Page = Page
module Pool = Pool
module Wal = Wal
include Engine
