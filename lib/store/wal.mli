(** The append-only write-ahead log: every mutation ([add]/[remove]) and
    every new symbol is appended as a self-delimiting, CRC-framed record
    before the store's in-memory or paged state changes.

    Frame layout: [u32 len | body | u32 crc32(body)]. Replay walks
    frames from the start and stops at the first short or corrupt frame,
    so a torn tail (crash mid-append) yields exactly the longest valid
    prefix — no torn facts. [Add]/[Del] records carry the generation
    {e after} the mutation, so replay recovers the exact pre-crash
    generation counter (monotone in the length of the surviving prefix)
    even when some effects already reached the page files.

    Group commit: in [Interval s] mode an append [write]s promptly but
    only [fsync]s when [s] seconds have passed since the last sync, so
    a burst of mutations shares one fsync. [Always] syncs every append;
    [Never] leaves syncing to the OS (bulk loads that end in a
    checkpoint). *)

type op =
  | Sym of { sid : int; name : string }
  | Add of { gen : int; pred : int; args : int array }
  | Del of { gen : int; pred : int; args : int array }

type sync_mode = Always | Interval of float | Never

(** [replay path f] — apply [f] to each valid record in order; returns
    the byte length of the valid prefix. A missing file is an empty
    log. *)
val replay : string -> (op -> unit) -> int

type t

(** [open_append path ~valid ~sync] — open for appending, first
    truncating to [valid] bytes (discarding any torn tail found by
    {!replay}) so new records extend the valid prefix. *)
val open_append : string -> valid:int -> sync:sync_mode -> t

val append : t -> op -> unit

(** Force an fsync now (no-op if nothing was appended since the last). *)
val sync : t -> unit

(** Truncate the log to empty (checkpoint has absorbed it) and sync. *)
val reset : t -> unit

val size : t -> int

type stats = { bytes : int; appends : int; syncs : int }

val stats : t -> stats
val close : t -> unit

(** CRC-32 (IEEE, reflected) of a byte range — exposed for tests. *)
val crc32 : Bytes.t -> int -> int -> int
