(** The paged persistent fact store.

    A store lives in a directory:

    - [header] — magic/version, page size, the persistent [token] and
      checkpoint-time [generation], written atomically (see {!Fsync}).
    - [symtab] — the symbol catalog at the last checkpoint: store
      symbol ids ({e sids}) are dense ints, assigned at first intern and
      stable across restarts (unlike process-run [Datalog.Symbol] ids —
      which is what makes pages position-independent).
    - [pages] — the checkpoint image: fixed-size {!Page}s of packed
      fact tuples, replaced wholesale (atomic rename) at checkpoint,
      never written in place.
    - [wal] — the {!Wal} of every mutation since the last checkpoint.
    - [spill] — per-run scratch for dirty-page eviction ({!Pool});
      recovery never reads it.

    Facts are argument tuples of sids keyed by predicate sid; retrieval
    goes through per-predicate hash access methods keyed on
    [(pred, first argument)] — mirroring the in-memory index the SLD
    engine's bound-first-argument retrievals and [count_pred] exploit.
    The access methods are an in-memory directory of record locators
    (Bitcask-style: the keydir is resident, the tuples are paged), so a
    lookup costs at most one page fault per candidate record.

    Recovery on open: rebuild the directory by scanning the checkpoint
    image, then replay the WAL's valid prefix idempotently (re-adding a
    fact already present, or re-deleting an absent one, is a no-op, so
    pages that reached disk before a crash do not double-apply).

    All operations are serialized on an internal mutex; [generation],
    [fact_count] and [token] are atomics readable without it. *)

type t

type sync_mode = Wal.sync_mode = Always | Interval of float | Never

(** Open (or create) the store in [dir]. [page_size] (default 4096,
    min 64) applies only on creation — an existing store keeps its own.
    [pool_pages] (default 256, min 2) is the buffer-pool frame count.
    [sync] (default [Interval 0.02]) is the WAL group-commit policy. *)
val open_ :
  dir:string ->
  ?page_size:int ->
  ?pool_pages:int ->
  ?sync:sync_mode ->
  unit ->
  t

(** Sync the WAL and release every file handle. Dirty pages are {e not}
    checkpointed — the next open replays them from the WAL. *)
val close : t -> unit

(** {1 Symbols} *)

(** Intern a name into the persistent catalog (idempotent; logs a WAL
    record when new). *)
val sid_intern : t -> string -> int

(** Lookup without interning. *)
val sid_lookup : t -> string -> int option

val sid_name : t -> int -> string
val n_syms : t -> int

(** {1 Facts}

    A fact is a predicate sid plus an argument tuple of sids. *)

(** Returns [false] if the fact was already present. *)
val insert : t -> pred:int -> int array -> bool

(** Returns [false] if the fact was absent. *)
val delete : t -> pred:int -> int array -> bool

val mem : t -> pred:int -> int array -> bool

(** Facts of [pred] whose first argument is [first] ([-1] matches the
    nullary bucket). The callback must not call back into the store. *)
val iter_bucket : t -> pred:int -> first:int -> (int array -> unit) -> unit

(** All facts of [pred] (page-sequential). *)
val iter_pred : t -> pred:int -> (int array -> unit) -> unit

(** Every fact, with its predicate sid. *)
val iter_all : t -> (pred:int -> int array -> unit) -> unit

val count_pred : t -> pred:int -> int
val count_bucket : t -> pred:int -> first:int -> int

(** Predicate sids present (count > 0), with counts, unsorted. *)
val pred_counts : t -> (int * int) list

(** {1 State} *)

val fact_count : t -> int

(** Mutation counter: bumped by every successful insert/delete,
    persisted (WAL records carry it; the header holds the checkpoint
    value), so it is monotone across restarts and crash recovery. *)
val generation : t -> int

(** Persistent instance token, drawn once at creation (negative, so it
    can never collide with an in-memory database's token). *)
val token : t -> int

(** {1 Maintenance} *)

(** Compact every live fact into a fresh checkpoint image (symtab,
    pages, header — renamed in that order, each atomically), then reset
    the WAL. Crash-safe at any point: until the WAL reset commits, the
    old/new image plus idempotent replay reconstruct the same state. *)
val checkpoint : t -> unit

(** Force a WAL group-commit fsync now. *)
val sync : t -> unit

type stats = {
  page_size : int;
  pages : int;           (** pages allocated (image + since) *)
  pool_pages : int;      (** buffer-pool frames *)
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  page_reads : int;
  page_writes : int;
  wal_bytes : int;
  wal_appends : int;
  wal_syncs : int;
  checkpoints : int;     (** checkpoints taken this run *)
  checkpoint_unix : float; (** wall time of the last checkpoint (this
                               run; open counts) *)
  facts : int;
  symbols : int;
  generation : int;
}

val stats : t -> stats
