type sync_mode = Wal.sync_mode = Always | Interval of float | Never

(* ---------- directory: the in-memory access methods ---------- *)

(* A growable locator array; a locator packs (page_no, offset) as
   page_no * page_size + offset. Deletion swap-removes, so buckets hold
   live records only and [n] is the live count. *)
type bucket = { mutable locs : int array; mutable n : int }

let bucket_create () = { locs = [||]; n = 0 }

let bucket_add b loc =
  if b.n = Array.length b.locs then begin
    let cap = Int.max 4 (2 * Array.length b.locs) in
    let a = Array.make cap 0 in
    Array.blit b.locs 0 a 0 b.n;
    b.locs <- a
  end;
  b.locs.(b.n) <- loc;
  b.n <- b.n + 1

let bucket_remove b i =
  b.n <- b.n - 1;
  b.locs.(i) <- b.locs.(b.n)

type pred_info = {
  mutable count : int;
  buckets : (int, bucket) Hashtbl.t; (* first sid (-1 nullary) -> bucket *)
  mutable fill_page : int;           (* page with free space, -1 none *)
  mutable pages : int list;          (* this predicate's pages, newest first *)
}

let pred_info_create () =
  { count = 0; buckets = Hashtbl.create 8; fill_page = -1; pages = [] }

type t = {
  dir : string;
  page_size : int;
  pool : Pool.t;
  mutable wal : Wal.t;
  lock : Mutex.t;
  (* symbol catalog: sid -> name and back *)
  mutable names : string array;
  mutable n_syms : int;
  sym_ids : (string, int) Hashtbl.t;
  mutable preds : (int, pred_info) Hashtbl.t;
  mutable npages : int;
  generation : int Atomic.t;
  facts : int Atomic.t;
  token : int;
  mutable checkpoints : int;
  mutable checkpoint_unix : float;
  mutable closed : bool;
}

let header_path t = Filename.concat t.dir "header"
let symtab_path t = Filename.concat t.dir "symtab"
let pages_path t = Filename.concat t.dir "pages"
let wal_path dir = Filename.concat dir "wal"

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let check_open t = if t.closed then invalid_arg "Store: closed"

(* ---------- symbols ---------- *)

let add_name t name =
  if t.n_syms = Array.length t.names then begin
    let cap = Int.max 64 (2 * Array.length t.names) in
    let a = Array.make cap "" in
    Array.blit t.names 0 a 0 t.n_syms;
    t.names <- a
  end;
  let sid = t.n_syms in
  t.names.(sid) <- name;
  t.n_syms <- sid + 1;
  Hashtbl.add t.sym_ids name sid;
  sid

let sid_intern t name =
  with_lock t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.sym_ids name with
      | Some sid -> sid
      | None ->
        let sid = add_name t name in
        Wal.append t.wal (Wal.Sym { sid; name });
        sid)

let sid_lookup t name = with_lock t (fun () -> Hashtbl.find_opt t.sym_ids name)

let sid_name t sid =
  with_lock t (fun () ->
      if sid < 0 || sid >= t.n_syms then invalid_arg "Store.sid_name";
      t.names.(sid))

let n_syms t = with_lock t (fun () -> t.n_syms)

(* ---------- fact plumbing (caller holds the lock) ---------- *)

let first_of args = if Array.length args > 0 then args.(0) else -1

let find_pred t pred =
  match Hashtbl.find_opt t.preds pred with
  | Some pi -> pi
  | None ->
    let pi = pred_info_create () in
    Hashtbl.add t.preds pred pi;
    pi

let find_bucket pi first =
  match Hashtbl.find_opt pi.buckets first with
  | Some b -> b
  | None ->
    let b = bucket_create () in
    Hashtbl.add pi.buckets first b;
    b

(* Index of the bucket slot whose record equals [args], or -1. *)
let bucket_find t b args =
  let ps = t.page_size in
  let rec go i =
    if i >= b.n then -1
    else
      let loc = b.locs.(i) in
      if
        Pool.with_page t.pool (loc / ps) (fun page ->
            Page.matches_at page (loc mod ps) args)
      then i
      else go (i + 1)
  in
  go 0

(* Append [args] into [pred]'s fill page (allocating a page when
   needed); returns the record locator. *)
let place t pi pred args =
  let nargs = Array.length args in
  let alloc () =
    let page_no = t.npages in
    t.npages <- t.npages + 1;
    let off =
      Pool.with_dirty ~fresh:true t.pool page_no (fun page ->
          Page.init page ~pred;
          Page.append page args)
    in
    pi.pages <- page_no :: pi.pages;
    pi.fill_page <- page_no;
    (page_no * t.page_size) + off
  in
  if pi.fill_page < 0 then alloc ()
  else
    let placed =
      Pool.with_dirty t.pool pi.fill_page (fun page ->
          if Page.has_room page ~nargs then Some (Page.append page args)
          else None)
    in
    match placed with
    | Some off -> (pi.fill_page * t.page_size) + off
    | None -> alloc ()

(* Idempotent core mutations, shared by the logged API and WAL replay. *)
let add_core t pred args =
  let pi = find_pred t pred in
  let b = find_bucket pi (first_of args) in
  if bucket_find t b args >= 0 then false
  else begin
    let loc = place t pi pred args in
    bucket_add b loc;
    pi.count <- pi.count + 1;
    Atomic.incr t.facts;
    true
  end

let del_core t pred args =
  match Hashtbl.find_opt t.preds pred with
  | None -> false
  | Some pi -> (
    match Hashtbl.find_opt pi.buckets (first_of args) with
    | None -> false
    | Some b ->
      let i = bucket_find t b args in
      if i < 0 then false
      else begin
        let loc = b.locs.(i) in
        let ps = t.page_size in
        Pool.with_dirty t.pool (loc / ps) (fun page ->
            Page.kill page (loc mod ps));
        bucket_remove b i;
        pi.count <- pi.count - 1;
        Atomic.decr t.facts;
        true
      end)

(* ---------- public mutations (WAL first, then the page) ---------- *)

let insert t ~pred args =
  with_lock t (fun () ->
      check_open t;
      let pi = find_pred t pred in
      let b = find_bucket pi (first_of args) in
      if bucket_find t b args >= 0 then false
      else begin
        let gen = Atomic.get t.generation + 1 in
        Wal.append t.wal (Wal.Add { gen; pred; args });
        let loc = place t pi pred args in
        bucket_add b loc;
        pi.count <- pi.count + 1;
        Atomic.incr t.facts;
        Atomic.set t.generation gen;
        true
      end)

let delete t ~pred args =
  with_lock t (fun () ->
      check_open t;
      (* Probe first so an absent fact neither logs nor bumps. *)
      let present =
        match Hashtbl.find_opt t.preds pred with
        | None -> false
        | Some pi -> (
          match Hashtbl.find_opt pi.buckets (first_of args) with
          | None -> false
          | Some b -> bucket_find t b args >= 0)
      in
      if not present then false
      else begin
        let gen = Atomic.get t.generation + 1 in
        Wal.append t.wal (Wal.Del { gen; pred; args });
        ignore (del_core t pred args);
        Atomic.set t.generation gen;
        true
      end)

let mem t ~pred args =
  with_lock t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.preds pred with
      | None -> false
      | Some pi -> (
        match Hashtbl.find_opt pi.buckets (first_of args) with
        | None -> false
        | Some b -> bucket_find t b args >= 0))

(* ---------- retrieval ---------- *)

let iter_bucket t ~pred ~first f =
  with_lock t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.preds pred with
      | None -> ()
      | Some pi -> (
        match Hashtbl.find_opt pi.buckets first with
        | None -> ()
        | Some b ->
          (* Bucket locators cluster on pages (checkpoint packs each
             predicate contiguously), so fetch each page once per run of
             same-page locators instead of once per record. *)
          let ps = t.page_size in
          let i = ref 0 in
          while !i < b.n do
            let page_no = b.locs.(!i) / ps in
            Pool.with_page t.pool page_no (fun page ->
                while !i < b.n && b.locs.(!i) / ps = page_no do
                  f (Page.args_at page (b.locs.(!i) mod ps));
                  incr i
                done)
          done))

let iter_pred t ~pred f =
  with_lock t (fun () ->
      check_open t;
      match Hashtbl.find_opt t.preds pred with
      | None -> ()
      | Some pi ->
        List.iter
          (fun page_no ->
            Pool.with_page t.pool page_no (fun page ->
                Page.iter page (fun _off args -> f args)))
          pi.pages)

let iter_all t f =
  with_lock t (fun () ->
      check_open t;
      Hashtbl.iter
        (fun pred pi ->
          List.iter
            (fun page_no ->
              Pool.with_page t.pool page_no (fun page ->
                  Page.iter page (fun _off args -> f ~pred args)))
            pi.pages)
        t.preds)

let count_pred t ~pred =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.preds pred with
      | None -> 0
      | Some pi -> pi.count)

let count_bucket t ~pred ~first =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.preds pred with
      | None -> 0
      | Some pi -> (
        match Hashtbl.find_opt pi.buckets first with
        | None -> 0
        | Some b -> b.n))

let pred_counts t =
  with_lock t (fun () ->
      Hashtbl.fold
        (fun pred pi acc -> if pi.count > 0 then (pred, pi.count) :: acc else acc)
        t.preds [])

let fact_count t = Atomic.get t.facts
let generation t = Atomic.get t.generation
let token t = t.token

(* ---------- header ---------- *)

let magic = "strategem-store"
let version = 1

let render_header t ~gen =
  Printf.sprintf
    "magic %s\nversion %d\npage_size %d\ntoken %d\ngeneration %d\n\
     syms %d\nfacts %d\npages %d\n"
    magic version t.page_size t.token gen t.n_syms
    (Atomic.get t.facts) t.npages

type header = {
  h_page_size : int;
  h_token : int;
  h_generation : int;
}

let parse_header text =
  let kv =
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           match String.index_opt line ' ' with
           | None -> None
           | Some i ->
             Some
               ( String.sub line 0 i,
                 String.sub line (i + 1) (String.length line - i - 1) ))
  in
  let get k = List.assoc_opt k kv in
  let geti k d =
    match get k with
    | Some v -> ( try int_of_string v with _ -> d)
    | None -> d
  in
  (match get "magic" with
  | Some m when m = magic -> ()
  | _ -> failwith "Store: bad magic in header");
  if geti "version" 0 <> version then failwith "Store: unsupported version";
  {
    h_page_size = geti "page_size" 4096;
    h_token = geti "token" (-1);
    h_generation = geti "generation" 0;
  }

(* ---------- symtab file: u32 count, then (u32 len, bytes) per name *)

let render_symtab t =
  let buf = Buffer.create (64 * t.n_syms) in
  let u32 v =
    Buffer.add_char buf (Char.chr (v land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 8) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 16) land 0xFF));
    Buffer.add_char buf (Char.chr ((v lsr 24) land 0xFF))
  in
  u32 t.n_syms;
  for sid = 0 to t.n_syms - 1 do
    u32 (String.length t.names.(sid));
    Buffer.add_string buf t.names.(sid)
  done;
  Buffer.contents buf

let load_symtab t path =
  if Sys.file_exists path then begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let text = really_input_string ic (in_channel_length ic) in
        let u32 off =
          Char.code text.[off]
          lor (Char.code text.[off + 1] lsl 8)
          lor (Char.code text.[off + 2] lsl 16)
          lor (Char.code text.[off + 3] lsl 24)
        in
        let count = u32 0 in
        let off = ref 4 in
        for _ = 1 to count do
          let len = u32 !off in
          let name = String.sub text (!off + 4) len in
          off := !off + 4 + len;
          ignore (add_name t name)
        done)
  end

(* ---------- open / recovery ---------- *)

let scan_pages t =
  for page_no = 0 to t.npages - 1 do
    Pool.with_page t.pool page_no (fun page ->
        let pred = Page.pred page in
        let pi = find_pred t pred in
        pi.pages <- page_no :: pi.pages;
        Page.iter page (fun off args ->
            let b = find_bucket pi (first_of args) in
            bucket_add b ((page_no * t.page_size) + off);
            pi.count <- pi.count + 1;
            Atomic.incr t.facts);
        (* The image is compacted per predicate, so at most the last
           page of a predicate has room; any page with room can serve
           as the fill page. *)
        if Page.has_room page ~nargs:255 then pi.fill_page <- page_no)
  done

let replay_op t op =
  match op with
  | Wal.Sym { sid; name } ->
    (* sids below [n_syms] were already absorbed by a checkpoint's
       symtab (replay after a crash mid-checkpoint); in order beyond
       that, the record is the intern we logged. *)
    if sid = t.n_syms then ignore (add_name t name)
  | Wal.Add { gen; pred; args } ->
    ignore (add_core t pred args);
    if gen > Atomic.get t.generation then Atomic.set t.generation gen
  | Wal.Del { gen; pred; args } ->
    ignore (del_core t pred args);
    if gen > Atomic.get t.generation then Atomic.set t.generation gen

let open_ ~dir ?(page_size = 4096) ?(pool_pages = 256) ?(sync = Interval 0.02)
    () =
  Fsync.ensure_dir dir;
  let header_file = Filename.concat dir "header" in
  let existing =
    if Sys.file_exists header_file then begin
      let ic = open_in_bin header_file in
      let text =
        Fun.protect
          ~finally:(fun () -> close_in ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      in
      Some (parse_header text)
    end
    else None
  in
  let page_size =
    match existing with Some h -> h.h_page_size | None -> page_size
  in
  if page_size < 64 then invalid_arg "Store.open_: page_size < 64";
  let token =
    match existing with
    | Some h when h.h_token < 0 -> h.h_token
    | Some _ | None ->
      (* Negative, so a persistent token can never collide with the
         in-memory databases' nonnegative instance counter. *)
      let rng = Random.State.make_self_init () in
      -(1 + Random.State.int rng 0x3FFFFFFF)
  in
  let pool =
    Pool.create ~page_size
      ~frames:(Int.max 2 pool_pages)
      ~spill_path:(Filename.concat dir "spill")
  in
  let t =
    {
      dir;
      page_size;
      pool;
      wal = Obj.magic ();
      (* replaced below, before any use *)
      lock = Mutex.create ();
      names = [||];
      n_syms = 0;
      sym_ids = Hashtbl.create 256;
      preds = Hashtbl.create 32;
      npages = 0;
      generation = Atomic.make 0;
      facts = Atomic.make 0;
      token;
      checkpoints = 0;
      checkpoint_unix = Unix.gettimeofday ();
      closed = false;
    }
  in
  load_symtab t (symtab_path t);
  (match existing with
  | Some h -> Atomic.set t.generation h.h_generation
  | None -> ());
  (* The checkpoint image: trust the file's actual size (the header is
     renamed after the pages file; a crash between the two leaves a
     header that undercounts). *)
  (if Sys.file_exists (pages_path t) then begin
     let fd =
       Unix.openfile (pages_path t) [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0
     in
     let size = (Unix.fstat fd).Unix.st_size in
     t.npages <- size / page_size;
     Pool.set_base t.pool (Some fd) ~base_pages:t.npages
   end
   else Pool.set_base t.pool None ~base_pages:0);
  scan_pages t;
  (* Replay the WAL's valid prefix, then open it for appending,
     discarding any torn tail so new records extend the valid data. *)
  let valid = Wal.replay (wal_path dir) (replay_op t) in
  t.wal <- Wal.open_append (wal_path dir) ~valid ~sync;
  (match existing with
  | None ->
    (* Commit the newborn store (its token above all) durably. *)
    Fsync.write_file (header_path t) (render_header t ~gen:0)
  | Some _ -> ());
  Fsync.fsync_dir dir;
  t

(* ---------- checkpoint ---------- *)

let checkpoint t =
  with_lock t (fun () ->
      check_open t;
      let gen = Atomic.get t.generation in
      (* Pack every live fact into a fresh, per-predicate-compacted
         image, accumulating the new directory as records land. *)
      let buf = Buffer.create (1 lsl 20) in
      let cur = Bytes.create t.page_size in
      let flushed = ref 0 in
      let new_preds = Hashtbl.create (Hashtbl.length t.preds) in
      let sorted =
        Hashtbl.fold (fun pred pi acc -> (pred, pi) :: acc) t.preds []
        |> List.sort (fun (a, _) (b, _) -> Int.compare a b)
      in
      List.iter
        (fun (pred, pi) ->
          if pi.count > 0 then begin
            let npi = pred_info_create () in
            Hashtbl.add new_preds pred npi;
            Page.init cur ~pred;
            let flush_cur () =
              Buffer.add_bytes buf cur;
              npi.pages <- !flushed :: npi.pages;
              incr flushed
            in
            let emit args =
              if not (Page.has_room cur ~nargs:(Array.length args)) then begin
                flush_cur ();
                Page.init cur ~pred
              end;
              let off = Page.append cur args in
              let b = find_bucket npi (first_of args) in
              bucket_add b ((!flushed * t.page_size) + off);
              npi.count <- npi.count + 1
            in
            List.iter
              (fun page_no ->
                Pool.with_page t.pool page_no (fun page ->
                    Page.iter page (fun _off args -> emit args)))
              (List.rev pi.pages);
            if Page.count cur > 0 then begin
              if Page.has_room cur ~nargs:255 then npi.fill_page <- !flushed;
              flush_cur ()
            end
          end)
        sorted;
      (* Durable commit order: symtab, pages, header — each an atomic
         replace — then the WAL reset. A crash at any point leaves a
         state that recovery reconstructs: until the header lands the
         old generation rules, and WAL replay is idempotent on top of
         either image. *)
      Fsync.write_file (symtab_path t) (render_symtab t);
      Fsync.write_file (pages_path t) (Buffer.contents buf);
      Fsync.write_file (header_path t) (render_header t ~gen);
      Wal.reset t.wal;
      (* Swap the runtime to the new image. *)
      let fd =
        Unix.openfile (pages_path t) [ Unix.O_RDONLY; Unix.O_CLOEXEC ] 0
      in
      t.npages <- !flushed;
      Pool.set_base t.pool (Some fd) ~base_pages:!flushed;
      t.preds <- new_preds;
      t.checkpoints <- t.checkpoints + 1;
      t.checkpoint_unix <- Unix.gettimeofday ())

let sync t = with_lock t (fun () -> check_open t; Wal.sync t.wal)

let close t =
  with_lock t (fun () ->
      if not t.closed then begin
        t.closed <- true;
        Wal.close t.wal;
        Pool.close t.pool
      end)

type stats = {
  page_size : int;
  pages : int;
  pool_pages : int;
  pool_hits : int;
  pool_misses : int;
  pool_evictions : int;
  page_reads : int;
  page_writes : int;
  wal_bytes : int;
  wal_appends : int;
  wal_syncs : int;
  checkpoints : int;
  checkpoint_unix : float;
  facts : int;
  symbols : int;
  generation : int;
}

let stats t =
  with_lock t (fun () ->
      let p = Pool.stats t.pool in
      let w = Wal.stats t.wal in
      {
        page_size = t.page_size;
        pages = t.npages;
        pool_pages = Pool.frames t.pool;
        pool_hits = p.Pool.hits;
        pool_misses = p.Pool.misses;
        pool_evictions = p.Pool.evictions;
        page_reads = p.Pool.page_reads;
        page_writes = p.Pool.page_writes;
        wal_bytes = w.Wal.bytes;
        wal_appends = w.Wal.appends;
        wal_syncs = w.Wal.syncs;
        checkpoints = t.checkpoints;
        checkpoint_unix = t.checkpoint_unix;
        facts = Atomic.get t.facts;
        symbols = t.n_syms;
        generation = Atomic.get t.generation;
      })
