type t = Term.t Term.Var_map.t

let empty = Term.Var_map.empty
let is_empty = Term.Var_map.is_empty
let size = Term.Var_map.cardinal
let find v s = Term.Var_map.find_opt v s

(* Bindings may form chains (X -> Y, Y -> a): [bind] is O(log n) and
   resolution happens on read. Chains are acyclic by construction —
   [bind] only adds v -> t where the fully walked [t] differs from [v],
   and the walked endpoint is always an unbound variable or a constant —
   and no longer than the number of variables, so [walk] terminates. *)
let rec walk s t =
  match t with
  | Term.Const _ -> t
  | Term.Var v -> ( match find v s with Some t' -> walk s t' | None -> t)

let bind v t s =
  let t = walk s t in
  match t with
  | Term.Var v' when Term.equal_var v v' -> s
  | _ -> (
    match find v s with
    | Some existing ->
      if Term.equal (walk s existing) t then s
      else invalid_arg "Subst.bind: variable already bound"
    | None -> Term.Var_map.add v t s)

let apply s t = walk s t

let apply_atom s a =
  if Term.Var_map.is_empty s then a
  else { a with Atom.args = List.map (walk s) a.Atom.args }

let unify a b s =
  let a = walk s a and b = walk s b in
  match (a, b) with
  | Term.Const x, Term.Const y -> if Symbol.equal x y then Some s else None
  | Term.Var v, t | t, Term.Var v ->
    (* [t] may be the same variable; [bind] handles that. *)
    Some (bind v t s)

let unify_atoms a b s =
  if
    (not (Symbol.equal a.Atom.pred b.Atom.pred))
    || List.length a.Atom.args <> List.length b.Atom.args
  then None
  else
    List.fold_left2
      (fun acc ta tb ->
        match acc with None -> None | Some s -> unify ta tb s)
      (Some s) a.Atom.args b.Atom.args

let match_atom ~pattern ~ground s =
  if
    (not (Symbol.equal pattern.Atom.pred ground.Atom.pred))
    || List.length pattern.Atom.args <> List.length ground.Atom.args
  then None
  else
    List.fold_left2
      (fun acc tp tg ->
        match acc with
        | None -> None
        | Some s -> (
          match (walk s tp, tg) with
          | Term.Const x, Term.Const y ->
            if Symbol.equal x y then Some s else None
          | Term.Var v, (Term.Const _ as t) -> Some (bind v t s)
          | _, Term.Var _ -> invalid_arg "Subst.match_atom: ground side not ground"))
      (Some s) pattern.Atom.args ground.Atom.args

(* Readers below resolve chains so consumers always see fully walked
   terms, exactly as when [bind] rewrote eagerly. *)

let restrict vars s =
  Term.Var_map.fold
    (fun v t acc ->
      if Term.Var_set.mem v vars then Term.Var_map.add v (walk s t) acc
      else acc)
    s Term.Var_map.empty

let to_alist s =
  List.map (fun (v, t) -> (v, walk s t)) (Term.Var_map.bindings s)

let equal a b =
  Term.Var_map.cardinal a = Term.Var_map.cardinal b
  && Term.Var_map.for_all
       (fun v ta ->
         match Term.Var_map.find_opt v b with
         | None -> false
         | Some tb -> Term.equal (walk a ta) (walk b tb))
       a

let pp ppf s =
  let pairs = to_alist s in
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf (v, t) -> Format.fprintf ppf "%a=%a" Term.pp_var v Term.pp t))
    pairs
