(** Substitutions and unification.

    A substitution maps variables to terms. Bindings may form chains
    (X -> Y, Y -> a): [bind] is O(log n) and never rewrites existing
    bindings; every reader ([walk], [apply], [restrict], [to_alist],
    [equal], [pp]) resolves chains, so consumers always observe fully
    resolved terms. *)

type t

val empty : t
val is_empty : t -> bool
val size : t -> int

(** [find v s] is the stored binding of [v], if any. The stored term may
    itself be a bound variable; use [apply] for the resolved value. *)
val find : Term.var -> t -> Term.t option

(** Resolve a term through the substitution, chasing chains to an unbound
    variable or a constant. *)
val walk : t -> Term.t -> Term.t

(** [bind v t s] adds the binding [v -> walk s t]. Binding a variable to
    itself returns [s] unchanged. Raises [Invalid_argument] if [v] is
    already bound to a different term. *)
val bind : Term.var -> Term.t -> t -> t

val apply : t -> Term.t -> Term.t

(** [apply_atom s a] applies [s] to every argument of [a]. Returns [a]
    itself (no allocation) when [s] is empty. *)
val apply_atom : t -> Atom.t -> Atom.t

(** [unify a b s] extends [s] to make [a] and [b] equal, if possible. *)
val unify : Term.t -> Term.t -> t -> t option

val unify_atoms : Atom.t -> Atom.t -> t -> t option

(** [match_atom ~pattern ~ground s] one-way matching: only variables of
    [pattern] may be bound. Used for database lookup where the fact is
    ground. *)
val match_atom : pattern:Atom.t -> ground:Atom.t -> t -> t option

(** [restrict vars s] keeps only the bindings of the given variables. *)
val restrict : Term.Var_set.t -> t -> t

val to_alist : t -> (Term.var * Term.t) list
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
