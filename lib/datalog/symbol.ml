type t = { id : int; name : string }

let table : (string, t) Hashtbl.t = Hashtbl.create 1024
let next = ref 0

(* Interning must be safe under the serve daemon's worker threads, which
   parse client-supplied atoms concurrently. The fast path (symbol already
   interned) takes the lock too: a Hashtbl.find racing a resize is not
   safe in OCaml 5, and the critical section is a handful of ns. *)
let lock = Mutex.create ()

let intern name =
  Mutex.lock lock;
  let s =
    match Hashtbl.find_opt table name with
    | Some s -> s
    | None ->
      let s = { id = !next; name } in
      incr next;
      Hashtbl.add table name s;
      s
  in
  Mutex.unlock lock;
  s

let to_string s = s.name
let id s = s.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash s = s.id
let pp ppf s = Format.pp_print_string ppf s.name

let count () =
  Mutex.lock lock;
  let n = !next in
  Mutex.unlock lock;
  n
