type t = { id : int; name : string }

(* Interning must be safe under the serve daemon's worker domains, which
   parse client-supplied atoms in parallel. The common case by far is a
   symbol that is already interned — every atom of every query re-interns
   its predicate and constants — so the read path must not contend:

   - Reads go through an immutable open-addressing table (the
     "snapshot") published via [Atomic]. Each slot is its own [Atomic.t]
     holding either the shared [dummy] sentinel or an interned symbol;
     slot reads are acquire loads, so a symbol observed through a slot
     is always fully initialized. A lookup is hash + probe + string
     compare: no lock, no allocation.
   - Inserts (rare after warmup) serialize on a mutex. A new symbol is
     published by a single slot store into the current snapshot; the
     snapshot array is only rebuilt (copy + rehash, swapped in with one
     [Atomic.set]) when the load factor crosses 1/2, so probes always
     terminate and insertion cost is amortized O(1).

   Readers racing an insert either see the new symbol or miss and retry
   under the mutex — both outcomes are correct, and a name is never
   interned twice. *)

let dummy = { id = -1; name = "" }

type snap = { mask : int; slots : t Atomic.t array }

let make_snap n = { mask = n - 1; slots = Array.init n (fun _ -> Atomic.make dummy) }

(* 2048 slots holds the first 1024 symbols without a rebuild. *)
let snapshot = Atomic.make (make_snap 2048)
let lock = Mutex.create ()
let next = Atomic.make 0

(* Probe for [name]; returns [dummy] on a miss. Probes terminate because
   the insert path keeps at least half the slots empty. Top-level
   recursion (not a local closure) so the interned fast path allocates
   nothing. *)
let rec probe_from slots mask name i =
  let s = Atomic.get (Array.unsafe_get slots (i land mask)) in
  if s == dummy then dummy
  else if String.equal s.name name then s
  else probe_from slots mask name (i + 1)

let find_in snap name h = probe_from snap.slots snap.mask name h

(* Store [sym] at the first empty slot of its probe sequence. Writers
   hold the mutex, so the found slot cannot be filled concurrently. *)
let insert_in snap sym h =
  let rec probe i =
    let slot = Array.unsafe_get snap.slots (i land snap.mask) in
    if Atomic.get slot == dummy then Atomic.set slot sym else probe (i + 1)
  in
  probe h

let intern name =
  let h = Hashtbl.hash name in
  let s = find_in (Atomic.get snapshot) name h in
  if s != dummy then s
  else begin
    Mutex.lock lock;
    (* Re-probe: another domain may have interned it since the fast path
       missed. Writers are serialized, so this snapshot read is current. *)
    let snap = Atomic.get snapshot in
    let s = find_in snap name h in
    let s =
      if s != dummy then s
      else begin
        let sym = { id = Atomic.get next; name } in
        let n_slots = Array.length snap.slots in
        if 2 * (sym.id + 1) > n_slots then begin
          (* Rebuild at double capacity, then publish the new table in
             one swap; readers keep using the old snapshot meanwhile. *)
          let bigger = make_snap (2 * n_slots) in
          Array.iter
            (fun slot ->
              let s = Atomic.get slot in
              if s != dummy then insert_in bigger s (Hashtbl.hash s.name))
            snap.slots;
          insert_in bigger sym h;
          Atomic.set snapshot bigger
        end
        else insert_in snap sym h;
        Atomic.incr next;
        sym
      end
    in
    Mutex.unlock lock;
    s
  end

let to_string s = s.name
let id s = s.id
let equal a b = a.id = b.id
let compare a b = Int.compare a.id b.id
let hash s = s.id
let pp ppf s = Format.pp_print_string ppf s.name
let count () = Atomic.get next
