type stats = {
  mutable reductions : int;
  mutable retrievals : int;
  mutable retrieval_hits : int;
  mutable naf_calls : int;
  mutable truncated : bool;
}

let fresh_stats () =
  {
    reductions = 0;
    retrievals = 0;
    retrieval_hits = 0;
    naf_calls = 0;
    truncated = false;
  }

type config = {
  rulebase : Rulebase.t;
  db : Database.t;
  rule_order : Atom.t -> Clause.t list -> Clause.t list;
  depth_limit : int;
  tracer : Trace.t;
  parent : Trace.span;
}

let config ?(rule_order = fun _ rules -> rules) ?(depth_limit = 512)
    ?(tracer = Trace.null) ?(parent = Trace.dummy) ~rulebase ~db () =
  { rulebase; db; rule_order; depth_limit; tracer; parent }

exception Floundering of Atom.t

(* Select the first literal that is ready to run: any positive literal, or a
   negative literal that is ground under [s]. Returns the literal and the
   remaining goals (order otherwise preserved). *)
let select s goals =
  let rec go acc = function
    | [] -> None
    | (Clause.Pos _ as l) :: rest -> Some (l, List.rev_append acc rest)
    | (Clause.Neg a as l) :: rest ->
      if Atom.is_ground (Subst.apply_atom s a) then
        Some (l, List.rev_append acc rest)
      else go (l :: acc) rest
  in
  go [] goals

let goal_vars goals =
  List.fold_left
    (fun acc l -> Term.Var_set.union acc (Atom.var_set (Clause.lit_atom l)))
    Term.Var_set.empty goals

(* The solver: returns a lazy sequence of substitutions extending [s] that
   prove [goals]. [gen] is a mutable fresh-generation counter shared across
   the whole derivation so standardized-apart clauses never collide. [sp] is
   the trace span the current derivation step reports under; with the [null]
   tracer every trace call is a single tag test. *)
let rec prove cfg stats gen depth sp s goals : Subst.t Seq.t =
  match goals with
  | [] -> Seq.return s
  | _ -> (
    if depth > cfg.depth_limit then begin
      stats.truncated <- true;
      Seq.empty
    end
    else
      match select s goals with
      | None ->
        (* Only non-ground negative literals remain: floundering. *)
        let atom =
          match goals with
          | Clause.Neg a :: _ -> Subst.apply_atom s a
          | _ -> assert false
        in
        raise (Floundering atom)
      | Some (Clause.Pos atom, rest) ->
        let atom = Subst.apply_atom s atom in
        let has_rules = Rulebase.rules_for cfg.rulebase atom.Atom.pred <> [] in
        let has_facts =
          Database.count_pred cfg.db (Symbol.to_string atom.Atom.pred) > 0
        in
        let from_facts () =
          (* Database retrieval: a satisficing engine pays for the attempt
             whether or not it succeeds (Section 2.1 blocking semantics).
             A purely intensional predicate (rules, no facts) is not a
             retrieval at all — skip the probe so cost statistics match the
             paper's inference-graph model. *)
          if has_rules && not has_facts then Seq.empty
          else begin
          stats.retrievals <- stats.retrievals + 1;
          let matches = Database.matching cfg.db atom in
          if matches <> [] then stats.retrieval_hits <- stats.retrieval_hits + 1;
          if Trace.enabled cfg.tracer then
            Trace.event cfg.tracer sp ~kind:"retrieval" ~cost:1.0
              ~attrs:
                [
                  ("pattern", Atom.to_string atom);
                  ("hit", if matches <> [] then "true" else "false");
                ]
              (Symbol.to_string atom.Atom.pred);
          List.to_seq matches
          |> Seq.filter_map (fun (_fact, s_fact) ->
                 (* Merge the fact bindings into [s]. *)
                 List.fold_left
                   (fun acc (v, t) ->
                     match acc with
                     | None -> None
                     | Some s -> Subst.unify (Term.Var v) t s)
                   (Some s) (Subst.to_alist s_fact))
          |> Seq.concat_map (fun s' -> prove cfg stats gen depth sp s' rest)
          end
        in
        let from_rules () =
          let rules =
            cfg.rule_order atom (Rulebase.rules_for cfg.rulebase atom.Atom.pred)
          in
          List.to_seq rules
          |> Seq.concat_map (fun clause ->
                 incr gen;
                 let clause = Clause.rename !gen clause in
                 match Subst.unify_atoms clause.Clause.head atom s with
                 | None -> Seq.empty
                 | Some s' ->
                   stats.reductions <- stats.reductions + 1;
                   let sp' =
                     if Trace.enabled cfg.tracer then begin
                       let child =
                         Trace.push cfg.tracer sp ~kind:"reduction"
                           (Atom.to_string atom)
                       in
                       Trace.add_cost cfg.tracer child 1.0;
                       child
                     end
                     else sp
                   in
                   prove cfg stats gen (depth + 1) sp' s'
                     (clause.Clause.body @ rest))
        in
        Seq.append (from_facts ()) (from_rules ())
      | Some (Clause.Neg atom, rest) ->
        let atom = Subst.apply_atom s atom in
        stats.naf_calls <- stats.naf_calls + 1;
        let sp' =
          if Trace.enabled cfg.tracer then
            Trace.push cfg.tracer sp ~kind:"naf" (Atom.to_string atom)
          else sp
        in
        let holds =
          (* Sub-proof for the NAF test; shares counters and depth budget. *)
          not
            (Seq.is_empty
               (prove cfg stats gen (depth + 1) sp' Subst.empty
                  [ Clause.Pos atom ]))
        in
        if holds then Seq.empty else prove cfg stats gen depth sp s rest)

let solve_seq cfg stats goals =
  let vars = goal_vars goals in
  let gen = ref 0 in
  prove cfg stats gen 0 cfg.parent Subst.empty goals
  |> Seq.map (fun s -> Subst.restrict vars s)

let solve_first cfg goals =
  let stats = fresh_stats () in
  match (solve_seq cfg stats goals) () with
  | Seq.Nil -> (None, stats)
  | Seq.Cons (s, _) -> (Some s, stats)

let solve_all ?limit cfg goals =
  let stats = fresh_stats () in
  let seen = Hashtbl.create 16 in
  let seq =
    solve_seq cfg stats goals
    |> Seq.filter (fun s ->
           let key = Format.asprintf "%a" Subst.pp s in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
  in
  let seq = match limit with Some n -> Seq.take n seq | None -> seq in
  (List.of_seq seq, stats)

let provable cfg goals =
  match solve_first cfg goals with Some _, _ -> true | None, _ -> false
