type stats = {
  mutable reductions : int;
  mutable retrievals : int;
  mutable retrieval_hits : int;
  mutable naf_calls : int;
  mutable truncated : bool;
}

let fresh_stats () =
  {
    reductions = 0;
    retrievals = 0;
    retrieval_hits = 0;
    naf_calls = 0;
    truncated = false;
  }

(* Subgoal memoization ("tabling-lite"): completed ground subgoals map to a
   boolean proved/failed verdict. Entries record the database token and
   generation they were computed at and are invalidated lazily on lookup, so
   the table can outlive individual queries and be shared across requests. *)
module Memo = struct
  module Tbl = Hashtbl.Make (struct
    type t = Atom.t

    let equal = Atom.equal
    let hash = Atom.hash
  end)

  type slot = { token : int; gen : int; proved : bool }

  type shard = {
    lock : Mutex.t;
    tbl : slot Tbl.t;
    mutable hits : int;
    mutable misses : int;
    mutable invalidations : int;
  }

  type t = { shards : shard array; max_entries_per_shard : int }

  type counters = {
    hits : int;
    misses : int;
    invalidations : int;
    entries : int;
  }

  let create ?(shards = 8) ?(max_entries = 1 lsl 16) () =
    if shards < 1 then invalid_arg "Sld.Memo.create: shards must be >= 1";
    {
      shards =
        Array.init shards (fun _ ->
            {
              lock = Mutex.create ();
              tbl = Tbl.create 64;
              hits = 0;
              misses = 0;
              invalidations = 0;
            });
      max_entries_per_shard = max 1 (max_entries / shards);
    }

  let shard_of t atom =
    t.shards.(Atom.hash atom land max_int mod Array.length t.shards)

  let find t ~token ~gen atom =
    let sh = shard_of t atom in
    Mutex.lock sh.lock;
    let r =
      match Tbl.find_opt sh.tbl atom with
      | Some s when s.token = token && s.gen = gen ->
        sh.hits <- sh.hits + 1;
        Some s.proved
      | Some _ ->
        Tbl.remove sh.tbl atom;
        sh.invalidations <- sh.invalidations + 1;
        sh.misses <- sh.misses + 1;
        None
      | None ->
        sh.misses <- sh.misses + 1;
        None
    in
    Mutex.unlock sh.lock;
    r

  let add t ~token ~gen atom proved =
    let sh = shard_of t atom in
    Mutex.lock sh.lock;
    (* Wholesale reset on overflow: memo entries are cheap to recompute and
       an LRU here would put list surgery on every resolution step. *)
    if Tbl.length sh.tbl >= t.max_entries_per_shard then Tbl.reset sh.tbl;
    Tbl.replace sh.tbl atom { token; gen; proved };
    Mutex.unlock sh.lock

  let clear t =
    Array.iter
      (fun sh ->
        Mutex.lock sh.lock;
        Tbl.reset sh.tbl;
        Mutex.unlock sh.lock)
      t.shards

  let counters t =
    Array.fold_left
      (fun acc sh ->
        Mutex.lock sh.lock;
        let r =
          {
            hits = acc.hits + sh.hits;
            misses = acc.misses + sh.misses;
            invalidations = acc.invalidations + sh.invalidations;
            entries = acc.entries + Tbl.length sh.tbl;
          }
        in
        Mutex.unlock sh.lock;
        r)
      { hits = 0; misses = 0; invalidations = 0; entries = 0 }
      t.shards
end

type config = {
  rulebase : Rulebase.t;
  db : Database.t;
  rule_order : Atom.t -> Clause.t list -> Clause.t list;
  depth_limit : int;
  tracer : Trace.t;
  parent : Trace.span;
  memo : Memo.t option;
}

let config ?(rule_order = fun _ rules -> rules) ?(depth_limit = 512)
    ?(tracer = Trace.null) ?(parent = Trace.dummy) ?memo ~rulebase ~db () =
  { rulebase; db; rule_order; depth_limit; tracer; parent; memo }

exception Floundering of Atom.t

(* Select the first literal that is ready to run: any positive literal, or a
   negative literal that is ground under [s]. Returns the literal and the
   remaining goals (order otherwise preserved). *)
let select s goals =
  let rec go acc = function
    | [] -> None
    | (Clause.Pos _ as l) :: rest -> Some (l, List.rev_append acc rest)
    | (Clause.Neg a as l) :: rest ->
      if Atom.is_ground (Subst.apply_atom s a) then
        Some (l, List.rev_append acc rest)
      else go (l :: acc) rest
  in
  go [] goals

let goal_vars goals =
  List.fold_left
    (fun acc l -> Term.Var_set.union acc (Atom.var_set (Clause.lit_atom l)))
    Term.Var_set.empty goals

(* The solver: returns a lazy sequence of substitutions extending [s] that
   prove [goals]. [gen] is a mutable fresh-generation counter shared across
   the whole derivation so standardized-apart clauses never collide. [sp] is
   the trace span the current derivation step reports under; with the [null]
   tracer every trace call is a single tag test. *)
let rec prove cfg stats gen depth sp s goals : Subst.t Seq.t =
  match goals with
  | [] -> Seq.return s
  | _ -> (
    if depth > cfg.depth_limit then begin
      stats.truncated <- true;
      Seq.empty
    end
    else
      match select s goals with
      | None ->
        (* Only non-ground negative literals remain: floundering. *)
        let atom =
          match goals with
          | Clause.Neg a :: _ -> Subst.apply_atom s a
          | _ -> assert false
        in
        raise (Floundering atom)
      | Some (Clause.Pos atom, rest) -> (
        let atom = Subst.apply_atom s atom in
        match cfg.memo with
        | Some _ when Atom.is_ground atom ->
          (* A ground subgoal adds no bindings: its subtree is a pure
             existence test, so one memoized verdict stands in for every
             backtrack into it. *)
          if memo_prove cfg stats gen depth sp atom then
            prove cfg stats gen depth sp s rest
          else Seq.empty
        | _ -> expand cfg stats gen depth sp s atom rest)
      | Some (Clause.Neg atom, rest) ->
        let atom = Subst.apply_atom s atom in
        stats.naf_calls <- stats.naf_calls + 1;
        let sp' =
          if Trace.enabled cfg.tracer then
            Trace.push cfg.tracer sp ~kind:"naf" (Atom.to_string atom)
          else sp
        in
        let holds =
          (* Sub-proof for the NAF test; shares counters and depth budget.
             The tested atom is ground (guaranteed by [select]), so it is
             memoizable like any other ground subgoal. *)
          match cfg.memo with
          | Some _ -> memo_prove cfg stats gen (depth + 1) sp' atom
          | None ->
            not
              (Seq.is_empty
                 (prove cfg stats gen (depth + 1) sp' Subst.empty
                    [ Clause.Pos atom ]))
        in
        if holds then Seq.empty else prove cfg stats gen depth sp s rest)

(* Expansion of a single positive goal against facts and rules. Factored out
   of [prove] so [memo_prove] can expand the goal it is memoizing without
   re-entering the memo check for that same goal. *)
and expand cfg stats gen depth sp s atom rest =
  let has_rules = Rulebase.rules_for cfg.rulebase atom.Atom.pred <> [] in
  let has_facts = Database.count_pred_id cfg.db (Symbol.id atom.Atom.pred) > 0 in
  let from_facts () =
    (* Database retrieval: a satisficing engine pays for the attempt
       whether or not it succeeds (Section 2.1 blocking semantics).
       A purely intensional predicate (rules, no facts) is not a
       retrieval at all — skip the probe so cost statistics match the
       paper's inference-graph model. *)
    if has_rules && not has_facts then Seq.empty
    else begin
      stats.retrievals <- stats.retrievals + 1;
      let matches = Database.matching cfg.db atom in
      if matches <> [] then stats.retrieval_hits <- stats.retrieval_hits + 1;
      if Trace.enabled cfg.tracer then
        Trace.event cfg.tracer sp ~kind:"retrieval" ~cost:1.0
          ~attrs:
            [
              ("pattern", Atom.to_string atom);
              ("hit", if matches <> [] then "true" else "false");
            ]
          (Symbol.to_string atom.Atom.pred);
      List.to_seq matches
      |> Seq.filter_map (fun (_fact, s_fact) ->
             (* Merge the fact bindings into [s]. *)
             List.fold_left
               (fun acc (v, t) ->
                 match acc with
                 | None -> None
                 | Some s -> Subst.unify (Term.Var v) t s)
               (Some s) (Subst.to_alist s_fact))
      |> Seq.concat_map (fun s' -> prove cfg stats gen depth sp s' rest)
    end
  in
  let from_rules () =
    let rules =
      cfg.rule_order atom (Rulebase.rules_for cfg.rulebase atom.Atom.pred)
    in
    List.to_seq rules
    |> Seq.concat_map (fun clause ->
           incr gen;
           let clause = Clause.rename !gen clause in
           match Subst.unify_atoms clause.Clause.head atom s with
           | None -> Seq.empty
           | Some s' ->
             stats.reductions <- stats.reductions + 1;
             let sp' =
               if Trace.enabled cfg.tracer then begin
                 let child =
                   Trace.push cfg.tracer sp ~kind:"reduction"
                     (Atom.to_string atom)
                 in
                 Trace.add_cost cfg.tracer child 1.0;
                 child
               end
               else sp
             in
             prove cfg stats gen (depth + 1) sp' s' (clause.Clause.body @ rest))
  in
  Seq.append (from_facts ()) (from_rules ())

(* Existence test for a ground atom through the memo table. Records a [true]
   verdict as soon as a proof is found (a proof is a proof even under a
   truncated search) but records [false] only when the failed subtree
   completed without hitting the depth limit — a truncated failure is
   "unknown", not "no". *)
and memo_prove cfg stats gen depth sp atom =
  if depth > cfg.depth_limit then begin
    stats.truncated <- true;
    false
  end
  else
    let m = match cfg.memo with Some m -> m | None -> assert false in
    let token = Database.token cfg.db in
    let dbgen = Database.generation cfg.db in
    match Memo.find m ~token ~gen:dbgen atom with
    | Some proved ->
      if Trace.enabled cfg.tracer then
        Trace.event cfg.tracer sp ~kind:"memo_hit"
          ~attrs:
            [
              ("pattern", Atom.to_string atom);
              ("proved", if proved then "true" else "false");
            ]
          (Symbol.to_string atom.Atom.pred);
      proved
    | None ->
      let was_truncated = stats.truncated in
      stats.truncated <- false;
      let proved =
        not (Seq.is_empty (expand cfg stats gen depth sp Subst.empty atom []))
      in
      let sub_truncated = stats.truncated in
      stats.truncated <- was_truncated || sub_truncated;
      if proved || not sub_truncated then
        Memo.add m ~token ~gen:dbgen atom proved;
      proved

let solve_seq cfg stats goals =
  let vars = goal_vars goals in
  let gen = ref 0 in
  prove cfg stats gen 0 cfg.parent Subst.empty goals
  |> Seq.map (fun s -> Subst.restrict vars s)

let solve_first cfg goals =
  let stats = fresh_stats () in
  match (solve_seq cfg stats goals) () with
  | Seq.Nil -> (None, stats)
  | Seq.Cons (s, _) -> (Some s, stats)

type enum = {
  answers : Subst.t list;
  complete : bool;
  extra_reductions : int;
  extra_retrievals : int;
}

let solve_first_enum ~limit cfg goals =
  let stats = fresh_stats () in
  let seq = solve_seq cfg stats goals in
  match seq () with
  | Seq.Nil ->
    (* Failure: the whole search ran to exhaustion, so the (empty) answer
       set is complete exactly when no branch was depth-truncated. *)
    ( None,
      stats,
      {
        answers = [];
        complete = not stats.truncated;
        extra_reductions = 0;
        extra_retrievals = 0;
      } )
  | Seq.Cons (first, rest) ->
    (* Snapshot at the first success node: these are the satisficing-search
       stats, byte-identical to what [solve_first] would report. The tail
       enumeration below accounts its work separately. *)
    let snapshot =
      {
        reductions = stats.reductions;
        retrievals = stats.retrievals;
        retrieval_hits = stats.retrieval_hits;
        naf_calls = stats.naf_calls;
        truncated = stats.truncated;
      }
    in
    let seen = Hashtbl.create 16 in
    Hashtbl.add seen (Format.asprintf "%a" Subst.pp first) ();
    let answers = ref [ first ] in
    let count = ref 1 in
    let capped = ref false in
    let rec drain seq =
      if !count >= limit then capped := true
      else
        match seq () with
        | Seq.Nil -> ()
        | Seq.Cons (s, rest) ->
          let key = Format.asprintf "%a" Subst.pp s in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            answers := s :: !answers;
            incr count
          end;
          drain rest
    in
    drain rest;
    ( Some first,
      snapshot,
      {
        answers = List.rev !answers;
        complete = (not !capped) && not stats.truncated;
        extra_reductions = stats.reductions - snapshot.reductions;
        extra_retrievals = stats.retrievals - snapshot.retrievals;
      } )

let solve_all ?limit cfg goals =
  let stats = fresh_stats () in
  let seen = Hashtbl.create 16 in
  let seq =
    solve_seq cfg stats goals
    |> Seq.filter (fun s ->
           let key = Format.asprintf "%a" Subst.pp s in
           if Hashtbl.mem seen key then false
           else begin
             Hashtbl.add seen key ();
             true
           end)
  in
  let seq = match limit with Some n -> Seq.take n seq | None -> seq in
  (List.of_seq seq, stats)

let provable cfg goals =
  match solve_first cfg goals with Some _, _ -> true | None, _ -> false
