(** The extensional database: a mutable store of ground atomic facts.

    Facts are indexed by predicate and, secondarily, by (predicate, first
    constant argument); the second index makes the bound-first-argument
    retrievals that dominate the paper's query forms (e.g.
    [prof(manolis)?]) O(1). *)

type t

val create : unit -> t

(** Shallow-copy the database (indexes are rebuilt; facts are shared). *)
val copy : t -> t

(** [add db fact] inserts a ground atom. Returns [true] if it was new.
    Raises [Invalid_argument] if the atom is not ground. *)
val add : t -> Atom.t -> bool

(** [remove db fact] deletes a fact. Returns [true] if it was present. *)
val remove : t -> Atom.t -> bool

(** Membership of a ground atom. *)
val mem : t -> Atom.t -> bool

(** [matching db pattern] returns all facts unifiable with [pattern]
    (which may contain variables) together with the matching substitution.
    Uses the (pred, first-arg) index when the first argument is bound. *)
val matching : t -> Atom.t -> (Atom.t * Subst.t) list

(** First matching fact, if any (cheaper than [matching] for satisficing
    retrieval). *)
val first_match : t -> Atom.t -> (Atom.t * Subst.t) option

(** Number of facts stored for the given predicate name — the statistic
    [Smi89]'s heuristic consumes (e.g. 2000 [prof] facts vs 500 [grad]). *)
val count_pred : t -> string -> int

(** Like [count_pred] but keyed by an interned [Symbol.id] — no string
    allocation, for hot paths (SLD reduction ordering). *)
val count_pred_id : t -> int -> int

(** Total number of facts. *)
val size : t -> int

(** A token unique to this database instance (fresh on [create]/[copy]).
    Caches record it alongside [generation] so entries computed against a
    different database never validate. *)
val token : t -> int

(** Mutation counter: bumped by every successful [add] or [remove]. Caches
    record the generation an entry was computed at and invalidate lazily
    when it no longer matches. [generation] and [size] are atomic, so
    reading them from another domain while a mutation is in flight is
    well-defined (monotonic, never torn); mutating the database itself
    still requires external synchronization. *)
val generation : t -> int

val of_list : Atom.t list -> t
val to_list : t -> Atom.t list
val iter : (Atom.t -> unit) -> t -> unit
val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Predicates present, with their fact counts. *)
val predicates : t -> (Symbol.t * int) list

val pp : Format.formatter -> t -> unit
