(** The extensional database: a mutable store of ground atomic facts.

    Facts are indexed by predicate and, secondarily, by (predicate, first
    constant argument); the second index makes the bound-first-argument
    retrievals that dominate the paper's query forms (e.g.
    [prof(manolis)?]) O(1). *)

type t

(** A fresh in-memory database. *)
val create : unit -> t

(** Copy the database. For an in-memory database this rebuilds the
    indexes (facts are shared). For a paged database it returns a
    copy-on-write overlay: the on-disk store stays shared and untouched;
    mutations of the copy land in private in-memory deltas, so they
    never perturb the original's contents, generation, or query results.
    The overlay assumes the {e original} is not mutated afterwards. *)
val copy : t -> t

(** [add db fact] inserts a ground atom. Returns [true] if it was new.
    Raises [Invalid_argument] if the atom is not ground. *)
val add : t -> Atom.t -> bool

(** [remove db fact] deletes a fact. Returns [true] if it was present. *)
val remove : t -> Atom.t -> bool

(** Membership of a ground atom. *)
val mem : t -> Atom.t -> bool

(** [matching db pattern] returns all facts unifiable with [pattern]
    (which may contain variables) together with the matching substitution.
    Uses the (pred, first-arg) index when the first argument is bound. *)
val matching : t -> Atom.t -> (Atom.t * Subst.t) list

(** First matching fact, if any (cheaper than [matching] for satisficing
    retrieval). *)
val first_match : t -> Atom.t -> (Atom.t * Subst.t) option

(** Number of facts stored for the given predicate name — the statistic
    [Smi89]'s heuristic consumes (e.g. 2000 [prof] facts vs 500 [grad]). *)
val count_pred : t -> string -> int

(** Like [count_pred] but keyed by an interned [Symbol.id] — no string
    allocation, for hot paths (SLD reduction ordering). *)
val count_pred_id : t -> int -> int

(** Total number of facts. *)
val size : t -> int

(** A token unique to this database instance (fresh on [create]/[copy]).
    Caches record it alongside [generation] so entries computed against a
    different database never validate. *)
val token : t -> int

(** Mutation counter: bumped by every successful [add] or [remove]. Caches
    record the generation an entry was computed at and invalidate lazily
    when it no longer matches. [generation] and [size] are atomic, so
    reading them from another domain while a mutation is in flight is
    well-defined (monotonic, never torn); mutating the database itself
    still requires external synchronization. *)
val generation : t -> int

val of_list : Atom.t list -> t
val to_list : t -> Atom.t list
val iter : (Atom.t -> unit) -> t -> unit
val fold : (Atom.t -> 'a -> 'a) -> t -> 'a -> 'a

(** Predicates present, with their fact counts. *)
val predicates : t -> (Symbol.t * int) list

val pp : Format.formatter -> t -> unit

(** {1 Persistence}

    A database backed by the paged persistent store ({!Store}) instead
    of in-memory sets. The rest of the API is backend-transparent: SLD
    resolution, caching, and the learners operate on either. *)

(** Open (or create) a paged database rooted at [dir]. [page_size]
    (creation only) and [buffer_pages] (buffer-pool frames) tune the
    store; [wal_sync] sets the WAL group-commit policy (default: 20 ms
    interval). The persistent [token] and [generation] survive restarts,
    so cache invalidation stays correct across them. *)
val open_paged :
  dir:string ->
  ?page_size:int ->
  ?buffer_pages:int ->
  ?wal_sync:Store.sync_mode ->
  unit ->
  t

(** Release the paged backend's file handles (no-op for in-memory).
    Unflushed mutations are recovered from the WAL on the next open. *)
val close : t -> unit

(** Compact the paged backend into a fresh checkpoint image and reset
    the WAL (no-op for in-memory). *)
val checkpoint : t -> unit

(** Force a WAL group-commit fsync (no-op for in-memory). *)
val sync : t -> unit

(** Store counters when the database (or, for a copy, its base) is
    paged; [None] for in-memory. *)
val store_stats : t -> Store.stats option

(** ["mem"], ["paged"], or ["overlay"]. *)
val backend_name : t -> string
