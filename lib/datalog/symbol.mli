(** Interned identifiers.

    Predicate names and constants are interned into a global table so that
    equality and comparison are integer operations; fact stores and rule
    indexes rely on this. Interning is append-only and domain-safe: the
    serve daemon's workers parse client-supplied atoms from several
    domains in parallel. Lookups of already-interned names (the hot
    path) are lock-free and allocation-free — they probe an immutable
    snapshot published through an [Atomic]; only inserting a new name
    takes a mutex. *)

type t

(** Intern a string (idempotent). *)
val intern : string -> t

val to_string : t -> string

(** Integer identity, stable within a process run. *)
val id : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Number of distinct symbols interned so far. *)
val count : unit -> int
