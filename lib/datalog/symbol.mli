(** Interned identifiers.

    Predicate names and constants are interned into a global table so that
    equality and comparison are integer operations; fact stores and rule
    indexes rely on this. Interning is append-only and guarded by a
    mutex: the serve daemon's workers parse client-supplied atoms from
    several threads at once. *)

type t

(** Intern a string (idempotent). *)
val intern : string -> t

val to_string : t -> string

(** Integer identity, stable within a process run. *)
val id : t -> int

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int
val pp : Format.formatter -> t -> unit

(** Number of distinct symbols interned so far. *)
val count : unit -> int
