module Atom_set = Set.Make (Atom)

(* Key for the (predicate, first constant argument) index. *)
module First_arg = struct
  type t = int * int (* symbol ids *)

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end

module First_tbl = Hashtbl.Make (First_arg)

(* ---------- the in-memory backend ---------- *)

type mem = {
  by_pred : (int, Atom_set.t ref) Hashtbl.t;
  by_first : Atom_set.t ref First_tbl.t;
  (* [size] and [generation] are read by cache-invalidation checks on
     serve-path worker domains while a mutator may be mid-[add]; atomics
     make those racing reads well-defined (monotonic, never torn). The
     index tables themselves still require external synchronization for
     concurrent mutation. *)
  size : int Atomic.t;
  token : int;
  generation : int Atomic.t;
}

(* Unique per instance, so caches can tell two databases apart even when
   their generation counters coincide. Always nonnegative — a paged
   store's persistent token is negative, so the two can never collide. *)
let next_token = Atomic.make 0

let m_create () =
  {
    by_pred = Hashtbl.create 64;
    by_first = First_tbl.create 256;
    size = Atomic.make 0;
    token = Atomic.fetch_and_add next_token 1;
    generation = Atomic.make 0;
  }

let first_key fact =
  match fact.Atom.args with
  | Term.Const c :: _ -> Some (Symbol.id fact.Atom.pred, Symbol.id c)
  | _ -> None

let find_pred m pred_id =
  match Hashtbl.find_opt m.by_pred pred_id with
  | Some r -> r
  | None ->
    let r = ref Atom_set.empty in
    Hashtbl.add m.by_pred pred_id r;
    r

let find_first m key =
  match First_tbl.find_opt m.by_first key with
  | Some r -> r
  | None ->
    let r = ref Atom_set.empty in
    First_tbl.add m.by_first key r;
    r

let m_add m fact =
  if not (Atom.is_ground fact) then invalid_arg "Database.add: non-ground fact";
  let set = find_pred m (Symbol.id fact.Atom.pred) in
  if Atom_set.mem fact !set then false
  else begin
    set := Atom_set.add fact !set;
    (match first_key fact with
    | Some key ->
      let s = find_first m key in
      s := Atom_set.add fact !s
    | None -> ());
    Atomic.incr m.size;
    Atomic.incr m.generation;
    true
  end

let m_remove m fact =
  match Hashtbl.find_opt m.by_pred (Symbol.id fact.Atom.pred) with
  | None -> false
  | Some set ->
    if not (Atom_set.mem fact !set) then false
    else begin
      set := Atom_set.remove fact !set;
      (match first_key fact with
      | Some key -> (
        match First_tbl.find_opt m.by_first key with
        | Some s -> s := Atom_set.remove fact !s
        | None -> ())
      | None -> ());
      Atomic.decr m.size;
      Atomic.incr m.generation;
      true
    end

let m_mem m fact =
  match Hashtbl.find_opt m.by_pred (Symbol.id fact.Atom.pred) with
  | None -> false
  | Some set -> Atom_set.mem fact !set

let m_candidates m pattern =
  match pattern.Atom.args with
  | Term.Const c :: _ -> (
    match
      First_tbl.find_opt m.by_first (Symbol.id pattern.Atom.pred, Symbol.id c)
    with
    | Some s -> !s
    | None -> Atom_set.empty)
  | _ -> (
    match Hashtbl.find_opt m.by_pred (Symbol.id pattern.Atom.pred) with
    | Some s -> !s
    | None -> Atom_set.empty)

let m_count_pred_id m pred_id =
  match Hashtbl.find_opt m.by_pred pred_id with
  | Some s -> Atom_set.cardinal !s
  | None -> 0

(* ---------- the paged backend ---------- *)

(* A paged database is a [Store.t] plus the two-way mapping between
   process-run [Symbol] ids and the store's persistent sids. The mapping
   is complete at all times: every sid in the store is entered at open
   (or at intern time for new symbols), so a missing entry means "this
   symbol is not in the store" — read paths never touch strings. *)
type paged = {
  store : Store.t;
  mutable sym_to_sid : int array; (* Symbol.id -> sid, -1 unmapped *)
  mutable sid_syms : Symbol.t array; (* sid -> symbol *)
  mutable sid_terms : Term.t array; (* sid -> shared Const (hot path) *)
  mutable sid_n : int;
}

let dummy_sym = Symbol.intern ""
let dummy_term = Term.Const dummy_sym

let record_mapping p sym sid =
  let id = Symbol.id sym in
  if id >= Array.length p.sym_to_sid then begin
    let cap = Int.max (2 * Array.length p.sym_to_sid) (id + 64) in
    let a = Array.make cap (-1) in
    Array.blit p.sym_to_sid 0 a 0 (Array.length p.sym_to_sid);
    p.sym_to_sid <- a
  end;
  p.sym_to_sid.(id) <- sid;
  if sid >= Array.length p.sid_syms then begin
    let cap = Int.max (2 * Array.length p.sid_syms) (sid + 64) in
    let a = Array.make cap dummy_sym in
    Array.blit p.sid_syms 0 a 0 (Array.length p.sid_syms);
    p.sid_syms <- a
  end;
  p.sid_syms.(sid) <- sym;
  if sid >= Array.length p.sid_terms then begin
    let cap = Int.max (2 * Array.length p.sid_terms) (sid + 64) in
    let a = Array.make cap dummy_term in
    Array.blit p.sid_terms 0 a 0 (Array.length p.sid_terms);
    p.sid_terms <- a
  end;
  p.sid_terms.(sid) <- Term.Const sym;
  if sid >= p.sid_n then p.sid_n <- sid + 1

let sid_intern p sym =
  let id = Symbol.id sym in
  if id < Array.length p.sym_to_sid && p.sym_to_sid.(id) >= 0 then
    p.sym_to_sid.(id)
  else begin
    let sid = Store.sid_intern p.store (Symbol.to_string sym) in
    record_mapping p sym sid;
    sid
  end

let sid_ro p sym =
  let id = Symbol.id sym in
  if id < Array.length p.sym_to_sid then p.sym_to_sid.(id) else -1

let sym_of_sid p sid = p.sid_syms.(sid)

(* Materialize a stored record as an atom. The per-sid [Const] terms
   are shared (terms are immutable), so this allocates only the arg
   list spine and the atom itself — it runs once per candidate on the
   retrieval hot path. *)
let atom_of p pred_sid args =
  let rec build i acc =
    if i < 0 then acc else build (i - 1) (p.sid_terms.(args.(i)) :: acc)
  in
  Atom.make_sym (sym_of_sid p pred_sid) (build (Array.length args - 1) [])

let fact_sids_intern p fact =
  let pred = sid_intern p fact.Atom.pred in
  let args =
    List.map
      (function
        | Term.Const c -> sid_intern p c
        | Term.Var _ -> invalid_arg "Database: non-ground fact")
      fact.Atom.args
  in
  (pred, Array.of_list args)

(* [None] when some symbol is not in the store — the fact cannot be
   present. Also [None] for non-ground atoms. *)
let fact_sids_ro p fact =
  match sid_ro p fact.Atom.pred with
  | -1 -> None
  | pred ->
    let rec go acc = function
      | [] -> Some (pred, Array.of_list (List.rev acc))
      | Term.Const c :: rest -> (
        match sid_ro p c with -1 -> None | s -> go (s :: acc) rest)
      | Term.Var _ :: _ -> None
    in
    go [] fact.Atom.args

let p_add p fact =
  if not (Atom.is_ground fact) then invalid_arg "Database.add: non-ground fact";
  let pred, args = fact_sids_intern p fact in
  Store.insert p.store ~pred args

let p_remove p fact =
  match fact_sids_ro p fact with
  | None -> false
  | Some (pred, args) -> Store.delete p.store ~pred args

let p_mem p fact =
  match fact_sids_ro p fact with
  | None -> false
  | Some (pred, args) -> Store.mem p.store ~pred args

(* Candidate retrieval mirrors the in-memory indexes: bound first
   argument goes through the store's (pred, first) hash access method;
   otherwise a page-sequential predicate scan. *)
let p_iter_candidates p pattern k =
  match sid_ro p pattern.Atom.pred with
  | -1 -> ()
  | pred -> (
    match pattern.Atom.args with
    | Term.Const c :: _ -> (
      match sid_ro p c with
      | -1 -> ()
      | first ->
        Store.iter_bucket p.store ~pred ~first (fun args ->
            k (atom_of p pred args)))
    | [] ->
      Store.iter_bucket p.store ~pred ~first:(-1) (fun args ->
          k (atom_of p pred args))
    | _ -> Store.iter_pred p.store ~pred (fun args -> k (atom_of p pred args)))

(* ---------- the database: a backend seam ---------- *)

(* [Overlay] is the copy-on-write view a [copy] of a paged database
   returns: the base store is shared untouched (clean pages stay
   shared); mutations land in private in-memory deltas. Reads see
   (base \ removed) ∪ added. The overlay assumes its base is not
   mutated behind it — the repo's [copy] call sites (seminaive, magic)
   mutate only the copy. *)
type t =
  | Mem of mem
  | Paged of paged
  | Overlay of overlay

and overlay = {
  base : t;
  added : mem;
  removed : mem;
  o_token : int;
  o_generation : int Atomic.t;
}

let create () = Mem (m_create ())

let rec size = function
  | Mem m -> Atomic.get m.size
  | Paged p -> Store.fact_count p.store
  | Overlay o ->
    size o.base - Atomic.get o.removed.size + Atomic.get o.added.size

let token = function
  | Mem m -> m.token
  | Paged p -> Store.token p.store
  | Overlay o -> o.o_token

(* An overlay's generation includes its base's, so a (token, generation)
   cache key stays invalidation-correct even if the base mutates. *)
let rec generation = function
  | Mem m -> Atomic.get m.generation
  | Paged p -> Store.generation p.store
  | Overlay o -> generation o.base + Atomic.get o.o_generation

let rec mem db fact =
  match db with
  | Mem m -> m_mem m fact
  | Paged p -> p_mem p fact
  | Overlay o ->
    m_mem o.added fact || (mem o.base fact && not (m_mem o.removed fact))

let add db fact =
  match db with
  | Mem m -> m_add m fact
  | Paged p -> p_add p fact
  | Overlay o ->
    if not (Atom.is_ground fact) then
      invalid_arg "Database.add: non-ground fact";
    if mem db fact then false
    else begin
      (if m_mem o.removed fact then ignore (m_remove o.removed fact)
       else ignore (m_add o.added fact));
      Atomic.incr o.o_generation;
      true
    end

let remove db fact =
  match db with
  | Mem m -> m_remove m fact
  | Paged p -> p_remove p fact
  | Overlay o ->
    if m_mem o.added fact then begin
      ignore (m_remove o.added fact);
      Atomic.incr o.o_generation;
      true
    end
    else if mem o.base fact && not (m_mem o.removed fact) then begin
      ignore (m_add o.removed fact);
      Atomic.incr o.o_generation;
      true
    end
    else false

let rec iter_candidates db pattern k =
  match db with
  | Mem m -> Atom_set.iter k (m_candidates m pattern)
  | Paged p -> p_iter_candidates p pattern k
  | Overlay o ->
    iter_candidates o.base pattern (fun fact ->
        if not (m_mem o.removed fact) then k fact);
    Atom_set.iter k (m_candidates o.added pattern)

let matching db pattern =
  let acc = ref [] in
  iter_candidates db pattern (fun fact ->
      match Subst.match_atom ~pattern ~ground:fact Subst.empty with
      | Some s -> acc := (fact, s) :: !acc
      | None -> ());
  !acc

exception Found of Atom.t * Subst.t

let first_match db pattern =
  try
    iter_candidates db pattern (fun fact ->
        match Subst.match_atom ~pattern ~ground:fact Subst.empty with
        | Some s -> raise (Found (fact, s))
        | None -> ());
    None
  with Found (fact, s) -> Some (fact, s)

let rec count_pred_id db pred_id =
  match db with
  | Mem m -> m_count_pred_id m pred_id
  | Paged p ->
    if pred_id < Array.length p.sym_to_sid && p.sym_to_sid.(pred_id) >= 0 then
      Store.count_pred p.store ~pred:p.sym_to_sid.(pred_id)
    else 0
  | Overlay o ->
    count_pred_id o.base pred_id
    - m_count_pred_id o.removed pred_id
    + m_count_pred_id o.added pred_id

let count_pred db name = count_pred_id db (Symbol.id (Symbol.intern name))

let rec iter f db =
  match db with
  | Mem m -> Hashtbl.iter (fun _ set -> Atom_set.iter f !set) m.by_pred
  | Paged p ->
    Store.iter_all p.store (fun ~pred args -> f (atom_of p pred args))
  | Overlay o ->
    iter (fun fact -> if not (m_mem o.removed fact) then f fact) o.base;
    Hashtbl.iter (fun _ set -> Atom_set.iter f !set) o.added.by_pred

let fold f db init =
  let acc = ref init in
  iter (fun fact -> acc := f fact !acc) db;
  !acc

let to_list db = fold (fun fact acc -> fact :: acc) db []

let of_list facts =
  let db = create () in
  List.iter (fun fact -> ignore (add db fact)) facts;
  db

let copy db =
  match db with
  | Mem _ | Overlay _ -> of_list (to_list db)
  | Paged _ ->
    Overlay
      {
        base = db;
        added = m_create ();
        removed = m_create ();
        o_token = Atomic.fetch_and_add next_token 1;
        o_generation = Atomic.make 0;
      }

let predicates db =
  match db with
  | Mem m ->
    Hashtbl.fold
      (fun _ set acc ->
        match Atom_set.choose_opt !set with
        | None -> acc
        | Some fact -> (fact.Atom.pred, Atom_set.cardinal !set) :: acc)
      m.by_pred []
    |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)
  | Paged p ->
    Store.pred_counts p.store
    |> List.map (fun (sid, n) -> (sym_of_sid p sid, n))
    |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)
  | Overlay _ ->
    let tbl = Hashtbl.create 32 in
    iter
      (fun fact ->
        let id = Symbol.id fact.Atom.pred in
        match Hashtbl.find_opt tbl id with
        | Some (_, n) -> Hashtbl.replace tbl id (fact.Atom.pred, n + 1)
        | None -> Hashtbl.add tbl id (fact.Atom.pred, 1))
      db;
    Hashtbl.fold (fun _ pair acc -> pair :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)

let pp ppf db =
  let facts = List.sort Atom.compare (to_list db) in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (fun ppf a -> Format.fprintf ppf "%a." Atom.pp a)
    ppf facts

(* ---------- paged backend management ---------- *)

let open_paged ~dir ?page_size ?buffer_pages ?wal_sync () =
  let store =
    Store.open_ ~dir ?page_size ?pool_pages:buffer_pages ?sync:wal_sync ()
  in
  let p =
    { store; sym_to_sid = [||]; sid_syms = [||]; sid_terms = [||]; sid_n = 0 }
  in
  let n = Store.n_syms store in
  for sid = 0 to n - 1 do
    record_mapping p (Symbol.intern (Store.sid_name store sid)) sid
  done;
  Paged p

let rec store_stats = function
  | Mem _ -> None
  | Paged p -> Some (Store.stats p.store)
  | Overlay o -> store_stats o.base

let rec close = function
  | Mem _ -> ()
  | Paged p -> Store.close p.store
  | Overlay o -> close o.base

let rec checkpoint = function
  | Mem _ -> ()
  | Paged p -> Store.checkpoint p.store
  | Overlay o -> checkpoint o.base

let rec sync = function
  | Mem _ -> ()
  | Paged p -> Store.sync p.store
  | Overlay o -> sync o.base

let backend_name = function
  | Mem _ -> "mem"
  | Paged _ -> "paged"
  | Overlay _ -> "overlay"
