module Atom_set = Set.Make (Atom)

(* Key for the (predicate, first constant argument) index. *)
module First_arg = struct
  type t = int * int (* symbol ids *)

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2
  let hash = Hashtbl.hash
end

module First_tbl = Hashtbl.Make (First_arg)

type t = {
  by_pred : (int, Atom_set.t ref) Hashtbl.t;
  by_first : Atom_set.t ref First_tbl.t;
  (* [size] and [generation] are read by cache-invalidation checks on
     serve-path worker domains while a mutator may be mid-[add]; atomics
     make those racing reads well-defined (monotonic, never torn). The
     index tables themselves still require external synchronization for
     concurrent mutation. *)
  size : int Atomic.t;
  token : int;
  generation : int Atomic.t;
}

(* Unique per instance, so caches can tell two databases apart even when
   their generation counters coincide. *)
let next_token = Atomic.make 0

let create () =
  {
    by_pred = Hashtbl.create 64;
    by_first = First_tbl.create 256;
    size = Atomic.make 0;
    token = Atomic.fetch_and_add next_token 1;
    generation = Atomic.make 0;
  }

let first_key fact =
  match fact.Atom.args with
  | Term.Const c :: _ -> Some (Symbol.id fact.Atom.pred, Symbol.id c)
  | _ -> None

let find_pred db pred_id =
  match Hashtbl.find_opt db.by_pred pred_id with
  | Some r -> r
  | None ->
    let r = ref Atom_set.empty in
    Hashtbl.add db.by_pred pred_id r;
    r

let find_first db key =
  match First_tbl.find_opt db.by_first key with
  | Some r -> r
  | None ->
    let r = ref Atom_set.empty in
    First_tbl.add db.by_first key r;
    r

let add db fact =
  if not (Atom.is_ground fact) then invalid_arg "Database.add: non-ground fact";
  let set = find_pred db (Symbol.id fact.Atom.pred) in
  if Atom_set.mem fact !set then false
  else begin
    set := Atom_set.add fact !set;
    (match first_key fact with
    | Some key ->
      let s = find_first db key in
      s := Atom_set.add fact !s
    | None -> ());
    Atomic.incr db.size;
    Atomic.incr db.generation;
    true
  end

let remove db fact =
  match Hashtbl.find_opt db.by_pred (Symbol.id fact.Atom.pred) with
  | None -> false
  | Some set ->
    if not (Atom_set.mem fact !set) then false
    else begin
      set := Atom_set.remove fact !set;
      (match first_key fact with
      | Some key -> (
        match First_tbl.find_opt db.by_first key with
        | Some s -> s := Atom_set.remove fact !s
        | None -> ())
      | None -> ());
      Atomic.decr db.size;
      Atomic.incr db.generation;
      true
    end

let mem db fact =
  match Hashtbl.find_opt db.by_pred (Symbol.id fact.Atom.pred) with
  | None -> false
  | Some set -> Atom_set.mem fact !set

let candidates db pattern =
  match pattern.Atom.args with
  | Term.Const c :: _ -> (
    match
      First_tbl.find_opt db.by_first
        (Symbol.id pattern.Atom.pred, Symbol.id c)
    with
    | Some s -> !s
    | None -> Atom_set.empty)
  | _ -> (
    match Hashtbl.find_opt db.by_pred (Symbol.id pattern.Atom.pred) with
    | Some s -> !s
    | None -> Atom_set.empty)

let matching db pattern =
  Atom_set.fold
    (fun fact acc ->
      match Subst.match_atom ~pattern ~ground:fact Subst.empty with
      | Some s -> (fact, s) :: acc
      | None -> acc)
    (candidates db pattern) []

exception Found of Atom.t * Subst.t

let first_match db pattern =
  try
    Atom_set.iter
      (fun fact ->
        match Subst.match_atom ~pattern ~ground:fact Subst.empty with
        | Some s -> raise (Found (fact, s))
        | None -> ())
      (candidates db pattern);
    None
  with Found (fact, s) -> Some (fact, s)

let count_pred_id db pred_id =
  match Hashtbl.find_opt db.by_pred pred_id with
  | Some s -> Atom_set.cardinal !s
  | None -> 0

let count_pred db name = count_pred_id db (Symbol.id (Symbol.intern name))
let size db = Atomic.get db.size
let token db = db.token
let generation db = Atomic.get db.generation

let iter f db = Hashtbl.iter (fun _ set -> Atom_set.iter f !set) db.by_pred

let fold f db init =
  Hashtbl.fold (fun _ set acc -> Atom_set.fold f !set acc) db.by_pred init

let to_list db = fold (fun fact acc -> fact :: acc) db []

let of_list facts =
  let db = create () in
  List.iter (fun fact -> ignore (add db fact)) facts;
  db

let copy db = of_list (to_list db)

let predicates db =
  Hashtbl.fold
    (fun _ set acc ->
      match Atom_set.choose_opt !set with
      | None -> acc
      | Some fact -> (fact.Atom.pred, Atom_set.cardinal !set) :: acc)
    db.by_pred []
  |> List.sort (fun (a, _) (b, _) -> Symbol.compare a b)

let pp ppf db =
  let facts = List.sort Atom.compare (to_list db) in
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_cut ppf ())
    (fun ppf a -> Format.fprintf ppf "%a." Atom.pp a)
    ppf facts
