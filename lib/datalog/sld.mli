(** Top-down SLD(NF) resolution — the paper's query processor substrate.

    The engine performs satisficing search (Simon & Kadane's term, used
    throughout the paper): [solve_first] stops at the first success node.
    The order in which rules are considered — the heart of a strategy — is a
    parameter ([rule_order]), so learned strategies plug in directly.

    Negative literals are evaluated by negation as failure and are delayed
    until ground; a derivation in which only non-ground negative literals
    remain flounders and raises [Floundering].

    Recursion is guarded by [depth_limit]; branches cut by the limit mark
    [stats.truncated], so a failed proof with [truncated = true] is "unknown"
    rather than "no". *)

type stats = {
  mutable reductions : int;        (** rule-arc traversals *)
  mutable retrievals : int;        (** database retrieval attempts *)
  mutable retrieval_hits : int;    (** successful retrievals *)
  mutable naf_calls : int;         (** negation-as-failure subproofs *)
  mutable truncated : bool;        (** some branch hit the depth limit *)
}

val fresh_stats : unit -> stats

(** Subgoal memoization ("tabling-lite"): a thread-safe, sharded table of
    completed ground-subgoal verdicts. A ground subgoal adds no bindings, so
    its whole subtree collapses to one boolean; memoizing it makes shared
    subtrees within a derivation — and, when the same table is passed to
    successive configs, across queries — cost one lookup after the first
    proof.

    Entries record the {!Database.token}/{!Database.generation} pair they
    were computed at and are invalidated lazily on lookup, so database
    mutation never serves stale verdicts. A failed subgoal whose search was
    cut by [depth_limit] is "unknown" and is never recorded. *)
module Memo : sig
  type t

  type counters = {
    hits : int;
    misses : int;
    invalidations : int;  (** entries dropped for a stale token/generation *)
    entries : int;
  }

  (** [create ?shards ?max_entries ()] — [max_entries] (default 65536) is a
      soft cap: an overflowing shard is reset wholesale rather than tracked
      LRU, since verdicts are cheap to recompute. *)
  val create : ?shards:int -> ?max_entries:int -> unit -> t

  (** [add t ~token ~gen atom proved] records a verdict directly. Besides
      the engine itself, the cache layer uses this to seed ground-instance
      verdicts derived from a more general cached answer set (subsumption),
      so later SLD runs on specialized queries start warm. Only sound
      verdicts may be seeded: [proved = false] requires a complete
      (non-truncated) failure. *)
  val add : t -> token:int -> gen:int -> Atom.t -> bool -> unit

  (** [find t ~token ~gen atom] — the memoized verdict, if current.
      Counts a hit or miss like an engine lookup. *)
  val find : t -> token:int -> gen:int -> Atom.t -> bool option

  val clear : t -> unit
  val counters : t -> counters
end

type config = {
  rulebase : Rulebase.t;
  db : Database.t;
  rule_order : Atom.t -> Clause.t list -> Clause.t list;
      (** Reorders the candidate rules for a goal; [Fun.flip Fun.const]-like
          identity by default. This is the strategy hook. *)
  depth_limit : int;  (** maximum resolution depth (default 512) *)
  tracer : Trace.t;
      (** Span sink for resolution steps ([Trace.null] by default — free).
          Each rule application opens a [reduction] span (paper cost 1) that
          nests the sub-derivation; each database probe emits a [retrieval]
          event (paper cost 1, attrs [pattern]/[hit]); each
          negation-as-failure sub-proof nests under a cost-0 [naf] span. *)
  parent : Trace.span;  (** span the derivation reports under *)
  memo : Memo.t option;
      (** When set, ground positive subgoals (including NAF tests, which are
          ground by selection) are proved through the memo table. Off by
          default: memoization changes [stats] (that is the point) though
          never the answers. Memo hits emit a [memo_hit] trace event. *)
}

val config :
  ?rule_order:(Atom.t -> Clause.t list -> Clause.t list) ->
  ?depth_limit:int ->
  ?tracer:Trace.t ->
  ?parent:Trace.span ->
  ?memo:Memo.t ->
  rulebase:Rulebase.t ->
  db:Database.t ->
  unit ->
  config

exception Floundering of Atom.t

(** Lazy stream of answer substitutions (restricted to the goal's
    variables). [stats] is filled in as the stream is forced. *)
val solve_seq : config -> stats -> Clause.lit list -> Subst.t Seq.t

(** First answer, if any — satisficing search. *)
val solve_first : config -> Clause.lit list -> (Subst.t option * stats)

(** The continuation of a satisficing search: the distinct answers found by
    enumerating past the first success node, for cache fills that want the
    whole answer set. [complete] is true only when the search space was
    exhausted without hitting the answer cap or the depth limit — an
    incomplete set can prove membership but never absence. *)
type enum = {
  answers : Subst.t list;  (** distinct answers in discovery order (the
                               first answer is the head) *)
  complete : bool;
  extra_reductions : int;  (** work past the first answer *)
  extra_retrievals : int;
}

(** [solve_first_enum ~limit cfg goals] = [solve_first] plus up to [limit]
    distinct answers pulled lazily from the same derivation. The returned
    [stats] are snapshotted at the first success node, so they are
    byte-identical to a plain [solve_first] run; the enumeration tail's
    work is reported in [enum.extra_*] only. *)
val solve_first_enum :
  limit:int -> config -> Clause.lit list -> Subst.t option * stats * enum

(** Up to [limit] answers (all, if omitted), de-duplicated. *)
val solve_all : ?limit:int -> config -> Clause.lit list -> Subst.t list * stats

(** [provable cfg goal] — is the ground/existential goal derivable? *)
val provable : config -> Clause.lit list -> bool
