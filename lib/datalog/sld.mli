(** Top-down SLD(NF) resolution — the paper's query processor substrate.

    The engine performs satisficing search (Simon & Kadane's term, used
    throughout the paper): [solve_first] stops at the first success node.
    The order in which rules are considered — the heart of a strategy — is a
    parameter ([rule_order]), so learned strategies plug in directly.

    Negative literals are evaluated by negation as failure and are delayed
    until ground; a derivation in which only non-ground negative literals
    remain flounders and raises [Floundering].

    Recursion is guarded by [depth_limit]; branches cut by the limit mark
    [stats.truncated], so a failed proof with [truncated = true] is "unknown"
    rather than "no". *)

type stats = {
  mutable reductions : int;        (** rule-arc traversals *)
  mutable retrievals : int;        (** database retrieval attempts *)
  mutable retrieval_hits : int;    (** successful retrievals *)
  mutable naf_calls : int;         (** negation-as-failure subproofs *)
  mutable truncated : bool;        (** some branch hit the depth limit *)
}

val fresh_stats : unit -> stats

type config = {
  rulebase : Rulebase.t;
  db : Database.t;
  rule_order : Atom.t -> Clause.t list -> Clause.t list;
      (** Reorders the candidate rules for a goal; [Fun.flip Fun.const]-like
          identity by default. This is the strategy hook. *)
  depth_limit : int;  (** maximum resolution depth (default 512) *)
  tracer : Trace.t;
      (** Span sink for resolution steps ([Trace.null] by default — free).
          Each rule application opens a [reduction] span (paper cost 1) that
          nests the sub-derivation; each database probe emits a [retrieval]
          event (paper cost 1, attrs [pattern]/[hit]); each
          negation-as-failure sub-proof nests under a cost-0 [naf] span. *)
  parent : Trace.span;  (** span the derivation reports under *)
}

val config :
  ?rule_order:(Atom.t -> Clause.t list -> Clause.t list) ->
  ?depth_limit:int ->
  ?tracer:Trace.t ->
  ?parent:Trace.span ->
  rulebase:Rulebase.t ->
  db:Database.t ->
  unit ->
  config

exception Floundering of Atom.t

(** Lazy stream of answer substitutions (restricted to the goal's
    variables). [stats] is filled in as the stream is forced. *)
val solve_seq : config -> stats -> Clause.lit list -> Subst.t Seq.t

(** First answer, if any — satisficing search. *)
val solve_first : config -> Clause.lit list -> (Subst.t option * stats)

(** Up to [limit] answers (all, if omitted), de-duplicated. *)
val solve_all : ?limit:int -> config -> Clause.lit list -> Subst.t list * stats

(** [provable cfg goal] — is the ground/existential goal derivable? *)
val provable : config -> Clause.lit list -> bool
