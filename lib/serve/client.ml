type proto = [ `Auto | `Lines | `V4 ]

type t = {
  fd : Unix.file_descr;
  ic : in_channel;
  oc : out_channel;
  mutable proto : [ `Lines | `V4 ];
  mutable seq : int;  (* next v4 request id *)
  (* v4 responses read while waiting for a specific id *)
  stash : (int, Frame.t) Hashtbl.t;
}

let banner_v4_prefix = Printf.sprintf "HELLO strategem/%d" Frame.version

let connect ?(proto = `Auto) ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (match
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with
  | () -> ()
  | exception e ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise e);
  (try Unix.setsockopt fd Unix.TCP_NODELAY true
   with Unix.Unix_error _ -> ());
  let t =
    {
      fd;
      ic = Unix.in_channel_of_descr fd;
      oc = Unix.out_channel_of_descr fd;
      proto = `Lines;
      seq = 1;
      stash = Hashtbl.create 8;
    }
  in
  (match proto with
  | `Lines -> ()
  | `V4 -> t.proto <- `V4
  | `Auto -> (
    (* The upgrade line: a v4-capable server replies with its framed
       banner and switches the connection to frames; an older server
       rejects the argument with ERR and stays on lines. Either way
       exactly one reply line is consumed here. *)
    output_string t.oc "HELLO V4\n";
    flush t.oc;
    match input_line t.ic with
    | line when String.starts_with ~prefix:banner_v4_prefix line ->
      t.proto <- `V4
    | _ -> ()
    | exception End_of_file ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      failwith "Client.connect: server closed during HELLO V4 handshake"));
  t

let protocol t = t.proto

let lines_of_frame (f : Frame.t) =
  match f.Frame.kind with
  | Frame.Ok -> String.split_on_char '\n' f.Frame.payload
  | Frame.Err -> [ "ERR " ^ f.Frame.payload ]
  | Frame.Busy -> [ Protocol.busy ]
  | Frame.Bye -> [ Protocol.bye ]
  | k -> [ "ERR internal unexpected frame kind " ^ Frame.kind_name k ]

let frame_of_request ~id req =
  let f kind payload = Some { Frame.id; kind; payload } in
  match req with
  | Protocol.Hello | Protocol.Hello_v4 -> f Frame.Hello ""
  | Protocol.Query a -> f Frame.Query a
  | Protocol.Trace a -> f Frame.Trace a
  | Protocol.Strategy a -> f Frame.Strategy a
  | Protocol.Stats -> f Frame.Stats ""
  | Protocol.Stats_json -> f Frame.Stats_json ""
  | Protocol.Snapshot -> f Frame.Snapshot ""
  | Protocol.Ping -> f Frame.Ping ""
  | Protocol.Help -> f Frame.Help ""
  | Protocol.Flight -> f Frame.Flight ""
  | Protocol.Quit -> f Frame.Quit ""
  | Protocol.Shutdown -> f Frame.Shutdown ""
  | Protocol.Empty | Protocol.Malformed _ | Protocol.Unknown _ -> None

(* The verbs whose line-dialect reply is lines-until-END. *)
let multi_line = function
  | Protocol.Stats | Protocol.Help -> true
  | _ -> false

let read_until_end ic =
  let rec go acc =
    let line = input_line ic in
    if line = Protocol.terminator then List.rev acc else go (line :: acc)
  in
  go []

let post t line =
  if t.proto <> `V4 then
    invalid_arg "Client.post: pipelining needs a v4 connection";
  let req = Protocol.parse line in
  match frame_of_request ~id:t.seq req with
  | None -> invalid_arg ("Client.post: cannot frame request: " ^ line)
  | Some f ->
    t.seq <- t.seq + 1;
    output_string t.oc (Frame.encode_string f);
    flush t.oc;
    f.Frame.id

let recv t =
  if t.proto <> `V4 then
    invalid_arg "Client.recv: pipelining needs a v4 connection";
  match Hashtbl.length t.stash with
  | 0 ->
    let f = Frame.read t.ic in
    (f.Frame.id, lines_of_frame f)
  | _ ->
    let found = ref None in
    (try
       Hashtbl.iter
         (fun id f ->
           found := Some (id, f);
           raise Exit)
         t.stash
     with Exit -> ());
    let id, f = Option.get !found in
    Hashtbl.remove t.stash id;
    (id, lines_of_frame f)

let recv_id t wanted =
  match Hashtbl.find_opt t.stash wanted with
  | Some f ->
    Hashtbl.remove t.stash wanted;
    lines_of_frame f
  | None ->
    let rec go () =
      let f = Frame.read t.ic in
      if f.Frame.id = wanted then lines_of_frame f
      else begin
        Hashtbl.replace t.stash f.Frame.id f;
        go ()
      end
    in
    go ()

let command t line =
  let req = Protocol.parse line in
  match t.proto with
  | `V4 -> (
    match req with
    | Protocol.Empty -> []
    (* requests the framed dialect cannot carry get the error reply the
       server's line dialect would give, without touching the wire *)
    | Protocol.Malformed msg -> [ Protocol.err ~code:`Malformed msg ]
    | Protocol.Unknown verb -> [ Protocol.err ~code:`Unknown_verb verb ]
    | _ ->
      let id = post t line in
      recv_id t id)
  | `Lines -> (
    match req with
    | Protocol.Empty -> []
    | _ ->
      output_string t.oc line;
      output_char t.oc '\n';
      flush t.oc;
      if multi_line req then read_until_end t.ic
      else [ input_line t.ic ])

let request t line = match command t line with [] -> "" | l :: _ -> l

let send_line t line =
  if t.proto <> `Lines then
    invalid_arg "Client.send_line: raw passthrough is line-dialect only";
  output_string t.oc line;
  output_char t.oc '\n'

let half_close t =
  flush t.oc;
  try Unix.shutdown t.fd Unix.SHUTDOWN_SEND with Unix.Unix_error _ -> ()

let drain t f =
  try
    while true do
      f (input_line t.ic)
    done
  with End_of_file -> ()

let close t = close_in_noerr t.ic
