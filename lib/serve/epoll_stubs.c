/* Minimal epoll bindings for the serve reactor (lib/serve/eventloop.ml).
 *
 * Level-triggered only: the OCaml side re-arms nothing and simply reacts
 * to whatever is still readable/writable, which keeps the state machine
 * in conn.ml trivial. On non-Linux hosts `strategem_epoll_available`
 * returns false and the loop falls back to Unix.select.
 *
 * File descriptors cross the boundary as ints: on Unix, OCaml's
 * Unix.file_descr is the raw fd int, so Int_val/Val_int are exact.
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>
#include <caml/fail.h>
#include <caml/threads.h>

#ifdef __linux__

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>
#include <errno.h>
#include <string.h>
#include <stdio.h>

#define STRATEGEM_EPOLL_MAX_EVENTS 512

static void strategem_epoll_error(const char *what)
{
  char msg[256];
  snprintf(msg, sizeof(msg), "%s: %s", what, strerror(errno));
  caml_failwith(msg);
}

CAMLprim value strategem_epoll_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value strategem_epoll_create(value unit)
{
  (void)unit;
  int fd = epoll_create1(EPOLL_CLOEXEC);
  if (fd == -1) strategem_epoll_error("epoll_create1");
  return Val_int(fd);
}

/* op: 0 = add, 1 = modify, 2 = delete.
 * flags: bit 0 = want readable, bit 1 = want writable. */
CAMLprim value strategem_epoll_ctl(value epfd, value op, value fd,
                                   value flags)
{
  struct epoll_event ev;
  int f = Int_val(flags);
  int cop;
  memset(&ev, 0, sizeof(ev));
  ev.events = 0;
  if (f & 1) ev.events |= EPOLLIN | EPOLLRDHUP;
  if (f & 2) ev.events |= EPOLLOUT;
  ev.data.fd = Int_val(fd);
  switch (Int_val(op)) {
    case 0: cop = EPOLL_CTL_ADD; break;
    case 1: cop = EPOLL_CTL_MOD; break;
    default: cop = EPOLL_CTL_DEL; break;
  }
  if (epoll_ctl(Int_val(epfd), cop, Int_val(fd), &ev) == -1)
    strategem_epoll_error("epoll_ctl");
  return Val_unit;
}

/* Fills out_fds/out_evs (bit 0 readable, bit 1 writable) and returns the
 * event count. Releases the OCaml runtime while blocked so worker
 * domains keep running. */
CAMLprim value strategem_epoll_wait(value epfd, value timeout_ms,
                                    value out_fds, value out_evs)
{
  CAMLparam4(epfd, timeout_ms, out_fds, out_evs);
  struct epoll_event evs[STRATEGEM_EPOLL_MAX_EVENTS];
  int max = Wosize_val(out_fds);
  int i, n;
  if (max > STRATEGEM_EPOLL_MAX_EVENTS) max = STRATEGEM_EPOLL_MAX_EVENTS;
  if (max > (int)Wosize_val(out_evs)) max = Wosize_val(out_evs);
  int ep = Int_val(epfd);
  int tmo = Int_val(timeout_ms);
  caml_enter_blocking_section();
  n = epoll_wait(ep, evs, max, tmo);
  caml_leave_blocking_section();
  if (n == -1) {
    if (errno == EINTR) CAMLreturn(Val_int(0));
    strategem_epoll_error("epoll_wait");
  }
  for (i = 0; i < n; i++) {
    int bits = 0;
    if (evs[i].events & (EPOLLIN | EPOLLRDHUP | EPOLLERR | EPOLLHUP))
      bits |= 1;
    if (evs[i].events & (EPOLLOUT | EPOLLERR | EPOLLHUP)) bits |= 2;
    Store_field(out_fds, i, Val_int(evs[i].data.fd));
    Store_field(out_evs, i, Val_int(bits));
  }
  CAMLreturn(Val_int(n));
}

/* Per-loop wake channel for the reactor fleet: each event loop owns one
 * eventfd instead of a pipe pair, so a fleet of N loops spends N wake
 * fds rather than 2N, and the kernel coalesces the counter (any number
 * of wakes between two polls is one readable event, one 8-byte read to
 * drain). Nonblocking: the OCaml side treats EAGAIN on either end as
 * "already delivered". */
CAMLprim value strategem_eventfd_available(value unit)
{
  (void)unit;
  return Val_true;
}

CAMLprim value strategem_eventfd_create(value unit)
{
  (void)unit;
  int fd = eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
  if (fd == -1) strategem_epoll_error("eventfd");
  return Val_int(fd);
}

#else /* !__linux__ */

CAMLprim value strategem_epoll_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value strategem_eventfd_available(value unit)
{
  (void)unit;
  return Val_false;
}

CAMLprim value strategem_eventfd_create(value unit)
{
  (void)unit;
  caml_failwith("eventfd unavailable on this platform");
}

CAMLprim value strategem_epoll_create(value unit)
{
  (void)unit;
  caml_failwith("epoll unavailable on this platform");
}

CAMLprim value strategem_epoll_ctl(value epfd, value op, value fd,
                                   value flags)
{
  (void)epfd; (void)op; (void)fd; (void)flags;
  caml_failwith("epoll unavailable on this platform");
}

CAMLprim value strategem_epoll_wait(value epfd, value timeout_ms,
                                    value out_fds, value out_evs)
{
  (void)epfd; (void)timeout_ms; (void)out_fds; (void)out_evs;
  caml_failwith("epoll unavailable on this platform");
}

#endif
