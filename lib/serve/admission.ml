type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : 'a Queue.t;
  depth : int;
  mutable is_closed : bool;
  mutable high_water : int;
}

let create ~depth =
  if depth < 1 then invalid_arg "Admission.create: depth must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    depth;
    is_closed = false;
    high_water = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push t x =
  with_lock t (fun () ->
      if t.is_closed || Queue.length t.items >= t.depth then false
      else begin
        Queue.push x t.items;
        let n = Queue.length t.items in
        if n > t.high_water then t.high_water <- n;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.is_closed do
        Condition.wait t.nonempty t.lock
      done;
      Queue.take_opt t.items)

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let closed t = with_lock t (fun () -> t.is_closed)
let length t = with_lock t (fun () -> Queue.length t.items)
let high_water t = with_lock t (fun () -> t.high_water)
