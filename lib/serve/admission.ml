type 'a t = {
  lock : Mutex.t;
  nonempty : Condition.t;
  items : (int * 'a) Queue.t;  (* (producer, item) *)
  depth : int;
  quota : int;  (* per-producer in-queue cap *)
  in_queue : int array;  (* per-producer in-queue counts *)
  mutable is_closed : bool;
  mutable high_water : int;
}

let create ?(producers = 1) ~depth () =
  if depth < 1 then invalid_arg "Admission.create: depth must be >= 1";
  if producers < 1 then
    invalid_arg "Admission.create: producers must be >= 1";
  {
    lock = Mutex.create ();
    nonempty = Condition.create ();
    items = Queue.create ();
    depth;
    (* one producer keeps the historical whole-queue semantics; several
       split the depth evenly so a flooding producer sheds at its own
       share and never starves its peers *)
    quota = (if producers = 1 then depth else Int.max 1 ((depth + producers - 1) / producers));
    in_queue = Array.make producers 0;
    is_closed = false;
    high_water = 0;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let try_push ?(producer = 0) t x =
  with_lock t (fun () ->
      if
        t.is_closed
        || Queue.length t.items >= t.depth
        || t.in_queue.(producer) >= t.quota
      then false
      else begin
        Queue.push (producer, x) t.items;
        t.in_queue.(producer) <- t.in_queue.(producer) + 1;
        let n = Queue.length t.items in
        if n > t.high_water then t.high_water <- n;
        Condition.signal t.nonempty;
        true
      end)

let pop t =
  with_lock t (fun () ->
      while Queue.is_empty t.items && not t.is_closed do
        Condition.wait t.nonempty t.lock
      done;
      match Queue.take_opt t.items with
      | None -> None
      | Some (producer, x) ->
        t.in_queue.(producer) <- t.in_queue.(producer) - 1;
        Some x)

let close t =
  with_lock t (fun () ->
      t.is_closed <- true;
      Condition.broadcast t.nonempty)

let closed t = with_lock t (fun () -> t.is_closed)
let length t = with_lock t (fun () -> Queue.length t.items)
let producer_length t producer = with_lock t (fun () -> t.in_queue.(producer))
let quota t = t.quota
let high_water t = with_lock t (fun () -> t.high_water)
