type backend = B_none | B_cache | B_cache_derived | B_sld

type t = {
  lc_conn : int;
  lc_rid : int;
  lc_loop : int;
  lc_framed : bool;
  lc_label : string;
  lc_accept_ns : int64;
  lc_frame_ns : int64;
  mutable lc_queue_ns : int64;
  mutable lc_worker_ns : int64;
  mutable lc_respond_ns : int64;
  mutable lc_flush_ns : int64;
  mutable lc_backend : backend;
  mutable lc_shed : bool;
  mutable lc_error : bool;
  mutable lc_wal_wait_ns : int;
  mutable lc_wal_syncs : int;
  mutable lc_page_wait_ns : int;
  mutable lc_page_reads : int;
  mutable lc_exec : Trace.span option;
}

let now_ns () = Int64.of_float (Unix.gettimeofday () *. 1e9)

let create ~conn ~rid ~loop ~framed ~label ~accept_ns ~frame_ns =
  {
    lc_conn = conn;
    lc_rid = rid;
    lc_loop = loop;
    lc_framed = framed;
    lc_label = label;
    lc_accept_ns = accept_ns;
    lc_frame_ns = frame_ns;
    lc_queue_ns = 0L;
    lc_worker_ns = 0L;
    lc_respond_ns = 0L;
    lc_flush_ns = 0L;
    lc_backend = B_none;
    lc_shed = false;
    lc_error = false;
    lc_wal_wait_ns = 0;
    lc_wal_syncs = 0;
    lc_page_wait_ns = 0;
    lc_page_reads = 0;
    lc_exec = None;
  }

(* ---------- ambient record ---------- *)

let current_key : t option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let set_current lc = Domain.DLS.set current_key lc
let current () = Domain.DLS.get current_key

let add_wal_wait lc ns =
  lc.lc_wal_wait_ns <- lc.lc_wal_wait_ns + ns;
  lc.lc_wal_syncs <- lc.lc_wal_syncs + 1

let add_page_wait lc ns =
  lc.lc_page_wait_ns <- lc.lc_page_wait_ns + ns;
  lc.lc_page_reads <- lc.lc_page_reads + 1

(* ---------- reads ---------- *)

let last_ns lc =
  let m a b = if Int64.compare a b > 0 then a else b in
  m lc.lc_flush_ns
    (m lc.lc_respond_ns (m lc.lc_worker_ns lc.lc_queue_ns))

let total_ns lc = Int64.max 0L (Int64.sub (last_ns lc) lc.lc_frame_ns)

let backend_name = function
  | B_none -> "none"
  | B_cache -> "cache"
  | B_cache_derived -> "cache_derived"
  | B_sld -> "sld"

(* ---------- span-tree export ---------- *)

let to_span lc =
  let loop_attr = ("loop", string_of_int lc.lc_loop) in
  let stage ?(children = []) ~kind ~from ~till () =
    if Int64.equal from 0L then None
    else
      let wall =
        if Int64.equal till 0L then 0L else Int64.max 0L (Int64.sub till from)
      in
      Some
        (Trace.span ~kind ~start_ns:from ~wall_ns:wall ~attrs:[ loop_attr ]
           ~children kind)
  in
  let backend_children =
    let wait ~kind ~ns ~count =
      if count = 0 then None
      else
        Some
          (Trace.span ~kind ~start_ns:lc.lc_worker_ns
             ~wall_ns:(Int64.of_int ns)
             ~attrs:[ loop_attr; ("count", string_of_int count) ]
             kind)
    in
    List.filter_map Fun.id
      [
        wait ~kind:"wal_fsync" ~ns:lc.lc_wal_wait_ns ~count:lc.lc_wal_syncs;
        wait ~kind:"page_read" ~ns:lc.lc_page_wait_ns ~count:lc.lc_page_reads;
      ]
  in
  let worker_children =
    let backend =
      match lc.lc_backend with
      | B_none -> backend_children
      | (B_cache | B_cache_derived | B_sld) as b ->
        [
          Trace.span ~kind:(backend_name b) ~start_ns:lc.lc_worker_ns
            ~wall_ns:
              (if Int64.equal lc.lc_respond_ns 0L then 0L
               else Int64.max 0L (Int64.sub lc.lc_respond_ns lc.lc_worker_ns))
            ~attrs:[ loop_attr ] ~children:backend_children (backend_name b);
        ]
    in
    backend @ Option.to_list lc.lc_exec
  in
  let children =
    List.filter_map Fun.id
      [
        stage ~kind:"accept" ~from:lc.lc_accept_ns ~till:lc.lc_accept_ns ();
        stage ~kind:"frame" ~from:lc.lc_frame_ns ~till:lc.lc_queue_ns ();
        stage ~kind:"queue" ~from:lc.lc_queue_ns ~till:lc.lc_worker_ns ();
        stage ~children:worker_children ~kind:"worker" ~from:lc.lc_worker_ns
          ~till:lc.lc_respond_ns ();
        stage ~kind:"flush" ~from:lc.lc_respond_ns ~till:lc.lc_flush_ns ();
      ]
  in
  let flag b = if b then "true" else "false" in
  Trace.span ~kind:"request" ~start_ns:lc.lc_frame_ns ~wall_ns:(total_ns lc)
    ~attrs:
      [
        loop_attr;
        ("conn", string_of_int lc.lc_conn);
        ("rid", string_of_int lc.lc_rid);
        ("proto", if lc.lc_framed then "v4" else "line");
        ("backend", backend_name lc.lc_backend);
        ("shed", flag lc.lc_shed);
        ("error", flag lc.lc_error);
      ]
    ~children lc.lc_label
