(** One request's lifecycle record: the timestamps and waits a request
    accumulates on its way through the reactor fleet —
    accept → frame (parse) → queue (admission) → worker (exec) →
    respond → flush — plus the store waits (WAL fsync, buffer-pool page
    faults) attributed to it while a worker ran it.

    A record is allocated by the owning event loop when the request is
    parsed, carried inside the job through the admission queue, stamped
    by the worker, and {e finalized back on the owning loop} once the
    response bytes have drained to the socket — so every flight-recorder
    write and histogram observation for it happens on the loop thread.
    When lifecycle telemetry is off ([--no-lifecycle]) no record exists
    and every touch point is one [Option] test.

    Mutability is single-owner at each phase (loop → worker → loop);
    nothing here is locked. The ambient {!current} pointer (for store
    wait attribution from layers that cannot see the request) is
    domain-local: surplus workers running as systhreads inside a worker
    domain can misattribute a concurrent wait to their domain-mate's
    request — an accepted imprecision, documented in docs/TRACING.md. *)

(** [B_cache_derived]: answered from the cache by subsumption (filtering
    a more general entry's answer set), not an exact key. *)
type backend = B_none | B_cache | B_cache_derived | B_sld

type t = {
  lc_conn : int;            (** connection id *)
  lc_rid : int;             (** request id (v4 client id / line seqno) *)
  lc_loop : int;            (** owning event loop *)
  lc_framed : bool;         (** v4 frame (vs line dialect) *)
  lc_label : string;        (** verb word, plus the atom for queries *)
  lc_accept_ns : int64;     (** the connection's accept time *)
  lc_frame_ns : int64;      (** request parsed out of the read buffer *)
  mutable lc_queue_ns : int64;    (** admitted to the queue (0 = never) *)
  mutable lc_worker_ns : int64;   (** picked up by a worker (0 = never) *)
  mutable lc_respond_ns : int64;  (** response enqueued (0 = never) *)
  mutable lc_flush_ns : int64;    (** response drained (0 = never) *)
  mutable lc_backend : backend;
  mutable lc_shed : bool;         (** answered BUSY by admission *)
  mutable lc_error : bool;        (** error reply, or the conn died *)
  mutable lc_wal_wait_ns : int;   (** WAL-fsync wait while executing *)
  mutable lc_wal_syncs : int;
  mutable lc_page_wait_ns : int;  (** page-fault read wait *)
  mutable lc_page_reads : int;
  mutable lc_exec : Trace.span option;
      (** the armed tracer's span tree, when this request was traced *)
}

val now_ns : unit -> int64

val create :
  conn:int ->
  rid:int ->
  loop:int ->
  framed:bool ->
  label:string ->
  accept_ns:int64 ->
  frame_ns:int64 ->
  t

(** {1 Ambient record (store-wait attribution)} *)

(** Set by the worker for the duration of one request's execution; read
    by the {!Store.Hooks} observer on the same domain. *)
val set_current : t option -> unit

val current : unit -> t option

val add_wal_wait : t -> int -> unit
val add_page_wait : t -> int -> unit

(** {1 Reads} *)

(** Whole-request nanoseconds: parse to flush (or to the last stamped
    timestamp for requests that never flushed). *)
val total_ns : t -> int64

val backend_name : backend -> string

(** {1 Span-tree export}

    The lifecycle skeleton as a {!Trace} span tree, every span carrying
    the owning loop id as its [loop] attribute:

    {v
      <label> [request]
      ├── accept  (instant: the connection's accept time)
      ├── frame   (parse → enqueue)
      ├── queue   (enqueue → worker pickup)
      ├── worker  (pickup → response enqueued)
      │   ├── cache | cache_derived | sld   (the backend that answered)
      │   │   ├── wal_fsync      (when the store waited)
      │   │   └── page_read
      │   └── <armed exec tree>  (when the request was traced)
      └── flush   (response enqueued → bytes drained)
    v}

    Stages never reached (a shed request has no queue/worker) are
    omitted. *)
val to_span : t -> Trace.span
