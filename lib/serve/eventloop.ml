external epoll_available : unit -> bool = "strategem_epoll_available"
external epoll_create : unit -> Unix.file_descr = "strategem_epoll_create"

external epoll_ctl : Unix.file_descr -> int -> Unix.file_descr -> int -> unit
  = "strategem_epoll_ctl"

external epoll_wait :
  Unix.file_descr -> int -> int array -> int array -> int
  = "strategem_epoll_wait"

external eventfd_available : unit -> bool = "strategem_eventfd_available"
external eventfd_create : unit -> Unix.file_descr = "strategem_eventfd_create"

(* On Unix, Unix.file_descr is the raw fd int; we need the int to key
   the handler table (and the C stubs hand fds back as ints). *)
external fd_int : Unix.file_descr -> int = "%identity"

let max_events = 512

type entry = {
  fd : Unix.file_descr;
  callback : readable:bool -> writable:bool -> unit;
  mutable read : bool;
  mutable write : bool;
}

type backend = Epoll of Unix.file_descr | Select

type t = {
  backend : backend;
  handlers : (int, entry) Hashtbl.t;
  (* Wake channel: an eventfd where the platform has one (one fd per
     loop — halves the descriptor budget of a reactor fleet — and the
     kernel coalesces the counter for us), a pipe elsewhere. With an
     eventfd, [wake_r == wake_w]. *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  wake_is_eventfd : bool;
  wake_flag : bool Atomic.t;
  mutable wakeups : int;  (* loop thread only: wake deliveries seen *)
  mutable hook : unit -> unit;
  out_fds : int array;
  out_evs : int array;
  drain_buf : Bytes.t;
}

let flags_of ~read ~write = (if read then 1 else 0) lor (if write then 2 else 0)

let create () =
  let backend = if epoll_available () then Epoll (epoll_create ()) else Select in
  let wake_r, wake_w, wake_is_eventfd =
    if eventfd_available () then
      let efd = eventfd_create () in
      (efd, efd, true)
    else begin
      let r, w = Unix.pipe ~cloexec:true () in
      Unix.set_nonblock r;
      Unix.set_nonblock w;
      (r, w, false)
    end
  in
  (match backend with
  | Epoll ep -> epoll_ctl ep 0 wake_r 1
  | Select -> ());
  {
    backend;
    handlers = Hashtbl.create 64;
    wake_r;
    wake_w;
    wake_is_eventfd;
    wake_flag = Atomic.make false;
    wakeups = 0;
    hook = (fun () -> ());
    out_fds = Array.make max_events 0;
    out_evs = Array.make max_events 0;
    drain_buf = Bytes.create 256;
  }

let backend t =
  match t.backend with Epoll _ -> "epoll" | Select -> "select"

let add t fd ~read ~write callback =
  Hashtbl.replace t.handlers (fd_int fd) { fd; callback; read; write };
  match t.backend with
  | Epoll ep -> epoll_ctl ep 0 fd (flags_of ~read ~write)
  | Select -> ()

let modify t fd ~read ~write =
  match Hashtbl.find_opt t.handlers (fd_int fd) with
  | None -> ()
  | Some e when e.read = read && e.write = write -> ()
  | Some e ->
    e.read <- read;
    e.write <- write;
    (match t.backend with
    | Epoll ep -> epoll_ctl ep 1 fd (flags_of ~read ~write)
    | Select -> ())

let remove t fd =
  let key = fd_int fd in
  if Hashtbl.mem t.handlers key then begin
    Hashtbl.remove t.handlers key;
    match t.backend with
    | Epoll ep -> ( try epoll_ctl ep 2 fd 0 with Failure _ -> ())
    | Select -> ()
  end

(* An eventfd wants an 8-byte counter increment; a pipe any byte. Both
   payloads are constant, so neither write allocates. *)
let eventfd_one =
  let b = Bytes.make 8 '\000' in
  Bytes.set b 0 '\001';
  (* eventfd counters are host-endian u64; value 1 on a big-endian host
     puts the 1 in the last byte instead *)
  if Sys.big_endian then begin
    Bytes.set b 0 '\000';
    Bytes.set b 7 '\001'
  end;
  b

let pipe_one = Bytes.make 1 '!'

let wake t =
  if not (Atomic.exchange t.wake_flag true) then
    let buf = if t.wake_is_eventfd then eventfd_one else pipe_one in
    try ignore (Unix.write t.wake_w buf 0 (Bytes.length buf)) with
    | Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EPIPE | EBADF), _, _) -> ()

(* Drain the pipe BEFORE resetting the flag. The reverse order loses
   wakeups: a byte written by a concurrent {!wake} (which saw the flag
   already reset) can be consumed by this very drain, leaving the flag
   true with an empty pipe — after which every {!wake} skips its write
   and the loop sleeps a full timeout. With this order, a skipped write
   (flag true) implies either a byte still in the pipe or a flag reset
   — and therefore a hook run — still ahead in this iteration; both
   deliver the wakeup. *)
let drain_wake t =
  t.wakeups <- t.wakeups + 1;
  (if t.wake_is_eventfd then
     (* one read returns and resets the whole counter *)
     match Unix.read t.wake_r t.drain_buf 0 8 with
     | _ -> ()
     | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
   else
     let rec go () =
       match Unix.read t.wake_r t.drain_buf 0 (Bytes.length t.drain_buf) with
       | n when n = Bytes.length t.drain_buf -> go ()
       | _ -> ()
       | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) -> ()
     in
     go ());
  Atomic.set t.wake_flag false

let wakeups t = t.wakeups

let dispatch t fd bits =
  if fd = fd_int t.wake_r then drain_wake t
  else
    (* Re-check membership per event: an earlier callback in this batch
       may have closed this connection. *)
    match Hashtbl.find_opt t.handlers fd with
    | None -> ()
    | Some e -> e.callback ~readable:(bits land 1 <> 0) ~writable:(bits land 2 <> 0)

let iterate_epoll t ep ~timeout_ms =
  let n = epoll_wait ep timeout_ms t.out_fds t.out_evs in
  for i = 0 to n - 1 do
    dispatch t t.out_fds.(i) t.out_evs.(i)
  done

let iterate_select t ~timeout_ms =
  let rd = ref [ t.wake_r ] and wr = ref [] in
  Hashtbl.iter
    (fun _ e ->
      if e.read then rd := e.fd :: !rd;
      if e.write then wr := e.fd :: !wr)
    t.handlers;
  match Unix.select !rd !wr [] (float_of_int timeout_ms /. 1000.) with
  | exception Unix.Unix_error (EINTR, _, _) -> ()
  | ready_r, ready_w, _ ->
    let events = Hashtbl.create 16 in
    List.iter
      (fun fd ->
        Hashtbl.replace events (fd_int fd)
          (1 lor (try Hashtbl.find events (fd_int fd) with Not_found -> 0)))
      ready_r;
    List.iter
      (fun fd ->
        Hashtbl.replace events (fd_int fd)
          (2 lor (try Hashtbl.find events (fd_int fd) with Not_found -> 0)))
      ready_w;
    Hashtbl.iter (fun fd bits -> dispatch t fd bits) events

let iterate t ~timeout_ms =
  (match t.backend with
  | Epoll ep -> iterate_epoll t ep ~timeout_ms
  | Select -> iterate_select t ~timeout_ms);
  t.hook ()

let on_wake t f = t.hook <- f

let run t ~stop =
  while not (stop ()) do
    iterate t ~timeout_ms:250
  done

let close t =
  (match t.backend with
  | Epoll ep -> ( try Unix.close ep with Unix.Unix_error _ -> ())
  | Select -> ());
  (try Unix.close t.wake_r with Unix.Unix_error _ -> ());
  if not t.wake_is_eventfd then
    try Unix.close t.wake_w with Unix.Unix_error _ -> ()
