(** Client for the strategem serve daemon — the one implementation of
    the wire protocol shared by [strategem client], the bench drivers
    and the tests.

    A client speaks either dialect. [`Lines] is the v2/v3 line protocol:
    one request line, read the reply (lines until [END] for multi-line
    verbs). [`V4] is the framed protocol ({!Frame}): requests carry
    client-chosen ids, many can be posted before any response is read
    ({!post}/{!recv}), and responses may arrive out of order. [`Auto]
    (the default) negotiates: it sends the [HELLO V4] upgrade line and
    switches to frames when the server answers with the v4 banner — an
    older server instead answers [ERR malformed HELLO takes no argument]
    and the client quietly stays on the line dialect, so [`Auto] is safe
    against any historical daemon.

    Replies are returned dialect-independently as the reply lines the
    line protocol would print ([ERR]/[BUSY]/[BYE] reconstructed from
    response frames), so callers never branch on the negotiated
    protocol. Not thread-safe; one client per thread. *)

type t

type proto = [ `Auto | `Lines | `V4 ]

(** [connect ?proto ?host ~port ()] — TCP connect (with [TCP_NODELAY])
    and, under [`Auto], run the upgrade handshake. Default host
    ["127.0.0.1"]. Raises [Unix.Unix_error] on connection failure. *)
val connect : ?proto:proto -> ?host:string -> port:int -> unit -> t

(** The dialect actually in use (after [`Auto] negotiation). *)
val protocol : t -> [ `Lines | `V4 ]

(** {2 Blocking request/response} *)

(** [command t line] sends one protocol line (e.g.
    ["QUERY instructor(russ)"]) and blocks for its full reply. Multi-line
    replies come back without the [END] terminator. An empty line returns
    [[]] without touching the wire. Raises [End_of_file] if the server
    closes mid-reply and [Failure] on a corrupt frame. *)
val command : t -> string -> string list

(** First line of {!command}'s reply ([""] on an empty reply) — the
    common case for single-line verbs like [QUERY]. *)
val request : t -> string -> string

(** {2 Pipelining (v4 only)} *)

(** [post t line] encodes the request as one frame with a fresh id,
    writes it without waiting for any response, and returns the id.
    Raises [Invalid_argument] on a line-dialect client or a line that
    does not parse as a pipelineable verb. *)
val post : t -> string -> int

(** The next response the server sends (any id), as [(id, reply lines)].
    Raises [Invalid_argument] on a line-dialect client, [End_of_file]
    when the server closes. *)
val recv : t -> int * string list

(** {2 Raw line passthrough (line dialect only)}

    For callers that need the historical CLI behaviour byte for byte:
    write raw lines, half-close, print everything until EOF. *)

val send_line : t -> string -> unit
(** Write [line ^ "\n"], buffered; flushed by {!half_close} and
    {!command}. Raises [Invalid_argument] on a v4 client. *)

val half_close : t -> unit
(** Flush and [shutdown SHUTDOWN_SEND]: the server sees EOF, serves
    what was sent, and closes once every reply is out. *)

val drain : t -> (string -> unit) -> unit
(** Feed every remaining reply line to the callback until EOF. *)

val close : t -> unit
