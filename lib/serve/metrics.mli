(** Server observability: a thin facade over an {!Obs.Registry}. Every
    number the daemon reports lives in a registry instrument, so the
    same underlying counters feed the TCP [STATS]/[STATS JSON] renderers
    (byte-stable for existing clients — new fields are only ever
    additive) and the Prometheus [/metrics] endpoint
    ({!render_prometheus}). Metric names and labels are inventoried in
    [docs/OBSERVABILITY.md].

    All operations are thread-safe; hot-path updates are lock-sharded
    per time series (see {!Obs.Registry}). Per-form state is created on
    first use. Latencies go into fixed log-scale buckets — bucket [i]
    holds observations in [[2^i, 2^(i+1)) µs) — so percentile reads are
    O(buckets) and never allocate per observation. *)

type t

(** [trace_capacity > 0] keeps a ring of the last that many rendered
    query traces (the daemon's [--trace-sample N]), exposed in the
    [STATS JSON] [recent_traces] array; [0] (the default) disables
    sampling. *)
val create : ?trace_capacity:int -> unit -> t

(** Version of the frozen [STATS JSON] schema (the [schema] field;
    documented field-by-field in [docs/SERVING.md] — derived from the
    registry since the observability layer landed). *)
val schema_version : int

(** The backing registry, for callers that add their own instruments
    (the server's slow-query counter) or render it directly. *)
val registry : t -> Obs.Registry.t

(** The whole registry in Prometheus text exposition format 0.0.4 —
    the [GET /metrics] body. Runs the collect hooks (cache mirror,
    uptime, windowed high-water). *)
val render_prometheus : t -> string

(** {1 Worker domains} *)

(** Record the effective worker-domain count (after clamping the
    requested [--workers] to the host's recommended domain count).
    Rendered as the [strategem_domains] gauge and the additive
    [domains] STATS field. *)
val set_domains : t -> int -> unit

val domains : t -> int

(** Per-domain hot-path handles, obtained once by each worker at spawn:
    [strategem_domain_connections_total{domain}] and
    [strategem_domain_busy_us_total{domain}]. *)
type domain_handles

val domain_handles : t -> domain:int -> domain_handles

(** One request served by this domain, which spent [busy_us] on it
    (queue wait excluded). Before the event-loop front end the unit was
    a whole connection; the metric names are frozen, the granularity is
    not. *)
val domain_served : domain_handles -> busy_us:float -> unit

(** {1 Events} *)

val connection : t -> unit

(** A connection or request shed with [BUSY] (connections at the
    [max_conns] cap, requests when the admission queue is full). *)
val busy : t -> unit

val error : t -> unit
val snapshot_saved : t -> forms:int -> unit

(** [n] forms' learned strategies were reloaded from snapshots at
    startup. *)
val forms_loaded : t -> int -> unit

(** Record the admission-queue depth (observed after an enqueue or a
    pop; since the event-loop front end the queue holds individual
    requests, not connections). Keeps three readings: the current-depth
    gauge, an all-time high water ([queue_high_water], never resets),
    and a windowed high water ([queue_high_water_window]) that resets
    each time [STATS] or a [/metrics] scrape reads it. *)
val observe_queue_depth : t -> int -> unit

(** A request spent [wait_us] in the admission queue before a worker
    picked it up. *)
val queue_waited : t -> wait_us:float -> unit

(** A subsumption probe (candidate walk + answer-set filtering) took
    [us] microseconds. Observed on derived hits and on probes that fell
    through to SLD — exact hits never pay the filter, so they are not
    observed. Feeds [strategem_cache_filter_latency_us]. *)
val cache_filter : t -> float -> unit

(** {1 Reactor (protocol v4)} *)

(** The [strategem_conns_open] gauge: sockets the reactor currently
    holds open (also the additive [conns_open] STATS field). *)
val conn_opened : t -> unit

val conn_closed : t -> unit
val conns_open : t -> int

(** The [strategem_pipeline_depth] gauge: requests dispatched to the
    worker pool whose responses have not yet been enqueued, across all
    connections; an all-time high water is kept as
    [strategem_pipeline_depth_high_water]. *)
val set_pipeline_depth : t -> int -> unit

(** The reactor backend ("epoll" / "select"), surfaced in the STATS JSON
    [protocol] block. *)
val set_backend : t -> string -> unit

(** {1 Reactor fleet}

    One event loop per worker domain: each loop registers its handles at
    spawn and updates only its own [{loop="i"}] series, so the hot path
    never contends. Rendered as the additive [loops] STATS field and the
    [loops] block ([count] plus a [per_loop] array) in [STATS JSON]. *)

(** Record the fleet size ([strategem_loops] gauge, [loops] STATS
    field). *)
val set_loops : t -> int -> unit

val loops : t -> int

(** Per-loop hot-path handles: [strategem_loop_conns_open{loop}],
    [strategem_loop_wakeups_total{loop}],
    [strategem_loop_pipeline_depth{loop}]. *)
type loop_handles

val loop_handles : t -> loop:int -> loop_handles
val loop_conn_opened : loop_handles -> unit
val loop_conn_closed : loop_handles -> unit
val loop_conns : loop_handles -> int

(** Mirror the loop's monotonic coalesced-wake count
    ({!Eventloop.wakeups}) into its counter series. *)
val set_loop_wakeups : loop_handles -> int -> unit

(** Requests in flight on this loop's connections right now. *)
val set_loop_pipeline_depth : loop_handles -> int -> unit

(** One stage of a finalized request's lifecycle, in microseconds:
    [strategem_stage_latency_us{stage, loop}]. Stage vocabulary:
    [frame], [queue], [worker], [flush], [total], plus [wal_fsync] and
    [page_read] when the store waited. Loop thread only (the per-stage
    child cache is unlocked). *)
val observe_stage : loop_handles -> stage:string -> float -> unit

(** A request's lifecycle record was finalized
    ([strategem_lifecycle_requests_total]). *)
val lifecycle_finalized : t -> unit

val lifecycle_requests : t -> int

(** A finalized request's trace was kept by tail-based retention
    ([strategem_traces_retained_total{reason}]); [seq] becomes the
    loop's exemplar gauge ([strategem_trace_retained_exemplar{loop}]).
    [reason] is one of [slow], [error], [shed]. *)
val trace_retained : t -> loop_handles -> reason:string -> seq:int -> unit

(** Traces retained across all reasons since start. *)
val traces_retained : t -> int

(** A connection breached a write-buffer cap: its buffered output
    ([shed_bytes]) was dropped, one [BUSY] took its place, and the loop
    disconnected it ([strategem_write_overflow_total],
    [strategem_write_shed_bytes_total]). *)
val write_overflow : t -> shed_bytes:int -> unit

(** Late-reported shed bytes (flushed after the overflow was counted). *)
val write_shed_bytes : t -> int -> unit

(** A connection hit [--idle-timeout-s] ([strategem_idle_closed_total]). *)
val idle_closed : t -> unit

(** An accept was refused by [--max-conns-per-ip]
    ([strategem_ip_limited_total]). *)
val ip_limited : t -> unit

(** Is trace sampling on ([trace_capacity > 0])? *)
val trace_sampling : t -> bool

(** Add one rendered trace (a {!Trace.to_json} line) to the sample ring;
    no-op when sampling is off. *)
val trace : t -> string -> unit

(** Sampled traces, oldest first ([[]] when sampling is off). *)
val recent_traces : t -> string list

(** One answered query: latency, whether an answer was found, and whether
    it triggered a strategy climb. *)
val query :
  t -> form:string -> latency_us:float -> answered:bool -> switched:bool ->
  unit

(** The form's current strategy, pre-rendered (shown by [STATS]). *)
val set_form_strategy : t -> form:string -> string -> unit

(** Update the form's [strategem_learner_*] convergence gauges from a
    {!Core.Learner.progress} reading (fields passed positionally so this
    module stays core-agnostic). Called from the learner event hook on
    every observation. *)
val learner_progress :
  t ->
  form:string ->
  samples:int ->
  samples_total:int ->
  climbs:int ->
  epsilon:float ->
  delta:float ->
  finished:bool ->
  unit

(** {1 Cache} *)

(** A point-in-time view of the serving caches, pulled from the cache's
    own counters when rendering (the cache layer is below [Serve] and
    keeps its own thread-safe counters; metrics never double-count). *)
type cache_stats = {
  enabled : bool;
  hits : int;  (** answer-cache hits *)
  misses : int;
  evictions : int;
  invalidations : int;  (** entries dropped after a DB mutation *)
  entries : int;
  bytes : int;  (** estimated resident bytes *)
  capacity_bytes : int;
  memo_hits : int;  (** subgoal-memo hits (SLD tabling-lite) *)
  memo_misses : int;
  memo_invalidations : int;
  memo_entries : int;
  subsume : bool;  (** subsumption index / derived hits enabled *)
  derived_hits : int;
      (** lookups answered by filtering a more general entry's answer set *)
  derived_scan_entries : int;
      (** candidate generalizations examined across subsumption probes *)
  subsume_misses : int;  (** probes that found no usable generalization *)
  index_keys : int;  (** keys registered in the subsumption index *)
}

(** All-zero, [enabled = false] — what a cacheless server reports. *)
val no_cache_stats : cache_stats

(** Install the provider the renderers pull {!cache_stats} through. The
    provider is called outside the metrics lock. *)
val set_cache_provider : t -> (unit -> cache_stats) -> unit

(** Current cache stats via the provider, if one is installed. *)
val cache_stats : t -> cache_stats option

(** Version of the [cache] block inside [STATS JSON] (independent of
    {!schema_version}; the block is additive). *)
val cache_block_version : int

(** {1 Paged store}

    When the daemon serves from a paged database ([--data-dir]), its
    {!Store.stats} counters are mirrored into [strategem_store_*]
    instruments on every collect, appended as additive [store_*] lines
    to [STATS], and rendered as the [store] block in [STATS JSON]. An
    in-memory daemon installs no provider and reports none of them. *)

type store_stats = Store.stats

(** Install the provider the renderers pull {!store_stats} through
    (typically [Database.store_stats] partially applied). Called outside
    the metrics lock. *)
val set_store_provider : t -> (unit -> store_stats) -> unit

(** Current store stats via the provider, if one is installed. *)
val store_stats : t -> store_stats option

(** Version of the [store] block inside [STATS JSON]. *)
val store_block_version : int

(** {1 Reads} *)

val queries_total : t -> int
val climbs_total : t -> int
val busy_total : t -> int
val queue_high_water : t -> int

(** [STATS] body: one [key value] line per counter, then one [form ...]
    line per query form (sorted by form key). Deterministic field order. *)
val render_text : t -> string list

(** The same data as a single JSON object (one line). *)
val render_json : t -> string
