(** Server observability: monotonic counters, per-form latency histograms
    and strategy-learning event counts, rendered for the [STATS] command
    (text) and dumpable as JSON.

    All operations are thread-safe (one internal lock). Counters only
    ever increase; per-form state is created on first use. Latencies go
    into fixed log-scale buckets — bucket [i] holds observations in
    [[2^i, 2^(i+1)) µs) — so percentile reads are O(buckets) and never
    allocate per observation. *)

type t

val create : unit -> t

(** {1 Events} *)

val connection : t -> unit

(** A connection shed with [BUSY]. *)
val busy : t -> unit

val error : t -> unit
val snapshot_saved : t -> forms:int -> unit

(** [n] forms' learned strategies were reloaded from snapshots at
    startup. *)
val forms_loaded : t -> int -> unit

(** Record the admission-queue depth observed after an enqueue; the
    high-water mark is kept. *)
val observe_queue_depth : t -> int -> unit

(** One answered query: latency, whether an answer was found, and whether
    it triggered a strategy climb. *)
val query :
  t -> form:string -> latency_us:float -> answered:bool -> switched:bool ->
  unit

(** The form's current strategy, pre-rendered (shown by [STATS]). *)
val set_form_strategy : t -> form:string -> string -> unit

(** {1 Reads} *)

val queries_total : t -> int
val climbs_total : t -> int
val busy_total : t -> int
val queue_high_water : t -> int

(** [STATS] body: one [key value] line per counter, then one [form ...]
    line per query form (sorted by form key). Deterministic field order. *)
val render_text : t -> string list

(** The same data as a single JSON object (one line). *)
val render_json : t -> string
