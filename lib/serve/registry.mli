(** The per-query-form learner registry — the daemon's brain.

    Each distinct query {e form} (predicate, arity, and adornment: which
    argument positions are bound) gets its own {!Core.Live} processor,
    built lazily on the first query of that form and kept for the life of
    the server. Concurrency contract: queries of the {e same} form
    serialize on the entry's lock (the learner is stateful — Figure 4's
    PIB watches a single execution stream), while queries of different
    forms proceed in parallel; the registry-wide lock is held only for
    table lookup/insertion.

    Forms are canonicalized so that [instructor(manolis)] and
    [instructor(russ)] share a learner (form [instructor(q)], key
    ["instructor_1_b"]) while [instructor(X)] gets its own
    (["instructor_1_f"]). *)

type entry

type t

(** [create ?learner ?config ~rulebase metrics] — per-form processors are
    created against [rulebase] with the given learner kind (default
    [`Pib]) and {!Core.Learner.config}. *)
val create :
  ?learner:Core.Learner.kind ->
  ?config:Core.Learner.config ->
  rulebase:Datalog.Rulebase.t ->
  Metrics.t ->
  t

(** The learner kind every entry is created with. *)
val learner_kind : t -> Core.Learner.kind

(** The canonical query form of a concrete query: every constant becomes
    the bound-position marker [q], every variable a positional [X<i>]. *)
val form_of_query : Datalog.Atom.t -> Datalog.Atom.t

(** Filesystem/metrics-safe key of a form, e.g. ["instructor_1_b"]. *)
val key_of_form : Datalog.Atom.t -> string

(** Look up or lazily build the entry for a form (the atom is
    canonicalized first). May raise {!Infgraph.Build.Not_disjunctive} (a
    conjunctive rule body) or [Invalid_argument] (a graph PIB cannot
    learn on). *)
val find_or_create : t -> Datalog.Atom.t -> entry

(** Answer one concrete query with the form's learner, serialized against
    other queries of the same form. Updates the entry's strategy
    rendering in the metrics on a climb. [tracer]/[parent] are passed
    through to {!Core.Live.answer}.

    With [cache], the answer cache is consulted (under the entry lock)
    before SLD: a valid hit short-circuits to {!Core.Live.answer_cached}
    — the learner still observes the query — and a miss stores the fresh
    result unless the search was depth-truncated. When [parent] is given
    and tracing is on, cache service is recorded on it as a [cache_hit]
    event (attrs [saved_reductions]/[saved_retrievals]/[fill_cost]) or a
    [cache_miss] event. [memo] is threaded to the SLD engine for subgoal
    memoization on misses. *)
val answer :
  ?tracer:Trace.t ->
  ?parent:Trace.span ->
  ?cache:Cache.Answers.t ->
  ?memo:Datalog.Sld.Memo.t ->
  t ->
  db:Datalog.Database.t ->
  Datalog.Atom.t ->
  Core.Live.answer

(** All entries, sorted by form key. *)
val entries : t -> entry list

val key : entry -> string
val form : entry -> Datalog.Atom.t

(** Run [f] on the entry's processor while holding its lock. *)
val with_live : entry -> (Core.Live.t -> 'a) -> 'a

(** The entry's current strategy, rendered ⟨like this⟩. *)
val strategy_string : entry -> string

(** Re-render every entry's current strategy into the metrics — called
    after {!Snapshot.load} installs reloaded strategies. *)
val publish_strategies : t -> unit
