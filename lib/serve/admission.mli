(** Bounded admission queue between the accept loop and the worker pool.

    The producer never blocks: {!try_push} refuses immediately when the
    queue is at capacity (the caller sheds the connection with a [BUSY]
    reply) or after {!close}. Consumers block in {!pop} until an item or
    until the queue is closed {e and} drained — close-then-drain is what
    gives the server its graceful shutdown: queued work is still served,
    only new work is refused. *)

type 'a t

(** [create ~depth] — a queue admitting at most [depth] items at once.
    Raises [Invalid_argument] if [depth < 1]. *)
val create : depth:int -> 'a t

(** Enqueue, or refuse: [false] when full or closed. Never blocks. *)
val try_push : 'a t -> 'a -> bool

(** Dequeue, blocking while the queue is empty but open. [None] once the
    queue is closed and every queued item has been consumed. *)
val pop : 'a t -> 'a option

(** Refuse all future pushes and wake blocked consumers. Idempotent. *)
val close : 'a t -> unit

val closed : 'a t -> bool

(** Items queued right now. *)
val length : 'a t -> int

(** The most items ever queued at once (the load-shedding headroom
    actually used). *)
val high_water : 'a t -> int
