(** Bounded admission queue between the reactor fleet and the worker
    pool.

    Producers never block: {!try_push} refuses immediately when the
    queue is at capacity (the caller sheds the request with a [BUSY]
    reply) or after {!close}. Consumers block in {!pop} until an item or
    until the queue is closed {e and} drained — close-then-drain is what
    gives the server its graceful shutdown: queued work is still served,
    only new work is refused.

    Back-pressure is per-producer: with [producers = n > 1] (one per
    event loop), the depth is split into even quotas of
    [ceil (depth / n)], and a producer whose in-queue count is at its
    quota is refused even when the queue as a whole has room — a
    flooding loop sheds at its own share and never starves its peers.
    With the default single producer the quota is the whole depth, i.e.
    the historical semantics. *)

type 'a t

(** [create ?producers ~depth ()] — a queue admitting at most [depth]
    items at once, at most [ceil (depth / producers)] of them from any
    one producer (when [producers > 1]). Raises [Invalid_argument] if
    [depth < 1] or [producers < 1]. *)
val create : ?producers:int -> depth:int -> unit -> 'a t

(** Enqueue, or refuse: [false] when full, when [producer] (default
    [0]) is at its quota, or when closed. Never blocks. *)
val try_push : ?producer:int -> 'a t -> 'a -> bool

(** Dequeue, blocking while the queue is empty but open. [None] once the
    queue is closed and every queued item has been consumed. *)
val pop : 'a t -> 'a option

(** Refuse all future pushes and wake blocked consumers. Idempotent. *)
val close : 'a t -> unit

val closed : 'a t -> bool

(** Items queued right now. *)
val length : 'a t -> int

(** Items queued right now from this producer. *)
val producer_length : 'a t -> int -> int

(** The per-producer in-queue cap. *)
val quota : 'a t -> int

(** The most items ever queued at once (the load-shedding headroom
    actually used). *)
val high_water : 'a t -> int
