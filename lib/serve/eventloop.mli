(** A single-threaded readiness loop: epoll on Linux (via
    [epoll_stubs.c]), [Unix.select] elsewhere, behind one interface.

    The reactor registers every socket with a callback; {!iterate} polls
    once and dispatches [readable]/[writable] flags to the callbacks of
    ready sockets. All registration and dispatch happens on the one
    thread that runs the loop — only {!wake} is thread-safe, which is
    how worker domains hand completed responses back: append to a
    connection's write buffer, then [wake] the loop so it flushes.

    A process may run many loops (the sharded reactor fleet runs one per
    worker domain): each {!create} owns a private poller instance and a
    private wake channel — an eventfd on Linux (one fd per loop, kernel-
    coalesced), a pipe elsewhere — so loops share no state and never
    contend.

    Level-triggered semantics on both backends: a callback that does not
    drain its socket is simply called again on the next iteration. *)

type t

val create : unit -> t
(** Picks epoll when the platform supports it, select otherwise. *)

val backend : t -> string
(** ["epoll"] or ["select"] — surfaced in logs and STATS JSON. *)

val add :
  t -> Unix.file_descr -> read:bool -> write:bool ->
  (readable:bool -> writable:bool -> unit) -> unit
(** Register a socket and its callback. Loop thread only. *)

val modify : t -> Unix.file_descr -> read:bool -> write:bool -> unit
(** Change interest; no-op if the interest is unchanged or the socket is
    not registered. Loop thread only. *)

val remove : t -> Unix.file_descr -> unit
(** Deregister. Must be called before the fd is closed. Loop thread
    only; idempotent. *)

val wake : t -> unit
(** Make the current (or next) {!iterate} return promptly and run the
    {!on_wake} hook. Thread-safe and async-signal-safe: an atomic flag
    coalesces bursts so n completions cost at most one pipe write. *)

val on_wake : t -> (unit -> unit) -> unit
(** Install the post-poll hook. {!iterate} runs it exactly once per
    iteration, whether or not a wake arrived — the hook owns checking
    its own work queues. *)

val wakeups : t -> int
(** Wake deliveries this loop has drained so far (coalesced: a burst of
    {!wake} calls between two polls counts once). Loop thread only —
    feeds the per-loop [strategem_loop_wakeups_total] series. *)

val iterate : t -> timeout_ms:int -> unit
(** One poll + dispatch + [on_wake] round. *)

val run : t -> stop:(unit -> bool) -> unit
(** [iterate] until [stop ()] is true (checked once per iteration). *)

val close : t -> unit
(** Release the poller and wake pipe. The registered sockets are the
    caller's to close. *)
