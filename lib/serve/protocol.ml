type request =
  | Hello
  | Query of string
  | Trace of string
  | Stats
  | Stats_json
  | Snapshot
  | Strategy of string
  | Ping
  | Help
  | Quit
  | Shutdown
  | Empty
  | Malformed of string
  | Unknown of string

let version = 3

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line i (String.length line - i)) )

let parse line =
  let line = String.trim line in
  if line = "" then Empty
  else
    let cmd, rest = split_command line in
    match (String.uppercase_ascii cmd, rest) with
    | "HELLO", "" -> Hello
    | "QUERY", "" -> Malformed "QUERY needs an atom"
    | "QUERY", atom -> Query atom
    | "TRACE", "" -> Malformed "TRACE needs an atom"
    | "TRACE", atom -> Trace atom
    | "STATS", "" -> Stats
    | "STATS", arg when String.uppercase_ascii arg = "JSON" -> Stats_json
    | "SNAPSHOT", "" -> Snapshot
    | "STRATEGY", "" -> Malformed "STRATEGY needs an atom"
    | "STRATEGY", atom -> Strategy atom
    | "PING", "" -> Ping
    | "HELP", "" -> Help
    | "QUIT", "" -> Quit
    | "SHUTDOWN", "" -> Shutdown
    | ( ("HELLO" | "STATS" | "SNAPSHOT" | "PING" | "HELP" | "QUIT" | "SHUTDOWN"),
        _ ) ->
      Malformed (String.uppercase_ascii cmd ^ " takes no argument")
    | _ -> Unknown cmd

let terminator = "END"

let help_lines =
  [
    "HELLO            protocol banner (version, learner)";
    "QUERY <atom>     answer a Datalog query, learning from it";
    "TRACE <atom>     answer a query and return its span tree as JSON";
    "STATS            server metrics (text; terminated by END)";
    "STATS JSON       server metrics as a single JSON line";
    "STRATEGY <atom>  the current learned strategy for the atom's form";
    "SNAPSHOT         persist all learned strategies to the state dir";
    "PING             liveness probe";
    "HELP             this text";
    "QUIT             close this connection";
    "SHUTDOWN         drain in-flight queries and stop the server";
  ]

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let answer_line ~result ~reductions ~retrievals ~cached ~switched =
  Printf.sprintf "ANSWER %s reductions=%d retrievals=%d%s%s" (one_line result)
    reductions retrievals
    (if cached then " cached" else "")
    (if switched then " switched" else "")

let hello_line ~learner =
  Printf.sprintf "HELLO strategem/%d learner=%s" version learner

let trace_line json = "TRACE " ^ one_line json

type err_code =
  [ `Parse | `Unknown_verb | `Malformed | `Unsupported | `No_state_dir
  | `Internal ]

let err_code_to_string = function
  | `Parse -> "parse"
  | `Unknown_verb -> "unknown-verb"
  | `Malformed -> "malformed"
  | `Unsupported -> "unsupported"
  | `No_state_dir -> "no-state-dir"
  | `Internal -> "internal"

let err ~code msg =
  Printf.sprintf "ERR %s %s" (err_code_to_string code) (one_line msg)

let busy = "BUSY"
let bye = "BYE"
let pong = "PONG"
