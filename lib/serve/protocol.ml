type request =
  | Query of string
  | Stats
  | Stats_json
  | Snapshot
  | Strategy of string
  | Ping
  | Help
  | Quit
  | Shutdown
  | Empty
  | Unknown of string

let split_command line =
  match String.index_opt line ' ' with
  | None -> (line, "")
  | Some i ->
    ( String.sub line 0 i,
      String.trim (String.sub line i (String.length line - i)) )

let parse line =
  let line = String.trim line in
  if line = "" then Empty
  else
    let cmd, rest = split_command line in
    match (String.uppercase_ascii cmd, rest) with
    | "QUERY", "" -> Unknown "QUERY needs an atom"
    | "QUERY", atom -> Query atom
    | "STATS", "" -> Stats
    | "STATS", arg when String.uppercase_ascii arg = "JSON" -> Stats_json
    | "SNAPSHOT", "" -> Snapshot
    | "STRATEGY", "" -> Unknown "STRATEGY needs an atom"
    | "STRATEGY", atom -> Strategy atom
    | "PING", "" -> Ping
    | "HELP", "" -> Help
    | "QUIT", "" -> Quit
    | "SHUTDOWN", "" -> Shutdown
    | _ -> Unknown line

let terminator = "END"

let help_lines =
  [
    "QUERY <atom>     answer a Datalog query, learning from it";
    "STATS            server metrics (text; terminated by END)";
    "STATS JSON       server metrics as a single JSON line";
    "STRATEGY <atom>  the current learned strategy for the atom's form";
    "SNAPSHOT         persist all learned strategies to the state dir";
    "PING             liveness probe";
    "HELP             this text";
    "QUIT             close this connection";
    "SHUTDOWN         drain in-flight queries and stop the server";
  ]

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let answer_line ~result ~reductions ~retrievals ~switched =
  Printf.sprintf "ANSWER %s reductions=%d retrievals=%d%s" (one_line result)
    reductions retrievals
    (if switched then " switched" else "")

let err msg = "ERR " ^ one_line msg
let busy = "BUSY"
let bye = "BYE"
let pong = "PONG"
