type request =
  | Hello
  | Hello_v4
  | Query of string
  | Trace of string
  | Stats
  | Stats_json
  | Snapshot
  | Strategy of string
  | Ping
  | Help
  | Flight
  | Quit
  | Shutdown
  | Empty
  | Malformed of string
  | Unknown of string

let version = 3

(* The characters [String.trim] strips; the in-place parser must agree
   with it byte for byte so [parse] and [parse_sub] cannot drift. *)
let is_ws = function
  | ' ' | '\012' | '\n' | '\r' | '\t' -> true
  | _ -> false

(* Case-insensitive match of [b.[pos .. pos+len-1]] against the
   (uppercase) literal [s], without allocating the span. *)
let span_is b ~pos ~len s =
  String.length s = len
  &&
  let rec go k =
    k = len
    || Char.uppercase_ascii (Bytes.get b (pos + k)) = s.[k] && go (k + 1)
  in
  go 0

(* Total parser over a byte range: the verb is matched in place (no line
   or verb string is allocated on the happy path) and only the argument
   — when the verb takes one — is copied out. Semantically identical to
   trimming the line, splitting at the first ' ', and uppercasing the
   verb. *)
let parse_sub b ~pos ~len =
  let i = ref pos and j = ref (pos + len) in
  while !i < !j && is_ws (Bytes.get b !i) do incr i done;
  while !j > !i && is_ws (Bytes.get b (!j - 1)) do decr j done;
  if !i >= !j then Empty
  else begin
    let sp = ref !i in
    while !sp < !j && Bytes.get b !sp <> ' ' do incr sp done;
    let v0 = !i and v1 = !sp in
    let vlen = v1 - v0 in
    let a0 = ref v1 in
    while !a0 < !j && is_ws (Bytes.get b !a0) do incr a0 done;
    let alen = !j - !a0 in
    let arg () = Bytes.sub_string b !a0 alen in
    let verb s = span_is b ~pos:v0 ~len:vlen s in
    let no_arg req name =
      if alen = 0 then req else Malformed (name ^ " takes no argument")
    in
    if verb "QUERY" then
      if alen = 0 then Malformed "QUERY needs an atom" else Query (arg ())
    else if verb "TRACE" then
      if alen = 0 then Malformed "TRACE needs an atom" else Trace (arg ())
    else if verb "STRATEGY" then
      if alen = 0 then Malformed "STRATEGY needs an atom"
      else Strategy (arg ())
    else if verb "STATS" then
      if alen = 0 then Stats
      else if span_is b ~pos:!a0 ~len:alen "JSON" then Stats_json
      else Malformed "STATS takes no argument"
    else if verb "HELLO" then
      if alen = 0 then Hello
      else if span_is b ~pos:!a0 ~len:alen "V4" then Hello_v4
      else Malformed "HELLO takes no argument"
    else if verb "SNAPSHOT" then no_arg Snapshot "SNAPSHOT"
    else if verb "PING" then no_arg Ping "PING"
    else if verb "HELP" then no_arg Help "HELP"
    else if verb "FLIGHT" then no_arg Flight "FLIGHT"
    else if verb "QUIT" then no_arg Quit "QUIT"
    else if verb "SHUTDOWN" then no_arg Shutdown "SHUTDOWN"
    else Unknown (Bytes.sub_string b v0 vlen)
  end

let parse line =
  (* Safe: [parse_sub] never mutates the buffer. *)
  parse_sub (Bytes.unsafe_of_string line) ~pos:0 ~len:(String.length line)

let terminator = "END"

let help_lines =
  [
    "HELLO            protocol banner (version, learner)";
    "HELLO V4         upgrade this connection to framed protocol v4";
    "QUERY <atom>     answer a Datalog query, learning from it";
    "TRACE <atom>     answer a query and return its span tree as JSON";
    "STATS            server metrics (text; terminated by END)";
    "STATS JSON       server metrics as a single JSON line";
    "STRATEGY <atom>  the current learned strategy for the atom's form";
    "SNAPSHOT         persist all learned strategies to the state dir";
    "PING             liveness probe";
    "HELP             this text";
    "FLIGHT           flight-recorder dump + retained traces (one JSON line)";
    "QUIT             close this connection";
    "SHUTDOWN         drain in-flight queries and stop the server";
  ]

let one_line s =
  String.map (function '\n' | '\r' -> ' ' | c -> c) s

let answer_line ?(derived = false) ~result ~reductions ~retrievals ~cached
    ~switched () =
  Printf.sprintf "ANSWER %s reductions=%d retrievals=%d%s%s" (one_line result)
    reductions retrievals
    (if cached then if derived then " cached=derived" else " cached" else "")
    (if switched then " switched" else "")

let hello_line ?version:(v = version) ~learner () =
  Printf.sprintf "HELLO strategem/%d learner=%s" v learner

let trace_line json = "TRACE " ^ one_line json

type err_code =
  [ `Parse | `Unknown_verb | `Malformed | `Unsupported | `No_state_dir
  | `Internal ]

let err_code_to_string = function
  | `Parse -> "parse"
  | `Unknown_verb -> "unknown-verb"
  | `Malformed -> "malformed"
  | `Unsupported -> "unsupported"
  | `No_state_dir -> "no-state-dir"
  | `Internal -> "internal"

let err ~code msg =
  Printf.sprintf "ERR %s %s" (err_code_to_string code) (one_line msg)

let busy = "BUSY"
let bye = "BYE"
let pong = "PONG"
