module D = Datalog
open Infgraph
open Strategy

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Atomic + durable writes via the shared [Store.Fsync] discipline
   (temp file fsynced, renamed, directory fsynced): the snapshot thread
   may run while a SNAPSHOT command does; last rename wins and readers
   never see a torn file. *)
let write_file = Store.Fsync.write_file
let ensure_dir = Store.Fsync.ensure_dir

let save ~dir registry =
  ensure_dir dir;
  let entries = Registry.entries registry in
  List.iter
    (fun e ->
      let key = Registry.key e in
      let base = Filename.concat dir key in
      let graph_text, strategy_text =
        Registry.with_live e (fun live ->
            ( Serial.graph_to_string (Core.Live.graph live),
              Persist.dfs_to_string (Core.Live.strategy live) ))
      in
      write_file (base ^ ".form")
        (D.Atom.to_string (Registry.form e) ^ "\n");
      write_file (base ^ ".graph") graph_text;
      write_file (base ^ ".strategy") strategy_text)
    entries;
  List.length entries

let warn fmt =
  Printf.ksprintf (fun s -> Printf.eprintf "strategem serve: %s\n%!" s) fmt

let load_form ~dir registry key =
  let base = Filename.concat dir key in
  let form = D.Parser.parse_atom (String.trim (read_file (base ^ ".form"))) in
  let entry = Registry.find_or_create registry form in
  if Registry.key entry <> key then
    failwith (Printf.sprintf "form file names key %S" (Registry.key entry));
  let strategy_text = read_file (base ^ ".strategy") in
  Registry.with_live entry (fun live ->
      let g = Core.Live.graph live in
      (* The graph is rebuilt from the rule base, not read from the
         snapshot; the saved copy detects a changed knowledge base. *)
      let saved_graph = read_file (base ^ ".graph") in
      if String.trim saved_graph <> String.trim (Serial.graph_to_string g)
      then failwith "saved graph does not match the current rule base";
      Core.Live.set_strategy live (Persist.dfs_of_string g strategy_text))

let load ~dir registry =
  if not (Sys.file_exists dir && Sys.is_directory dir) then 0
  else begin
    let keys =
      Sys.readdir dir |> Array.to_list
      |> List.filter_map (Filename.chop_suffix_opt ~suffix:".form")
      |> List.sort String.compare
    in
    List.fold_left
      (fun n key ->
        match load_form ~dir registry key with
        | () -> n + 1
        | exception e ->
          warn "skipping snapshot %S: %s" key (Printexc.to_string e);
          n)
      0 keys
  end
