(** Reactor connection state: one value per accepted socket, owned by
    the event-loop thread except where noted.

    Each connection starts in sniff mode: the first byte decides the
    dialect ({!Frame.magic} means framed v4, anything else the v2/v3
    line protocol), and a line-mode [HELLO V4] upgrades mid-stream. The
    read side (buffering, dialect detection, incremental parsing) lives
    here; dispatch policy — FIFO stop-and-wait for line mode, free
    pipelining for frames — lives in [server.ml].

    Thread model: each connection is owned by exactly one event loop of
    the reactor fleet (its {!loop} tag, fixed at accept); that loop's
    thread calls {!on_readable} / {!flush} / {!finish_read} and owns the
    pending queue. Worker domains may only call {!send}, {!kill}, and
    the inflight counters. No [Conn.t] is ever shared between loops, so
    all per-connection state stays lock-free apart from the write
    buffer's own mutex. *)

type t

(** {2 Write-buffer budget}

    Shared by every connection of a server: a per-connection cap plus a
    global cap over the sum of all buffered response bytes. A {!send}
    that would breach either cap sheds the connection's whole buffered
    output, leaves one [BUSY] in its place, and flags the connection
    ({!overflowed}) for the owning loop to disconnect after one
    best-effort flush — a reader that never drains its socket costs a
    bounded number of bytes and one connection, not the server's
    memory. *)

type limits

(** [limits ?max_buf ?global_max ()] — [max_buf] caps one connection's
    buffered output (default 64 MiB), [global_max] the sum across all
    connections sharing this value (default [0] = unlimited); [0]
    disables either cap. *)
val limits : ?max_buf:int -> ?global_max:int -> unit -> limits

(** What the read buffer yielded. *)
type incoming =
  | Line_req of Protocol.request
      (** one line-dialect request, parsed in place from the buffer *)
  | Frame_req of Frame.t  (** one complete v4 frame *)
  | Upgrade
      (** a [HELLO V4] line: the mode has already switched to frames;
          the caller must reply with the v4 banner {e before} any
          response to frames that followed in the same buffer *)
  | Junk of string
      (** unrecoverable input (bad magic, oversized line or frame): the
          caller should answer with an error and close *)

type read_status = Continue | Eof | Rerror of string

val create :
  ?accept_ns:int64 ->
  id:int -> loop:int -> peer:string -> ip:string -> limits:limits ->
  Unix.file_descr -> t
(** [accept_ns] (default [0L]) stamps the socket's accept time for the
    lifecycle tracker's [accept] spans. *)

val fd : t -> Unix.file_descr
val id : t -> int

val accept_ns : t -> int64
(** The [accept_ns] given at create ([0L] when not recorded). *)

val loop : t -> int
(** Index of the event loop that owns this connection. *)

val peer : t -> string

val ip : t -> string
(** The peer address without the port — the per-IP accounting key. *)

val touch : t -> now:float -> unit
(** Record activity (a read, or write progress) for the idle-timeout
    sweep. Loop thread only. *)

val last_active : t -> float

val framed : t -> bool
(** True once the connection has sniffed (or upgraded) into v4. *)

(** {2 Read side — loop thread only} *)

val on_readable : t -> emit:(incoming -> unit) -> read_status
(** One non-blocking [read] plus a parse of every complete message now
    buffered, emitted in arrival order. [Continue] covers both progress
    and a spurious wakeup ([EAGAIN]). *)

val finish_read : t -> emit:(incoming -> unit) -> unit
(** Call on EOF: flushes an unterminated trailing line (the blocking
    server honored those — [input_line] yields a final line without a
    newline) and discards any partial frame. *)

val read_closed : t -> bool
val set_read_closed : t -> unit

(** {2 Line-mode FIFO — loop thread only} *)

val push_pending : t -> Protocol.request -> unit
val pop_pending : t -> Protocol.request option
val pending_count : t -> int

(** {2 Write side — any thread} *)

val send : t -> string -> unit
(** Append bytes to the output buffer (dropped once the connection is
    dead). The caller is responsible for waking the loop. *)

val send_mark : t -> string -> int
(** Like {!send}, returning the connection's cumulative enqueued-bytes
    total after the append — compare against {!flushed_bytes} to learn
    when this response has fully drained to the socket. (If the send was
    dropped — dead or overflowed connection — the mark is the unchanged
    total, which may never be reached; check {!dead}/{!overflowed}.) *)

val flushed_bytes : t -> int
(** Cumulative bytes written to the socket since accept. *)

val flush : t -> [ `Flushed | `Partial | `Error ]
(** Write as much buffered output as the socket accepts. Loop thread
    only. [`Error] covers both socket errors and an output buffer past
    its cap (a consumer that never reads). *)

val has_output : t -> bool

(** {2 Lifecycle} *)

val set_closing : t -> unit
(** Close once in-flight responses have been written; stop reading. *)

val closing : t -> bool

val kill : t -> unit
(** Poison: drop buffered and future output. The loop thread reaps the
    fd when it next services the connection. *)

val dead : t -> bool

val overflowed : t -> bool
(** A {!send} hit a write cap: the buffered output was shed and the
    owning loop must disconnect after one flush attempt. *)

val take_shed_bytes : t -> int
(** Bytes dropped by write-cap overflows since the last call (read-and-
    reset, so the caller can feed a monotonic counter). *)

(** {2 Pipeline accounting} *)

val incr_inflight : t -> unit
val decr_inflight : t -> unit
val inflight : t -> int
val pipeline_hwm : t -> int
(** High-water mark of requests simultaneously in flight on this
    connection. *)

val next_rid : t -> int
(** Sequence numbers for line-mode requests (v4 requests carry the
    client's id instead). Loop thread only. *)
