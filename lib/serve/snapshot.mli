(** Strategy durability: persist every form's learned strategy to a state
    directory and reload it on startup, so a restarted server resumes
    with everything it learned.

    Layout — three files per form, keyed by {!Registry.key_of_form}:

    - [<key>.form]     the canonical query-form atom, [Parser.parse_atom]
                       syntax (how to rebuild the learner);
    - [<key>.graph]    the inference graph ({!Infgraph.Serial} format,
                       also consumable by [strategem eval]);
    - [<key>.strategy] the learned strategy ({!Strategy.Persist} format).

    Writes go through a temp file + [rename], so a crash mid-snapshot
    never corrupts the previous one. Loading is defensive: a form whose
    files are malformed, or whose saved graph no longer matches the graph
    rebuilt from the current rule base (the knowledge base changed), is
    skipped with a warning on stderr rather than failing startup. *)

(** [save ~dir registry] — write a snapshot of every registered form.
    Creates [dir] if needed. Returns the number of forms saved. *)
val save : dir:string -> Registry.t -> int

(** [load ~dir registry] — rebuild a learner for every [<key>.form] found
    in [dir] and install its saved strategy. Returns the number of forms
    restored (skips, with a warning, anything malformed or stale). Does
    nothing if [dir] does not exist. *)
val load : dir:string -> Registry.t -> int
