(* Bucket i counts latencies in [2^i, 2^(i+1)) µs; the last bucket is the
   overflow. 22 doubling buckets reach ~4.2 s, plenty for a query. *)
let n_buckets = 22

type histogram = {
  mutable count : int;
  mutable sum_us : float;
  buckets : int array;  (* length n_buckets + 1 *)
}

let hist_create () =
  { count = 0; sum_us = 0.0; buckets = Array.make (n_buckets + 1) 0 }

let bucket_of_us us =
  let us = int_of_float (Float.max us 0.0) in
  let rec go i bound = if us < bound then i else go (i + 1) (bound * 2) in
  Int.min (go 0 2) n_buckets

let hist_record h us =
  h.count <- h.count + 1;
  h.sum_us <- h.sum_us +. us;
  let b = bucket_of_us us in
  h.buckets.(b) <- h.buckets.(b) + 1

let hist_mean h = if h.count = 0 then 0.0 else h.sum_us /. float_of_int h.count

(* Upper bound (µs) of the smallest bucket that covers quantile [q]. *)
let hist_quantile h q =
  if h.count = 0 then 0
  else begin
    let target =
      Int.max 1 (int_of_float (ceil (q *. float_of_int h.count)))
    in
    let acc = ref 0 and result = ref (1 lsl (n_buckets + 1)) in
    (try
       Array.iteri
         (fun i n ->
           acc := !acc + n;
           if !acc >= target then begin
             result := 1 lsl (i + 1);
             raise Exit
           end)
         h.buckets
     with Exit -> ());
    !result
  end

type form_stats = {
  mutable queries : int;
  mutable answered : int;
  mutable climbs : int;
  hist : histogram;
  mutable strategy : string;
}

type cache_stats = {
  enabled : bool;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
  capacity_bytes : int;
  memo_hits : int;
  memo_misses : int;
  memo_invalidations : int;
  memo_entries : int;
}

let no_cache_stats =
  {
    enabled = false;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    entries = 0;
    bytes = 0;
    capacity_bytes = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_invalidations = 0;
    memo_entries = 0;
  }

type t = {
  lock : Mutex.t;
  started : float;
  mutable connections : int;
  mutable busy : int;
  mutable errors : int;
  mutable snapshots : int;
  mutable snapshot_forms : int;
  mutable forms_loaded : int;
  mutable queue_hwm : int;
  queue_wait : histogram;
  traces : Trace.Ring.t option;  (* --trace-sample ring; lock-guarded *)
  forms : (string, form_stats) Hashtbl.t;
  (* The cache keeps its own (sharded) counters; rendering pulls them
     through this provider rather than double-counting here. *)
  mutable cache_provider : (unit -> cache_stats) option;
}

let create ?(trace_capacity = 0) () =
  {
    lock = Mutex.create ();
    started = Unix.gettimeofday ();
    connections = 0;
    busy = 0;
    errors = 0;
    snapshots = 0;
    snapshot_forms = 0;
    forms_loaded = 0;
    queue_hwm = 0;
    queue_wait = hist_create ();
    traces =
      (if trace_capacity > 0 then
         Some (Trace.Ring.create ~capacity:trace_capacity)
       else None);
    forms = Hashtbl.create 8;
    cache_provider = None;
  }

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let form_stats t key =
  match Hashtbl.find_opt t.forms key with
  | Some fs -> fs
  | None ->
    let fs =
      { queries = 0; answered = 0; climbs = 0; hist = hist_create ();
        strategy = "" }
    in
    Hashtbl.add t.forms key fs;
    fs

let connection t = with_lock t (fun () -> t.connections <- t.connections + 1)
let busy t = with_lock t (fun () -> t.busy <- t.busy + 1)
let error t = with_lock t (fun () -> t.errors <- t.errors + 1)

let snapshot_saved t ~forms =
  with_lock t (fun () ->
      t.snapshots <- t.snapshots + 1;
      t.snapshot_forms <- t.snapshot_forms + forms)

let forms_loaded t n =
  with_lock t (fun () -> t.forms_loaded <- t.forms_loaded + n)

let observe_queue_depth t d =
  with_lock t (fun () -> if d > t.queue_hwm then t.queue_hwm <- d)

let queue_waited t ~wait_us =
  with_lock t (fun () -> hist_record t.queue_wait wait_us)

let trace_sampling t = t.traces <> None

let trace t json =
  match t.traces with
  | None -> ()
  | Some ring -> with_lock t (fun () -> Trace.Ring.add ring json)

let recent_traces t =
  match t.traces with
  | None -> []
  | Some ring -> with_lock t (fun () -> Trace.Ring.to_list ring)

let query t ~form ~latency_us ~answered ~switched =
  with_lock t (fun () ->
      let fs = form_stats t form in
      fs.queries <- fs.queries + 1;
      if answered then fs.answered <- fs.answered + 1;
      if switched then fs.climbs <- fs.climbs + 1;
      hist_record fs.hist latency_us)

let set_form_strategy t ~form s =
  with_lock t (fun () -> (form_stats t form).strategy <- s)

let set_cache_provider t f = with_lock t (fun () -> t.cache_provider <- Some f)

let cache_stats t =
  match with_lock t (fun () -> t.cache_provider) with
  | None -> None
  | Some f -> Some (f ())

let fold_forms t f init =
  Hashtbl.fold (fun k fs acc -> f k fs acc) t.forms init

let queries_total t =
  with_lock t (fun () -> fold_forms t (fun _ fs n -> n + fs.queries) 0)

let climbs_total t =
  with_lock t (fun () -> fold_forms t (fun _ fs n -> n + fs.climbs) 0)

let busy_total t = with_lock t (fun () -> t.busy)
let queue_high_water t = with_lock t (fun () -> t.queue_hwm)

let sorted_forms t =
  fold_forms t (fun k fs acc -> (k, fs) :: acc) []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let cache_lines cs =
  [
    Printf.sprintf "cache_enabled %d" (if cs.enabled then 1 else 0);
    Printf.sprintf "cache_hits %d" cs.hits;
    Printf.sprintf "cache_misses %d" cs.misses;
    Printf.sprintf "cache_evictions %d" cs.evictions;
    Printf.sprintf "cache_invalidations %d" cs.invalidations;
    Printf.sprintf "cache_entries %d" cs.entries;
    Printf.sprintf "cache_bytes %d" cs.bytes;
    Printf.sprintf "cache_capacity_bytes %d" cs.capacity_bytes;
    Printf.sprintf "memo_hits %d" cs.memo_hits;
    Printf.sprintf "memo_misses %d" cs.memo_misses;
    Printf.sprintf "memo_invalidations %d" cs.memo_invalidations;
    Printf.sprintf "memo_entries %d" cs.memo_entries;
  ]

let render_text t =
  (* Pull cache counters before taking the metrics lock: the provider has
     its own locks and must not nest inside ours. *)
  let cache = cache_stats t in
  with_lock t (fun () ->
      let totals name f = Printf.sprintf "%s %d" name (fold_forms t f 0) in
      let counters =
        [
          Printf.sprintf "uptime_seconds %d"
            (int_of_float (Unix.gettimeofday () -. t.started));
          Printf.sprintf "connections_total %d" t.connections;
          totals "queries_total" (fun _ fs n -> n + fs.queries);
          totals "answered_total" (fun _ fs n -> n + fs.answered);
          totals "climbs_total" (fun _ fs n -> n + fs.climbs);
          Printf.sprintf "busy_total %d" t.busy;
          Printf.sprintf "errors_total %d" t.errors;
          Printf.sprintf "snapshots_total %d" t.snapshots;
          Printf.sprintf "forms_loaded %d" t.forms_loaded;
          Printf.sprintf "forms_active %d" (Hashtbl.length t.forms);
          Printf.sprintf "queue_high_water %d" t.queue_hwm;
          Printf.sprintf "queue_wait_count %d" t.queue_wait.count;
          Printf.sprintf "queue_wait_mean_us %.0f" (hist_mean t.queue_wait);
          Printf.sprintf "queue_wait_p95_us %d"
            (hist_quantile t.queue_wait 0.95);
        ]
      in
      let counters =
        match cache with
        | None -> counters
        | Some cs -> counters @ cache_lines cs
      in
      let form_lines =
        List.map
          (fun (key, fs) ->
            Printf.sprintf
              "form %s queries %d answered %d climbs %d mean_us %.0f \
               p50_us %d p95_us %d p99_us %d strategy %s"
              key fs.queries fs.answered fs.climbs (hist_mean fs.hist)
              (hist_quantile fs.hist 0.50) (hist_quantile fs.hist 0.95)
              (hist_quantile fs.hist 0.99) fs.strategy)
          (sorted_forms t)
      in
      counters @ form_lines)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schema_version = 1

(* Versioned independently of the top-level schema: the [cache] block is
   additive (schema stays 1) but carries its own version so its fields can
   evolve without a top-level bump. *)
let cache_block_version = 1

let cache_json cs =
  Printf.sprintf
    "\"cache\":{\"version\":%d,\"enabled\":%b,\"hits\":%d,\"misses\":%d,\
     \"evictions\":%d,\"invalidations\":%d,\"entries\":%d,\"bytes\":%d,\
     \"capacity_bytes\":%d,\"memo\":{\"hits\":%d,\"misses\":%d,\
     \"invalidations\":%d,\"entries\":%d}},"
    cache_block_version cs.enabled cs.hits cs.misses cs.evictions
    cs.invalidations cs.entries cs.bytes cs.capacity_bytes cs.memo_hits
    cs.memo_misses cs.memo_invalidations cs.memo_entries

let render_json t =
  (* Same pre-pull as [render_text]: provider locks must not nest in ours. *)
  let cache = cache_stats t in
  with_lock t (fun () ->
      let buf = Buffer.create 512 in
      Buffer.add_string buf
        (Printf.sprintf
           "{\"schema\":%d,\"uptime_seconds\":%d,\"connections_total\":%d,\
            \"queries_total\":%d,\"answered_total\":%d,\
            \"climbs_total\":%d,\"busy_total\":%d,\"errors_total\":%d,\
            \"snapshots_total\":%d,\"forms_loaded\":%d,\
            \"forms_active\":%d,\"queue_high_water\":%d,\
            \"queue_wait\":{\"count\":%d,\"mean_us\":%.1f,\"p50_us\":%d,\
            \"p95_us\":%d,\"p99_us\":%d},"
           schema_version
           (int_of_float (Unix.gettimeofday () -. t.started))
           t.connections
           (fold_forms t (fun _ fs n -> n + fs.queries) 0)
           (fold_forms t (fun _ fs n -> n + fs.answered) 0)
           (fold_forms t (fun _ fs n -> n + fs.climbs) 0)
           t.busy t.errors t.snapshots t.forms_loaded
           (Hashtbl.length t.forms) t.queue_hwm t.queue_wait.count
           (hist_mean t.queue_wait)
           (hist_quantile t.queue_wait 0.50)
           (hist_quantile t.queue_wait 0.95)
           (hist_quantile t.queue_wait 0.99));
      (match cache with
      | None -> ()
      | Some cs -> Buffer.add_string buf (cache_json cs));
      Buffer.add_string buf "\"forms\":{";
      List.iteri
        (fun i (key, fs) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf
               "\"%s\":{\"queries\":%d,\"answered\":%d,\"climbs\":%d,\
                \"mean_us\":%.1f,\"p50_us\":%d,\"p95_us\":%d,\
                \"p99_us\":%d,\"strategy\":\"%s\"}"
               (json_escape key) fs.queries fs.answered fs.climbs
               (hist_mean fs.hist) (hist_quantile fs.hist 0.50)
               (hist_quantile fs.hist 0.95) (hist_quantile fs.hist 0.99)
               (json_escape fs.strategy)))
        (sorted_forms t);
      Buffer.add_string buf "}";
      (match t.traces with
      | None -> ()
      | Some ring ->
        Buffer.add_string buf ",\"recent_traces\":[";
        List.iteri
          (fun i json ->
            if i > 0 then Buffer.add_char buf ',';
            (* Entries are already rendered JSON objects. *)
            Buffer.add_string buf json)
          (Trace.Ring.to_list ring);
        Buffer.add_char buf ']');
      Buffer.add_char buf '}';
      Buffer.contents buf)
