(* The STATS facade: every counter the daemon reports lives in an
   Obs.Registry instrument, so the same underlying numbers feed both
   the TCP STATS/STATS JSON renderers (byte-stable for existing
   clients) and the Prometheus /metrics endpoint. This module owns the
   metric-name inventory (everything is prefixed [strategem_]; see
   docs/OBSERVABILITY.md) plus the few STATS-only bits a scraper has no
   use for: per-form strategy strings and the sampled-trace ring. *)

module R = Obs.Registry

type cache_stats = {
  enabled : bool;
  hits : int;
  misses : int;
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
  capacity_bytes : int;
  memo_hits : int;
  memo_misses : int;
  memo_invalidations : int;
  memo_entries : int;
  subsume : bool;
  derived_hits : int;
  derived_scan_entries : int;
  subsume_misses : int;
  index_keys : int;
}

let no_cache_stats =
  {
    enabled = false;
    hits = 0;
    misses = 0;
    evictions = 0;
    invalidations = 0;
    entries = 0;
    bytes = 0;
    capacity_bytes = 0;
    memo_hits = 0;
    memo_misses = 0;
    memo_invalidations = 0;
    memo_entries = 0;
    subsume = false;
    derived_hits = 0;
    derived_scan_entries = 0;
    subsume_misses = 0;
    index_keys = 0;
  }

(* The paged store's counters, pulled straight from [Store.stats] (the
   store keeps its own counters under its own lock; metrics never
   double-count). *)
type store_stats = Store.stats

(* Per-loop hot-path handles, obtained once by each event loop of the
   reactor fleet at spawn — the loop updates only its own (uncontended)
   series. *)
type loop_handles = {
  loop_id : int;
  lg_conns : R.Gauge.t;
  lc_wakeups : R.Counter.t;
  lg_pipeline : R.Gauge.t;
  (* stage -> child of the {stage, loop} latency histogram family;
     filled lazily, loop thread only *)
  lh_stage_fam : R.Histogram.fam;
  lh_stages : (string, R.Histogram.t) Hashtbl.t;
  lg_exemplar : R.Gauge.t;
}

type form_handles = {
  c_queries : R.Counter.t;
  c_answered : R.Counter.t;
  c_climbs : R.Counter.t;
  h_latency : R.Histogram.t;
  g_eps : R.Gauge.t;
  g_delta : R.Gauge.t;
  g_samples : R.Gauge.t;
  g_samples_total : R.Gauge.t;
  g_learner_climbs : R.Gauge.t;
  g_finished : R.Gauge.t;
  mutable strategy : string;
}

type t = {
  reg : R.t;
  started : float;
  lock : Mutex.t;  (* guards [forms] creation and [cache_provider] *)
  forms : (string, form_handles) Hashtbl.t;
  trace_lock : Mutex.t;
  traces : Trace.Ring.t option;
  mutable cache_provider : (unit -> cache_stats) option;
  mutable store_provider : (unit -> store_stats) option;
  (* Window high-water accumulator, consumed (reset) by whichever of
     STATS or a /metrics scrape reads it first — "max depth since the
     last read". The all-time high-water gauge never resets. *)
  window_hwm : float Atomic.t;
  g_domains : R.Gauge.t;
  f_domain_conns : R.Counter.fam;
  f_domain_busy_us : R.Counter.fam;
  c_connections : R.Counter.t;
  c_busy : R.Counter.t;
  c_errors : R.Counter.t;
  c_snapshots : R.Counter.t;
  c_snapshot_forms : R.Counter.t;
  c_forms_loaded : R.Counter.t;
  g_uptime : R.Gauge.t;
  g_forms_active : R.Gauge.t;
  g_queue_depth : R.Gauge.t;
  g_queue_hwm : R.Gauge.t;
  g_queue_hwm_window : R.Gauge.t;
  g_conns_open : R.Gauge.t;
  g_pipeline_depth : R.Gauge.t;
  g_pipeline_hwm : R.Gauge.t;
  g_loops : R.Gauge.t;
  f_loop_conns : R.Gauge.fam;
  f_loop_wakeups : R.Counter.fam;
  f_loop_pipeline : R.Gauge.fam;
  f_stage_latency : R.Histogram.fam;
  f_retained : R.Counter.fam;
  (* the reason set is closed (slow / error / shed): pre-labeled handles
     so the per-retention hot path skips the family mutex + hash *)
  retained_by : (string * R.Counter.t) list;
  f_retained_exemplar : R.Gauge.fam;
  c_lifecycle : R.Counter.t;
  retained_count : int Atomic.t;  (* sum over reasons, for STATS *)
  mutable loop_list : loop_handles list;  (* guarded by [lock] *)
  c_write_overflow : R.Counter.t;
  c_write_shed_bytes : R.Counter.t;
  c_idle_closed : R.Counter.t;
  c_ip_limited : R.Counter.t;
  mutable backend : string;  (* reactor backend: "epoll" / "select" *)
  h_queue_wait : R.Histogram.t;
  g_cache_enabled : R.Gauge.t;
  c_cache_hits : R.Counter.t;
  c_cache_misses : R.Counter.t;
  c_cache_evictions : R.Counter.t;
  c_cache_invalidations : R.Counter.t;
  g_cache_entries : R.Gauge.t;
  g_cache_bytes : R.Gauge.t;
  g_cache_capacity : R.Gauge.t;
  c_memo_hits : R.Counter.t;
  c_memo_misses : R.Counter.t;
  c_memo_invalidations : R.Counter.t;
  g_memo_entries : R.Gauge.t;
  g_cache_subsume : R.Gauge.t;
  c_cache_derived_hits : R.Counter.t;
  c_cache_derived_scan : R.Counter.t;
  c_cache_subsume_misses : R.Counter.t;
  g_cache_index_keys : R.Gauge.t;
  h_cache_filter : R.Histogram.t;
  g_store_enabled : R.Gauge.t;
  g_store_page_size : R.Gauge.t;
  g_store_pages : R.Gauge.t;
  g_store_pool_pages : R.Gauge.t;
  c_store_pool_hits : R.Counter.t;
  c_store_pool_misses : R.Counter.t;
  c_store_pool_evictions : R.Counter.t;
  c_store_page_reads : R.Counter.t;
  c_store_page_writes : R.Counter.t;
  g_store_wal_bytes : R.Gauge.t;
  c_store_wal_appends : R.Counter.t;
  c_store_wal_syncs : R.Counter.t;
  c_store_checkpoints : R.Counter.t;
  g_store_checkpoint_age : R.Gauge.t;
  g_store_facts : R.Gauge.t;
  g_store_symbols : R.Gauge.t;
  g_store_generation : R.Gauge.t;
  f_queries : R.Counter.fam;
  f_answered : R.Counter.fam;
  f_climbs : R.Counter.fam;
  f_latency : R.Histogram.fam;
  f_learner_eps : R.Gauge.fam;
  f_learner_delta : R.Gauge.fam;
  f_learner_samples : R.Gauge.fam;
  f_learner_samples_total : R.Gauge.fam;
  f_learner_climbs : R.Gauge.fam;
  f_learner_finished : R.Gauge.fam;
}

let mirror_cache t cs =
  R.Gauge.set t.g_cache_enabled (if cs.enabled then 1.0 else 0.0);
  R.Counter.set t.c_cache_hits cs.hits;
  R.Counter.set t.c_cache_misses cs.misses;
  R.Counter.set t.c_cache_evictions cs.evictions;
  R.Counter.set t.c_cache_invalidations cs.invalidations;
  R.Gauge.set t.g_cache_entries (float_of_int cs.entries);
  R.Gauge.set t.g_cache_bytes (float_of_int cs.bytes);
  R.Gauge.set t.g_cache_capacity (float_of_int cs.capacity_bytes);
  R.Counter.set t.c_memo_hits cs.memo_hits;
  R.Counter.set t.c_memo_misses cs.memo_misses;
  R.Counter.set t.c_memo_invalidations cs.memo_invalidations;
  R.Gauge.set t.g_memo_entries (float_of_int cs.memo_entries);
  R.Gauge.set t.g_cache_subsume (if cs.subsume then 1.0 else 0.0);
  R.Counter.set t.c_cache_derived_hits cs.derived_hits;
  R.Counter.set t.c_cache_derived_scan cs.derived_scan_entries;
  R.Counter.set t.c_cache_subsume_misses cs.subsume_misses;
  R.Gauge.set t.g_cache_index_keys (float_of_int cs.index_keys)

let mirror_store t (ss : store_stats) =
  R.Gauge.set t.g_store_enabled 1.0;
  R.Gauge.set t.g_store_page_size (float_of_int ss.Store.page_size);
  R.Gauge.set t.g_store_pages (float_of_int ss.Store.pages);
  R.Gauge.set t.g_store_pool_pages (float_of_int ss.Store.pool_pages);
  R.Counter.set t.c_store_pool_hits ss.Store.pool_hits;
  R.Counter.set t.c_store_pool_misses ss.Store.pool_misses;
  R.Counter.set t.c_store_pool_evictions ss.Store.pool_evictions;
  R.Counter.set t.c_store_page_reads ss.Store.page_reads;
  R.Counter.set t.c_store_page_writes ss.Store.page_writes;
  R.Gauge.set t.g_store_wal_bytes (float_of_int ss.Store.wal_bytes);
  R.Counter.set t.c_store_wal_appends ss.Store.wal_appends;
  R.Counter.set t.c_store_wal_syncs ss.Store.wal_syncs;
  R.Counter.set t.c_store_checkpoints ss.Store.checkpoints;
  R.Gauge.set t.g_store_checkpoint_age
    (Float.max 0.0 (Unix.gettimeofday () -. ss.Store.checkpoint_unix));
  R.Gauge.set t.g_store_facts (float_of_int ss.Store.facts);
  R.Gauge.set t.g_store_symbols (float_of_int ss.Store.symbols);
  R.Gauge.set t.g_store_generation (float_of_int ss.Store.generation)

let create ?(trace_capacity = 0) () =
  let reg = R.create () in
  let counter help name = R.Counter.solo (R.Counter.v reg ~help name) in
  let gauge help name = R.Gauge.solo (R.Gauge.v reg ~help name) in
  let f_retained =
    R.Counter.v reg
      ~help:
        "Request traces retained by tail-based sampling, by reason \
         (slow / error / shed)"
      ~labels:[ "reason" ] "strategem_traces_retained_total"
  in
  let t =
    {
      reg;
      started = Unix.gettimeofday ();
      lock = Mutex.create ();
      forms = Hashtbl.create 8;
      trace_lock = Mutex.create ();
      traces =
        (if trace_capacity > 0 then
           Some (Trace.Ring.create ~capacity:trace_capacity)
         else None);
      cache_provider = None;
      store_provider = None;
      window_hwm = Atomic.make 0.0;
      g_domains =
        gauge "Worker domains running (after clamping to the host's \
               recommended domain count)" "strategem_domains";
      f_domain_conns =
        R.Counter.v reg ~help:"Connections served, per worker domain"
          ~labels:[ "domain" ] "strategem_domain_connections_total";
      f_domain_busy_us =
        R.Counter.v reg
          ~help:"Microseconds spent serving connections, per worker domain"
          ~labels:[ "domain" ] "strategem_domain_busy_us_total";
      c_connections =
        counter "Connections admitted" "strategem_connections_total";
      c_busy = counter "Connections shed with BUSY" "strategem_busy_total";
      c_errors = counter "Protocol-level errors" "strategem_errors_total";
      c_snapshots =
        counter "Strategy snapshots written" "strategem_snapshots_total";
      c_snapshot_forms =
        counter "Forms written across all snapshots"
          "strategem_snapshot_forms_total";
      c_forms_loaded =
        counter "Forms whose strategies were reloaded at startup"
          "strategem_forms_loaded_total";
      g_uptime = gauge "Seconds since the daemon started" "strategem_uptime_seconds";
      g_forms_active =
        gauge "Query forms with a live learner" "strategem_forms_active";
      g_queue_depth =
        gauge "Admission-queue depth now" "strategem_queue_depth";
      g_queue_hwm =
        gauge "All-time admission-queue high water"
          "strategem_queue_depth_high_water";
      g_queue_hwm_window =
        gauge "Admission-queue high water since the last STATS/scrape"
          "strategem_queue_depth_high_water_window";
      g_conns_open = gauge "Connections currently open" "strategem_conns_open";
      g_pipeline_depth =
        gauge
          "Requests in flight across all connections (dispatched, \
           response not yet enqueued)"
          "strategem_pipeline_depth";
      g_pipeline_hwm =
        gauge "All-time high water of in-flight requests"
          "strategem_pipeline_depth_high_water";
      g_loops =
        gauge "Event loops in the reactor fleet" "strategem_loops";
      f_loop_conns =
        R.Gauge.v reg ~help:"Connections currently owned, per event loop"
          ~labels:[ "loop" ] "strategem_loop_conns_open";
      f_loop_wakeups =
        R.Counter.v reg
          ~help:"Coalesced wake deliveries drained, per event loop"
          ~labels:[ "loop" ] "strategem_loop_wakeups_total";
      f_loop_pipeline =
        R.Gauge.v reg
          ~help:"Requests in flight on this loop's connections"
          ~labels:[ "loop" ] "strategem_loop_pipeline_depth";
      f_stage_latency =
        R.Histogram.v reg
          ~help:
            "Request-lifecycle latency decomposition (microseconds), per \
             stage per owning event loop"
          ~labels:[ "stage"; "loop" ] "strategem_stage_latency_us";
      f_retained;
      retained_by =
        List.map
          (fun reason -> (reason, R.Counter.labels f_retained [ reason ]))
          [ "slow"; "error"; "shed" ];
      f_retained_exemplar =
        R.Gauge.v reg
          ~help:
            "Sequence number of the loop's most recently retained trace \
             (exemplar: quote it to FLIGHT / /debug/flight)"
          ~labels:[ "loop" ] "strategem_trace_retained_exemplar";
      c_lifecycle =
        counter "Requests finalized by the lifecycle tracker"
          "strategem_lifecycle_requests_total";
      retained_count = Atomic.make 0;
      loop_list = [];
      c_write_overflow =
        counter
          "Connections disconnected for breaching a write-buffer cap"
          "strategem_write_overflow_total";
      c_write_shed_bytes =
        counter "Buffered response bytes dropped by write-cap overflows"
          "strategem_write_shed_bytes_total";
      c_idle_closed =
        counter "Connections closed by the idle timeout"
          "strategem_idle_closed_total";
      c_ip_limited =
        counter "Connections refused by the per-IP cap"
          "strategem_ip_limited_total";
      backend = "";
      h_queue_wait =
        R.Histogram.solo
          (R.Histogram.v reg ~help:"Admission-queue wait (microseconds)"
             "strategem_queue_wait_us");
      g_cache_enabled =
        gauge "1 when the answer cache is on" "strategem_cache_enabled";
      c_cache_hits = counter "Answer-cache hits" "strategem_cache_hits_total";
      c_cache_misses =
        counter "Answer-cache misses" "strategem_cache_misses_total";
      c_cache_evictions =
        counter "Answer-cache LRU evictions" "strategem_cache_evictions_total";
      c_cache_invalidations =
        counter "Answer-cache entries dropped after DB mutations"
          "strategem_cache_invalidations_total";
      g_cache_entries =
        gauge "Answer-cache resident entries" "strategem_cache_entries";
      g_cache_bytes =
        gauge "Answer-cache resident bytes (estimated)" "strategem_cache_bytes";
      g_cache_capacity =
        gauge "Answer-cache capacity in bytes" "strategem_cache_capacity_bytes";
      c_memo_hits = counter "Subgoal-memo hits" "strategem_memo_hits_total";
      c_memo_misses =
        counter "Subgoal-memo misses" "strategem_memo_misses_total";
      c_memo_invalidations =
        counter "Subgoal-memo invalidations" "strategem_memo_invalidations_total";
      g_memo_entries =
        gauge "Subgoal-memo resident entries" "strategem_memo_entries";
      g_cache_subsume =
        gauge "1 when subsumption-based answer reuse is on"
          "strategem_cache_subsume_enabled";
      c_cache_derived_hits =
        counter
          "Answer-cache derived hits (answered by filtering a more \
           general cached entry's answer set)"
          "strategem_cache_derived_hits_total";
      c_cache_derived_scan =
        counter
          "Candidate generalizations examined across subsumption probes"
          "strategem_cache_derived_scan_entries_total";
      c_cache_subsume_misses =
        counter
          "Subsumption probes that found no usable generalization"
          "strategem_cache_subsume_misses_total";
      g_cache_index_keys =
        gauge "Keys registered in the subsumption index"
          "strategem_cache_index_keys";
      h_cache_filter =
        R.Histogram.solo
          (R.Histogram.v reg
             ~help:
               "Latency of subsumption probes (candidate walk + answer-set \
                filtering) on exact-key misses (microseconds)"
             "strategem_cache_filter_latency_us");
      g_store_enabled =
        gauge "1 when the database is backed by the paged store"
          "strategem_store_enabled";
      g_store_page_size =
        gauge "Paged-store page size" "strategem_store_page_size_bytes";
      g_store_pages =
        gauge "Pages allocated (checkpoint image plus growth)"
          "strategem_store_pages";
      g_store_pool_pages =
        gauge "Buffer-pool frames" "strategem_store_pool_pages";
      c_store_pool_hits =
        counter "Buffer-pool hits" "strategem_store_pool_hits_total";
      c_store_pool_misses =
        counter "Buffer-pool misses" "strategem_store_pool_misses_total";
      c_store_pool_evictions =
        counter "Buffer-pool evictions" "strategem_store_pool_evictions_total";
      c_store_page_reads =
        counter "Pages read from disk" "strategem_store_page_reads_total";
      c_store_page_writes =
        counter "Dirty pages spilled to disk"
          "strategem_store_page_writes_total";
      g_store_wal_bytes =
        gauge "WAL bytes since the last checkpoint" "strategem_store_wal_bytes";
      c_store_wal_appends =
        counter "WAL records appended" "strategem_store_wal_appends_total";
      c_store_wal_syncs =
        counter "WAL group-commit fsyncs" "strategem_store_wal_syncs_total";
      c_store_checkpoints =
        counter "Checkpoints taken this run" "strategem_store_checkpoints_total";
      g_store_checkpoint_age =
        gauge "Seconds since the last checkpoint (or open)"
          "strategem_store_checkpoint_age_seconds";
      g_store_facts = gauge "Facts in the paged store" "strategem_store_facts";
      g_store_symbols =
        gauge "Symbols in the persistent catalog" "strategem_store_symbols";
      g_store_generation =
        gauge "Persistent database generation" "strategem_store_generation";
      f_queries =
        R.Counter.v reg ~help:"Queries answered" ~labels:[ "form" ]
          "strategem_queries_total";
      f_answered =
        R.Counter.v reg ~help:"Queries that found an answer"
          ~labels:[ "form" ] "strategem_answers_total";
      f_climbs =
        R.Counter.v reg ~help:"Strategy climbs adopted" ~labels:[ "form" ]
          "strategem_climbs_total";
      f_latency =
        R.Histogram.v reg ~help:"Query latency (microseconds)"
          ~labels:[ "form" ] "strategem_query_latency_us";
      f_learner_eps =
        R.Gauge.v reg
          ~help:
            "Learner accuracy bound epsilon (per-learner definition; \
             converges toward 0 as evidence accumulates)"
          ~labels:[ "form" ] "strategem_learner_epsilon";
      f_learner_delta =
        R.Gauge.v reg ~help:"Learner confidence budget delta"
          ~labels:[ "form" ] "strategem_learner_delta";
      f_learner_samples =
        R.Gauge.v reg ~help:"Learner current sample set size"
          ~labels:[ "form" ] "strategem_learner_samples";
      f_learner_samples_total =
        R.Gauge.v reg ~help:"Observations fed to the learner"
          ~labels:[ "form" ] "strategem_learner_samples_total";
      f_learner_climbs =
        R.Gauge.v reg
          ~help:"Climbs by the current learner (resets on reseed)"
          ~labels:[ "form" ] "strategem_learner_climbs";
      f_learner_finished =
        R.Gauge.v reg ~help:"1 once the learner finished/converged"
          ~labels:[ "form" ] "strategem_learner_finished";
    }
  in
  R.on_collect reg (fun () ->
      R.Gauge.set t.g_uptime (Unix.gettimeofday () -. t.started);
      Mutex.lock t.lock;
      let n_forms = Hashtbl.length t.forms in
      let provider = t.cache_provider in
      let sprovider = t.store_provider in
      Mutex.unlock t.lock;
      R.Gauge.set t.g_forms_active (float_of_int n_forms);
      R.Gauge.set t.g_queue_hwm_window (Atomic.exchange t.window_hwm 0.0);
      (* The providers have their own locks; called outside ours. *)
      (match provider with Some f -> mirror_cache t (f ()) | None -> ());
      match sprovider with Some f -> mirror_store t (f ()) | None -> ());
  t

let registry t = t.reg
let render_prometheus t = Obs.Expo.render t.reg

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let form_handles t key =
  with_lock t (fun () ->
      match Hashtbl.find_opt t.forms key with
      | Some fh -> fh
      | None ->
        let l = [ key ] in
        let fh =
          {
            c_queries = R.Counter.labels t.f_queries l;
            c_answered = R.Counter.labels t.f_answered l;
            c_climbs = R.Counter.labels t.f_climbs l;
            h_latency = R.Histogram.labels t.f_latency l;
            g_eps = R.Gauge.labels t.f_learner_eps l;
            g_delta = R.Gauge.labels t.f_learner_delta l;
            g_samples = R.Gauge.labels t.f_learner_samples l;
            g_samples_total = R.Gauge.labels t.f_learner_samples_total l;
            g_learner_climbs = R.Gauge.labels t.f_learner_climbs l;
            g_finished = R.Gauge.labels t.f_learner_finished l;
            strategy = "";
          }
        in
        (* A new form's epsilon starts at +inf: no evidence yet. *)
        R.Gauge.set fh.g_eps Float.infinity;
        Hashtbl.add t.forms key fh;
        fh)

let set_domains t n = R.Gauge.set t.g_domains (float_of_int n)
let domains t = int_of_float (R.Gauge.value t.g_domains)

type domain_handles = {
  dh_connections : R.Counter.t;
  dh_busy_us : R.Counter.t;
}

(* Cached by each worker at spawn, so the per-connection updates touch
   only the two (uncontended, per-domain) counters. *)
let domain_handles t ~domain =
  let l = [ string_of_int domain ] in
  {
    dh_connections = R.Counter.labels t.f_domain_conns l;
    dh_busy_us = R.Counter.labels t.f_domain_busy_us l;
  }

let domain_served dh ~busy_us =
  R.Counter.inc dh.dh_connections;
  R.Counter.add dh.dh_busy_us (int_of_float busy_us)

let set_loops t n = R.Gauge.set t.g_loops (float_of_int n)
let loops t = int_of_float (R.Gauge.value t.g_loops)

let loop_handles t ~loop =
  let l = [ string_of_int loop ] in
  let lh =
    {
      loop_id = loop;
      lg_conns = R.Gauge.labels t.f_loop_conns l;
      lc_wakeups = R.Counter.labels t.f_loop_wakeups l;
      lg_pipeline = R.Gauge.labels t.f_loop_pipeline l;
      lh_stage_fam = t.f_stage_latency;
      lh_stages = Hashtbl.create 8;
      lg_exemplar = R.Gauge.labels t.f_retained_exemplar l;
    }
  in
  with_lock t (fun () -> t.loop_list <- lh :: t.loop_list);
  lh

(* Loop thread only (like every [lh] update): the per-stage child cache
   needs no lock. *)
let observe_stage lh ~stage us =
  let h =
    match Hashtbl.find_opt lh.lh_stages stage with
    | Some h -> h
    | None ->
      let h =
        R.Histogram.labels lh.lh_stage_fam
          [ stage; string_of_int lh.loop_id ]
      in
      Hashtbl.add lh.lh_stages stage h;
      h
  in
  R.Histogram.observe h us

let lifecycle_finalized t = R.Counter.inc t.c_lifecycle
let lifecycle_requests t = R.Counter.value t.c_lifecycle

let trace_retained t lh ~reason ~seq =
  (match List.assoc_opt reason t.retained_by with
  | Some c -> R.Counter.inc c
  | None -> R.Counter.inc (R.Counter.labels t.f_retained [ reason ]));
  R.Gauge.set lh.lg_exemplar (float_of_int seq);
  ignore (Atomic.fetch_and_add t.retained_count 1)

let traces_retained t = Atomic.get t.retained_count

let loop_conn_opened lh = R.Gauge.add lh.lg_conns 1.0
let loop_conn_closed lh = R.Gauge.add lh.lg_conns (-1.0)
let loop_conns lh = int_of_float (R.Gauge.value lh.lg_conns)

(* The loop owns the monotonic count (Eventloop.wakeups); the series
   mirrors it. *)
let set_loop_wakeups lh n = R.Counter.set lh.lc_wakeups n
let set_loop_pipeline_depth lh n = R.Gauge.set lh.lg_pipeline (float_of_int n)

let write_overflow t ~shed_bytes =
  R.Counter.inc t.c_write_overflow;
  R.Counter.add t.c_write_shed_bytes shed_bytes

let write_shed_bytes t n = R.Counter.add t.c_write_shed_bytes n
let idle_closed t = R.Counter.inc t.c_idle_closed
let ip_limited t = R.Counter.inc t.c_ip_limited

let sorted_loops t =
  with_lock t (fun () -> t.loop_list)
  |> List.sort (fun a b -> compare a.loop_id b.loop_id)

let connection t = R.Counter.inc t.c_connections
let busy t = R.Counter.inc t.c_busy
let error t = R.Counter.inc t.c_errors
let conn_opened t = R.Gauge.add t.g_conns_open 1.0
let conn_closed t = R.Gauge.add t.g_conns_open (-1.0)
let conns_open t = int_of_float (R.Gauge.value t.g_conns_open)

let set_pipeline_depth t d =
  let d = float_of_int d in
  R.Gauge.set t.g_pipeline_depth d;
  R.Gauge.set_max t.g_pipeline_hwm d

let set_backend t s = t.backend <- s

let snapshot_saved t ~forms =
  R.Counter.inc t.c_snapshots;
  R.Counter.add t.c_snapshot_forms forms

let forms_loaded t n = R.Counter.add t.c_forms_loaded n

let observe_queue_depth t d =
  let d = float_of_int d in
  R.Gauge.set t.g_queue_depth d;
  R.Gauge.set_max t.g_queue_hwm d;
  let rec bump () =
    let cur = Atomic.get t.window_hwm in
    if d > cur && not (Atomic.compare_and_set t.window_hwm cur d) then bump ()
  in
  bump ()

let queue_waited t ~wait_us = R.Histogram.observe t.h_queue_wait wait_us
let cache_filter t us = R.Histogram.observe t.h_cache_filter us

let trace_sampling t = t.traces <> None

let trace t json =
  match t.traces with
  | None -> ()
  | Some ring ->
    Mutex.lock t.trace_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.trace_lock)
      (fun () -> Trace.Ring.add ring json)

let recent_traces t =
  match t.traces with
  | None -> []
  | Some ring ->
    Mutex.lock t.trace_lock;
    Fun.protect
      ~finally:(fun () -> Mutex.unlock t.trace_lock)
      (fun () -> Trace.Ring.to_list ring)

let query t ~form ~latency_us ~answered ~switched =
  let fh = form_handles t form in
  R.Counter.inc fh.c_queries;
  if answered then R.Counter.inc fh.c_answered;
  if switched then R.Counter.inc fh.c_climbs;
  R.Histogram.observe fh.h_latency latency_us

let set_form_strategy t ~form s =
  let fh = form_handles t form in
  with_lock t (fun () -> fh.strategy <- s)

let learner_progress t ~form ~samples ~samples_total ~climbs ~epsilon ~delta
    ~finished =
  let fh = form_handles t form in
  R.Gauge.set fh.g_eps epsilon;
  R.Gauge.set fh.g_delta delta;
  R.Gauge.set fh.g_samples (float_of_int samples);
  R.Gauge.set fh.g_samples_total (float_of_int samples_total);
  R.Gauge.set fh.g_learner_climbs (float_of_int climbs);
  R.Gauge.set fh.g_finished (if finished then 1.0 else 0.0)

let set_cache_provider t f = with_lock t (fun () -> t.cache_provider <- Some f)

let cache_stats t =
  match with_lock t (fun () -> t.cache_provider) with
  | None -> None
  | Some f -> Some (f ())

let set_store_provider t f =
  with_lock t (fun () -> t.store_provider <- Some f)

let store_stats t =
  match with_lock t (fun () -> t.store_provider) with
  | None -> None
  | Some f -> Some (f ())

let sorted_forms t =
  with_lock t (fun () ->
      Hashtbl.fold (fun k fh acc -> (k, fh) :: acc) t.forms [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let sum_forms forms f = List.fold_left (fun n (_, fh) -> n + f fh) 0 forms

let queries_total t =
  sum_forms (sorted_forms t) (fun fh -> R.Counter.value fh.c_queries)

let climbs_total t =
  sum_forms (sorted_forms t) (fun fh -> R.Counter.value fh.c_climbs)

let busy_total t = R.Counter.value t.c_busy
let queue_high_water t = int_of_float (R.Gauge.value t.g_queue_hwm)

let cache_lines cs =
  [
    Printf.sprintf "cache_enabled %d" (if cs.enabled then 1 else 0);
    Printf.sprintf "cache_hits %d" cs.hits;
    Printf.sprintf "cache_misses %d" cs.misses;
    Printf.sprintf "cache_evictions %d" cs.evictions;
    Printf.sprintf "cache_invalidations %d" cs.invalidations;
    Printf.sprintf "cache_entries %d" cs.entries;
    Printf.sprintf "cache_bytes %d" cs.bytes;
    Printf.sprintf "cache_capacity_bytes %d" cs.capacity_bytes;
    Printf.sprintf "memo_hits %d" cs.memo_hits;
    Printf.sprintf "memo_misses %d" cs.memo_misses;
    Printf.sprintf "memo_invalidations %d" cs.memo_invalidations;
    Printf.sprintf "memo_entries %d" cs.memo_entries;
    (* Additive (subsumption-based answer reuse). *)
    Printf.sprintf "cache_subsume_enabled %d" (if cs.subsume then 1 else 0);
    Printf.sprintf "cache_derived_hits %d" cs.derived_hits;
    Printf.sprintf "cache_derived_scan_entries %d" cs.derived_scan_entries;
    Printf.sprintf "cache_subsume_misses %d" cs.subsume_misses;
    Printf.sprintf "cache_index_keys %d" cs.index_keys;
  ]

(* Additive, like [cache_lines]: present only when serving from a paged
   store. *)
let store_lines (ss : store_stats) =
  [
    Printf.sprintf "store_enabled 1";
    Printf.sprintf "store_page_size_bytes %d" ss.Store.page_size;
    Printf.sprintf "store_pages %d" ss.Store.pages;
    Printf.sprintf "store_pool_pages %d" ss.Store.pool_pages;
    Printf.sprintf "store_pool_hits %d" ss.Store.pool_hits;
    Printf.sprintf "store_pool_misses %d" ss.Store.pool_misses;
    Printf.sprintf "store_pool_evictions %d" ss.Store.pool_evictions;
    Printf.sprintf "store_page_reads %d" ss.Store.page_reads;
    Printf.sprintf "store_page_writes %d" ss.Store.page_writes;
    Printf.sprintf "store_wal_bytes %d" ss.Store.wal_bytes;
    Printf.sprintf "store_wal_appends %d" ss.Store.wal_appends;
    Printf.sprintf "store_wal_syncs %d" ss.Store.wal_syncs;
    Printf.sprintf "store_checkpoints %d" ss.Store.checkpoints;
    Printf.sprintf "store_checkpoint_age_seconds %d"
      (int_of_float
         (Float.max 0.0 (Unix.gettimeofday () -. ss.Store.checkpoint_unix)));
    Printf.sprintf "store_facts %d" ss.Store.facts;
    Printf.sprintf "store_symbols %d" ss.Store.symbols;
    Printf.sprintf "store_generation %d" ss.Store.generation;
  ]

(* Every STATS field and its order is part of the frozen text contract;
   values are read out of the registry instruments. New fields are only
   ever appended next to their kin (queue_depth and
   queue_high_water_window arrived after queue_high_water). *)
let render_text t =
  let cache = cache_stats t in
  let store = store_stats t in
  let forms = sorted_forms t in
  let qw = R.Histogram.snapshot t.h_queue_wait in
  let counters =
    [
      Printf.sprintf "uptime_seconds %d"
        (int_of_float (Unix.gettimeofday () -. t.started));
      Printf.sprintf "connections_total %d" (R.Counter.value t.c_connections);
      Printf.sprintf "queries_total %d"
        (sum_forms forms (fun fh -> R.Counter.value fh.c_queries));
      Printf.sprintf "answered_total %d"
        (sum_forms forms (fun fh -> R.Counter.value fh.c_answered));
      Printf.sprintf "climbs_total %d"
        (sum_forms forms (fun fh -> R.Counter.value fh.c_climbs));
      Printf.sprintf "busy_total %d" (R.Counter.value t.c_busy);
      Printf.sprintf "errors_total %d" (R.Counter.value t.c_errors);
      Printf.sprintf "snapshots_total %d" (R.Counter.value t.c_snapshots);
      Printf.sprintf "forms_loaded %d" (R.Counter.value t.c_forms_loaded);
      Printf.sprintf "forms_active %d" (List.length forms);
      Printf.sprintf "queue_high_water %d"
        (int_of_float (R.Gauge.value t.g_queue_hwm));
      Printf.sprintf "queue_depth %d"
        (int_of_float (R.Gauge.value t.g_queue_depth));
      Printf.sprintf "queue_high_water_window %d"
        (int_of_float (Atomic.exchange t.window_hwm 0.0));
      Printf.sprintf "queue_wait_count %d" qw.R.Histogram.count;
      Printf.sprintf "queue_wait_mean_us %.0f" (R.Histogram.mean qw);
      Printf.sprintf "queue_wait_p95_us %d" (R.Histogram.quantile qw 0.95);
      (* Additive (multicore serving): worker domains after clamping. *)
      Printf.sprintf "domains %d" (domains t);
      (* Additive (event-loop front end): reactor connection and
         pipelining state. *)
      Printf.sprintf "conns_open %d" (conns_open t);
      Printf.sprintf "pipeline_depth %d"
        (int_of_float (R.Gauge.value t.g_pipeline_depth));
      Printf.sprintf "pipeline_depth_high_water %d"
        (int_of_float (R.Gauge.value t.g_pipeline_hwm));
      (* Additive (reactor fleet): loop count plus the write-cap, idle
         and per-IP shedding counters. *)
      Printf.sprintf "loops %d" (loops t);
      Printf.sprintf "write_overflow_total %d"
        (R.Counter.value t.c_write_overflow);
      Printf.sprintf "write_shed_bytes_total %d"
        (R.Counter.value t.c_write_shed_bytes);
      Printf.sprintf "idle_closed_total %d" (R.Counter.value t.c_idle_closed);
      Printf.sprintf "ip_limited_total %d" (R.Counter.value t.c_ip_limited);
      (* Additive (request-lifecycle tracing): requests finalized by the
         lifecycle tracker and traces kept by tail-based retention. *)
      Printf.sprintf "lifecycle_requests_total %d"
        (R.Counter.value t.c_lifecycle);
      Printf.sprintf "traces_retained_total %d"
        (Atomic.get t.retained_count);
    ]
  in
  let counters =
    match cache with None -> counters | Some cs -> counters @ cache_lines cs
  in
  let counters =
    match store with None -> counters | Some ss -> counters @ store_lines ss
  in
  let form_lines =
    List.map
      (fun (key, fh) ->
        let h = R.Histogram.snapshot fh.h_latency in
        Printf.sprintf
          "form %s queries %d answered %d climbs %d mean_us %.0f \
           p50_us %d p95_us %d p99_us %d strategy %s"
          key
          (R.Counter.value fh.c_queries)
          (R.Counter.value fh.c_answered)
          (R.Counter.value fh.c_climbs)
          (R.Histogram.mean h)
          (R.Histogram.quantile h 0.50)
          (R.Histogram.quantile h 0.95)
          (R.Histogram.quantile h 0.99)
          (with_lock t (fun () -> fh.strategy)))
      forms
  in
  counters @ form_lines

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let schema_version = 1

(* Versioned independently of the top-level schema: the [cache] block is
   additive (schema stays 1) but carries its own version so its fields can
   evolve without a top-level bump. *)
let cache_block_version = 1

let cache_json cs =
  (* The [subsume] sub-block is additive under cache-block version 1, like
     the fields before it. *)
  Printf.sprintf
    "\"cache\":{\"version\":%d,\"enabled\":%b,\"hits\":%d,\"misses\":%d,\
     \"evictions\":%d,\"invalidations\":%d,\"entries\":%d,\"bytes\":%d,\
     \"capacity_bytes\":%d,\"memo\":{\"hits\":%d,\"misses\":%d,\
     \"invalidations\":%d,\"entries\":%d},\"subsume\":{\"enabled\":%b,\
     \"derived_hits\":%d,\"derived_scan_entries\":%d,\"subsume_misses\":%d,\
     \"index_keys\":%d}},"
    cache_block_version cs.enabled cs.hits cs.misses cs.evictions
    cs.invalidations cs.entries cs.bytes cs.capacity_bytes cs.memo_hits
    cs.memo_misses cs.memo_invalidations cs.memo_entries cs.subsume
    cs.derived_hits cs.derived_scan_entries cs.subsume_misses cs.index_keys

(* Like the [cache] block: additive under schema 1, independently
   versioned. *)
let store_block_version = 1

let store_json (ss : store_stats) =
  Printf.sprintf
    "\"store\":{\"version\":%d,\"page_size_bytes\":%d,\"pages\":%d,\
     \"pool_pages\":%d,\"pool_hits\":%d,\"pool_misses\":%d,\
     \"pool_evictions\":%d,\"page_reads\":%d,\"page_writes\":%d,\
     \"wal_bytes\":%d,\"wal_appends\":%d,\"wal_syncs\":%d,\
     \"checkpoints\":%d,\"checkpoint_age_seconds\":%d,\"facts\":%d,\
     \"symbols\":%d,\"generation\":%d},"
    store_block_version ss.Store.page_size ss.Store.pages ss.Store.pool_pages
    ss.Store.pool_hits ss.Store.pool_misses ss.Store.pool_evictions
    ss.Store.page_reads ss.Store.page_writes ss.Store.wal_bytes
    ss.Store.wal_appends ss.Store.wal_syncs ss.Store.checkpoints
    (int_of_float
       (Float.max 0.0 (Unix.gettimeofday () -. ss.Store.checkpoint_unix)))
    ss.Store.facts ss.Store.symbols ss.Store.generation

let render_json t =
  let cache = cache_stats t in
  let store = store_stats t in
  let forms = sorted_forms t in
  let qw = R.Histogram.snapshot t.h_queue_wait in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"schema\":%d,\"uptime_seconds\":%d,\"connections_total\":%d,\
        \"queries_total\":%d,\"answered_total\":%d,\
        \"climbs_total\":%d,\"busy_total\":%d,\"errors_total\":%d,\
        \"snapshots_total\":%d,\"forms_loaded\":%d,\
        \"forms_active\":%d,\"queue_high_water\":%d,\"queue_depth\":%d,\
        \"queue_high_water_window\":%d,\
        \"queue_wait\":{\"count\":%d,\"mean_us\":%.1f,\"p50_us\":%d,\
        \"p95_us\":%d,\"p99_us\":%d},\"domains\":%d,"
       schema_version
       (int_of_float (Unix.gettimeofday () -. t.started))
       (R.Counter.value t.c_connections)
       (sum_forms forms (fun fh -> R.Counter.value fh.c_queries))
       (sum_forms forms (fun fh -> R.Counter.value fh.c_answered))
       (sum_forms forms (fun fh -> R.Counter.value fh.c_climbs))
       (R.Counter.value t.c_busy)
       (R.Counter.value t.c_errors)
       (R.Counter.value t.c_snapshots)
       (R.Counter.value t.c_forms_loaded)
       (List.length forms)
       (int_of_float (R.Gauge.value t.g_queue_hwm))
       (int_of_float (R.Gauge.value t.g_queue_depth))
       (int_of_float (Atomic.exchange t.window_hwm 0.0))
       qw.R.Histogram.count (R.Histogram.mean qw)
       (R.Histogram.quantile qw 0.50)
       (R.Histogram.quantile qw 0.95)
       (R.Histogram.quantile qw 0.99)
       (domains t));
  (* Additive block (schema stays 1): the v4 reactor's transport-level
     state, absent only from pre-v4 builds. *)
  Buffer.add_string buf
    (Printf.sprintf
       "\"protocol\":{\"backend\":\"%s\",\"frame_version\":%d,\
        \"conns_open\":%d,\"pipeline_depth\":%d,\
        \"pipeline_depth_high_water\":%d},"
       (json_escape t.backend) Frame.version (conns_open t)
       (int_of_float (R.Gauge.value t.g_pipeline_depth))
       (int_of_float (R.Gauge.value t.g_pipeline_hwm)));
  (* Additive block (schema stays 1): the reactor fleet — per-loop
     connection/wakeup/pipeline readings plus the shedding counters. *)
  Buffer.add_string buf
    (Printf.sprintf
       "\"loops\":{\"count\":%d,\"write_overflow_total\":%d,\
        \"write_shed_bytes_total\":%d,\"idle_closed_total\":%d,\
        \"ip_limited_total\":%d,\"per_loop\":["
       (loops t)
       (R.Counter.value t.c_write_overflow)
       (R.Counter.value t.c_write_shed_bytes)
       (R.Counter.value t.c_idle_closed)
       (R.Counter.value t.c_ip_limited));
  List.iteri
    (fun i lh ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"id\":%d,\"conns\":%d,\"wakeups\":%d,\"pipeline_depth\":%d}"
           lh.loop_id
           (int_of_float (R.Gauge.value lh.lg_conns))
           (R.Counter.value lh.lc_wakeups)
           (int_of_float (R.Gauge.value lh.lg_pipeline))))
    (sorted_loops t);
  Buffer.add_string buf "]},";
  (* Additive block (schema stays 1): request-lifecycle tracing. *)
  Buffer.add_string buf
    (Printf.sprintf
       "\"lifecycle\":{\"requests_total\":%d,\"traces_retained_total\":%d},"
       (R.Counter.value t.c_lifecycle)
       (Atomic.get t.retained_count));
  (match cache with
  | None -> ()
  | Some cs -> Buffer.add_string buf (cache_json cs));
  (match store with
  | None -> ()
  | Some ss -> Buffer.add_string buf (store_json ss));
  Buffer.add_string buf "\"forms\":{";
  List.iteri
    (fun i (key, fh) ->
      if i > 0 then Buffer.add_char buf ',';
      let h = R.Histogram.snapshot fh.h_latency in
      Buffer.add_string buf
        (Printf.sprintf
           "\"%s\":{\"queries\":%d,\"answered\":%d,\"climbs\":%d,\
            \"mean_us\":%.1f,\"p50_us\":%d,\"p95_us\":%d,\
            \"p99_us\":%d,\"strategy\":\"%s\"}"
           (json_escape key)
           (R.Counter.value fh.c_queries)
           (R.Counter.value fh.c_answered)
           (R.Counter.value fh.c_climbs)
           (R.Histogram.mean h)
           (R.Histogram.quantile h 0.50)
           (R.Histogram.quantile h 0.95)
           (R.Histogram.quantile h 0.99)
           (json_escape (with_lock t (fun () -> fh.strategy)))))
    forms;
  Buffer.add_string buf "}";
  (match t.traces with
  | None -> ()
  | Some _ ->
    Buffer.add_string buf ",\"recent_traces\":[";
    List.iteri
      (fun i json ->
        if i > 0 then Buffer.add_char buf ',';
        (* Entries are already rendered JSON objects. *)
        Buffer.add_string buf json)
      (recent_traces t);
    Buffer.add_char buf ']');
  Buffer.add_char buf '}';
  Buffer.contents buf
