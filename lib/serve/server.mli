(** The `strategem serve` daemon: a sharded reactor fleet — one
    {!Eventloop} (epoll on Linux, [select] elsewhere) per worker domain
    — owns every socket and feeds individual requests through a bounded
    {!Admission} queue to a fixed pool of workers, which answer queries
    through the {!Registry} of per-form {!Core.Live} learners and hand
    encoded responses back to the owning loop for batched, non-blocking
    writes.

    A dedicated acceptor (the main thread) distributes new connections
    across the fleet by least connections (lowest loop id on ties).
    Each loop owns its epoll instance, wake channel, and connection
    table outright — no [Conn.t] is ever shared between loops — so the
    read/parse/flush half of serving scales across cores instead of
    single-threading on one reactor. A worker completing a request finds
    the owning loop by the connection's loop tag and wakes exactly that
    loop. Per-loop [{loop="i"}] conns/wakeups/pipeline-depth series and
    the additive [loops] STATS-JSON block expose the fleet's balance;
    admission back-pressure is per-loop (each loop gets an even share of
    the queue depth), so one flooding loop cannot starve its peers.

    Connections speak either dialect of {!Protocol} on the same port,
    told apart by sniffing the first byte: {!Frame.magic} (0x84) selects
    the framed v4 protocol — length-prefixed frames with client-chosen
    request ids, so one connection can pipeline many requests and
    receive responses out of order — while printable ASCII selects the
    v2/v3 line protocol, served request-at-a-time in arrival order
    exactly as before (a line client can also upgrade mid-stream with
    [HELLO V4]).

    Workers are OCaml 5 domains: [--workers N] spawns
    [min N (Domain.recommended_domain_count ())] domains, so the SLD +
    exec + learn hot path runs on real cores in parallel. Surplus
    workers beyond the clamp run as systhreads inside the worker
    domains (round-robin), preserving N-way connection concurrency on
    small machines. The effective domain count is exported as the
    [strategem_domains] gauge and the additive [domains] STATS field;
    each domain also exports served-connection and busy-time counters
    labelled [{domain="i"}]. Learning stays sequentially consistent per
    query form — every form's learner is driven under its per-entry
    mutex — so multicore serving provably does not change what is
    learned (see the multi-domain conformance test).

    Load shedding is request-granular: a request dispatched while the
    admission queue is full is answered [BUSY] — a v4 client sees a
    [Busy] frame carrying the request's id and keeps its connection; a
    line client keeps the v1..v3 contract of [BUSY] then close. A
    connection arriving past the [max_conns] cap is likewise shed with
    [BUSY] and closed at accept. Graceful shutdown (the [SHUTDOWN]
    command, or SIGINT/SIGTERM when [handle_signals]): the listener
    closes, dispatched requests are still served and their responses
    flushed, workers drain and join, and — when a state directory is
    configured — a final snapshot is written, so nothing learned is
    lost. *)

type config = {
  host : string;            (** bind address (default ["127.0.0.1"]) *)
  port : int;               (** [0] picks an ephemeral port *)
  workers : int;            (** worker pool size (≥ 1); spread over
                                [min workers recommended_domain_count]
                                domains *)
  queue_depth : int;        (** admission queue bound, in requests (≥ 1) *)
  max_conns : int;          (** open-connection cap (≥ 1); connections
                                past it are shed with [BUSY] at accept *)
  state_dir : string option;      (** snapshot directory *)
  snapshot_interval : float;      (** seconds; [0.] = periodic off *)
  learner : Core.Learner.kind;    (** per-form learner ([--learner]) *)
  learner_config : Core.Learner.config;
  trace_sample : int;
      (** keep the last [N] query traces in a ring exposed by
          [STATS JSON] ([recent_traces]); [0] = sampling off. Tracing a
          query costs span allocations, so the default is off; [TRACE]
          always traces its own query regardless. *)
  cache_mb : int;
      (** answer-cache budget in MiB ([--cache-mb]); [0] ([--no-cache])
          disables both the answer cache and subgoal memoization. Cached
          answers skip SLD but the form's learner still observes every
          query, so learning is unaffected. *)
  subsume : bool;
      (** subsumption-based answer reuse ([--subsume] / [--no-subsume],
          default on; moot under [--no-cache]): the cache keeps a
          per-predicate generality index over its keys, answers
          exact-key misses by filtering a θ-more-general entry's
          enumerated answer set (a {e derived hit},
          [ANSWER ... cached=derived]), and seeds the subgoal memo with
          the ground instances a general fill proved. Learner
          trajectories are byte-identical either way — only where
          answers come from changes, never what the learner sees. *)
  metrics_port : int option;
      (** serve [GET /metrics] (Prometheus text 0.0.4) and
          [GET /healthz] ([200 ready] / [503 draining]) on this port
          ([--metrics-port]; [0] picks an ephemeral port, read back via
          [on_metrics_listen]); [None] = no HTTP responder. *)
  log_level : Obs.Log.level option;
      (** JSONL structured-log threshold ([--log-level]); [None] turns
          structured logging off entirely. *)
  log_file : string option;
      (** structured-log destination ([--log-file]); [None] = stderr. *)
  slow_query_us : float;
      (** queries at or over this latency are counted
          ([strategem_slow_queries_total]) and logged at [warn] — rate
          limited to one record per second ([--slow-query-ms]); [0.] =
          off. A slow detection arms tracing for the next query, so
          under consistently slow traffic the admitted records carry
          the query's span tree inlined, without paying for speculative
          tracing of every query (see E21). *)
  loops : int;
      (** event loops in the reactor fleet ([--loops]); [0] (the
          default) matches the effective worker-domain count. Each loop
          is its own domain with a private epoll instance and wake
          channel. *)
  max_write_buf : int;
      (** per-connection write-buffer cap in bytes
          ([--max-write-buf-mb]); a {!Conn.send} that would buffer past
          it sheds the connection's output, answers one [BUSY], and
          disconnects. [0] = uncapped; default 64 MiB. *)
  max_write_total : int;
      (** global cap on the sum of all buffered response bytes
          ([--max-write-total-mb]); breaching it sheds the offending
          connection the same way. [0] (the default) = uncapped. *)
  idle_timeout_s : float;
      (** close connections with no traffic for this long
          ([--idle-timeout-s]); swept at most once per second per loop,
          off the poll deadline. In-flight requests hold a connection
          open. [0.] (the default) = off, at zero per-request cost. *)
  max_conns_per_ip : int;
      (** accept-time cap on open connections per peer IP
          ([--max-conns-per-ip]); connections past it are shed with
          [BUSY] and counted in [strategem_ip_limited_total]. [0] (the
          default) = off. *)
  lifecycle : bool;
      (** per-request lifecycle tracking (default [true];
          [--no-lifecycle] turns it off): every dispatched request gets
          a {!Lifecycle} record stamped through
          parse → queue → worker → respond → flush, with WAL-fsync and
          page-fault waits attributed while a worker runs it. Finalized
          records feed [strategem_stage_latency_us{stage, loop}], the
          flight recorder, and tail-based retention (the full span tree
          is kept only for slow / error / shed requests, in a bounded
          per-loop buffer served by [FLIGHT] / [/debug/flight]). *)
  flight_capacity : int;
      (** per-loop flight-recorder ring capacity in events
          ([--flight-capacity], rounded up to a power of two; default
          4096 ≈ 192 KiB per loop; [0] disables the ring). Always-on
          and lock-free: the owning loop writes, anyone snapshots. *)
  retain : int;
      (** tail-retained trace buffer size per loop ([--retain]; default
          64; [0] disables retention). *)
}

(** 127.0.0.1:4280, 4 workers, loops matching the worker domains, queue
    depth 64, max 10_000 connections, no per-IP cap, 64 MiB per-conn
    write cap (global cap and idle timeout off), no state dir, periodic
    snapshots off, PIB with {!Core.Learner.default_config}, trace
    sampling off, 64 MiB answer cache, no metrics responder, structured
    logging and the slow-query log off. Lifecycle tracking on, a
    4096-event flight ring and a 64-trace retention buffer per loop. *)
val default_config : config

(** [run ?handle_signals ?on_listen ?on_metrics_listen config ~rulebase
    ~db] — bind, serve, and block until shutdown. [on_listen] receives
    the actual bound port (useful with [port = 0]) once the server is
    accepting; [on_metrics_listen] likewise receives the metrics
    responder's bound port when [metrics_port] is set.
    [handle_signals] (default [false]) installs SIGINT/SIGTERM handlers
    that trigger the same graceful shutdown as [SHUTDOWN].

    Raises [Invalid_argument] on a nonsensical config and lets
    [Unix.Unix_error] from [bind]/[listen] escape. *)
val run :
  ?handle_signals:bool ->
  ?on_listen:(int -> unit) ->
  ?on_metrics_listen:(int -> unit) ->
  config ->
  rulebase:Datalog.Rulebase.t ->
  db:Datalog.Database.t ->
  unit
