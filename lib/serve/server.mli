(** The `strategem serve` daemon: a TCP listener whose accept loop feeds
    a bounded {!Admission} queue drained by a fixed pool of worker
    threads, each speaking {!Protocol} over its connection and answering
    queries through the {!Registry} of per-form {!Core.Live} learners.

    Load shedding: a connection arriving while the admission queue is
    full is answered [BUSY] and closed instead of stalling the accept
    loop. Graceful shutdown (the [SHUTDOWN] command, or SIGINT/SIGTERM
    when [handle_signals]): the listener stops accepting, queued
    connections are still served to completion, workers drain and join,
    and — when a state directory is configured — a final snapshot is
    written, so nothing learned is lost. *)

type config = {
  host : string;            (** bind address (default ["127.0.0.1"]) *)
  port : int;               (** [0] picks an ephemeral port *)
  workers : int;            (** worker threads (≥ 1) *)
  queue_depth : int;        (** admission queue bound (≥ 1) *)
  state_dir : string option;      (** snapshot directory *)
  snapshot_interval : float;      (** seconds; [0.] = periodic off *)
  learner : Core.Learner.kind;    (** per-form learner ([--learner]) *)
  learner_config : Core.Learner.config;
  trace_sample : int;
      (** keep the last [N] query traces in a ring exposed by
          [STATS JSON] ([recent_traces]); [0] = sampling off. Tracing a
          query costs span allocations, so the default is off; [TRACE]
          always traces its own query regardless. *)
  cache_mb : int;
      (** answer-cache budget in MiB ([--cache-mb]); [0] ([--no-cache])
          disables both the answer cache and subgoal memoization. Cached
          answers skip SLD but the form's learner still observes every
          query, so learning is unaffected. *)
}

(** 127.0.0.1:4280, 4 workers, queue depth 64, no state dir, periodic
    snapshots off, PIB with {!Core.Learner.default_config}, trace
    sampling off, 64 MiB answer cache. *)
val default_config : config

(** [run ?handle_signals ?on_listen config ~rulebase ~db] — bind, serve,
    and block until shutdown. [on_listen] receives the actual bound port
    (useful with [port = 0]) once the server is accepting.
    [handle_signals] (default [false]) installs SIGINT/SIGTERM handlers
    that trigger the same graceful shutdown as [SHUTDOWN].

    Raises [Invalid_argument] on a nonsensical config and lets
    [Unix.Unix_error] from [bind]/[listen] escape. *)
val run :
  ?handle_signals:bool ->
  ?on_listen:(int -> unit) ->
  config ->
  rulebase:Datalog.Rulebase.t ->
  db:Datalog.Database.t ->
  unit
