type mode = Sniff | Lines | Frames

type incoming =
  | Line_req of Protocol.request
  | Frame_req of Frame.t
  | Upgrade
  | Junk of string

type read_status = Continue | Eof | Rerror of string

let initial_buf = 4096
let max_line = 1 lsl 20
let max_rbuf = Frame.header_size + Frame.max_payload
let default_max_output = 64 * 1024 * 1024

(* Write-buffer budget, shared by every connection of a server: a
   per-connection cap plus a global cap over the sum of all buffered
   response bytes ([global_bytes] is the shared accounting cell). Either
   cap at 0 means unlimited. *)
type limits = {
  max_buf : int;
  global_max : int;
  global_bytes : int Atomic.t;
}

let limits ?(max_buf = default_max_output) ?(global_max = 0) () =
  { max_buf; global_max; global_bytes = Atomic.make 0 }

type t = {
  fd : Unix.file_descr;
  id : int;
  loop : int;  (* owning event loop; never changes, so lock-free *)
  peer : string;
  ip : string;  (* peer address without the port, for per-IP caps *)
  limits : limits;
  mutable mode : mode;
  (* read side: loop thread only. [rpos, rend) is the unparsed span. *)
  mutable rbuf : Bytes.t;
  mutable rpos : int;
  mutable rend : int;
  mutable read_closed : bool;
  pending : Protocol.request Queue.t;
  (* write side: appended by workers, drained by the loop, under lock.
     [opos, oend) is the unwritten span. *)
  wlock : Mutex.t;
  mutable obuf : Bytes.t;
  mutable opos : int;
  mutable oend : int;
  mutable closing : bool;
  mutable dead : bool;
  (* a send ran into a write cap: buffered output was shed, a BUSY went
     in its place, and the loop must disconnect after one flush try *)
  mutable overflowed : bool;
  mutable shed_bytes : int;  (* bytes dropped by the overflow, under wlock *)
  (* bytes of [opos, oend) counted in [limits.global_bytes]; equal to
     the buffered span except for the tiny unaccounted BUSY notice *)
  mutable accounted : int;
  inflight : int Atomic.t;
  mutable hwm : int;
  mutable rseq : int;
  mutable last_active : float;  (* loop thread only; for idle timeouts *)
  accept_ns : int64;  (* accept wall clock, for lifecycle accept spans *)
  (* monotonic byte marks, under wlock: a sender records the enqueued
     total right after its append ({!send_mark}) and the owning loop
     compares it against the flushed total to learn when that response
     has fully drained to the socket *)
  mutable enq_bytes : int;
  mutable flushed_bytes : int;
}

let create ?(accept_ns = 0L) ~id ~loop ~peer ~ip ~limits fd =
  {
    fd;
    id;
    loop;
    peer;
    ip;
    limits;
    mode = Sniff;
    rbuf = Bytes.create initial_buf;
    rpos = 0;
    rend = 0;
    read_closed = false;
    pending = Queue.create ();
    wlock = Mutex.create ();
    obuf = Bytes.create initial_buf;
    opos = 0;
    oend = 0;
    closing = false;
    dead = false;
    overflowed = false;
    shed_bytes = 0;
    accounted = 0;
    inflight = Atomic.make 0;
    hwm = 0;
    rseq = 0;
    last_active = 0.0;
    accept_ns;
    enq_bytes = 0;
    flushed_bytes = 0;
  }

let fd t = t.fd
let id t = t.id
let loop t = t.loop
let accept_ns t = t.accept_ns
let peer t = t.peer
let ip t = t.ip
let touch t ~now = t.last_active <- now
let last_active t = t.last_active
let framed t = t.mode = Frames
let read_closed t = t.read_closed
let set_read_closed t = t.read_closed <- true
let closing t = t.closing
let set_closing t = t.closing <- true
let dead t = t.dead

(* Release [n] of this connection's globally accounted bytes. Under
   wlock. *)
let release_global t n =
  let n = Int.min n t.accounted in
  if n > 0 then begin
    t.accounted <- t.accounted - n;
    ignore (Atomic.fetch_and_add t.limits.global_bytes (-n))
  end

let kill t =
  Mutex.lock t.wlock;
  t.dead <- true;
  release_global t t.accounted;
  t.opos <- 0;
  t.oend <- 0;
  Mutex.unlock t.wlock

let push_pending t r = Queue.push r t.pending
let pop_pending t = Queue.take_opt t.pending
let pending_count t = Queue.length t.pending

let incr_inflight t =
  let n = 1 + Atomic.fetch_and_add t.inflight 1 in
  if n > t.hwm then t.hwm <- n

let decr_inflight t = ignore (Atomic.fetch_and_add t.inflight (-1))
let inflight t = Atomic.get t.inflight
let pipeline_hwm t = t.hwm

let next_rid t =
  t.rseq <- t.rseq + 1;
  t.rseq

(* --- read side --- *)

let compact t =
  if t.rpos > 0 then begin
    Bytes.blit t.rbuf t.rpos t.rbuf 0 (t.rend - t.rpos);
    t.rend <- t.rend - t.rpos;
    t.rpos <- 0
  end

(* Make room for at least one more byte; false only when a single
   message already fills the whole capped buffer (the parse-side guards
   fire first in practice). *)
let ensure_read_space t =
  if t.rend < Bytes.length t.rbuf then true
  else begin
    compact t;
    if t.rend < Bytes.length t.rbuf then true
    else if Bytes.length t.rbuf >= max_rbuf then false
    else begin
      let bigger = Bytes.create (min max_rbuf (2 * Bytes.length t.rbuf)) in
      Bytes.blit t.rbuf 0 bigger 0 t.rend;
      t.rbuf <- bigger;
      true
    end
  end

let find_nl b pos limit =
  match Bytes.index_from_opt b pos '\n' with
  | Some i when i < limit -> Some i
  | _ -> None

let stopped t = t.closing || t.dead

let rec parse_all t ~emit =
  if not (stopped t) then
    match t.mode with
    | Sniff ->
      if t.rend > t.rpos then begin
        t.mode <-
          (if Bytes.get t.rbuf t.rpos = Frame.magic then Frames else Lines);
        parse_all t ~emit
      end
    | Lines -> parse_lines t ~emit
    | Frames -> parse_frames t ~emit

and parse_lines t ~emit =
  match find_nl t.rbuf t.rpos t.rend with
  | Some nl -> (
    let req = Protocol.parse_sub t.rbuf ~pos:t.rpos ~len:(nl - t.rpos) in
    t.rpos <- nl + 1;
    match req with
    | Protocol.Hello_v4 ->
      (* the rest of the buffer — bytes that arrived with the upgrade
         line — already speaks frames *)
      t.mode <- Frames;
      emit Upgrade;
      parse_all t ~emit
    | r ->
      emit (Line_req r);
      if not (stopped t) then parse_lines t ~emit)
  | None ->
    if t.rend - t.rpos > max_line then
      emit (Junk "line exceeds the 1 MiB limit")

and parse_frames t ~emit =
  match Frame.decode t.rbuf ~pos:t.rpos ~limit:t.rend with
  | Frame.Frame (f, consumed) ->
    t.rpos <- t.rpos + consumed;
    emit (Frame_req f);
    if not (stopped t) then parse_frames t ~emit
  | Frame.Need_more _ -> ()
  | Frame.Corrupt msg -> emit (Junk msg)

let on_readable t ~emit =
  if not (ensure_read_space t) then begin
    emit (Junk "read buffer overflow");
    Continue
  end
  else
    match
      Unix.read t.fd t.rbuf t.rend (Bytes.length t.rbuf - t.rend)
    with
    | 0 -> Eof
    | n ->
      t.rend <- t.rend + n;
      parse_all t ~emit;
      Continue
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
      Continue
    | exception Unix.Unix_error (e, _, _) -> Rerror (Unix.error_message e)

let finish_read t ~emit =
  if t.rend > t.rpos && not (stopped t) then
    match t.mode with
    | Frames -> () (* partial frame torn by EOF: nothing to honor *)
    | Sniff when Bytes.get t.rbuf t.rpos = Frame.magic -> ()
    | Sniff | Lines -> (
      let req = Protocol.parse_sub t.rbuf ~pos:t.rpos ~len:(t.rend - t.rpos) in
      t.rpos <- t.rend;
      match req with
      | Protocol.Hello_v4 ->
        t.mode <- Frames;
        emit Upgrade
      | r -> emit (Line_req r))

(* --- write side --- *)

let ensure_write_space t len =
  let used = t.oend - t.opos in
  if t.oend + len > Bytes.length t.obuf then begin
    if t.opos > 0 then begin
      Bytes.blit t.obuf t.opos t.obuf 0 used;
      t.opos <- 0;
      t.oend <- used
    end;
    if t.oend + len > Bytes.length t.obuf then begin
      let cap = ref (Bytes.length t.obuf) in
      while !cap < t.oend + len do
        cap := 2 * !cap
      done;
      let bigger = Bytes.create !cap in
      Bytes.blit t.obuf 0 bigger 0 t.oend;
      t.obuf <- bigger
    end
  end

(* The overflow notice is tiny and constant, so it is buffered outside
   the caps (and outside the global accounting — [shed] compensates by
   releasing the whole discarded span first). *)
let busy_bytes t =
  if t.mode = Frames then
    Frame.encode_string { Frame.id = 0; kind = Frame.Busy; payload = "" }
  else Protocol.busy ^ "\n"

(* Busy-then-disconnect: drop everything buffered for this slow reader,
   leave one BUSY in its place, and flag the connection for the loop to
   tear down after a single best-effort flush. Under wlock. *)
let shed t ~extra =
  let buffered = t.oend - t.opos in
  release_global t t.accounted;
  t.shed_bytes <- t.shed_bytes + buffered + extra;
  t.opos <- 0;
  t.oend <- 0;
  if Bytes.length t.obuf > initial_buf then t.obuf <- Bytes.create initial_buf;
  let notice = busy_bytes t in
  let len = String.length notice in
  ensure_write_space t len;
  Bytes.blit_string notice 0 t.obuf 0 len;
  t.oend <- len;
  t.overflowed <- true;
  t.closing <- true

let send_mark t s =
  Mutex.lock t.wlock;
  (if not t.dead && not t.overflowed then
     let len = String.length s in
     let used = t.oend - t.opos in
     let { max_buf; global_max; global_bytes } = t.limits in
     if
       (max_buf > 0 && used + len > max_buf)
       || (global_max > 0 && Atomic.get global_bytes + len > global_max)
     then
       (* a consumer that never reads: shed rather than buffer without
          bound; the loop disconnects the fd when it next looks *)
       shed t ~extra:len
     else begin
       ensure_write_space t len;
       Bytes.blit_string s 0 t.obuf t.oend len;
       t.oend <- t.oend + len;
       t.accounted <- t.accounted + len;
       t.enq_bytes <- t.enq_bytes + len;
       ignore (Atomic.fetch_and_add global_bytes len)
     end);
  let mark = t.enq_bytes in
  Mutex.unlock t.wlock;
  mark

let send t s = ignore (send_mark t s)

let flushed_bytes t =
  Mutex.lock t.wlock;
  let r = t.flushed_bytes in
  Mutex.unlock t.wlock;
  r

let flush t =
  Mutex.lock t.wlock;
  let r =
    if t.dead then `Error
    else if t.opos >= t.oend then `Flushed
    else
      match Unix.write t.fd t.obuf t.opos (t.oend - t.opos) with
      | n ->
        t.opos <- t.opos + n;
        t.flushed_bytes <- t.flushed_bytes + n;
        release_global t n;
        if t.opos >= t.oend then begin
          t.opos <- 0;
          t.oend <- 0;
          (* a burst can balloon the buffer; give it back *)
          if Bytes.length t.obuf > 1 lsl 16 then
            t.obuf <- Bytes.create initial_buf;
          `Flushed
        end
        else `Partial
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK | EINTR), _, _) ->
        `Partial
      | exception Unix.Unix_error (_, _, _) ->
        t.dead <- true;
        release_global t t.accounted;
        `Error
  in
  Mutex.unlock t.wlock;
  r

let has_output t =
  Mutex.lock t.wlock;
  let r = t.opos < t.oend in
  Mutex.unlock t.wlock;
  r

let overflowed t =
  Mutex.lock t.wlock;
  let r = t.overflowed in
  Mutex.unlock t.wlock;
  r

let take_shed_bytes t =
  Mutex.lock t.wlock;
  let r = t.shed_bytes in
  t.shed_bytes <- 0;
  Mutex.unlock t.wlock;
  r
