module D = Datalog

type entry = {
  key : string;
  form : D.Atom.t;
  live : Core.Live.t;
  lock : Mutex.t;
}

type t = {
  lock : Mutex.t;
  rulebase : D.Rulebase.t;
  learner : Core.Learner.kind;
  config : Core.Learner.config;
  metrics : Metrics.t;
  entries : (string, entry) Hashtbl.t;
}

let create ?(learner = `Pib) ?(config = Core.Learner.default_config) ~rulebase
    metrics =
  {
    lock = Mutex.create ();
    rulebase;
    learner;
    config;
    metrics;
    entries = Hashtbl.create 8;
  }

let form_of_query (q : D.Atom.t) =
  let args =
    List.mapi
      (fun i t ->
        if D.Term.is_const t then D.Term.const "q"
        else D.Term.var (Printf.sprintf "X%d" i))
      q.D.Atom.args
  in
  D.Atom.make_sym q.D.Atom.pred args

let key_of_form (form : D.Atom.t) =
  let sanitize c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> c
    | _ -> '-'
  in
  let adornment =
    D.Atom.adornment form
    |> List.map (function `B -> "b" | `F -> "f")
    |> String.concat ""
  in
  Printf.sprintf "%s_%d%s%s"
    (String.map sanitize (D.Symbol.to_string form.D.Atom.pred))
    (D.Atom.arity form)
    (if adornment = "" then "" else "_")
    adornment

let render live =
  Format.asprintf "%a" Strategy.Spec.pp_dfs (Core.Live.strategy live)

let with_live (entry : entry) f =
  Mutex.lock entry.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock entry.lock) (fun () ->
      f entry.live)

let strategy_string entry = with_live entry render

(* Forward the learner's telemetry into the per-form convergence
   gauges. The hook fires on every observation (bound check), climb,
   and adopted conjecture — the gauges always show the latest
   reading. *)
let publish_progress metrics ~form (p : Core.Learner.progress) =
  Metrics.learner_progress metrics ~form
    ~samples:p.Core.Learner.samples
    ~samples_total:p.Core.Learner.samples_total
    ~climbs:p.Core.Learner.climbs ~epsilon:p.Core.Learner.epsilon
    ~delta:p.Core.Learner.delta ~finished:p.Core.Learner.finished

let install_telemetry metrics ~form live =
  Core.Live.on_event live (fun ev ->
      match ev with
      | Core.Learner.Observed p
      | Core.Learner.Climbed p
      | Core.Learner.Conjectured p -> publish_progress metrics ~form p);
  publish_progress metrics ~form
    (Core.Learner.progress (Core.Live.learner live))

let find_or_create t atom =
  let form = form_of_query atom in
  let key = key_of_form form in
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      match Hashtbl.find_opt t.entries key with
      | Some e -> e
      | None ->
        let live =
          Core.Live.create ~learner:t.learner ~config:t.config
            ~rulebase:t.rulebase ~query_form:form ()
        in
        let e = { key; form; live; lock = Mutex.create () } in
        Hashtbl.add t.entries key e;
        install_telemetry t.metrics ~form:key live;
        Metrics.set_form_strategy t.metrics ~form:key (render live);
        e)

let learner_kind t = t.learner

let answer ?(tracer = Trace.null) ?parent ?cache ?memo t ~db q =
  let entry = find_or_create t q in
  (* Cache service is visible in traces as an event on the caller's span:
     a hit records what the fill paid and was saved; a miss is a marker. *)
  let cache_event kind attrs =
    match parent with
    | Some sp when Trace.enabled tracer ->
      Trace.event tracer sp ~kind ~attrs (D.Atom.to_string q)
    | _ -> ()
  in
  let ans, strategy =
    with_live entry (fun live ->
        let hit =
          match cache with
          | Some c -> Cache.Answers.find c ~db q
          | None -> None
        in
        let a =
          match hit with
          | Some h ->
            cache_event "cache_hit"
              [
                ( "saved_reductions",
                  string_of_int h.Cache.Answers.reductions );
                ( "saved_retrievals",
                  string_of_int h.Cache.Answers.retrievals );
                ("fill_cost", Printf.sprintf "%g" h.Cache.Answers.cost);
              ];
            Core.Live.answer_cached ~tracer ?parent live ~db
              ~result:h.Cache.Answers.result q
          | None ->
            if Option.is_some cache then cache_event "cache_miss" [];
            let a = Core.Live.answer ~tracer ?parent ?memo live ~db q in
            (match cache with
            | Some c when not a.Core.Live.stats.D.Sld.truncated ->
              (* A truncated non-answer is "unknown", not "no" — never
                 cache it. *)
              Cache.Answers.store c ~db q ~result:a.Core.Live.result
                ~reductions:a.Core.Live.stats.D.Sld.reductions
                ~retrievals:a.Core.Live.stats.D.Sld.retrievals
                ~cost:a.Core.Live.cost
            | _ -> ());
            a
        in
        (a, if a.Core.Live.switched then Some (render live) else None))
  in
  Option.iter
    (fun s -> Metrics.set_form_strategy t.metrics ~form:entry.key s)
    strategy;
  ans

let entries t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [])
  |> List.sort (fun a b -> String.compare a.key b.key)

let key e = e.key
let form e = e.form

let publish_strategies t =
  List.iter
    (fun e ->
      Metrics.set_form_strategy t.metrics ~form:e.key (strategy_string e))
    (entries t)
